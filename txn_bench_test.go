package bench

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"htapxplain/internal/htap"
)

// txnCommitRate measures committed-transaction throughput with n
// concurrent writers against a durable system whose fsync carries a
// modeled 2ms device latency — the regime where the commit pipeline's
// group-commit batching (LSNs assigned under a short critical section,
// durability waited on outside it) is the difference between serial
// ~500 commits/s and thousands.
func txnCommitRate(t *testing.T, n, totalCommits int) float64 {
	t.Helper()
	cfg := htap.DefaultConfig()
	cfg.Durability = htap.DurabilityConfig{
		Dir:                  t.TempDir(),
		SimulatedSyncLatency: 2 * time.Millisecond,
		DisableCheckpointer:  true,
	}
	sys, err := htap.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	per := totalCommits / n
	var wg sync.WaitGroup
	errs := make(chan error, n)
	start := time.Now()
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := 3_500_000_000 + int64(w)*1_000_000 + int64(i)
				tx := sys.Begin()
				sql := fmt.Sprintf(
					"INSERT INTO customer (c_custkey, c_name, c_address, c_nationkey, c_phone, c_acctbal, c_mktsegment, c_comment) "+
						"VALUES (%d, 'gate#%d', 'addr', 7, '20-123', 100.00, 'machinery', 'txn gate')", key, key)
				if _, err := tx.Exec(sql); err != nil {
					tx.Rollback()
					errs <- err
					return
				}
				if _, err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	return float64(n*per) / time.Since(start).Seconds()
}

// TestTxnThroughputScales is the tentpole's enforced headline: on a
// modeled-fsync device, 16 concurrent writers must commit at ≥ 3x the
// single-writer rate, because disjoint transactions no longer serialize
// on each other's fsync waits — they batch into shared group commits.
// Skipped under the race detector and on small CI runners, where the
// instrumentation and core count distort throughput ratios.
func TestTxnThroughputScales(t *testing.T) {
	if raceEnabled {
		t.Skip("throughput gate is not meaningful under the race detector")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("throughput gate needs ≥ 4 CPUs, have %d", runtime.NumCPU())
	}
	single := txnCommitRate(t, 1, 160)
	multi := txnCommitRate(t, 16, 320)
	ratio := multi / single
	t.Logf("commit throughput: 1 writer %.0f/s, 16 writers %.0f/s → %.1fx", single, multi, ratio)
	if ratio < 3 {
		t.Errorf("16-writer commit throughput only %.1fx single-writer (%.0f vs %.0f commits/s), want ≥ 3x",
			ratio, multi, single)
	}
}
