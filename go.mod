module htapxplain

go 1.21
