// Package bench is the benchmark harness regenerating every table and
// figure of the paper's evaluation (§VI) under `go test -bench`. Each
// BenchmarkEn corresponds to experiment En in DESIGN.md's experiment
// index; ablations follow as BenchmarkAblation*. Reported custom metrics
// (accuracy %, None %, latency components) are the paper's quantities;
// run cmd/benchrunner for the same data as formatted tables.
package bench

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"htapxplain/internal/colstore"
	"htapxplain/internal/eval"
	"htapxplain/internal/exec"
	"htapxplain/internal/expert"
	"htapxplain/internal/explain"
	"htapxplain/internal/gateway"
	"htapxplain/internal/htap"
	"htapxplain/internal/llm"
	"htapxplain/internal/sqlparser"
	"htapxplain/internal/study"
	"htapxplain/internal/treecnn"
	"htapxplain/internal/value"
	"htapxplain/internal/vectordb"
	"htapxplain/internal/workload"
)

var (
	envOnce sync.Once
	envVal  *eval.Env
	envErr  error
)

func benchEnv(b *testing.B) *eval.Env {
	b.Helper()
	envOnce.Do(func() { envVal, envErr = eval.NewEnv(eval.DefaultEnvConfig()) })
	if envErr != nil {
		b.Fatalf("NewEnv: %v", envErr)
	}
	return envVal
}

// BenchmarkE1_Example1 regenerates Example 1 (paper Tables II & III):
// plan both engines, execute, explain; reports the modeled speedup.
func BenchmarkE1_Example1(b *testing.B) {
	env := benchEnv(b)
	ex := explain.New(env.Sys, env.Router, env.KB, llm.Doubao(), explain.DefaultOptions())
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		out, err := ex.ExplainSQL(htap.Example1SQL)
		if err != nil {
			b.Fatal(err)
		}
		speedup = out.Result.Speedup()
	}
	b.ReportMetric(speedup, "AP-speedup-x")
}

// BenchmarkE2_Accuracy regenerates the §VI-B headline accuracy over the
// 200-query test set with K=2 (paper: 91% accurate, 3.5% None).
func BenchmarkE2_Accuracy(b *testing.B) {
	env := benchEnv(b)
	queries := env.TestQueries(200)
	b.ResetTimer()
	var rep eval.AccuracyReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, _, err = env.EvaluateAccuracy(llm.Doubao(), 2, queries)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*rep.AccurateRate(), "accurate-%")
	b.ReportMetric(100*rep.NoneRate(), "none-%")
}

// BenchmarkE3_KSweep regenerates the retrieval-K sweep (paper: K=1 → 85%
// / 8% None; K in [2,5] → 89-91%).
func BenchmarkE3_KSweep(b *testing.B) {
	env := benchEnv(b)
	queries := env.TestQueries(100)
	for _, k := range []int{1, 2, 3, 4, 5} {
		k := k
		b.Run(benchName("K", k), func(b *testing.B) {
			var rep eval.AccuracyReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, _, err = env.EvaluateAccuracy(llm.Doubao(), k, queries)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*rep.AccurateRate(), "accurate-%")
			b.ReportMetric(100*rep.NoneRate(), "none-%")
		})
	}
}

// BenchmarkE4_Models regenerates the model comparison (paper: minimal
// differences between Doubao and ChatGPT-4.0).
func BenchmarkE4_Models(b *testing.B) {
	env := benchEnv(b)
	queries := env.TestQueries(100)
	for _, m := range []llm.Model{llm.Doubao(), llm.ChatGPT4()} {
		m := m
		b.Run(m.Name(), func(b *testing.B) {
			var rep eval.AccuracyReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, _, err = env.EvaluateAccuracy(m, 2, queries)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*rep.AccurateRate(), "accurate-%")
		})
	}
}

// BenchmarkE5_RouterEncode measures the smart-router embedding step
// (paper: <1 ms per plan pair).
func BenchmarkE5_RouterEncode(b *testing.B) {
	env := benchEnv(b)
	res, err := env.Sys.Run(htap.Example1SQL)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = env.Router.EmbedPair(&res.Pair)
	}
}

// BenchmarkE5_KBSearch measures retrieval over the paper's 20-entry KB
// (paper: <0.1 ms per request).
func BenchmarkE5_KBSearch(b *testing.B) {
	env := benchEnv(b)
	res, err := env.Sys.Run(htap.Example1SQL)
	if err != nil {
		b.Fatal(err)
	}
	enc := env.Router.EmbedPair(&res.Pair)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.KB.TopK(enc, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5_KBScaling measures exact vs HNSW search as the KB grows
// (the paper's §VI-B outlook on vector indexing).
func BenchmarkE5_KBScaling(b *testing.B) {
	for _, n := range []int{20, 2000, 20000} {
		store := vectordb.New(treecnn.PairDim, vectordb.Cosine)
		hnsw := vectordb.New(treecnn.PairDim, vectordb.Cosine)
		vec := make([]float64, treecnn.PairDim)
		seed := uint64(12345)
		next := func() float64 {
			seed = seed*6364136223846793005 + 1442695040888963407
			return float64(seed%2000)/1000 - 1
		}
		for i := 0; i < n; i++ {
			v := make([]float64, treecnn.PairDim)
			for d := range v {
				v[d] = next()
			}
			if _, err := store.Add(v); err != nil {
				b.Fatal(err)
			}
			if _, err := hnsw.Add(v); err != nil {
				b.Fatal(err)
			}
		}
		hnsw.BuildHNSW(12, 64, 3)
		for d := range vec {
			vec[d] = next()
		}
		b.Run(benchName("exact_n", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := store.Search(vec, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(benchName("hnsw_n", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hnsw.SearchHNSW(vec, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6_Study regenerates the participant study (paper §VI-C).
func BenchmarkE6_Study(b *testing.B) {
	env := benchEnv(b)
	res, err := env.Sys.Run(htap.Example1SQL)
	if err != nil {
		b.Fatal(err)
	}
	ex := explain.New(env.Sys, env.Router, env.KB, llm.Doubao(), explain.DefaultOptions())
	out, err := ex.ExplainResult(res)
	if err != nil {
		b.Fatal(err)
	}
	truth, err := env.Oracle.Judge(res)
	if err != nil {
		b.Fatal(err)
	}
	g := expert.GradeExplanation(out.Text(), truth)
	m := study.MaterialsFromPair(&res.Pair, out.Text(), g.Verdict == expert.VerdictAccurate)
	b.ResetTimer()
	var o study.Outcome
	for i := 0; i < b.N; i++ {
		o = study.Run(study.DefaultConfig(), m)
	}
	b.ReportMetric(o.GroupAMeanMinutes, "withLLM-min")
	b.ReportMetric(o.GroupBMeanMinutes, "plansOnly-min")
	b.ReportMetric(o.DifficultyPlans, "difficulty-plans")
	b.ReportMetric(o.DifficultyLLM, "difficulty-llm")
}

// BenchmarkE7_DBGPT regenerates the DBG-PT failure-mode comparison
// (paper §VI-D).
func BenchmarkE7_DBGPT(b *testing.B) {
	env := benchEnv(b)
	queries := env.TestQueries(60)
	b.ResetTimer()
	var ours, base eval.FailureCensus
	for i := 0; i < b.N; i++ {
		var err error
		ours, base, err = env.CompareWithDBGPT(llm.Doubao(), queries)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(base.CostComparison), "dbgpt-cost-cmp")
	b.ReportMetric(float64(base.IndexMisattribution), "dbgpt-idx-misattr")
	b.ReportMetric(float64(ours.CostComparison+ours.IndexMisattribution), "ours-failures")
}

// BenchmarkE8_RouterInference measures routing prediction latency (paper:
// ~1 ms) and reports held-out routing accuracy.
func BenchmarkE8_RouterInference(b *testing.B) {
	env := benchEnv(b)
	res, err := env.Sys.Run(htap.Example1SQL)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := env.EvaluateRouter(env.TestQueries(60))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = env.Router.Predict(&res.Pair)
	}
	b.ReportMetric(100*rep.TestAcc, "routing-accuracy-%")
	b.ReportMetric(rep.ModelKB, "model-KB")
}

// BenchmarkAblation_KBSize sweeps the curated KB size (DESIGN.md ★).
func BenchmarkAblation_KBSize(b *testing.B) {
	env := benchEnv(b)
	queries := env.TestQueries(60)
	candidates := workload.NewGenerator(env.Cfg.WorkloadSeed).Batch(60)
	for _, size := range []int{5, 20, 40} {
		size := size
		b.Run(benchName("size", size), func(b *testing.B) {
			kb, err := explain.CurateKB(env.Sys, env.Router, env.Oracle, candidates, size)
			if err != nil {
				b.Fatal(err)
			}
			sub := &eval.Env{Cfg: env.Cfg, Sys: env.Sys, Router: env.Router, Oracle: env.Oracle, KB: kb}
			b.ResetTimer()
			var rep eval.AccuracyReport
			for i := 0; i < b.N; i++ {
				rep, _, err = sub.EvaluateAccuracy(llm.Doubao(), 2, queries)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*rep.AccurateRate(), "accurate-%")
		})
	}
}

// BenchmarkAblation_Guardrail measures the forbidden cost-comparison rate
// with and without the §V prompt prohibition (un-grounded path).
func BenchmarkAblation_Guardrail(b *testing.B) {
	env := benchEnv(b)
	queries := env.TestQueries(40)
	for _, guard := range []bool{true, false} {
		guard := guard
		b.Run(benchName("guardrail", boolToInt(guard)), func(b *testing.B) {
			ex := explain.New(env.Sys, env.Router, env.KB, llm.Doubao(), explain.Options{
				K: 2, UseRAG: false, IncludeGuardrail: guard,
			})
			var rate float64
			for i := 0; i < b.N; i++ {
				bad := 0
				for _, q := range queries {
					res, err := env.Sys.Run(q.SQL)
					if err != nil {
						b.Fatal(err)
					}
					out, err := ex.ExplainResult(res)
					if err != nil {
						b.Fatal(err)
					}
					if containsFold(out.Text(), "comparing the costs") {
						bad++
					}
				}
				rate = 100 * float64(bad) / float64(len(queries))
			}
			b.ReportMetric(rate, "cost-cmp-%")
		})
	}
}

// BenchmarkGateway_WarmCache measures serving the seeded point-join
// workload through the query gateway with a warmed plan cache: every
// query is a full hit (fingerprint + cached-plan execution only).
func BenchmarkGateway_WarmCache(b *testing.B) {
	env := benchEnv(b)
	g := gateway.New(env.Sys, gateway.Config{Workers: 1, CacheCapacity: 256})
	defer g.Stop()
	pool := gatewayPointJoinPool(12)
	for _, q := range pool {
		if resp := g.Serve(q.SQL); resp.Err != nil {
			b.Fatalf("warming %q: %v", q.SQL, resp.Err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := g.Serve(pool[i%len(pool)].SQL); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkGateway_PlanPerQuery is the same workload with the plan cache
// disabled — the baseline the ≥5x warm-cache speedup is measured against
// (see internal/gateway's TestWarmCacheSpeedup for the enforced ratio).
func BenchmarkGateway_PlanPerQuery(b *testing.B) {
	env := benchEnv(b)
	g := gateway.New(env.Sys, gateway.Config{Workers: 1, CacheCapacity: 0})
	defer g.Stop()
	pool := gatewayPointJoinPool(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := g.Serve(pool[i%len(pool)].SQL); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkGateway_ClosedLoop measures end-to-end closed-loop serving
// (8 clients through queue + worker pool) with the learned router.
func BenchmarkGateway_ClosedLoop(b *testing.B) {
	env := benchEnv(b)
	g := gateway.New(env.Sys, gateway.Config{
		Workers: 4, QueueDepth: 64, CacheCapacity: 256,
		Policy: gateway.LearnedPolicy{Router: env.Router},
	})
	defer g.Stop()
	b.ResetTimer()
	rep := gateway.RunLoad(g, gateway.LoadConfig{Clients: 8, Queries: b.N, Distinct: 24, Seed: 42})
	b.ReportMetric(rep.Throughput, "queries/s")
	b.ReportMetric(100*rep.Gateway.CacheHitRate, "cache-hit-%")
	b.ReportMetric(100*rep.Gateway.RouteAccuracy, "route-acc-%")
}

// gatewayPointJoinPool generates the plan-dominated point-join slice of
// the seeded workload (customer ⋈ their orders by random customer key) —
// the same pool internal/gateway's TestWarmCacheSpeedup enforces the
// warm/cold ratio on.
func gatewayPointJoinPool(n int) []workload.Query {
	return workload.NewGenerator(42).BatchOf("join2_point_orders", n)
}

// ---------------------------------------------------------- vectorized exec

// selectiveScanParts builds a selective columnar scan over lineitem
// (l_quantity = 1, ~2% of rows) — the shape where batch execution with
// selection vectors beats materialization hardest, because the legacy path
// allocated a boxed row per match and re-read every column in Materialize.
func selectiveScanParts(b *testing.B) (*colstore.Table, []int, exec.Evaluator) {
	b.Helper()
	env := benchEnv(b)
	ct, ok := env.Sys.Col.Table("lineitem")
	if !ok {
		b.Fatal("no lineitem column table")
	}
	cols := []int{4, 5} // l_quantity, l_extendedprice
	full := exec.TableSchema(ct.Meta, "lineitem")
	subset := exec.Schema{full[4], full[5]}
	pred, err := exec.Compile(&sqlparser.BinaryExpr{
		Op:   sqlparser.OpEq,
		Left: &sqlparser.ColumnRef{Table: "lineitem", Column: "l_quantity"}, Right: &sqlparser.IntLit{V: 1},
	}, subset)
	if err != nil {
		b.Fatal(err)
	}
	return ct, cols, pred
}

// legacySelectiveScan reproduces the pre-vectorization ColTableScan.Run:
// a scratch row filled per visited id, matching ids collected, then
// Materialize re-reading every column to box one row per match.
func legacySelectiveScan(ct *colstore.Table, cols []int, pred exec.Evaluator) ([]value.Row, error) {
	row := make(value.Row, len(cols))
	var evalErr error
	ids, _ := ct.Scan(cols, nil, func(id int) bool {
		for j, c := range cols {
			row[j] = ct.Column(c).Value(id)
		}
		ok, err := exec.Truthy(pred, row)
		if err != nil {
			evalErr = err
			return false
		}
		return ok
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return ct.Materialize(ids, cols), nil
}

// batchSelectiveScan streams the same scan through the vectorized engine
// without materializing: chunk-aliased vectors + selection vector only.
func batchSelectiveScan(ct *colstore.Table, cols []int, pred exec.Evaluator) (int, error) {
	op := exec.NewColTableScan(ct, "lineitem", cols, pred, nil).Clone()
	ctx := exec.NewContext()
	if err := op.Open(ctx); err != nil {
		return 0, err
	}
	matched := 0
	for {
		batch, err := op.Next(ctx)
		if err != nil {
			return 0, err
		}
		if batch == nil {
			break
		}
		matched += batch.NumActive()
	}
	return matched, op.Close()
}

// BenchmarkVectorized_SelectiveAPScan is the tentpole's before/after pair:
// sub-benchmark "legacy-materialize" is the removed engine's double
// materialization, "batch-stream" the shipped batch pipeline. The ≥5x
// allocation reduction is enforced by TestVectorizedAllocReduction.
func BenchmarkVectorized_SelectiveAPScan(b *testing.B) {
	ct, cols, pred := selectiveScanParts(b)
	b.Run("legacy-materialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := legacySelectiveScan(ct, cols, pred)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) == 0 {
				b.Fatal("no matches")
			}
		}
	})
	b.Run("batch-stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n, err := batchSelectiveScan(ct, cols, pred)
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				b.Fatal("no matches")
			}
		}
	})
}

// TestVectorizedAllocReduction enforces the tentpole's headline number: the
// batch pipeline must allocate ≥5x less than legacy materialization on the
// selective AP scan.
func TestVectorizedAllocReduction(t *testing.T) {
	env, err := eval.NewEnv(eval.DefaultEnvConfig())
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := env.Sys.Col.Table("lineitem")
	if !ok {
		t.Fatal("no lineitem column table")
	}
	cols := []int{4, 5}
	full := exec.TableSchema(ct.Meta, "lineitem")
	pred, err := exec.Compile(&sqlparser.BinaryExpr{
		Op:   sqlparser.OpEq,
		Left: &sqlparser.ColumnRef{Table: "lineitem", Column: "l_quantity"}, Right: &sqlparser.IntLit{V: 1},
	}, exec.Schema{full[4], full[5]})
	if err != nil {
		t.Fatal(err)
	}
	legacy := testing.AllocsPerRun(20, func() {
		if _, err := legacySelectiveScan(ct, cols, pred); err != nil {
			t.Fatal(err)
		}
	})
	batch := testing.AllocsPerRun(20, func() {
		if _, err := batchSelectiveScan(ct, cols, pred); err != nil {
			t.Fatal(err)
		}
	})
	if batch <= 0 {
		batch = 1
	}
	ratio := legacy / batch
	t.Logf("allocs/op: legacy-materialize %.0f, batch-stream %.0f → %.1fx reduction", legacy, batch, ratio)
	if ratio < 5 {
		t.Errorf("allocation reduction %.1fx, want ≥ 5x (legacy %.0f vs batch %.0f)", ratio, legacy, batch)
	}
}

// BenchmarkVectorized_LargeHashJoin measures a full AP hash-join +
// aggregate pipeline (lineitem ⋈ orders) through the batch engine — the
// "large join" wall-clock case from the tentpole.
func BenchmarkVectorized_LargeHashJoin(b *testing.B) {
	env := benchEnv(b)
	sql := `SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem, orders ` +
		`WHERE l_orderkey = o_orderkey AND o_totalprice > 50000`
	sel, err := sqlparser.Parse(sql)
	if err != nil {
		b.Fatal(err)
	}
	phys, err := env.Sys.Planner.PlanAP(sel)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := phys.Execute(exec.NewContext())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 1 {
			b.Fatalf("expected 1 aggregate row, got %d", len(rows))
		}
	}
}

// BenchmarkSubstrate_ParseAndPlan measures the parser + both optimizers
// on the Example 1 query (substrate overhead context for E5).
func BenchmarkSubstrate_ParseAndPlan(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Sys.Explain(htap.Example1SQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubstrate_Parse measures the SQL parser alone.
func BenchmarkSubstrate_Parse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sqlparser.Parse(htap.Example1SQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubstrate_ExecuteBoth measures full dual-engine execution of
// Example 1 on the physical dataset.
func BenchmarkSubstrate_ExecuteBoth(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Sys.Run(htap.Example1SQL); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, v int) string {
	return fmt.Sprintf("%s=%d", prefix, v)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func containsFold(s, sub string) bool {
	return strings.Contains(strings.ToLower(s), sub)
}
