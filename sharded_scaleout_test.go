package bench

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"htapxplain/internal/catalog"
	"htapxplain/internal/htap"
	"htapxplain/internal/shard"
	"htapxplain/internal/tpch"
)

// The sharded scale-out gate runs the morsel benchmarks' 10x-scaled
// dataset through hash-partitioned shard fleets: the same physical rows
// are generated once and partitioned across 1 and 4 in-process shards, so
// a scatter fragment on the 4-shard fleet scans a quarter of the data.
// FragDOP is pinned to 1 — the measured speedup is pure shard
// parallelism, not intra-shard morsel parallelism.

var (
	scaleDataOnce sync.Once
	scaleDataVal  *tpch.Dataset
	scaleDataErr  error
)

func scaleoutDataset(tb testing.TB) *tpch.Dataset {
	tb.Helper()
	scaleDataOnce.Do(func() {
		scaleDataVal, scaleDataErr = tpch.Generate(catalog.TPCH(100),
			tpch.Config{PhysScale: 0.02, Seed: 42})
	})
	if scaleDataErr != nil {
		tb.Fatalf("tpch.Generate: %v", scaleDataErr)
	}
	return scaleDataVal
}

func scaleoutCoordinator(tb testing.TB, shards int) *shard.Coordinator {
	tb.Helper()
	cfg := htap.Config{
		ModeledSF: 100,
		Data:      tpch.Config{PhysScale: 0.02, Seed: 42},
		Preloaded: scaleoutDataset(tb),
		Repl:      htap.ReplConfig{DisableMerger: true},
	}
	c, err := shard.New(shards, cfg, shard.Options{FragDOP: 1})
	if err != nil {
		tb.Fatalf("shard.New(%d): %v", shards, err)
	}
	return c
}

// scatterBest runs the query n times through the fleet's scatter-gather
// path and returns the fastest execution (prepare excluded — it is the
// same parse/plan work on both fleets and the gate measures execution
// scaling).
func scatterBest(tb testing.TB, c *shard.Coordinator, sql string, n int) time.Duration {
	tb.Helper()
	best := time.Duration(-1)
	for i := 0; i < n; i++ {
		sc, err := c.PrepareScatter(sql, nil)
		if err != nil {
			tb.Fatal(err)
		}
		start := time.Now()
		rows, _, err := sc.Run()
		if err != nil {
			tb.Fatal(err)
		}
		if len(rows) == 0 {
			tb.Fatal("scatter produced no rows")
		}
		if d := time.Since(start); best < 0 || d < best {
			best = d
		}
	}
	return best
}

// TestShardedScaleout is the acceptance gate for distributed execution:
// the large-scan/aggregate pipeline on a 4-shard fleet must be at least
// 2x faster than on a single shard holding the same data. Like the
// morsel-parallelism gate, it needs real cores and skips under the race
// detector.
func TestShardedScaleout(t *testing.T) {
	if raceEnabled {
		t.Skip("timing gate skipped under the race detector")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs to demonstrate 4-shard speedup, have %d", runtime.NumCPU())
	}
	prev := runtime.GOMAXPROCS(0)
	if prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	c1 := scaleoutCoordinator(t, 1)
	defer c1.Close()
	c4 := scaleoutCoordinator(t, 4)
	defer c4.Close()

	// warm both fleets (runner pools, fragment planning caches)
	scatterBest(t, c1, parallelAggSQL, 1)
	scatterBest(t, c4, parallelAggSQL, 1)

	serial := scatterBest(t, c1, parallelAggSQL, 5)
	parallel := scatterBest(t, c4, parallelAggSQL, 5)
	speedup := float64(serial) / float64(parallel)
	t.Logf("scatter scan+aggregate: 1 shard %v, 4 shards %v → %.2fx", serial, parallel, speedup)
	if speedup < 2 {
		t.Errorf("4-shard speedup = %.2fx, want >= 2x (1 shard %v, 4 shards %v)",
			speedup, serial, parallel)
	}
}

// BenchmarkSharded_ScanAggregate measures the scatter pipeline at 1/2/4
// shards — the before/after series for exchange-based scale-out.
func BenchmarkSharded_ScanAggregate(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		n := n
		b.Run(benchName("Shards", n), func(b *testing.B) {
			c := scaleoutCoordinator(b, n)
			defer c.Close()
			b.ReportAllocs()
			b.ResetTimer()
			var rows int64
			for i := 0; i < b.N; i++ {
				sc, err := c.PrepareScatter(parallelAggSQL, nil)
				if err != nil {
					b.Fatal(err)
				}
				_, stats, err := sc.Run()
				if err != nil {
					b.Fatal(err)
				}
				rows += stats.RowsScanned
			}
			b.ReportMetric(float64(rows)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
