//go:build race

package bench

// raceEnabled reports whether the race detector instruments this build;
// timing-sensitive tests (the parallel speedup gate) skip their
// throughput assertions under it.
const raceEnabled = true
