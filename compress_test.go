package bench

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"htapxplain/internal/colstore"
	"htapxplain/internal/exec"
	"htapxplain/internal/htap"
	"htapxplain/internal/optimizer"
	"htapxplain/internal/sqlparser"
	"htapxplain/internal/tpch"
)

// The compression benchmarks pit the same 10x-scaled physical dataset
// stored raw against the auto-encoded layout; cmd/benchrunner
// -compress-bench emits the per-policy measurements as BENCH_compress.json
// for the CI artifact trail.

var (
	encSysOnce sync.Once
	encRawSys  *htap.System
	encAutoSys *htap.System
	encSysErr  error
)

// compressionSystems returns two identical datasets, one under PolicyRaw
// and one under PolicyAuto — the before/after pair every compression gate
// compares.
func compressionSystems(tb testing.TB) (raw, auto *htap.System) {
	tb.Helper()
	encSysOnce.Do(func() {
		mk := func(p colstore.EncodingPolicy) (*htap.System, error) {
			return htap.New(htap.Config{ModeledSF: 100,
				Data:     tpch.Config{PhysScale: 0.02, Seed: 42},
				Repl:     htap.ReplConfig{DisableMerger: true},
				Encoding: p})
		}
		encRawSys, encSysErr = mk(colstore.PolicyRaw)
		if encSysErr == nil {
			encAutoSys, encSysErr = mk(colstore.PolicyAuto)
		}
	})
	if encSysErr != nil {
		tb.Fatalf("htap.New: %v", encSysErr)
	}
	return encRawSys, encAutoSys
}

func planOn(tb testing.TB, sys *htap.System, sql string) *optimizer.PhysPlan {
	tb.Helper()
	sel, err := sqlparser.Parse(sql)
	if err != nil {
		tb.Fatal(err)
	}
	phys, err := sys.Planner.PlanAP(sel)
	if err != nil {
		tb.Fatal(err)
	}
	return phys
}

// halfOrderKeySQL builds the selective sorted-scan gate query: a range on
// the ascending l_orderkey covering roughly half the table, so zone maps
// prune half the chunks and the surviving half exercises the encoded
// range prefilter against the raw candidate loop.
func halfOrderKeySQL(tb testing.TB, sys *htap.System) string {
	tb.Helper()
	rows, err := planOn(tb, sys, `SELECT MAX(l_orderkey) FROM lineitem`).Execute(exec.NewContext())
	if err != nil {
		tb.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0]) != 1 {
		tb.Fatalf("MAX(l_orderkey) returned %d rows", len(rows))
	}
	return fmt.Sprintf(`SELECT COUNT(*) FROM lineitem WHERE l_orderkey <= %d`, rows[0][0].I/2)
}

// TestCompressionWins is the acceptance gate for the encoding layer: the
// auto policy must keep the same TPC-H data in at most a third of the raw
// resident bytes, and the selective sorted range scan at DOP 4 must be
// measurably faster over encoded storage than over raw. Like the other
// timing gates it skips under the race detector and on small machines.
func TestCompressionWins(t *testing.T) {
	if raceEnabled {
		t.Skip("timing gate skipped under the race detector")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for the DOP-4 scan gate, have %d", runtime.NumCPU())
	}
	prev := runtime.GOMAXPROCS(0)
	if prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	raw, auto := compressionSystems(t)

	// footprint gate: >= 3x smaller resident column data
	rawMS, autoMS := raw.Col.MemStats(), auto.Col.MemStats()
	if rawMS.ResidentBytes != rawMS.RawBytes {
		t.Errorf("raw policy resident %d != raw %d bytes", rawMS.ResidentBytes, rawMS.RawBytes)
	}
	ratio := float64(rawMS.ResidentBytes) / float64(autoMS.ResidentBytes)
	t.Logf("resident column data: raw %d bytes, encoded %d bytes → %.2fx",
		rawMS.ResidentBytes, autoMS.ResidentBytes, ratio)
	if ratio < 3 {
		t.Errorf("compression ratio = %.2fx, want >= 3x", ratio)
	}

	// throughput gate: the same selective sorted scan, same DOP, both
	// layouts — encoded must win
	sql := halfOrderKeySQL(t, raw)
	rawPlan, autoPlan := planOn(t, raw, sql), planOn(t, auto, sql)
	bestOf(t, rawPlan, 4, 1) // warm pooled runners and forked pipelines
	bestOf(t, autoPlan, 4, 1)
	rawBest := bestOf(t, rawPlan, 4, 7)
	autoBest := bestOf(t, autoPlan, 4, 7)
	speedup := float64(rawBest) / float64(autoBest)
	t.Logf("selective sorted scan at DOP 4: raw %v, encoded %v → %.2fx", rawBest, autoBest, speedup)
	if speedup < 1.15 {
		t.Errorf("encoded scan speedup = %.2fx, want >= 1.15x (raw %v, encoded %v)",
			speedup, rawBest, autoBest)
	}
}

// BenchmarkCompression_SelectiveScan measures the gate query on both
// layouts at DOP 1 and 4 — the before/after pair for the encoding layer.
func BenchmarkCompression_SelectiveScan(b *testing.B) {
	raw, auto := compressionSystems(b)
	sql := halfOrderKeySQL(b, raw)
	for _, sys := range []struct {
		name string
		s    *htap.System
	}{{"raw", raw}, {"encoded", auto}} {
		phys := planOn(b, sys.s, sql)
		for _, dop := range []int{1, 4} {
			dop := dop
			b.Run(sys.name+"/"+benchName("DOP", dop), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ctx := exec.NewContext()
					ctx.DOP = dop
					if _, err := phys.Execute(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
