package bench

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"htapxplain/internal/explainsvc"
	"htapxplain/internal/gateway"
	"htapxplain/internal/htap"
	"htapxplain/internal/knowledge"
	"htapxplain/internal/workload"
)

// explainServingEnv builds the shared fixture for the explanation-serving
// gate: a system, a bootstrapped router, and the curated KB serialized to
// bytes so each retrieval mode restores its own private copy.
func explainServingEnv(t *testing.T) (*htap.System, *explainsvc.Service, func() *explainsvc.Service) {
	t.Helper()
	sys, err := htap.New(htap.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	router, kb, _, err := explainsvc.Bootstrap(sys, explainsvc.BootstrapConfig{
		TrainQueries: 48, Epochs: 25, KBSize: 16, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := kb.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Inflate each mode's KB copy to a serving-scale entry count: curated
	// entries re-added under deterministically perturbed encodings, so
	// retrieval cost — not the fixed per-explanation pipeline — dominates.
	const kbTarget = 8000
	newSvc := func(linear bool) *explainsvc.Service {
		modeKB, err := knowledge.Load(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		base := modeKB.Entries()
		rng := rand.New(rand.NewSource(17))
		for modeKB.Len() < kbTarget {
			src := base[rng.Intn(len(base))]
			enc := make([]float64, len(src.Encoding))
			for j, v := range src.Encoding {
				enc[j] = v + (rng.Float64()-0.5)*0.05
			}
			e := *src
			e.ID = 0
			e.Encoding = enc
			if _, err := modeKB.Add(e); err != nil {
				t.Fatal(err)
			}
		}
		g := gateway.New(sys, gateway.Config{Workers: 16, CacheCapacity: 256})
		t.Cleanup(g.Stop)
		svc, err := explainsvc.New(sys, g, router, modeKB, explainsvc.Config{
			Seed: 7, LinearScan: linear,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { svc.Close() })
		return svc
	}
	return sys, newSvc(true), func() *explainsvc.Service { return newSvc(false) }
}

// explainRate serves total explanations split across n closed-loop
// clients and returns explanations/s.
func explainRate(t *testing.T, svc *explainsvc.Service, pool []workload.Query, n, total int) float64 {
	t.Helper()
	per := total / n
	var wg sync.WaitGroup
	errs := make(chan error, n)
	start := time.Now()
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := svc.Explain(pool[(c*per+i)%len(pool)].SQL); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	return float64(n*per) / elapsed.Seconds()
}

// TestExplainThroughputScales is the explanation service's enforced
// headline: with the knowledge base at serving scale, 16 concurrent
// /explain clients retrieving through the copy-on-write HNSW snapshot
// must sustain ≥ 3x the throughput of the mutex-guarded exact linear
// scan, because readers no longer serialize on the base's lock to sort
// the whole store per query. Skipped under the race detector and on
// small CI runners, where instrumentation and core count distort
// throughput ratios.
func TestExplainThroughputScales(t *testing.T) {
	if raceEnabled {
		t.Skip("throughput gate is not meaningful under the race detector")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("throughput gate needs ≥ 4 CPUs, have %d", runtime.NumCPU())
	}
	_, linearSvc, makeHNSW := explainServingEnv(t)
	hnswSvc := makeHNSW()
	pool := workload.NewGenerator(11).Batch(32)
	// warm both plan caches so every timed explanation is a cache hit
	for _, q := range pool {
		if _, err := linearSvc.Explain(q.SQL); err != nil {
			t.Fatal(err)
		}
		if _, err := hnswSvc.Explain(q.SQL); err != nil {
			t.Fatal(err)
		}
	}
	bestOf := func(svc *explainsvc.Service) float64 {
		best := 0.0
		for i := 0; i < 3; i++ {
			if r := explainRate(t, svc, pool, 16, 480); r > best {
				best = r
			}
		}
		return best
	}
	linear := bestOf(linearSvc)
	hnsw := bestOf(hnswSvc)
	ratio := hnsw / linear
	t.Logf("explain throughput at 16 clients: linear %.0f/s, hnsw %.0f/s → %.1fx", linear, hnsw, ratio)
	if ratio < 3 {
		t.Errorf("HNSW explain throughput only %.1fx linear at 16 clients (%.0f vs %.0f explanations/s), want ≥ 3x",
			ratio, hnsw, linear)
	}
}
