package recovery

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"htapxplain/internal/wal"
)

// DefaultInterval is the default period between background checkpoints.
const DefaultInterval = 30 * time.Second

// Source produces consistent checkpoints of the running system. The
// implementation (htap.System) must guarantee the snapshot contains
// exactly the effects of LSNs <= Checkpoint.LSN — it takes the
// single-writer lock while copying.
type Source interface {
	CheckpointSnapshot() *Checkpoint
}

// Stats is a snapshot of the manager's counters.
type Stats struct {
	Checkpoints    int64  `json:"checkpoint_count"`
	LastLSN        uint64 `json:"checkpoint_last_lsn"`
	LastDurationMS int64  `json:"checkpoint_last_ms"`
	SegmentsFreed  int64  `json:"checkpoint_wal_segments_freed"`
}

// Manager writes periodic checkpoints and retires the WAL prefix each one
// covers. It owns no storage state itself — it pulls snapshots from the
// Source and pushes retention into the WAL.
type Manager struct {
	dir string
	src Source
	log *wal.WAL // may be nil (checkpoint-only operation)

	mu      sync.Mutex
	running bool
	stop    chan struct{}
	done    chan struct{}

	checkpoints atomic.Int64
	lastLSN     atomic.Uint64
	lastMS      atomic.Int64
	freed       atomic.Int64
	lastErrMu   sync.Mutex
	lastErr     error
}

// NewManager builds a manager writing checkpoints into dir. log may be nil
// when there is no WAL to retire.
func NewManager(dir string, src Source, log *wal.WAL) *Manager {
	return &Manager{dir: dir, src: src, log: log}
}

// CheckpointNow takes a snapshot, persists it, prunes old checkpoints and
// retires covered WAL segments. Safe to call concurrently with the
// background loop (checkpoints serialize on the manager lock).
func (m *Manager) CheckpointNow() (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := time.Now()
	ck := m.src.CheckpointSnapshot()
	if ck == nil {
		return 0, fmt.Errorf("recovery: source returned no snapshot")
	}
	// make sure the WAL covers the snapshot before the old log prefix
	// becomes eligible for retirement
	if m.log != nil {
		if err := m.log.Sync(); err != nil {
			return 0, err
		}
	}
	if _, err := Write(m.dir, ck); err != nil {
		m.setErr(err)
		return 0, err
	}
	if err := Prune(m.dir, KeepCheckpoints); err != nil {
		m.setErr(err)
		return 0, err
	}
	if m.log != nil {
		// the marker makes the checkpoint visible in the log stream, and
		// retirement drops segments recovery can no longer need
		_ = m.log.Append(wal.Record{LSN: ck.LSN, Kind: wal.KindCheckpoint})
		freed, err := m.log.TruncateBefore(ck.LSN)
		if err != nil {
			m.setErr(err)
			return 0, err
		}
		m.freed.Add(int64(freed))
	}
	m.checkpoints.Add(1)
	m.lastLSN.Store(ck.LSN)
	m.lastMS.Store(time.Since(start).Milliseconds())
	return ck.LSN, nil
}

// Prime records that a checkpoint at lsn already exists on disk, so a
// clean restart (whose Close wrote a final checkpoint at exactly this
// LSN) does not immediately rewrite an identical snapshot, and the
// background loop's "anything committed since?" test starts from the
// right place.
func (m *Manager) Prime(lsn uint64) { m.lastLSN.Store(lsn) }

func (m *Manager) setErr(err error) {
	m.lastErrMu.Lock()
	m.lastErr = err
	m.lastErrMu.Unlock()
}

// Err returns the most recent background checkpoint failure, if any.
func (m *Manager) Err() error {
	m.lastErrMu.Lock()
	defer m.lastErrMu.Unlock()
	return m.lastErr
}

// Start launches the periodic checkpoint loop (<=0 uses DefaultInterval).
func (m *Manager) Start(interval time.Duration) {
	if interval <= 0 {
		interval = DefaultInterval
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.running {
		return
	}
	m.running = true
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go m.loop(interval, m.stop, m.done)
}

// Stop halts the periodic loop and waits for an in-flight checkpoint to
// finish. CheckpointNow stays callable afterwards (Close uses it for the
// final clean-shutdown checkpoint).
func (m *Manager) Stop() {
	m.mu.Lock()
	if !m.running {
		m.mu.Unlock()
		return
	}
	stop, done := m.stop, m.done
	m.running = false
	m.mu.Unlock()
	close(stop)
	<-done
}

func (m *Manager) loop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			lastLSN := m.lastLSN.Load()
			// skip no-op checkpoints: nothing committed since the last one
			if m.log != nil && m.log.LastLSN() <= lastLSN {
				continue
			}
			_, _ = m.CheckpointNow() // failure is sticky in Err()
		}
	}
}

// Stats returns the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Checkpoints:    m.checkpoints.Load(),
		LastLSN:        m.lastLSN.Load(),
		LastDurationMS: m.lastMS.Load(),
		SegmentsFreed:  m.freed.Load(),
	}
}
