package recovery

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"htapxplain/internal/catalog"
	"htapxplain/internal/rowstore"
	"htapxplain/internal/value"
)

func testCheckpoint(lsn uint64) *Checkpoint {
	return &Checkpoint{
		LSN: lsn,
		Tables: map[string]rowstore.HeapSnapshot{
			"customer": {
				Rows: []value.Row{
					{value.NewInt(1), value.NewString("alice"), value.NewFloat(10.5)},
					{value.NewInt(2), value.NewString("bob"), value.Null},
					{value.NewInt(3), value.NewString("carol"), value.NewFloat(-2)},
				},
				Versions: []rowstore.VersionMeta{
					{InsertLSN: 0},
					{InsertLSN: 0, DeleteLSN: lsn - 1},
					{InsertLSN: lsn},
				},
			},
			"nation": {
				Rows:     []value.Row{{value.NewInt(4), value.NewBool(true)}},
				Versions: []rowstore.VersionMeta{{InsertLSN: 2}},
			},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testCheckpoint(7)
	path, err := Write(dir, want)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	latest, err := LoadLatest(dir)
	if err != nil || !reflect.DeepEqual(latest, want) {
		t.Fatalf("LoadLatest: %+v, %v", latest, err)
	}
}

func TestCheckpointDeterministicBytes(t *testing.T) {
	d1, d2 := t.TempDir(), t.TempDir()
	p1, err := Write(d1, testCheckpoint(7))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Write(d2, testCheckpoint(7))
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if !reflect.DeepEqual(b1, b2) {
		t.Fatal("identical checkpoints produced different bytes")
	}
}

func TestLoadLatestFallsBackPastCorruption(t *testing.T) {
	dir := t.TempDir()
	older := testCheckpoint(5)
	if _, err := Write(dir, older); err != nil {
		t.Fatal(err)
	}
	newerPath, err := Write(dir, testCheckpoint(9))
	if err != nil {
		t.Fatal(err)
	}
	// bit-flip the newer checkpoint: LoadLatest must fall back to LSN 5
	data, _ := os.ReadFile(newerPath)
	data[len(data)/2] ^= 0x04
	if err := os.WriteFile(newerPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.LSN != 5 {
		t.Fatalf("LoadLatest = %+v, want fallback to LSN 5", got)
	}
	if !reflect.DeepEqual(got, older) {
		t.Fatal("fallback checkpoint content mismatch")
	}
}

func TestLoadLatestEmptyDir(t *testing.T) {
	ck, err := LoadLatest(filepath.Join(t.TempDir(), "does-not-exist"))
	if err != nil || ck != nil {
		t.Fatalf("LoadLatest on missing dir = %+v, %v; want nil, nil", ck, err)
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	for _, lsn := range []uint64{3, 8, 15, 21} {
		if _, err := Write(dir, testCheckpoint(lsn)); err != nil {
			t.Fatal(err)
		}
	}
	if err := Prune(dir, KeepCheckpoints); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	var kept []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ckptSuffix) {
			kept = append(kept, e.Name())
		}
	}
	if len(kept) != KeepCheckpoints {
		t.Fatalf("kept %v, want %d newest", kept, KeepCheckpoints)
	}
	ck, err := LoadLatest(dir)
	if err != nil || ck.LSN != 21 {
		t.Fatalf("LoadLatest after prune = %+v, %v", ck, err)
	}
}

func TestTruncatedCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	path, err := Write(dir, testCheckpoint(7))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	for _, cut := range []int{0, 4, len(data) / 2, len(data) - 1} {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

// testCatalog builds a tiny catalog matching testCheckpoint's shape.
func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New(1)
	if err := cat.AddTable(&catalog.Table{
		Name: "customer",
		Columns: []catalog.Column{
			{Name: "c_custkey", Type: catalog.TypeInt},
			{Name: "c_name", Type: catalog.TypeString},
			{Name: "c_acctbal", Type: catalog.TypeFloat},
		},
		Indexes: []catalog.Index{{Name: "pk_customer", Table: "customer", Column: "c_custkey", Kind: catalog.PrimaryIndex}},
		Rows:    3,
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(&catalog.Table{
		Name: "nation",
		Columns: []catalog.Column{
			{Name: "n_nationkey", Type: catalog.TypeInt},
			{Name: "n_flag", Type: catalog.TypeInt},
		},
		Rows: 1,
	}); err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestRestoreIntoRowstore closes the loop: a checkpoint written from heap
// snapshots must restore into a row store with the same live rows, index
// structure and commit LSN.
func TestRestoreIntoRowstore(t *testing.T) {
	ck := testCheckpoint(7)
	// build a catalog matching the test checkpoint's shape
	cat := testCatalog(t)
	s, err := rowstore.NewStoreFromSnapshot(cat, ck.Tables, ck.LSN)
	if err != nil {
		t.Fatalf("NewStoreFromSnapshot: %v", err)
	}
	if s.CommitLSN() != 7 {
		t.Fatalf("CommitLSN = %d, want 7", s.CommitLSN())
	}
	tbl, _ := s.Table("customer")
	if tbl.NumRows() != 3 || tbl.NumLive() != 2 {
		t.Fatalf("customer: %d rows / %d live, want 3 / 2", tbl.NumRows(), tbl.NumLive())
	}
	ix, ok := tbl.IndexOn("c_custkey")
	if !ok {
		t.Fatal("declared index not rebuilt")
	}
	if ids := ix.Lookup(value.NewInt(2)); len(ids) != 0 {
		t.Fatalf("tombstoned row still indexed: %v", ids)
	}
	if ids := ix.Lookup(value.NewInt(3)); len(ids) != 1 {
		t.Fatalf("live row not indexed: %v", ids)
	}
}
