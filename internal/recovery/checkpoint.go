// Package recovery implements the durability subsystem's checkpoint and
// restart protocol. A checkpoint is a CRC-protected snapshot of the row
// store — every table's version heap (rows + tombstone metadata) plus the
// commit LSN it is consistent with. On startup the system restores the
// latest valid checkpoint and replays the WAL tail (LSNs beyond the
// checkpoint) to reach the last durable commit; the periodic Manager keeps
// checkpoints fresh so that replay stays short and retired WAL segments
// can be deleted.
//
// Checkpoint files are written atomically: encode to a temp file, fsync,
// rename into place, fsync the directory. A crash mid-checkpoint therefore
// leaves the previous checkpoint intact, and LoadLatest falls back past
// any file that fails its CRC.
package recovery

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"htapxplain/internal/rowstore"
	"htapxplain/internal/value"
	"htapxplain/internal/wal"
)

// checkpoint file layout (all integers little-endian):
//
//	magic   "HTAPCKP1" (8 bytes)
//	u64     commit LSN
//	u32     table count
//	per table:
//	  u16   name length, name bytes
//	  u32   heap length (live + tombstoned versions)
//	  per version: u64 insert LSN, u64 delete LSN, row (wal row codec)
//	u32     CRC-32C of everything after the magic
const (
	ckptMagic  = "HTAPCKP1"
	ckptPrefix = "ckpt-"
	ckptSuffix = ".snap"

	// KeepCheckpoints is how many recent checkpoints survive pruning: the
	// latest plus one fallback in case the latest is damaged.
	KeepCheckpoints = 2
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checkpoint is one restorable snapshot of the row store.
type Checkpoint struct {
	// LSN is the commit LSN the snapshot is consistent with: it contains
	// exactly the effects of every mutation with LSN <= LSN.
	LSN uint64
	// Tables maps lower-cased table name → heap snapshot.
	Tables map[string]rowstore.HeapSnapshot
}

func ckptName(lsn uint64) string {
	return fmt.Sprintf("%s%020d%s", ckptPrefix, lsn, ckptSuffix)
}

// parseCkptName extracts the LSN from a checkpoint file name.
func parseCkptName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	lsn, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix), 10, 64)
	return lsn, err == nil
}

// crcWriter tees writes into a running CRC.
type crcWriter struct {
	w io.Writer
	h hash.Hash32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.h.Write(p[:n])
	return n, err
}

// Write persists the checkpoint into dir atomically and returns its path.
func Write(dir string, ck *Checkpoint) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("recovery: creating %s: %w", dir, err)
	}
	final := filepath.Join(dir, ckptName(ck.LSN))
	tmp, err := os.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return "", fmt.Errorf("recovery: temp checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	bw := bufio.NewWriterSize(tmp, 1<<16)
	cw := &crcWriter{w: bw, h: crc32.New(castagnoli)}
	if _, err := bw.WriteString(ckptMagic); err != nil {
		tmp.Close()
		return "", fmt.Errorf("recovery: writing checkpoint: %w", err)
	}
	if err := encodeBody(cw, ck); err != nil {
		tmp.Close()
		return "", fmt.Errorf("recovery: writing checkpoint: %w", err)
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], cw.h.Sum32())
	if _, err := bw.Write(crcBuf[:]); err != nil {
		tmp.Close()
		return "", fmt.Errorf("recovery: writing checkpoint: %w", err)
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("recovery: flushing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("recovery: fsync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("recovery: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", fmt.Errorf("recovery: publishing checkpoint: %w", err)
	}
	// a real directory-fsync failure must fail the checkpoint: the caller
	// retires WAL segments the moment Write succeeds, and an un-durable
	// rename plus a truncated log would lose committed data together
	if err := wal.SyncDir(dir); err != nil {
		return "", err
	}
	return final, nil
}

func encodeBody(w io.Writer, ck *Checkpoint) error {
	var scratch []byte
	scratch = binary.LittleEndian.AppendUint64(scratch, ck.LSN)
	scratch = binary.LittleEndian.AppendUint32(scratch, uint32(len(ck.Tables)))
	if _, err := w.Write(scratch); err != nil {
		return err
	}
	// deterministic table order makes identical states produce identical
	// checkpoint bytes
	names := make([]string, 0, len(ck.Tables))
	for n := range ck.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		snap := ck.Tables[name]
		if len(snap.Rows) != len(snap.Versions) {
			return fmt.Errorf("table %q has %d rows but %d versions", name, len(snap.Rows), len(snap.Versions))
		}
		scratch = scratch[:0]
		scratch = binary.LittleEndian.AppendUint16(scratch, uint16(len(name)))
		scratch = append(scratch, name...)
		scratch = binary.LittleEndian.AppendUint32(scratch, uint32(len(snap.Rows)))
		if _, err := w.Write(scratch); err != nil {
			return err
		}
		for i, row := range snap.Rows {
			scratch = scratch[:0]
			scratch = binary.LittleEndian.AppendUint64(scratch, snap.Versions[i].InsertLSN)
			scratch = binary.LittleEndian.AppendUint64(scratch, snap.Versions[i].DeleteLSN)
			scratch = wal.AppendRow(scratch, row)
			if _, err := w.Write(scratch); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load reads and verifies one checkpoint file.
func Load(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("recovery: reading %s: %w", path, err)
	}
	if len(data) < len(ckptMagic)+12+4 || string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("recovery: %s is not a checkpoint", path)
	}
	body := data[len(ckptMagic) : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return nil, fmt.Errorf("recovery: %s fails its CRC", path)
	}
	ck := &Checkpoint{Tables: make(map[string]rowstore.HeapSnapshot)}
	ck.LSN = binary.LittleEndian.Uint64(body[0:8])
	nTables := int(binary.LittleEndian.Uint32(body[8:12]))
	off := 12
	for ti := 0; ti < nTables; ti++ {
		if len(body)-off < 2 {
			return nil, fmt.Errorf("recovery: %s: truncated table header", path)
		}
		nameLen := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if nameLen > len(body)-off {
			return nil, fmt.Errorf("recovery: %s: table name overruns file", path)
		}
		name := string(body[off : off+nameLen])
		off += nameLen
		if len(body)-off < 4 {
			return nil, fmt.Errorf("recovery: %s: truncated heap length", path)
		}
		nRows := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		// 16 bytes of LSNs + 2 bytes of column count is the per-row floor
		if nRows > (len(body)-off)/18 {
			return nil, fmt.Errorf("recovery: %s: table %q heap length %d overruns file", path, name, nRows)
		}
		snap := rowstore.HeapSnapshot{
			Rows:     make([]value.Row, nRows),
			Versions: make([]rowstore.VersionMeta, nRows),
		}
		for ri := 0; ri < nRows; ri++ {
			if len(body)-off < 16 {
				return nil, fmt.Errorf("recovery: %s: table %q row %d truncated", path, name, ri)
			}
			snap.Versions[ri].InsertLSN = binary.LittleEndian.Uint64(body[off:])
			snap.Versions[ri].DeleteLSN = binary.LittleEndian.Uint64(body[off+8:])
			off += 16
			row, n, err := wal.ReadRow(body[off:])
			if err != nil {
				return nil, fmt.Errorf("recovery: %s: table %q row %d: %w", path, name, ri, err)
			}
			snap.Rows[ri] = row
			off += n
		}
		ck.Tables[name] = snap
	}
	if off != len(body) {
		return nil, fmt.Errorf("recovery: %s: %d trailing bytes", path, len(body)-off)
	}
	return ck, nil
}

// LoadLatest returns the newest checkpoint in dir that decodes and passes
// its CRC, skipping damaged files (a crash can only damage the file being
// written, which the atomic rename keeps out of the namespace — but belt
// and suspenders). It returns (nil, nil) when no usable checkpoint exists.
func LoadLatest(dir string) (*Checkpoint, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("recovery: reading %s: %w", dir, err)
	}
	type cand struct {
		lsn  uint64
		path string
	}
	var cands []cand
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if lsn, ok := parseCkptName(e.Name()); ok {
			cands = append(cands, cand{lsn: lsn, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lsn > cands[j].lsn })
	for _, c := range cands {
		ck, err := Load(c.path)
		if err == nil {
			return ck, nil
		}
	}
	return nil, nil
}

// Prune deletes all but the keep newest checkpoint files.
func Prune(dir string, keep int) error {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("recovery: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range ents {
		if _, ok := parseCkptName(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // zero-padded LSNs: lexicographic == numeric
	for i := 0; i < len(names)-keep; i++ {
		if err := os.Remove(filepath.Join(dir, names[i])); err != nil {
			return fmt.Errorf("recovery: pruning checkpoint: %w", err)
		}
	}
	return nil
}
