package tpch

import (
	"strings"
	"testing"

	"htapxplain/internal/catalog"
	"htapxplain/internal/value"
)

func genDefault(t *testing.T) *Dataset {
	t.Helper()
	cat := catalog.TPCH(100)
	d, err := Generate(cat, DefaultConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return d
}

func TestGenerateAllTables(t *testing.T) {
	d := genDefault(t)
	for _, name := range []string{"region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem"} {
		rows := d.Rows(name)
		if len(rows) == 0 {
			t.Errorf("table %q is empty", name)
		}
		meta, _ := d.Cat.Table(name)
		for i, r := range rows {
			if len(r) != len(meta.Columns) {
				t.Fatalf("%s row %d has %d columns, want %d", name, i, len(r), len(meta.Columns))
			}
		}
	}
}

func TestFixedDimensionTables(t *testing.T) {
	d := genDefault(t)
	if n := len(d.Rows("nation")); n != 25 {
		t.Errorf("nation rows = %d, want 25", n)
	}
	if n := len(d.Rows("region")); n != 5 {
		t.Errorf("region rows = %d, want 5", n)
	}
}

func TestDeterminism(t *testing.T) {
	cat1, cat2 := catalog.TPCH(100), catalog.TPCH(100)
	a, err := Generate(cat1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cat2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name := range a.Tables {
		ra, rb := a.Rows(name), b.Rows(name)
		if len(ra) != len(rb) {
			t.Fatalf("%s cardinality differs: %d vs %d", name, len(ra), len(rb))
		}
		for i := range ra {
			for j := range ra[i] {
				if ra[i][j] != rb[i][j] {
					t.Fatalf("%s[%d][%d] differs: %v vs %v", name, i, j, ra[i][j], rb[i][j])
				}
			}
		}
	}
	// a different seed must differ somewhere
	cfg := DefaultConfig()
	cfg.Seed = 43
	c, err := Generate(catalog.TPCH(100), cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	ra, rc := a.Rows("customer"), c.Rows("customer")
	for i := range ra {
		if ra[i][4] != rc[i][4] { // c_phone
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical customer phones")
	}
}

func TestForeignKeyIntegrity(t *testing.T) {
	d := genDefault(t)
	nCust := int64(len(d.Rows("customer")))
	for _, o := range d.Rows("orders") {
		ck := o[1].I // o_custkey
		if ck < 1 || ck > nCust {
			t.Fatalf("o_custkey %d out of range [1,%d]", ck, nCust)
		}
	}
	nOrders := int64(len(d.Rows("orders")))
	for _, l := range d.Rows("lineitem") {
		ok := l[0].I // l_orderkey
		if ok < 1 || ok > nOrders {
			t.Fatalf("l_orderkey %d out of range", ok)
		}
	}
	for _, c := range d.Rows("customer") {
		nk := c[3].I // c_nationkey
		if nk < 0 || nk > 24 {
			t.Fatalf("c_nationkey %d out of range", nk)
		}
	}
}

func TestPhoneCountryCodeConvention(t *testing.T) {
	// SUBSTRING(c_phone,1,2) must equal nationkey+10 — the property the
	// paper's Example 1 predicate depends on.
	d := genDefault(t)
	for _, c := range d.Rows("customer") {
		nk := c[3].I
		phone := c[4].S
		wantPrefix := []byte{byte('0' + (nk+10)/10), byte('0' + (nk+10)%10)}
		if phone[0] != wantPrefix[0] || phone[1] != wantPrefix[1] {
			t.Fatalf("phone %q does not start with country code %d", phone, nk+10)
		}
	}
}

func TestValueDomains(t *testing.T) {
	d := genDefault(t)
	segs := map[string]bool{}
	for _, s := range MktSegments {
		segs[s] = true
	}
	for _, c := range d.Rows("customer") {
		if !segs[c[6].S] {
			t.Fatalf("unknown market segment %q", c[6].S)
		}
	}
	statuses := map[string]bool{"o": true, "f": true, "p": true}
	for _, o := range d.Rows("orders") {
		if !statuses[o[2].S] {
			t.Fatalf("unknown order status %q", o[2].S)
		}
	}
	// the paper's Example 1 filters n_name='egypt' — it must exist
	found := false
	for _, n := range d.Rows("nation") {
		if n[1].S == "egypt" {
			found = true
		}
	}
	if !found {
		t.Error("nation 'egypt' missing")
	}
}

func TestOrderTotalsArePositive(t *testing.T) {
	d := genDefault(t)
	for _, o := range d.Rows("orders") {
		if f, ok := o[3].AsFloat(); !ok || f <= 0 {
			t.Fatalf("o_totalprice %v not positive", o[3])
		}
	}
}

func TestLineitemsPerOrderBounded(t *testing.T) {
	d := genDefault(t)
	counts := map[int64]int{}
	for _, l := range d.Rows("lineitem") {
		counts[l[0].I]++
	}
	for ok, n := range counts {
		if n < 1 || n > 7 {
			t.Fatalf("order %d has %d lineitems, want 1..7", ok, n)
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	cat := catalog.TPCH(1)
	if _, err := Generate(cat, Config{PhysScale: 0, Seed: 1}); err == nil {
		t.Error("zero PhysScale should error")
	}
	if _, err := Generate(catalog.New(1), DefaultConfig()); err == nil {
		t.Error("catalog without TPC-H tables should error")
	}
}

func TestPrimaryKeysDense(t *testing.T) {
	d := genDefault(t)
	for i, c := range d.Rows("customer") {
		if c[0].I != int64(i+1) {
			t.Fatalf("c_custkey at position %d is %d", i, c[0].I)
		}
	}
	for i, o := range d.Rows("orders") {
		if o[0].I != int64(i+1) {
			t.Fatalf("o_orderkey at position %d is %d", i, o[0].I)
		}
	}
}

func TestNationNamesLowerCase(t *testing.T) {
	d := genDefault(t)
	for _, n := range d.Rows("nation") {
		name := n[1].S
		if name != strings.ToLower(name) {
			t.Errorf("nation name %q should be lower case (paper queries use 'egypt')", name)
		}
	}
	_ = value.Null
}
