// Package tpch generates a deterministic, scaled-down physical copy of the
// TPC-H dataset. The paper evaluates on a 100 GB (SF 100) deployment; we
// cannot materialize that in-process, so the generator populates a small
// physical dataset (default a few thousand orders) whose value
// distributions match the TPC-H spec closely enough for every query
// pattern in the paper (country-code phone prefixes, market segments,
// nation names, order statuses, dates, ...), while the *catalog statistics*
// and the latency model continue to reflect the modeled 100 GB scale.
// DESIGN.md documents this substitution.
package tpch

import (
	"fmt"
	"math/rand"

	"htapxplain/internal/catalog"
	"htapxplain/internal/value"
)

// Dataset is the generated physical data: table name → rows in catalog
// column order.
type Dataset struct {
	Cat    *catalog.Catalog
	Tables map[string][]value.Row
	// Seed and PhysScale record how the data was generated.
	Seed      int64
	PhysScale float64
}

// Rows returns the physical rows of a table (nil if unknown).
func (d *Dataset) Rows(table string) []value.Row { return d.Tables[table] }

// Nations are the 25 TPC-H nations (lowercased: the paper's example query
// filters n_name = 'egypt').
var Nations = []string{
	"algeria", "argentina", "brazil", "canada", "egypt",
	"ethiopia", "france", "germany", "india", "indonesia",
	"iran", "iraq", "japan", "jordan", "kenya",
	"morocco", "mozambique", "peru", "china", "romania",
	"saudi arabia", "vietnam", "russia", "united kingdom", "united states",
}

// Regions are the 5 TPC-H regions.
var Regions = []string{"africa", "america", "asia", "europe", "middle east"}

// nationRegion maps nation index to region index per the TPC-H spec.
var nationRegion = []int64{
	0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0,
	0, 0, 1, 2, 3, 4, 2, 3, 3, 1,
}

// MktSegments are the customer market segments.
var MktSegments = []string{"automobile", "building", "furniture", "machinery", "household"}

// OrderStatuses are the order status codes ('p' = pending, used by the
// paper's Example 1).
var OrderStatuses = []string{"o", "f", "p"}

// OrderPriorities are the five order priorities.
var OrderPriorities = []string{"1-urgent", "2-high", "3-medium", "4-not specified", "5-low"}

// ShipModes are the seven line-item ship modes.
var ShipModes = []string{"reg air", "air", "rail", "ship", "truck", "mail", "fob"}

// ShipInstructs are the four ship instructions.
var ShipInstructs = []string{"deliver in person", "collect cod", "none", "take back return"}

// Containers / types / brands for part.
var (
	containers = []string{"sm case", "sm box", "sm pack", "med bag", "med box", "lg case", "lg box", "lg pack", "jumbo pkg", "wrap jar"}
	partTypes  = []string{"standard anodized tin", "small plated copper", "economy brushed steel", "promo burnished nickel", "large polished brass", "medium anodized steel"}
	partNames  = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched", "blue", "blush"}
)

var comments = []string{
	"carefully packed deposits", "quick final requests", "furious pending accounts",
	"slyly ironic ideas", "bold express foxes", "even silent platelets",
	"regular special packages", "blithely unusual theodolites",
}

// Config controls generation.
type Config struct {
	// PhysScale is the physical scale factor: base TPC-H cardinalities
	// are multiplied by it (e.g. 0.002 → 300 customers, 3 000 orders).
	PhysScale float64
	// Seed drives all randomness; identical seeds yield identical data.
	Seed int64
}

// DefaultConfig is the configuration every experiment uses unless stated
// otherwise: ~3k orders, deterministic seed.
func DefaultConfig() Config { return Config{PhysScale: 0.002, Seed: 42} }

// Generate materializes the dataset described by cfg against the given
// catalog (which must contain the TPC-H schema).
func Generate(cat *catalog.Catalog, cfg Config) (*Dataset, error) {
	if cfg.PhysScale <= 0 {
		return nil, fmt.Errorf("tpch: PhysScale must be positive, got %g", cfg.PhysScale)
	}
	for _, name := range []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"} {
		if _, ok := cat.Table(name); !ok {
			return nil, fmt.Errorf("tpch: catalog missing table %q", name)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{
		Cat:    cat,
		Tables: make(map[string][]value.Row, 8),
		Seed:   cfg.Seed, PhysScale: cfg.PhysScale,
	}

	n := func(base int) int {
		v := int(float64(base) * cfg.PhysScale)
		if v < 1 {
			v = 1
		}
		return v
	}
	nSupplier := n(10_000)
	nCustomer := n(150_000)
	nPart := n(200_000)
	nOrders := n(1_500_000)

	d.Tables["region"] = genRegion()
	d.Tables["nation"] = genNation()
	d.Tables["supplier"] = genSupplier(rng, nSupplier)
	d.Tables["customer"] = genCustomer(rng, nCustomer)
	d.Tables["part"] = genPart(rng, nPart)
	d.Tables["partsupp"] = genPartSupp(rng, nPart, nSupplier)
	orders, lineitems := genOrdersAndLineitems(rng, nOrders, nCustomer, nPart, nSupplier)
	d.Tables["orders"] = orders
	d.Tables["lineitem"] = lineitems
	return d, nil
}

func pick(rng *rand.Rand, opts []string) string { return opts[rng.Intn(len(opts))] }

func genRegion() []value.Row {
	rows := make([]value.Row, len(Regions))
	for i, name := range Regions {
		rows[i] = value.Row{
			value.NewInt(int64(i)),
			value.NewString(name),
			value.NewString("region comment " + name),
		}
	}
	return rows
}

func genNation() []value.Row {
	rows := make([]value.Row, len(Nations))
	for i, name := range Nations {
		rows[i] = value.Row{
			value.NewInt(int64(i)),
			value.NewString(name),
			value.NewInt(nationRegion[i]),
			value.NewString("nation comment " + name),
		}
	}
	return rows
}

// phone builds a TPC-H style phone number whose first two digits are the
// country code nationkey+10 — this is what makes the paper's
// SUBSTRING(c_phone,1,2) IN ('20','40',...) predicates selective.
func phone(rng *rand.Rand, nationKey int64) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", nationKey+10,
		100+rng.Intn(900), 100+rng.Intn(900), 1000+rng.Intn(9000))
}

func genSupplier(rng *rand.Rand, n int) []value.Row {
	rows := make([]value.Row, n)
	for i := 0; i < n; i++ {
		nk := int64(rng.Intn(25))
		rows[i] = value.Row{
			value.NewInt(int64(i + 1)),
			value.NewString(fmt.Sprintf("supplier#%09d", i+1)),
			value.NewString(fmt.Sprintf("address %d", rng.Intn(10000))),
			value.NewInt(nk),
			value.NewString(phone(rng, nk)),
			value.NewFloat(float64(rng.Intn(1100000)-100000) / 100.0),
			value.NewString(pick(rng, comments)),
		}
	}
	return rows
}

func genCustomer(rng *rand.Rand, n int) []value.Row {
	rows := make([]value.Row, n)
	for i := 0; i < n; i++ {
		nk := int64(rng.Intn(25))
		rows[i] = value.Row{
			value.NewInt(int64(i + 1)),
			value.NewString(fmt.Sprintf("customer#%09d", i+1)),
			value.NewString(fmt.Sprintf("address %d", rng.Intn(10000))),
			value.NewInt(nk),
			value.NewString(phone(rng, nk)),
			value.NewFloat(float64(rng.Intn(1100000)-100000) / 100.0),
			value.NewString(pick(rng, MktSegments)),
			value.NewString(pick(rng, comments)),
		}
	}
	return rows
}

func genPart(rng *rand.Rand, n int) []value.Row {
	rows := make([]value.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = value.Row{
			value.NewInt(int64(i + 1)),
			value.NewString(pick(rng, partNames) + " " + pick(rng, partNames)),
			value.NewString(fmt.Sprintf("manufacturer#%d", 1+rng.Intn(5))),
			value.NewString(fmt.Sprintf("brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5))),
			value.NewString(pick(rng, partTypes)),
			value.NewInt(int64(1 + rng.Intn(50))),
			value.NewString(pick(rng, containers)),
			value.NewFloat(900.0 + float64(i%200) + float64(rng.Intn(100))/100.0),
			value.NewString(pick(rng, comments)),
		}
	}
	return rows
}

func genPartSupp(rng *rand.Rand, nPart, nSupp int) []value.Row {
	rows := make([]value.Row, 0, nPart*4)
	for p := 1; p <= nPart; p++ {
		for j := 0; j < 4; j++ {
			rows = append(rows, value.Row{
				value.NewInt(int64(p)),
				value.NewInt(int64(1 + (p+j*nPart/4)%nSupp)),
				value.NewInt(int64(1 + rng.Intn(9999))),
				value.NewFloat(float64(100+rng.Intn(99900)) / 100.0),
				value.NewString(pick(rng, comments)),
			})
		}
	}
	return rows
}

// epochDay converts a (year, dayOfYear) pair into days since 1992-01-01,
// the start of the TPC-H date range.
func epochDay(year, doy int) int64 { return int64((year-1992)*365 + doy) }

func genOrdersAndLineitems(rng *rand.Rand, nOrders, nCust, nPart, nSupp int) (orders, lineitems []value.Row) {
	orders = make([]value.Row, nOrders)
	lineitems = make([]value.Row, 0, nOrders*4)
	for i := 0; i < nOrders; i++ {
		okey := int64(i + 1)
		ckey := int64(1 + rng.Intn(nCust))
		status := pick(rng, OrderStatuses)
		odate := epochDay(1992+rng.Intn(7), rng.Intn(365))
		nLines := 1 + rng.Intn(7)
		var total float64
		for ln := 1; ln <= nLines; ln++ {
			qty := float64(1 + rng.Intn(50))
			price := float64(90000+rng.Intn(10000)) / 100.0 * qty / 10
			disc := float64(rng.Intn(11)) / 100.0
			tax := float64(rng.Intn(9)) / 100.0
			total += price * (1 - disc) * (1 + tax)
			ship := odate + int64(1+rng.Intn(121))
			commit := odate + int64(30+rng.Intn(60))
			receipt := ship + int64(1+rng.Intn(30))
			rf := "n"
			if status == "f" && rng.Intn(2) == 0 {
				rf = pick(rng, []string{"r", "a"})
			}
			ls := "o"
			if status == "f" {
				ls = "f"
			}
			lineitems = append(lineitems, value.Row{
				value.NewInt(okey),
				value.NewInt(int64(1 + rng.Intn(nPart))),
				value.NewInt(int64(1 + rng.Intn(nSupp))),
				value.NewInt(int64(ln)),
				value.NewFloat(qty),
				value.NewFloat(price),
				value.NewFloat(disc),
				value.NewFloat(tax),
				value.NewString(rf),
				value.NewString(ls),
				value.NewInt(ship),
				value.NewInt(commit),
				value.NewInt(receipt),
				value.NewString(pick(rng, ShipInstructs)),
				value.NewString(pick(rng, ShipModes)),
				value.NewString(pick(rng, comments)),
			})
		}
		orders[i] = value.Row{
			value.NewInt(okey),
			value.NewInt(ckey),
			value.NewString(status),
			value.NewFloat(total),
			value.NewInt(odate),
			value.NewString(pick(rng, OrderPriorities)),
			value.NewString(fmt.Sprintf("clerk#%09d", 1+rng.Intn(1000))),
			value.NewInt(0),
			value.NewString(pick(rng, comments)),
		}
	}
	return orders, lineitems
}
