// Package prompt implements the paper's prompt engineering (§V, Table I):
// a three-part structured prompt — background information, task
// description, and additional user-provided context — followed by the
// retrieved KNOWLEDGE entries and the QUESTION. The rendered text uses
// stable section markers so the (simulated) LLM can consume it the way a
// real LLM consumes the paper's prompt.
package prompt

import (
	"fmt"
	"strings"

	"htapxplain/internal/knowledge"
	"htapxplain/internal/plan"
)

// Section markers in the rendered prompt.
const (
	MarkerBackground = "=== BACKGROUND ==="
	MarkerTask       = "=== TASK ==="
	MarkerUserCtx    = "=== ADDITIONAL USER CONTEXT ==="
	MarkerKnowledge  = "=== KNOWLEDGE"
	MarkerQuestion   = "=== QUESTION ==="
	// MarkerPrevAnswer and MarkerFollowUp frame the conversational
	// follow-up exchanges (§VI-B).
	MarkerPrevAnswer = "=== PREVIOUS ANSWER ==="
	MarkerFollowUp   = "=== FOLLOW-UP QUESTION ==="
)

// GuardrailSentence is the cost-comparison prohibition the paper found
// necessary (§V): engine cost estimates use different units and must not
// be compared.
const GuardrailSentence = "Note that the optimizers for TP and AP engines are distinct, " +
	"leading to different execution plans. Therefore, you are not allowed to compare " +
	"the cost estimates of the execution plans from TP and AP engines."

// Question is the new query the user asks about.
type Question struct {
	SQL        string
	TPPlanJSON string
	APPlanJSON string
	Winner     plan.Engine
	Speedup    float64
}

// Builder assembles prompts.
type Builder struct {
	// SchemaSummary is injected into the background section.
	SchemaSummary string
	// DatasetDescription, e.g. "TPC-H, 100GB".
	DatasetDescription string
	// IncludeGuardrail controls the cost-comparison prohibition
	// (the ablation bench flips this off).
	IncludeGuardrail bool
	// IncludeRAG controls the retriever framing and the "return None"
	// instruction. The §VI-D fair comparison "removed RAG-related
	// context but retained the same plan details" — that ablation sets
	// this false.
	IncludeRAG bool
	// UserContext is the optional third prompt part (e.g. "an additional
	// index has been created on c_phone").
	UserContext string
}

// NewBuilder returns a builder with the paper's defaults.
func NewBuilder(schemaSummary string) *Builder {
	return &Builder{
		SchemaSummary:      schemaSummary,
		DatasetDescription: "TPC-H default schema, 100GB of data",
		IncludeGuardrail:   true,
		IncludeRAG:         true,
	}
}

// Build renders the full prompt: three engineered parts, then the
// retrieved knowledge, then the question. Pass no hits for the RAG-free
// ablation (the DBG-PT-fair comparison in §VI-D).
func (b *Builder) Build(hits []knowledge.Hit, q Question) string {
	var sb strings.Builder
	sb.WriteString(MarkerBackground)
	sb.WriteString("\nWe are using RAG to assist database users in understanding query performance ")
	sb.WriteString("across different engines in our HTAP system - specifically, why one engine performs ")
	sb.WriteString("faster while the other is slower. The dataset is ")
	sb.WriteString(b.DatasetDescription)
	sb.WriteString(". Our HTAP system has two database engines, \"TP\" and \"AP\". ")
	sb.WriteString("The TP engine uses row-oriented storage, while the AP engine utilizes column-oriented storage. ")
	if b.IncludeGuardrail {
		sb.WriteString(GuardrailSentence)
	}
	sb.WriteString("\nSchema:\n")
	sb.WriteString(b.SchemaSummary)

	sb.WriteString("\n")
	sb.WriteString(MarkerTask)
	sb.WriteString("\nI will input the execution plans for the query from both the TP and AP engines. ")
	sb.WriteString("Evaluate the likely performance of each engine")
	if b.IncludeGuardrail {
		sb.WriteString(" without directly comparing the cost estimates")
	}
	sb.WriteString(". Focus on factors such as the join methods used, the storage formats ")
	sb.WriteString("(row-oriented vs. column-oriented), index utilization, and any potential implications ")
	sb.WriteString("of the execution plan characteristics on query performance. ")
	sb.WriteString("Explain which engine performs better for this specific query and why. ")
	if b.IncludeRAG {
		sb.WriteString("To assist you, a retriever has found relevant historical plans from ")
		sb.WriteString("our knowledge base with precise performance explanations from our experts. ")
		sb.WriteString("If the KNOWLEDGE does not contain the facts to answer the QUESTION return None.")
	}
	sb.WriteString("\n")

	if b.UserContext != "" {
		sb.WriteString(MarkerUserCtx)
		sb.WriteString("\n")
		sb.WriteString(b.UserContext)
		sb.WriteString("\n")
	}

	for i, h := range hits {
		fmt.Fprintf(&sb, "%s %d ===\n", MarkerKnowledge, i+1)
		fmt.Fprintf(&sb, "query: %s\n", singleLine(h.Entry.SQL))
		fmt.Fprintf(&sb, "tp_plan: %s\n", h.Entry.TPPlanJSON)
		fmt.Fprintf(&sb, "ap_plan: %s\n", h.Entry.APPlanJSON)
		fmt.Fprintf(&sb, "result: %s faster (%.1fx)\n", h.Entry.Winner, h.Entry.Speedup)
		fmt.Fprintf(&sb, "similarity_distance: %.4f\n", h.Distance)
		fmt.Fprintf(&sb, "explanation: %s\n", h.Entry.Explanation)
	}

	sb.WriteString(MarkerQuestion)
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "query: %s\n", singleLine(q.SQL))
	fmt.Fprintf(&sb, "tp_plan: %s\n", q.TPPlanJSON)
	fmt.Fprintf(&sb, "ap_plan: %s\n", q.APPlanJSON)
	fmt.Fprintf(&sb, "result: %s faster (%.1fx)\n", q.Winner, q.Speedup)
	return sb.String()
}

// singleLine collapses whitespace so multi-line SQL stays on one prompt
// line (the prompt's fields are line-oriented).
func singleLine(sql string) string {
	return strings.Join(strings.Fields(sql), " ")
}
