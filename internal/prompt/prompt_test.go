package prompt

import (
	"strings"
	"testing"

	"htapxplain/internal/expert"
	"htapxplain/internal/knowledge"
	"htapxplain/internal/plan"
)

func testQuestion() Question {
	return Question{
		SQL:        "SELECT COUNT(*) FROM t",
		TPPlanJSON: `{"Node Type":"Table Scan"}`,
		APPlanJSON: `{"Node Type":"Aggregate"}`,
		Winner:     plan.AP,
		Speedup:    12.3,
	}
}

func testHits() []knowledge.Hit {
	return []knowledge.Hit{
		{Entry: &knowledge.Entry{
			SQL: "SELECT 1", TPPlanJSON: "{tp}", APPlanJSON: "{ap}",
			Winner: plan.AP, Speedup: 4.2, Explanation: "hash join beats nested loop",
			Factors: []expert.Factor{expert.FactorHashJoinAdvantage},
		}, Distance: 0.01},
		{Entry: &knowledge.Entry{
			SQL: "SELECT 2", Winner: plan.TP, Speedup: 2.0, Explanation: "index order",
		}, Distance: 0.2},
	}
}

func TestBuildContainsAllSections(t *testing.T) {
	b := NewBuilder("schema here")
	b.UserContext = "an index has been created on c_phone"
	text := b.Build(testHits(), testQuestion())
	for _, marker := range []string{MarkerBackground, MarkerTask, MarkerUserCtx, MarkerQuestion} {
		if !strings.Contains(text, marker) {
			t.Errorf("prompt missing section %q", marker)
		}
	}
	if strings.Count(text, MarkerKnowledge) != 2 {
		t.Errorf("expected 2 knowledge sections:\n%s", text)
	}
}

func TestGuardrailToggle(t *testing.T) {
	b := NewBuilder("s")
	withGuard := b.Build(nil, testQuestion())
	if !strings.Contains(withGuard, "not allowed to compare") {
		t.Error("guardrail sentence missing by default")
	}
	b.IncludeGuardrail = false
	withoutGuard := b.Build(nil, testQuestion())
	if strings.Contains(withoutGuard, "not allowed to compare") {
		t.Error("guardrail should be absent when disabled")
	}
}

func TestKnowledgeFieldsRendered(t *testing.T) {
	text := NewBuilder("s").Build(testHits(), testQuestion())
	for _, want := range []string{
		"query: SELECT 1", "tp_plan: {tp}", "ap_plan: {ap}",
		"result: AP faster (4.2x)", "explanation: hash join beats nested loop",
		"similarity_distance: 0.0100",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prompt missing %q", want)
		}
	}
}

func TestQuestionFieldsRendered(t *testing.T) {
	text := NewBuilder("s").Build(nil, testQuestion())
	for _, want := range []string{
		"query: SELECT COUNT(*) FROM t",
		`tp_plan: {"Node Type":"Table Scan"}`,
		"result: AP faster (12.3x)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prompt missing %q", want)
		}
	}
}

func TestUserContextOmittedWhenEmpty(t *testing.T) {
	text := NewBuilder("s").Build(nil, testQuestion())
	if strings.Contains(text, MarkerUserCtx) {
		t.Error("empty user context should omit the section")
	}
}

func TestSchemaIncluded(t *testing.T) {
	text := NewBuilder("customer(15000000 rows): c_custkey").Build(nil, testQuestion())
	if !strings.Contains(text, "c_custkey") {
		t.Error("schema summary missing from background")
	}
}

func TestRAGFreePromptStillHasTaskAndQuestion(t *testing.T) {
	// the §VI-D fair-comparison variant: no knowledge sections
	text := NewBuilder("s").Build(nil, testQuestion())
	if strings.Contains(text, MarkerKnowledge) {
		t.Error("RAG-free prompt should have no knowledge sections")
	}
	if !strings.Contains(text, MarkerTask) || !strings.Contains(text, MarkerQuestion) {
		t.Error("task/question sections must remain")
	}
}

func TestDeterministicOutput(t *testing.T) {
	b := NewBuilder("s")
	if b.Build(testHits(), testQuestion()) != b.Build(testHits(), testQuestion()) {
		t.Error("prompt rendering must be deterministic")
	}
}
