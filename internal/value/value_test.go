package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INT", KindFloat: "FLOAT",
		KindString: "STRING", KindBool: "BOOL", Kind(99): "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(7); v.K != KindInt || v.I != 7 {
		t.Errorf("NewInt: %+v", v)
	}
	if v := NewFloat(2.5); v.K != KindFloat || v.F != 2.5 {
		t.Errorf("NewFloat: %+v", v)
	}
	if v := NewString("x"); v.K != KindString || v.S != "x" {
		t.Errorf("NewString: %+v", v)
	}
	if v := NewBool(true); !v.Bool() {
		t.Errorf("NewBool(true).Bool() = false")
	}
	if v := NewBool(false); v.Bool() {
		t.Errorf("NewBool(false).Bool() = true")
	}
	if !Null.IsNull() || NewInt(0).IsNull() {
		t.Error("IsNull misbehaves")
	}
}

func TestAsFloatCoercion(t *testing.T) {
	if f, ok := NewInt(3).AsFloat(); !ok || f != 3 {
		t.Errorf("int AsFloat = %v, %v", f, ok)
	}
	if f, ok := NewFloat(1.5).AsFloat(); !ok || f != 1.5 {
		t.Errorf("float AsFloat = %v, %v", f, ok)
	}
	if _, ok := NewString("x").AsFloat(); ok {
		t.Error("string AsFloat should fail")
	}
	if _, ok := Null.AsFloat(); ok {
		t.Error("null AsFloat should fail")
	}
}

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.5), -1}, // mixed numeric
		{NewFloat(2.5), NewInt(2), 1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{Null, NewInt(1), -1}, // null sorts first
		{NewInt(1), Null, 1},
		{Null, Null, 0},
		{NewBool(false), NewBool(true), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Null.Equal(Null) {
		t.Error("NULL = NULL must be false (SQL semantics)")
	}
	if Null.Equal(NewInt(0)) || NewInt(0).Equal(Null) {
		t.Error("NULL = x must be false")
	}
	if !NewInt(5).Equal(NewFloat(5)) {
		t.Error("5 = 5.0 should hold across numeric kinds")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	gen := func(i int64, f float64, s string, pick uint8) Value {
		switch pick % 4 {
		case 0:
			return NewInt(i)
		case 1:
			return NewFloat(f)
		case 2:
			return NewString(s)
		default:
			return Null
		}
	}
	prop := func(i1, i2 int64, f1, f2 float64, s1, s2 string, p1, p2 uint8) bool {
		if math.IsNaN(f1) || math.IsNaN(f2) {
			return true
		}
		a, b := gen(i1, f1, s1, p1), gen(i2, f2, s2, p2)
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareReflexiveProperty(t *testing.T) {
	prop := func(i int64, f float64, s string, p uint8) bool {
		if math.IsNaN(f) {
			return true
		}
		var v Value
		switch p % 4 {
		case 0:
			v = NewInt(i)
		case 1:
			v = NewFloat(f)
		case 2:
			v = NewString(s)
		default:
			v = Null
		}
		return v.Compare(v) == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyDistinguishesValuesProperty(t *testing.T) {
	// equal keys must mean Compare == 0 for same-kind values
	prop := func(a, b int64) bool {
		ka, kb := NewInt(a).Key(), NewInt(b).Key()
		return (ka == kb) == (a == b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	propS := func(a, b string) bool {
		ka, kb := NewString(a).Key(), NewString(b).Key()
		return (ka == kb) == (a == b)
	}
	if err := quick.Check(propS, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyKindsDisjoint(t *testing.T) {
	// the int 1 and the string "1" must not collide
	vals := []Value{NewInt(1), NewFloat(1), NewString("1"), NewBool(true), Null}
	seen := map[string]Value{}
	for _, v := range vals {
		if prev, dup := seen[v.Key()]; dup {
			t.Errorf("key collision between %v(%s) and %v(%s)", prev, prev.K, v, v.K)
		}
		seen[v.Key()] = v
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-3), "-3"},
		{NewFloat(2.5), "2.5"},
		{NewString("hi"), "hi"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.v.K, got, c.want)
		}
	}
}

func TestRowCloneIndependence(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	c[0] = NewInt(99)
	if r[0].I != 1 {
		t.Error("Clone must not alias the original row")
	}
}

func TestRowKeySelectsColumns(t *testing.T) {
	a := Row{NewInt(1), NewString("x"), NewFloat(2)}
	b := Row{NewInt(1), NewString("y"), NewFloat(2)}
	if a.Key([]int{0, 2}) != b.Key([]int{0, 2}) {
		t.Error("keys over identical column subsets should match")
	}
	if a.Key([]int{0, 1}) == b.Key([]int{0, 1}) {
		t.Error("keys over differing column subsets should differ")
	}
}

func TestRowString(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	if got := r.String(); got != "1, a" {
		t.Errorf("Row.String() = %q", got)
	}
}
