// Package value defines the runtime datum representation shared by the row
// and column storage engines and the executors: a small tagged union plus
// row/comparison helpers.
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates runtime value kinds.
type Kind int

const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is one datum. The zero Value is NULL.
type Value struct {
	K Kind
	I int64   // KindInt / KindBool (0 or 1)
	F float64 // KindFloat
	S string  // KindString
}

// Null is the SQL NULL value.
var Null = Value{K: KindNull}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{K: KindInt, I: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{K: KindFloat, F: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{K: KindString, S: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	if v {
		return Value{K: KindBool, I: 1}
	}
	return Value{K: KindBool, I: 0}
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Bool returns the truth value of a KindBool value (false for others).
func (v Value) Bool() bool { return v.K == KindBool && v.I != 0 }

// AsFloat coerces numeric values to float64 for arithmetic.
func (v Value) AsFloat() (float64, bool) {
	switch v.K {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	default:
		return 0, false
	}
}

// String renders the value the way EXPLAIN/test output wants it.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Compare orders two values: -1 if v<o, 0 if equal, +1 if v>o. NULL sorts
// first. Mixed numeric kinds compare numerically; otherwise kinds compare
// by kind order (a stable total order sufficient for sorting).
func (v Value) Compare(o Value) int {
	if v.K == KindNull || o.K == KindNull {
		switch {
		case v.K == KindNull && o.K == KindNull:
			return 0
		case v.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if vf, ok := v.AsFloat(); ok {
		if of, ok2 := o.AsFloat(); ok2 {
			switch {
			case vf < of:
				return -1
			case vf > of:
				return 1
			default:
				return 0
			}
		}
	}
	if v.K != o.K {
		if v.K < o.K {
			return -1
		}
		return 1
	}
	switch v.K {
	case KindString:
		return strings.Compare(v.S, o.S)
	case KindBool:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// Equal reports SQL equality (NULL != NULL).
func (v Value) Equal(o Value) bool {
	if v.K == KindNull || o.K == KindNull {
		return false
	}
	return v.Compare(o) == 0
}

// Key returns a map-key-safe representation for hash joins and group-by.
func (v Value) Key() string {
	switch v.K {
	case KindNull:
		return "\x00n"
	case KindInt:
		return "\x00i" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		return "\x00f" + strconv.FormatFloat(v.F, 'b', -1, 64)
	case KindString:
		return "\x00s" + v.S
	case KindBool:
		return "\x00b" + strconv.FormatInt(v.I, 10)
	default:
		return "\x00?"
	}
}

// Row is a tuple of values.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Key concatenates the keys of selected columns, for multi-column hashing.
func (r Row) Key(cols []int) string {
	var b strings.Builder
	for _, c := range cols {
		b.WriteString(r[c].Key())
		b.WriteByte('\x1f')
	}
	return b.String()
}

// String renders the row as a comma-separated list.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}
