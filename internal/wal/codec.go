package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"htapxplain/internal/repl"
	"htapxplain/internal/value"
)

// On-disk record frame:
//
//	offset 0  u32 little-endian  payload length (>= recordHeaderLen)
//	offset 4  u32 little-endian  CRC-32C (Castagnoli) of the payload
//	offset 8  payload            [kind u8][lsn u64 LE][body]
//
// The length prefix lets the reader skip to the next frame without
// understanding the payload; the CRC makes a torn or bit-flipped record
// detectable, so recovery can stop at the last intact prefix of the log.

const (
	// frameHeaderLen is the length+CRC prefix before the payload.
	frameHeaderLen = 8
	// recordHeaderLen is the kind+LSN prefix inside the payload.
	recordHeaderLen = 9
	// maxRecordLen bounds a single payload; anything larger is treated as
	// corruption rather than allocated (a garbage length prefix must not
	// drive a multi-gigabyte allocation).
	maxRecordLen = 16 << 20
)

// castagnoli is the CRC-32C table (the polynomial used by iSCSI, ext4 and
// most storage formats — hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Kind tags the record types the log carries.
type Kind uint8

const (
	// KindMutation is one committed DML statement (a repl.Mutation body).
	KindMutation Kind = 1
	// KindCheckpoint marks that a checkpoint at the record's LSN has been
	// durably written; it carries no body.
	KindCheckpoint Kind = 2
	// KindShutdown is the clean-shutdown marker appended by a graceful
	// Close, stamped with the final commit LSN; it carries no body.
	KindShutdown Kind = 3
	// KindTxn is one committed multi-table transaction: a list of
	// per-table mutation bodies with consecutive LSNs, framed as a single
	// record so the commit is atomic in the log — a torn or corrupt record
	// drops the whole transaction, never a prefix of it. The record's LSN
	// is the transaction's last (highest) mutation LSN, which keeps
	// Append's non-decreasing-LSN invariant. Single-table commits keep
	// using KindMutation.
	KindTxn Kind = 4
)

func (k Kind) valid() bool { return k >= KindMutation && k <= KindTxn }

func (k Kind) String() string {
	switch k {
	case KindMutation:
		return "mutation"
	case KindCheckpoint:
		return "checkpoint"
	case KindShutdown:
		return "shutdown"
	case KindTxn:
		return "txn"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one logical log record.
type Record struct {
	LSN  uint64
	Kind Kind
	// Body is the kind-specific payload (a mutation encoding for
	// KindMutation, empty for markers).
	Body []byte
}

// appendFrame appends the framed encoding of rec to dst.
func appendFrame(dst []byte, rec Record) []byte {
	payloadLen := recordHeaderLen + len(rec.Body)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payloadLen))
	crcAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // CRC placeholder
	payloadAt := len(dst)
	dst = append(dst, byte(rec.Kind))
	dst = binary.LittleEndian.AppendUint64(dst, rec.LSN)
	dst = append(dst, rec.Body...)
	crc := crc32.Checksum(dst[payloadAt:], castagnoli)
	binary.LittleEndian.PutUint32(dst[crcAt:], crc)
	return dst
}

// errTorn is the internal sentinel for "the byte stream ends mid-record or
// fails its CRC here": everything before it is intact, everything at and
// after it is unusable. Recovery truncates at this point.
var errTorn = fmt.Errorf("wal: torn or corrupt record")

// readFrame reads one frame from r. It returns errTorn for a truncated,
// oversized or CRC-failing frame and io.EOF at a clean record boundary.
func readFrame(r *bufio.Reader) (Record, int, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return Record{}, 0, io.EOF // clean end
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return Record{}, 0, errTorn
	}
	payloadLen := binary.LittleEndian.Uint32(hdr[0:4])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
	if payloadLen < recordHeaderLen || payloadLen > maxRecordLen {
		return Record{}, 0, errTorn
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, 0, errTorn
	}
	if crc32.Checksum(payload, castagnoli) != wantCRC {
		return Record{}, 0, errTorn
	}
	rec := Record{
		Kind: Kind(payload[0]),
		LSN:  binary.LittleEndian.Uint64(payload[1:9]),
		Body: payload[recordHeaderLen:],
	}
	if !rec.Kind.valid() {
		return Record{}, 0, errTorn
	}
	return rec, frameHeaderLen + int(payloadLen), nil
}

// ---------------------------------------------------------------- values

// Value wire format: one kind byte, then a fixed- or length-prefixed body.
// The encoding is canonical (one byte sequence per value), so decode∘encode
// is the identity — the property FuzzWALDecode checks.
const (
	tagNull   = 0
	tagInt    = 1
	tagFloat  = 2
	tagString = 3
	tagBool   = 4
)

// AppendValue appends the binary encoding of v to dst. The codec is shared
// by the WAL mutation records and the recovery checkpoints.
func AppendValue(dst []byte, v value.Value) []byte {
	switch v.K {
	case value.KindNull:
		return append(dst, tagNull)
	case value.KindInt:
		dst = append(dst, tagInt)
		return binary.LittleEndian.AppendUint64(dst, uint64(v.I))
	case value.KindFloat:
		dst = append(dst, tagFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
	case value.KindString:
		dst = append(dst, tagString)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v.S)))
		return append(dst, v.S...)
	case value.KindBool:
		dst = append(dst, tagBool)
		if v.I != 0 {
			return append(dst, 1)
		}
		return append(dst, 0)
	default:
		// unknown kinds are logged as NULL rather than silently panicking;
		// the value package has no other kinds today
		return append(dst, tagNull)
	}
}

// ReadValue decodes one value from b, returning it and the bytes consumed.
func ReadValue(b []byte) (value.Value, int, error) {
	if len(b) == 0 {
		return value.Value{}, 0, fmt.Errorf("wal: truncated value")
	}
	switch b[0] {
	case tagNull:
		return value.Null, 1, nil
	case tagInt:
		if len(b) < 9 {
			return value.Value{}, 0, fmt.Errorf("wal: truncated int value")
		}
		return value.NewInt(int64(binary.LittleEndian.Uint64(b[1:9]))), 9, nil
	case tagFloat:
		if len(b) < 9 {
			return value.Value{}, 0, fmt.Errorf("wal: truncated float value")
		}
		return value.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b[1:9]))), 9, nil
	case tagString:
		if len(b) < 5 {
			return value.Value{}, 0, fmt.Errorf("wal: truncated string header")
		}
		n := int(binary.LittleEndian.Uint32(b[1:5]))
		if n > len(b)-5 {
			return value.Value{}, 0, fmt.Errorf("wal: string length %d exceeds record", n)
		}
		return value.NewString(string(b[5 : 5+n])), 5 + n, nil
	case tagBool:
		if len(b) < 2 {
			return value.Value{}, 0, fmt.Errorf("wal: truncated bool value")
		}
		if b[1] > 1 {
			return value.Value{}, 0, fmt.Errorf("wal: bool byte %d out of range", b[1])
		}
		return value.NewBool(b[1] == 1), 2, nil
	default:
		return value.Value{}, 0, fmt.Errorf("wal: unknown value tag %d", b[0])
	}
}

// AppendRow appends the encoding of a row: u16 column count, then values.
func AppendRow(dst []byte, r value.Row) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r)))
	for _, v := range r {
		dst = AppendValue(dst, v)
	}
	return dst
}

// ReadRow decodes one row from b, returning it and the bytes consumed.
func ReadRow(b []byte) (value.Row, int, error) {
	if len(b) < 2 {
		return nil, 0, fmt.Errorf("wal: truncated row header")
	}
	ncols := int(binary.LittleEndian.Uint16(b[0:2]))
	// one byte per value is the floor; reject counts the record cannot hold
	if ncols > len(b)-2 {
		return nil, 0, fmt.Errorf("wal: row column count %d exceeds record", ncols)
	}
	off := 2
	row := make(value.Row, ncols)
	for i := range row {
		v, n, err := ReadValue(b[off:])
		if err != nil {
			return nil, 0, err
		}
		row[i] = v
		off += n
	}
	return row, off, nil
}

// ------------------------------------------------------------- mutations

// Mutation body wire format:
//
//	u16 table-name length, table name bytes
//	u32 delete count, then u64 RID each
//	u32 insert count, then per insert: u64 RID, row (u16 ncols + values)
//
// The LSN lives in the record header, not the body.

// EncodeMutation returns the canonical body encoding of m (without the
// record frame; the LSN is carried by the frame header).
func EncodeMutation(m *repl.Mutation) []byte {
	var dst []byte
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Table)))
	dst = append(dst, m.Table...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Deletes)))
	for _, rid := range m.Deletes {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(rid))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Inserts)))
	for _, ins := range m.Inserts {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(ins.RID))
		dst = AppendRow(dst, ins.Row)
	}
	return dst
}

// DecodeMutation decodes a mutation body produced by EncodeMutation. The
// decode is strict: trailing bytes are rejected, so every accepted body is
// the canonical encoding of the mutation it returns. lsn stamps the result.
func DecodeMutation(lsn uint64, b []byte) (*repl.Mutation, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("wal: truncated mutation header")
	}
	nameLen := int(binary.LittleEndian.Uint16(b[0:2]))
	off := 2
	if nameLen > len(b)-off {
		return nil, fmt.Errorf("wal: table name length %d exceeds record", nameLen)
	}
	m := &repl.Mutation{LSN: lsn, Table: string(b[off : off+nameLen])}
	off += nameLen

	if len(b)-off < 4 {
		return nil, fmt.Errorf("wal: truncated delete count")
	}
	nDel := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if nDel > (len(b)-off)/8 {
		return nil, fmt.Errorf("wal: delete count %d exceeds record", nDel)
	}
	if nDel > 0 {
		m.Deletes = make([]int64, nDel)
		for i := range m.Deletes {
			m.Deletes[i] = int64(binary.LittleEndian.Uint64(b[off:]))
			off += 8
		}
	}

	if len(b)-off < 4 {
		return nil, fmt.Errorf("wal: truncated insert count")
	}
	nIns := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	// u64 RID + u16 column count is the per-insert floor
	if nIns > (len(b)-off)/10 {
		return nil, fmt.Errorf("wal: insert count %d exceeds record", nIns)
	}
	if nIns > 0 {
		m.Inserts = make([]repl.RowVersion, nIns)
		for i := range m.Inserts {
			if len(b)-off < 8 {
				return nil, fmt.Errorf("wal: truncated insert RID")
			}
			m.Inserts[i].RID = int64(binary.LittleEndian.Uint64(b[off:]))
			off += 8
			row, n, err := ReadRow(b[off:])
			if err != nil {
				return nil, err
			}
			m.Inserts[i].Row = row
			off += n
		}
	}
	if off != len(b) {
		return nil, fmt.Errorf("wal: %d trailing bytes after mutation", len(b)-off)
	}
	return m, nil
}

// ----------------------------------------------------------- transactions

// Txn body wire format:
//
//	u32 mutation count (>= 1)
//	per mutation: u64 LSN, u32 body length, mutation body (EncodeMutation)
//
// Mutation LSNs must be consecutive and the record's LSN must equal the
// last mutation's, so one transaction occupies one contiguous LSN range
// and replay can apply its mutations exactly like standalone ones.

// EncodeTxn returns the canonical body encoding of a committed
// transaction's mutation list (one per touched table, in LSN order).
func EncodeTxn(muts []*repl.Mutation) []byte {
	var dst []byte
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(muts)))
	for _, m := range muts {
		dst = binary.LittleEndian.AppendUint64(dst, m.LSN)
		body := EncodeMutation(m)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
		dst = append(dst, body...)
	}
	return dst
}

// DecodeTxn decodes a transaction body produced by EncodeTxn. Like
// DecodeMutation the decode is strict — trailing bytes, an empty
// mutation list, non-consecutive LSNs or a record LSN that is not the
// last mutation's are all rejected — so every accepted body is the
// canonical encoding of the transaction it returns. lsn is the record's
// LSN (the transaction's last).
func DecodeTxn(lsn uint64, b []byte) ([]*repl.Mutation, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wal: truncated transaction header")
	}
	n := int(binary.LittleEndian.Uint32(b))
	off := 4
	if n == 0 {
		return nil, fmt.Errorf("wal: empty transaction record")
	}
	// u64 LSN + u32 length + the 10-byte mutation-body floor per entry
	if n > (len(b)-off)/22 {
		return nil, fmt.Errorf("wal: transaction mutation count %d exceeds record", n)
	}
	muts := make([]*repl.Mutation, 0, n)
	var prev uint64
	for i := 0; i < n; i++ {
		if len(b)-off < 12 {
			return nil, fmt.Errorf("wal: truncated transaction mutation header")
		}
		mlsn := binary.LittleEndian.Uint64(b[off:])
		off += 8
		blen := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if blen > len(b)-off {
			return nil, fmt.Errorf("wal: transaction mutation length %d exceeds record", blen)
		}
		if i > 0 && mlsn != prev+1 {
			return nil, fmt.Errorf("wal: transaction LSNs not consecutive (%d after %d)", mlsn, prev)
		}
		m, err := DecodeMutation(mlsn, b[off:off+blen])
		if err != nil {
			return nil, err
		}
		off += blen
		muts = append(muts, m)
		prev = mlsn
	}
	if prev != lsn {
		return nil, fmt.Errorf("wal: transaction record LSN %d != last mutation LSN %d", lsn, prev)
	}
	if off != len(b) {
		return nil, fmt.Errorf("wal: %d trailing bytes after transaction", len(b)-off)
	}
	return muts, nil
}
