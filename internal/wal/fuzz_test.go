package wal

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"

	"htapxplain/internal/repl"
	"htapxplain/internal/value"
)

// FuzzWALDecode feeds arbitrary bytes to the segment reader. The contract
// under attack: whatever the bytes are — a valid log, a truncation at any
// offset, bit flips, or pure noise — decoding must never panic, must stop
// at the first damaged frame, and every record it does return must be
// intact: its frame re-encodes to the exact bytes consumed, and a mutation
// body decodes to a mutation whose canonical encoding is that body. CRC
// collisions are the only way a corrupt record could leak through, and a
// 2^-32 accident is beyond the fuzzer's reach.
func FuzzWALDecode(f *testing.F) {
	// seed: a healthy two-record log
	var healthy []byte
	for lsn := uint64(1); lsn <= 2; lsn++ {
		healthy = appendFrame(healthy, Record{
			LSN: lsn, Kind: KindMutation,
			Body: EncodeMutation(&repl.Mutation{
				LSN: lsn, Table: "customer",
				Deletes: []int64{4},
				Inserts: []repl.RowVersion{{RID: 9, Row: value.Row{
					value.NewInt(7), value.NewString("x"), value.NewFloat(1.5),
					value.Null, value.NewBool(true),
				}}},
			}),
		})
	}
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-5]) // torn tail
	flipped := append([]byte(nil), healthy...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped) // bit flip
	f.Add(appendFrame(nil, Record{LSN: 3, Kind: KindShutdown}))
	// a committed two-table transaction record (consecutive LSNs, record
	// stamped with the last)
	txnBody := EncodeTxn([]*repl.Mutation{
		{LSN: 5, Table: "customer", Deletes: []int64{1},
			Inserts: []repl.RowVersion{{RID: 10, Row: value.Row{value.NewInt(1), value.NewString("a")}}}},
		{LSN: 6, Table: "orders",
			Inserts: []repl.RowVersion{{RID: 3, Row: value.Row{value.NewFloat(2.5), value.Null}}}},
	})
	f.Add(appendFrame(nil, Record{LSN: 6, Kind: KindTxn, Body: txnBody}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length prefix
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		off := 0
		for {
			rec, n, err := readFrame(br)
			if err != nil {
				// EOF or errTorn: either way the reader stops; nothing to
				// verify beyond "no panic, no phantom record"
				break
			}
			if off+n > len(data) {
				t.Fatalf("frame claims %d bytes at offset %d beyond %d-byte input", n, off, len(data))
			}
			// the frame must re-encode byte-identically to what was read
			reenc := appendFrame(nil, rec)
			if !bytes.Equal(reenc, data[off:off+n]) {
				t.Fatalf("frame at %d is not canonical:\n read %x\nreenc %x", off, data[off:off+n], reenc)
			}
			if rec.Kind == KindMutation {
				mut, err := DecodeMutation(rec.LSN, rec.Body)
				if err == nil {
					// accepted mutations round-trip exactly
					if !bytes.Equal(EncodeMutation(mut), rec.Body) {
						t.Fatalf("mutation body at %d is not canonical", off)
					}
					back, err2 := DecodeMutation(rec.LSN, EncodeMutation(mut))
					if err2 != nil || !reflect.DeepEqual(back, mut) {
						t.Fatalf("mutation at %d does not round-trip: %v", off, err2)
					}
				}
			}
			if rec.Kind == KindTxn {
				muts, err := DecodeTxn(rec.LSN, rec.Body)
				if err == nil {
					// accepted transactions round-trip exactly and carry
					// consecutive LSNs ending at the record's
					if !bytes.Equal(EncodeTxn(muts), rec.Body) {
						t.Fatalf("txn body at %d is not canonical", off)
					}
					if len(muts) == 0 || muts[len(muts)-1].LSN != rec.LSN {
						t.Fatalf("txn at %d: accepted with wrong LSN shape", off)
					}
					for i := 1; i < len(muts); i++ {
						if muts[i].LSN != muts[i-1].LSN+1 {
							t.Fatalf("txn at %d: accepted non-consecutive LSNs", off)
						}
					}
				}
			}
			off += n
		}
	})
}

// FuzzValueCodec attacks the shared value/row codec directly (checkpoints
// decode rows through the same path).
func FuzzValueCodec(f *testing.F) {
	f.Add(AppendRow(nil, value.Row{value.NewInt(-1), value.NewString("ab"), value.Null}))
	f.Add([]byte{3, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		row, n, err := ReadRow(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("ReadRow consumed %d of %d bytes", n, len(data))
		}
		if !bytes.Equal(AppendRow(nil, row), data[:n]) {
			t.Fatal("accepted row is not canonical")
		}
	})
}
