// Package wal implements the durability subsystem's write-ahead log: a
// segmented, append-only log of CRC32-framed, length-prefixed records with
// group commit. Committers append a record and then wait for durability;
// a single sync goroutine batches every record appended since the last
// fsync into one fsync (one disk flush per *group* of commits, not per
// commit), bounded by a configurable interval and byte threshold.
//
// The log is the system's source of truth across restarts: recovery
// restores the latest checkpoint and replays the WAL tail (Replay), and a
// torn record at the end of the last segment — the signature of a crash
// mid-write — is detected by CRC and truncated away, so the log always
// reopens to the longest intact prefix. Segments are named by the LSN of
// their first record; TruncateBefore retires segments wholly covered by a
// checkpoint.
package wal

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Default tuning; all overridable through Options.
const (
	// DefaultSegmentBytes is the rotation threshold per segment file.
	DefaultSegmentBytes = 4 << 20
	// DefaultSyncInterval is the group-commit window: the longest a
	// buffered append waits for an fsync when no committer is waiting.
	DefaultSyncInterval = 2 * time.Millisecond
	// DefaultSyncBytes is the buffered-byte threshold that forces an early
	// fsync between ticks.
	DefaultSyncBytes = 256 << 10

	segSuffix = ".seg"
)

// Options configures Open.
type Options struct {
	// Dir is the segment directory (created if absent).
	Dir string
	// SegmentBytes rotates to a fresh segment once the current one exceeds
	// this size (default DefaultSegmentBytes).
	SegmentBytes int64
	// SyncInterval is the group-commit flush interval (default
	// DefaultSyncInterval).
	SyncInterval time.Duration
	// SyncBytes forces a flush when this many bytes are buffered (default
	// DefaultSyncBytes).
	SyncBytes int
	// SimulatedSyncLatency adds an artificial delay to every fsync —
	// a benchmarking knob that models slower durable media (cloud block
	// storage, spinning disks) on hosts whose fsync is nearly free, which
	// is what makes group-commit amortization visible. Zero (the default,
	// and the only sane production setting) adds nothing.
	SimulatedSyncLatency time.Duration
}

func (o *Options) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = DefaultSyncInterval
	}
	if o.SyncBytes <= 0 {
		o.SyncBytes = DefaultSyncBytes
	}
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	Appends        int64  `json:"wal_appends"`
	AppendedBytes  int64  `json:"wal_appended_bytes"`
	Syncs          int64  `json:"wal_syncs"`
	MaxGroupCommit int64  `json:"wal_max_group_commit"` // most records made durable by one fsync
	Rotations      int64  `json:"wal_rotations"`
	Segments       int    `json:"wal_segments"`
	AppendedLSN    uint64 `json:"wal_appended_lsn"`
	DurableLSN     uint64 `json:"wal_durable_lsn"`
}

// OpenInfo reports what Open found on disk.
type OpenInfo struct {
	// LastLSN is the LSN of the last intact record (0 for an empty log).
	LastLSN uint64
	// LastKind is the kind of that record (0 for an empty log).
	LastKind Kind
	// Records is the number of intact records across all segments.
	Records int
	// TruncatedBytes is how many torn/corrupt trailing bytes were cut from
	// the final segment.
	TruncatedBytes int64
	// Segments is the number of segment files.
	Segments int
}

// SyncDir fsyncs a directory so that file creations and renames inside it
// are durable — without it, an acknowledged commit can vanish with power
// loss because the segment's directory entry never reached disk. A real
// fsync failure is reported; EINVAL (filesystems that do not support
// directory fsync) is tolerated.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return fmt.Errorf("wal: fsync dir %s: %w", dir, err)
	}
	return nil
}

// segment is one on-disk log file.
type segment struct {
	firstLSN uint64
	path     string
}

func segmentName(firstLSN uint64) string {
	return fmt.Sprintf("%020d%s", firstLSN, segSuffix)
}

// WAL is an open write-ahead log. Append/WaitDurable/Replay are safe for
// concurrent use.
type WAL struct {
	opts Options
	info OpenInfo

	mu       sync.Mutex // guards file, buffer, segments, append state
	f        *os.File
	bw       *bufio.Writer
	segments []segment  // sorted by firstLSN; last is the active one
	retired  []*os.File // rotated-out files awaiting close by the sync loop
	segSize  int64      // bytes in the active segment
	appended uint64     // LSN of the last appended record
	pending  int        // bytes buffered since the last sync
	pendRecs int64      // records buffered since the last sync
	scratch  []byte     // frame encoding buffer
	closed   bool

	// syncRunMu serializes whole sync passes. The fsync itself runs with
	// only this lock held — NOT mu — so committers keep appending while
	// the disk flushes; everything they append rides the next fsync.
	// That overlap is what turns N concurrent commits into O(1) fsyncs.
	syncRunMu sync.Mutex

	syncMu     sync.Mutex
	syncCond   *sync.Cond
	durable    uint64 // LSN through which the log is fsynced
	syncErr    error  // sticky: a failed fsync poisons the log
	syncClosed bool   // Close ran: waiters must not park again

	closeOnce sync.Once
	closeErr  error

	notify chan struct{}
	stopCh chan struct{}
	doneCh chan struct{}

	appends   atomic.Int64
	bytes     atomic.Int64
	syncs     atomic.Int64
	maxGroup  atomic.Int64
	rotations atomic.Int64
}

// Open scans the segment directory, validates every record, truncates a
// torn tail off the final segment, and returns a log positioned for
// appends. A corrupt record anywhere but the final segment's tail is a
// hard error — that is damage, not a crash signature.
func Open(opts Options) (*WAL, error) {
	opts.fill()
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", opts.Dir, err)
	}
	w := &WAL{
		opts:   opts,
		notify: make(chan struct{}, 1),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	w.syncCond = sync.NewCond(&w.syncMu)

	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		scan, err := scanSegment(seg.path)
		if err != nil {
			return nil, err
		}
		if scan.torn && !last {
			return nil, fmt.Errorf("wal: segment %s is corrupt at offset %d (not the final segment; refusing to recover)",
				filepath.Base(seg.path), scan.validLen)
		}
		if scan.torn {
			if err := os.Truncate(seg.path, scan.validLen); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.path, err)
			}
			w.info.TruncatedBytes = scan.fileLen - scan.validLen
		}
		if scan.records > 0 {
			w.info.LastLSN = scan.lastLSN
			w.info.LastKind = scan.lastKind
		}
		w.info.Records += scan.records
		if last {
			w.segSize = scan.validLen
		}
	}
	w.segments = segs
	w.info.Segments = len(segs)
	w.appended = w.info.LastLSN
	w.durable = w.info.LastLSN

	if len(segs) > 0 {
		f, err := os.OpenFile(segs[len(segs)-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: opening active segment: %w", err)
		}
		w.f = f
		w.bw = bufio.NewWriter(f)
	}
	go w.syncLoop()
	return w, nil
}

// Info reports what Open found on disk.
func (w *WAL) Info() OpenInfo { return w.info }

// listSegments returns the directory's segments sorted by first LSN.
func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	var segs []segment
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		lsn, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: unrecognized segment name %q", name)
		}
		segs = append(segs, segment{firstLSN: lsn, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	return segs, nil
}

// segScan is the result of validating one segment file.
type segScan struct {
	records  int
	lastLSN  uint64
	lastKind Kind
	validLen int64 // offset just past the last intact record
	fileLen  int64
	torn     bool // trailing bytes past validLen are damaged
}

// scanSegment walks a segment validating every frame.
func scanSegment(path string) (segScan, error) {
	f, err := os.Open(path)
	if err != nil {
		return segScan{}, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return segScan{}, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	scan := segScan{fileLen: st.Size()}
	br := bufio.NewReader(f)
	for {
		rec, n, err := readFrame(br)
		if err != nil {
			scan.torn = err == errTorn
			return scan, nil
		}
		scan.records++
		scan.lastLSN = rec.LSN
		scan.lastKind = rec.Kind
		scan.validLen += int64(n)
	}
}

// Append frames and buffers one record. The record is NOT durable when
// Append returns — call WaitDurable(rec.LSN) to block until the group
// committer has fsynced past it. LSNs must be appended in non-decreasing
// order (the caller's commit lock provides that).
func (w *WAL) Append(rec Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("wal: closed")
	}
	if rec.LSN < w.appended {
		return fmt.Errorf("wal: append LSN %d below last appended %d", rec.LSN, w.appended)
	}
	if w.f == nil || (w.segSize >= w.opts.SegmentBytes && w.segSize > 0) {
		if err := w.rotateLocked(rec.LSN); err != nil {
			return err
		}
	}
	w.scratch = appendFrame(w.scratch[:0], rec)
	if _, err := w.bw.Write(w.scratch); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	n := len(w.scratch)
	w.segSize += int64(n)
	w.pending += n
	w.pendRecs++
	w.appended = rec.LSN
	w.appends.Add(1)
	w.bytes.Add(int64(n))
	if w.pending >= w.opts.SyncBytes {
		w.poke()
	}
	return nil
}

// rotateLocked seals the active segment (flush + fsync) and starts a fresh
// one whose name records firstLSN. The sealed file is handed to the sync
// loop for closing — an fsync on it may still be in flight. Caller holds
// w.mu.
func (w *WAL) rotateLocked(firstLSN uint64) error {
	if w.f != nil {
		if err := w.bw.Flush(); err != nil {
			return fmt.Errorf("wal: sealing segment: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: sealing segment: %w", err)
		}
		w.retired = append(w.retired, w.f)
		w.rotations.Add(1)
	}
	path := filepath.Join(w.opts.Dir, segmentName(firstLSN))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	// make the new segment's directory entry durable before any record in
	// it can be acknowledged
	if err := SyncDir(w.opts.Dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	if w.bw == nil {
		w.bw = bufio.NewWriter(f)
	} else {
		w.bw.Reset(f)
	}
	w.segSize = 0
	w.segments = append(w.segments, segment{firstLSN: firstLSN, path: path})
	return nil
}

// poke wakes the sync loop without blocking.
func (w *WAL) poke() {
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// WaitDurable blocks until every record with LSN <= lsn is fsynced. It
// pokes the group committer, so the wait is bounded by one fsync (plus
// however many committers share it), not by the sync interval.
func (w *WAL) WaitDurable(lsn uint64) error {
	w.syncMu.Lock()
	if w.durable >= lsn && w.syncErr == nil {
		w.syncMu.Unlock()
		return nil
	}
	w.syncMu.Unlock()
	w.poke()
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	for w.durable < lsn && w.syncErr == nil && !w.syncClosed {
		w.syncCond.Wait()
	}
	if w.syncErr != nil {
		return w.syncErr
	}
	if w.durable < lsn {
		return fmt.Errorf("wal: closed before LSN %d became durable", lsn)
	}
	return nil
}

// DurableLSN returns the LSN through which the log is fsynced.
func (w *WAL) DurableLSN() uint64 {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	return w.durable
}

// LastLSN returns the LSN of the last appended record.
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// syncLoop is the group committer: one fsync per wakeup covers every
// record appended since the previous fsync. While an fsync is in flight,
// new committers append and queue up on the next one — that is what turns
// N concurrent commits into O(1) fsyncs.
func (w *WAL) syncLoop() {
	defer close(w.doneCh)
	ticker := time.NewTicker(w.opts.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stopCh:
			return
		case <-ticker.C:
		case <-w.notify:
		}
		w.syncOnce()
	}
}

// syncOnce flushes everything appended so far to the OS (under the append
// lock — cheap), fsyncs it (with the append lock released — committers
// keep appending into the next batch), then publishes the new durable LSN
// to waiters.
func (w *WAL) syncOnce() {
	w.syncRunMu.Lock()
	defer w.syncRunMu.Unlock()
	w.mu.Lock()
	if w.f == nil || w.closed {
		w.mu.Unlock()
		return
	}
	target := w.appended
	recs := w.pendRecs
	var (
		err error
		f   *os.File
	)
	if recs > 0 {
		err = w.bw.Flush()
		f = w.f
		w.pending = 0
		w.pendRecs = 0
	}
	w.mu.Unlock()
	if recs == 0 {
		return
	}
	if err == nil {
		if w.opts.SimulatedSyncLatency > 0 {
			time.Sleep(w.opts.SimulatedSyncLatency)
		}
		err = f.Sync()
	}
	// close segments rotated out before or during this pass; their bytes
	// were fsynced by rotateLocked, and no other fsync can be in flight on
	// them (sync passes serialize on syncRunMu)
	w.mu.Lock()
	retired := w.retired
	w.retired = nil
	w.mu.Unlock()
	for _, rf := range retired {
		rf.Close()
	}

	w.syncMu.Lock()
	if err != nil {
		if w.syncErr == nil {
			w.syncErr = fmt.Errorf("wal: fsync: %w", err)
		}
	} else if target > w.durable {
		w.durable = target
	}
	w.syncMu.Unlock()
	w.syncCond.Broadcast()
	if err == nil {
		w.syncs.Add(1)
		for {
			cur := w.maxGroup.Load()
			if recs <= cur || w.maxGroup.CompareAndSwap(cur, recs) {
				break
			}
		}
	}
}

// Sync flushes and fsyncs synchronously (used by Close and checkpoints).
func (w *WAL) Sync() error {
	w.syncOnce()
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	return w.syncErr
}

// Replay streams every intact record with LSN >= from, in log order, to
// fn. A non-nil error from fn aborts the replay. Replay flushes buffered
// appends first so the files reflect the full log; it is intended for
// recovery, before concurrent appends begin.
func (w *WAL) Replay(from uint64, fn func(Record) error) error {
	w.mu.Lock()
	if w.bw != nil {
		if err := w.bw.Flush(); err != nil {
			w.mu.Unlock()
			return fmt.Errorf("wal: flushing before replay: %w", err)
		}
	}
	segs := append([]segment(nil), w.segments...)
	w.mu.Unlock()

	for _, seg := range segs {
		f, err := os.Open(seg.path)
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		br := bufio.NewReader(f)
		for {
			rec, _, err := readFrame(br)
			if err != nil {
				break // Open already validated; EOF or the truncated tail
			}
			if rec.LSN < from {
				continue
			}
			if err := fn(rec); err != nil {
				f.Close()
				return err
			}
		}
		f.Close()
	}
	return nil
}

// TruncateBefore removes segments whose records all have LSN <= lsn — a
// segment is deletable once its *successor's* first LSN is <= lsn+1, i.e.
// every record a recovery starting at lsn+1 could need lives in a later
// segment. The active segment is never removed. Called after a checkpoint
// at lsn retires the log prefix it covers.
func (w *WAL) TruncateBefore(lsn uint64) (removed int, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.segments) > 1 && w.segments[1].firstLSN <= lsn+1 {
		if rmErr := os.Remove(w.segments[0].path); rmErr != nil {
			return removed, fmt.Errorf("wal: removing retired segment: %w", rmErr)
		}
		w.segments = w.segments[1:]
		removed++
	}
	return removed, nil
}

// Stats returns a snapshot of the log's counters.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	segs := len(w.segments)
	appended := w.appended
	w.mu.Unlock()
	return Stats{
		Appends:        w.appends.Load(),
		AppendedBytes:  w.bytes.Load(),
		Syncs:          w.syncs.Load(),
		MaxGroupCommit: w.maxGroup.Load(),
		Rotations:      w.rotations.Load(),
		Segments:       segs,
		AppendedLSN:    appended,
		DurableLSN:     w.DurableLSN(),
	}
}

// Close stops the group committer, flushes and fsyncs the tail, and closes
// the active segment. Idempotent and safe for concurrent callers.
func (w *WAL) Close() error {
	w.closeOnce.Do(func() {
		close(w.stopCh)
		<-w.doneCh
		err := w.Sync()

		w.mu.Lock()
		w.closed = true
		for _, rf := range w.retired {
			rf.Close()
		}
		w.retired = nil
		if w.f != nil {
			if cerr := w.f.Close(); err == nil && cerr != nil {
				err = fmt.Errorf("wal: close: %w", cerr)
			}
			w.f = nil
		}
		w.mu.Unlock()

		// release any waiter that raced Close; WaitDurable reports an
		// error for LSNs the final sync did not cover
		w.syncMu.Lock()
		w.syncClosed = true
		w.syncMu.Unlock()
		w.syncCond.Broadcast()
		w.closeErr = err
	})
	return w.closeErr
}
