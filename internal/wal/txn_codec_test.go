package wal

import (
	"reflect"
	"testing"

	"htapxplain/internal/repl"
	"htapxplain/internal/value"
)

func txnMuts() []*repl.Mutation {
	return []*repl.Mutation{
		{LSN: 7, Table: "customer",
			Deletes: []int64{3, 9},
			Inserts: []repl.RowVersion{
				{RID: 20, Row: value.Row{value.NewInt(1), value.NewString("a"), value.NewFloat(0.5)}},
			}},
		{LSN: 8, Table: "orders",
			Inserts: []repl.RowVersion{
				{RID: 4, Row: value.Row{value.Null, value.NewBool(true)}},
				{RID: 5, Row: value.Row{value.NewInt(-2), value.NewString("")}},
			}},
		{LSN: 9, Table: "lineitem", Deletes: []int64{0}},
	}
}

func TestTxnCodecRoundTrip(t *testing.T) {
	muts := txnMuts()
	body := EncodeTxn(muts)
	back, err := DecodeTxn(9, body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, muts) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, muts)
	}
}

func TestTxnCodecRejectsMalformed(t *testing.T) {
	muts := txnMuts()
	body := EncodeTxn(muts)

	if _, err := DecodeTxn(8, body); err == nil {
		t.Fatal("accepted record LSN != last mutation LSN")
	}
	if _, err := DecodeTxn(9, append(body, 0)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
	if _, err := DecodeTxn(9, body[:len(body)-3]); err == nil {
		t.Fatal("accepted truncated body")
	}
	if _, err := DecodeTxn(0, EncodeTxn(nil)); err == nil {
		t.Fatal("accepted empty transaction")
	}
	gap := txnMuts()
	gap[2].LSN = 11 // 7, 8, 11: a hole in the transaction's LSN range
	if _, err := DecodeTxn(11, EncodeTxn(gap)); err == nil {
		t.Fatal("accepted non-consecutive LSNs")
	}
}

func TestTxnRecordKindValid(t *testing.T) {
	if !KindTxn.valid() {
		t.Fatal("KindTxn must be a valid record kind")
	}
	if KindTxn.String() != "txn" {
		t.Fatalf("KindTxn.String() = %q", KindTxn.String())
	}
	if Kind(5).valid() {
		t.Fatal("Kind(5) must stay invalid until a codec exists for it")
	}
}
