package wal

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"htapxplain/internal/repl"
	"htapxplain/internal/value"
)

// testMutation builds a deterministic mutation for LSN i.
func testMutation(lsn uint64) *repl.Mutation {
	return &repl.Mutation{
		LSN:     lsn,
		Table:   "customer",
		Deletes: []int64{int64(lsn) * 3},
		Inserts: []repl.RowVersion{{
			RID: int64(lsn) * 7,
			Row: value.Row{
				value.NewInt(int64(lsn)),
				value.NewString(fmt.Sprintf("row-%d", lsn)),
				value.NewFloat(float64(lsn) / 3),
				value.Null,
				value.NewBool(lsn%2 == 0),
			},
		}},
	}
}

func appendMutations(t *testing.T, w *WAL, from, to uint64) {
	t.Helper()
	for lsn := from; lsn <= to; lsn++ {
		rec := Record{LSN: lsn, Kind: KindMutation, Body: EncodeMutation(testMutation(lsn))}
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append(%d): %v", lsn, err)
		}
	}
	if err := w.WaitDurable(to); err != nil {
		t.Fatalf("WaitDurable(%d): %v", to, err)
	}
}

func collect(t *testing.T, w *WAL, from uint64) []Record {
	t.Helper()
	var recs []Record
	if err := w.Replay(from, func(r Record) error {
		cp := r
		cp.Body = append([]byte(nil), r.Body...)
		recs = append(recs, cp)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendMutations(t, w, 1, 20)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	info := w2.Info()
	if info.LastLSN != 20 || info.Records != 20 || info.TruncatedBytes != 0 {
		t.Fatalf("Info = %+v, want 20 records through LSN 20 with no truncation", info)
	}
	recs := collect(t, w2, 1)
	if len(recs) != 20 {
		t.Fatalf("replayed %d records, want 20", len(recs))
	}
	for i, rec := range recs {
		want := testMutation(uint64(i + 1))
		got, err := DecodeMutation(rec.LSN, rec.Body)
		if err != nil {
			t.Fatalf("DecodeMutation(%d): %v", rec.LSN, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
	}
	// replay from the middle
	if n := len(collect(t, w2, 15)); n != 6 {
		t.Fatalf("Replay(from=15) returned %d records, want 6", n)
	}
}

func TestMutationCodecStrict(t *testing.T) {
	m := testMutation(9)
	body := EncodeMutation(m)
	got, err := DecodeMutation(9, body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
	if _, err := DecodeMutation(9, append(body, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	for cut := 0; cut < len(body); cut++ {
		if _, err := DecodeMutation(9, body[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendMutations(t, w, 1, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d (%v)", len(segs), err)
	}
	path := segs[0].path
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// simulate a crash mid-append: cut the last record in half, then add
	// garbage
	if err := os.WriteFile(path, append(full[:len(full)-11], 0xde, 0xad), 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	info := w2.Info()
	if info.LastLSN != 9 {
		t.Fatalf("LastLSN = %d after torn tail, want 9", info.LastLSN)
	}
	if info.TruncatedBytes == 0 {
		t.Fatal("expected torn bytes to be reported")
	}
	if n := len(collect(t, w2, 1)); n != 9 {
		t.Fatalf("replayed %d records, want 9", n)
	}
	// the log must accept appends again at the recovered position
	appendMutations(t, w2, 10, 12)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if n := len(collect(t, w3, 1)); n != 12 {
		t.Fatalf("after repair + append: %d records, want 12", n)
	}
}

func TestCorruptMiddleRecordTruncates(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendMutations(t, w, 1, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40 // bit-flip mid-log
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w2.Close()
	recs := collect(t, w2, 1)
	if len(recs) >= 10 {
		t.Fatalf("bit flip went undetected: %d records", len(recs))
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("surviving prefix is not contiguous: record %d has LSN %d", i, rec.LSN)
		}
		if _, err := DecodeMutation(rec.LSN, rec.Body); err != nil {
			t.Fatalf("surviving record %d is corrupt: %v", i, err)
		}
	}
}

func TestCorruptNonFinalSegmentRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, SegmentBytes: 256}) // force many segments
	if err != nil {
		t.Fatal(err)
	}
	appendMutations(t, w, 1, 40)
	if len(w.segments) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(w.segments))
	}
	first := w.segments[0].path
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(first)
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, SegmentBytes: 256}); err == nil {
		t.Fatal("Open accepted a corrupt non-final segment")
	}
}

func TestRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	appendMutations(t, w, 1, 60)
	st := w.Stats()
	if st.Rotations == 0 || st.Segments < 3 {
		t.Fatalf("expected rotations with 512-byte segments, got %+v", st)
	}
	// a checkpoint at LSN 40 retires every segment fully below 41
	removed, err := w.TruncateBefore(40)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("TruncateBefore removed nothing")
	}
	recs := collect(t, w, 41)
	if len(recs) != 20 || recs[0].LSN != 41 {
		t.Fatalf("post-retention replay: %d records starting at %d, want 20 from 41",
			len(recs), recs[0].LSN)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// reopen after retention still works
	w2, err := Open(Options{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.Info().LastLSN; got != 60 {
		t.Fatalf("LastLSN after reopen = %d, want 60", got)
	}
}

func TestGroupCommitOneFsyncPerBatch(t *testing.T) {
	dir := t.TempDir()
	// interval and byte threshold far out of reach: the only fsync trigger
	// is the WaitDurable poke, so the batch accounting is deterministic
	w, err := Open(Options{Dir: dir, SyncInterval: time.Hour, SyncBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const n = 100
	for lsn := uint64(1); lsn <= n; lsn++ {
		rec := Record{LSN: lsn, Kind: KindMutation, Body: EncodeMutation(testMutation(lsn))}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WaitDurable(n); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Syncs != 1 {
		t.Fatalf("%d appends needed %d fsyncs, want exactly 1", st.Appends, st.Syncs)
	}
	if st.MaxGroupCommit != n {
		t.Fatalf("MaxGroupCommit = %d, want %d", st.MaxGroupCommit, n)
	}
	if st.DurableLSN != n {
		t.Fatalf("DurableLSN = %d, want %d", st.DurableLSN, n)
	}
}

func TestConcurrentCommitters(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const (
		committers = 8
		perG       = 50
	)
	var (
		mu   sync.Mutex // stands in for the system's single-writer lock
		next uint64
		wg   sync.WaitGroup
	)
	wg.Add(committers)
	for g := 0; g < committers; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				mu.Lock()
				next++
				lsn := next
				err := w.Append(Record{LSN: lsn, Kind: KindMutation,
					Body: EncodeMutation(testMutation(lsn))})
				mu.Unlock()
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				if err := w.WaitDurable(lsn); err != nil {
					t.Errorf("WaitDurable(%d): %v", lsn, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := w.Stats()
	if st.Appends != committers*perG {
		t.Fatalf("appends = %d, want %d", st.Appends, committers*perG)
	}
	if st.DurableLSN != committers*perG {
		t.Fatalf("durable LSN = %d, want %d", st.DurableLSN, committers*perG)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if n := len(collect(t, w2, 1)); n != committers*perG {
		t.Fatalf("replayed %d records, want %d", n, committers*perG)
	}
}

func TestCloseIdempotentAndConcurrent(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	appendMutations(t, w, 1, 3)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := w.Append(Record{LSN: 4, Kind: KindMutation}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

func TestMarkersRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendMutations(t, w, 1, 2)
	if err := w.Append(Record{LSN: 2, Kind: KindShutdown}); err != nil {
		t.Fatalf("shutdown marker: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	info := w2.Info()
	if info.LastKind != KindShutdown || info.LastLSN != 2 {
		t.Fatalf("Info = %+v, want shutdown marker at LSN 2", info)
	}
}

func TestFrameEncodingStable(t *testing.T) {
	// the on-disk format is a compatibility surface: pin the exact bytes of
	// a tiny record so accidental format changes fail loudly
	rec := Record{LSN: 0x0102030405060708, Kind: KindCheckpoint}
	got := appendFrame(nil, rec)
	want := []byte{
		9, 0, 0, 0, // payload length
		0x54, 0x02, 0xa5, 0xfc, // crc32c
		2,                                              // kind
		0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // lsn LE
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("frame bytes changed:\n got %x\nwant %x", got, want)
	}
}
