package colstore

import (
	"testing"
	"time"

	"htapxplain/internal/repl"
	"htapxplain/internal/value"
)

func deltaStore(t *testing.T, n int) (*Store, *Table) {
	t.Helper()
	s, err := NewStore(tinyCatalog(int64(n)), map[string][]value.Row{
		"t": genRows(n),
	})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	tb, _ := s.Table("t")
	return s, tb
}

func genRows(n int) []value.Row {
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{
			value.NewInt(int64(i)),
			value.NewString("s"),
			value.NewFloat(float64(i)),
		}
	}
	return rows
}

func insMut(lsn uint64, rid int64, key int64) *repl.Mutation {
	return &repl.Mutation{LSN: lsn, Table: "t", Inserts: []repl.RowVersion{
		{RID: rid, Row: value.Row{value.NewInt(key), value.NewString("d"), value.NewFloat(float64(key))}},
	}}
}

func TestApplyInsertVisibleInView(t *testing.T) {
	s, tb := deltaStore(t, 10)
	if err := s.Apply(insMut(1, 10, 100)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if s.Watermark() != 1 {
		t.Errorf("watermark = %d, want 1", s.Watermark())
	}
	v := tb.View()
	if v.NumLive() != 11 || len(v.Delta) != 1 {
		t.Fatalf("view live=%d delta=%d, want 11/1", v.NumLive(), len(v.Delta))
	}
	if got := v.ValueAt(10, 0); got.I != 100 {
		t.Errorf("delta row key = %v, want 100", got)
	}
	ids, _ := v.Scan([]int{0}, nil, nil)
	if len(ids) != 11 {
		t.Errorf("scan saw %d rows, want 11", len(ids))
	}
}

func TestApplyDeleteBaseAndDelta(t *testing.T) {
	s, tb := deltaStore(t, 10)
	if err := s.Apply(insMut(1, 10, 100)); err != nil {
		t.Fatal(err)
	}
	// delete base row 3 and the delta row in one mutation
	if err := s.Apply(&repl.Mutation{LSN: 2, Table: "t", Deletes: []int64{3, 10}}); err != nil {
		t.Fatalf("Apply deletes: %v", err)
	}
	v := tb.View()
	if v.NumLive() != 9 {
		t.Errorf("live = %d, want 9", v.NumLive())
	}
	ids, _ := v.Scan([]int{0}, nil, nil)
	for _, id := range ids {
		if id == 3 {
			t.Error("deleted base row still scanned")
		}
	}
	if len(ids) != 9 {
		t.Errorf("scan saw %d rows, want 9", len(ids))
	}
	// deleting an unknown RID is a replication error
	if err := s.Apply(&repl.Mutation{LSN: 3, Table: "t", Deletes: []int64{999}}); err == nil {
		t.Error("delete of unknown RID succeeded")
	}
}

func TestUpdateMutationReplaysAtomically(t *testing.T) {
	s, tb := deltaStore(t, 4)
	// UPDATE of base row 2: delete RID 2, insert new version RID 4
	if err := s.Apply(&repl.Mutation{LSN: 1, Table: "t",
		Deletes: []int64{2},
		Inserts: []repl.RowVersion{{RID: 4, Row: value.Row{
			value.NewInt(22), value.NewString("u"), value.NewFloat(2.5)}}},
	}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	v := tb.View()
	if v.NumLive() != 4 {
		t.Fatalf("live = %d, want 4 (update is size-neutral)", v.NumLive())
	}
}

func TestMergeCompactsAndPreservesOrder(t *testing.T) {
	s, tb := deltaStore(t, 6)
	if err := s.Apply(insMut(1, 6, 60)); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(&repl.Mutation{LSN: 2, Table: "t", Deletes: []int64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(insMut(3, 7, 70)); err != nil {
		t.Fatal(err)
	}
	oldView := tb.View()
	oldCol := oldView.Cols[0]

	st := s.MergeAll()
	if st.Merges != 1 || st.RowsMerged != 7 {
		t.Errorf("merge stats = %+v, want 1 merge of 7 rows", st)
	}
	if got := s.PendingDelta(); got != 0 {
		t.Errorf("pending after merge = %d, want 0", got)
	}

	v := tb.View()
	if v.NumRows != 7 || len(v.Delta) != 0 || v.BaseDead != nil {
		t.Fatalf("post-merge view: base=%d delta=%d dead=%v", v.NumRows, len(v.Delta), v.BaseDead)
	}
	// survivors keep replay order: base 0,2,3,4,5 then delta 60,70
	want := []int64{0, 2, 3, 4, 5, 60, 70}
	for i, w := range want {
		if got := v.Cols[0].Value(i).I; got != w {
			t.Fatalf("post-merge key[%d] = %d, want %d (full: %v)", i, got, w, want)
		}
	}
	// zone maps rebuilt over the new base
	if mn, mx := v.Cols[0].ChunkRange(0); mn.I != 0 || mx.I != 70 {
		t.Errorf("zone map = [%v,%v], want [0,70]", mn, mx)
	}
	// the pre-merge view still reads the old immutable vectors
	if oldCol.Value(1).I != 1 {
		t.Error("merge mutated the old column vector in place")
	}
	if len(oldView.Delta) != 2 {
		t.Error("merge truncated a pinned view's delta")
	}
}

func TestMergeThenDeleteByRID(t *testing.T) {
	s, tb := deltaStore(t, 4)
	if err := s.Apply(insMut(1, 4, 40)); err != nil {
		t.Fatal(err)
	}
	s.MergeAll()
	// post-merge, delete a bulk row and the previously merged delta row by RID
	if err := s.Apply(&repl.Mutation{LSN: 2, Table: "t", Deletes: []int64{0, 4}}); err != nil {
		t.Fatalf("post-merge delete: %v", err)
	}
	v := tb.View()
	if v.NumLive() != 3 {
		t.Errorf("live = %d, want 3", v.NumLive())
	}
	s.MergeAll()
	v = tb.View()
	keys := make([]int64, 0, v.NumRows)
	for i := 0; i < v.NumRows; i++ {
		keys = append(keys, v.Cols[0].Value(i).I)
	}
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 2 || keys[2] != 3 {
		t.Errorf("post-merge keys = %v, want [1 2 3]", keys)
	}
}

func TestBackgroundMergerCompacts(t *testing.T) {
	s, tb := deltaStore(t, 4)
	s.StartMerger(time.Millisecond, 2)
	defer s.StopMerger()
	for i := 0; i < 8; i++ {
		if err := s.Apply(insMut(uint64(i+1), int64(4+i), int64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.PendingDelta() == 0 && tb.NumRows() == 12 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("background merger did not compact: pending=%d base=%d", s.PendingDelta(), tb.NumRows())
}
