package colstore

import (
	"sync"
	"testing"

	"htapxplain/internal/catalog"
	"htapxplain/internal/value"
)

// morselStore builds a single-table store with n rows whose first column
// is the ascending row number (so zone maps are perfectly sorted).
func morselStore(t *testing.T, n int) *Store {
	t.Helper()
	cat := catalog.New(1)
	if err := cat.AddTable(&catalog.Table{
		Name: "m",
		Columns: []catalog.Column{
			{Name: "k", Type: catalog.TypeInt},
			{Name: "v", Type: catalog.TypeInt},
		},
		Rows: int64(n),
	}); err != nil {
		t.Fatal(err)
	}
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{value.NewInt(int64(i)), value.NewInt(int64(i % 7))}
	}
	s, err := NewStore(cat, map[string][]value.Row{"m": rows})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMorselsCoverExactly: every row of base + delta must be dispatched in
// exactly one morsel, under concurrent pulls.
func TestMorselsCoverExactly(t *testing.T) {
	const n = 10*ChunkSize + 123
	s := morselStore(t, n)
	tbl, _ := s.Table("m")
	src := NewMorsels(tbl.View(), nil)

	var mu sync.Mutex
	seen := make([]int, n)
	var dispatched, pruned int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, p, ok := src.Next()
				mu.Lock()
				pruned += p
				mu.Unlock()
				if !ok {
					return
				}
				mu.Lock()
				dispatched++
				for i := m.Lo; i < m.Hi; i++ {
					seen[i]++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("row %d dispatched %d times", i, c)
		}
	}
	if want := int64(11); dispatched != want {
		t.Errorf("dispatched = %d morsels, want %d", dispatched, want)
	}
	if pruned != 0 {
		t.Errorf("pruned = %d with no pruner", pruned)
	}
	if got, want := src.NumMorsels(), 11; got != want {
		t.Errorf("NumMorsels = %d, want %d", got, want)
	}
}

// TestMorselsZoneMapPruning: on the sorted column a tight range must prune
// every chunk outside it at dispatch, and the pruned chunks are counted
// (including trailing pruned chunks reported on the final false return).
func TestMorselsZoneMapPruning(t *testing.T) {
	const n = 8 * ChunkSize
	s := morselStore(t, n)
	tbl, _ := s.Table("m")
	lo, hi := value.NewInt(int64(2*ChunkSize)), value.NewInt(int64(3*ChunkSize-1))
	src := NewMorsels(tbl.View(), &RangePruner{Col: 0, Lo: &lo, Hi: &hi})

	var got []Morsel
	var pruned int64
	for {
		m, p, ok := src.Next()
		pruned += p
		if !ok {
			break
		}
		got = append(got, m)
	}
	if len(got) != 1 || got[0].Chunk != 2 {
		t.Fatalf("dispatched morsels = %+v, want exactly chunk 2", got)
	}
	if pruned != 7 {
		t.Errorf("pruned = %d, want 7", pruned)
	}
}

// TestMorselsDeltaWindows: delta rows ride behind the base chunks in
// window-sized morsels and are never zone-map pruned.
func TestMorselsDeltaWindows(t *testing.T) {
	s := morselStore(t, ChunkSize)
	tbl, _ := s.Table("m")
	v := tbl.View()
	// synthesize a pinned delta on the view (views are plain values)
	for i := 0; i < deltaWindow+5; i++ {
		v.Delta = append(v.Delta, value.Row{value.NewInt(int64(-i)), value.NewInt(0)})
	}
	lo := value.NewInt(int64(10 * ChunkSize)) // prunes the whole base
	src := NewMorsels(v, &RangePruner{Col: 0, Lo: &lo})

	var deltaRows int
	var pruned int64
	for {
		m, p, ok := src.Next()
		pruned += p
		if !ok {
			break
		}
		if m.Base {
			t.Fatalf("base morsel %+v dispatched despite pruning range", m)
		}
		if m.Chunk != -1 {
			t.Fatalf("delta morsel carries chunk %d", m.Chunk)
		}
		deltaRows += m.Rows()
	}
	if deltaRows != deltaWindow+5 {
		t.Errorf("delta rows dispatched = %d, want %d", deltaRows, deltaWindow+5)
	}
	if pruned != 1 {
		t.Errorf("pruned = %d, want 1", pruned)
	}
}
