package colstore

import (
	"fmt"
	"strings"

	"htapxplain/internal/catalog"
	"htapxplain/internal/value"
)

// HeapSnapshot mirrors the row store's recovered version heap for the
// column store's recovery constructor: the full heap (live and tombstoned
// slots, indexable by RID) plus the parallel tombstone flags.
type HeapSnapshot struct {
	Rows []value.Row
	Dead []bool
}

// NewStoreFromHeap rebuilds the replication secondary from the recovered
// row-store heap: base columns are laid out over the *full* heap so the
// identity RID mapping (position == RID) that the replication protocol
// assumes still holds, and tombstoned slots are seeded into the
// copy-on-write delete set that scans already filter. Zone maps cover dead
// slots too — they can only widen a chunk's range, which keeps pruning
// conservative and correct. Chunk encodings are re-chosen here from the
// recovered values under the store's policy — checkpoints stay
// encoding-agnostic (they snapshot plain row heaps), so an encoding
// change never invalidates a checkpoint. watermark seats the replication
// watermark at the recovered commit point, so the freshness gauge does
// not report a phantom lag after restart; WAL tail replay continues
// through Apply.
func NewStoreFromHeap(cat *catalog.Catalog, heaps map[string]HeapSnapshot, watermark uint64, opts ...Option) (*Store, error) {
	s := &Store{tables: make(map[string]*Table, len(heaps))}
	s.repl.init()
	for _, o := range opts {
		o(s)
	}
	for _, meta := range cat.Tables() {
		snap, ok := heaps[strings.ToLower(meta.Name)]
		if !ok {
			return nil, fmt.Errorf("colstore: recovered heap has no table %q", meta.Name)
		}
		if len(snap.Dead) != len(snap.Rows) {
			return nil, fmt.Errorf("colstore: recovered table %q has %d rows but %d tombstone flags",
				meta.Name, len(snap.Rows), len(snap.Dead))
		}
		for ri, r := range snap.Rows {
			if len(r) != len(meta.Columns) {
				return nil, fmt.Errorf("colstore: recovered table %q row %d has %d columns, want %d",
					meta.Name, ri, len(r), len(meta.Columns))
			}
		}
		t := &Table{Meta: meta, numRows: len(snap.Rows), policy: s.policy}
		for ci := range meta.Columns {
			vals := make([]value.Value, len(snap.Rows))
			for ri, r := range snap.Rows {
				vals[ri] = r[ci]
			}
			t.columns = append(t.columns, newColumn(strings.ToLower(meta.Columns[ci].Name), vals, s.policy))
		}
		for pos, dead := range snap.Dead {
			if !dead {
				continue
			}
			if t.baseDead == nil {
				t.baseDead = make(map[int32]bool)
			}
			t.baseDead[int32(pos)] = true
		}
		s.tables[strings.ToLower(meta.Name)] = t
	}
	s.repl.watermark.Store(watermark)
	return s, nil
}
