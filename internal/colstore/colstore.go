// Package colstore implements the AP engine's column-oriented storage:
// per-column typed vectors split into fixed-size chunks with min/max zone
// maps. Scans read only the referenced columns and can skip chunks whose
// zone map proves no row matches — the storage-format advantage the AP
// engine's explanations cite.
//
// The column store is the replication secondary of the TP write path: it
// consumes the row store's mutation log in LSN order (Store.Apply) into a
// per-table in-memory delta layer, and a background merger compacts deltas
// into fresh immutable base chunks (see delta.go and merger.go). Readers
// never lock per value: Table.View pins an immutable snapshot (base column
// vectors + copy-on-write delete set + delta rows) that stays valid across
// concurrent replication and merges.
package colstore

import (
	"fmt"
	"strings"
	"sync"

	"htapxplain/internal/catalog"
	"htapxplain/internal/value"
)

// ChunkSize is the number of rows per column chunk (zone-map granularity).
const ChunkSize = 1024

// Column is one stored column: the full vector plus per-chunk zone maps.
// A Column is immutable once published; merges build fresh Columns and
// swap them in, so execution batches may alias the vectors indefinitely.
type Column struct {
	Name string
	vals []value.Value
	// zone maps: min/max per chunk (valid for orderable kinds)
	zmin []value.Value
	zmax []value.Value
}

// Len returns the number of values.
func (c *Column) Len() int { return len(c.vals) }

// Value returns the value at row id.
func (c *Column) Value(id int) value.Value { return c.vals[id] }

// Slice returns the stored value vector for rows [lo, hi) — the raw chunk
// data the vectorized scan aliases directly into execution batches. The
// slice is capacity-clamped and must not be modified by callers.
func (c *Column) Slice(lo, hi int) []value.Value { return c.vals[lo:hi:hi] }

// NumChunks returns the number of zone-mapped chunks.
func (c *Column) NumChunks() int { return len(c.zmin) }

// ChunkRange returns the [min,max] zone map of chunk k.
func (c *Column) ChunkRange(k int) (value.Value, value.Value) { return c.zmin[k], c.zmax[k] }

// Table is one column-oriented table: immutable base chunks plus the
// replication delta. All field access goes through mu; the values the
// fields point at are immutable, so snapshots taken under RLock stay valid
// after release.
type Table struct {
	Meta *catalog.Table

	mu      sync.RWMutex
	columns []*Column
	numRows int // base rows (before delta)
	// baseRID maps base position → row id assigned by the primary; nil
	// means the identity mapping of the initial bulk load (pos == RID).
	// ridPos is its inverse (nil while the identity mapping holds).
	baseRID []int64
	ridPos  map[int64]int32
	// baseDead is the copy-on-write set of deleted base positions; nil
	// when no base row is deleted. Never mutated once published — deletes
	// replace it with an extended copy, so views may alias it freely.
	baseDead map[int32]bool
	delta    tableDelta
}

// Store is the column engine's storage manager and replication secondary.
type Store struct {
	tables map[string]*Table
	repl   replState
	merger mergerState
}

// NewStore builds a column store over the given physical data. Base
// positions are aligned with the row store's heap (RID i ↔ position i).
func NewStore(cat *catalog.Catalog, data map[string][]value.Row) (*Store, error) {
	s := &Store{tables: make(map[string]*Table, len(data))}
	s.repl.init()
	for _, meta := range cat.Tables() {
		rows, ok := data[strings.ToLower(meta.Name)]
		if !ok {
			return nil, fmt.Errorf("colstore: no data for table %q", meta.Name)
		}
		t := &Table{Meta: meta, numRows: len(rows)}
		for ci, colMeta := range meta.Columns {
			col := &Column{Name: strings.ToLower(colMeta.Name), vals: make([]value.Value, len(rows))}
			for ri, r := range rows {
				col.vals[ri] = r[ci]
			}
			col.buildZoneMaps()
			t.columns = append(t.columns, col)
		}
		s.tables[strings.ToLower(meta.Name)] = t
	}
	return s, nil
}

func (c *Column) buildZoneMaps() {
	n := len(c.vals)
	for start := 0; start < n; start += ChunkSize {
		end := start + ChunkSize
		if end > n {
			end = n
		}
		mn, mx := c.vals[start], c.vals[start]
		for _, v := range c.vals[start+1 : end] {
			if v.Compare(mn) < 0 {
				mn = v
			}
			if v.Compare(mx) > 0 {
				mx = v
			}
		}
		c.zmin = append(c.zmin, mn)
		c.zmax = append(c.zmax, mx)
	}
	if n == 0 {
		c.zmin = append(c.zmin, value.Null)
		c.zmax = append(c.zmax, value.Null)
	}
}

// Table returns the named table.
func (s *Store) Table(name string) (*Table, bool) {
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// NumRows returns the base (merged) physical row count, excluding the
// un-merged delta. Use View for the logical table contents.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.numRows
}

// NumLive returns the logical live row count: base minus deletes plus the
// live delta.
func (t *Table) NumLive() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.numRows - len(t.baseDead) + t.delta.numLive()
}

// Column returns the base column at position i.
func (t *Table) Column(i int) *Column {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.columns[i]
}

// ColumnByName returns the named base column, or nil.
func (t *Table) ColumnByName(name string) *Column {
	i := t.Meta.ColumnIndex(name)
	if i < 0 {
		return nil
	}
	return t.Column(i)
}

// View is an immutable snapshot of a table's logical contents: the base
// column vectors, the set of base positions deleted since the last merge,
// and the replicated delta rows not yet compacted. Taking a view is
// allocation-free until delta rows are tombstoned (then the live delta is
// copied out); everything it references is copy-on-write or append-only,
// so it stays consistent while replication and merges continue. Scans
// read base chunks (skipping BaseDead positions) and then the delta rows
// — together the table as of the replication watermark at snapshot time.
type View struct {
	Cols    []*Column
	NumRows int // base rows
	// BaseDead is the deleted base-position set (nil when none).
	BaseDead map[int32]bool
	// Delta holds the live replicated rows not yet merged, in replay
	// order. Rows are full table width and must not be mutated.
	Delta []value.Row
}

// View pins a consistent snapshot of the table.
func (t *Table) View() View {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return View{
		Cols:     t.columns,
		NumRows:  t.numRows,
		BaseDead: t.baseDead,
		Delta:    t.delta.liveRows(),
	}
}

// NumLive returns the view's logical row count.
func (v *View) NumLive() int { return v.NumRows - len(v.BaseDead) + len(v.Delta) }

// ValueAt reads column col of logical row id, where ids < NumRows address
// base positions and ids >= NumRows address delta rows — the id space Scan
// reports.
func (v *View) ValueAt(id, col int) value.Value {
	if id < v.NumRows {
		return v.Cols[col].Value(id)
	}
	return v.Delta[id-v.NumRows][col]
}

// ScanStats reports the work a columnar scan performed, feeding the latency
// model.
type ScanStats struct {
	RowsVisited   int // rows actually evaluated (after chunk skipping)
	ChunksSkipped int
	ChunksTotal   int
	ColumnsRead   int
}

// RangePruner describes an optional single-column range [Lo,Hi] the scan
// can use against zone maps; nil bounds are open.
type RangePruner struct {
	Col    int
	Lo, Hi *value.Value
}

// Scan evaluates pred over the table, reading only cols, and returns the
// matching row ids in the view's id space (base positions, then delta ids
// starting at NumRows). pred receives the row id; resolve values with
// View.ValueAt on the same view. If pruner is non-nil, base chunks whose
// zone map falls entirely outside [Lo,Hi] are skipped without visiting
// rows; delta rows have no zone maps and are always visited.
func (v *View) Scan(cols []int, pruner *RangePruner, pred func(id int) bool) ([]int, ScanStats) {
	stats := ScanStats{ColumnsRead: len(cols)}
	var match []int
	n := v.NumRows
	var zc *Column
	if pruner != nil {
		zc = v.Cols[pruner.Col]
	}
	for start := 0; start < n; start += ChunkSize {
		end := start + ChunkSize
		if end > n {
			end = n
		}
		stats.ChunksTotal++
		if zc != nil {
			k := start / ChunkSize
			mn, mx := zc.ChunkRange(k)
			if pruner.Lo != nil && mx.Compare(*pruner.Lo) < 0 {
				stats.ChunksSkipped++
				continue
			}
			if pruner.Hi != nil && mn.Compare(*pruner.Hi) > 0 {
				stats.ChunksSkipped++
				continue
			}
		}
		for id := start; id < end; id++ {
			if v.BaseDead[int32(id)] {
				continue
			}
			stats.RowsVisited++
			if pred == nil || pred(id) {
				match = append(match, id)
			}
		}
	}
	for i := range v.Delta {
		stats.RowsVisited++
		id := n + i
		if pred == nil || pred(id) {
			match = append(match, id)
		}
	}
	return match, stats
}

// Scan evaluates pred over a fresh view of the table. See View.Scan.
//
// Legacy-pair caveat: Table.Scan and Table.Materialize each pin their own
// view, and scan ids are only meaningful within the view that produced
// them — a replication apply or merge between the two calls remaps the id
// space. Callers racing the write path must take one explicit View and
// use View.Scan + View.Materialize (as exec.ColTableScan does); the
// Table-level pair is retained for quiesced/read-only use (benchmarks,
// tests). pred implementations that read values through Column.Value only
// see base rows correctly — use View.ValueAt when deltas may exist.
func (t *Table) Scan(cols []int, pruner *RangePruner, pred func(id int) bool) ([]int, ScanStats) {
	v := t.View()
	return v.Scan(cols, pruner, pred)
}

// Materialize assembles value rows for the given ids over the given column
// positions (late materialization) against a fresh view. The ids must
// come from a Scan with no replication or merge in between — see the
// legacy-pair caveat on Table.Scan; concurrent callers use View.
// Materialize with the view that produced the ids.
func (t *Table) Materialize(ids []int, cols []int) []value.Row {
	v := t.View()
	return v.Materialize(ids, cols)
}

// Materialize assembles value rows for the given view-space ids.
func (v *View) Materialize(ids []int, cols []int) []value.Row {
	out := make([]value.Row, len(ids))
	for i, id := range ids {
		r := make(value.Row, len(cols))
		for j, c := range cols {
			r[j] = v.ValueAt(id, c)
		}
		out[i] = r
	}
	return out
}
