// Package colstore implements the AP engine's column-oriented storage:
// per-column typed vectors split into fixed-size chunks with min/max zone
// maps. Scans read only the referenced columns and can skip chunks whose
// zone map proves no row matches — the storage-format advantage the AP
// engine's explanations cite.
//
// The column store is the replication secondary of the TP write path: it
// consumes the row store's mutation log in LSN order (Store.Apply) into a
// per-table in-memory delta layer, and a background merger compacts deltas
// into fresh immutable base chunks (see delta.go and merger.go). Readers
// never lock per value: Table.View pins an immutable snapshot (base column
// vectors + copy-on-write delete set + delta rows) that stays valid across
// concurrent replication and merges.
package colstore

import (
	"fmt"
	"strings"
	"sync"

	"htapxplain/internal/catalog"
	"htapxplain/internal/value"
)

// ChunkSize is the number of rows per column chunk (zone-map granularity).
const ChunkSize = 1024

// Column is one stored column: per-chunk encoded data plus per-chunk zone
// maps. A Column is immutable once published; merges build fresh Columns
// and swap them in, so execution batches may alias raw chunk vectors (and
// hold decoded copies of encoded ones) indefinitely — "alias or decode,
// never mutate".
type Column struct {
	Name string
	n    int
	// vals is the contiguous raw vector, retained only when every chunk
	// chose the raw encoding (the chunks alias it); nil once any chunk is
	// encoded, so the raw backing array is actually freed.
	vals   []value.Value
	chunks []*EncodedChunk
	// zone maps: min/max per chunk (valid for orderable kinds), built from
	// the raw values before encoding — identical under every policy.
	zmin []value.Value
	zmax []value.Value
}

// newColumn builds an immutable column over vals, choosing a per-chunk
// encoding under the given policy. vals is owned by the column afterwards.
func newColumn(name string, vals []value.Value, policy EncodingPolicy) *Column {
	c := &Column{Name: name, n: len(vals), vals: vals}
	c.buildZoneMaps()
	nchunks := (len(vals) + ChunkSize - 1) / ChunkSize
	c.chunks = make([]*EncodedChunk, nchunks)
	encoded := false
	for k := 0; k < nchunks; k++ {
		lo, hi := k*ChunkSize, (k+1)*ChunkSize
		if hi > len(vals) {
			hi = len(vals)
		}
		c.chunks[k] = encodeChunk(vals[lo:hi:hi], policy)
		if c.chunks[k].Enc != EncRaw {
			encoded = true
		}
	}
	if encoded {
		// raw chunks get private copies so the full-width backing array is
		// actually released, then the contiguous alias is dropped
		for _, ch := range c.chunks {
			if ch.Enc == EncRaw {
				ch.Raw = append([]value.Value(nil), ch.Raw...)
			}
		}
		c.vals = nil
	}
	return c
}

// Len returns the number of values.
func (c *Column) Len() int { return c.n }

// Value returns the value at row id, decoding through the owning chunk's
// encoding when the column is not stored raw.
func (c *Column) Value(id int) value.Value {
	if c.vals != nil {
		return c.vals[id]
	}
	return c.chunks[id/ChunkSize].ValueAt(id % ChunkSize)
}

// Slice returns the values of rows [lo, hi). For an all-raw column this
// aliases the stored vector (capacity-clamped, never to be modified); for
// a column with encoded chunks it materializes a fresh decoded copy —
// the "alias or decode" halves of the batch contract. Hot paths use
// Chunk + EncodedChunk decode-into-buffer instead.
func (c *Column) Slice(lo, hi int) []value.Value {
	if c.vals != nil {
		return c.vals[lo:hi:hi]
	}
	out := make([]value.Value, hi-lo)
	for i := range out {
		out[i] = c.Value(lo + i)
	}
	return out
}

// Chunk returns the encoded chunk k — the accessor scans use to operate
// on encoded data directly. The chunk is immutable.
func (c *Column) Chunk(k int) *EncodedChunk { return c.chunks[k] }

// NumChunks returns the number of zone-mapped chunks.
func (c *Column) NumChunks() int { return len(c.zmin) }

// ChunkRange returns the [min,max] zone map of chunk k.
func (c *Column) ChunkRange(k int) (value.Value, value.Value) { return c.zmin[k], c.zmax[k] }

// Table is one column-oriented table: immutable base chunks plus the
// replication delta. All field access goes through mu; the values the
// fields point at are immutable, so snapshots taken under RLock stay valid
// after release.
type Table struct {
	Meta *catalog.Table

	mu      sync.RWMutex
	columns []*Column
	numRows int // base rows (before delta)
	// baseRID maps base position → row id assigned by the primary; nil
	// means the identity mapping of the initial bulk load (pos == RID).
	// ridPos is its inverse (nil while the identity mapping holds).
	baseRID []int64
	ridPos  map[int64]int32
	// baseDead is the copy-on-write set of deleted base positions; nil
	// when no base row is deleted. Never mutated once published — deletes
	// replace it with an extended copy, so views may alias it freely.
	baseDead map[int32]bool
	delta    tableDelta

	// policy is the store's encoding policy, applied whenever this
	// table's base chunks are (re)built: bulk load, merge, recovery.
	policy EncodingPolicy
}

// Store is the column engine's storage manager and replication secondary.
type Store struct {
	tables map[string]*Table
	repl   replState
	merger mergerState
	policy EncodingPolicy
}

// Option configures a Store at construction.
type Option func(*Store)

// WithEncoding sets the store's chunk-encoding policy. The default is
// PolicyAuto (smallest eligible encoding per chunk); PolicyRaw restores
// the pre-encoding raw-vector layout, and the forced policies exist for
// differential tests and benchmarks.
func WithEncoding(p EncodingPolicy) Option {
	return func(s *Store) { s.policy = p }
}

// NewStore builds a column store over the given physical data. Base
// positions are aligned with the row store's heap (RID i ↔ position i).
func NewStore(cat *catalog.Catalog, data map[string][]value.Row, opts ...Option) (*Store, error) {
	s := &Store{tables: make(map[string]*Table, len(data))}
	s.repl.init()
	for _, o := range opts {
		o(s)
	}
	for _, meta := range cat.Tables() {
		rows, ok := data[strings.ToLower(meta.Name)]
		if !ok {
			return nil, fmt.Errorf("colstore: no data for table %q", meta.Name)
		}
		t := &Table{Meta: meta, numRows: len(rows), policy: s.policy}
		for ci, colMeta := range meta.Columns {
			vals := make([]value.Value, len(rows))
			for ri, r := range rows {
				vals[ri] = r[ci]
			}
			t.columns = append(t.columns, newColumn(strings.ToLower(colMeta.Name), vals, s.policy))
		}
		s.tables[strings.ToLower(meta.Name)] = t
	}
	return s, nil
}

// MemStats is a snapshot of the column store's base-chunk footprint under
// its chosen encodings. Delta rows (transient, unencoded) are excluded.
type MemStats struct {
	// ResidentBytes is the modeled footprint of the base chunks in their
	// stored encodings; RawBytes is what the same data would occupy as
	// raw value vectors.
	ResidentBytes int64 `json:"resident_bytes"`
	RawBytes      int64 `json:"raw_bytes"`
	// ChunksByEnc counts base chunks per encoding, indexed by Encoding.
	ChunksByEnc [NumEncodings]int64 `json:"chunks_by_enc"`
}

// CompressionRatio returns RawBytes/ResidentBytes (1 when empty).
func (m MemStats) CompressionRatio() float64 {
	if m.ResidentBytes <= 0 {
		return 1
	}
	return float64(m.RawBytes) / float64(m.ResidentBytes)
}

// MemStats aggregates the encoded-footprint statistics across all tables.
func (s *Store) MemStats() MemStats {
	var out MemStats
	for _, t := range s.tables {
		t.mu.RLock()
		for _, c := range t.columns {
			for _, ch := range c.chunks {
				out.ResidentBytes += ch.EncBytes
				out.RawBytes += ch.RawBytes
				out.ChunksByEnc[ch.Enc]++
			}
		}
		t.mu.RUnlock()
	}
	return out
}

func (c *Column) buildZoneMaps() {
	n := len(c.vals)
	for start := 0; start < n; start += ChunkSize {
		end := start + ChunkSize
		if end > n {
			end = n
		}
		mn, mx := c.vals[start], c.vals[start]
		for _, v := range c.vals[start+1 : end] {
			if v.Compare(mn) < 0 {
				mn = v
			}
			if v.Compare(mx) > 0 {
				mx = v
			}
		}
		c.zmin = append(c.zmin, mn)
		c.zmax = append(c.zmax, mx)
	}
	if n == 0 {
		c.zmin = append(c.zmin, value.Null)
		c.zmax = append(c.zmax, value.Null)
	}
}

// Table returns the named table.
func (s *Store) Table(name string) (*Table, bool) {
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// NumRows returns the base (merged) physical row count, excluding the
// un-merged delta. Use View for the logical table contents.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.numRows
}

// NumLive returns the logical live row count: base minus deletes plus the
// live delta.
func (t *Table) NumLive() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.numRows - len(t.baseDead) + t.delta.numLive()
}

// Column returns the base column at position i.
func (t *Table) Column(i int) *Column {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.columns[i]
}

// ColumnByName returns the named base column, or nil.
func (t *Table) ColumnByName(name string) *Column {
	i := t.Meta.ColumnIndex(name)
	if i < 0 {
		return nil
	}
	return t.Column(i)
}

// View is an immutable snapshot of a table's logical contents: the base
// column vectors, the set of base positions deleted since the last merge,
// and the replicated delta rows not yet compacted. Taking a view is
// allocation-free until delta rows are tombstoned (then the live delta is
// copied out); everything it references is copy-on-write or append-only,
// so it stays consistent while replication and merges continue. Scans
// read base chunks (skipping BaseDead positions) and then the delta rows
// — together the table as of the replication watermark at snapshot time.
type View struct {
	Cols    []*Column
	NumRows int // base rows
	// BaseDead is the deleted base-position set (nil when none).
	BaseDead map[int32]bool
	// Delta holds the live replicated rows not yet merged, in replay
	// order. Rows are full table width and must not be mutated.
	Delta []value.Row
}

// View pins a consistent snapshot of the table.
func (t *Table) View() View {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return View{
		Cols:     t.columns,
		NumRows:  t.numRows,
		BaseDead: t.baseDead,
		Delta:    t.delta.liveRows(),
	}
}

// NumLive returns the view's logical row count.
func (v *View) NumLive() int { return v.NumRows - len(v.BaseDead) + len(v.Delta) }

// ValueAt reads column col of logical row id, where ids < NumRows address
// base positions and ids >= NumRows address delta rows — the id space Scan
// reports.
func (v *View) ValueAt(id, col int) value.Value {
	if id < v.NumRows {
		return v.Cols[col].Value(id)
	}
	return v.Delta[id-v.NumRows][col]
}

// ScanStats reports the work a columnar scan performed, feeding the latency
// model.
type ScanStats struct {
	RowsVisited   int // rows actually evaluated (after chunk skipping)
	ChunksSkipped int
	ChunksTotal   int
	ColumnsRead   int
}

// RangePruner describes an optional single-column range the scan can use
// against zone maps and, on encoded chunks, as an encoded-domain
// prefilter; nil bounds are open. LoStrict/HiStrict mark exclusive bounds
// (col > Lo / col < Hi); zone-map pruning ignores strictness (always
// conservative), the chunk-level RangeSel honors it.
type RangePruner struct {
	Col                int
	Lo, Hi             *value.Value
	LoStrict, HiStrict bool
	// Exact marks the pruner as a complete, bit-exact representation of
	// the scan's entire predicate (a single sargable comparison/BETWEEN on
	// Col): the chunk-level RangeSel is then the final filter on base
	// chunks, and the compiled row predicate only needs to run on delta
	// rows. The optimizer sets it; scans may never assume it otherwise.
	Exact bool
}

// Scan evaluates pred over the table, reading only cols, and returns the
// matching row ids in the view's id space (base positions, then delta ids
// starting at NumRows). pred receives the row id; resolve values with
// View.ValueAt on the same view. If pruner is non-nil, base chunks whose
// zone map falls entirely outside [Lo,Hi] are skipped without visiting
// rows; delta rows have no zone maps and are always visited.
func (v *View) Scan(cols []int, pruner *RangePruner, pred func(id int) bool) ([]int, ScanStats) {
	stats := ScanStats{ColumnsRead: len(cols)}
	var match []int
	n := v.NumRows
	var zc *Column
	if pruner != nil {
		zc = v.Cols[pruner.Col]
	}
	for start := 0; start < n; start += ChunkSize {
		end := start + ChunkSize
		if end > n {
			end = n
		}
		stats.ChunksTotal++
		if zc != nil {
			k := start / ChunkSize
			mn, mx := zc.ChunkRange(k)
			if pruner.Lo != nil && mx.Compare(*pruner.Lo) < 0 {
				stats.ChunksSkipped++
				continue
			}
			if pruner.Hi != nil && mn.Compare(*pruner.Hi) > 0 {
				stats.ChunksSkipped++
				continue
			}
		}
		for id := start; id < end; id++ {
			if v.BaseDead[int32(id)] {
				continue
			}
			stats.RowsVisited++
			if pred == nil || pred(id) {
				match = append(match, id)
			}
		}
	}
	for i := range v.Delta {
		stats.RowsVisited++
		id := n + i
		if pred == nil || pred(id) {
			match = append(match, id)
		}
	}
	return match, stats
}

// Scan evaluates pred over a fresh view of the table. See View.Scan.
//
// Legacy-pair caveat: Table.Scan and Table.Materialize each pin their own
// view, and scan ids are only meaningful within the view that produced
// them — a replication apply or merge between the two calls remaps the id
// space. Callers racing the write path must take one explicit View and
// use View.Scan + View.Materialize (as exec.ColTableScan does); the
// Table-level pair is retained for quiesced/read-only use (benchmarks,
// tests). pred implementations that read values through Column.Value only
// see base rows correctly — use View.ValueAt when deltas may exist.
func (t *Table) Scan(cols []int, pruner *RangePruner, pred func(id int) bool) ([]int, ScanStats) {
	v := t.View()
	return v.Scan(cols, pruner, pred)
}

// Materialize assembles value rows for the given ids over the given column
// positions (late materialization) against a fresh view. The ids must
// come from a Scan with no replication or merge in between — see the
// legacy-pair caveat on Table.Scan; concurrent callers use View.
// Materialize with the view that produced the ids.
func (t *Table) Materialize(ids []int, cols []int) []value.Row {
	v := t.View()
	return v.Materialize(ids, cols)
}

// Materialize assembles value rows for the given view-space ids.
func (v *View) Materialize(ids []int, cols []int) []value.Row {
	out := make([]value.Row, len(ids))
	for i, id := range ids {
		r := make(value.Row, len(cols))
		for j, c := range cols {
			r[j] = v.ValueAt(id, c)
		}
		out[i] = r
	}
	return out
}
