// Package colstore implements the AP engine's column-oriented storage:
// per-column typed vectors split into fixed-size chunks with min/max zone
// maps. Scans read only the referenced columns and can skip chunks whose
// zone map proves no row matches — the storage-format advantage the AP
// engine's explanations cite.
package colstore

import (
	"fmt"
	"strings"

	"htapxplain/internal/catalog"
	"htapxplain/internal/value"
)

// ChunkSize is the number of rows per column chunk (zone-map granularity).
const ChunkSize = 1024

// Column is one stored column: the full vector plus per-chunk zone maps.
type Column struct {
	Name string
	vals []value.Value
	// zone maps: min/max per chunk (valid for orderable kinds)
	zmin []value.Value
	zmax []value.Value
}

// Len returns the number of values.
func (c *Column) Len() int { return len(c.vals) }

// Value returns the value at row id.
func (c *Column) Value(id int) value.Value { return c.vals[id] }

// Slice returns the stored value vector for rows [lo, hi) — the raw chunk
// data the vectorized scan aliases directly into execution batches. The
// slice is capacity-clamped and must not be modified by callers.
func (c *Column) Slice(lo, hi int) []value.Value { return c.vals[lo:hi:hi] }

// NumChunks returns the number of zone-mapped chunks.
func (c *Column) NumChunks() int { return len(c.zmin) }

// ChunkRange returns the [min,max] zone map of chunk k.
func (c *Column) ChunkRange(k int) (value.Value, value.Value) { return c.zmin[k], c.zmax[k] }

// Table is one column-oriented table.
type Table struct {
	Meta    *catalog.Table
	columns []*Column
	numRows int
}

// Store is the column engine's storage manager.
type Store struct {
	tables map[string]*Table
}

// NewStore builds a column store over the given physical data.
func NewStore(cat *catalog.Catalog, data map[string][]value.Row) (*Store, error) {
	s := &Store{tables: make(map[string]*Table, len(data))}
	for _, meta := range cat.Tables() {
		rows, ok := data[strings.ToLower(meta.Name)]
		if !ok {
			return nil, fmt.Errorf("colstore: no data for table %q", meta.Name)
		}
		t := &Table{Meta: meta, numRows: len(rows)}
		for ci, colMeta := range meta.Columns {
			col := &Column{Name: strings.ToLower(colMeta.Name), vals: make([]value.Value, len(rows))}
			for ri, r := range rows {
				col.vals[ri] = r[ci]
			}
			col.buildZoneMaps()
			t.columns = append(t.columns, col)
		}
		s.tables[strings.ToLower(meta.Name)] = t
	}
	return s, nil
}

func (c *Column) buildZoneMaps() {
	n := len(c.vals)
	for start := 0; start < n; start += ChunkSize {
		end := start + ChunkSize
		if end > n {
			end = n
		}
		mn, mx := c.vals[start], c.vals[start]
		for _, v := range c.vals[start+1 : end] {
			if v.Compare(mn) < 0 {
				mn = v
			}
			if v.Compare(mx) > 0 {
				mx = v
			}
		}
		c.zmin = append(c.zmin, mn)
		c.zmax = append(c.zmax, mx)
	}
	if n == 0 {
		c.zmin = append(c.zmin, value.Null)
		c.zmax = append(c.zmax, value.Null)
	}
}

// Table returns the named table.
func (s *Store) Table(name string) (*Table, bool) {
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// NumRows returns the physical row count.
func (t *Table) NumRows() int { return t.numRows }

// Column returns the column at position i.
func (t *Table) Column(i int) *Column { return t.columns[i] }

// ColumnByName returns the named column, or nil.
func (t *Table) ColumnByName(name string) *Column {
	i := t.Meta.ColumnIndex(name)
	if i < 0 {
		return nil
	}
	return t.columns[i]
}

// ScanStats reports the work a columnar scan performed, feeding the latency
// model.
type ScanStats struct {
	RowsVisited   int // rows actually evaluated (after chunk skipping)
	ChunksSkipped int
	ChunksTotal   int
	ColumnsRead   int
}

// RangePruner describes an optional single-column range [Lo,Hi] the scan
// can use against zone maps; nil bounds are open.
type RangePruner struct {
	Col    int
	Lo, Hi *value.Value
}

// Scan evaluates pred over the table, reading only cols, and returns the
// matching row ids. pred receives the row id and a getter for any column
// position. If pruner is non-nil, chunks whose zone map falls entirely
// outside [Lo,Hi] are skipped without visiting rows.
func (t *Table) Scan(cols []int, pruner *RangePruner, pred func(id int) bool) ([]int, ScanStats) {
	stats := ScanStats{ColumnsRead: len(cols)}
	var match []int
	n := t.numRows
	var zc *Column
	if pruner != nil {
		zc = t.columns[pruner.Col]
	}
	for start := 0; start < n; start += ChunkSize {
		end := start + ChunkSize
		if end > n {
			end = n
		}
		stats.ChunksTotal++
		if zc != nil {
			k := start / ChunkSize
			mn, mx := zc.ChunkRange(k)
			if pruner.Lo != nil && mx.Compare(*pruner.Lo) < 0 {
				stats.ChunksSkipped++
				continue
			}
			if pruner.Hi != nil && mn.Compare(*pruner.Hi) > 0 {
				stats.ChunksSkipped++
				continue
			}
		}
		for id := start; id < end; id++ {
			stats.RowsVisited++
			if pred == nil || pred(id) {
				match = append(match, id)
			}
		}
	}
	return match, stats
}

// Materialize assembles value rows for the given ids over the given column
// positions (late materialization).
func (t *Table) Materialize(ids []int, cols []int) []value.Row {
	out := make([]value.Row, len(ids))
	for i, id := range ids {
		r := make(value.Row, len(cols))
		for j, c := range cols {
			r[j] = t.columns[c].vals[id]
		}
		out[i] = r
	}
	return out
}
