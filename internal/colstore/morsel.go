package colstore

import (
	"sync/atomic"
)

// A Morsel is one chunk-aligned unit of scan work: either a base chunk
// (carrying its zone-map chunk index) or a window of the pinned delta.
// Morsels alias the immutable snapshot they were cut from — the base
// column vectors are never mutated after publication and the delta slice
// is pinned by the Morsels source, so a worker may hold a morsel's data
// for as long as the source is alive.
type Morsel struct {
	// Base distinguishes base-chunk morsels from delta windows.
	Base bool
	// Lo/Hi is the half-open row range: base positions for base morsels,
	// delta indices for delta morsels.
	Lo, Hi int
	// Chunk is the zone-map chunk index of a base morsel (-1 for delta).
	Chunk int
}

// Rows returns the number of rows the morsel spans.
func (m Morsel) Rows() int { return m.Hi - m.Lo }

// Morsels is a concurrent morsel source over one pinned view: a shared
// atomic cursor over the base chunks followed by the delta windows. It is
// the storage half of morsel-driven parallelism — every worker clone of a
// columnar scan draws disjoint chunk-aligned ranges from the same source,
// so the view (including its delta snapshot) is pinned exactly once per
// query regardless of the degree of parallelism.
//
// Zone-map predicate pruning happens here, at dispatch: a base chunk whose
// zone map falls entirely outside the pruner's range is skipped without
// ever being handed to a worker, and the skip is counted — pruned chunks
// are counted, not scanned.
type Morsels struct {
	// View is the pinned snapshot every morsel addresses. Immutable.
	View View

	pruner *RangePruner
	zc     *Column // pruner column, resolved once
	nBase  int     // base chunk count
	nTotal int     // base chunks + delta windows
	cursor atomic.Int64
}

// deltaWindow is the number of delta rows per morsel, aligned with the
// base chunk size so execution batches stay uniformly sized.
const deltaWindow = ChunkSize

// NewMorsels pins a morsel source over the given view. pruner may be nil
// (no zone-map pruning).
func NewMorsels(v View, pruner *RangePruner) *Morsels {
	m := &Morsels{View: v, pruner: pruner}
	m.nBase = (v.NumRows + ChunkSize - 1) / ChunkSize
	m.nTotal = m.nBase + (len(v.Delta)+deltaWindow-1)/deltaWindow
	if pruner != nil {
		m.zc = v.Cols[pruner.Col]
	}
	return m
}

// Next claims the next unpruned morsel. It is safe to call from any number
// of goroutines concurrently; each chunk of the view is dispatched to
// exactly one caller. The second return value is the number of base chunks
// this call pruned via zone maps on the way to the returned morsel —
// callers fold it into their work counters, so pruning is counted exactly
// once across all workers without any shared bookkeeping beyond the
// cursor itself. Pruned chunks are reported even when the source is
// exhausted: the final false return may carry a non-zero count.
func (m *Morsels) Next() (Morsel, int64, bool) {
	var prunedNow int64
	for {
		i := int(m.cursor.Add(1)) - 1
		if i >= m.nTotal {
			return Morsel{}, prunedNow, false
		}
		if i >= m.nBase { // delta window
			lo := (i - m.nBase) * deltaWindow
			hi := lo + deltaWindow
			if hi > len(m.View.Delta) {
				hi = len(m.View.Delta)
			}
			return Morsel{Lo: lo, Hi: hi, Chunk: -1}, prunedNow, true
		}
		lo := i * ChunkSize
		hi := lo + ChunkSize
		if hi > m.View.NumRows {
			hi = m.View.NumRows
		}
		if m.zc != nil {
			mn, mx := m.zc.ChunkRange(i)
			if (m.pruner.Lo != nil && mx.Compare(*m.pruner.Lo) < 0) ||
				(m.pruner.Hi != nil && mn.Compare(*m.pruner.Hi) > 0) {
				prunedNow++
				continue
			}
		}
		return Morsel{Base: true, Lo: lo, Hi: hi, Chunk: i}, prunedNow, true
	}
}

// NumMorsels returns the total morsel supply (base chunks + delta
// windows, before pruning) — what bounds how many workers can usefully
// share the cursor.
func (m *Morsels) NumMorsels() int { return m.nTotal }

// NumChunks returns the number of zone-mapped base chunks a scan of the
// table would cover — the physical cardinality fact the optimizer's
// degree-of-parallelism choice is made from.
func (t *Table) NumChunks() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return (t.numRows + ChunkSize - 1) / ChunkSize
}
