package colstore

import (
	"fmt"
	"sync/atomic"

	"htapxplain/internal/repl"
	"htapxplain/internal/value"
)

// tableDelta accumulates replicated writes that have not been merged into
// base chunks yet. rows/rids are append-only; a delete of an unmerged row
// only sets its tombstone bit (O(1) — no splicing, no index rebuild), so
// the applier never does quadratic work under the table lock. Views built
// while tombstones exist get a filtered copy of the live rows; with no
// tombstones they alias rows directly.
type tableDelta struct {
	rows []value.Row // replicated inserts in replay (LSN) order
	rids []int64     // parallel: primary-assigned RID per row
	dead []bool      // parallel: tombstoned before merging
	// deadCount is the number of set tombstones.
	deadCount int
	// ridPos maps RID → index into rows for rows that are still live.
	// Only the replication applier touches it (under the table lock).
	ridPos map[int64]int
}

// liveRows returns the delta rows visible to readers: an alias of the
// append-only rows slice when nothing is tombstoned, a filtered copy
// otherwise. Caller holds the table lock (read or write).
func (d *tableDelta) liveRows() []value.Row {
	if d.deadCount == 0 {
		return d.rows[:len(d.rows):len(d.rows)]
	}
	out := make([]value.Row, 0, len(d.rows)-d.deadCount)
	for i, r := range d.rows {
		if !d.dead[i] {
			out = append(out, r)
		}
	}
	return out
}

// numLive returns the live delta row count. Caller holds the table lock.
func (d *tableDelta) numLive() int { return len(d.rows) - d.deadCount }

// replState is the store-global replication bookkeeping.
type replState struct {
	watermark atomic.Uint64 // last applied LSN
	applied   atomic.Int64  // mutations applied
	pending   atomic.Int64  // delta slots + tombstones awaiting merge, across tables
	notify    chan struct{} // pokes the background merger on threshold
}

func (r *replState) init() {
	r.notify = make(chan struct{}, 1)
}

// Watermark returns the LSN of the last mutation folded into the delta
// layer — the freshness bound AP reads are guaranteed to reflect.
func (s *Store) Watermark() uint64 { return s.repl.watermark.Load() }

// MutationsApplied returns the number of replicated mutations applied.
func (s *Store) MutationsApplied() int64 { return s.repl.applied.Load() }

// PendingDelta returns the number of un-merged delta operations across all
// tables (delta slots plus base tombstones).
func (s *Store) PendingDelta() int64 { return s.repl.pending.Load() }

// Apply folds one replicated mutation into the target table's delta layer
// and advances the watermark. The caller must apply mutations in strictly
// increasing LSN order (the replication channel in htap does); deletes are
// applied before inserts so an UPDATE replays correctly from one
// mutation. A rejected mutation leaves the table untouched (validation
// runs before any state changes) and does not advance the watermark.
func (s *Store) Apply(mut *repl.Mutation) error {
	t, ok := s.Table(mut.Table)
	if !ok {
		return fmt.Errorf("colstore: replicated mutation for unknown table %q", mut.Table)
	}
	ops, err := t.apply(mut)
	if err != nil {
		return err
	}
	s.repl.watermark.Store(mut.LSN)
	s.repl.applied.Add(1)
	if s.repl.pending.Add(int64(ops)) >= int64(s.mergeThreshold()) {
		select {
		case s.repl.notify <- struct{}{}:
		default:
		}
	}
	return nil
}

// deleteTarget locates one RID to delete: either a base position or a
// delta index.
type deleteTarget struct {
	rid    int64
	inBase bool
	pos    int32 // base position when inBase
	di     int   // delta index otherwise
}

// apply folds the mutation into the table and reports how many pending
// merge operations it added. It validates every operation before mutating
// anything, so a failed mutation is all-or-nothing.
func (t *Table) apply(mut *repl.Mutation) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()

	// phase 1: validate and resolve
	targets := make([]deleteTarget, 0, len(mut.Deletes))
	seenBase := make(map[int32]bool, len(mut.Deletes))
	seenDelta := make(map[int]bool, len(mut.Deletes))
	for _, rid := range mut.Deletes {
		if pos, ok := t.basePosLocked(rid); ok {
			if t.baseDead[pos] || seenBase[pos] {
				return 0, fmt.Errorf("colstore: %s base row %d deleted twice", mut.Table, rid)
			}
			seenBase[pos] = true
			targets = append(targets, deleteTarget{rid: rid, inBase: true, pos: pos})
			continue
		}
		di, ok := t.delta.ridPos[rid]
		if !ok || seenDelta[di] {
			return 0, fmt.Errorf("colstore: %s has no row version %d to delete", mut.Table, rid)
		}
		seenDelta[di] = true
		targets = append(targets, deleteTarget{rid: rid, di: di})
	}
	for _, ins := range mut.Inserts {
		if len(ins.Row) != len(t.Meta.Columns) {
			return 0, fmt.Errorf("colstore: %s expects %d columns, got %d",
				mut.Table, len(t.Meta.Columns), len(ins.Row))
		}
	}

	// phase 2: mutate
	ops := 0
	if len(seenBase) > 0 {
		// copy-on-write, once per mutation: views alias the published map
		nd := make(map[int32]bool, len(t.baseDead)+len(seenBase))
		for k, v := range t.baseDead {
			nd[k] = v
		}
		t.baseDead = nd
	}
	for _, tgt := range targets {
		if tgt.inBase {
			t.baseDead[tgt.pos] = true
			ops++
			continue
		}
		t.delta.dead[tgt.di] = true
		t.delta.deadCount++
		delete(t.delta.ridPos, tgt.rid)
	}
	for _, ins := range mut.Inserts {
		if t.delta.ridPos == nil {
			t.delta.ridPos = make(map[int64]int)
		}
		t.delta.ridPos[ins.RID] = len(t.delta.rows)
		t.delta.rows = append(t.delta.rows, ins.Row)
		t.delta.rids = append(t.delta.rids, ins.RID)
		t.delta.dead = append(t.delta.dead, false)
		ops++
	}
	return ops, nil
}

// basePosLocked resolves a primary RID to a base position, if the version
// lives in the merged base. Caller holds t.mu.
func (t *Table) basePosLocked(rid int64) (int32, bool) {
	if t.ridPos != nil {
		pos, ok := t.ridPos[rid]
		return pos, ok
	}
	// identity mapping of the initial bulk load
	if rid >= 0 && rid < int64(t.numRows) {
		return int32(rid), true
	}
	return 0, false
}
