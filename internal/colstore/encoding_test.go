package colstore

import (
	"fmt"
	"math"
	"testing"

	"htapxplain/internal/value"
)

// refRangeSel is the trusted reference for RangeSel: the per-row matchRange
// loop every encoding-specific fast path must agree with.
func refRangeSel(vals []value.Value, lo, hi *value.Value, loStrict, hiStrict bool) []int32 {
	if (lo != nil && lo.IsNull()) || (hi != nil && hi.IsNull()) {
		return []int32{}
	}
	out := []int32{}
	for i, v := range vals {
		if matchRange(v, lo, hi, loStrict, hiStrict) {
			out = append(out, int32(i))
		}
	}
	return out
}

func checkChunk(t *testing.T, label string, vals []value.Value, policy EncodingPolicy) {
	t.Helper()
	ch := encodeChunk(vals, policy)
	if ch.N != len(vals) {
		t.Fatalf("%s: N = %d, want %d", label, ch.N, len(vals))
	}
	// full decode round-trips bit-exactly
	dec := ch.Decode(nil)
	for i := range vals {
		if !eqValue(dec[i], vals[i]) {
			t.Fatalf("%s: Decode[%d] = %v, want %v (enc %v)", label, i, dec[i], vals[i], ch.Enc)
		}
		if got := ch.ValueAt(i); !eqValue(got, vals[i]) {
			t.Fatalf("%s: ValueAt(%d) = %v, want %v (enc %v)", label, i, got, vals[i], ch.Enc)
		}
	}
	// sparse decode hits exactly the selected positions
	sel := []int32{}
	for i := 0; i < len(vals); i += 3 {
		sel = append(sel, int32(i))
	}
	sparse := make([]value.Value, len(vals))
	ch.DecodeSel(sparse, sel)
	for _, i := range sel {
		if !eqValue(sparse[i], vals[i]) {
			t.Fatalf("%s: DecodeSel[%d] = %v, want %v (enc %v)", label, i, sparse[i], vals[i], ch.Enc)
		}
	}
	// RangeSel agrees with the reference for a spread of bounds
	var probes []value.Value
	if len(vals) > 0 {
		probes = append(probes, vals[0], vals[len(vals)/2], vals[len(vals)-1])
	}
	probes = append(probes, value.NewInt(-1), value.NewInt(1<<40), value.NewString("m"), value.Null)
	for _, lo := range probes {
		for _, hi := range probes {
			for _, strict := range []bool{false, true} {
				lo, hi := lo, hi
				got, all := ch.RangeSel(&lo, &hi, strict, strict, nil)
				if all {
					got = nil
					for i := range vals {
						got = append(got, int32(i))
					}
				}
				want := refRangeSel(vals, &lo, &hi, strict, strict)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("%s: RangeSel(%v,%v,strict=%v) enc %v = %v, want %v",
						label, lo, hi, strict, ch.Enc, got, want)
				}
			}
		}
	}
	// open-ended bounds
	if got, all := ch.RangeSel(nil, nil, false, false, nil); !all && len(got) != len(refRangeSel(vals, nil, nil, false, false)) {
		t.Fatalf("%s: unbounded RangeSel dropped rows", label)
	}
}

func TestEncodingSelection(t *testing.T) {
	n := ChunkSize
	ints := make([]value.Value, n)  // wide-spread ints: FoR
	dicts := make([]value.Value, n) // 8 distinct strings: dictionary
	runs := make([]value.Value, n)  // long sorted runs: RLE
	uniq := make([]value.Value, n)  // unique strings: raw stays smallest
	for i := 0; i < n; i++ {
		ints[i] = value.NewInt(int64(i) * 1_000_003)
		dicts[i] = value.NewString(fmt.Sprintf("mode-%d", i%8))
		runs[i] = value.NewInt(int64(i / 256))
		uniq[i] = value.NewString(fmt.Sprintf("unique-value-%06d", i))
	}
	cases := []struct {
		label string
		vals  []value.Value
		want  Encoding
	}{
		{"for-ints", ints, EncFoR},
		{"dict-strings", dicts, EncDict},
		{"rle-runs", runs, EncRLE},
		{"unique-strings", uniq, EncRaw},
	}
	for _, c := range cases {
		ch := encodeChunk(c.vals, PolicyAuto)
		if ch.Enc != c.want {
			t.Errorf("%s: PolicyAuto chose %v, want %v", c.label, ch.Enc, c.want)
		}
		if ch.Enc != EncRaw && ch.EncBytes >= ch.RawBytes {
			t.Errorf("%s: encoded %d bytes >= raw %d", c.label, ch.EncBytes, ch.RawBytes)
		}
	}
}

func TestEncodedChunkContract(t *testing.T) {
	mixed := []value.Value{
		value.Null, value.NewInt(5), value.NewFloat(5), value.NewFloat(math.NaN()),
		value.NewFloat(math.Copysign(0, -1)), value.NewFloat(0), value.NewString(""),
		value.NewString("z"), value.NewBool(true), value.NewBool(false),
		value.NewInt(math.MaxInt64), value.NewInt(math.MinInt64),
	}
	sets := map[string][]value.Value{
		"mixed-kinds": mixed,
		"all-null":    {value.Null, value.Null, value.Null},
		"single":      {value.NewInt(42)},
		"bools":       {value.NewBool(true), value.NewBool(false), value.NewBool(true)},
		"extreme-ints": {
			value.NewInt(math.MinInt64), value.NewInt(math.MaxInt64),
			value.NewInt(0), value.NewInt(-1),
		},
		"neg-floats": {value.NewFloat(-1.5), value.NewFloat(2.5), value.NewFloat(-1.5)},
	}
	for label, vals := range sets {
		for _, p := range AllPolicies {
			checkChunk(t, label+"/"+p.String(), vals, p)
		}
	}
}

// TestZoneMapsUnchangedByEncoding: encodings change the physical layout
// only — the zone maps a column publishes must be byte-identical to the
// raw layout's, whatever the policy.
func TestZoneMapsUnchangedByEncoding(t *testing.T) {
	n := 3*ChunkSize + 71
	vals := make([]value.Value, n)
	for i := range vals {
		vals[i] = value.NewInt(int64((i * 37) % 4001))
	}
	ref := newColumn("c", append([]value.Value(nil), vals...), PolicyRaw)
	for _, p := range AllPolicies {
		c := newColumn("c", append([]value.Value(nil), vals...), p)
		if c.NumChunks() != ref.NumChunks() {
			t.Fatalf("%v: %d chunks, want %d", p, c.NumChunks(), ref.NumChunks())
		}
		for k := 0; k < ref.NumChunks(); k++ {
			mn, mx := c.ChunkRange(k)
			rn, rx := ref.ChunkRange(k)
			if !eqValue(mn, rn) || !eqValue(mx, rx) {
				t.Errorf("%v chunk %d: zone map [%v,%v], want [%v,%v]", p, k, mn, mx, rn, rx)
			}
		}
		for i := 0; i < n; i += 97 {
			if got := c.Value(i); !eqValue(got, vals[i]) {
				t.Fatalf("%v: Value(%d) = %v, want %v", p, i, got, vals[i])
			}
		}
	}
}

// fuzzValues deterministically expands fuzz bytes into a value slice that
// exercises every kind, NULLs, NaN, negative zero, and int64 extremes.
func fuzzValues(data []byte) []value.Value {
	vals := make([]value.Value, 0, len(data))
	for i := 0; i+1 < len(data); i += 2 {
		k, b := data[i], data[i+1]
		switch k % 7 {
		case 0:
			vals = append(vals, value.Null)
		case 1:
			vals = append(vals, value.NewInt(int64(b)-128))
		case 2:
			vals = append(vals, value.NewInt((int64(b)-128)*(math.MaxInt64/255)))
		case 3:
			switch b % 4 {
			case 0:
				vals = append(vals, value.NewFloat(math.NaN()))
			case 1:
				vals = append(vals, value.NewFloat(math.Copysign(0, -1)))
			default:
				vals = append(vals, value.NewFloat(float64(int64(b)-128)/4))
			}
		case 4:
			vals = append(vals, value.NewString(fmt.Sprintf("s%d", b%16)))
		case 5:
			vals = append(vals, value.NewBool(b%2 == 0))
		case 6:
			vals = append(vals, value.NewInt(int64(b%8)))
		}
	}
	if len(vals) > ChunkSize {
		vals = vals[:ChunkSize]
	}
	return vals
}

// FuzzEncodingRoundTrip: for arbitrary values under every policy, encoding
// must never panic, must round-trip bit-exactly, must keep zone maps
// identical to the raw layout, and RangeSel must agree with the per-row
// reference under every bound/strictness combination derived from the
// input.
func FuzzEncodingRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13})
	f.Add([]byte{12, 0, 12, 1, 12, 2, 12, 3, 12, 4})             // small ints
	f.Add([]byte{8, 5, 8, 5, 8, 5, 8, 9, 8, 9})                  // runs
	f.Add([]byte{4, 200, 4, 10, 2, 128, 3, 0, 3, 1, 0, 0, 5, 7}) // extremes + NaN + null
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := fuzzValues(data)
		if len(vals) == 0 {
			return
		}
		for _, p := range AllPolicies {
			ch := encodeChunk(append([]value.Value(nil), vals...), p)
			if ch.N != len(vals) {
				t.Fatalf("%v: N = %d, want %d", p, ch.N, len(vals))
			}
			dec := ch.Decode(nil)
			for i := range vals {
				if !eqValue(dec[i], vals[i]) {
					t.Fatalf("%v: Decode[%d] = %v, want %v (enc %v)", p, i, dec[i], vals[i], ch.Enc)
				}
			}
			for i := 0; i < len(vals); i += 1 + len(vals)/8 {
				if got := ch.ValueAt(i); !eqValue(got, vals[i]) {
					t.Fatalf("%v: ValueAt(%d) = %v, want %v (enc %v)", p, i, got, vals[i], ch.Enc)
				}
			}
			// bounds drawn from the data itself plus outsiders
			bounds := []*value.Value{nil}
			for i := 0; i < len(vals); i += 1 + len(vals)/4 {
				v := vals[i]
				bounds = append(bounds, &v)
			}
			out := value.NewInt(12345)
			bounds = append(bounds, &out)
			for _, lo := range bounds {
				for _, hi := range bounds {
					for _, strict := range []bool{false, true} {
						got, all := ch.RangeSel(lo, hi, strict, strict, nil)
						if all {
							got = got[:0]
							for i := range vals {
								got = append(got, int32(i))
							}
						}
						want := refRangeSel(vals, lo, hi, strict, strict)
						if fmt.Sprint(got) != fmt.Sprint(want) {
							t.Fatalf("%v enc %v: RangeSel(%v,%v,strict=%v) = %v, want %v",
								p, ch.Enc, lo, hi, strict, got, want)
						}
					}
				}
			}
		}
		// zone maps must not depend on the policy
		raw := newColumn("c", append([]value.Value(nil), vals...), PolicyRaw)
		for _, p := range AllPolicies {
			c := newColumn("c", append([]value.Value(nil), vals...), p)
			mn, mx := c.ChunkRange(0)
			rn, rx := raw.ChunkRange(0)
			if !eqValue(mn, rn) || !eqValue(mx, rx) {
				t.Fatalf("%v: zone map [%v,%v] differs from raw [%v,%v]", p, mn, mx, rn, rx)
			}
		}
	})
}
