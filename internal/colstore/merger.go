package colstore

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"htapxplain/internal/value"
)

// DefaultMergeThreshold is the pending-delta size (rows + tombstones,
// across tables) that wakes the background merger between ticks.
const DefaultMergeThreshold = 256

// DefaultMergeInterval is the background merger's tick period: the upper
// bound on how long a small delta lingers before compaction.
const DefaultMergeInterval = 50 * time.Millisecond

// mergerState is the background compaction bookkeeping.
type mergerState struct {
	mu        sync.Mutex
	running   bool
	stop      chan struct{}
	done      chan struct{}
	threshold int

	merges     atomic.Int64 // tables compacted
	rowsMerged atomic.Int64 // rows written into fresh base chunks
}

func (s *Store) mergeThreshold() int {
	s.merger.mu.Lock()
	defer s.merger.mu.Unlock()
	if s.merger.threshold > 0 {
		return s.merger.threshold
	}
	return DefaultMergeThreshold
}

// MergeStats is a snapshot of the background merger's work counters.
type MergeStats struct {
	Merges     int64 `json:"merges"`
	RowsMerged int64 `json:"rows_merged"`
}

// MergeStats returns the compaction counters.
func (s *Store) MergeStats() MergeStats {
	return MergeStats{
		Merges:     s.merger.merges.Load(),
		RowsMerged: s.merger.rowsMerged.Load(),
	}
}

// StartMerger launches the background merger goroutine: it compacts every
// table's delta into fresh base chunks each interval, and immediately when
// the pending delta reaches threshold (<=0 uses the defaults). Callers
// must StopMerger before discarding the store.
func (s *Store) StartMerger(interval time.Duration, threshold int) {
	s.merger.mu.Lock()
	defer s.merger.mu.Unlock()
	if s.merger.running {
		return
	}
	if interval <= 0 {
		interval = DefaultMergeInterval
	}
	s.merger.threshold = threshold
	s.merger.running = true
	s.merger.stop = make(chan struct{})
	s.merger.done = make(chan struct{})
	go s.mergeLoop(interval, s.merger.stop, s.merger.done)
}

// StopMerger stops the background merger and waits for it to exit. The
// final pending delta (if any) is left for explicit MergeAll calls.
func (s *Store) StopMerger() {
	s.merger.mu.Lock()
	if !s.merger.running {
		s.merger.mu.Unlock()
		return
	}
	stop, done := s.merger.stop, s.merger.done
	s.merger.running = false
	s.merger.mu.Unlock()
	close(stop)
	<-done
}

func (s *Store) mergeLoop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		case <-s.repl.notify:
		}
		s.MergeAll()
	}
}

// MergeAll synchronously compacts every table with a pending delta,
// in deterministic (sorted-name) order. Safe to call concurrently with
// replication and reads; tests call it directly for deterministic merge
// points.
func (s *Store) MergeAll() MergeStats {
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var out MergeStats
	for _, n := range names {
		ops, rows := s.tables[n].merge()
		if ops == 0 && rows == 0 {
			continue
		}
		s.repl.pending.Add(-int64(ops))
		s.merger.merges.Add(1)
		s.merger.rowsMerged.Add(int64(rows))
		out.Merges++
		out.RowsMerged += int64(rows)
	}
	return out
}

// merge compacts the table's delta into fresh immutable base chunks:
// surviving base values and delta rows are copied into brand-new columns
// with rebuilt zone maps and freshly chosen per-chunk encodings (the
// merger is the encoding-selection point: post-merge statistics decide
// dictionary/FoR/RLE/raw per chunk, per column under the store's policy),
// and the published columns pointer is swapped. Old columns are never
// touched, so concurrent views (and any execution batches aliasing or
// decoding their chunks) stay valid — the batch contract the immutability
// suite guards.
//
// It returns the number of delta operations compacted and the new base
// row count (0, 0 when there was nothing to do).
func (t *Table) merge() (ops, newN int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.baseDead) == 0 && len(t.delta.rows) == 0 {
		return 0, 0
	}
	// pending accounting: every delta slot (live or tombstoned) and every
	// base tombstone was counted once when applied
	ops = len(t.baseDead) + len(t.delta.rows)
	newN = t.numRows - len(t.baseDead) + t.delta.numLive()

	newCols := make([]*Column, len(t.columns))
	var decodeBuf []value.Value // per-chunk decode scratch, reused across columns
	for ci, old := range t.columns {
		vals := make([]value.Value, 0, newN)
		for k := 0; k < len(old.chunks); k++ {
			// decode chunk-at-a-time (raw chunks alias, encoded ones decode
			// into the scratch), then drop tombstoned positions
			ch := old.chunks[k]
			chunk := ch.Decode(decodeBuf)
			if ch.Enc != EncRaw {
				decodeBuf = chunk
			}
			base := k * ChunkSize
			for i, v := range chunk {
				if t.baseDead[int32(base+i)] {
					continue
				}
				vals = append(vals, v)
			}
		}
		for di, row := range t.delta.rows {
			if !t.delta.dead[di] {
				vals = append(vals, row[ci])
			}
		}
		// re-encode: the merger is where chunk encodings are (re)chosen
		// from fresh post-compaction statistics
		newCols[ci] = newColumn(old.Name, vals, t.policy)
	}

	newRID := make([]int64, 0, newN)
	for pos := 0; pos < t.numRows; pos++ {
		if t.baseDead[int32(pos)] {
			continue
		}
		if t.baseRID != nil {
			newRID = append(newRID, t.baseRID[pos])
		} else {
			newRID = append(newRID, int64(pos))
		}
	}
	for di, rid := range t.delta.rids {
		if !t.delta.dead[di] {
			newRID = append(newRID, rid)
		}
	}
	ridPos := make(map[int64]int32, len(newRID))
	for i, rid := range newRID {
		ridPos[rid] = int32(i)
	}

	t.columns = newCols
	t.numRows = newN
	t.baseRID = newRID
	t.ridPos = ridPos
	t.baseDead = nil
	t.delta = tableDelta{}
	return ops, newN
}
