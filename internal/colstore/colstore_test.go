package colstore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"htapxplain/internal/catalog"
	"htapxplain/internal/value"
)

func tinyCatalog(rows int64) *catalog.Catalog {
	c := catalog.New(1)
	_ = c.AddTable(&catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "k", Type: catalog.TypeInt, NDV: rows},
			{Name: "s", Type: catalog.TypeString, NDV: 10},
			{Name: "f", Type: catalog.TypeFloat, NDV: rows},
		},
		Rows: rows, AvgRowBytes: 48,
	})
	return c
}

func buildStore(t testing.TB, n int, keyOf func(i int) int64) *Table {
	t.Helper()
	rows := make([]value.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = value.Row{
			value.NewInt(keyOf(i)),
			value.NewString("s"),
			value.NewFloat(float64(i) / 2),
		}
	}
	s, err := NewStore(tinyCatalog(int64(n)), map[string][]value.Row{"t": rows})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	tb, _ := s.Table("t")
	return tb
}

func TestScanAllRowsNoPruner(t *testing.T) {
	tb := buildStore(t, 2500, func(i int) int64 { return int64(i) })
	ids, stats := tb.Scan([]int{0}, nil, nil)
	if len(ids) != 2500 {
		t.Fatalf("scan matched %d rows, want 2500", len(ids))
	}
	if stats.RowsVisited != 2500 || stats.ChunksSkipped != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.ChunksTotal != 3 { // ceil(2500/1024)
		t.Errorf("chunks = %d, want 3", stats.ChunksTotal)
	}
}

func TestZoneMapPruningSkipsChunks(t *testing.T) {
	// keys ascending → zone maps are tight ranges, so a narrow range
	// predicate must skip all but one chunk
	tb := buildStore(t, 4096, func(i int) int64 { return int64(i) })
	lo, hi := value.NewInt(3000), value.NewInt(3010)
	pruner := &RangePruner{Col: 0, Lo: &lo, Hi: &hi}
	ids, stats := tb.Scan([]int{0}, pruner, func(id int) bool {
		v := tb.Column(0).Value(id)
		return v.I >= 3000 && v.I <= 3010
	})
	if len(ids) != 11 {
		t.Fatalf("matched %d rows, want 11", len(ids))
	}
	if stats.ChunksSkipped != 3 {
		t.Errorf("skipped %d chunks, want 3 of 4", stats.ChunksSkipped)
	}
	if stats.RowsVisited >= 4096 {
		t.Errorf("visited %d rows — pruning had no effect", stats.RowsVisited)
	}
}

// TestPruningNeverChangesResultsProperty: scanning with a pruner must
// return exactly the same ids as scanning without one.
func TestPruningNeverChangesResultsProperty(t *testing.T) {
	prop := func(seed int64, loRaw, hiRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 512 + rng.Intn(3000)
		tb := buildStore(t, n, func(i int) int64 { return int64(rng.Intn(5000)) })
		lo64, hi64 := int64(loRaw%5000), int64(hiRaw%5000)
		if lo64 > hi64 {
			lo64, hi64 = hi64, lo64
		}
		lo, hi := value.NewInt(lo64), value.NewInt(hi64)
		pred := func(id int) bool {
			v := tb.Column(0).Value(id)
			return v.I >= lo64 && v.I <= hi64
		}
		withPruner, _ := tb.Scan([]int{0}, &RangePruner{Col: 0, Lo: &lo, Hi: &hi}, pred)
		without, _ := tb.Scan([]int{0}, nil, pred)
		if len(withPruner) != len(without) {
			return false
		}
		for i := range withPruner {
			if withPruner[i] != without[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMaterializeSelectsColumns(t *testing.T) {
	tb := buildStore(t, 10, func(i int) int64 { return int64(i * 10) })
	rows := tb.Materialize([]int{2, 5}, []int{0, 2})
	if len(rows) != 2 || len(rows[0]) != 2 {
		t.Fatalf("materialize shape: %v", rows)
	}
	if rows[0][0].I != 20 || rows[1][0].I != 50 {
		t.Errorf("materialized keys: %v", rows)
	}
	if rows[0][1].K != value.KindFloat {
		t.Errorf("second column should be the float column, got %v", rows[0][1].K)
	}
}

func TestColumnByName(t *testing.T) {
	tb := buildStore(t, 5, func(i int) int64 { return int64(i) })
	if c := tb.ColumnByName("f"); c == nil || c.Len() != 5 {
		t.Errorf("ColumnByName(f) = %v", c)
	}
	if c := tb.ColumnByName("nope"); c != nil {
		t.Error("bogus column should be nil")
	}
}

func TestZoneMapBoundsAreTight(t *testing.T) {
	tb := buildStore(t, 2048, func(i int) int64 { return int64(i) })
	col := tb.Column(0)
	if col.NumChunks() != 2 {
		t.Fatalf("chunks = %d", col.NumChunks())
	}
	mn, mx := col.ChunkRange(0)
	if mn.I != 0 || mx.I != 1023 {
		t.Errorf("chunk 0 zone map [%v,%v]", mn, mx)
	}
	mn, mx = col.ChunkRange(1)
	if mn.I != 1024 || mx.I != 2047 {
		t.Errorf("chunk 1 zone map [%v,%v]", mn, mx)
	}
}

func TestScanStatsColumnsRead(t *testing.T) {
	tb := buildStore(t, 100, func(i int) int64 { return int64(i) })
	_, stats := tb.Scan([]int{0, 2}, nil, nil)
	if stats.ColumnsRead != 2 {
		t.Errorf("ColumnsRead = %d", stats.ColumnsRead)
	}
}

func TestNewStoreRequiresAllTables(t *testing.T) {
	if _, err := NewStore(tinyCatalog(1), map[string][]value.Row{}); err == nil {
		t.Error("missing table data should error")
	}
}

func TestEmptyTableScan(t *testing.T) {
	s, err := NewStore(tinyCatalog(0), map[string][]value.Row{"t": {}})
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := s.Table("t")
	ids, stats := tb.Scan([]int{0}, nil, nil)
	if len(ids) != 0 || stats.RowsVisited != 0 {
		t.Errorf("empty scan: ids=%v stats=%+v", ids, stats)
	}
}
