// Lightweight per-chunk column encodings. Every base chunk carries an
// EncodedChunk: a raw value vector, a sorted dictionary with fixed-width
// codes, a frame-of-reference bit-packed integer block, or run-length
// runs. The encoding is chosen per chunk, per column from the chunk's own
// statistics (strictly smallest estimated footprint wins; raw is the
// fallback), so a column freely mixes encodings across chunks.
//
// Encoded chunks obey the same immutability contract as raw chunks: once
// published they are never mutated, and decoding always writes into
// caller-owned buffers — "alias or decode, never mutate". Zone maps are
// built from the raw values before encoding, so pruning is identical on
// every encoding.
//
// Value identity throughout this file is bit-exact (eqValue, not
// value.Compare): ±0.0 are distinct floats and NaN equals itself by bit
// pattern, so round-trips are canonical. Dictionaries additionally demand
// a single value kind with no NULL/NaN/-0.0, which makes value.Compare a
// strict total order over the dictionary — that is what lets range
// predicates binary-search code bounds.
package colstore

import (
	"math"
	"math/bits"
	"sort"

	"htapxplain/internal/value"
)

// Encoding identifies a chunk's physical representation.
type Encoding uint8

const (
	// EncRaw is the identity encoding: the chunk is a plain value vector.
	EncRaw Encoding = iota
	// EncDict is dictionary encoding: a sorted, duplicate-free dictionary
	// of distinct values plus one fixed-width code per row.
	EncDict
	// EncFoR is frame-of-reference encoding for all-integer chunks: each
	// value is stored as a bit-packed unsigned delta from the chunk
	// minimum.
	EncFoR
	// EncRLE is run-length encoding: consecutive bit-identical values
	// collapse into (value, run end) pairs.
	EncRLE

	numEncodings = 4
)

// NumEncodings is the number of distinct chunk encodings (including raw),
// for per-encoding accounting arrays.
const NumEncodings = numEncodings

func (e Encoding) String() string {
	switch e {
	case EncRaw:
		return "raw"
	case EncDict:
		return "dict"
	case EncFoR:
		return "for"
	case EncRLE:
		return "rle"
	default:
		return "unknown"
	}
}

// EncodingPolicy controls how chunk encodings are chosen. The zero value
// (PolicyAuto) picks the smallest eligible representation per chunk; the
// forced policies exist for differential testing and benchmarking and
// fall back to raw where the forced encoding is ineligible.
type EncodingPolicy uint8

const (
	// PolicyAuto picks the strictly smallest eligible encoding per chunk.
	PolicyAuto EncodingPolicy = iota
	// PolicyRaw disables encoding: every chunk stays a raw vector.
	PolicyRaw
	// PolicyDict forces dictionary encoding where eligible.
	PolicyDict
	// PolicyFoR forces frame-of-reference encoding where eligible.
	PolicyFoR
	// PolicyRLE forces run-length encoding.
	PolicyRLE
)

func (p EncodingPolicy) String() string {
	switch p {
	case PolicyAuto:
		return "auto"
	case PolicyRaw:
		return "raw"
	case PolicyDict:
		return "dict"
	case PolicyFoR:
		return "for"
	case PolicyRLE:
		return "rle"
	default:
		return "unknown"
	}
}

// AllPolicies lists every encoding policy, for differential tests and
// benchmarks that sweep the encoding space.
var AllPolicies = []EncodingPolicy{PolicyAuto, PolicyRaw, PolicyDict, PolicyFoR, PolicyRLE}

// valueHeaderBytes is the in-memory footprint of one value.Value (tag +
// int64 + float64 + string header on 64-bit), excluding string payloads.
const valueHeaderBytes = 40

// maxDictSize bounds the dictionary: chunks with more distinct values
// rarely compress through a dictionary, and a small bound keeps the
// per-chunk kernel scratch (code counts, per-code group states) tiny.
const maxDictSize = 256

// EncodedChunk is one immutable encoded column chunk. Exactly the fields
// of the active Enc are populated; the rest stay nil/zero.
type EncodedChunk struct {
	Enc Encoding
	N   int // rows in the chunk

	// EncRaw: the plain value vector (aliases the column's vals slice
	// when the whole column is raw, a private copy otherwise).
	Raw []value.Value

	// EncDict: Dict is sorted ascending by value.Compare, duplicate-free,
	// single-kind, NULL/NaN/-0.0-free; Codes[i] indexes Dict.
	Dict  []value.Value
	Codes []uint16

	// EncFoR: row i decodes to Base + int64(packed delta). Width is the
	// delta bit width (0 = constant chunk). Deltas are computed in uint64
	// so chunks spanning more than half the int64 range still round-trip.
	Base   int64
	Width  uint8
	Packed []uint64

	// EncRLE: run j covers rows [RunEnds[j-1], RunEnds[j]) with value
	// RunVals[j]; RunEnds is strictly increasing and ends at N.
	RunVals []value.Value
	RunEnds []int32

	// RawBytes is the chunk's footprint as a raw vector; EncBytes is its
	// footprint in the chosen representation (== RawBytes for EncRaw).
	RawBytes int64
	EncBytes int64
}

// eqValue reports bit-exact value identity: kinds equal and payloads
// identical, with floats compared by bit pattern (so NaN == NaN and
// 0.0 != -0.0). This is the run/dictionary identity — stricter than SQL
// equality and independent of value.Compare's numeric coercions.
func eqValue(a, b value.Value) bool {
	return a.K == b.K && a.I == b.I && a.S == b.S &&
		math.Float64bits(a.F) == math.Float64bits(b.F)
}

// valBytes is the modeled footprint of one value.
func valBytes(v value.Value) int64 {
	return valueHeaderBytes + int64(len(v.S))
}

// chunkStats is one analysis pass over a chunk's values.
type chunkStats struct {
	rawBytes int64
	runs     int
	runBytes int64 // Σ valBytes over run heads
	allInt   bool
	dictOK   bool // single kind, no NULL/NaN/-0.0
	minI     int64
	maxI     int64
}

func analyzeChunk(vals []value.Value) chunkStats {
	st := chunkStats{allInt: true, dictOK: true}
	for i, v := range vals {
		st.rawBytes += valBytes(v)
		if i == 0 || !eqValue(v, vals[i-1]) {
			st.runs++
			st.runBytes += valBytes(v)
		}
		if v.K != vals[0].K {
			st.dictOK = false
		}
		switch v.K {
		case value.KindInt:
			if i == 0 || v.I < st.minI {
				st.minI = v.I
			}
			if i == 0 || v.I > st.maxI {
				st.maxI = v.I
			}
		case value.KindFloat:
			st.allInt = false
			if math.IsNaN(v.F) || (v.F == 0 && math.Signbit(v.F)) {
				st.dictOK = false
			}
		default:
			st.allInt = false
			if v.K == value.KindNull {
				st.dictOK = false
			}
		}
	}
	if len(vals) == 0 {
		st.allInt = false
		st.dictOK = false
	}
	return st
}

// forWidth returns the delta bit width of an all-int chunk with the given
// min/max. The delta is computed in uint64, so any int64 span fits.
func forWidth(minI, maxI int64) uint8 {
	return uint8(bits.Len64(uint64(maxI) - uint64(minI)))
}

func forBytes(n int, width uint8) int64 {
	words := (n*int(width) + 63) / 64
	return 16 + int64(words)*8 // base + width header, then packed words
}

// buildDict collects the chunk's distinct values if there are at most
// maxDictSize of them, sorted ascending by value.Compare. Callers have
// established dictOK (single kind, no NULL/NaN/-0.0), which makes Compare
// a strict total order here. Returns nil when the chunk exceeds the bound.
func buildDict(vals []value.Value) []value.Value {
	seen := make(map[value.Value]struct{}, maxDictSize+1)
	dict := make([]value.Value, 0, maxDictSize)
	for _, v := range vals {
		if _, ok := seen[v]; ok {
			continue
		}
		if len(dict) == maxDictSize {
			return nil
		}
		seen[v] = struct{}{}
		dict = append(dict, v)
	}
	sort.Slice(dict, func(i, j int) bool { return dict[i].Compare(dict[j]) < 0 })
	return dict
}

func dictBytes(dict []value.Value, n int) int64 {
	var b int64
	for _, v := range dict {
		b += valBytes(v)
	}
	return b + 2*int64(n)
}

// encodeChunk builds the chunk representation the policy selects for the
// given values. The returned chunk's Raw field aliases vals when raw wins;
// callers that need the big backing array freed copy it out themselves.
func encodeChunk(vals []value.Value, policy EncodingPolicy) *EncodedChunk {
	n := len(vals)
	st := analyzeChunk(vals)
	ch := &EncodedChunk{Enc: EncRaw, N: n, Raw: vals, RawBytes: st.rawBytes, EncBytes: st.rawBytes}
	if policy == PolicyRaw || n == 0 {
		return ch
	}

	var dict []value.Value
	dictB := int64(math.MaxInt64)
	if st.dictOK && (policy == PolicyAuto || policy == PolicyDict) {
		if dict = buildDict(vals); dict != nil {
			dictB = dictBytes(dict, n)
		}
	}
	forB := int64(math.MaxInt64)
	var width uint8
	if st.allInt && (policy == PolicyAuto || policy == PolicyFoR) {
		width = forWidth(st.minI, st.maxI)
		forB = forBytes(n, width)
	}
	rleB := st.runBytes + 4*int64(st.runs)

	switch policy {
	case PolicyDict:
		if dict == nil {
			return ch
		}
		return encodeDict(ch, vals, dict, dictB)
	case PolicyFoR:
		if !st.allInt {
			return ch
		}
		return encodeFoR(ch, vals, st.minI, width, forB)
	case PolicyRLE:
		return encodeRLE(ch, vals, st.runs, rleB)
	}
	// PolicyAuto: strictly smallest wins, raw on ties.
	best := st.rawBytes
	enc := EncRaw
	for _, c := range []struct {
		e Encoding
		b int64
	}{{EncDict, dictB}, {EncFoR, forB}, {EncRLE, rleB}} {
		if c.b < best {
			best, enc = c.b, c.e
		}
	}
	switch enc {
	case EncDict:
		return encodeDict(ch, vals, dict, dictB)
	case EncFoR:
		return encodeFoR(ch, vals, st.minI, width, forB)
	case EncRLE:
		return encodeRLE(ch, vals, st.runs, rleB)
	}
	return ch
}

func encodeDict(ch *EncodedChunk, vals, dict []value.Value, encB int64) *EncodedChunk {
	codeOf := make(map[value.Value]uint16, len(dict))
	for i, v := range dict {
		codeOf[v] = uint16(i)
	}
	codes := make([]uint16, len(vals))
	for i, v := range vals {
		codes[i] = codeOf[v]
	}
	ch.Enc, ch.Raw = EncDict, nil
	ch.Dict, ch.Codes = dict, codes
	ch.EncBytes = encB
	return ch
}

func encodeFoR(ch *EncodedChunk, vals []value.Value, base int64, width uint8, encB int64) *EncodedChunk {
	n := len(vals)
	packed := make([]uint64, (n*int(width)+63)/64)
	if width > 0 {
		for i, v := range vals {
			d := uint64(v.I) - uint64(base)
			bit := i * int(width)
			word, off := bit>>6, uint(bit&63)
			packed[word] |= d << off
			if off+uint(width) > 64 {
				packed[word+1] |= d >> (64 - off)
			}
		}
	}
	ch.Enc, ch.Raw = EncFoR, nil
	ch.Base, ch.Width, ch.Packed = base, width, packed
	ch.EncBytes = encB
	return ch
}

func encodeRLE(ch *EncodedChunk, vals []value.Value, runs int, encB int64) *EncodedChunk {
	runVals := make([]value.Value, 0, runs)
	runEnds := make([]int32, 0, runs)
	for i, v := range vals {
		if i == 0 || !eqValue(v, vals[i-1]) {
			runVals = append(runVals, v)
			runEnds = append(runEnds, int32(i)) // patched to end below
		}
	}
	for j := 1; j < len(runEnds); j++ {
		runEnds[j-1] = runEnds[j]
	}
	if len(runEnds) > 0 {
		runEnds[len(runEnds)-1] = int32(len(vals))
	}
	ch.Enc, ch.Raw = EncRLE, nil
	ch.RunVals, ch.RunEnds = runVals, runEnds
	ch.EncBytes = encB
	return ch
}

// forAt unpacks the i-th delta of a FoR chunk.
func (c *EncodedChunk) forAt(i int) int64 {
	w := uint(c.Width)
	if w == 0 {
		return c.Base
	}
	bit := i * int(w)
	word, off := bit>>6, uint(bit&63)
	x := c.Packed[word] >> off
	if off+w > 64 {
		x |= c.Packed[word+1] << (64 - off)
	}
	if w < 64 {
		x &= (1 << w) - 1
	}
	return c.Base + int64(x)
}

// IntAt unpacks the integer at row i of a FoR chunk without building a
// Value — the accessor integer kernels iterate with.
func (c *EncodedChunk) IntAt(i int) int64 { return c.forAt(i) }

// rleRunAt returns the index of the run containing row i.
func (c *EncodedChunk) rleRunAt(i int) int {
	return sort.Search(len(c.RunEnds), func(j int) bool { return c.RunEnds[j] > int32(i) })
}

// ValueAt decodes the single value at row i of the chunk.
func (c *EncodedChunk) ValueAt(i int) value.Value {
	switch c.Enc {
	case EncRaw:
		return c.Raw[i]
	case EncDict:
		return c.Dict[c.Codes[i]]
	case EncFoR:
		return value.NewInt(c.forAt(i))
	case EncRLE:
		return c.RunVals[c.rleRunAt(i)]
	}
	panic("colstore: unknown chunk encoding")
}

// Decode materializes the whole chunk into dst (grown as needed) and
// returns dst[:N]. The result never aliases storage for encoded chunks;
// for raw chunks it aliases the stored vector (callers own dst, so a raw
// alias is safe to hand out — raw vectors are immutable).
func (c *EncodedChunk) Decode(dst []value.Value) []value.Value {
	if c.Enc == EncRaw {
		return c.Raw
	}
	if cap(dst) < c.N {
		dst = make([]value.Value, c.N)
	}
	dst = dst[:c.N]
	switch c.Enc {
	case EncDict:
		for i, code := range c.Codes {
			dst[i] = c.Dict[code]
		}
	case EncFoR:
		for i := 0; i < c.N; i++ {
			dst[i] = value.NewInt(c.forAt(i))
		}
	case EncRLE:
		pos := 0
		for j, v := range c.RunVals {
			end := int(c.RunEnds[j])
			for ; pos < end; pos++ {
				dst[pos] = v
			}
		}
	}
	return dst
}

// DecodeSel decodes only the rows listed in sel (ascending chunk-local
// positions) into their positions of dst, which must be at least N long.
// Unselected positions of dst are left untouched.
func (c *EncodedChunk) DecodeSel(dst []value.Value, sel []int32) {
	switch c.Enc {
	case EncRaw:
		for _, i := range sel {
			dst[i] = c.Raw[i]
		}
	case EncDict:
		for _, i := range sel {
			dst[i] = c.Dict[c.Codes[i]]
		}
	case EncFoR:
		for _, i := range sel {
			dst[i] = value.NewInt(c.forAt(int(i)))
		}
	case EncRLE:
		run := 0
		for _, i := range sel {
			for c.RunEnds[run] <= i {
				run++
			}
			dst[i] = c.RunVals[run]
		}
	}
}

// matchRange reports whether v satisfies the range predicate: NULL never
// matches; bounds compare via value.Compare (exactly the semantics of the
// compiled comparison evaluators), strict bounds exclude equality.
func matchRange(v value.Value, lo, hi *value.Value, loStrict, hiStrict bool) bool {
	if v.IsNull() {
		return false
	}
	if lo != nil {
		c := v.Compare(*lo)
		if c < 0 || (c == 0 && loStrict) {
			return false
		}
	}
	if hi != nil {
		c := v.Compare(*hi)
		if c > 0 || (c == 0 && hiStrict) {
			return false
		}
	}
	return true
}

// RangeSel evaluates the range predicate [lo, hi] (nil bounds open,
// strict flags excluding equality, NULLs never matching — bit-compatible
// with the compiled comparison evaluators) over the chunk in its encoded
// domain, appending matching chunk-local positions to sel. The second
// return is true when every row matched — callers can then keep a nil
// selection vector. Dictionary chunks binary-search code bounds; FoR
// chunks compare unpacked integers against an integer window; RLE chunks
// evaluate once per run.
func (c *EncodedChunk) RangeSel(lo, hi *value.Value, loStrict, hiStrict bool, sel []int32) ([]int32, bool) {
	sel = sel[:0]
	if (lo != nil && lo.IsNull()) || (hi != nil && hi.IsNull()) {
		// a NULL bound matches nothing: compiled comparisons short-circuit
		// NULL operands before ever comparing
		return sel, false
	}
	if lo == nil && hi == nil {
		// no bounds: everything but NULLs matches; scan only encodings
		// that can hold NULLs
		switch c.Enc {
		case EncDict, EncFoR:
			return sel, true
		}
	}
	switch c.Enc {
	case EncRaw:
		for i, v := range c.Raw {
			if matchRange(v, lo, hi, loStrict, hiStrict) {
				sel = append(sel, int32(i))
			}
		}
	case EncDict:
		// the dictionary is Compare-sorted and single-kind, so the
		// matching values form one contiguous code interval [cLo, cHi)
		cLo, cHi := 0, len(c.Dict)
		if lo != nil {
			cLo = sort.Search(len(c.Dict), func(i int) bool {
				cmp := c.Dict[i].Compare(*lo)
				return cmp > 0 || (cmp == 0 && !loStrict)
			})
		}
		if hi != nil {
			cHi = sort.Search(len(c.Dict), func(i int) bool {
				cmp := c.Dict[i].Compare(*hi)
				return cmp > 0 || (cmp == 0 && hiStrict)
			})
		}
		if cLo >= cHi {
			return sel, false
		}
		if cLo == 0 && cHi == len(c.Dict) {
			return sel, true
		}
		lc, hc := uint16(cLo), uint16(cHi)
		for i, code := range c.Codes {
			if code >= lc && code < hc {
				sel = append(sel, int32(i))
			}
		}
	case EncFoR:
		loI, hiI, ok := intWindow(lo, hi, loStrict, hiStrict)
		if !ok {
			return sel, false
		}
		for i := 0; i < c.N; i++ {
			if v := c.forAt(i); v >= loI && v <= hiI {
				sel = append(sel, int32(i))
			}
		}
	case EncRLE:
		pos := 0
		for j, v := range c.RunVals {
			end := int(c.RunEnds[j])
			if matchRange(v, lo, hi, loStrict, hiStrict) {
				for ; pos < end; pos++ {
					sel = append(sel, int32(pos))
				}
			} else {
				pos = end
			}
		}
	}
	return sel, len(sel) == c.N
}

// intWindow converts value-domain range bounds into a closed int64 window
// [loI, hiI] equivalent for integer values under value.Compare semantics.
// ok=false means no integer can match. Non-numeric bounds use Compare's
// kind order (integers sort before strings/bools), and NaN bounds follow
// Compare's "NaN compares equal to everything numeric" behavior.
func intWindow(lo, hi *value.Value, loStrict, hiStrict bool) (int64, int64, bool) {
	loI, hiI := int64(math.MinInt64), int64(math.MaxInt64)
	if lo != nil {
		b, ok := intLowerBound(*lo, loStrict)
		if !ok {
			return 0, 0, false
		}
		loI = b
	}
	if hi != nil {
		b, ok := intUpperBound(*hi, hiStrict)
		if !ok {
			return 0, 0, false
		}
		hiI = b
	}
	return loI, hiI, loI <= hiI
}

// intLowerBound returns the smallest int64 v with v > b (strict) or
// v >= b under value.Compare.
func intLowerBound(b value.Value, strict bool) (int64, bool) {
	switch b.K {
	case value.KindInt:
		if strict {
			if b.I == math.MaxInt64 {
				return 0, false
			}
			return b.I + 1, true
		}
		return b.I, true
	case value.KindFloat:
		f := b.F
		if math.IsNaN(f) {
			// Compare(int, NaN) == 0: non-strict matches everything,
			// strict matches nothing
			if strict {
				return 0, false
			}
			return math.MinInt64, true
		}
		if f >= math.MaxInt64 { // 2^63 and beyond: no int64 exceeds it
			return 0, false
		}
		if f < math.MinInt64 {
			return math.MinInt64, true
		}
		c := math.Ceil(f)
		i := int64(c)
		if strict && c == f { // integral bound, exclusive
			if i == math.MaxInt64 {
				return 0, false
			}
			return i + 1, true
		}
		return i, true
	default:
		// NULL never reaches here (pruner bounds are literals); strings
		// and bools sort after every integer, so no integer exceeds them
		return 0, false
	}
}

// intUpperBound returns the largest int64 v with v < b (strict) or
// v <= b under value.Compare.
func intUpperBound(b value.Value, strict bool) (int64, bool) {
	switch b.K {
	case value.KindInt:
		if strict {
			if b.I == math.MinInt64 {
				return 0, false
			}
			return b.I - 1, true
		}
		return b.I, true
	case value.KindFloat:
		f := b.F
		if math.IsNaN(f) {
			if strict {
				return 0, false
			}
			return math.MaxInt64, true
		}
		if f >= math.MaxInt64 {
			return math.MaxInt64, true
		}
		if f < math.MinInt64 {
			return 0, false
		}
		fl := math.Floor(f)
		i := int64(fl)
		if strict && fl == f {
			if i == math.MinInt64 {
				return 0, false
			}
			return i - 1, true
		}
		return i, true
	default:
		// strings and bools sort after every integer: all integers match
		return math.MaxInt64, true
	}
}
