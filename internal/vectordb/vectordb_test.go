package vectordb

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestAddAndExactSearch(t *testing.T) {
	s := New(2, L2)
	ids := make([]int, 3)
	for i, v := range [][]float64{{0, 0}, {1, 0}, {5, 5}} {
		id, err := s.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	hits, err := s.Search([]float64{0.9, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0].ID != ids[1] || hits[1].ID != ids[0] {
		t.Errorf("hits = %+v", hits)
	}
	if s.Len() != 3 || s.Dim() != 2 {
		t.Errorf("Len/Dim = %d/%d", s.Len(), s.Dim())
	}
}

func TestDimensionMismatchErrors(t *testing.T) {
	s := New(3, Cosine)
	if _, err := s.Add([]float64{1, 2}); err == nil {
		t.Error("Add with wrong dim should fail")
	}
	if _, err := s.Search([]float64{1}, 1); err == nil {
		t.Error("Search with wrong dim should fail")
	}
	if _, err := s.SearchHNSW([]float64{1}, 1); err == nil {
		t.Error("SearchHNSW with wrong dim should fail")
	}
}

func TestSearchHNSWRequiresBuild(t *testing.T) {
	s := New(2, L2)
	if _, err := s.Add([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SearchHNSW([]float64{1, 1}, 1); err == nil {
		t.Error("SearchHNSW before BuildHNSW should fail")
	}
}

func TestDeleteTombstones(t *testing.T) {
	s := New(1, L2)
	id0, _ := s.Add([]float64{0})
	id1, _ := s.Add([]float64{1})
	if err := s.Delete(id0); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(id0); err == nil {
		t.Error("double delete should fail")
	}
	if err := s.Delete(999); err == nil {
		t.Error("deleting unknown id should fail")
	}
	hits, _ := s.Search([]float64{0}, 5)
	if len(hits) != 1 || hits[0].ID != id1 {
		t.Errorf("deleted vector still returned: %+v", hits)
	}
	if s.Len() != 1 {
		t.Errorf("Len after delete = %d", s.Len())
	}
}

// TestExactSearchIsTrueKNNProperty: the store's exact search must agree
// with a brute-force recomputation.
func TestExactSearchIsTrueKNNProperty(t *testing.T) {
	prop := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(8)
		n := 1 + rng.Intn(60)
		s := New(dim, L2)
		vecs := make([][]float64, n)
		for i := range vecs {
			vecs[i] = randVec(rng, dim)
			if _, err := s.Add(vecs[i]); err != nil {
				return false
			}
		}
		q := randVec(rng, dim)
		k := 1 + int(kRaw)%10
		hits, err := s.Search(q, k)
		if err != nil {
			return false
		}
		type pair struct {
			id int
			d  float64
		}
		want := make([]pair, n)
		for i, v := range vecs {
			want[i] = pair{i, L2.Distance(q, v)}
		}
		sort.Slice(want, func(a, b int) bool {
			if want[a].d != want[b].d {
				return want[a].d < want[b].d
			}
			return want[a].id < want[b].id
		})
		if k > n {
			k = n
		}
		if len(hits) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if hits[i].ID != want[i].id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHNSWRecallOnClusteredData(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const dim, n = 8, 600
	s := New(dim, Cosine)
	centers := make([][]float64, 6)
	for i := range centers {
		centers[i] = randVec(rng, dim)
	}
	for i := 0; i < n; i++ {
		c := centers[i%len(centers)]
		v := make([]float64, dim)
		for d := range v {
			v[d] = c[d] + 0.05*rng.NormFloat64()
		}
		if _, err := s.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	s.BuildHNSW(12, 64, 3)
	found, total := 0, 0
	for q := 0; q < 40; q++ {
		query := randVec(rng, dim)
		exact, err := s.Search(query, 3)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := s.SearchHNSW(query, 3)
		if err != nil {
			t.Fatal(err)
		}
		truth := map[int]bool{}
		for _, h := range exact {
			truth[h.ID] = true
		}
		for _, h := range approx {
			total++
			if truth[h.ID] {
				found++
			}
		}
	}
	recall := float64(found) / float64(total)
	if recall < 0.85 {
		t.Errorf("HNSW recall@3 = %.2f, want >= 0.85", recall)
	}
}

func TestHNSWIncrementalInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := New(4, L2)
	for i := 0; i < 50; i++ {
		if _, err := s.Add(randVec(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	s.BuildHNSW(8, 32, 1)
	// vectors added after the build must be findable
	target := []float64{100, 100, 100, 100}
	id, err := s.Add(target)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := s.SearchHNSW(target, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].ID != id {
		t.Errorf("incrementally inserted vector not found: %+v", hits)
	}
}

func TestMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range []Metric{Cosine, L2} {
		for trial := 0; trial < 50; trial++ {
			a, b := randVec(rng, 5), randVec(rng, 5)
			dab, dba := m.Distance(a, b), m.Distance(b, a)
			if math.Abs(dab-dba) > 1e-12 {
				t.Fatalf("%v not symmetric: %v vs %v", m, dab, dba)
			}
			if dab < 0 {
				t.Fatalf("%v negative distance %v", m, dab)
			}
			if self := m.Distance(a, a); self > 1e-9 {
				t.Fatalf("%v self-distance %v", m, self)
			}
		}
	}
	if Cosine.String() != "cosine" || L2.String() != "l2" {
		t.Error("metric names wrong")
	}
}

func TestCosineZeroVector(t *testing.T) {
	d := Cosine.Distance([]float64{0, 0}, []float64{1, 0})
	if d != 1 {
		t.Errorf("cosine distance with zero vector = %v, want 1", d)
	}
}

func TestSearchDeterministicTieBreak(t *testing.T) {
	s := New(1, L2)
	for i := 0; i < 5; i++ {
		if _, err := s.Add([]float64{1}); err != nil { // all identical
			t.Fatal(err)
		}
	}
	h1, _ := s.Search([]float64{1}, 3)
	h2, _ := s.Search([]float64{1}, 3)
	for i := range h1 {
		if h1[i].ID != h2[i].ID {
			t.Fatal("tie-break not deterministic")
		}
	}
	// ties resolve by ascending ID
	if h1[0].ID != 0 || h1[1].ID != 1 {
		t.Errorf("tie order: %+v", h1)
	}
}
