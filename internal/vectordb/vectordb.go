// Package vectordb implements the RAG knowledge base's vector store: a
// key-value store whose keys are plan-pair embeddings. Search supports
// exact (linear) k-nearest-neighbour and an HNSW index (Malkov &
// Yashunin, cited by the paper for KB scaling). Distances are cosine or
// Euclidean. Entries carry opaque payload IDs; the knowledge package maps
// them to full entries.
//
// Concurrency model: the store's authoritative state is guarded by a
// mutex, which is all the exact linear path ever needs. Once BuildHNSW
// has been called the store additionally publishes an immutable View —
// vectors, IDs, tombstones and the HNSW graph as of one point in time —
// through an atomic pointer. Writers (Add/Delete, serialized by the
// mutex) never mutate a published view: they clone the affected
// structures, apply the change, and publish a fresh view, so index
// searches are wait-free reads with no lock at all. The vector and ID
// slices are append-only and shared across views (an older view's
// shorter length never reaches the newer elements); tombstone maps and
// HNSW adjacency are cloned on write.
package vectordb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// Metric selects the distance function.
type Metric int

const (
	// Cosine distance: 1 - cosine similarity.
	Cosine Metric = iota
	// L2 is squared Euclidean distance.
	L2
)

func (m Metric) String() string {
	if m == Cosine {
		return "cosine"
	}
	return "l2"
}

// Distance computes the metric between two vectors.
func (m Metric) Distance(a, b []float64) float64 {
	switch m {
	case Cosine:
		var dot, na, nb float64
		for i := range a {
			dot += a[i] * b[i]
			na += a[i] * a[i]
			nb += b[i] * b[i]
		}
		if na == 0 || nb == 0 {
			return 1
		}
		return 1 - dot/math.Sqrt(na*nb)
	default:
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return s
	}
}

// Hit is one search result.
type Hit struct {
	ID       int
	Distance float64
}

// Store is the vector store. It is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	dim    int
	metric Metric
	vecs   [][]float64
	ids    []int
	dead   map[int]bool // tombstoned IDs (expired knowledge); replaced, never mutated, once a view is live
	nextID int

	view atomic.Pointer[View] // nil until BuildHNSW
}

// New creates a store for vectors of the given dimension.
func New(dim int, metric Metric) *Store {
	return &Store{dim: dim, metric: metric, dead: map[int]bool{}}
}

// Dim returns the vector dimension.
func (s *Store) Dim() int { return s.dim }

// Len returns the number of live vectors.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.ids) - len(s.dead)
}

// Add inserts a vector and returns its ID.
func (s *Store) Add(vec []float64) (int, error) {
	if len(vec) != s.dim {
		return 0, fmt.Errorf("vectordb: dimension mismatch: got %d, want %d", len(vec), s.dim)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	cp := make([]float64, len(vec))
	copy(cp, vec)
	s.vecs = append(s.vecs, cp)
	s.ids = append(s.ids, id)
	if v := s.view.Load(); v != nil {
		// copy-on-write index maintenance: clone the adjacency maps, insert
		// into the clone against the grown vector slice, publish. Concurrent
		// searches keep using the old view untouched.
		h := v.hnsw.clone()
		h.vecs = s.vecs
		h.insert(len(s.vecs) - 1)
		s.publishLocked(h)
	}
	return id, nil
}

// Delete tombstones an ID (used for knowledge expiry).
func (s *Store) Delete(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= s.nextID || s.dead[id] {
		return fmt.Errorf("vectordb: no such id %d", id)
	}
	// replace rather than mutate: a published view shares this map
	nd := make(map[int]bool, len(s.dead)+1)
	for k := range s.dead {
		nd[k] = true
	}
	nd[id] = true
	s.dead = nd
	if v := s.view.Load(); v != nil {
		s.publishLocked(v.hnsw)
	}
	return nil
}

// Search returns the k nearest live vectors to q (exact linear scan).
func (s *Store) Search(q []float64, k int) ([]Hit, error) {
	if len(q) != s.dim {
		return nil, fmt.Errorf("vectordb: dimension mismatch: got %d, want %d", len(q), s.dim)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return linearSearch(s.metric, s.vecs, s.ids, s.dead, q, k), nil
}

// SearchHNSW returns approximate k nearest neighbours through the HNSW
// index (BuildHNSW must have been called). The search runs against the
// current immutable view — no lock is taken.
func (s *Store) SearchHNSW(q []float64, k int) ([]Hit, error) {
	v := s.view.Load()
	if v == nil {
		return nil, fmt.Errorf("vectordb: HNSW index not built")
	}
	return v.SearchHNSW(q, k)
}

// BuildHNSW constructs the HNSW graph over current contents and publishes
// the first view; subsequent Adds are inserted incrementally (each
// publishing a fresh view). Calling it again rebuilds the graph from
// scratch, which drops tombstoned vectors' influence on the topology.
func (s *Store) BuildHNSW(m, efConstruction int, seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := newHNSW(s.metric, m, efConstruction, seed)
	h.vecs = s.vecs
	for i := range s.vecs {
		h.insert(i)
	}
	s.publishLocked(h)
}

// Snapshot returns the current immutable view, or nil when BuildHNSW has
// not been called. Callers may search it lock-free for as long as they
// hold it; it never changes.
func (s *Store) Snapshot() *View {
	return s.view.Load()
}

// publishLocked publishes a view of the current state with the given
// graph. Caller holds s.mu.
func (s *Store) publishLocked(h *hnswIndex) {
	s.view.Store(&View{
		dim:    s.dim,
		metric: s.metric,
		vecs:   s.vecs,
		ids:    s.ids,
		dead:   s.dead,
		hnsw:   h,
	})
}

// ---------------------------------------------------------------- views

// View is an immutable point-in-time snapshot of the store: its vectors,
// IDs, tombstones and HNSW graph. All methods are safe for unlimited
// concurrent use with no synchronization — nothing a view references is
// ever mutated after publication.
type View struct {
	dim    int
	metric Metric
	vecs   [][]float64
	ids    []int
	dead   map[int]bool
	hnsw   *hnswIndex
}

// Len returns the number of live vectors in the view.
func (v *View) Len() int { return len(v.ids) - len(v.dead) }

// Search returns the k nearest live vectors to q (exact linear scan over
// the snapshot).
func (v *View) Search(q []float64, k int) ([]Hit, error) {
	if len(q) != v.dim {
		return nil, fmt.Errorf("vectordb: dimension mismatch: got %d, want %d", len(q), v.dim)
	}
	return linearSearch(v.metric, v.vecs, v.ids, v.dead, q, k), nil
}

// SearchHNSW returns approximate k nearest live neighbours through the
// snapshot's HNSW graph. Tombstones are filtered before truncating to k,
// so a burst of expiries (dead nodes still in the graph until the next
// rebuild) shrinks recall gracefully instead of emptying results.
func (v *View) SearchHNSW(q []float64, k int) ([]Hit, error) {
	if len(q) != v.dim {
		return nil, fmt.Errorf("vectordb: dimension mismatch: got %d, want %d", len(q), v.dim)
	}
	idxHits := v.hnsw.search(q, k)
	out := make([]Hit, 0, k)
	for _, h := range idxHits {
		id := v.ids[h.idx]
		if v.dead[id] {
			continue
		}
		out = append(out, Hit{ID: id, Distance: h.dist})
		if len(out) == k {
			break
		}
	}
	return out, nil
}

// linearSearch is the exact scan shared by Store.Search and View.Search.
func linearSearch(metric Metric, vecs [][]float64, ids []int, dead map[int]bool, q []float64, k int) []Hit {
	hits := make([]Hit, 0, len(vecs))
	for i, v := range vecs {
		id := ids[i]
		if dead[id] {
			continue
		}
		hits = append(hits, Hit{ID: id, Distance: metric.Distance(q, v)})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Distance != hits[j].Distance {
			return hits[i].Distance < hits[j].Distance
		}
		return hits[i].ID < hits[j].ID
	})
	if k < len(hits) {
		hits = hits[:k]
	}
	return hits
}

// ---------------------------------------------------------------- HNSW

type idxHit struct {
	idx  int
	dist float64
}

// hnswIndex is a hierarchical navigable small-world graph over a vector
// slice (indices, not IDs). A published index is immutable; writers work
// on clones. The copy-on-write contract: adjacency maps are cloned per
// write, and the neighbor slices inside them are treated as immutable —
// every update builds a fresh slice (see insert/prune) so a clone can
// share them with the index it was cloned from.
type hnswIndex struct {
	vecs     [][]float64
	metric   Metric
	m        int // max neighbours per layer
	efCons   int
	levelMul float64
	rng      *rand.Rand // shared across clones; only ever used by the (mutex-serialized) writer
	// neighbors[level][idx] → neighbor indices
	neighbors []map[int][]int
	entry     int
	maxLevel  int
	size      int
}

func newHNSW(metric Metric, m, efConstruction int, seed int64) *hnswIndex {
	if m < 2 {
		m = 8
	}
	if efConstruction < m {
		efConstruction = 4 * m
	}
	return &hnswIndex{
		metric: metric, m: m, efCons: efConstruction,
		levelMul: 1.0 / math.Log(float64(m)),
		rng:      rand.New(rand.NewSource(seed)),
		entry:    -1,
	}
}

// clone shallow-copies the index for a copy-on-write insert: fresh
// adjacency maps per level, shared (immutable) neighbor slices.
func (h *hnswIndex) clone() *hnswIndex {
	cp := *h
	cp.neighbors = make([]map[int][]int, len(h.neighbors))
	for l, mp := range h.neighbors {
		nm := make(map[int][]int, len(mp)+1)
		for idx, nbs := range mp {
			nm[idx] = nbs
		}
		cp.neighbors[l] = nm
	}
	return &cp
}

func (h *hnswIndex) dist(q []float64, idx int) float64 {
	return h.metric.Distance(q, h.vecs[idx])
}

func (h *hnswIndex) randomLevel() int {
	return int(-math.Log(math.Max(h.rng.Float64(), 1e-12)) * h.levelMul)
}

func (h *hnswIndex) insert(idx int) {
	level := h.randomLevel()
	for len(h.neighbors) <= level {
		h.neighbors = append(h.neighbors, map[int][]int{})
	}
	if h.entry < 0 {
		h.entry = idx
		h.maxLevel = level
		for l := 0; l <= level; l++ {
			h.neighbors[l][idx] = nil
		}
		h.size++
		return
	}
	q := h.vecs[idx]
	cur := h.entry
	// greedy descent on upper layers
	for l := h.maxLevel; l > level; l-- {
		cur = h.greedy(q, cur, l)
	}
	// connect on layers min(level, maxLevel) .. 0
	top := level
	if top > h.maxLevel {
		top = h.maxLevel
	}
	for l := top; l >= 0; l-- {
		cands := h.searchLayer(q, cur, h.efCons, l)
		sel := h.selectNearest(cands, h.m)
		h.neighbors[l][idx] = append([]int{}, sel...)
		for _, nb := range sel {
			// copy-append: the old slice may be shared with a published view
			old := h.neighbors[l][nb]
			nbrs := make([]int, len(old), len(old)+1)
			copy(nbrs, old)
			nbrs = append(nbrs, idx)
			if len(nbrs) > h.m*3 {
				nbrs = h.prune(h.vecs[nb], nbrs, h.m*2)
			}
			h.neighbors[l][nb] = nbrs
		}
		if len(cands) > 0 {
			cur = cands[0].idx
		}
	}
	if level > h.maxLevel {
		h.maxLevel = level
		h.entry = idx
	}
	h.size++
}

func (h *hnswIndex) greedy(q []float64, start, level int) int {
	cur := start
	curD := h.dist(q, cur)
	for {
		improved := false
		for _, nb := range h.neighbors[level][cur] {
			if d := h.dist(q, nb); d < curD {
				cur, curD = nb, d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer is best-first search with a bounded candidate set.
func (h *hnswIndex) searchLayer(q []float64, entry, ef, level int) []idxHit {
	visited := map[int]bool{entry: true}
	entryHit := idxHit{idx: entry, dist: h.dist(q, entry)}
	candidates := []idxHit{entryHit}
	results := []idxHit{entryHit}
	for len(candidates) > 0 {
		// pop nearest candidate
		best := 0
		for i := 1; i < len(candidates); i++ {
			if candidates[i].dist < candidates[best].dist {
				best = i
			}
		}
		c := candidates[best]
		candidates = append(candidates[:best], candidates[best+1:]...)
		// farthest current result
		worst := 0
		for i := 1; i < len(results); i++ {
			if results[i].dist > results[worst].dist {
				worst = i
			}
		}
		if len(results) >= ef && c.dist > results[worst].dist {
			break
		}
		for _, nb := range h.neighbors[level][c.idx] {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			d := h.dist(q, nb)
			if len(results) < ef {
				results = append(results, idxHit{nb, d})
				candidates = append(candidates, idxHit{nb, d})
			} else {
				worst = 0
				for i := 1; i < len(results); i++ {
					if results[i].dist > results[worst].dist {
						worst = i
					}
				}
				if d < results[worst].dist {
					results[worst] = idxHit{nb, d}
					candidates = append(candidates, idxHit{nb, d})
				}
			}
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].dist < results[j].dist })
	return results
}

func (h *hnswIndex) selectNearest(cands []idxHit, m int) []int {
	out := make([]int, 0, m)
	for _, c := range cands {
		out = append(out, c.idx)
		if len(out) == m {
			break
		}
	}
	return out
}

// mergeHits unions two hit lists, dedups by index, and keeps the best ef.
func mergeHits(a, b []idxHit, ef int) []idxHit {
	seen := map[int]bool{}
	out := make([]idxHit, 0, len(a)+len(b))
	for _, h := range append(a, b...) {
		if seen[h.idx] {
			continue
		}
		seen[h.idx] = true
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].dist < out[j].dist })
	if len(out) > ef {
		out = out[:ef]
	}
	return out
}

func (h *hnswIndex) prune(vec []float64, nbs []int, m int) []int {
	hits := make([]idxHit, len(nbs))
	for i, nb := range nbs {
		hits[i] = idxHit{nb, h.metric.Distance(vec, h.vecs[nb])}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].dist < hits[j].dist })
	if len(hits) > m {
		hits = hits[:m]
	}
	out := make([]int, len(hits))
	for i, ht := range hits {
		out[i] = ht.idx
	}
	return out
}

func (h *hnswIndex) search(q []float64, k int) []idxHit {
	if h.entry < 0 {
		return nil
	}
	cur := h.entry
	for l := h.maxLevel; l > 0; l-- {
		cur = h.greedy(q, cur, l)
	}
	ef := k * 10
	if ef < 40 {
		ef = 40
	}
	res := h.searchLayer(q, cur, ef, 0)
	// second deterministic seed guards against descending into the wrong
	// cluster on multi-modal data
	if h.size > 1 && cur != 0 {
		alt := h.searchLayer(q, 0, ef, 0)
		res = mergeHits(res, alt, ef)
	}
	// return the full beam (up to ef), not just k: callers filter
	// tombstones before truncating
	return res
}
