package vectordb

import (
	"math/rand"
	"sync"
	"testing"
)

// TestSnapshotIsImmutable: a view captured before writes must keep
// answering from its point in time — later Adds are invisible, later
// Deletes leave the old view's results intact.
func TestSnapshotIsImmutable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := New(4, Cosine)
	for i := 0; i < 80; i++ {
		if _, err := s.Add(randVec(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	s.BuildHNSW(8, 32, 1)
	old := s.Snapshot()
	if old == nil {
		t.Fatal("Snapshot nil after BuildHNSW")
	}
	q := randVec(rng, 4)
	before, err := old.SearchHNSW(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	oldLen := old.Len()

	// mutate the store heavily
	target := []float64{50, 50, 50, 50}
	newID, err := s.Add(target)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range before {
		if err := s.Delete(h.ID); err != nil {
			t.Fatal(err)
		}
	}

	// old view: unchanged results, unchanged length, new vector invisible
	after, err := old.SearchHNSW(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("old view hit count changed: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i].ID != after[i].ID {
			t.Fatalf("old view results changed at %d: %+v vs %+v", i, before, after)
		}
	}
	if old.Len() != oldLen {
		t.Errorf("old view Len changed: %d -> %d", oldLen, old.Len())
	}
	if hit, _ := old.SearchHNSW(target, 1); len(hit) > 0 && hit[0].ID == newID {
		t.Error("vector added after the snapshot is visible in the old view")
	}

	// new view: sees the add and the deletes
	cur := s.Snapshot()
	if hit, err := cur.SearchHNSW(target, 1); err != nil || len(hit) == 0 || hit[0].ID != newID {
		t.Errorf("current view misses the new vector: %+v (%v)", hit, err)
	}
	curHits, _ := cur.SearchHNSW(q, 5)
	for _, h := range curHits {
		for _, d := range before {
			if h.ID == d.ID {
				t.Errorf("deleted id %d still returned by current view", d.ID)
			}
		}
	}
}

// TestConcurrentSearchAndWrite races lock-free view searches against
// Add/Delete publishing new views; the race detector proves the
// copy-on-write protocol (run with -race).
func TestConcurrentSearchAndWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := New(4, Cosine)
	for i := 0; i < 60; i++ {
		if _, err := s.Add(randVec(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	s.BuildHNSW(8, 32, 2)
	queries := make([][]float64, 16)
	for i := range queries {
		queries[i] = randVec(rng, 4)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := s.SearchHNSW(queries[(r+i)%len(queries)], 3); err != nil {
					errCh <- err
					return
				}
				v := s.Snapshot()
				if _, err := v.Search(queries[i%len(queries)], 3); err != nil {
					errCh <- err
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(99))
		for i := 0; i < 100; i++ {
			id, err := s.Add(randVec(wrng, 4))
			if err != nil {
				errCh <- err
				return
			}
			if i%3 == 0 {
				if err := s.Delete(id); err != nil {
					errCh <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("concurrent op failed: %v", err)
	}
	if s.Snapshot().Len() != s.Len() {
		t.Errorf("view Len %d != store Len %d after quiesce", s.Snapshot().Len(), s.Len())
	}
}
