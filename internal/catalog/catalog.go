// Package catalog defines the database schema metadata used by both HTAP
// engines: tables, columns, indexes, and table statistics. The shipped
// catalog is the TPC-H schema (the paper's evaluation schema), but the
// types are generic so tests can build small ad-hoc schemas.
package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// ColType is the logical type of a column.
type ColType int

const (
	TypeInt ColType = iota
	TypeFloat
	TypeString
	TypeDate // stored as days since epoch (int64) but formatted as a date
)

func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "STRING"
	case TypeDate:
		return "DATE"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Column describes one column of a table.
type Column struct {
	Name string
	Type ColType
	// NDV is the estimated number of distinct values, used for
	// selectivity estimation. Zero means "unknown" (treated as table
	// cardinality).
	NDV int64
}

// IndexKind distinguishes primary-key indexes from secondary indexes.
type IndexKind int

const (
	PrimaryIndex IndexKind = iota
	SecondaryIndex
)

func (k IndexKind) String() string {
	if k == PrimaryIndex {
		return "PRIMARY"
	}
	return "SECONDARY"
}

// Index describes an ordered index on a single column (the subset the TP
// engine supports; composite keys are modeled as their leading column).
type Index struct {
	Name   string
	Table  string
	Column string
	Kind   IndexKind
	// Unique reports whether the indexed column is unique in the table.
	Unique bool
}

// Table describes one table: its columns, indexes and statistics.
type Table struct {
	Name    string
	Columns []Column
	Indexes []Index
	// Rows is the (estimated) table cardinality at the modeled scale.
	Rows int64
	// AvgRowBytes is the average width of a stored row, used by the
	// engines' cost models.
	AvgRowBytes int64
}

// Column returns the named column, or false if it does not exist.
func (t *Table) Column(name string) (Column, bool) {
	for _, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return c, true
		}
	}
	return Column{}, false
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// IndexOn returns the index covering the given column, if any.
func (t *Table) IndexOn(column string) (Index, bool) {
	for _, ix := range t.Indexes {
		if strings.EqualFold(ix.Column, column) {
			return ix, true
		}
	}
	return Index{}, false
}

// Catalog is a set of tables plus global knobs. It is immutable after
// construction from the engines' point of view; the explainer may consult
// it for schema context in prompts.
type Catalog struct {
	tables map[string]*Table
	// ScaleFactor is the TPC-H scale factor the statistics model
	// (the paper uses 100 GB = SF 100).
	ScaleFactor float64
}

// New returns an empty catalog with the given modeled scale factor.
func New(scaleFactor float64) *Catalog {
	return &Catalog{tables: make(map[string]*Table), ScaleFactor: scaleFactor}
}

// AddTable registers a table. It returns an error on duplicate names.
func (c *Catalog) AddTable(t *Table) error {
	key := strings.ToLower(t.Name)
	if _, dup := c.tables[key]; dup {
		return fmt.Errorf("catalog: duplicate table %q", t.Name)
	}
	c.tables[key] = t
	return nil
}

// Table looks up a table by (case-insensitive) name.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns all tables sorted by name (deterministic iteration).
func (c *Catalog) Tables() []*Table {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Table, len(names))
	for i, n := range names {
		out[i] = c.tables[n]
	}
	return out
}

// AddIndex attaches a secondary index to an existing table. The paper's
// running example adds an index on customer.c_phone this way.
func (c *Catalog) AddIndex(table, column, name string) error {
	t, ok := c.Table(table)
	if !ok {
		return fmt.Errorf("catalog: no such table %q", table)
	}
	if _, ok := t.Column(column); !ok {
		return fmt.Errorf("catalog: no column %q in table %q", column, table)
	}
	if _, exists := t.IndexOn(column); exists {
		return fmt.Errorf("catalog: index on %s.%s already exists", table, column)
	}
	t.Indexes = append(t.Indexes, Index{
		Name: name, Table: t.Name, Column: column, Kind: SecondaryIndex,
	})
	return nil
}

// DropIndex removes a secondary index by column. Primary indexes cannot be
// dropped.
func (c *Catalog) DropIndex(table, column string) error {
	t, ok := c.Table(table)
	if !ok {
		return fmt.Errorf("catalog: no such table %q", table)
	}
	for i, ix := range t.Indexes {
		if strings.EqualFold(ix.Column, column) {
			if ix.Kind == PrimaryIndex {
				return fmt.Errorf("catalog: cannot drop primary index on %s.%s", table, column)
			}
			t.Indexes = append(t.Indexes[:i], t.Indexes[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("catalog: no index on %s.%s", table, column)
}

// SchemaSummary renders a short human-readable schema description used as
// prompt background context.
func (c *Catalog) SchemaSummary() string {
	var b strings.Builder
	for _, t := range c.Tables() {
		fmt.Fprintf(&b, "%s(%d rows):", t.Name, t.Rows)
		for i, col := range t.Columns {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteByte(' ')
			b.WriteString(col.Name)
		}
		for _, ix := range t.Indexes {
			fmt.Fprintf(&b, " [%s idx on %s]", strings.ToLower(ix.Kind.String()), ix.Column)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
