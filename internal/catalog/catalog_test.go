package catalog

import (
	"strings"
	"testing"
)

func TestTPCHSchemaComplete(t *testing.T) {
	c := TPCH(100)
	want := []string{"region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem"}
	for _, name := range want {
		tb, ok := c.Table(name)
		if !ok {
			t.Fatalf("missing table %q", name)
		}
		if len(tb.Columns) == 0 {
			t.Errorf("table %q has no columns", name)
		}
		if tb.Rows <= 0 {
			t.Errorf("table %q has no modeled rows", name)
		}
		if tb.AvgRowBytes <= 0 {
			t.Errorf("table %q has no row width", name)
		}
	}
	if got := len(c.Tables()); got != len(want) {
		t.Errorf("table count = %d, want %d", got, len(want))
	}
}

func TestTPCHCardinalitiesScale(t *testing.T) {
	sf1 := TPCH(1)
	sf100 := TPCH(100)
	o1, _ := sf1.Table("orders")
	o100, _ := sf100.Table("orders")
	if o1.Rows != 1_500_000 {
		t.Errorf("orders @SF1 = %d, want 1.5M", o1.Rows)
	}
	if o100.Rows != 150_000_000 {
		t.Errorf("orders @SF100 = %d, want 150M", o100.Rows)
	}
	// nation and region are fixed-size per the TPC-H spec
	n1, _ := sf1.Table("nation")
	n100, _ := sf100.Table("nation")
	if n1.Rows != 25 || n100.Rows != 25 {
		t.Errorf("nation must stay 25 rows at any SF: %d / %d", n1.Rows, n100.Rows)
	}
}

func TestTableColumnLookups(t *testing.T) {
	c := TPCH(1)
	cust, _ := c.Table("customer")
	col, ok := cust.Column("c_phone")
	if !ok || col.Type != TypeString {
		t.Fatalf("c_phone lookup: %+v %v", col, ok)
	}
	if _, ok := cust.Column("C_PHONE"); !ok {
		t.Error("column lookup should be case-insensitive")
	}
	if _, ok := cust.Column("nope"); ok {
		t.Error("bogus column should not resolve")
	}
	if i := cust.ColumnIndex("c_custkey"); i != 0 {
		t.Errorf("c_custkey index = %d", i)
	}
	if i := cust.ColumnIndex("nope"); i != -1 {
		t.Errorf("bogus column index = %d", i)
	}
}

func TestPrimaryAndForeignIndexes(t *testing.T) {
	c := TPCH(1)
	orders, _ := c.Table("orders")
	pk, ok := orders.IndexOn("o_orderkey")
	if !ok || pk.Kind != PrimaryIndex || !pk.Unique {
		t.Fatalf("pk on o_orderkey: %+v %v", pk, ok)
	}
	fk, ok := orders.IndexOn("o_custkey")
	if !ok || fk.Kind != SecondaryIndex {
		t.Fatalf("fk on o_custkey: %+v %v", fk, ok)
	}
	if _, ok := orders.IndexOn("o_comment"); ok {
		t.Error("o_comment should not be indexed")
	}
}

func TestAddDropIndex(t *testing.T) {
	c := TPCH(1)
	if err := c.AddIndex("customer", "c_phone", "idx_phone"); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	cust, _ := c.Table("customer")
	if _, ok := cust.IndexOn("c_phone"); !ok {
		t.Fatal("index not visible after AddIndex")
	}
	if err := c.AddIndex("customer", "c_phone", "dup"); err == nil {
		t.Error("duplicate index should error")
	}
	if err := c.AddIndex("nope", "x", "i"); err == nil {
		t.Error("unknown table should error")
	}
	if err := c.AddIndex("customer", "nope", "i"); err == nil {
		t.Error("unknown column should error")
	}
	if err := c.DropIndex("customer", "c_phone"); err != nil {
		t.Fatalf("DropIndex: %v", err)
	}
	if err := c.DropIndex("customer", "c_phone"); err == nil {
		t.Error("double drop should error")
	}
	if err := c.DropIndex("customer", "c_custkey"); err == nil {
		t.Error("dropping a primary index must be refused")
	}
}

func TestDuplicateTableRejected(t *testing.T) {
	c := New(1)
	if err := c.AddTable(&Table{Name: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(&Table{Name: "T"}); err == nil {
		t.Error("duplicate table (case-insensitive) should error")
	}
}

func TestTablesDeterministicOrder(t *testing.T) {
	c := TPCH(1)
	first := c.Tables()
	second := c.Tables()
	for i := range first {
		if first[i].Name != second[i].Name {
			t.Fatal("Tables() iteration order must be deterministic")
		}
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].Name >= first[i].Name {
			t.Fatal("Tables() must be sorted by name")
		}
	}
}

func TestSchemaSummaryMentionsEverything(t *testing.T) {
	s := TPCH(1).SchemaSummary()
	for _, want := range []string{"customer", "c_phone", "orders", "primary idx", "secondary idx"} {
		if !strings.Contains(s, want) {
			t.Errorf("SchemaSummary missing %q", want)
		}
	}
}

func TestColTypeString(t *testing.T) {
	cases := map[ColType]string{
		TypeInt: "INT", TypeFloat: "FLOAT", TypeString: "STRING", TypeDate: "DATE",
	}
	for ct, want := range cases {
		if got := ct.String(); got != want {
			t.Errorf("%v.String() = %q", ct, got)
		}
	}
	if IndexKind(PrimaryIndex).String() != "PRIMARY" || SecondaryIndex.String() != "SECONDARY" {
		t.Error("IndexKind strings wrong")
	}
}
