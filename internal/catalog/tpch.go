package catalog

// TPC-H schema definition. Row counts below are the *modeled* cardinalities
// at the catalog's scale factor; the in-memory data generator populates a
// scaled-down physical copy while the statistics (and hence optimizer
// behaviour and the latency model) reflect the modeled scale, mirroring the
// paper's 100 GB deployment.

// TPCH builds the TPC-H catalog at the given scale factor. Statistics
// (Rows) scale linearly with sf except for nation and region, per the
// TPC-H specification.
func TPCH(sf float64) *Catalog {
	c := New(sf)
	s := func(base float64) int64 {
		n := int64(base * sf)
		if n < 1 {
			n = 1
		}
		return n
	}

	mustAdd := func(t *Table) {
		if err := c.AddTable(t); err != nil {
			panic(err) // static schema; duplicates are programmer error
		}
	}

	mustAdd(&Table{
		Name: "region",
		Columns: []Column{
			{Name: "r_regionkey", Type: TypeInt, NDV: 5},
			{Name: "r_name", Type: TypeString, NDV: 5},
			{Name: "r_comment", Type: TypeString, NDV: 5},
		},
		Indexes: []Index{{Name: "pk_region", Table: "region", Column: "r_regionkey", Kind: PrimaryIndex, Unique: true}},
		Rows:    5, AvgRowBytes: 120,
	})
	mustAdd(&Table{
		Name: "nation",
		Columns: []Column{
			{Name: "n_nationkey", Type: TypeInt, NDV: 25},
			{Name: "n_name", Type: TypeString, NDV: 25},
			{Name: "n_regionkey", Type: TypeInt, NDV: 5},
			{Name: "n_comment", Type: TypeString, NDV: 25},
		},
		Indexes: []Index{
			{Name: "pk_nation", Table: "nation", Column: "n_nationkey", Kind: PrimaryIndex, Unique: true},
			{Name: "fk_nation_region", Table: "nation", Column: "n_regionkey", Kind: SecondaryIndex},
		},
		Rows: 25, AvgRowBytes: 128,
	})
	mustAdd(&Table{
		Name: "supplier",
		Columns: []Column{
			{Name: "s_suppkey", Type: TypeInt, NDV: s(10_000)},
			{Name: "s_name", Type: TypeString, NDV: s(10_000)},
			{Name: "s_address", Type: TypeString, NDV: s(10_000)},
			{Name: "s_nationkey", Type: TypeInt, NDV: 25},
			{Name: "s_phone", Type: TypeString, NDV: s(10_000)},
			{Name: "s_acctbal", Type: TypeFloat, NDV: s(9_000)},
			{Name: "s_comment", Type: TypeString, NDV: s(10_000)},
		},
		Indexes: []Index{
			{Name: "pk_supplier", Table: "supplier", Column: "s_suppkey", Kind: PrimaryIndex, Unique: true},
			{Name: "fk_supplier_nation", Table: "supplier", Column: "s_nationkey", Kind: SecondaryIndex},
		},
		Rows: s(10_000), AvgRowBytes: 160,
	})
	mustAdd(&Table{
		Name: "part",
		Columns: []Column{
			{Name: "p_partkey", Type: TypeInt, NDV: s(200_000)},
			{Name: "p_name", Type: TypeString, NDV: s(200_000)},
			{Name: "p_mfgr", Type: TypeString, NDV: 5},
			{Name: "p_brand", Type: TypeString, NDV: 25},
			{Name: "p_type", Type: TypeString, NDV: 150},
			{Name: "p_size", Type: TypeInt, NDV: 50},
			{Name: "p_container", Type: TypeString, NDV: 40},
			{Name: "p_retailprice", Type: TypeFloat, NDV: s(100_000)},
			{Name: "p_comment", Type: TypeString, NDV: s(200_000)},
		},
		Indexes: []Index{{Name: "pk_part", Table: "part", Column: "p_partkey", Kind: PrimaryIndex, Unique: true}},
		Rows:    s(200_000), AvgRowBytes: 156,
	})
	mustAdd(&Table{
		Name: "partsupp",
		Columns: []Column{
			{Name: "ps_partkey", Type: TypeInt, NDV: s(200_000)},
			{Name: "ps_suppkey", Type: TypeInt, NDV: s(10_000)},
			{Name: "ps_availqty", Type: TypeInt, NDV: 10_000},
			{Name: "ps_supplycost", Type: TypeFloat, NDV: s(100_000)},
			{Name: "ps_comment", Type: TypeString, NDV: s(800_000)},
		},
		Indexes: []Index{
			{Name: "pk_partsupp", Table: "partsupp", Column: "ps_partkey", Kind: PrimaryIndex},
			{Name: "fk_partsupp_supp", Table: "partsupp", Column: "ps_suppkey", Kind: SecondaryIndex},
		},
		Rows: s(800_000), AvgRowBytes: 144,
	})
	mustAdd(&Table{
		Name: "customer",
		Columns: []Column{
			{Name: "c_custkey", Type: TypeInt, NDV: s(150_000)},
			{Name: "c_name", Type: TypeString, NDV: s(150_000)},
			{Name: "c_address", Type: TypeString, NDV: s(150_000)},
			{Name: "c_nationkey", Type: TypeInt, NDV: 25},
			{Name: "c_phone", Type: TypeString, NDV: s(150_000)},
			{Name: "c_acctbal", Type: TypeFloat, NDV: s(140_000)},
			{Name: "c_mktsegment", Type: TypeString, NDV: 5},
			{Name: "c_comment", Type: TypeString, NDV: s(150_000)},
		},
		Indexes: []Index{
			{Name: "pk_customer", Table: "customer", Column: "c_custkey", Kind: PrimaryIndex, Unique: true},
			{Name: "fk_customer_nation", Table: "customer", Column: "c_nationkey", Kind: SecondaryIndex},
		},
		Rows: s(150_000), AvgRowBytes: 180,
	})
	mustAdd(&Table{
		Name: "orders",
		Columns: []Column{
			{Name: "o_orderkey", Type: TypeInt, NDV: s(1_500_000)},
			{Name: "o_custkey", Type: TypeInt, NDV: s(150_000)},
			{Name: "o_orderstatus", Type: TypeString, NDV: 3},
			{Name: "o_totalprice", Type: TypeFloat, NDV: s(1_400_000)},
			{Name: "o_orderdate", Type: TypeDate, NDV: 2_406},
			{Name: "o_orderpriority", Type: TypeString, NDV: 5},
			{Name: "o_clerk", Type: TypeString, NDV: s(1_000)},
			{Name: "o_shippriority", Type: TypeInt, NDV: 1},
			{Name: "o_comment", Type: TypeString, NDV: s(1_500_000)},
		},
		Indexes: []Index{
			{Name: "pk_orders", Table: "orders", Column: "o_orderkey", Kind: PrimaryIndex, Unique: true},
			{Name: "fk_orders_customer", Table: "orders", Column: "o_custkey", Kind: SecondaryIndex},
		},
		Rows: s(1_500_000), AvgRowBytes: 122,
	})
	mustAdd(&Table{
		Name: "lineitem",
		Columns: []Column{
			{Name: "l_orderkey", Type: TypeInt, NDV: s(1_500_000)},
			{Name: "l_partkey", Type: TypeInt, NDV: s(200_000)},
			{Name: "l_suppkey", Type: TypeInt, NDV: s(10_000)},
			{Name: "l_linenumber", Type: TypeInt, NDV: 7},
			{Name: "l_quantity", Type: TypeFloat, NDV: 50},
			{Name: "l_extendedprice", Type: TypeFloat, NDV: s(900_000)},
			{Name: "l_discount", Type: TypeFloat, NDV: 11},
			{Name: "l_tax", Type: TypeFloat, NDV: 9},
			{Name: "l_returnflag", Type: TypeString, NDV: 3},
			{Name: "l_linestatus", Type: TypeString, NDV: 2},
			{Name: "l_shipdate", Type: TypeDate, NDV: 2_526},
			{Name: "l_commitdate", Type: TypeDate, NDV: 2_466},
			{Name: "l_receiptdate", Type: TypeDate, NDV: 2_554},
			{Name: "l_shipinstruct", Type: TypeString, NDV: 4},
			{Name: "l_shipmode", Type: TypeString, NDV: 7},
			{Name: "l_comment", Type: TypeString, NDV: s(4_500_000)},
		},
		Indexes: []Index{
			{Name: "pk_lineitem", Table: "lineitem", Column: "l_orderkey", Kind: PrimaryIndex},
			{Name: "fk_lineitem_part", Table: "lineitem", Column: "l_partkey", Kind: SecondaryIndex},
			{Name: "fk_lineitem_supp", Table: "lineitem", Column: "l_suppkey", Kind: SecondaryIndex},
		},
		Rows: s(6_000_000), AvgRowBytes: 138,
	})
	return c
}
