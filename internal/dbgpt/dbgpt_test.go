package dbgpt

import (
	"strings"
	"testing"

	"htapxplain/internal/htap"
	"htapxplain/internal/llm"
	"htapxplain/internal/plan"
)

func examplePair(t *testing.T) *plan.Pair {
	t.Helper()
	sys, err := htap.New(htap.DefaultConfig())
	if err != nil {
		t.Fatalf("htap.New: %v", err)
	}
	pair, err := sys.Explain(htap.Example1SQL)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	return pair
}

func TestComputeDiffStructure(t *testing.T) {
	pair := examplePair(t)
	d := ComputeDiff(pair)
	// TP has nested loops only; AP has hash joins only
	onlyTP := strings.Join(d.OnlyInTP, ",")
	onlyAP := strings.Join(d.OnlyInAP, ",")
	if !strings.Contains(onlyTP, "Nested loop") {
		t.Errorf("OnlyInTP = %v", d.OnlyInTP)
	}
	if !strings.Contains(onlyAP, "hash join") && !strings.Contains(onlyAP, "Hash") {
		t.Errorf("OnlyInAP = %v", d.OnlyInAP)
	}
	// the incomparable-cost ratio DBG-PT computes anyway
	if d.CostRatio < 10 {
		t.Errorf("cost ratio = %v, expected to be huge (and meaningless)", d.CostRatio)
	}
}

func TestComputeDiffCounts(t *testing.T) {
	tp := &plan.Node{Op: plan.OpTableScan, Engine: plan.TP, Cost: 10, Rows: 5}
	ap := &plan.Node{Op: plan.OpHashAggregate, Engine: plan.AP, Cost: 100, Rows: 1,
		Children: []*plan.Node{{Op: plan.OpTableScan, Engine: plan.AP, Cost: 90, Rows: 5}}}
	d := ComputeDiff(&plan.Pair{TP: tp, AP: ap})
	if d.OpCountDelta["Table Scan"] != 0 {
		t.Errorf("Table Scan delta = %d", d.OpCountDelta["Table Scan"])
	}
	if d.OpCountDelta["Aggregate"] != 1 {
		t.Errorf("Aggregate delta = %d", d.OpCountDelta["Aggregate"])
	}
	if len(d.OnlyInAP) != 1 || d.OnlyInAP[0] != "Aggregate" {
		t.Errorf("OnlyInAP = %v", d.OnlyInAP)
	}
	if d.CostRatio != 10 {
		t.Errorf("cost ratio = %v", d.CostRatio)
	}
}

func TestExplainProducesUngroundedOutput(t *testing.T) {
	pair := examplePair(t)
	ex := New(llm.Doubao())
	out, err := ex.Explain(pair)
	if err != nil {
		t.Fatal(err)
	}
	if out.Response.Text == "" || out.Response.None {
		t.Fatalf("DBG-PT should always produce text: %+v", out.Response)
	}
	// DBG-PT receives no execution result and no knowledge
	if strings.Contains(out.Prompt, "result:") {
		t.Error("DBG-PT prompt must not contain the execution result")
	}
	if strings.Contains(out.Prompt, "KNOWLEDGE") {
		t.Error("DBG-PT prompt must not contain retrieved knowledge")
	}
	// it does carry the structural diff it computed
	if !strings.Contains(out.Prompt, "Structural differences") {
		t.Error("diff section missing from DBG-PT prompt")
	}
}

func TestDBGPTExhibitsColumnarOveremphasis(t *testing.T) {
	pair := examplePair(t)
	out, err := New(llm.Doubao()).Explain(pair)
	if err != nil {
		t.Fatal(err)
	}
	lower := strings.ToLower(out.Response.Text)
	if !strings.Contains(lower, "column-oriented storage") {
		t.Errorf("columnar overemphasis expected in: %q", out.Response.Text)
	}
}

func TestDeterministicExplanations(t *testing.T) {
	pair := examplePair(t)
	ex := New(llm.ChatGPT4())
	a, err := ex.Explain(pair)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ex.Explain(pair)
	if err != nil {
		t.Fatal(err)
	}
	if a.Response.Text != b.Response.Text {
		t.Error("DBG-PT must be deterministic for identical plans")
	}
}
