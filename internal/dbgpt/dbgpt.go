// Package dbgpt reimplements the DBG-PT baseline (Giannakouris &
// Trummer, VLDB 2024) the paper compares against (§VI-D): an LLM-assisted
// query-plan regression debugger that explains performance differences by
// structurally diffing two plans and prompting an LLM — with no
// retrieval, no historical knowledge, and no engine-specific guardrails.
// DBG-PT was designed for plan pairs from the *same* optimizer; applied
// across HTAP engines it exhibits the four failure modes the paper
// documents: index misinterpretation, column-storage overemphasis,
// cost-estimate comparison, and no context for relative values
// (LIMIT/OFFSET magnitudes).
package dbgpt

import (
	"fmt"
	"strings"

	"htapxplain/internal/llm"
	"htapxplain/internal/plan"
	"htapxplain/internal/prompt"
)

// Diff is the structural plan-pair difference DBG-PT computes before
// prompting.
type Diff struct {
	// OpCountDelta maps operator display name → (count in AP − count in
	// TP).
	OpCountDelta map[string]int
	// OnlyInTP / OnlyInAP list operator types present in one plan only.
	OnlyInTP, OnlyInAP []string
	// CostRatio is AP root cost / TP root cost — DBG-PT computes it even
	// though the units are incomparable (failure mode #3).
	CostRatio float64
}

// ComputeDiff structurally diffs a plan pair.
func ComputeDiff(p *plan.Pair) Diff {
	count := func(n *plan.Node) map[string]int {
		m := map[string]int{}
		n.Visit(func(x *plan.Node) { m[x.Op.String()]++ })
		return m
	}
	tp, ap := count(p.TP), count(p.AP)
	d := Diff{OpCountDelta: map[string]int{}}
	for op, c := range ap {
		d.OpCountDelta[op] = c - tp[op]
		if tp[op] == 0 {
			d.OnlyInAP = append(d.OnlyInAP, op)
		}
	}
	for op, c := range tp {
		if _, ok := ap[op]; !ok {
			d.OpCountDelta[op] = -c
			d.OnlyInTP = append(d.OnlyInTP, op)
		}
	}
	sortStrings(d.OnlyInTP)
	sortStrings(d.OnlyInAP)
	if p.TP.Cost > 0 {
		d.CostRatio = p.AP.Cost / p.TP.Cost
	}
	return d
}

func sortStrings(s []string) {
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
}

// Explainer is the DBG-PT pipeline: diff + un-grounded LLM prompt.
type Explainer struct {
	Model llm.Model
}

// New returns a DBG-PT explainer over the given model.
func New(model llm.Model) *Explainer { return &Explainer{Model: model} }

// Explanation is DBG-PT's output.
type Explanation struct {
	Diff     Diff
	Prompt   string
	Response llm.Response
}

// Explain produces DBG-PT's explanation for a plan pair. Per the paper's
// comparison protocol, only the plan details are provided — "without any
// historical query or expert explanation" — and no execution result.
func (e *Explainer) Explain(p *plan.Pair) (*Explanation, error) {
	d := ComputeDiff(p)
	var b strings.Builder
	b.WriteString("You are a query plan regression debugger. Compare the two execution plans below, ")
	b.WriteString("identify their structural differences, and explain which plan is likely faster and why.\n")
	// the paper gave DBG-PT the same cost-comparison prohibition ("despite
	// instructions to avoid comparing costs, DBG-PT still seems to rely on
	// cost differences sometimes")
	b.WriteString(prompt.GuardrailSentence)
	b.WriteString("\n")
	b.WriteString("Structural differences detected:\n")
	for _, op := range d.OnlyInTP {
		fmt.Fprintf(&b, "- operator %q appears only in plan 1 (TP)\n", op)
	}
	for _, op := range d.OnlyInAP {
		fmt.Fprintf(&b, "- operator %q appears only in plan 2 (AP)\n", op)
	}
	fmt.Fprintf(&b, "- cost ratio (plan 2 / plan 1): %.2f\n", d.CostRatio)
	b.WriteString("=== QUESTION ===\n")
	fmt.Fprintf(&b, "query: %s\n", p.SQL)
	fmt.Fprintf(&b, "tp_plan: %s\n", p.TP.ExplainJSON())
	fmt.Fprintf(&b, "ap_plan: %s\n", p.AP.ExplainJSON())
	promptText := b.String()

	resp, err := e.Model.Generate(promptText)
	if err != nil {
		return nil, fmt.Errorf("dbgpt: generation: %w", err)
	}
	return &Explanation{Diff: d, Prompt: promptText, Response: resp}, nil
}
