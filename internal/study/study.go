// Package study simulates the paper's human-subject study (§VI-C) with a
// deterministic cognitive model of participants (DESIGN.md documents the
// substitution for the real participants). The protocol is the paper's:
// two equal groups receive the same query and context; group A gets plan
// details + the LLM explanation up front, group B first works from plan
// details alone, submits an interpretation, then sees the LLM explanation
// and may revise. Measured: time to stated understanding, correctness of
// the submitted interpretation, and 0-10 difficulty ratings for the raw
// plans and for the LLM text.
//
// The cognitive model: each participant has a skill level s ∈ [0.2, 1];
// reading/analysis time scales with material complexity and inversely
// with skill; the probability of correctly inferring the cause from raw
// plans alone grows with skill; a correct accessible explanation makes
// everyone correct (the paper observed exactly this). Constants are
// calibrated once against the paper's aggregate numbers — per-query
// results are then emergent from the materials' actual complexity.
package study

import (
	"math/rand"

	"htapxplain/internal/plan"
)

// Materials is what participants are shown.
type Materials struct {
	// PlanNodes is the total operator count across both plans.
	PlanNodes int
	// PlanJSONChars is the combined length of both pretty-printed plans.
	PlanJSONChars int
	// ExplanationChars is the LLM explanation length.
	ExplanationChars int
	// ExplanationAccurate states whether the explanation is correct
	// (graded by the expert oracle); inaccurate explanations cannot
	// repair wrong initial understandings.
	ExplanationAccurate bool
}

// MaterialsFromPair derives study materials from a plan pair and the
// generated explanation.
func MaterialsFromPair(p *plan.Pair, explanation string, accurate bool) Materials {
	return Materials{
		PlanNodes:           p.TP.Count() + p.AP.Count(),
		PlanJSONChars:       len(p.TP.ExplainIndentJSON()) + len(p.AP.ExplainIndentJSON()),
		ExplanationChars:    len(explanation),
		ExplanationAccurate: accurate,
	}
}

// Config controls the simulated study.
type Config struct {
	// Participants is the total count, split evenly into two groups.
	Participants int
	// Seed drives the participant population.
	Seed int64
}

// DefaultConfig mirrors a small human study.
func DefaultConfig() Config { return Config{Participants: 24, Seed: 5} }

// Outcome aggregates the study results (the paper's reported quantities).
type Outcome struct {
	// Group A: received the LLM explanation from the start.
	GroupAMeanMinutes float64
	GroupACorrectRate float64
	// Group B: plans only first, then the LLM explanation.
	GroupBMeanMinutes        float64
	GroupBInitialCorrectRate float64
	GroupBCorrectAfterLLM    float64
	// Difficulty ratings, 0 (easiest) .. 10 (hardest).
	DifficultyPlans float64
	DifficultyLLM   float64
}

// participant is one simulated subject.
type participant struct {
	skill float64 // 0.2 (novice) .. 1.0 (expert)
}

// population generates the deterministic participant pool.
func population(cfg Config) []participant {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]participant, cfg.Participants)
	for i := range out {
		out[i] = participant{skill: 0.2 + 0.8*rng.Float64()}
	}
	return out
}

// Calibrated cognitive-model constants (minutes).
const (
	baseAnalysisMin  = 3.0  // orientation cost of raw plan analysis
	perNodeMin       = 0.25 // deep-reading cost per plan operator
	skimFraction     = 0.30 // group A only skims the plans
	baseExplainMin   = 0.8  // reading the natural-language explanation
	perExplCharMin   = 1.0 / 1500
	correctBase      = 0.38 // chance a novice decodes raw plans correctly
	correctSkillGain = 0.50
	difficultyPlanHi = 10.4 // novice-end difficulty of raw plans
	difficultyPlanLo = 6.4  // expert-end
	difficultyLLMHi  = 4.6
	difficultyLLMLo  = 1.4
)

// Run executes the simulated protocol and aggregates the outcome.
func Run(cfg Config, m Materials) Outcome {
	people := population(cfg)
	half := len(people) / 2
	groupA, groupB := people[:half], people[half:]
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	var out Outcome
	// struggle converts skill into a time multiplier (novices ~1.44x).
	struggle := func(s float64) float64 { return 1.6 - 0.8*s }

	planAnalysisMin := baseAnalysisMin + float64(m.PlanNodes)*perNodeMin
	explReadMin := baseExplainMin + float64(m.ExplanationChars)*perExplCharMin

	var aCorrect int
	for _, p := range groupA {
		t := (planAnalysisMin*skimFraction + explReadMin) * struggle(p.skill)
		out.GroupAMeanMinutes += t
		// an accessible accurate explanation lets every participant
		// state the correct reason (the paper's observed result)
		if m.ExplanationAccurate || rng.Float64() < correctBase+correctSkillGain*p.skill {
			aCorrect++
		}
	}
	out.GroupAMeanMinutes /= float64(len(groupA))
	out.GroupACorrectRate = float64(aCorrect) / float64(len(groupA))

	var bInitial, bAfter int
	var diffPlans, diffLLM float64
	for _, p := range groupB {
		t := planAnalysisMin * struggle(p.skill)
		out.GroupBMeanMinutes += t
		correct := rng.Float64() < correctBase+correctSkillGain*p.skill
		if correct {
			bInitial++
		}
		if correct || m.ExplanationAccurate {
			bAfter++ // wrong readers corrected themselves after the LLM text
		}
		diffPlans += difficultyPlanHi - (difficultyPlanHi-difficultyPlanLo)*p.skill
		diffLLM += difficultyLLMHi - (difficultyLLMHi-difficultyLLMLo)*p.skill
	}
	n := float64(len(groupB))
	out.GroupBMeanMinutes /= n
	out.GroupBInitialCorrectRate = float64(bInitial) / n
	out.GroupBCorrectAfterLLM = float64(bAfter) / n
	out.DifficultyPlans = clampRating(diffPlans / n)
	out.DifficultyLLM = clampRating(diffLLM / n)
	return out
}

func clampRating(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 10 {
		return 10
	}
	return v
}
