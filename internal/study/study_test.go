package study

import (
	"testing"

	"htapxplain/internal/htap"
)

// exampleMaterials builds study materials from the paper's Example 1.
func exampleMaterials(t *testing.T) Materials {
	t.Helper()
	sys, err := htap.New(htap.DefaultConfig())
	if err != nil {
		t.Fatalf("htap.New: %v", err)
	}
	res, err := sys.Run(htap.Example1SQL)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// a representative accurate LLM explanation length (paper Table III)
	expl := "AP is faster due to its use of hash joins and hash aggregates, which are highly " +
		"efficient for handling large datasets, especially in a columnar storage format. " +
		"In contrast, TP's use of nested loop joins and group aggregates, combined with " +
		"table scans that don't benefit from index optimizations, leads to slower performance."
	return MaterialsFromPair(&res.Pair, expl, true)
}

func TestStudyReproducesPaperShape(t *testing.T) {
	m := exampleMaterials(t)
	out := Run(DefaultConfig(), m)
	t.Logf("A: %.1f min, %.0f%% correct", out.GroupAMeanMinutes, 100*out.GroupACorrectRate)
	t.Logf("B: %.1f min, %.0f%% initial, %.0f%% after LLM", out.GroupBMeanMinutes,
		100*out.GroupBInitialCorrectRate, 100*out.GroupBCorrectAfterLLM)
	t.Logf("difficulty: plans %.1f, LLM %.1f", out.DifficultyPlans, out.DifficultyLLM)

	// paper: 3.5 min with LLM vs 8.2 min without
	if out.GroupAMeanMinutes < 2 || out.GroupAMeanMinutes > 5.5 {
		t.Errorf("group A time %.1f min outside the paper's ~3.5 min band", out.GroupAMeanMinutes)
	}
	if out.GroupBMeanMinutes < 6 || out.GroupBMeanMinutes > 11 {
		t.Errorf("group B time %.1f min outside the paper's ~8.2 min band", out.GroupBMeanMinutes)
	}
	if out.GroupBMeanMinutes <= out.GroupAMeanMinutes {
		t.Error("group B (plans only) must take longer than group A (with LLM)")
	}
	// paper: 100% correct with LLM; 60% without; all corrected after LLM
	if out.GroupACorrectRate != 1.0 {
		t.Errorf("group A correct rate %.2f, want 1.0", out.GroupACorrectRate)
	}
	if out.GroupBInitialCorrectRate < 0.4 || out.GroupBInitialCorrectRate > 0.8 {
		t.Errorf("group B initial correct rate %.2f outside the paper's ~60%% band", out.GroupBInitialCorrectRate)
	}
	if out.GroupBCorrectAfterLLM != 1.0 {
		t.Errorf("group B post-LLM correct rate %.2f, want 1.0", out.GroupBCorrectAfterLLM)
	}
	// paper: difficulty 8.5 for plans vs 3 for the LLM text
	if out.DifficultyPlans < 7.5 || out.DifficultyPlans > 9.5 {
		t.Errorf("plan difficulty %.1f outside the paper's ~8.5 band", out.DifficultyPlans)
	}
	if out.DifficultyLLM < 2 || out.DifficultyLLM > 4 {
		t.Errorf("LLM difficulty %.1f outside the paper's ~3 band", out.DifficultyLLM)
	}
}

func TestInaccurateExplanationDoesNotRepair(t *testing.T) {
	m := exampleMaterials(t)
	m.ExplanationAccurate = false
	out := Run(DefaultConfig(), m)
	if out.GroupBCorrectAfterLLM >= 1.0 {
		t.Error("an inaccurate explanation should not correct every wrong reading")
	}
	if out.GroupACorrectRate >= 1.0 {
		t.Error("group A should not be universally correct with an inaccurate explanation")
	}
}

func TestStudyDeterminism(t *testing.T) {
	m := exampleMaterials(t)
	a := Run(DefaultConfig(), m)
	b := Run(DefaultConfig(), m)
	if a != b {
		t.Errorf("study is not deterministic: %+v vs %+v", a, b)
	}
	other := Run(Config{Participants: 24, Seed: 99}, m)
	if other == a {
		t.Error("different seeds should produce different populations")
	}
}

func TestComplexityDrivesTime(t *testing.T) {
	m := exampleMaterials(t)
	small := m
	small.PlanNodes = 4
	small.PlanJSONChars = 400
	big := m
	big.PlanNodes = 40
	outSmall := Run(DefaultConfig(), small)
	outBig := Run(DefaultConfig(), big)
	if outBig.GroupBMeanMinutes <= outSmall.GroupBMeanMinutes {
		t.Error("more plan nodes should mean longer analysis time")
	}
}
