// Package workload synthesizes the paper's query workload (§IV): join
// queries varying in table count, table size, predicate selectivity and
// index usage, and Top-N queries (ORDER BY / LIMIT / OFFSET), all over the
// TPC-H schema. Generation is seeded and deterministic. The same generator
// feeds the smart router's training set, the knowledge base's curated
// entries, and the 200-query test set.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"htapxplain/internal/tpch"
)

// Family tags the query pattern a generated query belongs to.
type Family string

const (
	// FamilyJoin is the paper's first pattern: multi-table joins with
	// engine-divergent join strategies.
	FamilyJoin Family = "join"
	// FamilyTopN is the paper's second pattern: ORDER BY/LIMIT/OFFSET.
	FamilyTopN Family = "topn"
)

// Query is one generated workload query.
type Query struct {
	ID     int
	SQL    string
	Family Family
	// Template names the generator template, for stratified analysis.
	Template string
}

// Generator produces deterministic synthetic queries.
type Generator struct {
	rng       *rand.Rand
	id        int
	templates []string
}

// NewGenerator returns a seeded generator over the core templates — the
// patterns the knowledge base is curated from (§IV).
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), templates: templateNames}
}

// NewTestGenerator returns a seeded generator whose mix also includes the
// rare templates: user query shapes outside the curated KB's coverage.
// The paper's test set draws from the users' broader workload; these rare
// shapes are what makes its accuracy 91% rather than 100%. The mix weights
// core templates 2:1 over rare ones.
func NewTestGenerator(seed int64) *Generator {
	all := append(append([]string{}, templateNames...), templateNames...)
	all = append(all, rareTemplateNames...)
	return &Generator{rng: rand.New(rand.NewSource(seed)), templates: all}
}

// templates, cycled in order with randomized parameters.
var templateNames = []string{
	"join3_phone_inlist", // Example-1 family: 3-way join, function-wrapped predicate
	"join2_segment_agg",  // customer ⋈ orders aggregate
	"join2_point_orders", // point customer + their orders (TP-friendly)
	"join2_lineitem_big", // lineitem ⋈ orders, date range (AP-friendly)
	"join3_supplier",     // supplier ⋈ nation ⋈ customer-style
	"join2_part_brand",   // partsupp ⋈ part by brand
	"topn_indexed_pk",    // ORDER BY primary key LIMIT k (TP-friendly)
	"topn_price_desc",    // ORDER BY unindexed column (AP-friendly)
	"topn_offset_deep",   // large OFFSET paging
	"topn_filtered",      // filtered Top-N on indexed order
}

// rareTemplateNames are test-only shapes with no curated KB counterpart.
var rareTemplateNames = []string{
	"rare_join4_wide",    // 4-way join
	"rare_agg_nojoin",    // single-table group-by aggregation
	"rare_tiny_dim_join", // tiny dimension-only join (startup-bound)
	"rare_like_scan",     // LIKE pattern scan, no usable index
}

// Next generates the next query (templates cycle round-robin).
func (g *Generator) Next() Query {
	tmpl := g.templates[g.id%len(g.templates)]
	q := g.generate(tmpl)
	q.ID = g.id
	g.id++
	return q
}

// Batch generates n queries.
func (g *Generator) Batch(n int) []Query {
	out := make([]Query, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// BatchOf generates n queries from a single named template, parameters
// still randomized per query — a workload slice for targeted benchmarks
// (e.g. the plan-dominated point-join template the serving gateway's
// plan-cache benchmarks use). It panics on an unknown template name,
// like all generation.
func (g *Generator) BatchOf(tmpl string, n int) []Query {
	out := make([]Query, n)
	for i := range out {
		q := g.generate(tmpl)
		q.ID = g.id
		g.id++
		out[i] = q
	}
	return out
}

func (g *Generator) generate(tmpl string) Query {
	r := g.rng
	switch tmpl {
	case "join3_phone_inlist":
		k := 2 + r.Intn(6) // IN-list size 2..7
		codes := phoneCodes(r, k)
		seg := pick(r, tpch.MktSegments)
		nat := pick(r, tpch.Nations)
		status := pick(r, tpch.OrderStatuses)
		sql := fmt.Sprintf(`SELECT COUNT(*) FROM customer, nation, orders`+
			` WHERE SUBSTRING(c_phone, 1, 2) IN (%s)`+
			` AND c_mktsegment = '%s' AND n_name = '%s' AND o_orderstatus = '%s'`+
			` AND o_custkey = c_custkey AND n_nationkey = c_nationkey`,
			codes, seg, nat, status)
		return Query{SQL: sql, Family: FamilyJoin, Template: tmpl}
	case "join2_segment_agg":
		seg := pick(r, tpch.MktSegments)
		sql := fmt.Sprintf(`SELECT COUNT(*), SUM(o_totalprice) FROM customer, orders`+
			` WHERE o_custkey = c_custkey AND c_mktsegment = '%s'`, seg)
		return Query{SQL: sql, Family: FamilyJoin, Template: tmpl}
	case "join2_point_orders":
		ck := 1 + r.Intn(290) // within the physical customer range
		sql := fmt.Sprintf(`SELECT o_orderkey, o_totalprice FROM customer, orders`+
			` WHERE o_custkey = c_custkey AND c_custkey = %d`, ck)
		return Query{SQL: sql, Family: FamilyJoin, Template: tmpl}
	case "join2_lineitem_big":
		lo := r.Intn(1500)
		hi := lo + 180 + r.Intn(700)
		sql := fmt.Sprintf(`SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem, orders`+
			` WHERE l_orderkey = o_orderkey AND l_shipdate BETWEEN %d AND %d`, lo, hi)
		return Query{SQL: sql, Family: FamilyJoin, Template: tmpl}
	case "join3_supplier":
		nat := pick(r, tpch.Nations)
		bal := 1000 + r.Intn(8000)
		sql := fmt.Sprintf(`SELECT COUNT(*) FROM supplier, nation, customer`+
			` WHERE s_nationkey = n_nationkey AND c_nationkey = n_nationkey`+
			` AND n_name = '%s' AND s_acctbal > %d`, nat, bal)
		return Query{SQL: sql, Family: FamilyJoin, Template: tmpl}
	case "join2_part_brand":
		b1, b2 := 1+r.Intn(5), 1+r.Intn(5)
		sql := fmt.Sprintf(`SELECT COUNT(*), AVG(ps_supplycost) FROM partsupp, part`+
			` WHERE ps_partkey = p_partkey AND p_brand = 'brand#%d%d'`, b1, b2)
		return Query{SQL: sql, Family: FamilyJoin, Template: tmpl}
	case "topn_indexed_pk":
		k := 5 + r.Intn(45)
		tbl, key, val := pickPK(r)
		sql := fmt.Sprintf(`SELECT %s, %s FROM %s ORDER BY %s LIMIT %d`, key, val, tbl, key, k)
		return Query{SQL: sql, Family: FamilyTopN, Template: tmpl}
	case "topn_price_desc":
		k := 5 + r.Intn(95)
		sql := fmt.Sprintf(`SELECT o_orderkey, o_totalprice FROM orders`+
			` ORDER BY o_totalprice DESC LIMIT %d`, k)
		return Query{SQL: sql, Family: FamilyTopN, Template: tmpl}
	case "topn_offset_deep":
		k := 10 + r.Intn(20)
		off := 100 + r.Intn(900)
		sql := fmt.Sprintf(`SELECT c_custkey, c_name, c_acctbal FROM customer`+
			` ORDER BY c_acctbal DESC LIMIT %d OFFSET %d`, k, off)
		return Query{SQL: sql, Family: FamilyTopN, Template: tmpl}
	case "topn_filtered":
		k := 5 + r.Intn(25)
		seg := pick(r, tpch.MktSegments)
		sql := fmt.Sprintf(`SELECT c_custkey, c_name FROM customer`+
			` WHERE c_mktsegment = '%s' ORDER BY c_custkey LIMIT %d`, seg, k)
		return Query{SQL: sql, Family: FamilyTopN, Template: tmpl}
	case "rare_join4_wide":
		seg := pick(r, tpch.MktSegments)
		nat := pick(r, tpch.Nations)
		sql := fmt.Sprintf(`SELECT COUNT(*) FROM customer, nation, orders, lineitem`+
			` WHERE c_nationkey = n_nationkey AND o_custkey = c_custkey`+
			` AND l_orderkey = o_orderkey AND c_mktsegment = '%s' AND n_name = '%s'`, seg, nat)
		return Query{SQL: sql, Family: FamilyJoin, Template: tmpl}
	case "rare_agg_nojoin":
		q := 10 + r.Intn(35)
		sql := fmt.Sprintf(`SELECT l_shipmode, COUNT(*), AVG(l_extendedprice) FROM lineitem`+
			` WHERE l_quantity > %d GROUP BY l_shipmode`, q)
		return Query{SQL: sql, Family: FamilyJoin, Template: tmpl}
	case "rare_tiny_dim_join":
		reg := pick(r, tpch.Regions)
		sql := fmt.Sprintf(`SELECT n_name FROM nation, region`+
			` WHERE n_regionkey = r_regionkey AND r_name = '%s'`, reg)
		return Query{SQL: sql, Family: FamilyJoin, Template: tmpl}
	case "rare_like_scan":
		w := pick(r, []string{"carefully", "slyly", "bold", "regular", "blithely"})
		sql := fmt.Sprintf(`SELECT COUNT(*) FROM orders WHERE o_comment LIKE '%%%s%%'`, w)
		return Query{SQL: sql, Family: FamilyJoin, Template: tmpl}
	default:
		panic("workload: unknown template " + tmpl)
	}
}

// phoneCodes renders k distinct TPC-H phone country codes as a quoted
// IN-list ('20', '40', ...).
func phoneCodes(r *rand.Rand, k int) string {
	seen := map[int]bool{}
	var parts []string
	for len(parts) < k {
		c := 10 + r.Intn(25)
		if seen[c] {
			continue
		}
		seen[c] = true
		parts = append(parts, fmt.Sprintf("'%d'", c))
	}
	return strings.Join(parts, ", ")
}

func pick(r *rand.Rand, opts []string) string { return opts[r.Intn(len(opts))] }

// pickPK chooses a table with its primary key and a payload column.
func pickPK(r *rand.Rand) (tbl, key, val string) {
	choices := [][3]string{
		{"orders", "o_orderkey", "o_totalprice"},
		{"customer", "c_custkey", "c_acctbal"},
		{"supplier", "s_suppkey", "s_acctbal"},
		{"part", "p_partkey", "p_retailprice"},
	}
	c := choices[r.Intn(len(choices))]
	return c[0], c[1], c[2]
}
