package workload

import (
	"fmt"
	"math/rand"
)

// FamilyDML tags generated write statements (the TP side of a mixed HTAP
// workload).
const FamilyDML Family = "dml"

// DMLGenerator produces a deterministic stream of INSERT / UPDATE / DELETE
// statements over the customer table — the write half of the mixed
// read/write load the gateway's load generator drives. Inserted customers
// use a private key range far above the bulk-loaded data, so the
// statements never collide with generated read workloads; deletes target
// previously inserted keys, keeping the table size bounded over long runs.
// Every statement pins c_custkey — the table's hash-partition key — so
// against a sharded fleet each write routes to exactly one shard and
// commits through the single-shard fast path; the shard package's routing
// and differential tests depend on this invariant.
type DMLGenerator struct {
	rng      *rand.Rand
	id       int
	nextKey  int64
	inserted []int64
}

// dmlKeyBase is the first synthetic customer key; bulk-loaded keys are
// dense and start at 1, so 10^9 never collides.
const dmlKeyBase = 1_000_000_000

// NewDMLGenerator returns a seeded DML generator.
func NewDMLGenerator(seed int64) *DMLGenerator {
	return &DMLGenerator{rng: rand.New(rand.NewSource(seed)), nextKey: dmlKeyBase}
}

// Next returns the next write statement, cycling insert-heavy over
// updates and deletes (2:1:1) so the delta layer always has fresh rows to
// replicate and the merger always has tombstones to compact.
func (g *DMLGenerator) Next() Query {
	g.id++
	var sql, tmpl string
	switch {
	case len(g.inserted) < 4 || g.id%4 < 2:
		key := g.nextKey
		g.nextKey++
		g.inserted = append(g.inserted, key)
		sql = fmt.Sprintf(
			"INSERT INTO customer (c_custkey, c_name, c_address, c_nationkey, c_phone, c_acctbal, c_mktsegment, c_comment) "+
				"VALUES (%d, 'customer#%d', 'addr %d', %d, '%02d-%03d', %d.%02d, 'machinery', 'synthetic write')",
			key, key, key, g.rng.Intn(25), 10+g.rng.Intn(25), g.rng.Intn(1000),
			g.rng.Intn(9000), g.rng.Intn(100))
		tmpl = "dml_insert_customer"
	case g.id%4 == 2:
		key := g.inserted[g.rng.Intn(len(g.inserted))]
		sql = fmt.Sprintf(
			"UPDATE customer SET c_acctbal = c_acctbal + %d, c_mktsegment = 'building' WHERE c_custkey = %d",
			1+g.rng.Intn(100), key)
		tmpl = "dml_update_balance"
	default:
		i := g.rng.Intn(len(g.inserted))
		key := g.inserted[i]
		g.inserted = append(g.inserted[:i], g.inserted[i+1:]...)
		sql = fmt.Sprintf("DELETE FROM customer WHERE c_custkey = %d", key)
		tmpl = "dml_delete_customer"
	}
	return Query{ID: g.id, SQL: sql, Family: FamilyDML, Template: tmpl}
}

// Batch returns the next n write statements.
func (g *DMLGenerator) Batch(n int) []Query {
	out := make([]Query, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
