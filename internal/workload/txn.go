package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// FamilyTxn tags generated multi-statement transaction blocks.
const FamilyTxn Family = "txn"

// txnKeyBase is the first customer key the transaction generator uses —
// its own billion-range, disjoint from both the bulk data and the
// single-statement DML generator's dmlKeyBase range, so transactional
// and autocommit writers never contend on generated keys (contention
// comes only from the hot-row updates below).
const txnKeyBase = 2_000_000_000

// TxnGenerator produces a deterministic stream of BEGIN ... COMMIT /
// ROLLBACK blocks over the customer table: each block inserts fresh rows,
// updates previously inserted ones (a bounded hot set, so concurrent
// submitters genuinely race and exercise first-writer-wins conflicts),
// and occasionally deletes — with roughly one block in eight ending in
// ROLLBACK to keep the abort path exercised under load.
type TxnGenerator struct {
	rng      *rand.Rand
	id       int
	nextKey  int64
	inserted []int64
}

// NewTxnGenerator returns a seeded transaction-block generator.
func NewTxnGenerator(seed int64) *TxnGenerator {
	return &TxnGenerator{rng: rand.New(rand.NewSource(seed)), nextKey: txnKeyBase}
}

func (g *TxnGenerator) insertSQL() string {
	key := g.nextKey
	g.nextKey++
	g.inserted = append(g.inserted, key)
	return fmt.Sprintf(
		"INSERT INTO customer (c_custkey, c_name, c_address, c_nationkey, c_phone, c_acctbal, c_mktsegment, c_comment) "+
			"VALUES (%d, 'txn#%d', 'addr %d', %d, '%02d-%03d', %d.%02d, 'machinery', 'txn write')",
		key, key, key, g.rng.Intn(25), 10+g.rng.Intn(25), g.rng.Intn(1000),
		g.rng.Intn(9000), g.rng.Intn(100))
}

// hotKey picks from the oldest 16 inserted keys — a small stable set that
// concurrent submitters collide on.
func (g *TxnGenerator) hotKey() int64 {
	n := len(g.inserted)
	if n > 16 {
		n = 16
	}
	return g.inserted[g.rng.Intn(n)]
}

// Next returns the next transaction block.
func (g *TxnGenerator) Next() Query {
	g.id++
	var b strings.Builder
	b.WriteString("BEGIN; ")
	b.WriteString(g.insertSQL())
	b.WriteString("; ")
	stmts := 1
	if len(g.inserted) > 2 {
		fmt.Fprintf(&b, "UPDATE customer SET c_acctbal = c_acctbal + %d WHERE c_custkey = %d; ",
			1+g.rng.Intn(100), g.hotKey())
		stmts++
	}
	if len(g.inserted) > 8 && g.rng.Intn(4) == 0 {
		i := g.rng.Intn(len(g.inserted))
		fmt.Fprintf(&b, "DELETE FROM customer WHERE c_custkey = %d; ", g.inserted[i])
		g.inserted = append(g.inserted[:i], g.inserted[i+1:]...)
		stmts++
	}
	tmpl := fmt.Sprintf("txn_block_%d_commit", stmts)
	if g.rng.Intn(8) == 0 {
		b.WriteString("ROLLBACK")
		tmpl = fmt.Sprintf("txn_block_%d_rollback", stmts)
	} else {
		b.WriteString("COMMIT")
	}
	return Query{ID: g.id, SQL: b.String(), Family: FamilyTxn, Template: tmpl}
}

// Batch returns the next n transaction blocks.
func (g *TxnGenerator) Batch(n int) []Query {
	out := make([]Query, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
