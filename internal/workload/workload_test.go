package workload

import (
	"testing"

	"htapxplain/internal/sqlparser"
)

func TestBatchDeterministic(t *testing.T) {
	a := NewGenerator(7).Batch(40)
	b := NewGenerator(7).Batch(40)
	for i := range a {
		if a[i].SQL != b[i].SQL {
			t.Fatalf("query %d differs across identical seeds", i)
		}
	}
	c := NewGenerator(8).Batch(40)
	same := true
	for i := range a {
		if a[i].SQL != c[i].SQL {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different workloads")
	}
}

func TestAllTemplatesParse(t *testing.T) {
	for _, q := range NewTestGenerator(3).Batch(len(templateNames)*2 + len(rareTemplateNames)) {
		if _, err := sqlparser.Parse(q.SQL); err != nil {
			t.Errorf("template %s generates unparseable SQL: %v\n%s", q.Template, err, q.SQL)
		}
	}
}

func TestTemplatesCycleRoundRobin(t *testing.T) {
	g := NewGenerator(1)
	qs := g.Batch(len(templateNames) * 2)
	for i, q := range qs {
		want := templateNames[i%len(templateNames)]
		if q.Template != want {
			t.Fatalf("query %d template = %s, want %s", i, q.Template, want)
		}
		if q.ID != i {
			t.Fatalf("query %d ID = %d", i, q.ID)
		}
	}
}

func TestFamiliesTagged(t *testing.T) {
	for _, q := range NewGenerator(1).Batch(len(templateNames)) {
		switch q.Family {
		case FamilyJoin, FamilyTopN:
		default:
			t.Errorf("template %s has unknown family %q", q.Template, q.Family)
		}
	}
}

func TestCoreGeneratorExcludesRareTemplates(t *testing.T) {
	for _, q := range NewGenerator(1).Batch(3 * len(templateNames)) {
		for _, rare := range rareTemplateNames {
			if q.Template == rare {
				t.Fatalf("core generator emitted rare template %s", rare)
			}
		}
	}
}

func TestTestGeneratorIncludesRareTemplates(t *testing.T) {
	seen := map[string]bool{}
	for _, q := range NewTestGenerator(1).Batch(2*len(templateNames) + len(rareTemplateNames)) {
		seen[q.Template] = true
	}
	for _, rare := range rareTemplateNames {
		if !seen[rare] {
			t.Errorf("test generator never emitted %s", rare)
		}
	}
}

func TestPhoneCodesDistinctAndQuoted(t *testing.T) {
	g := NewGenerator(2)
	for i := 0; i < 30; i++ {
		q := g.generate("join3_phone_inlist")
		if _, err := sqlparser.Parse(q.SQL); err != nil {
			t.Fatalf("phone in-list query unparseable: %v", err)
		}
	}
}

func TestBatchOfSingleTemplate(t *testing.T) {
	qs := NewGenerator(42).BatchOf("join2_point_orders", 8)
	if len(qs) != 8 {
		t.Fatalf("got %d queries, want 8", len(qs))
	}
	sqls := map[string]bool{}
	for i, q := range qs {
		if q.Template != "join2_point_orders" {
			t.Errorf("query %d template = %q", i, q.Template)
		}
		if q.ID != i {
			t.Errorf("query %d has ID %d", i, q.ID)
		}
		if _, err := sqlparser.Parse(q.SQL); err != nil {
			t.Fatalf("unparseable: %v", err)
		}
		sqls[q.SQL] = true
	}
	if len(sqls) < 2 {
		t.Error("parameters were not randomized across the batch")
	}
}
