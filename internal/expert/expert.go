// Package expert is the reproduction's stand-in for the paper's human
// database experts (DESIGN.md documents the substitution). It has two
// roles: (1) an oracle that derives the ground-truth performance factors
// for a query from its plans, facts and modeled execution — producing the
// curated explanations stored in the knowledge base — and (2) a grader
// that assesses a generated explanation for correctness and completeness
// exactly along the paper's rubric (accurate / less precise / None).
package expert

import (
	"fmt"
	"strings"

	"htapxplain/internal/htap"
	"htapxplain/internal/optimizer"
	"htapxplain/internal/plan"
)

// Factor identifies one causal performance factor distinguishing the two
// engines on a query. Factors are the shared vocabulary between expert
// explanations, the simulated LLM, and the grader.
type Factor string

const (
	// FactorHashJoinAdvantage — AP's hash joins beat TP's nested loops on
	// large qualifying sets.
	FactorHashJoinAdvantage Factor = "hash-join-advantage"
	// FactorNoUsableIndex — a selective predicate cannot use any index
	// (function-wrapped column or no index exists), forcing TP to scan.
	FactorNoUsableIndex Factor = "no-usable-index"
	// FactorIndexPointLookup — TP answers with a few index point lookups.
	FactorIndexPointLookup Factor = "index-point-lookup"
	// FactorIndexOrderTopN — TP serves ORDER BY ... LIMIT directly from
	// index order, reading only ~LIMIT rows.
	FactorIndexOrderTopN Factor = "index-order-topn"
	// FactorColumnarScan — AP reads only the referenced columns of wide
	// tables.
	FactorColumnarScan Factor = "columnar-scan"
	// FactorLargeScanVolume — the qualifying data volume is large enough
	// that AP's parallel columnar scan dominates.
	FactorLargeScanVolume Factor = "large-scan-volume"
	// FactorStartupOverhead — the query is tiny; AP's distributed startup
	// dominates and TP wins.
	FactorStartupOverhead Factor = "startup-overhead"
	// FactorSortVsIndexOrder — AP must materialize and sort what TP reads
	// pre-sorted from an index.
	FactorSortVsIndexOrder Factor = "sort-vs-index-order"
	// FactorDeepOffset — a large OFFSET forces both engines to produce
	// and discard many rows, eroding Top-N shortcuts.
	FactorDeepOffset Factor = "deep-offset"
	// FactorAggregationPushdown — AP's hash aggregation digests large
	// intermediate results efficiently.
	FactorAggregationPushdown Factor = "aggregation-pushdown"
)

// markerPhrases are the canonical phrases whose presence in an explanation
// signals that it asserts the factor. Both the expert explanation writer
// and the grader use them, so grading measures substance, not phrasing
// luck.
var markerPhrases = map[Factor][]string{
	FactorHashJoinAdvantage:   {"hash join", "nested loop"},
	FactorNoUsableIndex:       {"no index", "cannot use", "index cannot be used", "without an index", "disables index"},
	FactorIndexPointLookup:    {"point lookup", "index lookup", "directly locates"},
	FactorIndexOrderTopN:      {"index order", "already sorted", "pre-sorted"},
	FactorColumnarScan:        {"column-oriented", "columnar", "only the referenced columns", "only relevant columns"},
	FactorLargeScanVolume:     {"large", "millions of rows", "data volume"},
	FactorStartupOverhead:     {"startup", "launch overhead", "small query"},
	FactorSortVsIndexOrder:    {"must sort", "full sort", "sort the entire"},
	FactorDeepOffset:          {"offset", "discard"},
	FactorAggregationPushdown: {"hash aggregate", "aggregation", "aggregates"},
}

// MarkerPhrases returns the canonical phrases for a factor (read-only).
func MarkerPhrases(f Factor) []string { return markerPhrases[f] }

// Truth is the oracle's ground-truth judgment for one executed query.
type Truth struct {
	Winner plan.Engine
	// Primary is the dominant causal factor; Secondary are contributing
	// factors a complete explanation may also mention.
	Primary   Factor
	Secondary []Factor
	// NoIndexUsable marks that TP had no usable index for the selective
	// predicate — used to flag false index claims in generated text.
	NoIndexUsable bool
	// FuncWrappedColumn is the indexed-but-unusable column name, if any.
	FuncWrappedColumn string
	Speedup           float64
}

// AllFactors returns primary plus secondary factors.
func (t Truth) AllFactors() []Factor {
	return append([]Factor{t.Primary}, t.Secondary...)
}

// Oracle derives ground truth and writes expert explanations.
type Oracle struct {
	sys *htap.System
}

// NewOracle returns an oracle bound to the HTAP system.
func NewOracle(sys *htap.System) *Oracle { return &Oracle{sys: sys} }

// Judge derives the ground-truth factors for an executed query.
func (o *Oracle) Judge(res *htap.Result) (Truth, error) {
	facts, err := optimizer.Facts(o.sys.Cat, res.SQL)
	if err != nil {
		return Truth{}, fmt.Errorf("expert: analyzing query: %w", err)
	}
	return judge(res, facts), nil
}

// judge is the pure rule set (unit-testable without a system).
func judge(res *htap.Result, facts *optimizer.QueryFacts) Truth {
	tpSum := plan.Summarize(res.Pair.TP)
	t := Truth{Winner: res.Winner, Speedup: speedup(res)}

	// index usability facts
	selectiveNoIndex := false
	for _, tf := range facts.Tables {
		if tf.FuncWrappedIndexedColumn != "" {
			t.FuncWrappedColumn = tf.FuncWrappedIndexedColumn
			selectiveNoIndex = true
		}
		if tf.HasPredicate && tf.SargableIndexColumn == "" && tf.FilterSel < 0.5 {
			selectiveNoIndex = true
		}
	}
	t.NoIndexUsable = selectiveNoIndex

	if res.Winner == plan.AP {
		switch {
		case tpSum.Joins() > 0:
			t.Primary = FactorHashJoinAdvantage
			if selectiveNoIndex {
				t.Secondary = append(t.Secondary, FactorNoUsableIndex)
			}
			if facts.HasAggregate || facts.HasGroupBy {
				t.Secondary = append(t.Secondary, FactorAggregationPushdown)
			}
			t.Secondary = append(t.Secondary, FactorColumnarScan)
		case facts.HasOrderBy && tpSum.Sorts+tpSum.TopNs > 0 && !tpSum.UsesIndex:
			t.Primary = FactorLargeScanVolume
			t.Secondary = append(t.Secondary, FactorColumnarScan)
			if facts.HasOrderBy {
				t.Secondary = append(t.Secondary, FactorSortVsIndexOrder)
			}
		case facts.HasAggregate || facts.HasGroupBy:
			// no joins: the dominant cause is the big parallel columnar
			// scan; the aggregation itself is a contributing factor
			if facts.EstScannedRows > 500_000 {
				t.Primary = FactorLargeScanVolume
				t.Secondary = append(t.Secondary, FactorAggregationPushdown, FactorColumnarScan)
			} else {
				t.Primary = FactorAggregationPushdown
				t.Secondary = append(t.Secondary, FactorColumnarScan, FactorLargeScanVolume)
			}
			if selectiveNoIndex {
				t.Secondary = append(t.Secondary, FactorNoUsableIndex)
			}
		default:
			t.Primary = FactorLargeScanVolume
			t.Secondary = append(t.Secondary, FactorColumnarScan)
		}
		if facts.Offset > 100 {
			t.Secondary = append(t.Secondary, FactorDeepOffset)
		}
		return t
	}

	// TP wins
	switch {
	case facts.OrderByIndexedColumn != "" && facts.Limit >= 0:
		t.Primary = FactorIndexOrderTopN
		t.Secondary = append(t.Secondary, FactorSortVsIndexOrder)
		if facts.Offset > 100 {
			t.Secondary = append(t.Secondary, FactorDeepOffset)
		}
	case tpSum.IndexScans > 0 || tpSum.IndexLookups > 0:
		t.Primary = FactorIndexPointLookup
		t.Secondary = append(t.Secondary, FactorStartupOverhead)
	default:
		t.Primary = FactorStartupOverhead
	}
	return t
}

func speedup(res *htap.Result) float64 {
	slow, fast := res.TPTime, res.APTime
	if res.Winner == plan.TP {
		slow, fast = res.APTime, res.TPTime
	}
	if fast <= 0 {
		return 1
	}
	return float64(slow) / float64(fast)
}

// Explain writes the expert-curated explanation for a judged query — the
// text stored in the knowledge base. It composes the canonical factor
// sentences (using the marker phrases) in a compact expert register, like
// the paper's Table III expert explanation.
func (o *Oracle) Explain(truth Truth) string {
	return ComposeExpert(truth)
}

// ComposeExpert renders an expert explanation from ground truth.
func ComposeExpert(truth Truth) string {
	w, l := "AP", "TP"
	if truth.Winner == plan.TP {
		w, l = "TP", "AP"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s is faster than %s because ", w, l)
	b.WriteString(factorSentence(truth.Primary, truth.Winner, truth.FuncWrappedColumn))
	for _, f := range truth.Secondary {
		b.WriteString(" Also, ")
		b.WriteString(factorSentence(f, truth.Winner, truth.FuncWrappedColumn))
	}
	return b.String()
}

// factorSentence renders one factor as an expert sentence containing its
// marker phrases.
func factorSentence(f Factor, winner plan.Engine, funcCol string) string {
	switch f {
	case FactorHashJoinAdvantage:
		return "TP has to use nested loop joins while AP uses hash join, which is far more efficient on large qualifying sets."
	case FactorNoUsableIndex:
		if funcCol != "" {
			return fmt.Sprintf("the selective predicate wraps %s in a function, which disables index usage, so there is no index TP can use for it.", funcCol)
		}
		return "there is no index available for the selective predicate, so TP cannot use an index and must scan."
	case FactorIndexPointLookup:
		return "TP answers with a handful of index lookups (point lookup via the primary key) that directly locates the rows."
	case FactorIndexOrderTopN:
		return "TP reads rows in index order, so the result is already sorted and only about LIMIT rows are fetched."
	case FactorColumnarScan:
		return "AP's column-oriented storage scans only the referenced columns, avoiding full-row reads."
	case FactorLargeScanVolume:
		return "the qualifying data volume is large (millions of rows), which AP's parallel columnar scan digests far faster."
	case FactorStartupOverhead:
		return "the query touches very little data, so AP's distributed startup overhead dominates while TP returns immediately (small query)."
	case FactorSortVsIndexOrder:
		return "AP must sort the entire qualifying set (full sort) where TP avoids sorting."
	case FactorDeepOffset:
		return "the large OFFSET forces the engine to produce and discard many rows before the first result."
	case FactorAggregationPushdown:
		return "AP's hash aggregates digest the large intermediate result efficiently (aggregation close to the scan)."
	default:
		return string(f) + "."
	}
}
