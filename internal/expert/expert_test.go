package expert

import (
	"strings"
	"testing"

	"htapxplain/internal/htap"
	"htapxplain/internal/plan"
)

func testSystem(t *testing.T) (*htap.System, *Oracle) {
	t.Helper()
	sys, err := htap.New(htap.DefaultConfig())
	if err != nil {
		t.Fatalf("htap.New: %v", err)
	}
	return sys, NewOracle(sys)
}

func judgeSQL(t *testing.T, sys *htap.System, o *Oracle, sql string) Truth {
	t.Helper()
	res, err := sys.Run(sql)
	if err != nil {
		t.Fatalf("Run(%q): %v", sql, err)
	}
	truth, err := o.Judge(res)
	if err != nil {
		t.Fatalf("Judge: %v", err)
	}
	return truth
}

func TestJudgeExample1(t *testing.T) {
	sys, o := testSystem(t)
	truth := judgeSQL(t, sys, o, htap.Example1SQL)
	if truth.Winner != plan.AP {
		t.Fatalf("winner = %v", truth.Winner)
	}
	if truth.Primary != FactorHashJoinAdvantage {
		t.Errorf("primary = %v, want hash-join-advantage", truth.Primary)
	}
	if !truth.NoIndexUsable {
		t.Error("SUBSTRING predicate means no usable index")
	}
	if truth.Speedup < 2 {
		t.Errorf("speedup = %v", truth.Speedup)
	}
	found := false
	for _, f := range truth.Secondary {
		if f == FactorNoUsableIndex {
			found = true
		}
	}
	if !found {
		t.Errorf("no-usable-index missing from secondary: %v", truth.Secondary)
	}
}

func TestJudgePointLookup(t *testing.T) {
	sys, o := testSystem(t)
	truth := judgeSQL(t, sys, o, "SELECT o_totalprice FROM orders WHERE o_orderkey = 7")
	if truth.Winner != plan.TP {
		t.Fatalf("winner = %v", truth.Winner)
	}
	if truth.Primary != FactorIndexPointLookup {
		t.Errorf("primary = %v, want index-point-lookup", truth.Primary)
	}
}

func TestJudgeIndexOrderTopN(t *testing.T) {
	sys, o := testSystem(t)
	truth := judgeSQL(t, sys, o, "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 5")
	if truth.Winner != plan.TP || truth.Primary != FactorIndexOrderTopN {
		t.Errorf("truth = %+v", truth)
	}
}

func TestJudgeBigAggregation(t *testing.T) {
	sys, o := testSystem(t)
	truth := judgeSQL(t, sys, o, "SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag")
	if truth.Winner != plan.AP {
		t.Fatalf("winner = %v", truth.Winner)
	}
	if truth.Primary != FactorLargeScanVolume && truth.Primary != FactorAggregationPushdown {
		t.Errorf("primary = %v", truth.Primary)
	}
}

func TestComposeExpertContainsMarkers(t *testing.T) {
	truth := Truth{
		Winner:  plan.AP,
		Primary: FactorHashJoinAdvantage,
		Secondary: []Factor{
			FactorNoUsableIndex, FactorColumnarScan,
		},
		NoIndexUsable: true,
	}
	text := ComposeExpert(truth)
	lower := strings.ToLower(text)
	if !strings.Contains(lower, "ap is faster") {
		t.Errorf("missing winner claim: %q", text)
	}
	for _, f := range truth.AllFactors() {
		matched := false
		for _, m := range MarkerPhrases(f) {
			if strings.Contains(lower, m) {
				matched = true
			}
		}
		if !matched {
			t.Errorf("expert text misses markers for %v: %q", f, text)
		}
	}
}

func TestAllFactorsHaveMarkersAndSentences(t *testing.T) {
	factors := []Factor{
		FactorHashJoinAdvantage, FactorNoUsableIndex, FactorIndexPointLookup,
		FactorIndexOrderTopN, FactorColumnarScan, FactorLargeScanVolume,
		FactorStartupOverhead, FactorSortVsIndexOrder, FactorDeepOffset,
		FactorAggregationPushdown,
	}
	for _, f := range factors {
		if len(MarkerPhrases(f)) == 0 {
			t.Errorf("factor %v has no marker phrases", f)
		}
		sentence := factorSentence(f, plan.AP, "c_phone")
		matched := false
		for _, m := range MarkerPhrases(f) {
			if strings.Contains(strings.ToLower(sentence), m) {
				matched = true
			}
		}
		if !matched {
			t.Errorf("factor sentence for %v does not contain its own markers: %q", f, sentence)
		}
	}
}

func TestGradeAccurate(t *testing.T) {
	truth := Truth{Winner: plan.AP, Primary: FactorHashJoinAdvantage}
	text := "AP is faster because it uses a hash join while TP uses a nested loop."
	g := GradeExplanation(text, truth)
	if g.Verdict != VerdictAccurate || !g.MentionsPrimary || !g.CorrectWinner {
		t.Errorf("grade = %+v", g)
	}
}

func TestGradeNone(t *testing.T) {
	for _, text := range []string{"None", "none", " None.  ", ""} {
		if g := GradeExplanation(text, Truth{}); g.Verdict != VerdictNone {
			t.Errorf("GradeExplanation(%q) = %v, want none", text, g.Verdict)
		}
	}
}

func TestGradeMissingPrimaryIsLessPrecise(t *testing.T) {
	truth := Truth{Winner: plan.AP, Primary: FactorHashJoinAdvantage}
	text := "AP is faster because column-oriented storage reads fewer bytes."
	g := GradeExplanation(text, truth)
	if g.Verdict != VerdictLessPrecise {
		t.Errorf("grade = %v, want less-precise", g.Verdict)
	}
}

func TestGradeWrongWinnerIsFalseClaim(t *testing.T) {
	truth := Truth{Winner: plan.AP, Primary: FactorColumnarScan}
	text := "TP is faster because its columnar engine... wait, column-oriented storage helps."
	g := GradeExplanation(text, truth)
	if len(g.FalseClaims) == 0 {
		t.Errorf("wrong winner not flagged: %+v", g)
	}
	if g.Verdict == VerdictAccurate {
		t.Error("wrong winner cannot be accurate")
	}
}

func TestGradeCostComparisonIsFalseClaim(t *testing.T) {
	truth := Truth{Winner: plan.AP, Primary: FactorColumnarScan}
	text := "AP is faster; its column-oriented storage helps, and comparing the costs shows AP's plan is cheaper."
	g := GradeExplanation(text, truth)
	if len(g.FalseClaims) == 0 {
		t.Error("cost comparison not flagged")
	}
}

func TestGradeIndexMisattributionOnlyWhenNoIndexUsable(t *testing.T) {
	text := "AP is faster with column-oriented storage; both engines benefit from the index."
	withNoIndex := GradeExplanation(text, Truth{Winner: plan.AP, Primary: FactorColumnarScan, NoIndexUsable: true})
	if len(withNoIndex.FalseClaims) == 0 {
		t.Error("index claim should be flagged when no index is usable")
	}
	withIndex := GradeExplanation(text, Truth{Winner: plan.AP, Primary: FactorColumnarScan, NoIndexUsable: false})
	if len(withIndex.FalseClaims) != 0 {
		t.Errorf("index claim should be fine when an index is usable: %v", withIndex.FalseClaims)
	}
}

func TestGradeCountsSecondaryHits(t *testing.T) {
	truth := Truth{Winner: plan.AP, Primary: FactorHashJoinAdvantage,
		Secondary: []Factor{FactorColumnarScan, FactorLargeScanVolume}}
	text := "AP is faster: hash join beats nested loop; columnar storage reads only needed columns; the data volume is large."
	g := GradeExplanation(text, truth)
	if g.SecondaryHits != 2 {
		t.Errorf("secondary hits = %d, want 2", g.SecondaryHits)
	}
}

func TestVerdictStrings(t *testing.T) {
	if VerdictAccurate.String() != "accurate" || VerdictLessPrecise.String() != "less-precise" || VerdictNone.String() != "none" {
		t.Error("verdict strings wrong")
	}
}

func TestExpertExplanationGradesAccurateAgainstItself(t *testing.T) {
	// self-consistency: the oracle's own explanation must grade accurate
	sys, o := testSystem(t)
	for _, sql := range []string{
		htap.Example1SQL,
		"SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 5",
		"SELECT o_totalprice FROM orders WHERE o_orderkey = 7",
		"SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag",
	} {
		truth := judgeSQL(t, sys, o, sql)
		text := o.Explain(truth)
		if g := GradeExplanation(text, truth); g.Verdict != VerdictAccurate {
			t.Errorf("expert text graded %v for %q:\n%s\nfalse claims: %v",
				g.Verdict, sql, text, g.FalseClaims)
		}
	}
}
