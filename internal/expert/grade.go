package expert

import (
	"strings"

	"htapxplain/internal/plan"
)

// Verdict is the grader's assessment category, matching the paper's rubric
// (§VI-B: "accurate and informative" / "less precise" / None).
type Verdict int

const (
	// VerdictAccurate — correct winner, mentions the dominant factor, no
	// false claims.
	VerdictAccurate Verdict = iota
	// VerdictLessPrecise — not wrong enough to mislead, but misses the
	// dominant factor or contains a false claim.
	VerdictLessPrecise
	// VerdictNone — the system declined to answer (returned None).
	VerdictNone
)

func (v Verdict) String() string {
	switch v {
	case VerdictAccurate:
		return "accurate"
	case VerdictLessPrecise:
		return "less-precise"
	default:
		return "none"
	}
}

// Grade is a full grading result with diagnostics.
type Grade struct {
	Verdict Verdict
	// MentionsPrimary reports whether the dominant factor's marker
	// phrases appear.
	MentionsPrimary bool
	// CorrectWinner reports whether the text names the right engine as
	// faster.
	CorrectWinner bool
	// FalseClaims lists detected incorrect assertions.
	FalseClaims []string
	// SecondaryHits counts how many secondary factors are mentioned
	// (completeness signal).
	SecondaryHits int
}

// GradeExplanation grades a generated explanation against ground truth.
func GradeExplanation(text string, truth Truth) Grade {
	trimmed := strings.TrimSpace(text)
	if trimmed == "" || strings.EqualFold(trimmed, "none") || strings.EqualFold(trimmed, "none.") {
		return Grade{Verdict: VerdictNone}
	}
	lower := strings.ToLower(text)
	g := Grade{
		MentionsPrimary: mentionsFactor(lower, truth.Primary),
		CorrectWinner:   claimsWinner(lower, truth.Winner),
	}
	for _, f := range truth.Secondary {
		if mentionsFactor(lower, f) {
			g.SecondaryHits++
		}
	}
	g.FalseClaims = detectFalseClaims(lower, truth)
	switch {
	case g.CorrectWinner && g.MentionsPrimary && len(g.FalseClaims) == 0:
		g.Verdict = VerdictAccurate
	default:
		g.Verdict = VerdictLessPrecise
	}
	return g
}

// mentionsFactor reports whether any marker phrase of f appears in the
// lower-cased text.
func mentionsFactor(lower string, f Factor) bool {
	for _, phrase := range markerPhrases[f] {
		if strings.Contains(lower, phrase) {
			return true
		}
	}
	return false
}

// claimsWinner reports whether the text asserts the given engine is
// faster. The canonical generation templates always lead with
// "<engine> is faster"; we also accept "<loser> is slower".
func claimsWinner(lower string, w plan.Engine) bool {
	win, lose := "ap", "tp"
	if w == plan.TP {
		win, lose = "tp", "ap"
	}
	if strings.Contains(lower, win+" is faster") || strings.Contains(lower, win+" performs better") ||
		strings.Contains(lower, win+" engine is faster") || strings.Contains(lower, win+"'s plan is faster") {
		return true
	}
	return strings.Contains(lower, lose+" is slower") || strings.Contains(lower, lose+" engine is slower")
}

// costComparisonPhrases flag the forbidden cross-engine cost-estimate
// comparison (§V: "you are not allowed to compare the cost estimates").
var costComparisonPhrases = []string{
	"lower cost estimate", "cheaper cost", "cost estimate is lower",
	"comparing the costs", "based on the plan costs", "lower total cost",
	"higher total cost", "cost of the tp plan", "cost of the ap plan",
}

// falseIndexPhrases assert index benefit.
var falseIndexPhrases = []string{
	"benefit from the index", "benefits from the index", "thanks to the index",
	"uses the index on", "exploits the index", "index speeds up",
}

// detectFalseClaims finds assertions contradicted by ground truth.
func detectFalseClaims(lower string, truth Truth) []string {
	var out []string
	for _, p := range costComparisonPhrases {
		if strings.Contains(lower, p) {
			out = append(out, "compares non-comparable cost estimates: "+p)
			break
		}
	}
	if truth.NoIndexUsable {
		for _, p := range falseIndexPhrases {
			if strings.Contains(lower, p) {
				out = append(out, "claims index benefit where no index is usable: "+p)
				break
			}
		}
	}
	// claiming the wrong engine is faster is the gravest error
	wrong := "tp is faster"
	if truth.Winner == plan.TP {
		wrong = "ap is faster"
	}
	if strings.Contains(lower, wrong) {
		out = append(out, "asserts the wrong winner")
	}
	return out
}
