package exec

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"htapxplain/internal/catalog"
	"htapxplain/internal/sqlparser"
	"htapxplain/internal/value"
)

func exchangeSchema() Schema {
	return Schema{
		{Binding: "t", Name: "k", Type: catalog.TypeInt},
		{Binding: "t", Name: "v", Type: catalog.TypeFloat},
	}
}

func kvRow(k int64, v float64) value.Row {
	return value.Row{value.NewInt(k), value.NewFloat(v)}
}

func multiset(rows []value.Row) map[string]int {
	out := make(map[string]int, len(rows))
	for _, r := range rows {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.Key())
			b.WriteByte('|')
		}
		out[b.String()]++
	}
	return out
}

// TestGatherStreamsAllProducers: a gather fed by concurrent producers must
// deliver exactly the union of their rows and count the exchange traffic.
func TestGatherStreamsAllProducers(t *testing.T) {
	const producers, perProducer = 4, 2500
	g := NewGather(exchangeSchema(), producers)
	var want []value.Row
	for p := 0; p < producers; p++ {
		for i := 0; i < perProducer; i++ {
			want = append(want, kvRow(int64(p*perProducer+i), float64(i)))
		}
	}
	var wg sync.WaitGroup
	for p, prod := range g.Producers() {
		wg.Add(1)
		go func(p int, prod *GatherProducer) {
			defer wg.Done()
			rows := want[p*perProducer : (p+1)*perProducer]
			// uneven slabs exercise the re-chunking path
			for len(rows) > 0 {
				n := 700
				if n > len(rows) {
					n = len(rows)
				}
				if !prod.Send(rows[:n]) {
					t.Error("Send reported closed stream")
					return
				}
				rows = rows[n:]
			}
			prod.Close(nil)
		}(p, prod)
	}
	ctx := NewContext()
	got, err := DrainOnce(g, ctx)
	wg.Wait()
	if err != nil {
		t.Fatalf("DrainOnce: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("gathered %d rows, want %d", len(got), len(want))
	}
	wm, gm := multiset(want), multiset(got)
	for k, n := range wm {
		if gm[k] != n {
			t.Fatalf("multiset mismatch at %q: got %d want %d", k, gm[k], n)
		}
	}
	if ctx.Stats.ExchangeRows != int64(len(want)) {
		t.Errorf("ExchangeRows = %d, want %d", ctx.Stats.ExchangeRows, len(want))
	}
	if ctx.Stats.ExchangeBatches == 0 {
		t.Error("ExchangeBatches not counted")
	}
}

// TestGatherPropagatesProducerError: the first producer error must fail
// the stream.
func TestGatherPropagatesProducerError(t *testing.T) {
	g := NewGather(exchangeSchema(), 2)
	boom := errors.New("fragment failed")
	prods := g.Producers()
	prods[0].Send([]value.Row{kvRow(1, 1)})
	prods[0].Close(nil)
	prods[1].Close(boom)
	if _, err := DrainOnce(g, NewContext()); !errors.Is(err, boom) {
		t.Fatalf("DrainOnce err = %v, want %v", err, boom)
	}
}

// TestGatherCloseUnblocksProducers: closing an abandoned gather must
// unblock producers stuck on a full channel (no scatter deadlock).
func TestGatherCloseUnblocksProducers(t *testing.T) {
	g := NewGather(exchangeSchema(), 1)
	prod := g.Producers()[0]
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			if !prod.Send([]value.Row{kvRow(int64(i), 0)}) {
				return // consumer went away — expected
			}
		}
	}()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
}

// TestShuffleRoutesByKey: every row must land on exactly the destination
// its route function names, regardless of sending order.
func TestShuffleRoutesByKey(t *testing.T) {
	const n, dests = 5000, 3
	var rows []value.Row
	for i := 0; i < n; i++ {
		rows = append(rows, kvRow(int64(i), float64(i)))
	}
	var em rowEmitter
	em.reset(rows, 2)
	src := &memSource{emit: &em, out: exchangeSchema()}

	bufs := make([]*RowBuffer, dests)
	sinks := make([]RowSink, dests)
	for i := range bufs {
		bufs[i] = &RowBuffer{}
		sinks[i] = bufs[i]
	}
	sh := &Shuffle{
		Route: func(r value.Row) (int, error) { return int(r[0].I % dests), nil },
		Dests: sinks,
	}
	ctx := NewContext()
	if err := sh.Run(ctx, src); err != nil {
		t.Fatalf("Shuffle.Run: %v", err)
	}
	total := 0
	for d, buf := range bufs {
		total += len(buf.Rows)
		for _, r := range buf.Rows {
			if int(r[0].I%dests) != d {
				t.Fatalf("row k=%d landed on destination %d", r[0].I, d)
			}
		}
	}
	if total != n {
		t.Fatalf("shuffled %d rows, want %d", total, n)
	}
	if ctx.Stats.ExchangeRows != int64(n) {
		t.Errorf("ExchangeRows = %d, want %d", ctx.Stats.ExchangeRows, n)
	}
}

// TestBroadcastReplicates: every destination receives every row.
func TestBroadcastReplicates(t *testing.T) {
	const n, dests = 1200, 4
	var rows []value.Row
	for i := 0; i < n; i++ {
		rows = append(rows, kvRow(int64(i), float64(i)))
	}
	var em rowEmitter
	em.reset(rows, 2)
	src := &memSource{emit: &em, out: exchangeSchema()}
	bufs := make([]*RowBuffer, dests)
	sinks := make([]RowSink, dests)
	for i := range bufs {
		bufs[i] = &RowBuffer{}
		sinks[i] = bufs[i]
	}
	ctx := NewContext()
	if err := (&Broadcast{Dests: sinks}).Run(ctx, src); err != nil {
		t.Fatalf("Broadcast.Run: %v", err)
	}
	for d, buf := range bufs {
		if len(buf.Rows) != n {
			t.Fatalf("destination %d got %d rows, want %d", d, len(buf.Rows), n)
		}
	}
	if ctx.Stats.ExchangeRows != int64(n*dests) {
		t.Errorf("ExchangeRows = %d, want %d", ctx.Stats.ExchangeRows, n*dests)
	}
}

// memSource streams a fixed row slice — a minimal BatchOperator leaf for
// exchange tests.
type memSource struct {
	emit *rowEmitter
	out  Schema
}

func (m *memSource) Schema() Schema          { return m.out }
func (m *memSource) Clone() BatchOperator    { return m }
func (m *memSource) Open(ctx *Context) error { return nil }
func (m *memSource) Close() error            { return nil }
func (m *memSource) Next(ctx *Context) (*Batch, error) {
	return m.emit.next(ctx), nil
}

// TestPartialMergeAggreesWithSerial: splitting an aggregation into
// Partial-mode fragments merged by a Merge-mode aggregate must reproduce
// the single-operator result exactly — including NULL handling, empty
// fragments and the empty-input global row.
func TestPartialMergeAgreesWithSerial(t *testing.T) {
	schema := exchangeSchema()
	aggs := []AggSpec{
		{Func: sqlparser.AggCount, Arg: nil, ArgCol: -1},
		{Func: sqlparser.AggSum, Arg: colEval(1), ArgCol: 1},
		{Func: sqlparser.AggAvg, Arg: colEval(1), ArgCol: 1},
		{Func: sqlparser.AggMin, Arg: colEval(1), ArgCol: 1},
		{Func: sqlparser.AggMax, Arg: colEval(1), ArgCol: 1},
	}
	finalOut := Schema{{Name: "k", Type: catalog.TypeInt},
		{Name: "count", Type: catalog.TypeInt}, {Name: "sum", Type: catalog.TypeFloat},
		{Name: "avg", Type: catalog.TypeFloat}, {Name: "min", Type: catalog.TypeFloat},
		{Name: "max", Type: catalog.TypeFloat}}
	partialOut := Schema{{Name: "k", Type: catalog.TypeInt}}
	for i := 0; i < len(aggs); i++ {
		partialOut = append(partialOut,
			Col{Name: fmt.Sprintf("p%d_state", i)}, Col{Name: fmt.Sprintf("p%d_count", i)})
	}

	var all []value.Row
	frags := make([][]value.Row, 3)
	for i := 0; i < 4000; i++ {
		r := kvRow(int64(i%7), float64(i%101)-50)
		if i%13 == 0 {
			r[1] = value.Null // NULL aggregation inputs
		}
		all = append(all, r)
		frags[i%2] = append(frags[i%2], r) // fragment 2 stays empty
	}

	serial := func(rows []value.Row, groups []Evaluator, partial bool, merge bool, out Schema, in Schema) []value.Row {
		var em rowEmitter
		em.reset(rows, len(in))
		ha := &HashAggregate{
			Child: &memSource{emit: &em, out: in}, Groups: groups, Aggs: aggs,
			Out: out, Partial: partial, Merge: merge,
		}
		got, err := DrainOnce(ha, NewContext())
		if err != nil {
			t.Fatalf("aggregate: %v", err)
		}
		return got
	}
	groupBy := []Evaluator{colEval(0)}

	want := serial(all, groupBy, false, false, finalOut, schema)

	var partials []value.Row
	for _, frag := range frags {
		partials = append(partials, serial(frag, groupBy, true, false, partialOut, schema)...)
	}
	got := serial(partials, []Evaluator{colEval(0)}, false, true, finalOut, partialOut)

	sortRows := func(rs []value.Row) {
		sort.Slice(rs, func(i, j int) bool { return rs[i][0].Compare(rs[j][0]) < 0 })
	}
	sortRows(want)
	sortRows(got)
	if len(got) != len(want) {
		t.Fatalf("merged %d groups, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if want[i][j].Compare(got[i][j]) != 0 {
				t.Fatalf("group %d col %d: got %s want %s", i, j, got[i][j], want[i][j])
			}
		}
	}

	// global aggregate over an empty input still yields one (all-empty) row
	// through the partial/merge split
	wantEmpty := serial(nil, nil, false, false, finalOut[1:], schema)
	gotEmpty := serial(serial(nil, nil, true, false, partialOut[1:], schema),
		nil, false, true, finalOut[1:], partialOut[1:])
	if len(wantEmpty) != 1 || len(gotEmpty) != 1 {
		t.Fatalf("empty-input global agg rows: want 1/1, got %d/%d", len(wantEmpty), len(gotEmpty))
	}
	for j := range wantEmpty[0] {
		if wantEmpty[0][j].Compare(gotEmpty[0][j]) != 0 {
			t.Fatalf("empty-input col %d: got %s want %s", j, gotEmpty[0][j], wantEmpty[0][j])
		}
	}
}

func colEval(i int) Evaluator {
	return func(r value.Row) (value.Value, error) { return r[i], nil }
}
