package exec

import (
	"strings"
	"sync"
	"testing"

	"htapxplain/internal/colstore"
	"htapxplain/internal/sqlparser"
)

// TestInstrumentedPipelineMatchesPlain: wrapping a filter+scan pipeline
// for EXPLAIN ANALYZE must not change its output, and the profile must
// account for every row and batch that flowed.
func TestInstrumentedPipelineMatchesPlain(t *testing.T) {
	tbl := parallelFixture(t, 4*colstore.ChunkSize+13)
	mk := func() BatchOperator {
		scan := NewColTableScan(tbl, "p", []int{0, 1, 2}, nil, nil)
		return &FilterOp{Child: scan, Pred: parallelPred(t, scan.Schema(), "v", sqlparser.OpLt, 9)}
	}
	plain, err := Drain(mk(), NewContext())
	if err != nil {
		t.Fatal(err)
	}
	root, prof := Instrument(mk())
	instrumented, err := Drain(root, NewContext())
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, plain, instrumented)

	s := prof.Snapshot()
	if s.Name != "Filter" || len(s.Children) != 1 || !strings.HasPrefix(s.Children[0].Name, "Column Scan") {
		t.Fatalf("profile shape wrong: %s", s)
	}
	if s.Rows != int64(len(plain)) {
		t.Errorf("filter profile rows = %d, want %d", s.Rows, len(plain))
	}
	scan := s.Children[0]
	if scan.Morsels <= 0 || scan.ChunksScanned <= 0 {
		t.Errorf("scan profile morsels=%d chunks=%d, want both > 0", scan.Morsels, scan.ChunksScanned)
	}
	if scan.Rows < s.Rows {
		t.Errorf("scan emitted %d rows < filter's %d", scan.Rows, s.Rows)
	}
	out := s.String()
	for _, want := range []string{"Filter", "Column Scan on p", "rows=", "morsels="} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered profile missing %q:\n%s", want, out)
		}
	}
}

// TestInstrumentedParallelForkSharesProfile: an instrumented DOP-4 plan
// must fork like a plain one (same rows, same morsel accounting) with all
// worker clones recording into the one profile.
func TestInstrumentedParallelForkSharesProfile(t *testing.T) {
	tbl := parallelFixture(t, 10*colstore.ChunkSize+77)
	mk := func() BatchOperator {
		scan := NewColTableScan(tbl, "p", []int{0, 1, 2}, nil, nil)
		return &FilterOp{Child: scan, Pred: parallelPred(t, scan.Schema(), "v", sqlparser.OpLt, 9)}
	}
	serial, err := Drain(mk(), NewContext())
	if err != nil {
		t.Fatal(err)
	}
	root, prof := Instrument(mk())
	ctx := NewContext()
	ctx.DOP = 4
	parallel, err := Drain(root, ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, serial, parallel)
	if ctx.Stats.ParallelWorkers != 4 {
		t.Fatalf("ParallelWorkers = %d, want 4 (instrumentation broke forking)", ctx.Stats.ParallelWorkers)
	}
	s := prof.Snapshot()
	scan := s.Children[0]
	if scan.Workers != 4 {
		t.Errorf("scan profile workers = %d, want 4", scan.Workers)
	}
	if scan.Morsels != ctx.Stats.MorselsDispatched {
		t.Errorf("profile morsels %d != ctx morsels %d", scan.Morsels, ctx.Stats.MorselsDispatched)
	}
	if s.Rows != int64(len(serial)) {
		t.Errorf("filter profile rows = %d across workers, want %d", s.Rows, len(serial))
	}
}

// TestStatsQuietAfterParallelLimitCancel is the race-detector regression
// for the Stats-merge invariant: a shared limit budget cancels the fork
// scope mid-scan, sibling workers unwind asynchronously, and runForked
// must still merge every worker's counters before Drain returns — a plain
// (non-atomic) read of ctx.Stats right after Drain must be quiet under
// -race even while the early termination is racing chunk boundaries.
// Concurrent drains over the same table make the cancel timing vary.
func TestStatsQuietAfterParallelLimitCancel(t *testing.T) {
	const chunks = 32
	tbl := parallelFixture(t, chunks*colstore.ChunkSize)
	const drains = 24
	var wg sync.WaitGroup
	wg.Add(drains)
	for i := 0; i < drains; i++ {
		go func(n int64) {
			defer wg.Done()
			scan := NewColTableScan(tbl, "p", []int{0}, nil, nil)
			ctx := NewContext()
			ctx.DOP = 4
			rows, err := Drain(&LimitOp{Child: scan, N: n}, ctx)
			if err != nil {
				t.Error(err)
				return
			}
			if int64(len(rows)) != n {
				t.Errorf("limit %d emitted %d rows", n, len(rows))
			}
			// plain reads of every merged counter: the -race payload
			total := ctx.Stats.RowsScanned + ctx.Stats.MorselsDispatched +
				ctx.Stats.ChunksScanned + ctx.Stats.BatchesProduced + ctx.Stats.ParallelWorkers
			if total <= 0 {
				t.Errorf("no stats merged after cancelled drain: %+v", ctx.Stats)
			}
			if ctx.Stats.MorselsDispatched >= chunks {
				t.Errorf("limit %d did not terminate early: %d morsels of %d",
					n, ctx.Stats.MorselsDispatched, chunks)
			}
		}(int64(1 + i%7))
	}
	wg.Wait()
}
