package exec

import (
	"strings"
	"testing"

	"htapxplain/internal/sqlparser"
)

// Resolve's error messages must render the column reference readably (a
// *ColumnRef under %q used to print as fmt noise like `%!q(...)`).
func TestResolveAmbiguousColumnMessage(t *testing.T) {
	s := Schema{intCol("t1", "a"), intCol("t2", "a")}
	_, err := s.Resolve(&sqlparser.ColumnRef{Column: "a"})
	if err == nil {
		t.Fatal("expected ambiguity error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "ambiguous column a") {
		t.Errorf("unreadable ambiguity message: %q", msg)
	}
	if strings.Contains(msg, "%!") {
		t.Errorf("fmt verb noise in message: %q", msg)
	}
}

func TestResolveUnknownColumnMessage(t *testing.T) {
	s := Schema{intCol("t1", "a")}
	_, err := s.Resolve(&sqlparser.ColumnRef{Table: "t9", Column: "zz"})
	if err == nil {
		t.Fatal("expected unknown-column error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "unknown column t9.zz") {
		t.Errorf("unreadable unknown-column message: %q", msg)
	}
	if strings.Contains(msg, "%!") {
		t.Errorf("fmt verb noise in message: %q", msg)
	}
}

// Qualified references must disambiguate same-named columns.
func TestResolveQualifiedDisambiguates(t *testing.T) {
	s := Schema{intCol("t1", "a"), intCol("t2", "a")}
	idx, err := s.Resolve(&sqlparser.ColumnRef{Table: "t2", Column: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Errorf("resolved to %d, want 1", idx)
	}
}
