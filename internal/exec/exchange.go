// The exchange operator family moves rows between shard-local pipelines
// in a distributed plan. Within a shard the batch contract is untouched
// (vectors alias or decode that shard's storage, never mutate); rows that
// cross a shard boundary are always freshly materialized via
// Batch.AppendRows, so no pipeline ever aliases another shard's chunks.
//
//   - Gather is the consumer side: a BatchOperator fed by N producer
//     handles (one per shard fragment, each driven on its own goroutine)
//     that streams the union of their rows to the coordinator's final
//     stage.
//   - Shuffle is the repartitioning sender: it drains a shard-local
//     pipeline and routes every row to one of N destinations by a
//     caller-supplied partition function (hash of the join key), so a
//     non-co-partitioned join side can be re-aligned to the owning shards.
//   - Broadcast is the replicating sender: every row goes to all N
//     destinations (the small side of a join with no usable partitioning).
//
// Exchange work counters are recorded where rows enter their destination:
// Gather counts on receive, Shuffle/Broadcast count on send — so summing
// producer and consumer contexts never double-counts a row.
package exec

import (
	"htapxplain/internal/value"
)

// RowSink receives materialized row slabs from a sending exchange. Send
// reports false when the receiver has gone away (the query was canceled);
// senders should stop producing. Implementations must tolerate concurrent
// senders only if documented — Shuffle/Broadcast drive each sink from one
// goroutine.
type RowSink interface {
	Send(rows []value.Row) bool
}

// RowBuffer is the materializing RowSink: it accumulates every slab into
// Rows. Used for exchange destinations that must be complete before the
// consumer plans against them (shuffle/broadcast overrides).
type RowBuffer struct {
	Rows []value.Row
}

func (b *RowBuffer) Send(rows []value.Row) bool {
	b.Rows = append(b.Rows, rows...)
	return true
}

type gatherMsg struct {
	rows []value.Row
	err  error
	done bool
}

// Gather is the gather exchange: a single-use BatchOperator source fed by
// a fixed set of producers. Producers run on their own goroutines and push
// materialized row slabs through a bounded channel; Next re-chunks them
// into batches for the coordinator's final stage. The first producer error
// fails the stream. A Gather is never pooled: it is built per query and
// driven with DrainOnce, not through a Runner.
type Gather struct {
	out   Schema
	ch    chan gatherMsg
	quit  chan struct{}
	prods []*GatherProducer

	pending []value.Row
	pos     int
	rw      rowWindow
	done    int
	err     error
	closed  bool
}

// NewGather builds a gather exchange with the given output schema and
// producer count. Every producer handle must eventually be closed or the
// stream never terminates.
func NewGather(out Schema, producers int) *Gather {
	g := &Gather{
		out:  out,
		ch:   make(chan gatherMsg, 2*producers),
		quit: make(chan struct{}),
	}
	g.rw.init(len(out))
	g.prods = make([]*GatherProducer, producers)
	for i := range g.prods {
		g.prods[i] = &GatherProducer{g: g}
	}
	return g
}

// Producers returns the producer handles, one per sending fragment.
func (g *Gather) Producers() []*GatherProducer { return g.prods }

func (g *Gather) Schema() Schema { return g.out }

// Clone returns the receiver: a live exchange stream cannot be re-driven,
// so a Gather-rooted tree is single-use by construction (drive it with
// DrainOnce, never through a pooling Runner).
func (g *Gather) Clone() BatchOperator { return g }

func (g *Gather) Open(ctx *Context) error {
	g.closed = false
	return nil
}

func (g *Gather) Next(ctx *Context) (*Batch, error) {
	for {
		if g.pos < len(g.pending) {
			end := g.pos + BatchSize
			if end > len(g.pending) {
				end = len(g.pending)
			}
			b := g.rw.fill(g.pending[g.pos:end])
			g.pos = end
			ctx.Stats.BatchesProduced++
			return b, nil
		}
		if g.err != nil {
			return nil, g.err
		}
		if g.done == len(g.prods) {
			return nil, nil
		}
		msg := <-g.ch
		switch {
		case msg.err != nil:
			g.err = msg.err
			g.done++
			return nil, g.err
		case msg.done:
			g.done++
		default:
			g.pending, g.pos = msg.rows, 0
			ctx.Stats.ExchangeBatches++
			ctx.Stats.ExchangeRows += int64(len(msg.rows))
		}
	}
}

// Close releases the stream without waiting for the producers: the quit
// channel unblocks any producer still sending, so an abandoned scatter
// (error or LIMIT satisfied early) cannot deadlock its fragments.
func (g *Gather) Close() error {
	if g.closed {
		return nil
	}
	g.closed = true
	close(g.quit)
	g.pending, g.pos = nil, 0
	return nil
}

// GatherProducer is one fragment's sending handle on a Gather.
type GatherProducer struct {
	g      *Gather
	closed bool
}

// Send pushes one materialized row slab to the consumer. The slab must not
// be mutated after Send. It reports false when the consumer has closed the
// stream — the producer should stop.
func (p *GatherProducer) Send(rows []value.Row) bool {
	if len(rows) == 0 {
		return true
	}
	select {
	case p.g.ch <- gatherMsg{rows: rows}:
		return true
	case <-p.g.quit:
		return false
	}
}

// Close marks the producer finished; a non-nil err fails the whole gather
// stream. Every producer must be closed exactly once.
func (p *GatherProducer) Close(err error) {
	if p.closed {
		return
	}
	p.closed = true
	select {
	case p.g.ch <- gatherMsg{err: err, done: true}:
	case <-p.g.quit:
	}
}

// Shuffle is the repartitioning exchange sender: Run drains a shard-local
// pipeline and routes every materialized row to Dests[Route(row)],
// flushing per-destination slabs at batch granularity. Route must be a
// pure function of the row (the hash partitioner), so the same key always
// lands on the same destination regardless of which shard sent it.
type Shuffle struct {
	Route func(value.Row) (int, error)
	Dests []RowSink
}

func (s *Shuffle) Run(ctx *Context, op BatchOperator) error {
	bufs := make([][]value.Row, len(s.Dests))
	flush := func(d int) bool {
		if len(bufs[d]) == 0 {
			return true
		}
		ctx.Stats.ExchangeBatches++
		ctx.Stats.ExchangeRows += int64(len(bufs[d]))
		ok := s.Dests[d].Send(bufs[d])
		bufs[d] = nil
		return ok
	}
	var routeErr error
	err := sendRows(ctx, op, func(rows []value.Row) bool {
		for _, r := range rows {
			d, err := s.Route(r)
			if err != nil {
				routeErr = err
				return false
			}
			bufs[d] = append(bufs[d], r)
			if len(bufs[d]) >= BatchSize && !flush(d) {
				return false
			}
		}
		return true
	})
	if err == nil {
		err = routeErr
	}
	if err != nil {
		return err
	}
	for d := range bufs {
		if !flush(d) {
			break
		}
	}
	return nil
}

// Broadcast is the replicating exchange sender: Run drains a shard-local
// pipeline and sends every materialized row slab to all destinations.
type Broadcast struct {
	Dests []RowSink
}

func (b *Broadcast) Run(ctx *Context, op BatchOperator) error {
	return sendRows(ctx, op, func(rows []value.Row) bool {
		for _, d := range b.Dests {
			ctx.Stats.ExchangeBatches++
			ctx.Stats.ExchangeRows += int64(len(rows))
			if !d.Send(rows) {
				return false
			}
		}
		return true
	})
}

// sendRows drives op and hands each batch's freshly materialized rows to
// emit; emit returning false stops the drain early (receiver gone).
func sendRows(ctx *Context, op BatchOperator, emit func([]value.Row) bool) error {
	if err := op.Open(ctx); err != nil {
		_ = op.Close()
		return err
	}
	for {
		b, err := op.Next(ctx)
		if err != nil {
			_ = op.Close()
			return err
		}
		if b == nil {
			break
		}
		rows := b.AppendRows(nil)
		if !emit(rows) {
			break
		}
	}
	return op.Close()
}

// MemScan streams a materialized row set as batches — the leaf a fragment
// plan uses for a table whose rows arrived through a shuffle or broadcast
// exchange instead of local storage. Rows are already materialized (never
// storage-aliased), so clones may share them.
type MemScan struct {
	Out  Schema
	Rows []value.Row

	emit   rowEmitter
	closed bool
}

func NewMemScan(out Schema, rows []value.Row) *MemScan {
	return &MemScan{Out: out, Rows: rows}
}

func (m *MemScan) Schema() Schema       { return m.Out }
func (m *MemScan) Clone() BatchOperator { return &MemScan{Out: m.Out, Rows: m.Rows} }

func (m *MemScan) Open(ctx *Context) error {
	m.closed = false
	m.emit.reset(m.Rows, len(m.Out))
	ctx.Stats.RowsScanned += int64(len(m.Rows))
	return nil
}

func (m *MemScan) Next(ctx *Context) (*Batch, error) {
	return m.emit.next(ctx), nil
}

func (m *MemScan) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	m.emit.reset(nil, len(m.Out))
	return nil
}

// DrainOnce materializes an operator tree's output without cloning it
// first — the drive entry point for single-use trees rooted at an
// exchange, which cannot be re-executed (Drain clones for pooling; a
// Gather's Clone is itself).
func DrainOnce(op BatchOperator, ctx *Context) ([]value.Row, error) {
	return drainOp(op, ctx)
}
