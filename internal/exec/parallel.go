// Morsel-driven intra-query parallelism. A query granted a degree of
// parallelism (Context.DOP > 1) does not change its physical plan: the
// per-morsel part of a pipeline — filters, projections, offset-free
// limits over a single ParallelSource leaf — is cloned once per worker,
// every clone draws disjoint chunk-aligned morsels from one shared cursor
// over one pinned snapshot, and a gather/merge stage recombines the
// workers' results (concatenation for drains, partition merges for
// hash aggregation and hash-join builds).
//
// The aliasing contract survives unchanged: morsels alias immutable base
// chunks, the delta snapshot is pinned exactly once per query (inside the
// shared cursor), and every worker clone owns its batch buffers — cached
// plans clone per-worker operator state instead of sharing buffers.
package exec

import (
	"sync"
	"sync/atomic"

	"htapxplain/internal/value"
)

// ParallelSource is a leaf operator whose scan can be split into
// chunk-aligned morsels drawn from a shared cursor. ForkShared pins the
// source's snapshot once and returns dop clones that all draw from it;
// each clone is a full BatchOperator whose Open attaches to the shared
// cursor instead of pinning a private one.
type ParallelSource interface {
	BatchOperator
	ForkShared(dop int) []BatchOperator
}

// forkable reports whether op is a per-morsel pipeline: a chain of
// operators that work row-at-a-time with no cross-morsel state
// (FilterOp, ProjectOp, offset-free LimitOp) over a single
// ParallelSource leaf. Blocking operators (aggregation, joins, sorts)
// are not forkable themselves — they parallelize their forkable inputs
// and merge.
func forkable(op BatchOperator) bool {
	switch x := op.(type) {
	case *FilterOp:
		return forkable(x.Child)
	case *ProjectOp:
		return forkable(x.Child)
	case *LimitOp:
		// offset needs a serial view of the stream; a bounded limit forks
		// with a shared cross-worker budget
		return x.Offset == 0 && x.N >= 0 && forkable(x.Child)
	case *analyzeOp:
		// EXPLAIN ANALYZE wrappers are transparent: a wrapped per-morsel
		// pipeline forks exactly like the bare one
		return forkable(x.child)
	case ParallelSource:
		return true
	}
	return false
}

// CanParallelize reports whether executing the tree with Context.DOP > 1
// would actually fork workers anywhere. Forks only happen at specific
// points — a drain of the root, or an Open-time forker (hash aggregate,
// hash-join build, sort/nested-loop child drains) somewhere in the tree —
// and Open cascades to every node, so any such interior fork point
// counts. The optimizer uses this to avoid asking the gateway for
// workers a plan can never use (a Top-N over a scan, for example, pulls
// its child serially): reserving slots for them would starve concurrent
// queries for no speedup.
func CanParallelize(op BatchOperator) bool {
	return forkable(op) || hasForkPoint(op)
}

// hasForkPoint walks the tree for an Open-time forker with a forkable
// input. A forkable chain on its own does not count: an operator that
// merely pulls it (Top-N, for instance) never forks it — only a drain or
// a partitioned build/aggregate does.
func hasForkPoint(op BatchOperator) bool {
	switch x := op.(type) {
	case *HashAggregate:
		return forkable(x.Child) || hasForkPoint(x.Child)
	case *HashJoin:
		return forkable(x.Build) || hasForkPoint(x.Build) || hasForkPoint(x.Probe)
	case *SortOp:
		return forkable(x.Child) || hasForkPoint(x.Child) // Open drains the child
	case *NestedLoopJoin:
		return forkable(x.Inner) || hasForkPoint(x.Inner) || hasForkPoint(x.Outer)
	case *FilterOp:
		return hasForkPoint(x.Child)
	case *ProjectOp:
		return hasForkPoint(x.Child)
	case *LimitOp:
		return hasForkPoint(x.Child)
	case *TopNOp:
		// Top-N pulls its child serially — no fork at this node, but a
		// forker deeper in the tree still forks at its own Open
		return hasForkPoint(x.Child)
	case *IndexNLJoin:
		return hasForkPoint(x.Outer)
	case *analyzeOp:
		return hasForkPoint(x.child)
	}
	return false
}

// forkPipeline clones the per-morsel pipeline rooted at op dop times over
// one shared morsel cursor. It returns (nil, false) when the pipeline is
// not forkable or parallelism is not worth it — callers fall back to the
// serial path. Limits in the pipeline share one atomic row budget across
// all clones.
func forkPipeline(op BatchOperator, dop int) ([]BatchOperator, bool) {
	if dop <= 1 || !forkable(op) {
		return nil, false
	}
	src := findSource(op)
	// the source clamps to its morsel supply — fewer clones may come back
	// than asked for, and a supply too small to share runs serial
	leaves := src.ForkShared(dop)
	if len(leaves) <= 1 {
		return nil, false
	}
	var budget *atomic.Int64
	out := make([]BatchOperator, len(leaves))
	for i := range out {
		out[i] = forkOne(op, leaves[i], &budget)
	}
	return out, true
}

// findSource returns the pipeline's ParallelSource leaf (the caller has
// established forkability).
func findSource(op BatchOperator) ParallelSource {
	for {
		switch x := op.(type) {
		case *FilterOp:
			op = x.Child
		case *ProjectOp:
			op = x.Child
		case *LimitOp:
			op = x.Child
		case *analyzeOp:
			op = x.child
		default:
			return op.(ParallelSource)
		}
	}
}

// forkOne builds one worker's private pipeline clone over the given
// shared-cursor leaf. The first limit encountered lazily creates the
// shared budget all clones reuse.
func forkOne(op BatchOperator, leaf BatchOperator, budget **atomic.Int64) BatchOperator {
	switch x := op.(type) {
	case *FilterOp:
		return &FilterOp{Child: forkOne(x.Child, leaf, budget), Pred: x.Pred}
	case *ProjectOp:
		return &ProjectOp{Child: forkOne(x.Child, leaf, budget), Evals: x.Evals, Out: x.Out}
	case *LimitOp:
		if *budget == nil {
			b := &atomic.Int64{}
			b.Store(x.N)
			*budget = b
		}
		return &LimitOp{Child: forkOne(x.Child, leaf, budget), N: x.N, budget: *budget}
	case *analyzeOp:
		// every worker gets a private wrapper instance recording into the
		// shared profile through its atomic counters
		return &analyzeOp{child: forkOne(x.child, leaf, budget), prof: x.prof, leafScan: x.leafScan}
	default:
		return leaf
	}
}

// runForked executes the forked worker pipelines to completion, invoking
// consume for every batch on the worker's own goroutine — consume receives
// the worker index and the worker's context, and must only touch
// worker-indexed state (the batch is reused by the worker after consume
// returns, so consume must copy what it keeps). Worker contexts share one
// cancellation scope nested under ctx's: the first error (or a drained
// limit budget) cancels the scope and the remaining workers stop at their
// next morsel. Worker stats are merged into ctx strictly after the
// wg.Wait barrier — including on cancellation and error paths — which is
// the invariant that makes plain (non-atomic) reads of ctx.Stats safe the
// moment Drain/Execute returns; callers must not read ctx.Stats while a
// drain is still in flight.
func runForked(ctx *Context, pipes []BatchOperator, consume func(w int, wctx *Context, b *Batch) error) error {
	wctxs := ctx.forkScope(len(pipes))
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	fail := func(wctx *Context, err error) {
		errOnce.Do(func() { firstEr = err })
		wctx.Cancel() // stop the sibling workers
	}
	for i := range pipes {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p, wctx := pipes[w], wctxs[w]
			if err := p.Open(wctx); err != nil {
				_ = p.Close()
				fail(wctx, err)
				return
			}
			for {
				b, err := p.Next(wctx)
				if err != nil {
					fail(wctx, err)
					break
				}
				if b == nil {
					break
				}
				if err := consume(w, wctx, b); err != nil {
					fail(wctx, err)
					break
				}
			}
			if err := p.Close(); err != nil {
				fail(wctx, err)
			}
		}(i)
	}
	wg.Wait()
	for _, w := range wctxs {
		ctx.Stats.Add(w.Stats)
	}
	ctx.Stats.ParallelWorkers += int64(len(pipes))
	return firstEr
}

// drainForked is the gather stage for materializing drains: every worker
// appends its batches to a private row slice and the slices are
// concatenated in worker order (a multiset-equivalent reordering of the
// serial output).
func drainForked(ctx *Context, pipes []BatchOperator) ([]value.Row, error) {
	parts := make([][]value.Row, len(pipes))
	err := runForked(ctx, pipes, func(w int, wctx *Context, b *Batch) error {
		parts[w] = b.AppendRows(parts[w])
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []value.Row
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}
