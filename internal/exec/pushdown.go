package exec

import (
	"sort"
	"sync"

	"htapxplain/internal/colstore"
	"htapxplain/internal/value"
)

// Encoded aggregation pushdown: when a structurally simple aggregate sits
// directly on a bare columnar scan, the aggregate runs its own morsel loop
// and consumes encoded chunks natively instead of pulling decoded batches —
// COUNT/SUM/MIN/MAX fold RLE runs run-at-a-time and dictionary chunks
// code-at-a-time, FoR chunks are unpacked to machine integers without ever
// building a Value vector, and an exact pruner's encoded-domain RangeSel
// replaces the compiled row predicate entirely. Grouping by a
// dictionary-encoded column keys the hash table once per distinct code
// rather than once per row.
//
// Every kernel accumulates in row order with the same float operations as
// accumulateArg, so encoded execution is byte-identical to the decoded
// path at the same DOP — the invariant the storage-immutability and
// recovery differential suites assert exactly, not approximately.
//
// Eligibility is structural (see pushdownScan); anything else — extra
// operators between aggregate and scan, non-bare group or argument
// expressions, an inexact pruner alongside a residual predicate, or an
// EXPLAIN ANALYZE wrapper — falls back to the generic batch path.

// pushdownScan reports whether the aggregate can run over encoded chunks
// directly, returning the child scan when it can.
func (a *HashAggregate) pushdownScan() (*ColTableScan, bool) {
	if a.GroupCols == nil || len(a.GroupCols) > 1 || len(a.GroupCols) != len(a.Groups) {
		return nil, false
	}
	scan, ok := a.Child.(*ColTableScan)
	if !ok || scan.shared != nil {
		return nil, false
	}
	// a residual predicate defeats pushdown unless the pruner encodes it
	// exactly (then RangeSel at the chunk level IS the predicate)
	if scan.Pred != nil && (scan.Pruner == nil || !scan.Pruner.Exact) {
		return nil, false
	}
	ncols := len(scan.Cols)
	for _, g := range a.GroupCols {
		if g < 0 || g >= ncols {
			return nil, false
		}
	}
	for _, spec := range a.Aggs {
		if spec.ArgCol < -1 || spec.ArgCol >= ncols {
			return nil, false
		}
		if spec.ArgCol == -1 && spec.Arg != nil {
			return nil, false
		}
	}
	return scan, true
}

// openPushdown runs the aggregate over encoded chunks when eligible. The
// first return value reports whether pushdown handled the open; when false
// the caller proceeds with the generic batch path.
func (a *HashAggregate) openPushdown(ctx *Context) (bool, error) {
	scan, ok := a.pushdownScan()
	if !ok {
		return false, nil
	}
	view := scan.Table.View()
	src := colstore.NewMorsels(view, scan.Pruner)
	dop := ctx.DOP
	if n := src.NumMorsels(); dop > n {
		dop = n
	}
	if dop <= 1 {
		w := a.newPushWorker(scan, view)
		t := a.newTable()
		if err := w.fold(ctx, src, t); err != nil {
			return true, err
		}
		ctx.Stats.GroupsCreated += int64(len(t.order))
		out, err := a.emitRows(t)
		if err != nil {
			return true, err
		}
		a.emit.reset(out, len(a.Out))
		return true, nil
	}

	// parallel: per-worker tables folded from the shared morsel cursor,
	// merged like openParallel, emitted in sorted-key order for run-to-run
	// determinism
	wctxs := ctx.forkScope(dop)
	parts := make([]*aggTable, dop)
	errs := make([]error, dop)
	var wg sync.WaitGroup
	for i := 0; i < dop; i++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := a.newPushWorker(scan, view)
			parts[wi] = a.newTable()
			if err := w.fold(wctxs[wi], src, parts[wi]); err != nil {
				errs[wi] = err
				wctxs[wi].Cancel()
			}
		}(i)
	}
	wg.Wait()
	for _, wctx := range wctxs {
		ctx.Stats.Add(wctx.Stats)
	}
	ctx.Stats.ParallelWorkers += int64(dop)
	for _, err := range errs {
		if err != nil {
			return true, err
		}
	}
	merged, _ := a.mergeParts(parts)
	ctx.Stats.GroupsCreated += int64(len(merged.order))
	sort.Strings(merged.order)
	out, err := a.emitRows(merged)
	if err != nil {
		return true, err
	}
	a.emit.reset(out, len(a.Out))
	return true, nil
}

// pushWorker is one worker's scratch state for the encoded aggregation
// fold: decode buffers, the prefilter selection, the per-dictionary-code
// state cache, and a scan-schema row for delta predicates.
type pushWorker struct {
	a      *HashAggregate
	scan   *ColTableScan
	view   colstore.View
	perCol int64 // modeled bytes per column per row

	preSel  []int32         // encoded-domain prefilter scratch
	argv    [][]value.Value // per-agg argument vector for the current chunk
	dec     [][]value.Value // pooled per-agg decode targets
	gdec    []value.Value   // pooled group-column decode target
	states  []*aggState     // per-dict-code group state cache
	df      []float64       // per-dict-code AsFloat cache
	dfok    []bool
	scratch value.Row // scan-schema row (delta rows, predicate eval)
	keyCols []int     // {0}: single-group key columns
}

func (a *HashAggregate) newPushWorker(scan *ColTableScan, view colstore.View) *pushWorker {
	perCol := scan.Table.Meta.AvgRowBytes / int64(len(scan.Table.Meta.Columns))
	if perCol < 1 {
		perCol = 1
	}
	return &pushWorker{
		a:       a,
		scan:    scan,
		view:    view,
		perCol:  perCol,
		argv:    make([][]value.Value, len(a.Aggs)),
		dec:     make([][]value.Value, len(a.Aggs)),
		scratch: make(value.Row, len(scan.Cols)),
		keyCols: []int{0},
	}
}

// fold drains the morsel source into t, mirroring ColTableScan's work
// accounting so EXPLAIN ANALYZE reads the same whether or not pushdown
// fired.
func (w *pushWorker) fold(ctx *Context, src *colstore.Morsels, t *aggTable) error {
	for {
		if ctx.Canceled() {
			return nil
		}
		m, pruned, ok := src.Next()
		ctx.Stats.ChunksSkipped += pruned
		if !ok {
			return nil
		}
		ctx.Stats.MorselsDispatched++
		if m.Base {
			ctx.Stats.ChunksScanned++
			w.foldBase(ctx, m, t)
		} else if err := w.foldDelta(ctx, m, t); err != nil {
			return err
		}
	}
}

// foldBase folds one base chunk. The prefilter mirrors baseBatch exactly:
// applied when the pruner is exact (then it is the whole predicate) or the
// chunk has encoded columns (then the sargable bound pre-narrows before
// any decode).
func (w *pushWorker) foldBase(ctx *Context, m colstore.Morsel, t *aggTable) {
	rows := m.Rows()
	ctx.Stats.RowsScanned += int64(rows)
	ctx.Stats.BytesScanned += int64(rows) * w.perCol * int64(len(w.scan.Cols))

	anyEnc := false
	for _, c := range w.scan.Cols {
		if w.view.Cols[c].Chunk(m.Chunk).Enc != colstore.EncRaw {
			anyEnc = true
			break
		}
	}
	fullDecode := false
	countChunk := func() {
		if !anyEnc {
			return
		}
		if fullDecode {
			ctx.Stats.DecodedChunks++
		} else {
			ctx.Stats.EncodedChunks++
		}
	}

	var sel []int32 // candidate positions; nil = all rows
	if pr := w.scan.Pruner; pr != nil && (pr.Exact || anyEnc) {
		pch := w.view.Cols[pr.Col].Chunk(m.Chunk)
		res, all := pch.RangeSel(pr.Lo, pr.Hi, pr.LoStrict, pr.HiStrict, w.preSel[:0])
		w.preSel = res
		if !all {
			if len(res) == 0 {
				countChunk()
				return
			}
			sel = res
		}
	}

	switch {
	case w.view.BaseDead != nil:
		// deleted base positions force the generic per-row walk
		w.foldRowAt(m, t, sel)
	case len(w.a.GroupCols) == 0:
		w.foldGlobal(m, t, sel)
	default:
		fullDecode = w.foldGrouped(m, t, sel)
	}
	countChunk()
}

// foldGlobal folds one chunk into the single global group via the
// per-encoding kernels — no decode, no Value vector.
func (w *pushWorker) foldGlobal(m colstore.Morsel, t *aggTable, sel []int32) {
	a := w.a
	st := w.globalState(t)
	ncand := m.Rows()
	if sel != nil {
		ncand = len(sel)
	}
	for ai := range a.Aggs {
		if a.Aggs[ai].ArgCol < 0 { // COUNT(*): every candidate counts
			st.counts[ai] += int64(ncand)
			continue
		}
		ch := w.view.Cols[w.scan.Cols[a.Aggs[ai].ArgCol]].Chunk(m.Chunk)
		w.aggChunk(st, ai, ch, sel)
	}
}

// aggChunk folds one argument chunk into state slot ai, bit-exactly
// matching a row-order accumulateArg loop over the decoded values.
func (w *pushWorker) aggChunk(st *aggState, ai int, ch *colstore.EncodedChunk, sel []int32) {
	switch ch.Enc {
	case colstore.EncRaw:
		if sel == nil {
			for _, v := range ch.Raw {
				accumulateArg(st, ai, v)
			}
		} else {
			for _, i := range sel {
				accumulateArg(st, ai, ch.Raw[i])
			}
		}

	case colstore.EncDict:
		// dictionaries hold no NULLs: every candidate counts. Sums stay
		// row-order (one add per row from the per-code float cache);
		// min/max reduce to the extreme codes — the dictionary is sorted
		// by value.Compare, but the explicit code comparison keeps this
		// independent of that.
		df, dfok := w.dictFloats(ch)
		minC, maxC := -1, -1
		foldCode := func(code uint16) {
			st.counts[ai]++
			if dfok[code] {
				st.sums[ai] += df[code]
			}
			c := int(code)
			if minC < 0 {
				minC, maxC = c, c
			} else {
				if c < minC {
					minC = c
				}
				if c > maxC {
					maxC = c
				}
			}
		}
		if sel == nil {
			for _, code := range ch.Codes {
				foldCode(code)
			}
		} else {
			for _, i := range sel {
				foldCode(ch.Codes[i])
			}
		}
		if minC >= 0 {
			applyMinMax(st, ai, ch.Dict[minC])
			applyMinMax(st, ai, ch.Dict[maxC])
		}

	case colstore.EncFoR:
		// FoR chunks are all-Int and NULL-free: unpack to machine ints,
		// track integer extremes, one float add per row for the sum
		var minI, maxI int64
		first := true
		foldInt := func(i int) {
			v := ch.IntAt(i)
			st.counts[ai]++
			st.sums[ai] += float64(v)
			if first {
				minI, maxI = v, v
				first = false
			} else {
				if v < minI {
					minI = v
				}
				if v > maxI {
					maxI = v
				}
			}
		}
		if sel == nil {
			for i := 0; i < ch.N; i++ {
				foldInt(i)
			}
		} else {
			for _, i := range sel {
				foldInt(int(i))
			}
		}
		if !first {
			applyMinMax(st, ai, value.NewInt(minI))
			applyMinMax(st, ai, value.NewInt(maxI))
		}

	case colstore.EncRLE:
		if sel == nil {
			start := 0
			for r, v := range ch.RunVals {
				end := int(ch.RunEnds[r])
				k := end - start
				start = end
				if v.IsNull() {
					continue
				}
				st.counts[ai] += int64(k)
				if f, ok := v.AsFloat(); ok {
					// k sequential adds, not f*k: float addition does not
					// distribute, and the differential suites compare bytes
					for j := 0; j < k; j++ {
						st.sums[ai] += f
					}
				}
				applyMinMax(st, ai, v)
			}
		} else {
			run := 0
			for _, i := range sel {
				for int(ch.RunEnds[run]) <= int(i) {
					run++
				}
				accumulateArg(st, ai, ch.RunVals[run])
			}
		}
	}
}

// foldGrouped folds one chunk of a single-column GROUP BY. Grouping by a
// dictionary chunk resolves each row's state through a per-code cache —
// one hash-key build per distinct code per chunk instead of one per row.
// Other group encodings decode the group column like any other; argument
// columns alias raw chunks and decode encoded ones (sparsely under a
// selection). Reports whether any encoded column was fully decoded.
func (w *pushWorker) foldGrouped(m colstore.Morsel, t *aggTable, sel []int32) bool {
	a := w.a
	rows := m.Rows()
	fullDecode := false

	// materialize argument vectors: alias or decode, never mutate
	for ai := range a.Aggs {
		ac := a.Aggs[ai].ArgCol
		if ac < 0 {
			w.argv[ai] = nil
			continue
		}
		ch := w.view.Cols[w.scan.Cols[ac]].Chunk(m.Chunk)
		if ch.Enc == colstore.EncRaw {
			w.argv[ai] = ch.Raw
			continue
		}
		buf := w.dec[ai]
		if cap(buf) < rows {
			buf = make([]value.Value, colstore.ChunkSize)
		}
		buf = buf[:rows]
		if sel != nil {
			ch.DecodeSel(buf, sel)
		} else {
			buf = ch.Decode(buf)
			fullDecode = true
		}
		w.dec[ai] = buf
		w.argv[ai] = buf
	}

	gch := w.view.Cols[w.scan.Cols[a.GroupCols[0]]].Chunk(m.Chunk)
	if gch.Enc == colstore.EncDict {
		if cap(w.states) < len(gch.Dict) {
			w.states = make([]*aggState, len(gch.Dict))
		}
		states := w.states[:len(gch.Dict)]
		for i := range states {
			states[i] = nil
		}
		foldRow := func(i int) {
			code := gch.Codes[i]
			st := states[code]
			if st == nil {
				st = w.groupState(t, gch.Dict[code])
				states[code] = st
			}
			w.foldArgs(st, i)
		}
		if sel == nil {
			for i := 0; i < rows; i++ {
				foldRow(i)
			}
		} else {
			for _, i := range sel {
				foldRow(int(i))
			}
		}
		return fullDecode
	}

	var gvals []value.Value
	if gch.Enc == colstore.EncRaw {
		gvals = gch.Raw
	} else {
		buf := w.gdec
		if cap(buf) < rows {
			buf = make([]value.Value, colstore.ChunkSize)
		}
		buf = buf[:rows]
		if sel != nil {
			gch.DecodeSel(buf, sel)
		} else {
			buf = gch.Decode(buf)
			fullDecode = true
		}
		w.gdec = buf
		gvals = buf
	}
	if sel == nil {
		for i := 0; i < rows; i++ {
			w.foldArgs(w.groupState(t, gvals[i]), i)
		}
	} else {
		for _, i := range sel {
			w.foldArgs(w.groupState(t, gvals[i]), int(i))
		}
	}
	return fullDecode
}

// foldRowAt is the generic per-row walk for base chunks with deleted
// positions: random-access ValueAt reads, no decode, dead rows skipped.
func (w *pushWorker) foldRowAt(m colstore.Morsel, t *aggTable, sel []int32) {
	a := w.a
	var gch *colstore.EncodedChunk
	if len(a.GroupCols) == 1 {
		gch = w.view.Cols[w.scan.Cols[a.GroupCols[0]]].Chunk(m.Chunk)
	}
	n := m.Rows()
	if sel != nil {
		n = len(sel)
	}
	for ii := 0; ii < n; ii++ {
		i := ii
		if sel != nil {
			i = int(sel[ii])
		}
		if w.view.BaseDead[int32(m.Lo+i)] {
			continue
		}
		var st *aggState
		if gch != nil {
			st = w.groupState(t, gch.ValueAt(i))
		} else {
			st = w.globalState(t)
		}
		for ai := range a.Aggs {
			if a.Aggs[ai].ArgCol < 0 {
				st.counts[ai]++
				continue
			}
			ch := w.view.Cols[w.scan.Cols[a.Aggs[ai].ArgCol]].Chunk(m.Chunk)
			accumulateArg(st, ai, ch.ValueAt(i))
		}
	}
}

// foldDelta folds one window of replicated-but-unmerged delta rows: full
// table-width rows projected through the scan schema, with the compiled
// predicate applied — delta rows are never encoded, so the pruner's
// encoded-domain shortcut does not apply here.
func (w *pushWorker) foldDelta(ctx *Context, m colstore.Morsel, t *aggTable) error {
	a := w.a
	rows := w.view.Delta[m.Lo:m.Hi]
	ctx.Stats.RowsScanned += int64(len(rows))
	ctx.Stats.BytesScanned += int64(len(rows)) * w.perCol * int64(len(w.scan.Cols))
	for _, r := range rows {
		for j, c := range w.scan.Cols {
			w.scratch[j] = r[c]
		}
		if w.scan.Pred != nil {
			ok, err := Truthy(w.scan.Pred, w.scratch)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
		}
		var st *aggState
		if len(a.GroupCols) == 1 {
			st = w.groupState(t, w.scratch[a.GroupCols[0]])
		} else {
			st = w.globalState(t)
		}
		for ai := range a.Aggs {
			if a.Aggs[ai].ArgCol < 0 {
				st.counts[ai]++
				continue
			}
			accumulateArg(st, ai, w.scratch[a.Aggs[ai].ArgCol])
		}
	}
	return nil
}

// foldArgs folds row i's argument values (from the materialized argv
// vectors) into st.
func (w *pushWorker) foldArgs(st *aggState, i int) {
	for ai := range w.a.Aggs {
		if w.a.Aggs[ai].ArgCol < 0 {
			st.counts[ai]++
			continue
		}
		accumulateArg(st, ai, w.argv[ai][i])
	}
}

// groupState resolves (creating on first sight) the state for a
// single-column group value, with the same key construction as foldBatch.
func (w *pushWorker) groupState(t *aggTable, gv value.Value) *aggState {
	g := value.Row{gv}
	key := g.Key(w.keyCols)
	st, ok := t.groups[key]
	if !ok {
		st = w.a.newState(g)
		t.groups[key] = st
		t.order = append(t.order, key)
	}
	return st
}

// globalState resolves the single global-aggregate state.
func (w *pushWorker) globalState(t *aggTable) *aggState {
	st, ok := t.groups[""]
	if !ok {
		st = w.a.newState(make(value.Row, 0))
		t.groups[""] = st
		t.order = append(t.order, "")
	}
	return st
}

// applyMinMax folds v into slot i's min/max exactly as accumulateArg does,
// without touching count or sum — for kernels that reduce a chunk's
// extremes before consulting the running state.
func applyMinMax(st *aggState, i int, v value.Value) {
	if !st.seen[i] {
		st.mins[i], st.maxs[i] = v, v
		st.seen[i] = true
		return
	}
	if v.Compare(st.mins[i]) < 0 {
		st.mins[i] = v
	}
	if v.Compare(st.maxs[i]) > 0 {
		st.maxs[i] = v
	}
}

// dictFloats returns the per-code AsFloat cache for a dictionary chunk.
func (w *pushWorker) dictFloats(ch *colstore.EncodedChunk) ([]float64, []bool) {
	n := len(ch.Dict)
	if cap(w.df) < n || cap(w.dfok) < n {
		w.df = make([]float64, n)
		w.dfok = make([]bool, n)
	}
	df, dfok := w.df[:n], w.dfok[:n]
	for i, v := range ch.Dict {
		df[i], dfok[i] = v.AsFloat()
	}
	return df, dfok
}
