package exec

import (
	"fmt"
	"sort"
	"testing"

	"htapxplain/internal/catalog"
	"htapxplain/internal/colstore"
	"htapxplain/internal/sqlparser"
	"htapxplain/internal/value"
)

// parallelFixture builds a column store with one table "p" of n rows:
// k ascending (sorted — zone maps prune tight ranges), g = k % 5,
// v = k % 97.
func parallelFixture(t testing.TB, n int) *colstore.Table {
	t.Helper()
	cat := catalog.New(1)
	if err := cat.AddTable(&catalog.Table{
		Name: "p",
		Columns: []catalog.Column{
			{Name: "k", Type: catalog.TypeInt},
			{Name: "g", Type: catalog.TypeInt},
			{Name: "v", Type: catalog.TypeInt},
		},
		Rows: int64(n), AvgRowBytes: 24,
	}); err != nil {
		t.Fatal(err)
	}
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 5)),
			value.NewInt(int64(i % 97)),
		}
	}
	s, err := colstore.NewStore(cat, map[string][]value.Row{"p": rows})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := s.Table("p")
	return tbl
}

func parallelPred(t testing.TB, s Schema, col string, op sqlparser.BinOp, v int64) Evaluator {
	t.Helper()
	ev, err := Compile(&sqlparser.BinaryExpr{
		Op:   op,
		Left: &sqlparser.ColumnRef{Table: "p", Column: col}, Right: &sqlparser.IntLit{V: v},
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func sortRows(rows []value.Row) {
	sort.Slice(rows, func(i, j int) bool {
		return fmt.Sprint(rows[i]) < fmt.Sprint(rows[j])
	})
}

func assertSameRows(t *testing.T, serial, parallel []value.Row) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: serial %d, parallel %d", len(serial), len(parallel))
	}
	sortRows(serial)
	sortRows(parallel)
	for i := range serial {
		if fmt.Sprint(serial[i]) != fmt.Sprint(parallel[i]) {
			t.Fatalf("row %d differs: serial %v, parallel %v", i, serial[i], parallel[i])
		}
	}
}

// TestParallelFilterScanMatchesSerial: a filter+scan pipeline drained at
// DOP 4 must return the same multiset as the serial drain, with morsels
// spread across workers.
func TestParallelFilterScanMatchesSerial(t *testing.T) {
	tbl := parallelFixture(t, 10*colstore.ChunkSize+77)
	mk := func() BatchOperator {
		scan := NewColTableScan(tbl, "p", []int{0, 1, 2}, nil, nil)
		return &FilterOp{Child: scan, Pred: parallelPred(t, scan.Schema(), "v", sqlparser.OpLt, 9)}
	}
	serialCtx := NewContext()
	serial, err := Drain(mk(), serialCtx)
	if err != nil {
		t.Fatal(err)
	}
	parCtx := NewContext()
	parCtx.DOP = 4
	parallel, err := Drain(mk(), parCtx)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, serial, parallel)
	if parCtx.Stats.ParallelWorkers != 4 {
		t.Errorf("ParallelWorkers = %d, want 4", parCtx.Stats.ParallelWorkers)
	}
	if parCtx.Stats.MorselsDispatched != serialCtx.Stats.MorselsDispatched {
		t.Errorf("morsels: parallel %d != serial %d",
			parCtx.Stats.MorselsDispatched, serialCtx.Stats.MorselsDispatched)
	}
	if parCtx.Stats.RowsScanned != serialCtx.Stats.RowsScanned {
		t.Errorf("rows scanned: parallel %d != serial %d",
			parCtx.Stats.RowsScanned, serialCtx.Stats.RowsScanned)
	}
}

// TestParallelAggregateMatchesSerial: the partitioned hash-aggregate must
// merge partial states into exactly the serial result for every aggregate
// function.
func TestParallelAggregateMatchesSerial(t *testing.T) {
	tbl := parallelFixture(t, 12*colstore.ChunkSize+5)
	mk := func() BatchOperator {
		scan := NewColTableScan(tbl, "p", []int{0, 1, 2}, nil, nil)
		s := scan.Schema()
		gEv, _ := Compile(&sqlparser.ColumnRef{Table: "p", Column: "g"}, s)
		vEv, _ := Compile(&sqlparser.ColumnRef{Table: "p", Column: "v"}, s)
		return &HashAggregate{
			Child:  scan,
			Groups: []Evaluator{gEv},
			Aggs: []AggSpec{
				{Func: sqlparser.AggCount},
				{Func: sqlparser.AggSum, Arg: vEv},
				{Func: sqlparser.AggAvg, Arg: vEv},
				{Func: sqlparser.AggMin, Arg: vEv},
				{Func: sqlparser.AggMax, Arg: vEv},
			},
			Out: Schema{
				intCol("p", "g"),
				intCol("", "count"), intCol("", "sum"), intCol("", "avg"),
				intCol("", "min"), intCol("", "max"),
			},
		}
	}
	serialCtx := NewContext()
	serial, err := Drain(mk(), serialCtx)
	if err != nil {
		t.Fatal(err)
	}
	for _, dop := range []int{2, 4, 8} {
		ctx := NewContext()
		ctx.DOP = dop
		parallel, err := Drain(mk(), ctx)
		if err != nil {
			t.Fatalf("DOP %d: %v", dop, err)
		}
		assertSameRows(t, serial, parallel)
		if ctx.Stats.ParallelWorkers != int64(dop) {
			t.Errorf("DOP %d: ParallelWorkers = %d", dop, ctx.Stats.ParallelWorkers)
		}
		if ctx.Stats.GroupsCreated != serialCtx.Stats.GroupsCreated {
			t.Errorf("DOP %d: GroupsCreated = %d, serial reported %d — the stat must not vary with DOP",
				dop, ctx.Stats.GroupsCreated, serialCtx.Stats.GroupsCreated)
		}
	}
}

// TestParallelGlobalAggregateEmptyInput: a global aggregate over a fully
// filtered input must still emit its single row under parallel execution.
func TestParallelGlobalAggregateEmptyInput(t *testing.T) {
	tbl := parallelFixture(t, 4*colstore.ChunkSize)
	scan := NewColTableScan(tbl, "p", []int{0}, nil, nil)
	s := scan.Schema()
	pred := parallelPred(t, s, "k", sqlparser.OpLt, -1) // matches nothing
	agg := &HashAggregate{
		Child: &FilterOp{Child: scan, Pred: pred},
		Aggs:  []AggSpec{{Func: sqlparser.AggCount}},
		Out:   Schema{intCol("", "count")},
	}
	ctx := NewContext()
	ctx.DOP = 4
	rows, err := Drain(agg, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].I != 0 {
		t.Fatalf("global aggregate over empty input = %v, want one zero-count row", rows)
	}
}

// TestParallelLimitSharedBudget: a forked limit must emit exactly N rows
// across all workers, and the drained budget must cancel the fork scope so
// the workers stop early (morsels dispatched well below the full table).
func TestParallelLimitSharedBudget(t *testing.T) {
	const chunks = 64
	tbl := parallelFixture(t, chunks*colstore.ChunkSize)
	mk := func() BatchOperator {
		scan := NewColTableScan(tbl, "p", []int{0}, nil, nil)
		return &LimitOp{Child: scan, N: 10}
	}
	ctx := NewContext()
	ctx.DOP = 4
	rows, err := Drain(mk(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("parallel limit emitted %d rows, want 10", len(rows))
	}
	if ctx.Stats.MorselsDispatched >= chunks {
		t.Errorf("early termination did not stop the scan: %d morsels dispatched of %d",
			ctx.Stats.MorselsDispatched, chunks)
	}
}

// TestParallelScanZoneMapPruning: pruning lives in the shared morsel
// cursor, so a parallel scan must prune exactly the chunks a serial scan
// prunes — counted once across workers, not scanned.
func TestParallelScanZoneMapPruning(t *testing.T) {
	const chunks = 16
	tbl := parallelFixture(t, chunks*colstore.ChunkSize)
	lo := value.NewInt(int64(14 * colstore.ChunkSize))
	mk := func() BatchOperator {
		return NewColTableScan(tbl, "p", []int{0}, nil,
			&colstore.RangePruner{Col: 0, Lo: &lo})
	}
	serialCtx := NewContext()
	if _, err := Drain(mk(), serialCtx); err != nil {
		t.Fatal(err)
	}
	parCtx := NewContext()
	parCtx.DOP = 4
	if _, err := Drain(mk(), parCtx); err != nil {
		t.Fatal(err)
	}
	if serialCtx.Stats.ChunksSkipped != 14 {
		t.Fatalf("serial pruned %d chunks, want 14", serialCtx.Stats.ChunksSkipped)
	}
	if parCtx.Stats.ChunksSkipped != serialCtx.Stats.ChunksSkipped {
		t.Errorf("parallel pruned %d chunks, serial %d",
			parCtx.Stats.ChunksSkipped, serialCtx.Stats.ChunksSkipped)
	}
	if parCtx.Stats.ChunksScanned != 2 {
		t.Errorf("parallel scanned %d chunks, want 2", parCtx.Stats.ChunksScanned)
	}
}

// TestParallelWorkerErrorPropagates: an evaluator error inside one worker
// must surface from the drain and cancel the remaining workers.
func TestParallelWorkerErrorPropagates(t *testing.T) {
	tbl := parallelFixture(t, 8*colstore.ChunkSize)
	scan := NewColTableScan(tbl, "p", []int{0, 2}, nil, nil)
	boom := func(row value.Row) (value.Value, error) {
		if row[0].I == int64(3*colstore.ChunkSize+17) {
			return value.Null, fmt.Errorf("boom")
		}
		return value.NewBool(true), nil
	}
	ctx := NewContext()
	ctx.DOP = 4
	_, err := Drain(&FilterOp{Child: scan, Pred: boom}, ctx)
	if err == nil || err.Error() != "boom" {
		t.Fatalf("worker error did not propagate: %v", err)
	}
}

// TestForkableShapes: only per-morsel chains over a ParallelSource fork.
func TestForkableShapes(t *testing.T) {
	tbl := parallelFixture(t, 2*colstore.ChunkSize)
	scan := NewColTableScan(tbl, "p", []int{0}, nil, nil)
	mem := &memOp{schema: Schema{intCol("t", "a")}, rows: rowsOf([]int64{1})}
	cases := []struct {
		name string
		op   BatchOperator
		want bool
	}{
		{"col-scan", scan, true},
		{"filter-over-scan", &FilterOp{Child: scan}, true},
		{"limit-over-scan", &LimitOp{Child: scan, N: 5}, true},
		{"limit-with-offset", &LimitOp{Child: scan, N: 5, Offset: 2}, false},
		{"unbounded-limit", &LimitOp{Child: scan, N: -1}, false},
		{"row-emitter", mem, false},
		{"filter-over-row-emitter", &FilterOp{Child: mem}, false},
		{"sort-over-scan", &SortOp{Child: scan}, false},
	}
	for _, tc := range cases {
		if got := forkable(tc.op); got != tc.want {
			t.Errorf("forkable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestCanParallelize: only trees with a real fork point count — a Top-N
// that pulls its forkable scan serially must not claim parallelism (the
// gateway would reserve worker slots the execution can never use).
func TestCanParallelize(t *testing.T) {
	tbl := parallelFixture(t, 2*colstore.ChunkSize)
	scan := func() BatchOperator { return NewColTableScan(tbl, "p", []int{0}, nil, nil) }
	mem := &memOp{schema: Schema{intCol("t", "a")}, rows: rowsOf([]int64{1})}
	agg := func(child BatchOperator) BatchOperator {
		return &HashAggregate{Child: child, Aggs: []AggSpec{{Func: sqlparser.AggCount}},
			Out: Schema{intCol("", "count")}}
	}
	cases := []struct {
		name string
		op   BatchOperator
		want bool
	}{
		{"scan-root-drain", scan(), true},
		{"filter-root-drain", &FilterOp{Child: scan()}, true},
		{"topn-over-scan", &TopNOp{Child: scan(), N: 5}, false},
		{"topn-over-agg-over-scan", &TopNOp{Child: agg(scan()), N: 5}, true},
		{"agg-over-scan", agg(scan()), true},
		{"agg-over-row-emitter", agg(mem), false},
		{"sort-over-scan", &SortOp{Child: scan()}, true},
		{"project-over-topn-over-scan", &ProjectOp{Child: &TopNOp{Child: scan(), N: 5}}, false},
		{"hashjoin-forkable-build", NewHashJoin(mem, scan(), []int{0}, []int{0}, nil), true},
		{"hashjoin-serial-sides", NewHashJoin(mem, mem, []int{0}, []int{0}, nil), false},
	}
	for _, tc := range cases {
		if got := CanParallelize(tc.op); got != tc.want {
			t.Errorf("CanParallelize(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestParallelHashJoinBuild: the partitioned hash-join build must produce
// the same join result as the serial build.
func TestParallelHashJoinBuild(t *testing.T) {
	tbl := parallelFixture(t, 6*colstore.ChunkSize)
	mk := func() BatchOperator {
		build := NewColTableScan(tbl, "p", []int{1, 2}, nil, nil) // g, v
		probe := &memOp{schema: Schema{intCol("l", "g")},
			rows: rowsOf([]int64{0}, []int64{3}, []int64{4})}
		return NewHashJoin(probe, build, []int{0}, []int{0}, nil)
	}
	serial, err := Drain(mk(), NewContext())
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext()
	ctx.DOP = 4
	parallel, err := Drain(mk(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, serial, parallel)
	if ctx.Stats.ParallelWorkers == 0 {
		t.Error("hash-join build did not fork workers")
	}
}

// TestContextCancelScopes: canceling a forked scope must not cancel the
// parent, while canceling the parent is visible in the fork.
func TestContextCancelScopes(t *testing.T) {
	root := NewContext()
	workers := root.forkScope(2)
	workers[0].Cancel()
	if !workers[1].Canceled() {
		t.Error("sibling worker does not observe fork-scope cancel")
	}
	if root.Canceled() {
		t.Error("fork-scope cancel leaked into the parent context")
	}
	root2 := NewContext()
	root2.Cancel()
	w := root2.forkScope(1)
	if !w[0].Canceled() {
		t.Error("worker does not observe parent cancel")
	}

	// a cancel issued AFTER the fork must reach the workers, including on
	// a zero-value context (forkScope materializes the parent scope
	// before capturing it)
	root3 := &Context{}
	w3 := root3.forkScope(2)
	if w3[0].Canceled() {
		t.Error("fresh worker already canceled")
	}
	root3.Cancel()
	if !w3[0].Canceled() || !w3[1].Canceled() {
		t.Error("workers do not observe a parent cancel issued after the fork")
	}
}
