package exec

import (
	"fmt"
	"sort"

	"htapxplain/internal/colstore"
	"htapxplain/internal/rowstore"
	"htapxplain/internal/sqlparser"
	"htapxplain/internal/value"
)

// Operator is a materializing physical operator: Run produces the full
// result set and records work counters into the context.
type Operator interface {
	Schema() Schema
	Run(ctx *Context) ([]value.Row, error)
}

// ---------------------------------------------------------------- scans

// RowTableScan is a full heap scan of a row-store table.
type RowTableScan struct {
	Table   *rowstore.Table
	Binding string
	out     Schema
}

// NewRowTableScan constructs a full-table scan.
func NewRowTableScan(t *rowstore.Table, binding string) *RowTableScan {
	return &RowTableScan{Table: t, Binding: binding, out: TableSchema(t.Meta, binding)}
}

func (s *RowTableScan) Schema() Schema { return s.out }

func (s *RowTableScan) Run(ctx *Context) ([]value.Row, error) {
	rows := s.Table.Scan()
	ctx.Stats.RowsScanned += int64(len(rows))
	ctx.Stats.BytesScanned += int64(len(rows)) * s.Table.Meta.AvgRowBytes
	return rows, nil
}

// RowIndexScan fetches rows through an ordered index: either a set of
// point keys (equality / IN list) or a single range.
type RowIndexScan struct {
	Table   *rowstore.Table
	Index   *rowstore.Index
	Binding string
	Keys    []value.Value // point lookups; nil → use range
	Lo, Hi  *value.Value
	out     Schema
}

// NewRowIndexScan constructs an index access path.
func NewRowIndexScan(t *rowstore.Table, ix *rowstore.Index, binding string, keys []value.Value, lo, hi *value.Value) *RowIndexScan {
	return &RowIndexScan{Table: t, Index: ix, Binding: binding, Keys: keys, Lo: lo, Hi: hi,
		out: TableSchema(t.Meta, binding)}
}

func (s *RowIndexScan) Schema() Schema { return s.out }

func (s *RowIndexScan) Run(ctx *Context) ([]value.Row, error) {
	var ids []int32
	if s.Keys != nil {
		ctx.Stats.IndexProbes += int64(len(s.Keys))
		if len(s.Keys) == 1 {
			// point lookup: iterate the index's posting list in place
			ids = s.Index.Lookup(s.Keys[0])
		} else {
			for _, k := range s.Keys {
				ids = append(ids, s.Index.Lookup(k)...)
			}
		}
	} else {
		ctx.Stats.IndexProbes++
		ids = s.Index.Range(s.Lo, s.Hi)
	}
	rows := make([]value.Row, len(ids))
	for i, id := range ids {
		rows[i] = s.Table.Row(id)
	}
	ctx.Stats.RowsScanned += int64(len(rows))
	ctx.Stats.BytesScanned += int64(len(rows)) * s.Table.Meta.AvgRowBytes
	return rows, nil
}

// RowIndexOrderScan returns rows in index-key order, stopping after
// LimitHint rows pass the optional predicate — the access path behind TP's
// index-ordered Top-N plans.
type RowIndexOrderScan struct {
	Table     *rowstore.Table
	Index     *rowstore.Index
	Binding   string
	Desc      bool
	LimitHint int // <=0 means no early stop
	Pred      Evaluator
	out       Schema
}

// NewRowIndexOrderScan constructs an index-order scan.
func NewRowIndexOrderScan(t *rowstore.Table, ix *rowstore.Index, binding string, desc bool, limitHint int, pred Evaluator) *RowIndexOrderScan {
	return &RowIndexOrderScan{Table: t, Index: ix, Binding: binding, Desc: desc,
		LimitHint: limitHint, Pred: pred, out: TableSchema(t.Meta, binding)}
}

func (s *RowIndexOrderScan) Schema() Schema { return s.out }

func (s *RowIndexOrderScan) Run(ctx *Context) ([]value.Row, error) {
	var ids []int32
	if s.Desc {
		ids = s.Index.Descending()
	} else {
		ids = s.Index.Ascending()
	}
	var out []value.Row
	for _, id := range ids {
		row := s.Table.Row(id)
		ctx.Stats.RowsScanned++
		ctx.Stats.BytesScanned += s.Table.Meta.AvgRowBytes
		if s.Pred != nil {
			ok, err := Truthy(s.Pred, row)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out = append(out, row)
		if s.LimitHint > 0 && len(out) >= s.LimitHint {
			break
		}
	}
	return out, nil
}

// ColTableScan is a columnar scan reading only the referenced columns,
// with optional predicate and zone-map pruning.
type ColTableScan struct {
	Table   *colstore.Table
	Binding string
	Cols    []int // table column positions to read (projection pushdown)
	Pred    Evaluator
	Pruner  *colstore.RangePruner // positions refer to Cols order below
	out     Schema
}

// NewColTableScan constructs a columnar scan over the given column subset.
// pred is compiled against the emitted (subset) schema.
func NewColTableScan(t *colstore.Table, binding string, cols []int, pred Evaluator, pruner *colstore.RangePruner) *ColTableScan {
	out := make(Schema, len(cols))
	full := TableSchema(t.Meta, binding)
	for i, c := range cols {
		out[i] = full[c]
	}
	return &ColTableScan{Table: t, Binding: binding, Cols: cols, Pred: pred, Pruner: pruner, out: out}
}

func (s *ColTableScan) Schema() Schema { return s.out }

func (s *ColTableScan) Run(ctx *Context) ([]value.Row, error) {
	row := make(value.Row, len(s.Cols))
	var evalErr error
	pred := func(id int) bool {
		for j, c := range s.Cols {
			row[j] = s.Table.Column(c).Value(id)
		}
		if s.Pred == nil {
			return true
		}
		ok, err := Truthy(s.Pred, row)
		if err != nil {
			evalErr = err
			return false
		}
		return ok
	}
	ids, st := s.Table.Scan(s.Cols, s.Pruner, pred)
	if evalErr != nil {
		return nil, evalErr
	}
	ctx.Stats.RowsScanned += int64(st.RowsVisited)
	ctx.Stats.ChunksSkipped += int64(st.ChunksSkipped)
	// modeled bytes: column subset width only — the columnar advantage
	perCol := s.Table.Meta.AvgRowBytes / int64(len(s.Table.Meta.Columns))
	if perCol < 1 {
		perCol = 1
	}
	ctx.Stats.BytesScanned += int64(st.RowsVisited) * perCol * int64(len(s.Cols))
	return s.Table.Materialize(ids, s.Cols), nil
}

// ---------------------------------------------------------------- filter / project

// FilterOp applies a predicate to its child's output.
type FilterOp struct {
	Child Operator
	Pred  Evaluator
}

func (f *FilterOp) Schema() Schema { return f.Child.Schema() }

func (f *FilterOp) Run(ctx *Context) ([]value.Row, error) {
	in, err := f.Child.Run(ctx)
	if err != nil {
		return nil, err
	}
	out := in[:0:0]
	for _, row := range in {
		ok, err := Truthy(f.Pred, row)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, row)
		}
	}
	return out, nil
}

// ProjectOp evaluates expressions into a new schema.
type ProjectOp struct {
	Child Operator
	Evals []Evaluator
	Out   Schema
}

func (p *ProjectOp) Schema() Schema { return p.Out }

func (p *ProjectOp) Run(ctx *Context) ([]value.Row, error) {
	in, err := p.Child.Run(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]value.Row, len(in))
	for i, row := range in {
		nr := make(value.Row, len(p.Evals))
		for j, ev := range p.Evals {
			v, err := ev(row)
			if err != nil {
				return nil, err
			}
			nr[j] = v
		}
		out[i] = nr
	}
	return out, nil
}

// ---------------------------------------------------------------- joins

// NestedLoopJoin joins outer × inner with an arbitrary predicate over the
// concatenated schema. The inner input is materialized once and rescanned
// per outer row (comparisons are counted — this is what makes indexless TP
// joins slow at scale).
type NestedLoopJoin struct {
	Outer, Inner Operator
	Pred         Evaluator // may be nil (cross join)
	out          Schema
}

// NewNestedLoopJoin constructs the join; pred must be compiled against
// outer.Schema().Concat(inner.Schema()).
func NewNestedLoopJoin(outer, inner Operator, pred Evaluator) *NestedLoopJoin {
	return &NestedLoopJoin{Outer: outer, Inner: inner, Pred: pred,
		out: outer.Schema().Concat(inner.Schema())}
}

func (j *NestedLoopJoin) Schema() Schema { return j.out }

func (j *NestedLoopJoin) Run(ctx *Context) ([]value.Row, error) {
	outerRows, err := j.Outer.Run(ctx)
	if err != nil {
		return nil, err
	}
	innerRows, err := j.Inner.Run(ctx)
	if err != nil {
		return nil, err
	}
	var out []value.Row
	combined := make(value.Row, len(j.out))
	for _, o := range outerRows {
		for _, in := range innerRows {
			ctx.Stats.JoinComparisons++
			copy(combined, o)
			copy(combined[len(o):], in)
			ok := true
			if j.Pred != nil {
				ok, err = Truthy(j.Pred, combined)
				if err != nil {
					return nil, err
				}
			}
			if ok {
				out = append(out, combined.Clone())
			}
		}
	}
	return out, nil
}

// IndexNLJoin is a nested-loop join whose inner side is an index probe:
// for each outer row, look up matching inner rows by key. This is TP's
// preferred join when an index exists on the inner join column.
type IndexNLJoin struct {
	Outer       Operator
	OuterKeyCol int
	InnerTable  *rowstore.Table
	InnerIndex  *rowstore.Index
	InnerBind   string
	Residual    Evaluator // over concat schema; may be nil
	out         Schema
}

// NewIndexNLJoin constructs an index nested-loop join.
func NewIndexNLJoin(outer Operator, outerKeyCol int, it *rowstore.Table, ix *rowstore.Index, innerBind string, residual Evaluator) *IndexNLJoin {
	return &IndexNLJoin{
		Outer: outer, OuterKeyCol: outerKeyCol, InnerTable: it, InnerIndex: ix,
		InnerBind: innerBind, Residual: residual,
		out: outer.Schema().Concat(TableSchema(it.Meta, innerBind)),
	}
}

func (j *IndexNLJoin) Schema() Schema { return j.out }

func (j *IndexNLJoin) Run(ctx *Context) ([]value.Row, error) {
	outerRows, err := j.Outer.Run(ctx)
	if err != nil {
		return nil, err
	}
	var out []value.Row
	combined := make(value.Row, len(j.out))
	for _, o := range outerRows {
		ctx.Stats.IndexProbes++
		ids := j.InnerIndex.Lookup(o[j.OuterKeyCol])
		for _, id := range ids {
			in := j.InnerTable.Row(id)
			ctx.Stats.RowsScanned++
			ctx.Stats.BytesScanned += j.InnerTable.Meta.AvgRowBytes
			if j.Residual == nil {
				// no residual to pre-check: build the output row in place,
				// skipping the scratch-row copy + clone
				nr := make(value.Row, len(j.out))
				copy(nr, o)
				copy(nr[len(o):], in)
				out = append(out, nr)
				continue
			}
			copy(combined, o)
			copy(combined[len(o):], in)
			ok, err := Truthy(j.Residual, combined)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, combined.Clone())
			}
		}
	}
	return out, nil
}

// HashJoin builds a hash table on the Build child and probes it with the
// Probe child. Output schema is probe ++ build (probe side listed first,
// matching the AP optimizer's plan rendering).
type HashJoin struct {
	Probe, Build         Operator
	ProbeKeys, BuildKeys []int
	Residual             Evaluator // over concat(probe, build); may be nil
	out                  Schema
}

// NewHashJoin constructs a hash join.
func NewHashJoin(probe, build Operator, probeKeys, buildKeys []int, residual Evaluator) *HashJoin {
	return &HashJoin{Probe: probe, Build: build, ProbeKeys: probeKeys, BuildKeys: buildKeys,
		Residual: residual, out: probe.Schema().Concat(build.Schema())}
}

func (j *HashJoin) Schema() Schema { return j.out }

func (j *HashJoin) Run(ctx *Context) ([]value.Row, error) {
	buildRows, err := j.Build.Run(ctx)
	if err != nil {
		return nil, err
	}
	ht := make(map[string][]value.Row, len(buildRows))
	for _, r := range buildRows {
		ctx.Stats.HashBuildRows++
		k := r.Key(j.BuildKeys)
		ht[k] = append(ht[k], r)
	}
	probeRows, err := j.Probe.Run(ctx)
	if err != nil {
		return nil, err
	}
	var out []value.Row
	combined := make(value.Row, len(j.out))
	for _, p := range probeRows {
		ctx.Stats.HashProbeRows++
		for _, b := range ht[p.Key(j.ProbeKeys)] {
			if j.Residual == nil {
				// no residual to pre-check: build the output row in place,
				// skipping the scratch-row copy + clone
				nr := make(value.Row, len(j.out))
				copy(nr, p)
				copy(nr[len(p):], b)
				out = append(out, nr)
				continue
			}
			copy(combined, p)
			copy(combined[len(p):], b)
			ok, err := Truthy(j.Residual, combined)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, combined.Clone())
			}
		}
	}
	return out, nil
}

// ---------------------------------------------------------------- aggregation

// AggSpec describes one aggregate in the output.
type AggSpec struct {
	Func sqlparser.AggFunc
	Arg  Evaluator // nil for COUNT(*)
}

// HashAggregate groups its input by the group expressions and computes the
// aggregates. With no group expressions it produces a single global row.
// Both engines use this operator; their optimizers label it differently
// ('Group aggregate' vs 'Aggregate') and cost it differently.
type HashAggregate struct {
	Child  Operator
	Groups []Evaluator
	Aggs   []AggSpec
	Out    Schema // group columns followed by aggregate columns
}

func (a *HashAggregate) Schema() Schema { return a.Out }

type aggState struct {
	group  value.Row
	counts []int64
	sums   []float64
	mins   []value.Value
	maxs   []value.Value
	seen   []bool
}

func (a *HashAggregate) Run(ctx *Context) ([]value.Row, error) {
	in, err := a.Child.Run(ctx)
	if err != nil {
		return nil, err
	}
	groups := make(map[string]*aggState)
	var order []string
	for _, row := range in {
		g := make(value.Row, len(a.Groups))
		for i, ev := range a.Groups {
			v, err := ev(row)
			if err != nil {
				return nil, err
			}
			g[i] = v
		}
		key := g.Key(intRange(len(g)))
		st, ok := groups[key]
		if !ok {
			st = &aggState{
				group:  g,
				counts: make([]int64, len(a.Aggs)),
				sums:   make([]float64, len(a.Aggs)),
				mins:   make([]value.Value, len(a.Aggs)),
				maxs:   make([]value.Value, len(a.Aggs)),
				seen:   make([]bool, len(a.Aggs)),
			}
			groups[key] = st
			order = append(order, key)
			ctx.Stats.GroupsCreated++
		}
		for i, spec := range a.Aggs {
			if spec.Arg == nil { // COUNT(*)
				st.counts[i]++
				continue
			}
			v, err := spec.Arg(row)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				continue
			}
			st.counts[i]++
			if f, ok := v.AsFloat(); ok {
				st.sums[i] += f
			}
			if !st.seen[i] {
				st.mins[i], st.maxs[i] = v, v
				st.seen[i] = true
			} else {
				if v.Compare(st.mins[i]) < 0 {
					st.mins[i] = v
				}
				if v.Compare(st.maxs[i]) > 0 {
					st.maxs[i] = v
				}
			}
		}
	}
	// global aggregate over empty input still yields one row
	if len(a.Groups) == 0 && len(order) == 0 {
		st := &aggState{
			counts: make([]int64, len(a.Aggs)),
			sums:   make([]float64, len(a.Aggs)),
			mins:   make([]value.Value, len(a.Aggs)),
			maxs:   make([]value.Value, len(a.Aggs)),
			seen:   make([]bool, len(a.Aggs)),
		}
		groups[""] = st
		order = append(order, "")
	}
	out := make([]value.Row, 0, len(order))
	for _, key := range order {
		st := groups[key]
		row := make(value.Row, 0, len(a.Out))
		row = append(row, st.group...)
		for i, spec := range a.Aggs {
			switch spec.Func {
			case sqlparser.AggCount:
				row = append(row, value.NewInt(st.counts[i]))
			case sqlparser.AggSum:
				if st.counts[i] == 0 {
					row = append(row, value.Null)
				} else {
					row = append(row, value.NewFloat(st.sums[i]))
				}
			case sqlparser.AggAvg:
				if st.counts[i] == 0 {
					row = append(row, value.Null)
				} else {
					row = append(row, value.NewFloat(st.sums[i]/float64(st.counts[i])))
				}
			case sqlparser.AggMin:
				if !st.seen[i] {
					row = append(row, value.Null)
				} else {
					row = append(row, st.mins[i])
				}
			case sqlparser.AggMax:
				if !st.seen[i] {
					row = append(row, value.Null)
				} else {
					row = append(row, st.maxs[i])
				}
			default:
				return nil, fmt.Errorf("exec: unsupported aggregate %v", spec.Func)
			}
		}
		out = append(out, row)
	}
	return out, nil
}

func intRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// ---------------------------------------------------------------- ordering

// SortKey is one ORDER BY term.
type SortKey struct {
	Eval Evaluator
	Desc bool
}

func compareByKeys(keys []SortKey, a, b value.Row) (int, error) {
	for _, k := range keys {
		av, err := k.Eval(a)
		if err != nil {
			return 0, err
		}
		bv, err := k.Eval(b)
		if err != nil {
			return 0, err
		}
		c := av.Compare(bv)
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c, nil
		}
	}
	return 0, nil
}

// SortOp fully sorts its input.
type SortOp struct {
	Child Operator
	Keys  []SortKey
}

func (s *SortOp) Schema() Schema { return s.Child.Schema() }

func (s *SortOp) Run(ctx *Context) ([]value.Row, error) {
	in, err := s.Child.Run(ctx)
	if err != nil {
		return nil, err
	}
	ctx.Stats.RowsSorted += int64(len(in))
	// Sort a copy: scans may return storage-aliased slices, and sorting
	// those in place would permanently reorder the table heap under every
	// positional index (and race when plans run concurrently).
	out := make([]value.Row, len(in))
	copy(out, in)
	var sortErr error
	sort.SliceStable(out, func(i, j int) bool {
		c, err := compareByKeys(s.Keys, out[i], out[j])
		if err != nil && sortErr == nil {
			sortErr = err
		}
		return c < 0
	})
	if sortErr != nil {
		return nil, sortErr
	}
	return out, nil
}

// TopNOp keeps the first N+Offset rows in key order using a bounded
// selection (cheaper than a full sort), then applies the offset.
type TopNOp struct {
	Child  Operator
	Keys   []SortKey
	N      int64
	Offset int64
}

func (t *TopNOp) Schema() Schema { return t.Child.Schema() }

func (t *TopNOp) Run(ctx *Context) ([]value.Row, error) {
	in, err := t.Child.Run(ctx)
	if err != nil {
		return nil, err
	}
	ctx.Stats.RowsTopN += int64(len(in))
	keep := t.N + t.Offset
	if keep < 0 {
		keep = 0
	}
	// bounded insertion into a sorted prefix of size keep
	var top []value.Row
	var insErr error
	for _, row := range in {
		pos := sort.Search(len(top), func(i int) bool {
			c, err := compareByKeys(t.Keys, row, top[i])
			if err != nil && insErr == nil {
				insErr = err
			}
			return c < 0
		})
		if int64(len(top)) < keep {
			top = append(top, nil)
			copy(top[pos+1:], top[pos:])
			top[pos] = row
		} else if pos < len(top) {
			copy(top[pos+1:], top[pos:len(top)-1])
			top[pos] = row
		}
	}
	if insErr != nil {
		return nil, insErr
	}
	if t.Offset >= int64(len(top)) {
		return nil, nil
	}
	return top[t.Offset:], nil
}

// LimitOp applies LIMIT/OFFSET without ordering.
type LimitOp struct {
	Child  Operator
	N      int64
	Offset int64
}

func (l *LimitOp) Schema() Schema { return l.Child.Schema() }

func (l *LimitOp) Run(ctx *Context) ([]value.Row, error) {
	in, err := l.Child.Run(ctx)
	if err != nil {
		return nil, err
	}
	if l.Offset >= int64(len(in)) {
		return nil, nil
	}
	in = in[l.Offset:]
	if l.N >= 0 && l.N < int64(len(in)) {
		in = in[:l.N]
	}
	return in, nil
}
