package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"htapxplain/internal/colstore"
	"htapxplain/internal/rowstore"
	"htapxplain/internal/sqlparser"
	"htapxplain/internal/value"
)

// Every physical operator implements the vectorized BatchOperator
// interface.
var (
	_ BatchOperator = (*RowTableScan)(nil)
	_ BatchOperator = (*RowIndexScan)(nil)
	_ BatchOperator = (*RowIndexOrderScan)(nil)
	_ BatchOperator = (*ColTableScan)(nil)
	_ BatchOperator = (*FilterOp)(nil)
	_ BatchOperator = (*ProjectOp)(nil)
	_ BatchOperator = (*NestedLoopJoin)(nil)
	_ BatchOperator = (*IndexNLJoin)(nil)
	_ BatchOperator = (*HashJoin)(nil)
	_ BatchOperator = (*HashAggregate)(nil)
	_ BatchOperator = (*SortOp)(nil)
	_ BatchOperator = (*TopNOp)(nil)
	_ BatchOperator = (*LimitOp)(nil)
)

// ---------------------------------------------------------------- scans

// RowTableScan is a full heap scan of a row-store table, adapted into
// batches at the leaf (the row store has no native vectors).
type RowTableScan struct {
	Table   *rowstore.Table
	Binding string
	out     Schema

	rows   []value.Row
	pos    int
	rw     rowWindow
	closed bool
}

// NewRowTableScan constructs a full-table scan.
func NewRowTableScan(t *rowstore.Table, binding string) *RowTableScan {
	return &RowTableScan{Table: t, Binding: binding, out: TableSchema(t.Meta, binding)}
}

func (s *RowTableScan) Schema() Schema { return s.out }

func (s *RowTableScan) Clone() BatchOperator {
	return &RowTableScan{Table: s.Table, Binding: s.Binding, out: s.out}
}

func (s *RowTableScan) Open(ctx *Context) error {
	s.closed = false
	s.rows = s.Table.Scan()
	s.pos = 0
	s.rw.init(len(s.out))
	return nil
}

func (s *RowTableScan) Next(ctx *Context) (*Batch, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	end := s.pos + BatchSize
	if end > len(s.rows) {
		end = len(s.rows)
	}
	b := s.rw.fill(s.rows[s.pos:end])
	n := int64(end - s.pos)
	s.pos = end
	ctx.Stats.RowsScanned += n
	ctx.Stats.BytesScanned += n * s.Table.Meta.AvgRowBytes
	ctx.Stats.BatchesProduced++
	return b, nil
}

func (s *RowTableScan) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.rows = nil
	return nil
}

// RowIndexScan fetches rows through an ordered index: either a set of
// point keys (equality / IN list) or a single range.
type RowIndexScan struct {
	Table   *rowstore.Table
	Index   *rowstore.Index
	Binding string
	Keys    []value.Value // point lookups; nil → use range
	Lo, Hi  *value.Value
	out     Schema

	ids     []int32
	heap    []value.Row
	pos     int
	rowsBuf []value.Row
	rw      rowWindow
	closed  bool
}

// NewRowIndexScan constructs an index access path.
func NewRowIndexScan(t *rowstore.Table, ix *rowstore.Index, binding string, keys []value.Value, lo, hi *value.Value) *RowIndexScan {
	return &RowIndexScan{Table: t, Index: ix, Binding: binding, Keys: keys, Lo: lo, Hi: hi,
		out: TableSchema(t.Meta, binding)}
}

func (s *RowIndexScan) Schema() Schema { return s.out }

func (s *RowIndexScan) Clone() BatchOperator {
	return &RowIndexScan{Table: s.Table, Index: s.Index, Binding: s.Binding,
		Keys: s.Keys, Lo: s.Lo, Hi: s.Hi, out: s.out}
}

func (s *RowIndexScan) Open(ctx *Context) error {
	s.closed = false
	s.ids = s.ids[:0]
	s.pos = 0
	if s.Keys != nil {
		ctx.Stats.IndexProbes += int64(len(s.Keys))
		for _, k := range s.Keys {
			s.ids = append(s.ids, s.Index.Lookup(k)...)
		}
	} else {
		ctx.Stats.IndexProbes++
		s.ids = append(s.ids, s.Index.Range(s.Lo, s.Hi)...)
	}
	// snapshot the heap after collecting ids: every id collected above is
	// below the snapshot's length, and heap slots are immutable once written
	s.heap = s.Table.Heap()
	s.rw.init(len(s.out))
	return nil
}

func (s *RowIndexScan) Next(ctx *Context) (*Batch, error) {
	if s.pos >= len(s.ids) {
		return nil, nil
	}
	end := s.pos + BatchSize
	if end > len(s.ids) {
		end = len(s.ids)
	}
	s.rowsBuf = s.rowsBuf[:0]
	for _, id := range s.ids[s.pos:end] {
		s.rowsBuf = append(s.rowsBuf, s.heap[id])
	}
	n := int64(end - s.pos)
	s.pos = end
	ctx.Stats.RowsScanned += n
	ctx.Stats.BytesScanned += n * s.Table.Meta.AvgRowBytes
	ctx.Stats.BatchesProduced++
	return s.rw.fill(s.rowsBuf), nil
}

func (s *RowIndexScan) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.rowsBuf, s.heap = nil, nil
	return nil
}

// RowIndexOrderScan returns rows in index-key order, stopping after
// LimitHint rows pass the optional predicate — the access path behind TP's
// index-ordered Top-N plans.
type RowIndexOrderScan struct {
	Table     *rowstore.Table
	Index     *rowstore.Index
	Binding   string
	Desc      bool
	LimitHint int // <=0 means no early stop
	Pred      Evaluator
	out       Schema

	ids     []int32
	heap    []value.Row
	pos     int
	matched int
	rowsBuf []value.Row
	rw      rowWindow
	closed  bool
}

// NewRowIndexOrderScan constructs an index-order scan.
func NewRowIndexOrderScan(t *rowstore.Table, ix *rowstore.Index, binding string, desc bool, limitHint int, pred Evaluator) *RowIndexOrderScan {
	return &RowIndexOrderScan{Table: t, Index: ix, Binding: binding, Desc: desc,
		LimitHint: limitHint, Pred: pred, out: TableSchema(t.Meta, binding)}
}

func (s *RowIndexOrderScan) Schema() Schema { return s.out }

func (s *RowIndexOrderScan) Clone() BatchOperator {
	return &RowIndexOrderScan{Table: s.Table, Index: s.Index, Binding: s.Binding,
		Desc: s.Desc, LimitHint: s.LimitHint, Pred: s.Pred, out: s.out}
}

func (s *RowIndexOrderScan) Open(ctx *Context) error {
	s.closed = false
	if s.Desc {
		s.ids = s.Index.Descending()
	} else {
		s.ids = s.Index.Ascending()
	}
	s.heap = s.Table.Heap()
	s.pos, s.matched = 0, 0
	s.rw.init(len(s.out))
	return nil
}

func (s *RowIndexOrderScan) Next(ctx *Context) (*Batch, error) {
	if s.LimitHint > 0 && s.matched >= s.LimitHint {
		return nil, nil
	}
	s.rowsBuf = s.rowsBuf[:0]
	for s.pos < len(s.ids) && len(s.rowsBuf) < BatchSize {
		row := s.heap[s.ids[s.pos]]
		s.pos++
		ctx.Stats.RowsScanned++
		ctx.Stats.BytesScanned += s.Table.Meta.AvgRowBytes
		if s.Pred != nil {
			ok, err := Truthy(s.Pred, row)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		s.rowsBuf = append(s.rowsBuf, row)
		s.matched++
		if s.LimitHint > 0 && s.matched >= s.LimitHint {
			break
		}
	}
	if len(s.rowsBuf) == 0 {
		return nil, nil
	}
	ctx.Stats.BatchesProduced++
	return s.rw.fill(s.rowsBuf), nil
}

func (s *RowIndexOrderScan) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.ids, s.rowsBuf, s.heap = nil, nil, nil
	return nil
}

// ColTableScan is a columnar scan reading only the referenced columns, with
// optional predicate and zone-map pruning. It is the engine's native batch
// source and its native ParallelSource: scan work is drawn morsel-at-a-time
// from a colstore.Morsels cursor — a private one over a freshly pinned view
// in serial execution, or a shared one (built by ForkShared) that spreads
// disjoint chunk-aligned morsels across worker clones. Zone-map pruning
// lives inside the morsel cursor, so skipped chunks are counted at dispatch
// and never reach the scan. Each non-pruned base morsel becomes one batch
// under the "alias or decode, never mutate" contract: raw chunk vectors
// are aliased directly with zero per-row materialization, encoded chunks
// are decoded into pooled per-clone buffers (sparsely, when the pruner's
// encoded-domain prefilter already narrowed the candidates), and the
// predicate only narrows the selection vector — running on base chunks
// only when the pruner is not an exact encoding of it. The
// pinned view unions the immutable base chunks (filtering rows deleted
// since the last merge through the selection vector) with the replicated
// delta rows, which are batched through a private projection slab — AP
// reads are fresh up to the column store's replication watermark, and the
// delta snapshot is pinned exactly once per query however many workers
// share the cursor.
type ColTableScan struct {
	Table   *colstore.Table
	Binding string
	Cols    []int // table column positions to read (projection pushdown)
	Pred    Evaluator
	Pruner  *colstore.RangePruner
	out     Schema

	// shared, when set (by ForkShared), is the cross-worker morsel cursor
	// this clone draws from instead of pinning its own view.
	shared *colstore.Morsels

	src     *colstore.Morsels
	view    colstore.View
	batch   Batch
	selBuf  []int32
	preSel  []int32 // encoded-domain prefilter scratch
	scratch value.Row
	// chunkBuf holds the current morsel's per-column encoded chunks;
	// decodeBuf is the pooled per-column decode target for encoded chunks
	// (lazily allocated, retained across morsels and pooled executions so
	// steady-state decode allocates nothing).
	chunkBuf  []*colstore.EncodedChunk
	decodeBuf [][]value.Value
	deltaSlab []value.Value
	closed    bool
}

// NewColTableScan constructs a columnar scan over the given column subset.
// pred is compiled against the emitted (subset) schema.
func NewColTableScan(t *colstore.Table, binding string, cols []int, pred Evaluator, pruner *colstore.RangePruner) *ColTableScan {
	out := make(Schema, len(cols))
	full := TableSchema(t.Meta, binding)
	for i, c := range cols {
		out[i] = full[c]
	}
	return &ColTableScan{Table: t, Binding: binding, Cols: cols, Pred: pred, Pruner: pruner, out: out}
}

func (s *ColTableScan) Schema() Schema { return s.out }

func (s *ColTableScan) Clone() BatchOperator {
	return &ColTableScan{Table: s.Table, Binding: s.Binding, Cols: s.Cols,
		Pred: s.Pred, Pruner: s.Pruner, out: s.out}
}

// ForkShared pins one view of the table and returns scan clones that all
// draw morsels from a single shared cursor — the ParallelSource contract.
// The clone count is dop clamped to the morsel supply: workers beyond it
// would only pay goroutine and Open overhead to receive nothing. Pruning
// state and the delta snapshot live in the shared cursor; per-batch
// buffers stay private to each clone.
func (s *ColTableScan) ForkShared(dop int) []BatchOperator {
	src := colstore.NewMorsels(s.Table.View(), s.Pruner)
	if n := src.NumMorsels(); dop > n {
		dop = n
	}
	if dop < 1 {
		dop = 1
	}
	out := make([]BatchOperator, dop)
	for i := range out {
		c := s.Clone().(*ColTableScan)
		c.shared = src
		out[i] = c
	}
	return out
}

func (s *ColTableScan) Open(ctx *Context) error {
	s.closed = false
	if s.shared != nil {
		s.src = s.shared
		s.view = s.shared.View
	} else {
		s.view = s.Table.View()
		s.src = colstore.NewMorsels(s.view, s.Pruner)
	}
	if s.batch.Cols == nil {
		s.batch.Cols = make([][]value.Value, len(s.Cols))
		s.scratch = make(value.Row, len(s.Cols))
		s.chunkBuf = make([]*colstore.EncodedChunk, len(s.Cols))
		s.decodeBuf = make([][]value.Value, len(s.Cols))
	}
	return nil
}

func (s *ColTableScan) Next(ctx *Context) (*Batch, error) {
	// modeled bytes: column subset width only — the columnar advantage
	perCol := s.Table.Meta.AvgRowBytes / int64(len(s.Table.Meta.Columns))
	if perCol < 1 {
		perCol = 1
	}
	for {
		if ctx.Canceled() {
			return nil, nil // early termination reads as exhaustion
		}
		m, pruned, ok := s.src.Next()
		ctx.Stats.ChunksSkipped += pruned
		if !ok {
			return nil, nil
		}
		ctx.Stats.MorselsDispatched++
		var b *Batch
		var err error
		if m.Base {
			ctx.Stats.ChunksScanned++
			b, err = s.baseBatch(ctx, m, perCol)
		} else {
			b, err = s.deltaBatch(ctx, m, perCol)
		}
		if err != nil {
			return nil, err
		}
		if b == nil {
			continue // fully filtered morsel
		}
		ctx.Stats.BatchesProduced++
		return b, nil
	}
}

// baseBatch turns one base-chunk morsel into a batch under the "alias or
// decode, never mutate" contract: raw chunks are aliased directly, encoded
// chunks are decoded into pooled buffers — sparsely when an encoded-domain
// prefilter already narrowed the candidates. When the pruner is an exact
// representation of the scan's predicate, the chunk-level RangeSel over
// the (possibly encoded) pruner column IS the filter, and the compiled
// row predicate never runs on base chunks. Returns nil when no row
// survives.
func (s *ColTableScan) baseBatch(ctx *Context, m colstore.Morsel, perCol int64) (*Batch, error) {
	rows := m.Rows()
	ctx.Stats.RowsScanned += int64(rows)
	ctx.Stats.BytesScanned += int64(rows) * perCol * int64(len(s.Cols))
	anyEnc := false
	for j, c := range s.Cols {
		ch := s.view.Cols[c].Chunk(m.Chunk)
		s.chunkBuf[j] = ch
		if ch.Enc != colstore.EncRaw {
			anyEnc = true
		}
	}
	// encoded-chunk accounting: a chunk with at least one encoded column
	// counts as decoded when some column needed a full decode, encoded
	// when the kernels got away with aliasing plus at most a sparse decode
	fullDecode := false
	countChunk := func() {
		if !anyEnc {
			return
		}
		if fullDecode {
			ctx.Stats.DecodedChunks++
		} else {
			ctx.Stats.EncodedChunks++
		}
	}

	// 1) encoded-domain prefilter: when the pruner is exact it is the
	// whole predicate; otherwise it only pre-narrows the candidate set
	// (the sargable conjunct bounds every match) before any decode.
	var sel []int32   // candidate positions; nil = all rows
	selExact := false // sel already reflects the full predicate
	if pr := s.Pruner; pr != nil && (pr.Exact || anyEnc) {
		pch := s.view.Cols[pr.Col].Chunk(m.Chunk)
		res, all := pch.RangeSel(pr.Lo, pr.Hi, pr.LoStrict, pr.HiStrict, s.preSel[:0])
		s.preSel = res
		if !all {
			if len(res) == 0 {
				countChunk()
				return nil, nil
			}
			sel = res
		}
		selExact = pr.Exact
	}

	// 2) assemble vectors: alias raw chunks, decode encoded ones into the
	// pooled per-column buffers (only the candidate positions when a
	// selection vector survives the prefilter)
	for j := range s.Cols {
		ch := s.chunkBuf[j]
		if ch.Enc == colstore.EncRaw {
			s.batch.Cols[j] = ch.Raw
			continue
		}
		buf := s.decodeBuf[j]
		if cap(buf) < rows {
			buf = make([]value.Value, colstore.ChunkSize)
		}
		buf = buf[:rows]
		if sel != nil {
			ch.DecodeSel(buf, sel)
		} else {
			buf = ch.Decode(buf)
			fullDecode = true
		}
		s.decodeBuf[j] = buf
		s.batch.Cols[j] = buf
	}
	s.batch.Len = rows
	s.batch.Sel = nil

	needDead := s.view.BaseDead != nil
	needPred := s.Pred != nil && !selExact
	if !needDead && !needPred {
		s.batch.Sel = sel
		countChunk()
		return &s.batch, nil
	}

	// 3) narrow the candidates by the delete set and (unless the prefilter
	// was exact) the compiled row predicate
	out := s.selBuf[:0]
	n := rows
	if sel != nil {
		n = len(sel)
	}
	for ii := 0; ii < n; ii++ {
		i := ii
		if sel != nil {
			i = int(sel[ii])
		}
		if needDead && s.view.BaseDead[int32(m.Lo+i)] {
			continue
		}
		if needPred {
			s.batch.FillRow(i, s.scratch)
			ok, err := Truthy(s.Pred, s.scratch)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out = append(out, int32(i))
	}
	s.selBuf = out
	countChunk()
	if len(out) == 0 {
		return nil, nil
	}
	s.batch.Sel = out
	return &s.batch, nil
}

// deltaBatch emits one window of the replicated-but-unmerged delta rows:
// the batch projects the needed columns into a private reusable slab
// (delta rows are full table width, batches carry only the scanned
// subset). Returns nil when no row survives the predicate.
func (s *ColTableScan) deltaBatch(ctx *Context, m colstore.Morsel, perCol int64) (*Batch, error) {
	width := len(s.Cols)
	rows := s.view.Delta[m.Lo:m.Hi]
	nr := len(rows)
	if cap(s.deltaSlab) < nr*width {
		s.deltaSlab = make([]value.Value, nr*width)
	}
	for j, c := range s.Cols {
		col := s.deltaSlab[j*nr : j*nr+nr : j*nr+nr]
		for i, r := range rows {
			col[i] = r[c]
		}
		s.batch.Cols[j] = col
	}
	s.batch.Len = nr
	s.batch.Sel = nil
	ctx.Stats.RowsScanned += int64(nr)
	ctx.Stats.BytesScanned += int64(nr) * perCol * int64(width)
	if s.Pred != nil {
		sel := s.selBuf[:0]
		for i := 0; i < nr; i++ {
			s.batch.FillRow(i, s.scratch)
			ok, err := Truthy(s.Pred, s.scratch)
			if err != nil {
				return nil, err
			}
			if ok {
				sel = append(sel, int32(i))
			}
		}
		s.selBuf = sel
		if len(sel) == 0 {
			return nil, nil
		}
		s.batch.Sel = sel
	}
	return &s.batch, nil
}

func (s *ColTableScan) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	for j := range s.batch.Cols {
		s.batch.Cols[j] = nil // drop storage aliases
	}
	for j := range s.chunkBuf {
		s.chunkBuf[j] = nil // drop encoded-chunk aliases
	}
	s.view = colstore.View{}
	s.src = nil
	return nil
}

// ---------------------------------------------------------------- filter / project

// FilterOp applies a predicate to its child's output by narrowing the
// selection vector in place — no values are copied.
type FilterOp struct {
	Child Operator
	Pred  Evaluator

	scratch value.Row
	selBuf  []int32
	closed  bool
}

func (f *FilterOp) Schema() Schema { return f.Child.Schema() }

func (f *FilterOp) Clone() BatchOperator {
	return &FilterOp{Child: f.Child.Clone(), Pred: f.Pred}
}

func (f *FilterOp) Open(ctx *Context) error {
	f.closed = false
	if f.scratch == nil {
		f.scratch = make(value.Row, len(f.Schema()))
	}
	return f.Child.Open(ctx)
}

func (f *FilterOp) Next(ctx *Context) (*Batch, error) {
	for {
		b, err := f.Child.Next(ctx)
		if err != nil || b == nil {
			return nil, err
		}
		sel := f.selBuf[:0]
		n := b.NumActive()
		for i := 0; i < n; i++ {
			p := b.PosAt(i)
			for j := range b.Cols {
				f.scratch[j] = b.Cols[j][p]
			}
			ok, err := Truthy(f.Pred, f.scratch)
			if err != nil {
				return nil, err
			}
			if ok {
				sel = append(sel, int32(p))
			}
		}
		f.selBuf = sel
		if len(sel) == 0 {
			continue
		}
		b.Sel = sel
		ctx.Stats.BatchesProduced++
		return b, nil
	}
}

func (f *FilterOp) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	return f.Child.Close()
}

// ProjectOp evaluates expressions into a new schema, producing dense output
// vectors (one value per active input row).
type ProjectOp struct {
	Child Operator
	Evals []Evaluator
	Out   Schema

	scratch value.Row
	out     outBuffer
	rowBuf  value.Row
	closed  bool
}

func (p *ProjectOp) Schema() Schema { return p.Out }

func (p *ProjectOp) Clone() BatchOperator {
	return &ProjectOp{Child: p.Child.Clone(), Evals: p.Evals, Out: p.Out}
}

func (p *ProjectOp) Open(ctx *Context) error {
	p.closed = false
	if p.scratch == nil {
		p.scratch = make(value.Row, len(p.Child.Schema()))
		p.rowBuf = make(value.Row, len(p.Evals))
	}
	p.out.init(len(p.Evals))
	return p.Child.Open(ctx)
}

func (p *ProjectOp) Next(ctx *Context) (*Batch, error) {
	b, err := p.Child.Next(ctx)
	if err != nil || b == nil {
		return nil, err
	}
	p.out.reset()
	n := b.NumActive()
	for i := 0; i < n; i++ {
		b.FillRow(i, p.scratch)
		for j, ev := range p.Evals {
			v, err := ev(p.scratch)
			if err != nil {
				return nil, err
			}
			p.rowBuf[j] = v
		}
		p.out.appendRow(p.rowBuf)
	}
	return p.out.take(ctx), nil
}

func (p *ProjectOp) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	return p.Child.Close()
}

// ---------------------------------------------------------------- joins

// NestedLoopJoin joins outer × inner with an arbitrary predicate over the
// concatenated schema. The inner input is materialized once at Open and
// rescanned per outer row (comparisons are counted — this is what makes
// indexless TP joins slow at scale); the outer side streams batch-at-a-time.
type NestedLoopJoin struct {
	Outer, Inner Operator
	Pred         Evaluator // may be nil (cross join)
	out          Schema

	innerRows []value.Row
	combined  value.Row
	outBuf    outBuffer
	closed    bool
}

// NewNestedLoopJoin constructs the join; pred must be compiled against
// outer.Schema().Concat(inner.Schema()).
func NewNestedLoopJoin(outer, inner Operator, pred Evaluator) *NestedLoopJoin {
	return &NestedLoopJoin{Outer: outer, Inner: inner, Pred: pred,
		out: outer.Schema().Concat(inner.Schema())}
}

func (j *NestedLoopJoin) Schema() Schema { return j.out }

func (j *NestedLoopJoin) Clone() BatchOperator {
	return &NestedLoopJoin{Outer: j.Outer.Clone(), Inner: j.Inner.Clone(),
		Pred: j.Pred, out: j.out}
}

func (j *NestedLoopJoin) Open(ctx *Context) error {
	j.closed = false
	// the tree is private by the time it executes (Drain/Runner clone it),
	// so the inner child can be drained in place, keeping its buffers
	rows, err := drainOp(j.Inner, ctx)
	if err != nil {
		return err
	}
	j.innerRows = rows
	if j.combined == nil {
		j.combined = make(value.Row, len(j.out))
	}
	j.outBuf.init(len(j.out))
	return j.Outer.Open(ctx)
}

func (j *NestedLoopJoin) Next(ctx *Context) (*Batch, error) {
	outerWidth := len(j.Outer.Schema())
	for {
		ob, err := j.Outer.Next(ctx)
		if err != nil || ob == nil {
			return nil, err
		}
		j.outBuf.reset()
		n := ob.NumActive()
		for i := 0; i < n; i++ {
			p := ob.PosAt(i)
			for c := 0; c < outerWidth; c++ {
				j.combined[c] = ob.Cols[c][p]
			}
			for _, in := range j.innerRows {
				ctx.Stats.JoinComparisons++
				copy(j.combined[outerWidth:], in)
				ok := true
				if j.Pred != nil {
					ok, err = Truthy(j.Pred, j.combined)
					if err != nil {
						return nil, err
					}
				}
				if ok {
					j.outBuf.appendRow(j.combined)
				}
			}
		}
		if j.outBuf.len() > 0 {
			return j.outBuf.take(ctx), nil
		}
	}
}

func (j *NestedLoopJoin) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	j.innerRows = nil
	return j.Outer.Close()
}

// IndexNLJoin is a nested-loop join whose inner side is an index probe:
// each outer batch is probed row-by-row through the inner index. This is
// TP's preferred join when an index exists on the inner join column.
type IndexNLJoin struct {
	Outer       Operator
	OuterKeyCol int
	InnerTable  *rowstore.Table
	InnerIndex  *rowstore.Index
	InnerBind   string
	Residual    Evaluator // over concat schema; may be nil
	out         Schema

	combined  value.Row
	innerHeap []value.Row
	idsBuf    []int32
	outBuf    outBuffer
	closed    bool
}

// NewIndexNLJoin constructs an index nested-loop join.
func NewIndexNLJoin(outer Operator, outerKeyCol int, it *rowstore.Table, ix *rowstore.Index, innerBind string, residual Evaluator) *IndexNLJoin {
	return &IndexNLJoin{
		Outer: outer, OuterKeyCol: outerKeyCol, InnerTable: it, InnerIndex: ix,
		InnerBind: innerBind, Residual: residual,
		out: outer.Schema().Concat(TableSchema(it.Meta, innerBind)),
	}
}

func (j *IndexNLJoin) Schema() Schema { return j.out }

func (j *IndexNLJoin) Clone() BatchOperator {
	return &IndexNLJoin{Outer: j.Outer.Clone(), OuterKeyCol: j.OuterKeyCol,
		InnerTable: j.InnerTable, InnerIndex: j.InnerIndex, InnerBind: j.InnerBind,
		Residual: j.Residual, out: j.out}
}

func (j *IndexNLJoin) Open(ctx *Context) error {
	j.closed = false
	if j.combined == nil {
		j.combined = make(value.Row, len(j.out))
	}
	j.innerHeap = j.InnerTable.Heap()
	j.outBuf.init(len(j.out))
	return j.Outer.Open(ctx)
}

// innerRow resolves a probed heap id against the pinned heap snapshot,
// refreshing it when a concurrently inserted row lies beyond the
// snapshot (heap slots are immutable and append-only, so the refreshed
// snapshot is a superset).
func (j *IndexNLJoin) innerRow(id int32) value.Row {
	if int(id) >= len(j.innerHeap) {
		j.innerHeap = j.InnerTable.Heap()
	}
	return j.innerHeap[id]
}

func (j *IndexNLJoin) Next(ctx *Context) (*Batch, error) {
	outerWidth := len(j.Outer.Schema())
	for {
		ob, err := j.Outer.Next(ctx)
		if err != nil || ob == nil {
			return nil, err
		}
		j.outBuf.reset()
		n := ob.NumActive()
		for i := 0; i < n; i++ {
			p := ob.PosAt(i)
			ctx.Stats.IndexProbes++
			ids := j.InnerIndex.LookupAppend(ob.Cols[j.OuterKeyCol][p], j.idsBuf[:0])
			j.idsBuf = ids
			if len(ids) == 0 {
				continue
			}
			if j.Residual == nil {
				// no residual to pre-check: write outer and inner values
				// straight into the output vectors, skipping the scratch row
				for _, id := range ids {
					in := j.innerRow(id)
					ctx.Stats.RowsScanned++
					ctx.Stats.BytesScanned += j.InnerTable.Meta.AvgRowBytes
					j.outBuf.appendSplit(ob, p, outerWidth, in)
				}
				continue
			}
			for c := 0; c < outerWidth; c++ {
				j.combined[c] = ob.Cols[c][p]
			}
			for _, id := range ids {
				in := j.innerRow(id)
				ctx.Stats.RowsScanned++
				ctx.Stats.BytesScanned += j.InnerTable.Meta.AvgRowBytes
				copy(j.combined[outerWidth:], in)
				ok, err := Truthy(j.Residual, j.combined)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				j.outBuf.appendRow(j.combined)
			}
		}
		if j.outBuf.len() > 0 {
			return j.outBuf.take(ctx), nil
		}
	}
}

func (j *IndexNLJoin) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	j.innerHeap = nil
	return j.Outer.Close()
}

// HashJoin builds a hash table on the Build child at Open and probes it a
// batch at a time with the Probe child. Output schema is probe ++ build
// (probe side listed first, matching the AP optimizer's plan rendering).
type HashJoin struct {
	Probe, Build         Operator
	ProbeKeys, BuildKeys []int
	Residual             Evaluator // over concat(probe, build); may be nil
	out                  Schema

	ht       map[string][]value.Row
	combined value.Row
	keyBuf   strings.Builder
	outBuf   outBuffer
	closed   bool
}

// NewHashJoin constructs a hash join.
func NewHashJoin(probe, build Operator, probeKeys, buildKeys []int, residual Evaluator) *HashJoin {
	return &HashJoin{Probe: probe, Build: build, ProbeKeys: probeKeys, BuildKeys: buildKeys,
		Residual: residual, out: probe.Schema().Concat(build.Schema())}
}

func (j *HashJoin) Schema() Schema { return j.out }

func (j *HashJoin) Clone() BatchOperator {
	return &HashJoin{Probe: j.Probe.Clone(), Build: j.Build.Clone(),
		ProbeKeys: j.ProbeKeys, BuildKeys: j.BuildKeys, Residual: j.Residual, out: j.out}
}

func (j *HashJoin) Open(ctx *Context) error {
	j.closed = false
	if err := j.build(ctx); err != nil {
		return err
	}
	if j.combined == nil {
		j.combined = make(value.Row, len(j.out))
	}
	j.outBuf.init(len(j.out))
	return j.Probe.Open(ctx)
}

// build constructs the hash table from the Build child. When the query
// has a degree of parallelism and the build side is a forkable per-morsel
// pipeline, the build is partitioned: each worker drains disjoint morsels
// into a private hash table, and a merge stage folds the partitions into
// the probe-side table (bucket order for duplicate keys is then
// worker-arrival order — a multiset-equivalent reordering).
func (j *HashJoin) build(ctx *Context) error {
	if ctx.DOP > 1 {
		if pipes, ok := forkPipeline(j.Build, ctx.DOP); ok {
			return j.buildParallel(ctx, pipes)
		}
	}
	buildRows, err := drainOp(j.Build, ctx)
	if err != nil {
		return err
	}
	j.ht = make(map[string][]value.Row, len(buildRows))
	for _, r := range buildRows {
		ctx.Stats.HashBuildRows++
		k := r.Key(j.BuildKeys)
		j.ht[k] = append(j.ht[k], r)
	}
	return nil
}

func (j *HashJoin) buildParallel(ctx *Context, pipes []BatchOperator) error {
	parts := make([]map[string][]value.Row, len(pipes))
	err := runForked(ctx, pipes, func(w int, wctx *Context, b *Batch) error {
		ht := parts[w]
		if ht == nil {
			ht = make(map[string][]value.Row)
			parts[w] = ht
		}
		for _, r := range b.AppendRows(nil) {
			wctx.Stats.HashBuildRows++
			k := r.Key(j.BuildKeys)
			ht[k] = append(ht[k], r)
		}
		return nil
	})
	if err != nil {
		return err
	}
	// merge stage: fold worker partitions into one probe-side table
	j.ht = make(map[string][]value.Row)
	for _, ht := range parts {
		for k, rows := range ht {
			j.ht[k] = append(j.ht[k], rows...)
		}
	}
	return nil
}

func (j *HashJoin) Next(ctx *Context) (*Batch, error) {
	probeWidth := len(j.Probe.Schema())
	for {
		pb, err := j.Probe.Next(ctx)
		if err != nil || pb == nil {
			return nil, err
		}
		j.outBuf.reset()
		n := pb.NumActive()
		for i := 0; i < n; i++ {
			p := pb.PosAt(i)
			ctx.Stats.HashProbeRows++
			matches := j.ht[pb.keyAt(p, j.ProbeKeys, &j.keyBuf)]
			if len(matches) == 0 {
				continue
			}
			if j.Residual == nil {
				// no residual to pre-check: write probe and build values
				// straight into the output vectors, skipping the scratch row
				for _, b := range matches {
					j.outBuf.appendSplit(pb, p, probeWidth, b)
				}
				continue
			}
			for c := 0; c < probeWidth; c++ {
				j.combined[c] = pb.Cols[c][p]
			}
			for _, b := range matches {
				copy(j.combined[probeWidth:], b)
				ok, err := Truthy(j.Residual, j.combined)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				j.outBuf.appendRow(j.combined)
			}
		}
		if j.outBuf.len() > 0 {
			return j.outBuf.take(ctx), nil
		}
	}
}

func (j *HashJoin) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	j.ht = nil
	return j.Probe.Close()
}

// ---------------------------------------------------------------- aggregation

// AggSpec describes one aggregate in the output.
type AggSpec struct {
	Func sqlparser.AggFunc
	Arg  Evaluator // nil for COUNT(*)
	// ArgCol is the argument's child-schema column position when Arg is a
	// bare column reference, -1 for COUNT(*). It is only meaningful on
	// operators whose GroupCols is non-nil (the optimizer sets both
	// together); the Arg evaluator stays authoritative everywhere else.
	ArgCol int
}

// HashAggregate groups its input by the group expressions and computes the
// aggregates, consuming the child stream batch-at-a-time without
// materializing it. With no group expressions it produces a single global
// row. Both engines use this operator; their optimizers label it
// differently ('Group aggregate' vs 'Aggregate') and cost it differently.
type HashAggregate struct {
	Child  Operator
	Groups []Evaluator
	Aggs   []AggSpec
	Out    Schema // group columns followed by aggregate columns
	// GroupCols, when non-nil, carries the structural shape the encoded
	// aggregation pushdown needs: every GROUP BY term is a bare column and
	// GroupCols[i] is its child-schema position (an empty non-nil slice
	// means a global aggregate), and every AggSpec.ArgCol is resolved. The
	// optimizer sets it; operators built by hand leave it nil and always
	// take the evaluator path.
	GroupCols []int
	// Partial makes the aggregate emit mergeable partial states instead of
	// final values: each output row is the group columns followed by one
	// (state, count) column pair per aggregate, where count > 0 marks a
	// valid state (counts advance exactly when sums/mins/maxs do). Out must
	// be the matching partial schema. This is the shard-local half of a
	// distributed partial/final aggregate split.
	Partial bool
	// Merge makes the aggregate consume partial-state rows (the output of
	// Partial-mode fragments, typically through a Gather exchange) instead
	// of raw input: group columns lead each input row and every aggregate
	// folds its (state, count) pair additively. Out is the final schema.
	Merge bool

	emit   rowEmitter
	closed bool
}

func (a *HashAggregate) Schema() Schema { return a.Out }

func (a *HashAggregate) Clone() BatchOperator {
	return &HashAggregate{Child: a.Child.Clone(), Groups: a.Groups, Aggs: a.Aggs,
		Out: a.Out, GroupCols: a.GroupCols, Partial: a.Partial, Merge: a.Merge}
}

type aggState struct {
	group  value.Row
	counts []int64
	sums   []float64
	mins   []value.Value
	maxs   []value.Value
	seen   []bool
}

func (a *HashAggregate) newState(group value.Row) *aggState {
	return &aggState{
		group:  group,
		counts: make([]int64, len(a.Aggs)),
		sums:   make([]float64, len(a.Aggs)),
		mins:   make([]value.Value, len(a.Aggs)),
		maxs:   make([]value.Value, len(a.Aggs)),
		seen:   make([]bool, len(a.Aggs)),
	}
}

// accumulate folds one input row into its group's state.
func (a *HashAggregate) accumulate(st *aggState, row value.Row) error {
	if a.Merge {
		return a.mergeAccumulate(st, row)
	}
	for i, spec := range a.Aggs {
		if spec.Arg == nil { // COUNT(*)
			st.counts[i]++
			continue
		}
		v, err := spec.Arg(row)
		if err != nil {
			return err
		}
		accumulateArg(st, i, v)
	}
	return nil
}

// accumulateArg folds one evaluated aggregate argument into state slot i —
// the single definition of per-value aggregation semantics (NULLs skipped;
// count always advances for non-NULL; sum only for numerics; min/max by
// value.Compare with first-seen ties kept). The encoded kernels call it —
// or replicate it bit-exactly — so encoded and raw execution agree byte
// for byte.
func accumulateArg(st *aggState, i int, v value.Value) {
	if v.IsNull() {
		return
	}
	st.counts[i]++
	if f, ok := v.AsFloat(); ok {
		st.sums[i] += f
	}
	if !st.seen[i] {
		st.mins[i], st.maxs[i] = v, v
		st.seen[i] = true
	} else {
		if v.Compare(st.mins[i]) < 0 {
			st.mins[i] = v
		}
		if v.Compare(st.maxs[i]) > 0 {
			st.maxs[i] = v
		}
	}
}

// aggTable is one (per-worker or global) aggregation hash table with its
// first-seen group order and the scratch row batches are folded through.
type aggTable struct {
	groups  map[string]*aggState
	order   []string
	scratch value.Row
}

func (a *HashAggregate) newTable() *aggTable {
	return &aggTable{
		groups:  make(map[string]*aggState),
		scratch: make(value.Row, len(a.Child.Schema())),
	}
}

// foldBatch folds every active row of b into the table.
func (a *HashAggregate) foldBatch(ctx *Context, t *aggTable, b *Batch) error {
	n := b.NumActive()
	for i := 0; i < n; i++ {
		b.FillRow(i, t.scratch)
		g := make(value.Row, len(a.Groups))
		for gi, ev := range a.Groups {
			v, err := ev(t.scratch)
			if err != nil {
				return err
			}
			g[gi] = v
		}
		key := g.Key(intRange(len(g)))
		st, ok := t.groups[key]
		if !ok {
			st = a.newState(g)
			t.groups[key] = st
			t.order = append(t.order, key)
			ctx.Stats.GroupsCreated++
		}
		if err := a.accumulate(st, t.scratch); err != nil {
			return err
		}
	}
	return nil
}

// mergeState folds a partial aggregation state into dst — the merge half
// of partitioned parallel aggregation. COUNT/SUM/AVG merge additively
// (AVG keeps sum and count separately), MIN/MAX combine, so every
// supported aggregate decomposes exactly.
func (a *HashAggregate) mergeState(dst, src *aggState) {
	for i := range a.Aggs {
		dst.counts[i] += src.counts[i]
		dst.sums[i] += src.sums[i]
		if !src.seen[i] {
			continue
		}
		if !dst.seen[i] {
			dst.mins[i], dst.maxs[i] = src.mins[i], src.maxs[i]
			dst.seen[i] = true
			continue
		}
		if src.mins[i].Compare(dst.mins[i]) < 0 {
			dst.mins[i] = src.mins[i]
		}
		if src.maxs[i].Compare(dst.maxs[i]) > 0 {
			dst.maxs[i] = src.maxs[i]
		}
	}
}

// mergeAccumulate folds one partial-state row into its group's state
// (Merge mode). The input layout is the Partial emit layout: group
// columns, then a (state, count) pair per aggregate. count <= 0 means the
// fragment never saw a non-NULL value for that aggregate, so the pair is
// skipped — which is exactly how accumulateArg treats NULLs.
func (a *HashAggregate) mergeAccumulate(st *aggState, row value.Row) error {
	base := len(row) - 2*len(a.Aggs)
	for i, spec := range a.Aggs {
		state, cnt := row[base+2*i], row[base+2*i+1]
		if cnt.K != value.KindInt {
			return fmt.Errorf("exec: merge aggregate expects int count, got %s", cnt.K)
		}
		n := cnt.I
		if n <= 0 {
			continue
		}
		st.counts[i] += n
		switch spec.Func {
		case sqlparser.AggSum, sqlparser.AggAvg:
			f, ok := state.AsFloat()
			if !ok {
				return fmt.Errorf("exec: merge aggregate expects numeric sum state, got %s", state.K)
			}
			st.sums[i] += f
		case sqlparser.AggMin, sqlparser.AggMax:
			if !st.seen[i] {
				st.mins[i], st.maxs[i] = state, state
				st.seen[i] = true
				continue
			}
			if state.Compare(st.mins[i]) < 0 {
				st.mins[i] = state
			}
			if state.Compare(st.maxs[i]) > 0 {
				st.maxs[i] = state
			}
		}
	}
	return nil
}

// emitPartialRows renders mergeable partial states (Partial mode): group
// columns, then per aggregate the state value (SUM/AVG: the running sum;
// MIN/MAX: the extremum so far; COUNT: unused NULL) and the non-NULL input
// count.
func (a *HashAggregate) emitPartialRows(t *aggTable) ([]value.Row, error) {
	if len(a.Groups) == 0 && len(t.order) == 0 {
		t.groups[""] = a.newState(nil)
		t.order = append(t.order, "")
	}
	out := make([]value.Row, 0, len(t.order))
	for _, key := range t.order {
		st := t.groups[key]
		row := make(value.Row, 0, len(a.Out))
		row = append(row, st.group...)
		for i, spec := range a.Aggs {
			state := value.Null
			if st.seen[i] || st.counts[i] > 0 {
				switch spec.Func {
				case sqlparser.AggCount:
					state = value.Null
				case sqlparser.AggSum, sqlparser.AggAvg:
					state = value.NewFloat(st.sums[i])
				case sqlparser.AggMin:
					state = st.mins[i]
				case sqlparser.AggMax:
					state = st.maxs[i]
				default:
					return nil, fmt.Errorf("exec: unsupported aggregate %v", spec.Func)
				}
			}
			row = append(row, state, value.NewInt(st.counts[i]))
		}
		out = append(out, row)
	}
	return out, nil
}

// emitRows renders the output rows from the (merged) table — partial
// states in Partial mode, final aggregate values otherwise.
func (a *HashAggregate) emitRows(t *aggTable) ([]value.Row, error) {
	if a.Partial {
		return a.emitPartialRows(t)
	}
	// global aggregate over empty input still yields one row
	if len(a.Groups) == 0 && len(t.order) == 0 {
		t.groups[""] = a.newState(nil)
		t.order = append(t.order, "")
	}
	out := make([]value.Row, 0, len(t.order))
	for _, key := range t.order {
		st := t.groups[key]
		row := make(value.Row, 0, len(a.Out))
		row = append(row, st.group...)
		for i, spec := range a.Aggs {
			switch spec.Func {
			case sqlparser.AggCount:
				row = append(row, value.NewInt(st.counts[i]))
			case sqlparser.AggSum:
				if st.counts[i] == 0 {
					row = append(row, value.Null)
				} else {
					row = append(row, value.NewFloat(st.sums[i]))
				}
			case sqlparser.AggAvg:
				if st.counts[i] == 0 {
					row = append(row, value.Null)
				} else {
					row = append(row, value.NewFloat(st.sums[i]/float64(st.counts[i])))
				}
			case sqlparser.AggMin:
				if !st.seen[i] {
					row = append(row, value.Null)
				} else {
					row = append(row, st.mins[i])
				}
			case sqlparser.AggMax:
				if !st.seen[i] {
					row = append(row, value.Null)
				} else {
					row = append(row, st.maxs[i])
				}
			default:
				return nil, fmt.Errorf("exec: unsupported aggregate %v", spec.Func)
			}
		}
		out = append(out, row)
	}
	return out, nil
}

func (a *HashAggregate) Open(ctx *Context) error {
	a.closed = false
	// encoded aggregation pushdown: a structurally simple aggregate over a
	// bare columnar scan consumes encoded chunks directly (see pushdown.go)
	if done, err := a.openPushdown(ctx); done || err != nil {
		return err
	}
	if ctx.DOP > 1 {
		if pipes, ok := forkPipeline(a.Child, ctx.DOP); ok {
			return a.openParallel(ctx, pipes)
		}
	}
	if err := a.Child.Open(ctx); err != nil {
		return err
	}
	t := a.newTable()
	for {
		b, err := a.Child.Next(ctx)
		if err != nil {
			_ = a.Child.Close()
			return err
		}
		if b == nil {
			break
		}
		if err := a.foldBatch(ctx, t, b); err != nil {
			_ = a.Child.Close()
			return err
		}
	}
	out, err := a.emitRows(t)
	if err != nil {
		_ = a.Child.Close()
		return err
	}
	a.emit.reset(out, len(a.Out))
	return nil
}

// openParallel is the partitioned hash-aggregate: each worker folds its
// share of morsels into a private hash table, a merge stage combines the
// partial states, and the merged groups are emitted in sorted-key order
// (worker arrival order is nondeterministic, so the merge sorts to keep
// parallel output deterministic run-to-run).
func (a *HashAggregate) openParallel(ctx *Context, pipes []BatchOperator) error {
	parts := make([]*aggTable, len(pipes))
	err := runForked(ctx, pipes, func(w int, wctx *Context, b *Batch) error {
		if parts[w] == nil {
			parts[w] = a.newTable()
		}
		return a.foldBatch(wctx, parts[w], b)
	})
	if err != nil {
		return err
	}
	merged, partGroups := a.mergeParts(parts)
	// runForked folded each worker's per-partition group creations into
	// ctx; rewrite the counter to the distinct merged count so the stat a
	// query reports does not vary with the granted DOP
	ctx.Stats.GroupsCreated += int64(len(merged.order)) - partGroups
	sort.Strings(merged.order)
	out, err := a.emitRows(merged)
	if err != nil {
		return err
	}
	a.emit.reset(out, len(a.Out))
	return nil
}

// mergeParts combines per-worker partial aggregation tables into one, in
// worker order, returning the merged table and the total per-partition
// group count (for the GroupsCreated rewrite).
func (a *HashAggregate) mergeParts(parts []*aggTable) (*aggTable, int64) {
	merged := a.newTable()
	var partGroups int64
	for _, p := range parts {
		if p == nil {
			continue
		}
		partGroups += int64(len(p.order))
		for _, key := range p.order {
			src := p.groups[key]
			dst, ok := merged.groups[key]
			if !ok {
				merged.groups[key] = src
				merged.order = append(merged.order, key)
				continue
			}
			a.mergeState(dst, src)
		}
	}
	return merged, partGroups
}

func (a *HashAggregate) Next(ctx *Context) (*Batch, error) {
	return a.emit.next(ctx), nil
}

func (a *HashAggregate) Close() error {
	if a.closed {
		return nil
	}
	a.closed = true
	a.emit.reset(nil, len(a.Out))
	return a.Child.Close()
}

func intRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// ---------------------------------------------------------------- ordering

// SortKey is one ORDER BY term.
type SortKey struct {
	Eval Evaluator
	Desc bool
}

func compareByKeys(keys []SortKey, a, b value.Row) (int, error) {
	for _, k := range keys {
		av, err := k.Eval(a)
		if err != nil {
			return 0, err
		}
		bv, err := k.Eval(b)
		if err != nil {
			return 0, err
		}
		c := av.Compare(bv)
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c, nil
		}
	}
	return 0, nil
}

// SortOp fully sorts its input, which it drains at Open. Drained rows are
// freshly materialized (never storage-aliased), so the sort is safe to run
// in place.
type SortOp struct {
	Child Operator
	Keys  []SortKey

	emit   rowEmitter
	closed bool
}

func (s *SortOp) Schema() Schema { return s.Child.Schema() }

func (s *SortOp) Clone() BatchOperator {
	return &SortOp{Child: s.Child.Clone(), Keys: s.Keys}
}

func (s *SortOp) Open(ctx *Context) error {
	s.closed = false
	rows, err := drainOp(s.Child, ctx)
	if err != nil {
		return err
	}
	ctx.Stats.RowsSorted += int64(len(rows))
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		c, err := compareByKeys(s.Keys, rows[i], rows[j])
		if err != nil && sortErr == nil {
			sortErr = err
		}
		return c < 0
	})
	if sortErr != nil {
		return sortErr
	}
	s.emit.reset(rows, len(s.Schema()))
	return nil
}

func (s *SortOp) Next(ctx *Context) (*Batch, error) {
	return s.emit.next(ctx), nil
}

func (s *SortOp) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.emit.reset(nil, len(s.Schema()))
	return s.Child.Close()
}

// TopNOp keeps the first N+Offset rows in key order using a bounded
// selection (cheaper than a full sort) over the child's batch stream, then
// applies the offset.
type TopNOp struct {
	Child  Operator
	Keys   []SortKey
	N      int64
	Offset int64

	emit   rowEmitter
	closed bool
}

func (t *TopNOp) Schema() Schema { return t.Child.Schema() }

func (t *TopNOp) Clone() BatchOperator {
	return &TopNOp{Child: t.Child.Clone(), Keys: t.Keys, N: t.N, Offset: t.Offset}
}

func (t *TopNOp) Open(ctx *Context) error {
	t.closed = false
	if err := t.Child.Open(ctx); err != nil {
		return err
	}
	keep := t.N + t.Offset
	if keep < 0 {
		keep = 0
	}
	scratch := make(value.Row, len(t.Child.Schema()))
	// bounded insertion into a sorted prefix of size keep
	var top []value.Row
	var insErr error
	for {
		b, err := t.Child.Next(ctx)
		if err != nil {
			_ = t.Child.Close()
			return err
		}
		if b == nil {
			break
		}
		n := b.NumActive()
		ctx.Stats.RowsTopN += int64(n)
		for i := 0; i < n; i++ {
			row := b.FillRow(i, scratch)
			pos := sort.Search(len(top), func(k int) bool {
				c, err := compareByKeys(t.Keys, row, top[k])
				if err != nil && insErr == nil {
					insErr = err
				}
				return c < 0
			})
			switch {
			case int64(len(top)) < keep:
				top = append(top, nil)
				copy(top[pos+1:], top[pos:])
				top[pos] = row.Clone()
			case pos < len(top):
				copy(top[pos+1:], top[pos:len(top)-1])
				top[pos] = row.Clone()
			}
		}
		if insErr != nil {
			_ = t.Child.Close()
			return insErr
		}
	}
	if t.Offset >= int64(len(top)) {
		top = nil
	} else {
		top = top[t.Offset:]
	}
	t.emit.reset(top, len(t.Schema()))
	return nil
}

func (t *TopNOp) Next(ctx *Context) (*Batch, error) {
	return t.emit.next(ctx), nil
}

func (t *TopNOp) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	t.emit.reset(nil, len(t.Schema()))
	return t.Child.Close()
}

// LimitOp applies LIMIT/OFFSET without ordering by trimming selection
// vectors; it stops pulling from its child as soon as the limit is
// satisfied (early termination the materializing engine could not do).
//
// When a limit pipeline is forked for parallel execution (offset-free
// only — see forkPipeline), every worker clone shares one atomic row
// budget: each clone claims rows from the budget before emitting them,
// and the clone that drains it cancels the fork's execution scope so
// sibling workers stop fetching morsels — cross-worker early termination
// via a shared atomic plus context cancellation.
type LimitOp struct {
	Child  Operator
	N      int64
	Offset int64

	// budget, when set by forkPipeline, is the cross-worker shared
	// remaining-row count.
	budget *atomic.Int64

	skipped int64
	emitted int64
	selBuf  []int32
	closed  bool
}

func (l *LimitOp) Schema() Schema { return l.Child.Schema() }

func (l *LimitOp) Clone() BatchOperator {
	return &LimitOp{Child: l.Child.Clone(), N: l.N, Offset: l.Offset}
}

func (l *LimitOp) Open(ctx *Context) error {
	l.closed = false
	l.skipped, l.emitted = 0, 0
	return l.Child.Open(ctx)
}

// claim reserves up to n rows: from the shared cross-worker budget when
// parallel, from the private emitted count otherwise. A zero grant with
// a shared budget cancels the fork scope — the whole fork is done.
func (l *LimitOp) claim(ctx *Context, n int) int {
	if l.budget == nil {
		if l.N < 0 {
			return n
		}
		take := l.N - l.emitted
		if take > int64(n) {
			take = int64(n)
		}
		return int(take)
	}
	for {
		rem := l.budget.Load()
		if rem <= 0 {
			ctx.Cancel()
			return 0
		}
		take := int64(n)
		if take > rem {
			take = rem
		}
		if l.budget.CompareAndSwap(rem, rem-take) {
			if rem == take {
				// budget drained: stop sibling workers eagerly
				ctx.Cancel()
			}
			return int(take)
		}
	}
}

func (l *LimitOp) Next(ctx *Context) (*Batch, error) {
	if l.budget == nil && l.N >= 0 && l.emitted >= l.N {
		return nil, nil
	}
	for {
		b, err := l.Child.Next(ctx)
		if err != nil || b == nil {
			return nil, err
		}
		n := b.NumActive()
		skip := 0
		if l.skipped < l.Offset {
			skip = int(l.Offset - l.skipped)
			if skip > n {
				skip = n
			}
			l.skipped += int64(skip)
		}
		if skip >= n {
			continue
		}
		take := l.claim(ctx, n-skip)
		if take == 0 {
			return nil, nil
		}
		l.emitted += int64(take)
		if skip == 0 && take == n {
			ctx.Stats.BatchesProduced++
			return b, nil
		}
		sel := l.selBuf[:0]
		for i := skip; i < skip+take; i++ {
			sel = append(sel, int32(b.PosAt(i)))
		}
		l.selBuf = sel
		b.Sel = sel
		ctx.Stats.BatchesProduced++
		return b, nil
	}
}

func (l *LimitOp) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	return l.Child.Close()
}
