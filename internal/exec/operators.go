package exec

import (
	"fmt"
	"sort"
	"strings"

	"htapxplain/internal/colstore"
	"htapxplain/internal/rowstore"
	"htapxplain/internal/sqlparser"
	"htapxplain/internal/value"
)

// Every physical operator implements the vectorized BatchOperator
// interface.
var (
	_ BatchOperator = (*RowTableScan)(nil)
	_ BatchOperator = (*RowIndexScan)(nil)
	_ BatchOperator = (*RowIndexOrderScan)(nil)
	_ BatchOperator = (*ColTableScan)(nil)
	_ BatchOperator = (*FilterOp)(nil)
	_ BatchOperator = (*ProjectOp)(nil)
	_ BatchOperator = (*NestedLoopJoin)(nil)
	_ BatchOperator = (*IndexNLJoin)(nil)
	_ BatchOperator = (*HashJoin)(nil)
	_ BatchOperator = (*HashAggregate)(nil)
	_ BatchOperator = (*SortOp)(nil)
	_ BatchOperator = (*TopNOp)(nil)
	_ BatchOperator = (*LimitOp)(nil)
)

// ---------------------------------------------------------------- scans

// RowTableScan is a full heap scan of a row-store table, adapted into
// batches at the leaf (the row store has no native vectors).
type RowTableScan struct {
	Table   *rowstore.Table
	Binding string
	out     Schema

	rows []value.Row
	pos  int
	rw   rowWindow
}

// NewRowTableScan constructs a full-table scan.
func NewRowTableScan(t *rowstore.Table, binding string) *RowTableScan {
	return &RowTableScan{Table: t, Binding: binding, out: TableSchema(t.Meta, binding)}
}

func (s *RowTableScan) Schema() Schema { return s.out }

func (s *RowTableScan) Clone() BatchOperator {
	return &RowTableScan{Table: s.Table, Binding: s.Binding, out: s.out}
}

func (s *RowTableScan) Open(ctx *Context) error {
	s.rows = s.Table.Scan()
	s.pos = 0
	s.rw.init(len(s.out))
	return nil
}

func (s *RowTableScan) Next(ctx *Context) (*Batch, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	end := s.pos + BatchSize
	if end > len(s.rows) {
		end = len(s.rows)
	}
	b := s.rw.fill(s.rows[s.pos:end])
	n := int64(end - s.pos)
	s.pos = end
	ctx.Stats.RowsScanned += n
	ctx.Stats.BytesScanned += n * s.Table.Meta.AvgRowBytes
	ctx.Stats.BatchesProduced++
	return b, nil
}

func (s *RowTableScan) Close() error {
	s.rows = nil
	return nil
}

// RowIndexScan fetches rows through an ordered index: either a set of
// point keys (equality / IN list) or a single range.
type RowIndexScan struct {
	Table   *rowstore.Table
	Index   *rowstore.Index
	Binding string
	Keys    []value.Value // point lookups; nil → use range
	Lo, Hi  *value.Value
	out     Schema

	ids     []int32
	heap    []value.Row
	pos     int
	rowsBuf []value.Row
	rw      rowWindow
}

// NewRowIndexScan constructs an index access path.
func NewRowIndexScan(t *rowstore.Table, ix *rowstore.Index, binding string, keys []value.Value, lo, hi *value.Value) *RowIndexScan {
	return &RowIndexScan{Table: t, Index: ix, Binding: binding, Keys: keys, Lo: lo, Hi: hi,
		out: TableSchema(t.Meta, binding)}
}

func (s *RowIndexScan) Schema() Schema { return s.out }

func (s *RowIndexScan) Clone() BatchOperator {
	return &RowIndexScan{Table: s.Table, Index: s.Index, Binding: s.Binding,
		Keys: s.Keys, Lo: s.Lo, Hi: s.Hi, out: s.out}
}

func (s *RowIndexScan) Open(ctx *Context) error {
	s.ids = s.ids[:0]
	s.pos = 0
	if s.Keys != nil {
		ctx.Stats.IndexProbes += int64(len(s.Keys))
		for _, k := range s.Keys {
			s.ids = append(s.ids, s.Index.Lookup(k)...)
		}
	} else {
		ctx.Stats.IndexProbes++
		s.ids = append(s.ids, s.Index.Range(s.Lo, s.Hi)...)
	}
	// snapshot the heap after collecting ids: every id collected above is
	// below the snapshot's length, and heap slots are immutable once written
	s.heap = s.Table.Heap()
	s.rw.init(len(s.out))
	return nil
}

func (s *RowIndexScan) Next(ctx *Context) (*Batch, error) {
	if s.pos >= len(s.ids) {
		return nil, nil
	}
	end := s.pos + BatchSize
	if end > len(s.ids) {
		end = len(s.ids)
	}
	s.rowsBuf = s.rowsBuf[:0]
	for _, id := range s.ids[s.pos:end] {
		s.rowsBuf = append(s.rowsBuf, s.heap[id])
	}
	n := int64(end - s.pos)
	s.pos = end
	ctx.Stats.RowsScanned += n
	ctx.Stats.BytesScanned += n * s.Table.Meta.AvgRowBytes
	ctx.Stats.BatchesProduced++
	return s.rw.fill(s.rowsBuf), nil
}

func (s *RowIndexScan) Close() error {
	s.rowsBuf, s.heap = nil, nil
	return nil
}

// RowIndexOrderScan returns rows in index-key order, stopping after
// LimitHint rows pass the optional predicate — the access path behind TP's
// index-ordered Top-N plans.
type RowIndexOrderScan struct {
	Table     *rowstore.Table
	Index     *rowstore.Index
	Binding   string
	Desc      bool
	LimitHint int // <=0 means no early stop
	Pred      Evaluator
	out       Schema

	ids     []int32
	heap    []value.Row
	pos     int
	matched int
	rowsBuf []value.Row
	rw      rowWindow
}

// NewRowIndexOrderScan constructs an index-order scan.
func NewRowIndexOrderScan(t *rowstore.Table, ix *rowstore.Index, binding string, desc bool, limitHint int, pred Evaluator) *RowIndexOrderScan {
	return &RowIndexOrderScan{Table: t, Index: ix, Binding: binding, Desc: desc,
		LimitHint: limitHint, Pred: pred, out: TableSchema(t.Meta, binding)}
}

func (s *RowIndexOrderScan) Schema() Schema { return s.out }

func (s *RowIndexOrderScan) Clone() BatchOperator {
	return &RowIndexOrderScan{Table: s.Table, Index: s.Index, Binding: s.Binding,
		Desc: s.Desc, LimitHint: s.LimitHint, Pred: s.Pred, out: s.out}
}

func (s *RowIndexOrderScan) Open(ctx *Context) error {
	if s.Desc {
		s.ids = s.Index.Descending()
	} else {
		s.ids = s.Index.Ascending()
	}
	s.heap = s.Table.Heap()
	s.pos, s.matched = 0, 0
	s.rw.init(len(s.out))
	return nil
}

func (s *RowIndexOrderScan) Next(ctx *Context) (*Batch, error) {
	if s.LimitHint > 0 && s.matched >= s.LimitHint {
		return nil, nil
	}
	s.rowsBuf = s.rowsBuf[:0]
	for s.pos < len(s.ids) && len(s.rowsBuf) < BatchSize {
		row := s.heap[s.ids[s.pos]]
		s.pos++
		ctx.Stats.RowsScanned++
		ctx.Stats.BytesScanned += s.Table.Meta.AvgRowBytes
		if s.Pred != nil {
			ok, err := Truthy(s.Pred, row)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		s.rowsBuf = append(s.rowsBuf, row)
		s.matched++
		if s.LimitHint > 0 && s.matched >= s.LimitHint {
			break
		}
	}
	if len(s.rowsBuf) == 0 {
		return nil, nil
	}
	ctx.Stats.BatchesProduced++
	return s.rw.fill(s.rowsBuf), nil
}

func (s *RowIndexOrderScan) Close() error {
	s.ids, s.rowsBuf, s.heap = nil, nil, nil
	return nil
}

// ColTableScan is a columnar scan reading only the referenced columns, with
// optional predicate and zone-map pruning. It is the engine's native batch
// source: each non-pruned chunk becomes one batch whose vectors alias the
// stored chunk directly — zero per-row materialization; the predicate only
// narrows the selection vector. Open pins a replication view of the table,
// so the scan unions the immutable base chunks (filtering rows deleted
// since the last merge through the selection vector) with the replicated
// delta rows, which are batched through a private projection slab — AP
// reads are fresh up to the column store's replication watermark.
type ColTableScan struct {
	Table   *colstore.Table
	Binding string
	Cols    []int // table column positions to read (projection pushdown)
	Pred    Evaluator
	Pruner  *colstore.RangePruner
	out     Schema

	view      colstore.View
	chunk     int
	deltaPos  int
	batch     Batch
	selBuf    []int32
	scratch   value.Row
	deltaSlab []value.Value
}

// NewColTableScan constructs a columnar scan over the given column subset.
// pred is compiled against the emitted (subset) schema.
func NewColTableScan(t *colstore.Table, binding string, cols []int, pred Evaluator, pruner *colstore.RangePruner) *ColTableScan {
	out := make(Schema, len(cols))
	full := TableSchema(t.Meta, binding)
	for i, c := range cols {
		out[i] = full[c]
	}
	return &ColTableScan{Table: t, Binding: binding, Cols: cols, Pred: pred, Pruner: pruner, out: out}
}

func (s *ColTableScan) Schema() Schema { return s.out }

func (s *ColTableScan) Clone() BatchOperator {
	return &ColTableScan{Table: s.Table, Binding: s.Binding, Cols: s.Cols,
		Pred: s.Pred, Pruner: s.Pruner, out: s.out}
}

func (s *ColTableScan) Open(ctx *Context) error {
	s.view = s.Table.View()
	s.chunk = 0
	s.deltaPos = 0
	if s.batch.Cols == nil {
		s.batch.Cols = make([][]value.Value, len(s.Cols))
		s.scratch = make(value.Row, len(s.Cols))
	}
	return nil
}

func (s *ColTableScan) Next(ctx *Context) (*Batch, error) {
	n := s.view.NumRows
	// modeled bytes: column subset width only — the columnar advantage
	perCol := s.Table.Meta.AvgRowBytes / int64(len(s.Table.Meta.Columns))
	if perCol < 1 {
		perCol = 1
	}
	for {
		start := s.chunk * colstore.ChunkSize
		if start >= n {
			break
		}
		end := start + colstore.ChunkSize
		if end > n {
			end = n
		}
		k := s.chunk
		s.chunk++
		if s.Pruner != nil {
			mn, mx := s.view.Cols[s.Pruner.Col].ChunkRange(k)
			if (s.Pruner.Lo != nil && mx.Compare(*s.Pruner.Lo) < 0) ||
				(s.Pruner.Hi != nil && mn.Compare(*s.Pruner.Hi) > 0) {
				ctx.Stats.ChunksSkipped++
				continue
			}
		}
		rows := end - start
		ctx.Stats.RowsScanned += int64(rows)
		ctx.Stats.BytesScanned += int64(rows) * perCol * int64(len(s.Cols))
		for j, c := range s.Cols {
			s.batch.Cols[j] = s.view.Cols[c].Slice(start, end)
		}
		s.batch.Len = rows
		s.batch.Sel = nil
		if s.Pred != nil || s.view.BaseDead != nil {
			sel := s.selBuf[:0]
			for i := 0; i < rows; i++ {
				if s.view.BaseDead[int32(start+i)] {
					continue
				}
				if s.Pred != nil {
					s.batch.FillRow(i, s.scratch)
					ok, err := Truthy(s.Pred, s.scratch)
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
				}
				sel = append(sel, int32(i))
			}
			s.selBuf = sel
			if len(sel) == 0 {
				continue
			}
			s.batch.Sel = sel
		}
		ctx.Stats.BatchesProduced++
		return &s.batch, nil
	}
	return s.nextDelta(ctx, perCol)
}

// nextDelta emits the replicated-but-unmerged delta rows after the base
// chunks are exhausted: each batch projects the needed columns into a
// reusable slab (delta rows are full table width, batches carry only the
// scanned subset).
func (s *ColTableScan) nextDelta(ctx *Context, perCol int64) (*Batch, error) {
	width := len(s.Cols)
	for s.deltaPos < len(s.view.Delta) {
		end := s.deltaPos + BatchSize
		if end > len(s.view.Delta) {
			end = len(s.view.Delta)
		}
		rows := s.view.Delta[s.deltaPos:end]
		s.deltaPos = end
		nr := len(rows)
		if cap(s.deltaSlab) < nr*width {
			s.deltaSlab = make([]value.Value, nr*width)
		}
		for j, c := range s.Cols {
			col := s.deltaSlab[j*nr : j*nr+nr : j*nr+nr]
			for i, r := range rows {
				col[i] = r[c]
			}
			s.batch.Cols[j] = col
		}
		s.batch.Len = nr
		s.batch.Sel = nil
		ctx.Stats.RowsScanned += int64(nr)
		ctx.Stats.BytesScanned += int64(nr) * perCol * int64(width)
		if s.Pred != nil {
			sel := s.selBuf[:0]
			for i := 0; i < nr; i++ {
				s.batch.FillRow(i, s.scratch)
				ok, err := Truthy(s.Pred, s.scratch)
				if err != nil {
					return nil, err
				}
				if ok {
					sel = append(sel, int32(i))
				}
			}
			s.selBuf = sel
			if len(sel) == 0 {
				continue
			}
			s.batch.Sel = sel
		}
		ctx.Stats.BatchesProduced++
		return &s.batch, nil
	}
	return nil, nil
}

func (s *ColTableScan) Close() error {
	for j := range s.batch.Cols {
		s.batch.Cols[j] = nil // drop storage aliases
	}
	s.view = colstore.View{}
	return nil
}

// ---------------------------------------------------------------- filter / project

// FilterOp applies a predicate to its child's output by narrowing the
// selection vector in place — no values are copied.
type FilterOp struct {
	Child Operator
	Pred  Evaluator

	scratch value.Row
	selBuf  []int32
}

func (f *FilterOp) Schema() Schema { return f.Child.Schema() }

func (f *FilterOp) Clone() BatchOperator {
	return &FilterOp{Child: f.Child.Clone(), Pred: f.Pred}
}

func (f *FilterOp) Open(ctx *Context) error {
	if f.scratch == nil {
		f.scratch = make(value.Row, len(f.Schema()))
	}
	return f.Child.Open(ctx)
}

func (f *FilterOp) Next(ctx *Context) (*Batch, error) {
	for {
		b, err := f.Child.Next(ctx)
		if err != nil || b == nil {
			return nil, err
		}
		sel := f.selBuf[:0]
		n := b.NumActive()
		for i := 0; i < n; i++ {
			p := b.PosAt(i)
			for j := range b.Cols {
				f.scratch[j] = b.Cols[j][p]
			}
			ok, err := Truthy(f.Pred, f.scratch)
			if err != nil {
				return nil, err
			}
			if ok {
				sel = append(sel, int32(p))
			}
		}
		f.selBuf = sel
		if len(sel) == 0 {
			continue
		}
		b.Sel = sel
		ctx.Stats.BatchesProduced++
		return b, nil
	}
}

func (f *FilterOp) Close() error { return f.Child.Close() }

// ProjectOp evaluates expressions into a new schema, producing dense output
// vectors (one value per active input row).
type ProjectOp struct {
	Child Operator
	Evals []Evaluator
	Out   Schema

	scratch value.Row
	out     outBuffer
	rowBuf  value.Row
}

func (p *ProjectOp) Schema() Schema { return p.Out }

func (p *ProjectOp) Clone() BatchOperator {
	return &ProjectOp{Child: p.Child.Clone(), Evals: p.Evals, Out: p.Out}
}

func (p *ProjectOp) Open(ctx *Context) error {
	if p.scratch == nil {
		p.scratch = make(value.Row, len(p.Child.Schema()))
		p.rowBuf = make(value.Row, len(p.Evals))
	}
	p.out.init(len(p.Evals))
	return p.Child.Open(ctx)
}

func (p *ProjectOp) Next(ctx *Context) (*Batch, error) {
	b, err := p.Child.Next(ctx)
	if err != nil || b == nil {
		return nil, err
	}
	p.out.reset()
	n := b.NumActive()
	for i := 0; i < n; i++ {
		b.FillRow(i, p.scratch)
		for j, ev := range p.Evals {
			v, err := ev(p.scratch)
			if err != nil {
				return nil, err
			}
			p.rowBuf[j] = v
		}
		p.out.appendRow(p.rowBuf)
	}
	return p.out.take(ctx), nil
}

func (p *ProjectOp) Close() error { return p.Child.Close() }

// ---------------------------------------------------------------- joins

// NestedLoopJoin joins outer × inner with an arbitrary predicate over the
// concatenated schema. The inner input is materialized once at Open and
// rescanned per outer row (comparisons are counted — this is what makes
// indexless TP joins slow at scale); the outer side streams batch-at-a-time.
type NestedLoopJoin struct {
	Outer, Inner Operator
	Pred         Evaluator // may be nil (cross join)
	out          Schema

	innerRows []value.Row
	combined  value.Row
	outBuf    outBuffer
}

// NewNestedLoopJoin constructs the join; pred must be compiled against
// outer.Schema().Concat(inner.Schema()).
func NewNestedLoopJoin(outer, inner Operator, pred Evaluator) *NestedLoopJoin {
	return &NestedLoopJoin{Outer: outer, Inner: inner, Pred: pred,
		out: outer.Schema().Concat(inner.Schema())}
}

func (j *NestedLoopJoin) Schema() Schema { return j.out }

func (j *NestedLoopJoin) Clone() BatchOperator {
	return &NestedLoopJoin{Outer: j.Outer.Clone(), Inner: j.Inner.Clone(),
		Pred: j.Pred, out: j.out}
}

func (j *NestedLoopJoin) Open(ctx *Context) error {
	// the tree is private by the time it executes (Drain/Runner clone it),
	// so the inner child can be drained in place, keeping its buffers
	rows, err := drainOp(j.Inner, ctx)
	if err != nil {
		return err
	}
	j.innerRows = rows
	if j.combined == nil {
		j.combined = make(value.Row, len(j.out))
	}
	j.outBuf.init(len(j.out))
	return j.Outer.Open(ctx)
}

func (j *NestedLoopJoin) Next(ctx *Context) (*Batch, error) {
	outerWidth := len(j.Outer.Schema())
	for {
		ob, err := j.Outer.Next(ctx)
		if err != nil || ob == nil {
			return nil, err
		}
		j.outBuf.reset()
		n := ob.NumActive()
		for i := 0; i < n; i++ {
			p := ob.PosAt(i)
			for c := 0; c < outerWidth; c++ {
				j.combined[c] = ob.Cols[c][p]
			}
			for _, in := range j.innerRows {
				ctx.Stats.JoinComparisons++
				copy(j.combined[outerWidth:], in)
				ok := true
				if j.Pred != nil {
					ok, err = Truthy(j.Pred, j.combined)
					if err != nil {
						return nil, err
					}
				}
				if ok {
					j.outBuf.appendRow(j.combined)
				}
			}
		}
		if j.outBuf.len() > 0 {
			return j.outBuf.take(ctx), nil
		}
	}
}

func (j *NestedLoopJoin) Close() error {
	j.innerRows = nil
	return j.Outer.Close()
}

// IndexNLJoin is a nested-loop join whose inner side is an index probe:
// each outer batch is probed row-by-row through the inner index. This is
// TP's preferred join when an index exists on the inner join column.
type IndexNLJoin struct {
	Outer       Operator
	OuterKeyCol int
	InnerTable  *rowstore.Table
	InnerIndex  *rowstore.Index
	InnerBind   string
	Residual    Evaluator // over concat schema; may be nil
	out         Schema

	combined  value.Row
	innerHeap []value.Row
	idsBuf    []int32
	outBuf    outBuffer
}

// NewIndexNLJoin constructs an index nested-loop join.
func NewIndexNLJoin(outer Operator, outerKeyCol int, it *rowstore.Table, ix *rowstore.Index, innerBind string, residual Evaluator) *IndexNLJoin {
	return &IndexNLJoin{
		Outer: outer, OuterKeyCol: outerKeyCol, InnerTable: it, InnerIndex: ix,
		InnerBind: innerBind, Residual: residual,
		out: outer.Schema().Concat(TableSchema(it.Meta, innerBind)),
	}
}

func (j *IndexNLJoin) Schema() Schema { return j.out }

func (j *IndexNLJoin) Clone() BatchOperator {
	return &IndexNLJoin{Outer: j.Outer.Clone(), OuterKeyCol: j.OuterKeyCol,
		InnerTable: j.InnerTable, InnerIndex: j.InnerIndex, InnerBind: j.InnerBind,
		Residual: j.Residual, out: j.out}
}

func (j *IndexNLJoin) Open(ctx *Context) error {
	if j.combined == nil {
		j.combined = make(value.Row, len(j.out))
	}
	j.innerHeap = j.InnerTable.Heap()
	j.outBuf.init(len(j.out))
	return j.Outer.Open(ctx)
}

// innerRow resolves a probed heap id against the pinned heap snapshot,
// refreshing it when a concurrently inserted row lies beyond the
// snapshot (heap slots are immutable and append-only, so the refreshed
// snapshot is a superset).
func (j *IndexNLJoin) innerRow(id int32) value.Row {
	if int(id) >= len(j.innerHeap) {
		j.innerHeap = j.InnerTable.Heap()
	}
	return j.innerHeap[id]
}

func (j *IndexNLJoin) Next(ctx *Context) (*Batch, error) {
	outerWidth := len(j.Outer.Schema())
	for {
		ob, err := j.Outer.Next(ctx)
		if err != nil || ob == nil {
			return nil, err
		}
		j.outBuf.reset()
		n := ob.NumActive()
		for i := 0; i < n; i++ {
			p := ob.PosAt(i)
			ctx.Stats.IndexProbes++
			ids := j.InnerIndex.LookupAppend(ob.Cols[j.OuterKeyCol][p], j.idsBuf[:0])
			j.idsBuf = ids
			if len(ids) == 0 {
				continue
			}
			if j.Residual == nil {
				// no residual to pre-check: write outer and inner values
				// straight into the output vectors, skipping the scratch row
				for _, id := range ids {
					in := j.innerRow(id)
					ctx.Stats.RowsScanned++
					ctx.Stats.BytesScanned += j.InnerTable.Meta.AvgRowBytes
					j.outBuf.appendSplit(ob, p, outerWidth, in)
				}
				continue
			}
			for c := 0; c < outerWidth; c++ {
				j.combined[c] = ob.Cols[c][p]
			}
			for _, id := range ids {
				in := j.innerRow(id)
				ctx.Stats.RowsScanned++
				ctx.Stats.BytesScanned += j.InnerTable.Meta.AvgRowBytes
				copy(j.combined[outerWidth:], in)
				ok, err := Truthy(j.Residual, j.combined)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				j.outBuf.appendRow(j.combined)
			}
		}
		if j.outBuf.len() > 0 {
			return j.outBuf.take(ctx), nil
		}
	}
}

func (j *IndexNLJoin) Close() error {
	j.innerHeap = nil
	return j.Outer.Close()
}

// HashJoin builds a hash table on the Build child at Open and probes it a
// batch at a time with the Probe child. Output schema is probe ++ build
// (probe side listed first, matching the AP optimizer's plan rendering).
type HashJoin struct {
	Probe, Build         Operator
	ProbeKeys, BuildKeys []int
	Residual             Evaluator // over concat(probe, build); may be nil
	out                  Schema

	ht       map[string][]value.Row
	combined value.Row
	keyBuf   strings.Builder
	outBuf   outBuffer
}

// NewHashJoin constructs a hash join.
func NewHashJoin(probe, build Operator, probeKeys, buildKeys []int, residual Evaluator) *HashJoin {
	return &HashJoin{Probe: probe, Build: build, ProbeKeys: probeKeys, BuildKeys: buildKeys,
		Residual: residual, out: probe.Schema().Concat(build.Schema())}
}

func (j *HashJoin) Schema() Schema { return j.out }

func (j *HashJoin) Clone() BatchOperator {
	return &HashJoin{Probe: j.Probe.Clone(), Build: j.Build.Clone(),
		ProbeKeys: j.ProbeKeys, BuildKeys: j.BuildKeys, Residual: j.Residual, out: j.out}
}

func (j *HashJoin) Open(ctx *Context) error {
	buildRows, err := drainOp(j.Build, ctx)
	if err != nil {
		return err
	}
	j.ht = make(map[string][]value.Row, len(buildRows))
	for _, r := range buildRows {
		ctx.Stats.HashBuildRows++
		k := r.Key(j.BuildKeys)
		j.ht[k] = append(j.ht[k], r)
	}
	if j.combined == nil {
		j.combined = make(value.Row, len(j.out))
	}
	j.outBuf.init(len(j.out))
	return j.Probe.Open(ctx)
}

func (j *HashJoin) Next(ctx *Context) (*Batch, error) {
	probeWidth := len(j.Probe.Schema())
	for {
		pb, err := j.Probe.Next(ctx)
		if err != nil || pb == nil {
			return nil, err
		}
		j.outBuf.reset()
		n := pb.NumActive()
		for i := 0; i < n; i++ {
			p := pb.PosAt(i)
			ctx.Stats.HashProbeRows++
			matches := j.ht[pb.keyAt(p, j.ProbeKeys, &j.keyBuf)]
			if len(matches) == 0 {
				continue
			}
			if j.Residual == nil {
				// no residual to pre-check: write probe and build values
				// straight into the output vectors, skipping the scratch row
				for _, b := range matches {
					j.outBuf.appendSplit(pb, p, probeWidth, b)
				}
				continue
			}
			for c := 0; c < probeWidth; c++ {
				j.combined[c] = pb.Cols[c][p]
			}
			for _, b := range matches {
				copy(j.combined[probeWidth:], b)
				ok, err := Truthy(j.Residual, j.combined)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				j.outBuf.appendRow(j.combined)
			}
		}
		if j.outBuf.len() > 0 {
			return j.outBuf.take(ctx), nil
		}
	}
}

func (j *HashJoin) Close() error {
	j.ht = nil
	return j.Probe.Close()
}

// ---------------------------------------------------------------- aggregation

// AggSpec describes one aggregate in the output.
type AggSpec struct {
	Func sqlparser.AggFunc
	Arg  Evaluator // nil for COUNT(*)
}

// HashAggregate groups its input by the group expressions and computes the
// aggregates, consuming the child stream batch-at-a-time without
// materializing it. With no group expressions it produces a single global
// row. Both engines use this operator; their optimizers label it
// differently ('Group aggregate' vs 'Aggregate') and cost it differently.
type HashAggregate struct {
	Child  Operator
	Groups []Evaluator
	Aggs   []AggSpec
	Out    Schema // group columns followed by aggregate columns

	emit rowEmitter
}

func (a *HashAggregate) Schema() Schema { return a.Out }

func (a *HashAggregate) Clone() BatchOperator {
	return &HashAggregate{Child: a.Child.Clone(), Groups: a.Groups, Aggs: a.Aggs, Out: a.Out}
}

type aggState struct {
	group  value.Row
	counts []int64
	sums   []float64
	mins   []value.Value
	maxs   []value.Value
	seen   []bool
}

func (a *HashAggregate) newState(group value.Row) *aggState {
	return &aggState{
		group:  group,
		counts: make([]int64, len(a.Aggs)),
		sums:   make([]float64, len(a.Aggs)),
		mins:   make([]value.Value, len(a.Aggs)),
		maxs:   make([]value.Value, len(a.Aggs)),
		seen:   make([]bool, len(a.Aggs)),
	}
}

// accumulate folds one input row into its group's state.
func (a *HashAggregate) accumulate(st *aggState, row value.Row) error {
	for i, spec := range a.Aggs {
		if spec.Arg == nil { // COUNT(*)
			st.counts[i]++
			continue
		}
		v, err := spec.Arg(row)
		if err != nil {
			return err
		}
		if v.IsNull() {
			continue
		}
		st.counts[i]++
		if f, ok := v.AsFloat(); ok {
			st.sums[i] += f
		}
		if !st.seen[i] {
			st.mins[i], st.maxs[i] = v, v
			st.seen[i] = true
		} else {
			if v.Compare(st.mins[i]) < 0 {
				st.mins[i] = v
			}
			if v.Compare(st.maxs[i]) > 0 {
				st.maxs[i] = v
			}
		}
	}
	return nil
}

func (a *HashAggregate) Open(ctx *Context) error {
	if err := a.Child.Open(ctx); err != nil {
		return err
	}
	groups := make(map[string]*aggState)
	var order []string
	scratch := make(value.Row, len(a.Child.Schema()))
	for {
		b, err := a.Child.Next(ctx)
		if err != nil {
			_ = a.Child.Close()
			return err
		}
		if b == nil {
			break
		}
		n := b.NumActive()
		for i := 0; i < n; i++ {
			b.FillRow(i, scratch)
			g := make(value.Row, len(a.Groups))
			for gi, ev := range a.Groups {
				v, err := ev(scratch)
				if err != nil {
					_ = a.Child.Close()
					return err
				}
				g[gi] = v
			}
			key := g.Key(intRange(len(g)))
			st, ok := groups[key]
			if !ok {
				st = a.newState(g)
				groups[key] = st
				order = append(order, key)
				ctx.Stats.GroupsCreated++
			}
			if err := a.accumulate(st, scratch); err != nil {
				_ = a.Child.Close()
				return err
			}
		}
	}
	// global aggregate over empty input still yields one row
	if len(a.Groups) == 0 && len(order) == 0 {
		groups[""] = a.newState(nil)
		order = append(order, "")
	}
	out := make([]value.Row, 0, len(order))
	for _, key := range order {
		st := groups[key]
		row := make(value.Row, 0, len(a.Out))
		row = append(row, st.group...)
		for i, spec := range a.Aggs {
			switch spec.Func {
			case sqlparser.AggCount:
				row = append(row, value.NewInt(st.counts[i]))
			case sqlparser.AggSum:
				if st.counts[i] == 0 {
					row = append(row, value.Null)
				} else {
					row = append(row, value.NewFloat(st.sums[i]))
				}
			case sqlparser.AggAvg:
				if st.counts[i] == 0 {
					row = append(row, value.Null)
				} else {
					row = append(row, value.NewFloat(st.sums[i]/float64(st.counts[i])))
				}
			case sqlparser.AggMin:
				if !st.seen[i] {
					row = append(row, value.Null)
				} else {
					row = append(row, st.mins[i])
				}
			case sqlparser.AggMax:
				if !st.seen[i] {
					row = append(row, value.Null)
				} else {
					row = append(row, st.maxs[i])
				}
			default:
				_ = a.Child.Close()
				return fmt.Errorf("exec: unsupported aggregate %v", spec.Func)
			}
		}
		out = append(out, row)
	}
	a.emit.reset(out, len(a.Out))
	return nil
}

func (a *HashAggregate) Next(ctx *Context) (*Batch, error) {
	return a.emit.next(ctx), nil
}

func (a *HashAggregate) Close() error {
	a.emit.reset(nil, len(a.Out))
	return a.Child.Close()
}

func intRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// ---------------------------------------------------------------- ordering

// SortKey is one ORDER BY term.
type SortKey struct {
	Eval Evaluator
	Desc bool
}

func compareByKeys(keys []SortKey, a, b value.Row) (int, error) {
	for _, k := range keys {
		av, err := k.Eval(a)
		if err != nil {
			return 0, err
		}
		bv, err := k.Eval(b)
		if err != nil {
			return 0, err
		}
		c := av.Compare(bv)
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c, nil
		}
	}
	return 0, nil
}

// SortOp fully sorts its input, which it drains at Open. Drained rows are
// freshly materialized (never storage-aliased), so the sort is safe to run
// in place.
type SortOp struct {
	Child Operator
	Keys  []SortKey

	emit rowEmitter
}

func (s *SortOp) Schema() Schema { return s.Child.Schema() }

func (s *SortOp) Clone() BatchOperator {
	return &SortOp{Child: s.Child.Clone(), Keys: s.Keys}
}

func (s *SortOp) Open(ctx *Context) error {
	rows, err := drainOp(s.Child, ctx)
	if err != nil {
		return err
	}
	ctx.Stats.RowsSorted += int64(len(rows))
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		c, err := compareByKeys(s.Keys, rows[i], rows[j])
		if err != nil && sortErr == nil {
			sortErr = err
		}
		return c < 0
	})
	if sortErr != nil {
		return sortErr
	}
	s.emit.reset(rows, len(s.Schema()))
	return nil
}

func (s *SortOp) Next(ctx *Context) (*Batch, error) {
	return s.emit.next(ctx), nil
}

func (s *SortOp) Close() error {
	s.emit.reset(nil, len(s.Schema()))
	return nil
}

// TopNOp keeps the first N+Offset rows in key order using a bounded
// selection (cheaper than a full sort) over the child's batch stream, then
// applies the offset.
type TopNOp struct {
	Child  Operator
	Keys   []SortKey
	N      int64
	Offset int64

	emit rowEmitter
}

func (t *TopNOp) Schema() Schema { return t.Child.Schema() }

func (t *TopNOp) Clone() BatchOperator {
	return &TopNOp{Child: t.Child.Clone(), Keys: t.Keys, N: t.N, Offset: t.Offset}
}

func (t *TopNOp) Open(ctx *Context) error {
	if err := t.Child.Open(ctx); err != nil {
		return err
	}
	keep := t.N + t.Offset
	if keep < 0 {
		keep = 0
	}
	scratch := make(value.Row, len(t.Child.Schema()))
	// bounded insertion into a sorted prefix of size keep
	var top []value.Row
	var insErr error
	for {
		b, err := t.Child.Next(ctx)
		if err != nil {
			_ = t.Child.Close()
			return err
		}
		if b == nil {
			break
		}
		n := b.NumActive()
		ctx.Stats.RowsTopN += int64(n)
		for i := 0; i < n; i++ {
			row := b.FillRow(i, scratch)
			pos := sort.Search(len(top), func(k int) bool {
				c, err := compareByKeys(t.Keys, row, top[k])
				if err != nil && insErr == nil {
					insErr = err
				}
				return c < 0
			})
			switch {
			case int64(len(top)) < keep:
				top = append(top, nil)
				copy(top[pos+1:], top[pos:])
				top[pos] = row.Clone()
			case pos < len(top):
				copy(top[pos+1:], top[pos:len(top)-1])
				top[pos] = row.Clone()
			}
		}
		if insErr != nil {
			_ = t.Child.Close()
			return insErr
		}
	}
	if t.Offset >= int64(len(top)) {
		top = nil
	} else {
		top = top[t.Offset:]
	}
	t.emit.reset(top, len(t.Schema()))
	return nil
}

func (t *TopNOp) Next(ctx *Context) (*Batch, error) {
	return t.emit.next(ctx), nil
}

func (t *TopNOp) Close() error {
	t.emit.reset(nil, len(t.Schema()))
	return t.Child.Close()
}

// LimitOp applies LIMIT/OFFSET without ordering by trimming selection
// vectors; it stops pulling from its child as soon as the limit is
// satisfied (early termination the materializing engine could not do).
type LimitOp struct {
	Child  Operator
	N      int64
	Offset int64

	skipped int64
	emitted int64
	selBuf  []int32
}

func (l *LimitOp) Schema() Schema { return l.Child.Schema() }

func (l *LimitOp) Clone() BatchOperator {
	return &LimitOp{Child: l.Child.Clone(), N: l.N, Offset: l.Offset}
}

func (l *LimitOp) Open(ctx *Context) error {
	l.skipped, l.emitted = 0, 0
	return l.Child.Open(ctx)
}

func (l *LimitOp) Next(ctx *Context) (*Batch, error) {
	if l.N >= 0 && l.emitted >= l.N {
		return nil, nil
	}
	for {
		b, err := l.Child.Next(ctx)
		if err != nil || b == nil {
			return nil, err
		}
		n := b.NumActive()
		skip := 0
		if l.skipped < l.Offset {
			skip = int(l.Offset - l.skipped)
			if skip > n {
				skip = n
			}
			l.skipped += int64(skip)
		}
		if skip >= n {
			continue
		}
		take := n - skip
		if l.N >= 0 && int64(take) > l.N-l.emitted {
			take = int(l.N - l.emitted)
		}
		l.emitted += int64(take)
		if skip == 0 && take == n {
			ctx.Stats.BatchesProduced++
			return b, nil
		}
		sel := l.selBuf[:0]
		for i := skip; i < skip+take; i++ {
			sel = append(sel, int32(b.PosAt(i)))
		}
		l.selBuf = sel
		b.Sel = sel
		ctx.Stats.BatchesProduced++
		return b, nil
	}
}

func (l *LimitOp) Close() error { return l.Child.Close() }
