// EXPLAIN ANALYZE instrumentation: Instrument wraps every operator of a
// private plan tree in an analyzeOp that measures wall time and row flow
// into a shared OpProfile tree. The wrappers are transparent to the
// morsel-parallel fork machinery (parallel.go special-cases them), so an
// instrumented DOP>1 query forks exactly like an uninstrumented one —
// worker clones of a wrapper record into the same OpProfile through
// atomic counters.
package exec

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// OpProfile accumulates the measured execution profile of one plan
// operator. Counters are atomics because parallel worker clones of the
// operator all record into the one profile.
type OpProfile struct {
	Name     string
	Children []*OpProfile

	wallNS  atomic.Int64 // cumulative busy time (summed across workers)
	rows    atomic.Int64 // active rows emitted
	batches atomic.Int64
	workers atomic.Int64 // clones that opened this node (0 before Open)

	// leaf-scan work captured as ctx.Stats deltas around Next
	morsels       atomic.Int64
	chunksPruned  atomic.Int64
	chunksScanned atomic.Int64
	chunksEncoded atomic.Int64 // chunks served by encoded kernels
	chunksDecoded atomic.Int64 // chunks fully decoded into batch vectors
}

// OpStats is the JSON-renderable snapshot of an OpProfile tree — the
// per-operator payload of an EXPLAIN ANALYZE response.
type OpStats struct {
	Name          string     `json:"name"`
	TimeUS        int64      `json:"time_us"` // cumulative; parallel nodes sum worker busy time
	Rows          int64      `json:"rows"`
	Batches       int64      `json:"batches"`
	Workers       int64      `json:"workers,omitempty"`
	Morsels       int64      `json:"morsels,omitempty"`
	ChunksPruned  int64      `json:"chunks_pruned,omitempty"`
	ChunksScanned int64      `json:"chunks_scanned,omitempty"`
	ChunksEncoded int64      `json:"chunks_encoded,omitempty"`
	ChunksDecoded int64      `json:"chunks_decoded,omitempty"`
	Children      []*OpStats `json:"children,omitempty"`
}

// Snapshot copies the profile tree into its exportable form.
func (p *OpProfile) Snapshot() *OpStats {
	s := &OpStats{
		Name:          p.Name,
		TimeUS:        p.wallNS.Load() / 1e3,
		Rows:          p.rows.Load(),
		Batches:       p.batches.Load(),
		Workers:       p.workers.Load(),
		Morsels:       p.morsels.Load(),
		ChunksPruned:  p.chunksPruned.Load(),
		ChunksScanned: p.chunksScanned.Load(),
		ChunksEncoded: p.chunksEncoded.Load(),
		ChunksDecoded: p.chunksDecoded.Load(),
	}
	for _, c := range p.Children {
		s.Children = append(s.Children, c.Snapshot())
	}
	return s
}

// String renders the annotated plan tree, one operator per line — the
// EXPLAIN ANALYZE output format.
func (s *OpStats) String() string {
	var b strings.Builder
	var rec func(*OpStats, int)
	rec = func(n *OpStats, depth int) {
		if depth > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s%s (actual time=%s rows=%d batches=%d",
			strings.Repeat("  ", depth), n.Name,
			time.Duration(n.TimeUS)*time.Microsecond, n.Rows, n.Batches)
		if n.Workers > 1 {
			fmt.Fprintf(&b, " workers=%d", n.Workers)
		}
		if n.Morsels > 0 {
			fmt.Fprintf(&b, " morsels=%d", n.Morsels)
		}
		if n.ChunksScanned > 0 || n.ChunksPruned > 0 {
			fmt.Fprintf(&b, " chunks=%d pruned=%d", n.ChunksScanned, n.ChunksPruned)
		}
		if n.ChunksEncoded > 0 || n.ChunksDecoded > 0 {
			fmt.Fprintf(&b, " encoded=%d decoded=%d", n.ChunksEncoded, n.ChunksDecoded)
		}
		b.WriteByte(')')
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(s, 0)
	return b.String()
}

// analyzeOp is the measuring wrapper around one operator. Each wrapper
// instance is used by a single goroutine (parallel forks give every worker
// its own instance sharing the profile), so the in-flight timestamps are
// plain fields while the accumulated counters are atomic.
type analyzeOp struct {
	child BatchOperator
	prof  *OpProfile
	// leafScan marks a wrapper around a scan leaf: morsel and chunk-prune
	// counts are recovered as ctx.Stats deltas around the child's calls
	// (the worker context is goroutine-local, so the deltas are exact).
	leafScan bool
}

// Instrument wraps a private (already-cloned) operator tree for EXPLAIN
// ANALYZE and returns the instrumented root plus the profile tree that
// will fill in during execution. The input tree must not be shared: the
// wrapper tree aliases it.
func Instrument(op BatchOperator) (BatchOperator, *OpProfile) {
	prof := &OpProfile{Name: opName(op)}
	switch x := op.(type) {
	case *FilterOp:
		x.Child = instrumentChild(x.Child, prof)
	case *ProjectOp:
		x.Child = instrumentChild(x.Child, prof)
	case *LimitOp:
		x.Child = instrumentChild(x.Child, prof)
	case *TopNOp:
		x.Child = instrumentChild(x.Child, prof)
	case *SortOp:
		x.Child = instrumentChild(x.Child, prof)
	case *HashAggregate:
		x.Child = instrumentChild(x.Child, prof)
	case *NestedLoopJoin:
		x.Outer = instrumentChild(x.Outer, prof)
		x.Inner = instrumentChild(x.Inner, prof)
	case *IndexNLJoin:
		x.Outer = instrumentChild(x.Outer, prof)
	case *HashJoin:
		x.Probe = instrumentChild(x.Probe, prof)
		x.Build = instrumentChild(x.Build, prof)
	}
	_, leaf := op.(ParallelSource)
	return &analyzeOp{child: op, prof: prof, leafScan: leaf || isScan(op)}, prof
}

func instrumentChild(op BatchOperator, parent *OpProfile) BatchOperator {
	wrapped, prof := Instrument(op)
	parent.Children = append(parent.Children, prof)
	return wrapped
}

func isScan(op BatchOperator) bool {
	switch op.(type) {
	case *RowTableScan, *RowIndexScan, *RowIndexOrderScan, *ColTableScan:
		return true
	}
	return false
}

// opName names an operator for the annotated tree, including its access
// path.
func opName(op BatchOperator) string {
	switch x := op.(type) {
	case *RowTableScan:
		return "Table Scan on " + x.Table.Meta.Name
	case *RowIndexScan:
		return fmt.Sprintf("Index Scan on %s via %s", x.Table.Meta.Name, x.Index.Column)
	case *RowIndexOrderScan:
		return fmt.Sprintf("Index Order Scan on %s via %s", x.Table.Meta.Name, x.Index.Column)
	case *ColTableScan:
		return "Column Scan on " + x.Table.Meta.Name
	case *FilterOp:
		return "Filter"
	case *ProjectOp:
		return "Projection"
	case *NestedLoopJoin:
		return "Nested loop inner join"
	case *IndexNLJoin:
		return fmt.Sprintf("Index NL join on %s via %s", x.InnerTable.Meta.Name, x.InnerIndex.Column)
	case *HashJoin:
		return "Inner hash join"
	case *HashAggregate:
		return "Aggregate"
	case *SortOp:
		return "Sort"
	case *TopNOp:
		return "Top N"
	case *LimitOp:
		return "Limit"
	case *analyzeOp:
		return x.prof.Name
	}
	return fmt.Sprintf("%T", op)
}

func (a *analyzeOp) Schema() Schema { return a.child.Schema() }

// Clone shares the profile: a clone is another execution instance of the
// same analyzed plan node.
func (a *analyzeOp) Clone() BatchOperator {
	return &analyzeOp{child: a.child.Clone(), prof: a.prof, leafScan: a.leafScan}
}

func (a *analyzeOp) Open(ctx *Context) error {
	a.prof.workers.Add(1)
	start := time.Now()
	err := a.child.Open(ctx)
	a.prof.wallNS.Add(int64(time.Since(start)))
	return err
}

func (a *analyzeOp) Next(ctx *Context) (*Batch, error) {
	var m0, s0, k0, e0, d0 int64
	if a.leafScan {
		m0 = ctx.Stats.MorselsDispatched
		s0 = ctx.Stats.ChunksSkipped
		k0 = ctx.Stats.ChunksScanned
		e0 = ctx.Stats.EncodedChunks
		d0 = ctx.Stats.DecodedChunks
	}
	start := time.Now()
	b, err := a.child.Next(ctx)
	a.prof.wallNS.Add(int64(time.Since(start)))
	if a.leafScan {
		a.prof.morsels.Add(ctx.Stats.MorselsDispatched - m0)
		a.prof.chunksPruned.Add(ctx.Stats.ChunksSkipped - s0)
		a.prof.chunksScanned.Add(ctx.Stats.ChunksScanned - k0)
		a.prof.chunksEncoded.Add(ctx.Stats.EncodedChunks - e0)
		a.prof.chunksDecoded.Add(ctx.Stats.DecodedChunks - d0)
	}
	if b != nil {
		a.prof.batches.Add(1)
		a.prof.rows.Add(int64(b.NumActive()))
	}
	return b, err
}

func (a *analyzeOp) Close() error {
	start := time.Now()
	err := a.child.Close()
	a.prof.wallNS.Add(int64(time.Since(start)))
	return err
}
