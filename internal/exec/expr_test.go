package exec

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"htapxplain/internal/catalog"
	"htapxplain/internal/sqlparser"
	"htapxplain/internal/value"
)

// testSchema: (a INT, b FLOAT, s STRING) bound to table "t".
var testSchema = Schema{
	{Binding: "t", Name: "a", Type: catalog.TypeInt},
	{Binding: "t", Name: "b", Type: catalog.TypeFloat},
	{Binding: "t", Name: "s", Type: catalog.TypeString},
}

// compileExpr parses `SELECT <expr> FROM t` and compiles the item.
func compileExpr(t *testing.T, expr string) Evaluator {
	t.Helper()
	sel, err := sqlparser.Parse("SELECT " + expr + " FROM t")
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	ev, err := Compile(sel.Items[0].Expr, testSchema)
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	return ev
}

// compilePred parses a WHERE predicate.
func compilePred(t *testing.T, pred string) Evaluator {
	t.Helper()
	sel, err := sqlparser.Parse("SELECT a FROM t WHERE " + pred)
	if err != nil {
		t.Fatalf("parse %q: %v", pred, err)
	}
	ev, err := Compile(sel.Where, testSchema)
	if err != nil {
		t.Fatalf("compile %q: %v", pred, err)
	}
	return ev
}

func row(a int64, b float64, s string) value.Row {
	return value.Row{value.NewInt(a), value.NewFloat(b), value.NewString(s)}
}

func evalOn(t *testing.T, ev Evaluator, r value.Row) value.Value {
	t.Helper()
	v, err := ev(r)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	r := row(7, 2.5, "x")
	cases := []struct {
		expr string
		want value.Value
	}{
		{"a + 3", value.NewInt(10)},
		{"a - 10", value.NewInt(-3)},
		{"a * 2", value.NewInt(14)},
		{"a / 2", value.NewFloat(3.5)}, // division always yields float
		{"b * 4", value.NewFloat(10)},
		{"a + b", value.NewFloat(9.5)}, // mixed numeric widens
	}
	for _, c := range cases {
		got := evalOn(t, compileExpr(t, c.expr), r)
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestDivisionByZeroYieldsNull(t *testing.T) {
	got := evalOn(t, compileExpr(t, "a / 0"), row(7, 0, ""))
	if !got.IsNull() {
		t.Errorf("7/0 = %v, want NULL", got)
	}
}

func TestComparisons(t *testing.T) {
	r := row(5, 2.5, "mm")
	trueCases := []string{"a = 5", "a <> 4", "a > 4", "a >= 5", "a < 6", "a <= 5",
		"b = 2.5", "s = 'mm'", "s > 'ma'", "a > b"}
	for _, c := range trueCases {
		if v := evalOn(t, compilePred(t, c), r); !v.Bool() {
			t.Errorf("%s should be true, got %v", c, v)
		}
	}
	falseCases := []string{"a = 4", "a < 5", "s = 'nn'"}
	for _, c := range falseCases {
		if v := evalOn(t, compilePred(t, c), r); v.Bool() {
			t.Errorf("%s should be false", c)
		}
	}
}

func TestBooleanLogicWithNulls(t *testing.T) {
	r := value.Row{value.Null, value.NewFloat(1), value.NewString("x")}
	// NULL AND false → false; NULL AND true → NULL
	if v := evalOn(t, compilePred(t, "a = 1 AND b = 99"), r); v.IsNull() || v.Bool() {
		t.Errorf("NULL AND false = %v, want false", v)
	}
	if v := evalOn(t, compilePred(t, "a = 1 AND b = 1"), r); !v.IsNull() {
		t.Errorf("NULL AND true = %v, want NULL", v)
	}
	// NULL OR true → true; NULL OR false → NULL
	if v := evalOn(t, compilePred(t, "a = 1 OR b = 1"), r); !v.Bool() {
		t.Errorf("NULL OR true = %v, want true", v)
	}
	if v := evalOn(t, compilePred(t, "a = 1 OR b = 99"), r); !v.IsNull() {
		t.Errorf("NULL OR false = %v, want NULL", v)
	}
	// NOT NULL → NULL
	if v := evalOn(t, compilePred(t, "NOT a = 1"), r); !v.IsNull() {
		t.Errorf("NOT NULL = %v, want NULL", v)
	}
}

func TestInExpr(t *testing.T) {
	r := row(5, 0, "q")
	if v := evalOn(t, compilePred(t, "a IN (1, 5, 9)"), r); !v.Bool() {
		t.Error("5 IN (1,5,9) should be true")
	}
	if v := evalOn(t, compilePred(t, "a IN (1, 2)"), r); v.Bool() {
		t.Error("5 IN (1,2) should be false")
	}
	if v := evalOn(t, compilePred(t, "a NOT IN (1, 2)"), r); !v.Bool() {
		t.Error("5 NOT IN (1,2) should be true")
	}
	if v := evalOn(t, compilePred(t, "s IN ('p', 'q')"), r); !v.Bool() {
		t.Error("string IN failed")
	}
}

func TestBetween(t *testing.T) {
	r := row(5, 0, "")
	if v := evalOn(t, compilePred(t, "a BETWEEN 5 AND 7"), r); !v.Bool() {
		t.Error("5 BETWEEN 5 AND 7 should be true (inclusive)")
	}
	if v := evalOn(t, compilePred(t, "a BETWEEN 6 AND 7"), r); v.Bool() {
		t.Error("5 BETWEEN 6 AND 7 should be false")
	}
}

func TestSubstring(t *testing.T) {
	r := row(0, 0, "20-345-678")
	cases := []struct {
		expr, want string
	}{
		{"SUBSTRING(s, 1, 2)", "20"},
		{"SUBSTRING(s, 4, 3)", "345"},
		{"SUBSTRING(s, 9, 100)", "78"}, // clamped
		{"SUBSTRING(s, 99, 2)", ""},    // past the end
		{"SUBSTR(s, 1, 2)", "20"},      // alias
	}
	for _, c := range cases {
		got := evalOn(t, compileExpr(t, c.expr), r)
		if got.S != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got.S, c.want)
		}
	}
}

func TestStringFunctions(t *testing.T) {
	r := row(0, 0, "MiXeD")
	if got := evalOn(t, compileExpr(t, "UPPER(s)"), r); got.S != "MIXED" {
		t.Errorf("UPPER = %q", got.S)
	}
	if got := evalOn(t, compileExpr(t, "LOWER(s)"), r); got.S != "mixed" {
		t.Errorf("LOWER = %q", got.S)
	}
	if got := evalOn(t, compileExpr(t, "LENGTH(s)"), r); got.I != 5 {
		t.Errorf("LENGTH = %d", got.I)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"nope = 1",        // unknown column
		"NOSUCHFUNC(a)",   // unknown function
		"SUBSTRING(s, 1)", // wrong arity
		"UPPER(s, s)",     // wrong arity
	}
	for _, pred := range bad {
		sel, err := sqlparser.Parse("SELECT a FROM t WHERE " + pred)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := Compile(sel.Where, testSchema); err == nil {
			t.Errorf("Compile(%q) should fail", pred)
		}
	}
	// aggregates cannot be compiled as scalar expressions
	sel, err := sqlparser.Parse("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(sel.Items[0].Expr, testSchema); err == nil {
		t.Error("aggregate outside aggregation context should fail to compile")
	}
}

func TestSchemaResolve(t *testing.T) {
	s := Schema{
		{Binding: "a", Name: "x", Type: catalog.TypeInt},
		{Binding: "b", Name: "x", Type: catalog.TypeInt},
		{Binding: "b", Name: "y", Type: catalog.TypeInt},
	}
	if _, err := s.Resolve(&sqlparser.ColumnRef{Column: "x"}); err == nil {
		t.Error("ambiguous unqualified x should error")
	}
	if i, err := s.Resolve(&sqlparser.ColumnRef{Table: "b", Column: "x"}); err != nil || i != 1 {
		t.Errorf("b.x = %d, %v", i, err)
	}
	if i, err := s.Resolve(&sqlparser.ColumnRef{Column: "y"}); err != nil || i != 2 {
		t.Errorf("y = %d, %v", i, err)
	}
	if _, err := s.Resolve(&sqlparser.ColumnRef{Column: "zz"}); err == nil {
		t.Error("unknown column should error")
	}
}

// TestLikeMatchesRegexpProperty cross-validates the hand-rolled LIKE
// matcher against the regexp package over random inputs.
func TestLikeMatchesRegexpProperty(t *testing.T) {
	toRegexp := func(pattern string) *regexp.Regexp {
		var sb strings.Builder
		sb.WriteString("^")
		for _, c := range pattern {
			switch c {
			case '%':
				sb.WriteString(".*")
			case '_':
				sb.WriteString(".")
			default:
				sb.WriteString(regexp.QuoteMeta(string(c)))
			}
		}
		sb.WriteString("$")
		return regexp.MustCompile(sb.String())
	}
	alphabet := []byte("ab%_")
	prop := func(sRaw, pRaw []byte) bool {
		var s, p strings.Builder
		for _, c := range sRaw {
			if c%4 < 2 { // strings contain only a/b
				s.WriteByte(alphabet[c%2])
			}
		}
		for _, c := range pRaw {
			p.WriteByte(alphabet[c%4])
		}
		str, pat := s.String(), p.String()
		if len(pat) > 12 || len(str) > 24 {
			return true // keep regexp fast
		}
		return likeMatch(str, pat) == toRegexp(pat).MatchString(str)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLikeEdgeCases(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"", "", true},
		{"", "%", true},
		{"a", "", false},
		{"abc", "abc", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "a_c", true},
		{"abc", "a_b", false},
		{"abc", "____", false},
		{"slyly ironic", "%ironic%", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestTruthyHelper(t *testing.T) {
	ev := compilePred(t, "a = 1")
	ok, err := Truthy(ev, row(1, 0, ""))
	if err != nil || !ok {
		t.Errorf("Truthy true case: %v %v", ok, err)
	}
	ok, err = Truthy(ev, value.Row{value.Null, value.Null, value.Null})
	if err != nil || ok {
		t.Errorf("Truthy NULL case must be false: %v %v", ok, err)
	}
}
