package exec

import (
	"fmt"
	"testing"

	"htapxplain/internal/colstore"
	"htapxplain/internal/sqlparser"
	"htapxplain/internal/value"
)

// TestOperatorCloseIdempotent is the teardown-safety contract parallel
// execution relies on: for every physical operator, double-Close,
// close-after-error and close-without-open must all be harmless no-ops —
// a forked pipeline's teardown may otherwise double-release pooled
// buffers or re-close a child that an error path already closed.
func TestOperatorCloseIdempotent(t *testing.T) {
	tbl := parallelFixture(t, 2*colstore.ChunkSize)
	newScan := func() *ColTableScan { return NewColTableScan(tbl, "p", []int{0, 1, 2}, nil, nil) }
	newMem := func() *memOp {
		return &memOp{schema: Schema{intCol("t", "a")}, rows: rowsOf([]int64{1}, []int64{2})}
	}
	truthy := func(value.Row) (value.Value, error) { return value.NewBool(true), nil }
	boom := func(value.Row) (value.Value, error) { return value.Null, fmt.Errorf("boom") }
	passCol := func(row value.Row) (value.Value, error) { return row[0], nil }

	cases := []struct {
		name string
		mk   func() BatchOperator // fresh operator per scenario
	}{
		{"ColTableScan", func() BatchOperator { return newScan() }},
		{"FilterOp", func() BatchOperator { return &FilterOp{Child: newScan(), Pred: truthy} }},
		{"ProjectOp", func() BatchOperator {
			return &ProjectOp{Child: newScan(), Evals: []Evaluator{passCol}, Out: Schema{intCol("p", "k")}}
		}},
		{"NestedLoopJoin", func() BatchOperator {
			return NewNestedLoopJoin(newMem(), newMem(), nil)
		}},
		{"HashJoin", func() BatchOperator {
			return NewHashJoin(newMem(), newMem(), []int{0}, []int{0}, nil)
		}},
		{"HashAggregate", func() BatchOperator {
			return &HashAggregate{Child: newScan(), Aggs: []AggSpec{{Func: sqlparser.AggCount}},
				Out: Schema{intCol("", "count")}}
		}},
		{"SortOp", func() BatchOperator {
			return &SortOp{Child: newScan(), Keys: []SortKey{{Eval: passCol}}}
		}},
		{"TopNOp", func() BatchOperator {
			return &TopNOp{Child: newScan(), Keys: []SortKey{{Eval: passCol}}, N: 3}
		}},
		{"LimitOp", func() BatchOperator { return &LimitOp{Child: newScan(), N: 3} }},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// close-without-open: a tree torn down before Open ever ran
			op := tc.mk()
			if err := op.Close(); err != nil {
				t.Fatalf("close-without-open: %v", err)
			}
			if err := op.Close(); err != nil {
				t.Fatalf("double close-without-open: %v", err)
			}

			// normal lifecycle: open, drain a little, then double-Close
			op = tc.mk()
			ctx := NewContext()
			if err := op.Open(ctx); err != nil {
				t.Fatalf("Open: %v", err)
			}
			if _, err := op.Next(ctx); err != nil {
				t.Fatalf("Next: %v", err)
			}
			if err := op.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := op.Close(); err != nil {
				t.Fatalf("double Close: %v", err)
			}

			// reuse after close: pooled runners re-Open closed trees
			if err := op.Open(NewContext()); err != nil {
				t.Fatalf("re-Open after Close: %v", err)
			}
			if err := op.Close(); err != nil {
				t.Fatalf("Close after re-Open: %v", err)
			}
		})
	}

	// close-after-error: an erroring predicate aborts the drain (which
	// closes internally); the caller's deferred Close must still be a
	// no-op on the already-torn-down tree.
	t.Run("close-after-error", func(t *testing.T) {
		roots := []BatchOperator{
			&FilterOp{Child: newScan(), Pred: boom},
			&HashAggregate{Child: &FilterOp{Child: newScan(), Pred: boom},
				Aggs: []AggSpec{{Func: sqlparser.AggCount}}, Out: Schema{intCol("", "count")}},
			&SortOp{Child: &FilterOp{Child: newScan(), Pred: boom}, Keys: []SortKey{{Eval: passCol}}},
			NewHashJoin(newMem(), &FilterOp{Child: newScan(), Pred: boom}, []int{0}, []int{0}, nil),
		}
		for _, root := range roots {
			if _, err := drainOp(root, NewContext()); err == nil {
				t.Fatalf("%T: drain did not surface the predicate error", root)
			}
			if err := root.Close(); err != nil {
				t.Fatalf("%T: Close after error: %v", root, err)
			}
			if err := root.Close(); err != nil {
				t.Fatalf("%T: double Close after error: %v", root, err)
			}
		}
	})
}
