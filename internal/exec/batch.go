package exec

import (
	"strings"
	"sync"

	"htapxplain/internal/colstore"
	"htapxplain/internal/value"
)

// BatchSize is the number of rows per execution batch. It is aligned with
// the column store's chunk size so a columnar scan emits exactly one batch
// per zone-mapped chunk — raw chunks aliased with no per-row
// materialization, encoded chunks decoded once into pooled buffers.
const BatchSize = colstore.ChunkSize

// Batch is the unit of data flow in the vectorized engine: one vector per
// output column plus an optional selection vector. Operators that drop rows
// (filters, limits) shrink the selection vector instead of copying values;
// the vectors themselves may alias storage and must never be mutated by
// consumers.
type Batch struct {
	// Cols holds one value vector per schema column; every vector is Len
	// values long. Vectors either alias raw column-store chunks directly or
	// are pooled decode buffers owned by the producing scan — alias or
	// decode, never mutate.
	Cols [][]value.Value
	// Sel lists the active row positions in ascending order. A nil Sel
	// means all Len rows are active.
	Sel []int32
	// Len is the physical number of rows in each vector.
	Len int
}

// NumActive returns the number of selected rows.
func (b *Batch) NumActive() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.Len
}

// PosAt maps an active-row ordinal to its physical vector position.
func (b *Batch) PosAt(i int) int {
	if b.Sel != nil {
		return int(b.Sel[i])
	}
	return i
}

// FillRow copies the i-th active row into scratch (which must be
// len(b.Cols) long) and returns it — the bridge that lets row-oriented
// Evaluators run over a batch without allocating.
func (b *Batch) FillRow(i int, scratch value.Row) value.Row {
	p := b.PosAt(i)
	for j, col := range b.Cols {
		scratch[j] = col[p]
	}
	return scratch
}

// AppendRows materializes every active row as a fresh value.Row appended to
// dst — the final step of the legacy Drain contract. Rows never alias
// storage; the whole batch is carved from one allocation.
func (b *Batch) AppendRows(dst []value.Row) []value.Row {
	n := b.NumActive()
	w := len(b.Cols)
	if n == 0 {
		return dst
	}
	slab := make([]value.Value, n*w)
	for i := 0; i < n; i++ {
		p := b.PosAt(i)
		r := slab[i*w : (i+1)*w : (i+1)*w]
		for j, col := range b.Cols {
			r[j] = col[p]
		}
		dst = append(dst, value.Row(r))
	}
	return dst
}

// keyAt renders the hash key of the row at physical position pos over the
// given columns, byte-compatible with value.Row.Key.
func (b *Batch) keyAt(pos int, cols []int, sb *strings.Builder) string {
	sb.Reset()
	for _, c := range cols {
		sb.WriteString(b.Cols[c][pos].Key())
		sb.WriteByte('\x1f')
	}
	return sb.String()
}

// BatchOperator is a pull-based vectorized physical operator: Open prepares
// execution state, Next returns the next non-empty batch (nil at
// exhaustion), Close releases state. Operator trees held in the plan cache
// are executed concurrently, so a tree is never iterated directly — Clone
// returns a fresh execution instance sharing the immutable plan fields
// (children are cloned recursively) with zeroed iteration state.
type BatchOperator interface {
	Schema() Schema
	Clone() BatchOperator
	Open(ctx *Context) error
	Next(ctx *Context) (*Batch, error)
	Close() error
}

// Operator is the historical name of the physical-operator interface; the
// materializing Run contract it once carried survives only as Drain.
type Operator = BatchOperator

// Drain executes op to completion and materializes its output rows — the
// legacy Operator.Run contract. The tree is cloned first, so a shared
// (cached) plan can be drained by many goroutines concurrently.
func Drain(op BatchOperator, ctx *Context) ([]value.Row, error) {
	return drainOp(op.Clone(), ctx)
}

// drainOp runs Open/Next/Close on an already-private operator tree. When
// the query was granted a degree of parallelism and the tree is a
// forkable per-morsel pipeline, the drain fans out over worker clones
// sharing one morsel cursor and gathers their rows — this is the parallel
// entry point for plain scan/filter/project(/limit) queries and for
// blocking operators that materialize a child (sorts, nested-loop
// inners).
func drainOp(op BatchOperator, ctx *Context) ([]value.Row, error) {
	if ctx.DOP > 1 {
		if pipes, ok := forkPipeline(op, ctx.DOP); ok {
			return drainForked(ctx, pipes)
		}
	}
	if err := op.Open(ctx); err != nil {
		_ = op.Close()
		return nil, err
	}
	var out []value.Row
	for {
		b, err := op.Next(ctx)
		if err != nil {
			_ = op.Close()
			return nil, err
		}
		if b == nil {
			break
		}
		out = b.AppendRows(out)
	}
	if err := op.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// Runner executes one shared plan repeatedly, pooling cloned operator
// trees so steady-state executions reuse their batch buffers instead of
// reallocating them per query — the piece that keeps cached point-query
// plans fast under the vectorized engine. A pooled tree is only ever used
// by one goroutine at a time; concurrency comes from the pool handing out
// distinct clones.
type Runner struct {
	root BatchOperator
	pool sync.Pool
}

// NewRunner wraps a plan root for repeated execution. The root itself is
// seeded into the pool: the first (or any single-threaded) execution runs
// it directly, and clones are only made when executions overlap.
func NewRunner(root BatchOperator) *Runner {
	r := &Runner{root: root}
	r.pool.New = func() any { return root.Clone() }
	r.pool.Put(root)
	return r
}

// Drain executes the plan once and materializes its output rows. Trees
// that errored are discarded rather than returned to the pool.
func (r *Runner) Drain(ctx *Context) ([]value.Row, error) {
	op := r.pool.Get().(BatchOperator)
	rows, err := drainOp(op, ctx)
	if err != nil {
		return nil, err
	}
	r.pool.Put(op)
	return rows, nil
}

// rowWindow transposes a window of rows into a reusable columnar batch —
// the row-adapter used by row-store leaves and by operators that emit
// materialized intermediates (sort, aggregate). All vectors share one
// reusable slab, so a steady-state fill allocates nothing.
type rowWindow struct {
	batch Batch
	slab  []value.Value
}

func (w *rowWindow) init(width int) {
	if w.batch.Cols == nil || len(w.batch.Cols) != width {
		w.batch.Cols = make([][]value.Value, width)
	}
}

func (w *rowWindow) fill(rows []value.Row) *Batch {
	width := len(w.batch.Cols)
	n := len(rows)
	if need := width * n; cap(w.slab) < need {
		w.slab = make([]value.Value, need)
	}
	for j := range w.batch.Cols {
		col := w.slab[j*n : j*n+n : j*n+n]
		for i, r := range rows {
			col[i] = r[j]
		}
		w.batch.Cols[j] = col
	}
	w.batch.Len = n
	w.batch.Sel = nil
	return &w.batch
}

// rowEmitter streams a materialized row slice out as batches.
type rowEmitter struct {
	rows []value.Row
	pos  int
	rw   rowWindow
}

func (e *rowEmitter) reset(rows []value.Row, width int) {
	e.rows = rows
	e.pos = 0
	e.rw.init(width)
}

func (e *rowEmitter) next(ctx *Context) *Batch {
	if e.pos >= len(e.rows) {
		return nil
	}
	end := e.pos + BatchSize
	if end > len(e.rows) {
		end = len(e.rows)
	}
	b := e.rw.fill(e.rows[e.pos:end])
	e.pos = end
	ctx.Stats.BatchesProduced++
	return b
}

// outInitCap is the initial per-column capacity of an output buffer.
// Kept small — point-query results fit the first slab, and pooled runners
// retain grown capacity across executions.
const outInitCap = 8

// outBuffer accumulates produced rows column-wise — the output side of
// operators that construct new tuples (projections, joins). All columns
// live in one slab and grow together, so filling it costs O(log n)
// allocations regardless of width.
type outBuffer struct {
	batch Batch
	cap   int // shared per-column capacity
}

func (o *outBuffer) init(width int) {
	if o.batch.Cols == nil || len(o.batch.Cols) != width {
		o.batch.Cols = make([][]value.Value, width)
		o.cap = 0
	}
	o.reset()
}

func (o *outBuffer) reset() {
	for j := range o.batch.Cols {
		o.batch.Cols[j] = o.batch.Cols[j][:0]
	}
	o.batch.Len = 0
	o.batch.Sel = nil
}

// grow doubles every column's capacity inside one new shared slab.
func (o *outBuffer) grow() {
	ncap := o.cap * 2
	if ncap == 0 {
		ncap = outInitCap
	}
	slab := make([]value.Value, len(o.batch.Cols)*ncap)
	for j, col := range o.batch.Cols {
		ncol := slab[j*ncap : j*ncap+len(col) : (j+1)*ncap]
		copy(ncol, col)
		o.batch.Cols[j] = ncol
	}
	o.cap = ncap
}

// appendRow appends one constructed row (copied value-wise).
func (o *outBuffer) appendRow(r value.Row) {
	n := o.batch.Len
	if n == o.cap {
		o.grow()
	}
	for j := range o.batch.Cols {
		o.batch.Cols[j] = o.batch.Cols[j][:n+1]
		o.batch.Cols[j][n] = r[j]
	}
	o.batch.Len = n + 1
}

// appendSplit appends a join output row taken directly from its two
// sources: the left values from physical position pos of batch b, the
// right values from row tail — no intermediate scratch row.
func (o *outBuffer) appendSplit(b *Batch, pos, leftWidth int, tail value.Row) {
	n := o.batch.Len
	if n == o.cap {
		o.grow()
	}
	cols := o.batch.Cols
	for c := 0; c < leftWidth; c++ {
		cols[c] = cols[c][:n+1]
		cols[c][n] = b.Cols[c][pos]
	}
	for c, v := range tail {
		cols[leftWidth+c] = cols[leftWidth+c][:n+1]
		cols[leftWidth+c][n] = v
	}
	o.batch.Len = n + 1
}

func (o *outBuffer) len() int { return o.batch.Len }

func (o *outBuffer) take(ctx *Context) *Batch {
	ctx.Stats.BatchesProduced++
	return &o.batch
}
