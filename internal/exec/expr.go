package exec

import (
	"fmt"
	"strings"

	"htapxplain/internal/sqlparser"
	"htapxplain/internal/value"
)

// Evaluator computes an expression over one row.
type Evaluator func(row value.Row) (value.Value, error)

// Compile translates an AST expression into an Evaluator bound to the
// given schema. Aggregates are rejected here; the aggregation operators
// handle them.
func Compile(e sqlparser.Expr, s Schema) (Evaluator, error) {
	switch x := e.(type) {
	case *sqlparser.IntLit:
		v := value.NewInt(x.V)
		return func(value.Row) (value.Value, error) { return v, nil }, nil
	case *sqlparser.FloatLit:
		v := value.NewFloat(x.V)
		return func(value.Row) (value.Value, error) { return v, nil }, nil
	case *sqlparser.StringLit:
		v := value.NewString(x.V)
		return func(value.Row) (value.Value, error) { return v, nil }, nil
	case *sqlparser.ColumnRef:
		idx, err := s.Resolve(x)
		if err != nil {
			return nil, err
		}
		return func(row value.Row) (value.Value, error) { return row[idx], nil }, nil
	case *sqlparser.BinaryExpr:
		return compileBinary(x, s)
	case *sqlparser.NotExpr:
		inner, err := Compile(x.Inner, s)
		if err != nil {
			return nil, err
		}
		return func(row value.Row) (value.Value, error) {
			v, err := inner(row)
			if err != nil {
				return value.Null, err
			}
			if v.IsNull() {
				return value.Null, nil
			}
			return value.NewBool(!v.Bool()), nil
		}, nil
	case *sqlparser.InExpr:
		return compileIn(x, s)
	case *sqlparser.BetweenExpr:
		ev, err := Compile(x.Expr, s)
		if err != nil {
			return nil, err
		}
		lo, err := Compile(x.Lo, s)
		if err != nil {
			return nil, err
		}
		hi, err := Compile(x.Hi, s)
		if err != nil {
			return nil, err
		}
		return func(row value.Row) (value.Value, error) {
			v, err := ev(row)
			if err != nil {
				return value.Null, err
			}
			l, err := lo(row)
			if err != nil {
				return value.Null, err
			}
			h, err := hi(row)
			if err != nil {
				return value.Null, err
			}
			if v.IsNull() || l.IsNull() || h.IsNull() {
				return value.Null, nil
			}
			return value.NewBool(v.Compare(l) >= 0 && v.Compare(h) <= 0), nil
		}, nil
	case *sqlparser.LikeExpr:
		ev, err := Compile(x.Expr, s)
		if err != nil {
			return nil, err
		}
		pat := x.Pattern
		return func(row value.Row) (value.Value, error) {
			v, err := ev(row)
			if err != nil {
				return value.Null, err
			}
			if v.IsNull() {
				return value.Null, nil
			}
			return value.NewBool(likeMatch(v.String(), pat)), nil
		}, nil
	case *sqlparser.FuncExpr:
		return compileFunc(x, s)
	case *sqlparser.AggExpr:
		return nil, fmt.Errorf("exec: aggregate %s outside aggregation context", x)
	default:
		return nil, fmt.Errorf("exec: unsupported expression %T", e)
	}
}

func compileBinary(x *sqlparser.BinaryExpr, s Schema) (Evaluator, error) {
	left, err := Compile(x.Left, s)
	if err != nil {
		return nil, err
	}
	right, err := Compile(x.Right, s)
	if err != nil {
		return nil, err
	}
	op := x.Op
	switch op {
	case sqlparser.OpAnd:
		return func(row value.Row) (value.Value, error) {
			l, err := left(row)
			if err != nil {
				return value.Null, err
			}
			if !l.IsNull() && !l.Bool() {
				return value.NewBool(false), nil
			}
			r, err := right(row)
			if err != nil {
				return value.Null, err
			}
			if !r.IsNull() && !r.Bool() {
				return value.NewBool(false), nil
			}
			if l.IsNull() || r.IsNull() {
				return value.Null, nil
			}
			return value.NewBool(true), nil
		}, nil
	case sqlparser.OpOr:
		return func(row value.Row) (value.Value, error) {
			l, err := left(row)
			if err != nil {
				return value.Null, err
			}
			if !l.IsNull() && l.Bool() {
				return value.NewBool(true), nil
			}
			r, err := right(row)
			if err != nil {
				return value.Null, err
			}
			if !r.IsNull() && r.Bool() {
				return value.NewBool(true), nil
			}
			if l.IsNull() || r.IsNull() {
				return value.Null, nil
			}
			return value.NewBool(false), nil
		}, nil
	case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpDiv:
		return func(row value.Row) (value.Value, error) {
			l, err := left(row)
			if err != nil {
				return value.Null, err
			}
			r, err := right(row)
			if err != nil {
				return value.Null, err
			}
			if l.IsNull() || r.IsNull() {
				return value.Null, nil
			}
			lf, ok1 := l.AsFloat()
			rf, ok2 := r.AsFloat()
			if !ok1 || !ok2 {
				return value.Null, fmt.Errorf("exec: arithmetic on non-numeric values %s, %s", l.K, r.K)
			}
			var out float64
			switch op {
			case sqlparser.OpAdd:
				out = lf + rf
			case sqlparser.OpSub:
				out = lf - rf
			case sqlparser.OpMul:
				out = lf * rf
			case sqlparser.OpDiv:
				if rf == 0 {
					return value.Null, nil // SQL-ish: division by zero yields NULL here
				}
				out = lf / rf
			}
			if l.K == value.KindInt && r.K == value.KindInt && op != sqlparser.OpDiv {
				return value.NewInt(int64(out)), nil
			}
			return value.NewFloat(out), nil
		}, nil
	default: // comparisons
		return func(row value.Row) (value.Value, error) {
			l, err := left(row)
			if err != nil {
				return value.Null, err
			}
			r, err := right(row)
			if err != nil {
				return value.Null, err
			}
			if l.IsNull() || r.IsNull() {
				return value.Null, nil
			}
			c := l.Compare(r)
			var b bool
			switch op {
			case sqlparser.OpEq:
				b = c == 0
			case sqlparser.OpNe:
				b = c != 0
			case sqlparser.OpLt:
				b = c < 0
			case sqlparser.OpLe:
				b = c <= 0
			case sqlparser.OpGt:
				b = c > 0
			case sqlparser.OpGe:
				b = c >= 0
			}
			return value.NewBool(b), nil
		}, nil
	}
}

func compileIn(x *sqlparser.InExpr, s Schema) (Evaluator, error) {
	ev, err := Compile(x.Expr, s)
	if err != nil {
		return nil, err
	}
	items := make([]Evaluator, len(x.List))
	for i, it := range x.List {
		iev, err := Compile(it, s)
		if err != nil {
			return nil, err
		}
		items[i] = iev
	}
	not := x.Not
	return func(row value.Row) (value.Value, error) {
		v, err := ev(row)
		if err != nil {
			return value.Null, err
		}
		if v.IsNull() {
			return value.Null, nil
		}
		for _, iev := range items {
			iv, err := iev(row)
			if err != nil {
				return value.Null, err
			}
			if v.Equal(iv) {
				return value.NewBool(!not), nil
			}
		}
		return value.NewBool(not), nil
	}, nil
}

func compileFunc(x *sqlparser.FuncExpr, s Schema) (Evaluator, error) {
	args := make([]Evaluator, len(x.Args))
	for i, a := range x.Args {
		ev, err := Compile(a, s)
		if err != nil {
			return nil, err
		}
		args[i] = ev
	}
	evalArgs := func(row value.Row) ([]value.Value, error) {
		out := make([]value.Value, len(args))
		for i, ev := range args {
			v, err := ev(row)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	switch x.Name {
	case "SUBSTRING", "SUBSTR":
		if len(args) != 3 {
			return nil, fmt.Errorf("exec: %s requires 3 arguments, got %d", x.Name, len(args))
		}
		return func(row value.Row) (value.Value, error) {
			vs, err := evalArgs(row)
			if err != nil {
				return value.Null, err
			}
			if vs[0].IsNull() || vs[1].IsNull() || vs[2].IsNull() {
				return value.Null, nil
			}
			str := vs[0].String()
			start := int(vs[1].I) // SQL is 1-based
			length := int(vs[2].I)
			if start < 1 {
				start = 1
			}
			if start > len(str) {
				return value.NewString(""), nil
			}
			end := start - 1 + length
			if end > len(str) {
				end = len(str)
			}
			return value.NewString(str[start-1 : end]), nil
		}, nil
	case "UPPER":
		if len(args) != 1 {
			return nil, fmt.Errorf("exec: UPPER requires 1 argument")
		}
		return func(row value.Row) (value.Value, error) {
			vs, err := evalArgs(row)
			if err != nil || vs[0].IsNull() {
				return value.Null, err
			}
			return value.NewString(strings.ToUpper(vs[0].String())), nil
		}, nil
	case "LOWER":
		if len(args) != 1 {
			return nil, fmt.Errorf("exec: LOWER requires 1 argument")
		}
		return func(row value.Row) (value.Value, error) {
			vs, err := evalArgs(row)
			if err != nil || vs[0].IsNull() {
				return value.Null, err
			}
			return value.NewString(strings.ToLower(vs[0].String())), nil
		}, nil
	case "LENGTH":
		if len(args) != 1 {
			return nil, fmt.Errorf("exec: LENGTH requires 1 argument")
		}
		return func(row value.Row) (value.Value, error) {
			vs, err := evalArgs(row)
			if err != nil || vs[0].IsNull() {
				return value.Null, err
			}
			return value.NewInt(int64(len(vs[0].String()))), nil
		}, nil
	default:
		return nil, fmt.Errorf("exec: unsupported function %s", x.Name)
	}
}

// likeMatch implements SQL LIKE with % and _ wildcards (case-sensitive;
// the generated data is all lower case).
func likeMatch(s, pattern string) bool {
	// dynamic-programming match, iterative with backtracking on %
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		if pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]) {
			si++
			pi++
		} else if pi < len(pattern) && pattern[pi] == '%' {
			star = pi
			match = si
			pi++
		} else if star >= 0 {
			pi = star + 1
			match++
			si = match
		} else {
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// Truthy evaluates a predicate evaluator to a boolean (NULL → false).
func Truthy(ev Evaluator, row value.Row) (bool, error) {
	v, err := ev(row)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.Bool(), nil
}
