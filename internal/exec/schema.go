// Package exec implements physical query execution shared by both HTAP
// engines: schema binding, a compiled expression evaluator, and pull-based
// vectorized physical operators (scans, filters, nested-loop and hash
// joins, aggregation, sort, Top-N, limit) exchanging column-vector batches
// with selection vectors. Operators record work counters in a Context; the
// latency model converts those counters into modeled wall-clock times at
// the paper's deployment scale. The legacy materializing contract survives
// as Drain.
package exec

import (
	"fmt"
	"strings"

	"htapxplain/internal/catalog"
	"htapxplain/internal/sqlparser"
)

// Col describes one column of an intermediate result: the binding (table
// alias) it came from, its name, and its logical type.
type Col struct {
	Binding string
	Name    string
	Type    catalog.ColType
}

// Schema is the ordered column list of an operator's output.
type Schema []Col

// Resolve maps a column reference to its position. Unqualified names must
// be unambiguous.
func (s Schema) Resolve(ref *sqlparser.ColumnRef) (int, error) {
	found := -1
	for i, c := range s {
		if !strings.EqualFold(c.Name, ref.Column) {
			continue
		}
		if ref.Table != "" && !strings.EqualFold(c.Binding, ref.Table) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("exec: ambiguous column %s", ref)
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("exec: unknown column %s", ref)
	}
	return found, nil
}

// Concat returns s followed by o.
func (s Schema) Concat(o Schema) Schema {
	out := make(Schema, 0, len(s)+len(o))
	out = append(out, s...)
	out = append(out, o...)
	return out
}

// TableSchema builds the schema of a full table scan under a binding.
func TableSchema(meta *catalog.Table, binding string) Schema {
	out := make(Schema, len(meta.Columns))
	for i, c := range meta.Columns {
		out[i] = Col{Binding: binding, Name: strings.ToLower(c.Name), Type: c.Type}
	}
	return out
}

// Stats accumulates engine work counters during execution. The latency
// model translates them into modeled wall time.
type Stats struct {
	RowsScanned     int64 // heap/column rows visited by scans
	BytesScanned    int64 // modeled bytes read from storage
	IndexProbes     int64 // point lookups through an index
	JoinComparisons int64 // nested-loop inner-row visits
	HashBuildRows   int64
	HashProbeRows   int64
	RowsSorted      int64
	RowsTopN        int64 // rows pushed through bounded Top-N selection
	GroupsCreated   int64
	OutputRows      int64
	ChunksSkipped   int64 // zone-map chunk skips (AP only)
	BatchesProduced int64 // batches emitted by operators in the vectorized pipeline
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.RowsScanned += o.RowsScanned
	s.BytesScanned += o.BytesScanned
	s.IndexProbes += o.IndexProbes
	s.JoinComparisons += o.JoinComparisons
	s.HashBuildRows += o.HashBuildRows
	s.HashProbeRows += o.HashProbeRows
	s.RowsSorted += o.RowsSorted
	s.RowsTopN += o.RowsTopN
	s.GroupsCreated += o.GroupsCreated
	s.OutputRows += o.OutputRows
	s.ChunksSkipped += o.ChunksSkipped
	s.BatchesProduced += o.BatchesProduced
}

// Context carries per-query execution state: the work counters.
type Context struct {
	Stats Stats
}

// NewContext returns a fresh execution context.
func NewContext() *Context { return &Context{} }
