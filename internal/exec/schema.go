// Package exec implements physical query execution shared by both HTAP
// engines: schema binding, a compiled expression evaluator, and pull-based
// vectorized physical operators (scans, filters, nested-loop and hash
// joins, aggregation, sort, Top-N, limit) exchanging column-vector batches
// with selection vectors. Operators record work counters in a Context; the
// latency model converts those counters into modeled wall-clock times at
// the paper's deployment scale. The legacy materializing contract survives
// as Drain.
package exec

import (
	"fmt"
	"strings"
	"sync/atomic"

	"htapxplain/internal/catalog"
	"htapxplain/internal/sqlparser"
)

// Col describes one column of an intermediate result: the binding (table
// alias) it came from, its name, and its logical type.
type Col struct {
	Binding string
	Name    string
	Type    catalog.ColType
}

// Schema is the ordered column list of an operator's output.
type Schema []Col

// Resolve maps a column reference to its position. Unqualified names must
// be unambiguous.
func (s Schema) Resolve(ref *sqlparser.ColumnRef) (int, error) {
	found := -1
	for i, c := range s {
		if !strings.EqualFold(c.Name, ref.Column) {
			continue
		}
		if ref.Table != "" && !strings.EqualFold(c.Binding, ref.Table) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("exec: ambiguous column %s", ref)
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("exec: unknown column %s", ref)
	}
	return found, nil
}

// Concat returns s followed by o.
func (s Schema) Concat(o Schema) Schema {
	out := make(Schema, 0, len(s)+len(o))
	out = append(out, s...)
	out = append(out, o...)
	return out
}

// TableSchema builds the schema of a full table scan under a binding.
func TableSchema(meta *catalog.Table, binding string) Schema {
	out := make(Schema, len(meta.Columns))
	for i, c := range meta.Columns {
		out[i] = Col{Binding: binding, Name: strings.ToLower(c.Name), Type: c.Type}
	}
	return out
}

// Stats accumulates engine work counters during execution. The latency
// model translates them into modeled wall time.
type Stats struct {
	RowsScanned       int64 // heap/column rows visited by scans
	BytesScanned      int64 // modeled bytes read from storage
	IndexProbes       int64 // point lookups through an index
	JoinComparisons   int64 // nested-loop inner-row visits
	HashBuildRows     int64
	HashProbeRows     int64
	RowsSorted        int64
	RowsTopN          int64 // rows pushed through bounded Top-N selection
	GroupsCreated     int64
	OutputRows        int64
	ChunksSkipped     int64 // zone-map chunk skips (AP only)
	ChunksScanned     int64 // base chunks actually dispatched to scans (AP only)
	BatchesProduced   int64 // batches emitted by operators in the vectorized pipeline
	MorselsDispatched int64 // chunk-aligned scan morsels handed to workers
	ParallelWorkers   int64 // worker goroutines spawned by parallel operators (0 = fully serial)
	EncodedChunks     int64 // base chunks served by encoded kernels without a full decode (AP only)
	DecodedChunks     int64 // base chunks with encoded columns fully decoded into batch vectors (AP only)
	ExchangeBatches   int64 // batches moved across an exchange (shuffle/broadcast/gather) boundary
	ExchangeRows      int64 // rows moved across an exchange boundary
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.RowsScanned += o.RowsScanned
	s.BytesScanned += o.BytesScanned
	s.IndexProbes += o.IndexProbes
	s.JoinComparisons += o.JoinComparisons
	s.HashBuildRows += o.HashBuildRows
	s.HashProbeRows += o.HashProbeRows
	s.RowsSorted += o.RowsSorted
	s.RowsTopN += o.RowsTopN
	s.GroupsCreated += o.GroupsCreated
	s.OutputRows += o.OutputRows
	s.ChunksSkipped += o.ChunksSkipped
	s.ChunksScanned += o.ChunksScanned
	s.BatchesProduced += o.BatchesProduced
	s.MorselsDispatched += o.MorselsDispatched
	s.ParallelWorkers += o.ParallelWorkers
	s.EncodedChunks += o.EncodedChunks
	s.DecodedChunks += o.DecodedChunks
	s.ExchangeBatches += o.ExchangeBatches
	s.ExchangeRows += o.ExchangeRows
}

// Context carries per-query execution state: the work counters, the degree
// of parallelism granted to the query, and a cancellation scope.
type Context struct {
	Stats Stats
	// DOP is the number of workers this execution may spread morsel-driven
	// pipelines across. 0 and 1 both mean serial execution; parallel
	// operators fork min(DOP, morsel supply) workers at Open. The gateway
	// sets it to the admission-granted worker count; direct callers
	// (htap.Run, tests) leave it at the serial default.
	DOP int

	cancel *cancelScope
}

// cancelScope is a shared early-termination flag. Scopes nest: a forked
// worker context observes its own scope and every ancestor's, so a limit
// firing inside one parallel fork stops that fork's workers without
// poisoning the rest of the query.
type cancelScope struct {
	done   atomic.Bool
	parent *cancelScope
}

func (c *cancelScope) canceled() bool {
	for s := c; s != nil; s = s.parent {
		if s.done.Load() {
			return true
		}
	}
	return false
}

// NewContext returns a fresh execution context (serial by default). The
// cancellation scope is allocated eagerly so Cancel and Canceled are safe
// to call from different goroutines for every context built here or by a
// fork.
func NewContext() *Context { return &Context{cancel: &cancelScope{}} }

// Canceled reports whether this execution scope has been asked to stop
// early. Morsel loops poll it between morsels: a canceled scan reports
// exhaustion, which is exactly the contract LIMIT early-termination needs.
func (c *Context) Canceled() bool {
	return c.cancel != nil && c.cancel.canceled()
}

// Cancel asks every context sharing this scope (this context and the
// workers forked from it) to stop early. Cross-goroutine use requires a
// context from NewContext (or a fork); on a bare &Context{} literal the
// lazy fallback here is single-goroutine only.
func (c *Context) Cancel() {
	if c.cancel == nil {
		c.cancel = &cancelScope{}
	}
	c.cancel.done.Store(true)
}

// forkScope derives a child cancellation scope for one parallel fork: the
// returned contexts share a fresh cancel flag (so cross-worker limit
// termination stays local to the fork) nested under the parent's (so
// canceling the query still stops the workers — the parent scope is
// materialized before it is captured, so a Cancel issued after the fork
// is always visible to the workers). Each worker context has its own
// Stats, merged back by the forking operator.
func (c *Context) forkScope(n int) []*Context {
	if c.cancel == nil {
		c.cancel = &cancelScope{}
	}
	scope := &cancelScope{parent: c.cancel}
	out := make([]*Context, n)
	for i := range out {
		out[i] = &Context{DOP: 1, cancel: scope}
	}
	return out
}
