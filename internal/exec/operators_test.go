package exec

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"htapxplain/internal/catalog"
	"htapxplain/internal/sqlparser"
	"htapxplain/internal/value"
)

// memOp is an in-memory test operator emitting its rows as batches.
type memOp struct {
	schema Schema
	rows   []value.Row
	em     rowEmitter
}

func (m *memOp) Schema() Schema       { return m.schema }
func (m *memOp) Clone() BatchOperator { return &memOp{schema: m.schema, rows: m.rows} }
func (m *memOp) Open(*Context) error {
	m.em.reset(m.rows, len(m.schema))
	return nil
}
func (m *memOp) Next(ctx *Context) (*Batch, error) { return m.em.next(ctx), nil }
func (m *memOp) Close() error                      { return nil }

func intCol(binding, name string) Col {
	return Col{Binding: binding, Name: name, Type: catalog.TypeInt}
}

func rowsOf(vals ...[]int64) []value.Row {
	out := make([]value.Row, len(vals))
	for i, vs := range vals {
		r := make(value.Row, len(vs))
		for j, v := range vs {
			r[j] = value.NewInt(v)
		}
		out[i] = r
	}
	return out
}

func TestFilterOp(t *testing.T) {
	child := &memOp{schema: Schema{intCol("t", "a")}, rows: rowsOf([]int64{1}, []int64{2}, []int64{3})}
	ev, err := Compile(&sqlparser.BinaryExpr{
		Op:   sqlparser.OpGt,
		Left: &sqlparser.ColumnRef{Table: "t", Column: "a"}, Right: &sqlparser.IntLit{V: 1},
	}, child.schema)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Drain(&FilterOp{Child: child, Pred: ev}, NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("filter kept %d rows", len(out))
	}
}

func TestProjectOp(t *testing.T) {
	child := &memOp{schema: Schema{intCol("t", "a"), intCol("t", "b")},
		rows: rowsOf([]int64{1, 10}, []int64{2, 20})}
	ev, _ := Compile(&sqlparser.BinaryExpr{
		Op:   sqlparser.OpAdd,
		Left: &sqlparser.ColumnRef{Column: "a"}, Right: &sqlparser.ColumnRef{Column: "b"},
	}, child.schema)
	p := &ProjectOp{Child: child, Evals: []Evaluator{ev}, Out: Schema{intCol("", "sum")}}
	out, err := Drain(p, NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0].I != 11 || out[1][0].I != 22 {
		t.Errorf("projection = %v", out)
	}
}

// joinEquiPred builds `l.k = r.k` over the concat schema.
func joinEquiPred(t *testing.T, concat Schema) Evaluator {
	t.Helper()
	ev, err := Compile(&sqlparser.BinaryExpr{
		Op:   sqlparser.OpEq,
		Left: &sqlparser.ColumnRef{Table: "l", Column: "k"}, Right: &sqlparser.ColumnRef{Table: "r", Column: "k"},
	}, concat)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// TestHashJoinEqualsNestedLoopProperty: on random inputs, hash join and
// nested-loop join must produce identical multisets.
func TestHashJoinEqualsNestedLoopProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(bind string, n int) *memOp {
			rows := make([]value.Row, n)
			for i := range rows {
				rows[i] = value.Row{value.NewInt(int64(rng.Intn(6))), value.NewInt(int64(rng.Intn(100)))}
			}
			return &memOp{schema: Schema{intCol(bind, "k"), intCol(bind, "v")}, rows: rows}
		}
		left, right := mk("l", rng.Intn(25)), mk("r", rng.Intn(25))
		concat := left.Schema().Concat(right.Schema())
		pred := joinEquiPred(t, concat)

		nlj := NewNestedLoopJoin(left, right, pred)
		nljOut, err := Drain(nlj, NewContext())
		if err != nil {
			return false
		}
		hj := NewHashJoin(left, right, []int{0}, []int{0}, nil)
		hjOut, err := Drain(hj, NewContext())
		if err != nil {
			return false
		}
		return sameMultiset(nljOut, hjOut)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func sameMultiset(a, b []value.Row) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(r value.Row) string {
		cols := make([]int, len(r))
		for i := range cols {
			cols[i] = i
		}
		return r.Key(cols)
	}
	counts := map[string]int{}
	for _, r := range a {
		counts[key(r)]++
	}
	for _, r := range b {
		counts[key(r)]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestHashJoinResidualPredicate(t *testing.T) {
	left := &memOp{schema: Schema{intCol("l", "k"), intCol("l", "v")},
		rows: rowsOf([]int64{1, 10}, []int64{1, 20})}
	right := &memOp{schema: Schema{intCol("r", "k"), intCol("r", "w")},
		rows: rowsOf([]int64{1, 5})}
	concat := left.Schema().Concat(right.Schema())
	residual, err := Compile(&sqlparser.BinaryExpr{
		Op:   sqlparser.OpGt,
		Left: &sqlparser.ColumnRef{Table: "l", Column: "v"}, Right: &sqlparser.IntLit{V: 15},
	}, concat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Drain(NewHashJoin(left, right, []int{0}, []int{0}, residual), NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0][1].I != 20 {
		t.Errorf("residual join = %v", out)
	}
}

// TestTopNEqualsSortLimitProperty: TopN must equal full-sort + offset/limit.
func TestTopNEqualsSortLimitProperty(t *testing.T) {
	prop := func(seed int64, nRaw, offRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([]value.Row, rng.Intn(60))
		for i := range rows {
			rows[i] = value.Row{value.NewInt(int64(rng.Intn(30))), value.NewInt(int64(i))}
		}
		child := func() *memOp {
			return &memOp{schema: Schema{intCol("t", "a"), intCol("t", "id")}, rows: rows}
		}
		keyEval, err := Compile(&sqlparser.ColumnRef{Table: "t", Column: "a"}, child().Schema())
		if err != nil {
			return false
		}
		keys := []SortKey{{Eval: keyEval, Desc: seed%2 == 0}}
		n, off := int64(nRaw%12), int64(offRaw%8)

		topOut, err := Drain(&TopNOp{Child: child(), Keys: keys, N: n, Offset: off}, NewContext())
		if err != nil {
			return false
		}
		sorted, err := Drain(&SortOp{Child: child(), Keys: keys}, NewContext())
		if err != nil {
			return false
		}
		limited, err := Drain(&LimitOp{Child: &memOp{schema: child().Schema(), rows: sorted}, N: n, Offset: off}, NewContext())
		if err != nil {
			return false
		}
		// compare only the sort keys (ties may reorder payloads)
		if len(topOut) != len(limited) {
			return false
		}
		for i := range topOut {
			if topOut[i][0].I != limited[i][0].I {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSortStability(t *testing.T) {
	child := &memOp{schema: Schema{intCol("t", "a"), intCol("t", "id")},
		rows: rowsOf([]int64{1, 0}, []int64{1, 1}, []int64{0, 2}, []int64{1, 3})}
	keyEval, _ := Compile(&sqlparser.ColumnRef{Column: "a"}, child.schema)
	out, err := Drain(&SortOp{Child: child, Keys: []SortKey{{Eval: keyEval}}}, NewContext())
	if err != nil {
		t.Fatal(err)
	}
	// ties must preserve input order (ids 0,1,3)
	if out[1][1].I != 0 || out[2][1].I != 1 || out[3][1].I != 3 {
		t.Errorf("sort not stable: %v", out)
	}
}

func TestLimitOffsetEdges(t *testing.T) {
	mk := func() *memOp {
		return &memOp{schema: Schema{intCol("t", "a")}, rows: rowsOf([]int64{1}, []int64{2}, []int64{3})}
	}
	out, _ := Drain(&LimitOp{Child: mk(), N: 2, Offset: 0}, NewContext())
	if len(out) != 2 {
		t.Errorf("limit 2 = %d rows", len(out))
	}
	out, _ = Drain(&LimitOp{Child: mk(), N: 10, Offset: 2}, NewContext())
	if len(out) != 1 {
		t.Errorf("offset 2 = %d rows", len(out))
	}
	out, _ = Drain(&LimitOp{Child: mk(), N: 1, Offset: 99}, NewContext())
	if len(out) != 0 {
		t.Errorf("offset past end = %d rows", len(out))
	}
	out, _ = Drain(&LimitOp{Child: mk(), N: -1, Offset: 1}, NewContext())
	if len(out) != 2 {
		t.Errorf("offset without limit = %d rows", len(out))
	}
}

// TestAggregatesMatchManualComputationProperty validates COUNT/SUM/MIN/MAX
// against direct computation over random groups.
func TestAggregatesMatchManualComputationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(80)
		rows := make([]value.Row, n)
		for i := range rows {
			rows[i] = value.Row{value.NewInt(int64(rng.Intn(4))), value.NewInt(int64(rng.Intn(100)))}
		}
		child := &memOp{schema: Schema{intCol("t", "g"), intCol("t", "v")}, rows: rows}
		gEval, _ := Compile(&sqlparser.ColumnRef{Column: "g"}, child.schema)
		vEval, _ := Compile(&sqlparser.ColumnRef{Column: "v"}, child.schema)
		agg := &HashAggregate{
			Child:  child,
			Groups: []Evaluator{gEval},
			Aggs: []AggSpec{
				{Func: sqlparser.AggCount},
				{Func: sqlparser.AggSum, Arg: vEval},
				{Func: sqlparser.AggMin, Arg: vEval},
				{Func: sqlparser.AggMax, Arg: vEval},
			},
			Out: Schema{intCol("t", "g"), intCol("", "count"), intCol("", "sum"), intCol("", "min"), intCol("", "max")},
		}
		out, err := Drain(agg, NewContext())
		if err != nil {
			return false
		}
		type stats struct {
			count    int64
			sum      float64
			min, max int64
			seen     bool
		}
		want := map[int64]*stats{}
		for _, r := range rows {
			g := r[0].I
			st, ok := want[g]
			if !ok {
				st = &stats{min: 1 << 62, max: -(1 << 62)}
				want[g] = st
			}
			st.count++
			st.sum += float64(r[1].I)
			if r[1].I < st.min {
				st.min = r[1].I
			}
			if r[1].I > st.max {
				st.max = r[1].I
			}
			st.seen = true
		}
		if len(out) != len(want) {
			return false
		}
		for _, r := range out {
			st := want[r[0].I]
			if st == nil || r[1].I != st.count || r[2].F != st.sum ||
				r[3].I != st.min || r[4].I != st.max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGlobalAggregateOverEmptyInput(t *testing.T) {
	child := &memOp{schema: Schema{intCol("t", "v")}}
	vEval, _ := Compile(&sqlparser.ColumnRef{Column: "v"}, child.schema)
	agg := &HashAggregate{
		Child: child,
		Aggs: []AggSpec{
			{Func: sqlparser.AggCount},
			{Func: sqlparser.AggSum, Arg: vEval},
			{Func: sqlparser.AggAvg, Arg: vEval},
			{Func: sqlparser.AggMin, Arg: vEval},
		},
		Out: Schema{intCol("", "c"), intCol("", "s"), intCol("", "a"), intCol("", "m")},
	}
	out, err := Drain(agg, NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("global aggregate over empty input must return 1 row, got %d", len(out))
	}
	if out[0][0].I != 0 {
		t.Errorf("COUNT(*) = %v, want 0", out[0][0])
	}
	for i := 1; i < 4; i++ {
		if !out[0][i].IsNull() {
			t.Errorf("agg %d over empty input = %v, want NULL", i, out[0][i])
		}
	}
}

func TestAggregateIgnoresNullArguments(t *testing.T) {
	child := &memOp{schema: Schema{intCol("t", "v")},
		rows: []value.Row{{value.NewInt(10)}, {value.Null}, {value.NewInt(20)}}}
	vEval, _ := Compile(&sqlparser.ColumnRef{Column: "v"}, child.schema)
	agg := &HashAggregate{
		Child: child,
		Aggs: []AggSpec{
			{Func: sqlparser.AggCount, Arg: vEval},
			{Func: sqlparser.AggAvg, Arg: vEval},
		},
		Out: Schema{intCol("", "c"), intCol("", "a")},
	}
	out, err := Drain(agg, NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0].I != 2 {
		t.Errorf("COUNT(v) = %v, want 2 (NULLs skipped)", out[0][0])
	}
	if out[0][1].F != 15 {
		t.Errorf("AVG(v) = %v, want 15", out[0][1])
	}
}

func TestStatsAccumulation(t *testing.T) {
	var a, b Stats
	a.RowsScanned, a.IndexProbes = 10, 2
	b.RowsScanned, b.HashBuildRows = 5, 7
	a.Add(b)
	if a.RowsScanned != 15 || a.IndexProbes != 2 || a.HashBuildRows != 7 {
		t.Errorf("Stats.Add: %+v", a)
	}
}

func TestNestedLoopJoinCountsComparisons(t *testing.T) {
	left := &memOp{schema: Schema{intCol("l", "k")}, rows: rowsOf([]int64{1}, []int64{2}, []int64{3})}
	right := &memOp{schema: Schema{intCol("r", "k")}, rows: rowsOf([]int64{1}, []int64{2})}
	ctx := NewContext()
	if _, err := Drain(NewNestedLoopJoin(left, right, nil), ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.JoinComparisons != 6 {
		t.Errorf("comparisons = %d, want 3*2", ctx.Stats.JoinComparisons)
	}
}

func TestTopNKeepsLargestWhenDesc(t *testing.T) {
	child := &memOp{schema: Schema{intCol("t", "a")},
		rows: rowsOf([]int64{5}, []int64{1}, []int64{9}, []int64{3})}
	keyEval, _ := Compile(&sqlparser.ColumnRef{Column: "a"}, child.schema)
	out, err := Drain(&TopNOp{Child: child, Keys: []SortKey{{Eval: keyEval, Desc: true}}, N: 2}, NewContext())
	if err != nil {
		t.Fatal(err)
	}
	got := []int64{out[0][0].I, out[1][0].I}
	if got[0] != 9 || got[1] != 5 {
		t.Errorf("top-2 desc = %v", got)
	}
	_ = sort.SliceIsSorted
}
