package exec

import (
	"fmt"
	"sync"
	"testing"

	"htapxplain/internal/catalog"
	"htapxplain/internal/colstore"
	"htapxplain/internal/sqlparser"
	"htapxplain/internal/value"
)

func TestBatchSelectionHelpers(t *testing.T) {
	b := &Batch{
		Cols: [][]value.Value{
			{value.NewInt(10), value.NewInt(20), value.NewInt(30)},
			{value.NewInt(1), value.NewInt(2), value.NewInt(3)},
		},
		Len: 3,
	}
	if b.NumActive() != 3 || b.PosAt(2) != 2 {
		t.Fatalf("dense batch: active=%d pos(2)=%d", b.NumActive(), b.PosAt(2))
	}
	b.Sel = []int32{0, 2}
	if b.NumActive() != 2 || b.PosAt(1) != 2 {
		t.Fatalf("selected batch: active=%d pos(1)=%d", b.NumActive(), b.PosAt(1))
	}
	scratch := make(value.Row, 2)
	row := b.FillRow(1, scratch)
	if row[0].I != 30 || row[1].I != 3 {
		t.Errorf("FillRow(1) = %v, want [30 3]", row)
	}
	rows := b.AppendRows(nil)
	if len(rows) != 2 || rows[0][0].I != 10 || rows[1][0].I != 30 {
		t.Errorf("AppendRows = %v", rows)
	}
	// materialized rows must not alias the batch vectors
	rows[0][0] = value.NewInt(99)
	if b.Cols[0][0].I != 10 {
		t.Error("AppendRows aliased the batch vector")
	}
}

// TestFilterNarrowsSelectionVector: a filter must keep the child's vectors
// (same physical Len) and only shrink the selection vector.
func TestFilterNarrowsSelectionVector(t *testing.T) {
	child := &memOp{schema: Schema{intCol("t", "a")},
		rows: rowsOf([]int64{1}, []int64{5}, []int64{2}, []int64{7})}
	ev, err := Compile(&sqlparser.BinaryExpr{
		Op:   sqlparser.OpGt,
		Left: &sqlparser.ColumnRef{Table: "t", Column: "a"}, Right: &sqlparser.IntLit{V: 4},
	}, child.schema)
	if err != nil {
		t.Fatal(err)
	}
	f := &FilterOp{Child: child, Pred: ev}
	ctx := NewContext()
	if err := f.Open(ctx); err != nil {
		t.Fatal(err)
	}
	b, err := f.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if b == nil {
		t.Fatal("filter returned no batch")
	}
	if b.Len != 4 {
		t.Errorf("physical Len = %d, want 4 (vectors must not be copied)", b.Len)
	}
	if len(b.Sel) != 2 || b.PosAt(0) != 1 || b.PosAt(1) != 3 {
		t.Errorf("Sel = %v, want positions [1 3]", b.Sel)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func tinyColTable(t testing.TB, n int, opts ...colstore.Option) *colstore.Table {
	t.Helper()
	cat := catalog.New(1)
	if err := cat.AddTable(&catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "k", Type: catalog.TypeInt, NDV: int64(n)},
			{Name: "v", Type: catalog.TypeInt, NDV: 10},
		},
		Rows: int64(n), AvgRowBytes: 16,
	}); err != nil {
		t.Fatal(err)
	}
	rows := make([]value.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = value.Row{value.NewInt(int64(i)), value.NewInt(int64(i % 10))}
	}
	store, err := colstore.NewStore(cat, map[string][]value.Row{"t": rows}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := store.Table("t")
	return tb
}

// TestColTableScanAliasesChunks: over raw storage the columnar scan's
// batches must alias the stored vectors (zero per-row materialization),
// one batch per chunk. The encoding policy is pinned to raw — under the
// default policy this integer table would be FoR-encoded and served
// through the decode path instead (see TestColTableScanDecodesEncoded).
func TestColTableScanAliasesChunks(t *testing.T) {
	n := 2*colstore.ChunkSize + 100
	tb := tinyColTable(t, n, colstore.WithEncoding(colstore.PolicyRaw))
	scan := NewColTableScan(tb, "t", []int{0, 1}, nil, nil)
	ctx := NewContext()
	if err := scan.Open(ctx); err != nil {
		t.Fatal(err)
	}
	batches := 0
	total := 0
	for {
		b, err := scan.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		start := batches * colstore.ChunkSize
		stored := tb.Column(0).Slice(start, start+1)
		if &b.Cols[0][0] != &stored[0] {
			t.Errorf("batch %d does not alias the stored chunk", batches)
		}
		batches++
		total += b.NumActive()
	}
	if err := scan.Close(); err != nil {
		t.Fatal(err)
	}
	if batches != 3 || total != n {
		t.Errorf("got %d batches / %d rows, want 3 / %d", batches, total, n)
	}
	if ctx.Stats.BatchesProduced != 3 || ctx.Stats.RowsScanned != int64(n) {
		t.Errorf("stats = %+v", ctx.Stats)
	}
}

// TestColTableScanDecodesEncoded: over encoded storage the scan's batches
// are decoded copies — the other half of the "alias or decode, never
// mutate" contract: the batch must not alias encoded storage, mutating it
// must not corrupt the store, and the decoded values must round-trip
// exactly.
func TestColTableScanDecodesEncoded(t *testing.T) {
	n := 2*colstore.ChunkSize + 100
	tb := tinyColTable(t, n) // default policy: both int columns FoR-encode
	if ch := tb.Column(0).Chunk(0); ch.Enc == colstore.EncRaw {
		t.Fatalf("precondition: expected chunk 0 to be encoded, got %v", ch.Enc)
	}
	scan := NewColTableScan(tb, "t", []int{0, 1}, nil, nil)
	ctx := NewContext()
	if err := scan.Open(ctx); err != nil {
		t.Fatal(err)
	}
	next := int64(0)
	for {
		b, err := scan.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		for i := 0; i < b.NumActive(); i++ {
			if got := b.Cols[0][b.PosAt(i)].I; got != next {
				t.Fatalf("row %d: decoded k = %d", next, got)
			}
			next++
		}
		// mutating the batch must not reach storage
		b.Cols[0][0] = value.NewInt(-1)
	}
	if err := scan.Close(); err != nil {
		t.Fatal(err)
	}
	if next != int64(n) {
		t.Fatalf("scanned %d rows, want %d", next, n)
	}
	if v := tb.Column(0).Value(0); v.I != 0 {
		t.Fatalf("storage corrupted: column value(0) = %v", v)
	}
	if ctx.Stats.DecodedChunks != 3 || ctx.Stats.EncodedChunks != 0 {
		t.Errorf("decoded=%d encoded=%d, want 3/0 (full decode, no prefilter)",
			ctx.Stats.DecodedChunks, ctx.Stats.EncodedChunks)
	}
}

// TestColTableScanPredicateAndPruning: the predicate narrows the selection
// vector and the zone-map pruner skips whole chunks, matching the legacy
// scan's counters.
func TestColTableScanPredicateAndPruning(t *testing.T) {
	n := 4 * colstore.ChunkSize
	tb := tinyColTable(t, n)
	// k < 10 touches only chunk 0; the pruner proves chunks 1..3 empty.
	lo := value.NewInt(0)
	hi := value.NewInt(9)
	pred, err := Compile(&sqlparser.BinaryExpr{
		Op:   sqlparser.OpLt,
		Left: &sqlparser.ColumnRef{Table: "t", Column: "k"}, Right: &sqlparser.IntLit{V: 10},
	}, Schema{intCol("t", "k"), intCol("t", "v")})
	if err != nil {
		t.Fatal(err)
	}
	scan := NewColTableScan(tb, "t", []int{0, 1}, pred, &colstore.RangePruner{Col: 0, Lo: &lo, Hi: &hi})
	ctx := NewContext()
	rows, err := drainOp(scan, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Errorf("matched %d rows, want 10", len(rows))
	}
	if ctx.Stats.ChunksSkipped != 3 {
		t.Errorf("ChunksSkipped = %d, want 3", ctx.Stats.ChunksSkipped)
	}
	if ctx.Stats.RowsScanned != colstore.ChunkSize {
		t.Errorf("RowsScanned = %d, want %d (only chunk 0 visited)", ctx.Stats.RowsScanned, colstore.ChunkSize)
	}
}

// countingOp wraps an operator and counts Next calls.
type countingOp struct {
	inner     BatchOperator
	nextCalls int
}

func (c *countingOp) Schema() Schema       { return c.inner.Schema() }
func (c *countingOp) Clone() BatchOperator { return &countingOp{inner: c.inner.Clone()} }
func (c *countingOp) Open(ctx *Context) error {
	c.nextCalls = 0
	return c.inner.Open(ctx)
}
func (c *countingOp) Next(ctx *Context) (*Batch, error) {
	c.nextCalls++
	return c.inner.Next(ctx)
}
func (c *countingOp) Close() error { return c.inner.Close() }

// TestLimitStopsPullingChild: LIMIT must terminate the pipeline early
// instead of materializing the whole child — the batch engine's win over
// the old Run contract.
func TestLimitStopsPullingChild(t *testing.T) {
	rows := make([]value.Row, 3*BatchSize)
	for i := range rows {
		rows[i] = value.Row{value.NewInt(int64(i))}
	}
	child := &countingOp{inner: &memOp{schema: Schema{intCol("t", "a")}, rows: rows}}
	lim := &LimitOp{Child: child, N: 5, Offset: 0}
	ctx := NewContext()
	out, err := drainOp(lim, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("limit 5 returned %d rows", len(out))
	}
	if child.nextCalls > 1 {
		t.Errorf("limit pulled %d child batches, want 1 (early termination)", child.nextCalls)
	}
}

// TestRunnerConcurrentDrains: a shared plan executed through a Runner from
// many goroutines must produce identical results with no interference —
// the contract the gateway's plan cache relies on (run under -race in CI).
func TestRunnerConcurrentDrains(t *testing.T) {
	child := &memOp{schema: Schema{intCol("t", "a"), intCol("t", "b")},
		rows: rowsOf([]int64{1, 10}, []int64{2, 20}, []int64{3, 30}, []int64{4, 40})}
	pred, err := Compile(&sqlparser.BinaryExpr{
		Op:   sqlparser.OpGt,
		Left: &sqlparser.ColumnRef{Table: "t", Column: "a"}, Right: &sqlparser.IntLit{V: 2},
	}, child.Schema())
	if err != nil {
		t.Fatal(err)
	}
	runner := NewRunner(&FilterOp{Child: child, Pred: pred})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				out, err := runner.Drain(NewContext())
				if err != nil {
					errs <- err
					return
				}
				if len(out) != 2 || out[0][0].I != 3 || out[1][0].I != 4 {
					errs <- fmt.Errorf("iteration %d: got %v", i, out)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestDrainRepeatable: draining the same shared tree twice must give the
// same result (Drain clones; state never leaks between runs).
func TestDrainRepeatable(t *testing.T) {
	child := &memOp{schema: Schema{intCol("t", "a")}, rows: rowsOf([]int64{1}, []int64{2})}
	op := &LimitOp{Child: child, N: 1, Offset: 1}
	for run := 0; run < 3; run++ {
		out, err := Drain(op, NewContext())
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 || out[0][0].I != 2 {
			t.Fatalf("run %d: got %v", run, out)
		}
	}
}
