// Package latency models query wall-clock time at the paper's deployment
// scale (100 GB TPC-H on a six-machine ByteHTAP cluster). The physical
// dataset in this process is thousands of times smaller than the paper's,
// so measured in-process runtimes cannot reproduce the paper's latencies
// (e.g. Example 1: TP 5.80 s vs AP 310 ms). Instead, the model walks the
// optimizer's explain tree — whose cardinality estimates are computed at
// the modeled scale — and charges calibrated per-row operator times:
// single-threaded row-at-a-time execution for TP, vectorized
// columnar execution with cluster parallelism for AP. The calibration
// constants were chosen so the paper's Example 1 reproduces at the right
// magnitudes; all other queries inherit the same constants, so win/lose
// patterns and crossovers are emergent, not per-query tuned.
package latency

import (
	"time"

	"htapxplain/internal/plan"
)

// TP per-row operator times (single node, row-at-a-time).
const (
	tpStartup = 500 * time.Microsecond
	tpScanRow = 350 * time.Nanosecond  // sequential heap row
	tpFetch   = 5000 * time.Nanosecond // random row fetch through an index
	tpProbe   = 10 * time.Microsecond  // index descent
	tpFilter  = 120 * time.Nanosecond
	tpCmp     = 60 * time.Nanosecond // nested-loop pair comparison
	tpAggRow  = 150 * time.Nanosecond
	tpSortRow = 400 * time.Nanosecond // per row per log-factor
	tpOutRow  = 200 * time.Nanosecond
)

// AP per-row operator times (vectorized columnar, cluster-parallel).
const (
	apStartup   = 30 * time.Millisecond // distributed query launch
	apScanRow   = 30 * time.Nanosecond  // per row per referenced-column fraction, pre-parallelism
	apFilterRow = 15 * time.Nanosecond
	apBuildRow  = 260 * time.Nanosecond
	apProbeRow  = 25 * time.Nanosecond
	apAggRow    = 110 * time.Nanosecond
	apSortRow   = 220 * time.Nanosecond
	apOutRow    = 40 * time.Nanosecond
	apParallel  = 24 // effective cluster DOP (6 nodes × 8 vCPU, ~50% efficiency)
)

// Estimate returns the modeled wall time of the plan rooted at n.
func Estimate(n *plan.Node) time.Duration {
	if n == nil {
		return 0
	}
	switch n.Engine {
	case plan.TP:
		return tpStartup + time.Duration(tpWalk(n))
	default:
		return apStartup + time.Duration(apWalk(n)/apParallel)
	}
}

// tpWalk returns nanoseconds of modeled TP work for the subtree.
func tpWalk(n *plan.Node) float64 {
	var t float64
	for _, c := range n.Children {
		t += tpWalk(c)
	}
	switch n.Op {
	case plan.OpTableScan:
		t += n.Rows * float64(tpScanRow)
	case plan.OpIndexScan:
		t += float64(tpProbe) + n.Rows*float64(tpFetch)
	case plan.OpIndexLookup:
		// charged by the parent nested-loop join
	case plan.OpFilter:
		t += childRows(n) * float64(tpFilter)
	case plan.OpNestedLoopJoin:
		outer, inner := n.Children[0], n.Children[1]
		if inner.Op == plan.OpIndexLookup {
			// index NLJ: one probe per outer row, fetch matches
			t += outer.Rows * (float64(tpProbe) + inner.Rows*float64(tpFetch))
		} else {
			t += outer.Rows * inner.Rows * float64(tpCmp)
		}
	case plan.OpGroupAggregate, plan.OpHashAggregate:
		t += childRows(n) * float64(tpAggRow)
	case plan.OpSort:
		r := childRows(n)
		t += r * float64(tpSortRow) * log2(r)
	case plan.OpTopN:
		if n.UsesIndex {
			// index-order scan already charged; negligible extra
			t += n.Rows * float64(tpFilter)
		} else {
			t += childRows(n) * float64(tpSortRow)
		}
	case plan.OpLimit, plan.OpProject:
		t += n.Rows * float64(tpOutRow)
	}
	return t
}

// apWalk returns nanoseconds of modeled AP work (pre-parallelism).
func apWalk(n *plan.Node) float64 {
	var t float64
	for _, c := range n.Children {
		t += apWalk(c)
	}
	switch n.Op {
	case plan.OpTableScan:
		t += n.Rows * float64(apScanRow)
	case plan.OpFilter:
		t += childRows(n) * float64(apFilterRow)
	case plan.OpHashBuild:
		t += childRows(n) * float64(apBuildRow)
	case plan.OpHashJoin:
		// probe side rows (first child); build charged by OpHashBuild
		t += n.Children[0].Rows*float64(apProbeRow) + n.Rows*float64(apOutRow)
	case plan.OpNestedLoopJoin: // AP does not plan these, but stay total
		t += n.Children[0].Rows * n.Children[1].Rows * float64(tpCmp)
	case plan.OpGroupAggregate, plan.OpHashAggregate:
		t += childRows(n) * float64(apAggRow)
	case plan.OpSort:
		r := childRows(n)
		t += r * float64(apSortRow) * log2(r)
	case plan.OpTopN:
		t += childRows(n) * float64(apSortRow)
	case plan.OpLimit, plan.OpProject:
		t += n.Rows * float64(apOutRow)
	}
	return t
}

func childRows(n *plan.Node) float64 {
	if len(n.Children) == 0 {
		return n.Rows
	}
	var r float64
	for _, c := range n.Children {
		r += c.Rows
	}
	return r
}

func log2(x float64) float64 {
	if x < 2 {
		return 1
	}
	l := 0.0
	for x >= 2 {
		x /= 2
		l++
	}
	return l
}
