package latency

import (
	"math"
	"sync/atomic"
	"time"

	"htapxplain/internal/plan"
)

// Calibrator closes the loop between the modeled latencies this package
// produces and the wall times the gateway actually observes. Modeled
// times are stated at the paper's deployment scale (100 GB, six nodes)
// while in-process executions are orders of magnitude faster, so the two
// are related by an unknown per-engine scale factor; the calibrator
// tracks that factor as an exponentially-weighted moving average of
// observed/modeled ratios and can restate a modeled time in observed
// (in-process) units. Ratios — not absolute times — are averaged, so a
// workload mix shift does not masquerade as a scale shift.
type Calibrator struct {
	// Alpha is the EWMA weight of a new sample (default 0.1).
	Alpha float64

	tp, ap engineCal
}

type engineCal struct {
	scale   atomic.Uint64 // math.Float64bits of the EWMA ratio; 0 = no samples yet
	samples atomic.Int64
}

func (c *Calibrator) eng(e plan.Engine) *engineCal {
	if e == plan.TP {
		return &c.tp
	}
	return &c.ap
}

// Observe feeds one (observed, modeled) latency pair for an engine.
// Non-positive inputs are ignored.
func (c *Calibrator) Observe(e plan.Engine, observedNS, modeledNS int64) {
	if c == nil || observedNS <= 0 || modeledNS <= 0 {
		return
	}
	alpha := c.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.1
	}
	ratio := float64(observedNS) / float64(modeledNS)
	ec := c.eng(e)
	for {
		old := ec.scale.Load()
		var next float64
		if old == 0 {
			next = ratio // first sample seeds the average
		} else {
			next = (1-alpha)*math.Float64frombits(old) + alpha*ratio
		}
		if ec.scale.CompareAndSwap(old, math.Float64bits(next)) {
			ec.samples.Add(1)
			return
		}
	}
}

// Scale returns the current observed/modeled ratio for an engine
// (0 before any sample).
func (c *Calibrator) Scale(e plan.Engine) float64 {
	if c == nil {
		return 0
	}
	bits := c.eng(e).scale.Load()
	if bits == 0 {
		return 0
	}
	return math.Float64frombits(bits)
}

// Samples returns how many pairs have been observed for an engine.
func (c *Calibrator) Samples(e plan.Engine) int64 {
	if c == nil {
		return 0
	}
	return c.eng(e).samples.Load()
}

// CalibratedNS restates a modeled latency in observed in-process units.
// Before the engine has any samples the modeled value is returned
// unchanged (scale 1).
func (c *Calibrator) CalibratedNS(e plan.Engine, modeledNS int64) int64 {
	s := c.Scale(e)
	if s == 0 {
		return modeledNS
	}
	return int64(float64(modeledNS) * s)
}

// CalibratedDuration is CalibratedNS over time.Duration values.
func (c *Calibrator) CalibratedDuration(e plan.Engine, d time.Duration) time.Duration {
	return time.Duration(c.CalibratedNS(e, d.Nanoseconds()))
}
