package latency

import (
	"testing"
	"time"

	"htapxplain/internal/plan"
)

func scan(engine plan.Engine, rows float64) *plan.Node {
	return &plan.Node{Op: plan.OpTableScan, Engine: engine, Rows: rows, Relation: "t"}
}

func TestNilPlanIsZero(t *testing.T) {
	if Estimate(nil) != 0 {
		t.Error("nil plan should cost nothing")
	}
}

func TestStartupDominatesTinyQueries(t *testing.T) {
	tpTiny := Estimate(scan(plan.TP, 1))
	apTiny := Estimate(scan(plan.AP, 1))
	if tpTiny >= apTiny {
		t.Errorf("TP (%v) must beat AP (%v) on tiny queries — AP pays distributed startup", tpTiny, apTiny)
	}
	if apTiny < 20*time.Millisecond {
		t.Errorf("AP startup should be tens of ms, got %v", apTiny)
	}
}

func TestAPWinsBigScans(t *testing.T) {
	const rows = 150e6
	tp := Estimate(scan(plan.TP, rows))
	ap := Estimate(scan(plan.AP, rows))
	if ap >= tp {
		t.Errorf("AP (%v) must beat TP (%v) on a 150M-row scan", ap, tp)
	}
}

func TestMonotonicInRows(t *testing.T) {
	for _, eng := range []plan.Engine{plan.TP, plan.AP} {
		prev := time.Duration(0)
		for _, rows := range []float64{1e3, 1e5, 1e7} {
			d := Estimate(scan(eng, rows))
			if d <= prev {
				t.Errorf("%v latency not monotonic: %v after %v", eng, d, prev)
			}
			prev = d
		}
	}
}

func TestIndexNLJCheaperThanPlainNLJ(t *testing.T) {
	outer := scan(plan.TP, 1000)
	lookup := &plan.Node{Op: plan.OpIndexLookup, Engine: plan.TP, Rows: 10,
		Relation: "inner", Index: "pk", UsesIndex: true}
	idxJoin := &plan.Node{Op: plan.OpNestedLoopJoin, Engine: plan.TP, Rows: 10000,
		UsesIndex: true, Children: []*plan.Node{outer, lookup}}

	innerScan := scan(plan.TP, 1e6)
	plainJoin := &plan.Node{Op: plan.OpNestedLoopJoin, Engine: plan.TP, Rows: 10000,
		Children: []*plan.Node{scan(plan.TP, 1000), innerScan}}

	if Estimate(idxJoin) >= Estimate(plainJoin) {
		t.Errorf("index NLJ (%v) should beat scan NLJ (%v)", Estimate(idxJoin), Estimate(plainJoin))
	}
}

func TestIndexTopNCheaperThanSort(t *testing.T) {
	idxScan := &plan.Node{Op: plan.OpIndexScan, Engine: plan.TP, Rows: 10,
		Relation: "t", Index: "pk", UsesIndex: true}
	idxTopN := &plan.Node{Op: plan.OpTopN, Engine: plan.TP, Rows: 10,
		UsesIndex: true, Children: []*plan.Node{idxScan}}

	fullScan := scan(plan.TP, 1e6)
	sortTopN := &plan.Node{Op: plan.OpTopN, Engine: plan.TP, Rows: 10,
		Children: []*plan.Node{fullScan}}

	if Estimate(idxTopN) >= Estimate(sortTopN) {
		t.Errorf("index-order Top-N (%v) should beat scan+TopN (%v)",
			Estimate(idxTopN), Estimate(sortTopN))
	}
}

func TestHashJoinChargesBuildAndProbe(t *testing.T) {
	probe := scan(plan.AP, 1e6)
	build := &plan.Node{Op: plan.OpHashBuild, Engine: plan.AP, Rows: 1e5,
		Children: []*plan.Node{scan(plan.AP, 1e5)}}
	join := &plan.Node{Op: plan.OpHashJoin, Engine: plan.AP, Rows: 1e5,
		Children: []*plan.Node{probe, build}}
	noJoin := Estimate(scan(plan.AP, 1e6))
	withJoin := Estimate(join)
	if withJoin <= noJoin {
		t.Errorf("join (%v) must cost more than its probe scan alone (%v)", withJoin, noJoin)
	}
}

func TestDeterminism(t *testing.T) {
	n := &plan.Node{Op: plan.OpHashAggregate, Engine: plan.AP, Rows: 10,
		Children: []*plan.Node{scan(plan.AP, 5e6)}}
	if Estimate(n) != Estimate(n) {
		t.Error("latency model must be deterministic")
	}
}

func TestSortScalesSuperlinearly(t *testing.T) {
	mkSort := func(rows float64) *plan.Node {
		return &plan.Node{Op: plan.OpSort, Engine: plan.TP, Rows: rows,
			Children: []*plan.Node{scan(plan.TP, rows)}}
	}
	small := Estimate(mkSort(1e4)) - Estimate(scan(plan.TP, 1e4))
	big := Estimate(mkSort(1e6)) - Estimate(scan(plan.TP, 1e6))
	if float64(big) < 100*float64(small) {
		t.Errorf("sort should scale ~n log n: 1e4→%v, 1e6→%v", small, big)
	}
}
