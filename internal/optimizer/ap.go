package optimizer

import (
	"fmt"
	"math"
	"strings"

	"htapxplain/internal/exec"
	"htapxplain/internal/plan"
	"htapxplain/internal/sqlparser"
)

// AP cost model. Units are the column engine's internal "points": row
// volumes at the modeled scale dominate, so AP costs are huge numbers
// (the paper's Table II shows 16 500 000 vs TP's 5 213) and must never be
// compared with TP costs.
const (
	apScanPerRow   = 0.1 // per row visited by a columnar scan (per query, after pruning)
	apFilterPerRow = 0.1
	apBuildPerRow  = 1.2
	apProbePerRow  = 0.2
	apOutPerRow    = 0.1
	apAggPerRow    = 0.12
	apSortPerRow   = 0.15
)

func apShape() engineShape {
	return engineShape{
		engine: plan.AP,
		aggOp:  plan.OpHashAggregate,
		costAgg: func(in float64) float64 {
			return in * apAggPerRow
		},
		costSort: func(in float64) float64 {
			return in * apSortPerRow * math.Max(1, math.Log2(math.Max(2, in))/8)
		},
		costTopN: func(in float64, k int64) float64 {
			return in * apSortPerRow
		},
	}
}

// PlanAP plans the query for the column-oriented AP engine: columnar scans
// with projection pushdown and zone-map pruning, hash joins (build on the
// smaller side), hash aggregation. AP has no ordered indexes — ORDER BY
// always sorts, and point lookups degrade to scans; that is its signature
// weakness against TP.
func (p *Planner) PlanAP(sel *sqlparser.Select) (*PhysPlan, error) {
	a, err := bind(p.Cat, sel)
	if err != nil {
		return nil, err
	}
	shape := apShape()
	b, err := p.apJoinTree(a)
	if err != nil {
		return nil, err
	}
	if len(a.otherPreds) > 0 {
		pred, err := exec.Compile(sqlparser.AndAll(a.otherPreds), b.op.Schema())
		if err != nil {
			return nil, err
		}
		b = built{
			op: &exec.FilterOp{Child: b.op, Pred: pred},
			node: &plan.Node{Op: plan.OpFilter, Engine: plan.AP,
				Cost: b.node.Cost + b.rows*apFilterPerRow, Rows: math.Max(1, b.rows*0.5),
				Condition: condString(a.otherPreds), Children: []*plan.Node{b.node}},
			rows:      math.Max(1, b.rows*0.5),
			parChunks: b.parChunks,
			parRoot:   b.parRoot, // a filter keeps a per-morsel chain forkable
		}
	}
	return finish(a, shape, b)
}

// apAccess plans the columnar scan of one table: only referenced columns
// are read, table predicates are evaluated inside the scan, and a
// zone-map pruner is attached when a range/equality predicate allows
// chunk skipping.
func (p *Planner) apAccess(a *analysis, t boundTable) (built, error) {
	if a.overrides != nil {
		if rows, ok := a.overrides[strings.ToLower(t.binding)]; ok {
			// Exchange-delivered rows replace the local scan: full table
			// schema, pre-filtered at their source shard, so neither the
			// table predicates nor the zone pruner apply again.
			out := exec.TableSchema(t.meta, t.binding)
			node := &plan.Node{Op: plan.OpTableScan, Engine: plan.AP,
				Cost: float64(len(rows)) * apScanPerRow,
				Rows: math.Max(1, float64(len(rows))), Relation: t.meta.Name + " (exchange)"}
			return built{op: exec.NewMemScan(out, rows), node: node,
				rows: math.Max(1, float64(len(rows)))}, nil
		}
	}
	ct, ok := p.Col.Table(t.meta.Name)
	if !ok {
		return built{}, fmt.Errorf("optimizer: column store missing table %q", t.meta.Name)
	}
	cols := neededColumns(a, t)
	full := float64(t.meta.Rows)
	filtered := estRows(a, t)

	scanNode := &plan.Node{Op: plan.OpTableScan, Engine: plan.AP,
		Cost: 0.5, // the paper's AP leaves show a nominal scan-start cost
		Rows: full, Relation: t.meta.Name}

	preds := a.tablePreds[t.binding]
	var pred exec.Evaluator
	// compile against the pruned-column schema the scan emits
	subset := make(exec.Schema, len(cols))
	fullSchema := exec.TableSchema(t.meta, t.binding)
	for i, c := range cols {
		subset[i] = fullSchema[c]
	}
	if len(preds) > 0 {
		ev, err := exec.Compile(sqlparser.AndAll(preds), subset)
		if err != nil {
			return built{}, err
		}
		pred = ev
	}
	pruner := zonePruner(a, t, cols)
	op := exec.NewColTableScan(ct, t.binding, cols, pred, pruner)
	chunks := ct.NumChunks()

	if len(preds) == 0 {
		scanNode.Cost = full * apScanPerRow * colFraction(t, cols)
		return built{op: op, node: scanNode, rows: full, parChunks: chunks, parRoot: true}, nil
	}
	node := &plan.Node{Op: plan.OpFilter, Engine: plan.AP,
		Cost: full * apFilterPerRow * colFraction(t, cols),
		Rows: math.Max(1, filtered), Condition: condString(preds),
		Children: []*plan.Node{scanNode}}
	return built{op: op, node: node, rows: math.Max(1, filtered), parChunks: chunks, parRoot: true}, nil
}

// colFraction scales scan cost by the fraction of columns actually read.
func colFraction(t boundTable, cols []int) float64 {
	f := float64(len(cols)) / float64(len(t.meta.Columns))
	if f < 0.1 {
		f = 0.1
	}
	return f
}

// apJoinTree builds the hash-join tree greedily: the largest filtered
// table becomes the initial probe side; each remaining connected table is
// attached as the build side of a new hash join (small side builds).
func (p *Planner) apJoinTree(a *analysis) (built, error) {
	if len(a.tables) == 1 {
		return p.apAccess(a, a.tables[0])
	}
	// deterministic: probe = largest filtered cardinality
	var probe boundTable
	probeRows := -1.0
	for _, t := range a.tables {
		if r := estRows(a, t); r > probeRows {
			probe, probeRows = t, r
		}
	}
	cur, err := p.apAccess(a, probe)
	if err != nil {
		return built{}, err
	}
	joined := map[string]bool{probe.binding: true}
	remaining := map[string]boundTable{}
	for _, t := range a.tables {
		if t.binding != probe.binding {
			remaining[t.binding] = t
		}
	}
	usedJoin := map[int]bool{}
	for len(remaining) > 0 {
		bestBind := ""
		for i, jp := range a.joinPreds {
			if usedJoin[i] {
				continue
			}
			var other string
			switch {
			case joined[jp.aBind] && !joined[jp.bBind]:
				other = jp.bBind
			case joined[jp.bBind] && !joined[jp.aBind]:
				other = jp.aBind
			default:
				continue
			}
			if bestBind == "" || other < bestBind {
				bestBind = other
			}
		}
		if bestBind == "" {
			for b := range remaining {
				if bestBind == "" || b < bestBind {
					bestBind = b
				}
			}
		}
		inner := remaining[bestBind]
		var jps []joinPred
		for i, jp := range a.joinPreds {
			if usedJoin[i] {
				continue
			}
			if (joined[jp.aBind] && jp.bBind == inner.binding) || (joined[jp.bBind] && jp.aBind == inner.binding) {
				jps = append(jps, jp)
				usedJoin[i] = true
			}
		}
		cur, err = p.apJoinStep(a, cur, inner, jps)
		if err != nil {
			return built{}, err
		}
		joined[inner.binding] = true
		delete(remaining, inner.binding)
	}
	return cur, nil
}

// apJoinStep attaches table `inner` as the build side of a hash join on
// top of cur (the probe side).
func (p *Planner) apJoinStep(a *analysis, cur built, inner boundTable, jps []joinPred) (built, error) {
	buildSide, err := p.apAccess(a, inner)
	if err != nil {
		return built{}, err
	}
	joinSel := 1.0
	for _, jp := range jps {
		joinSel *= joinSelectivity(a, jp)
	}
	outRows := math.Max(1, cur.rows*buildSide.rows*joinSel)

	probeSchema := cur.op.Schema()
	buildSchema := buildSide.op.Schema()
	var probeKeys, buildKeys []int
	var residual []sqlparser.Expr
	condParts := []sqlparser.Expr{}
	for _, jp := range jps {
		probeRef, buildRef := outerRefOf(jp, inner.binding), &sqlparser.ColumnRef{Table: inner.binding, Column: innerColOf(jp, inner.binding)}
		pi, err1 := probeSchema.Resolve(probeRef)
		bi, err2 := buildSchema.Resolve(buildRef)
		if err1 != nil || err2 != nil {
			residual = append(residual, jp.expr)
			continue
		}
		probeKeys = append(probeKeys, pi)
		buildKeys = append(buildKeys, bi)
		condParts = append(condParts, jp.expr)
	}
	var residualEv exec.Evaluator
	if len(residual) > 0 {
		ev, err := exec.Compile(sqlparser.AndAll(residual), probeSchema.Concat(buildSchema))
		if err != nil {
			return built{}, err
		}
		residualEv = ev
	}
	if len(probeKeys) == 0 {
		// no usable equi-key: degenerate to a filtered cross hash join
		// (single bucket). Keep executable; the cost model punishes it.
		probeKeys, buildKeys = []int{}, []int{}
	}
	op := exec.NewHashJoin(cur.op, buildSide.op, probeKeys, buildKeys, residualEv)

	buildNode := &plan.Node{Op: plan.OpHashBuild, Engine: plan.AP,
		Cost: buildSide.node.Cost + buildSide.rows*apBuildPerRow,
		Rows: buildSide.rows, Children: []*plan.Node{buildSide.node}}
	cost := cur.node.Cost + buildNode.Cost + cur.rows*apProbePerRow + outRows*apOutPerRow
	node := &plan.Node{Op: plan.OpHashJoin, Engine: plan.AP,
		Cost: cost, Rows: outRows, Condition: condString(condParts),
		Children: []*plan.Node{cur.node, buildNode}}
	// only fork-point inputs contribute to the join's parallelism: the
	// build side forks entirely (its access path is a per-morsel chain),
	// while the probe side is pulled serially — a probe that was itself a
	// bare chain loses its root forkability here, and only fork points
	// interior to it (earlier joins' builds) carry over
	chunks := buildSide.parChunks
	if !cur.parRoot && cur.parChunks > chunks {
		chunks = cur.parChunks
	}
	return built{op: op, node: node, rows: outRows, parChunks: chunks}, nil
}
