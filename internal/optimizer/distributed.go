// Distributed (shard-aware) planning: routing analysis that decides
// whether a statement pins to one shard or scatters, which tables must
// move through an exchange (shuffle/broadcast) to make the per-shard join
// local, and fragment planning that splits a scatter query into a
// shard-local partial plan plus the coordinator's final gather/merge
// stage.
//
// The split reuses the single-node planner wholesale: a fragment is just
// PlanAP with (a) exchange-delivered row overrides standing in for
// non-local tables and (b) the aggregate flipped into Partial mode (or a
// Top-N/limit pre-reduction for plain selects). The final stage is the
// same finish() tail — merge aggregate, ordering, limit, projection —
// applied on top of the gather stream.
package optimizer

import (
	"fmt"
	"sort"
	"strings"

	"htapxplain/internal/catalog"
	"htapxplain/internal/exec"
	"htapxplain/internal/plan"
	"htapxplain/internal/sqlparser"
	"htapxplain/internal/value"
)

// PartitionView tells the distributed planner how tables are laid out
// without importing the shard package: PartitionColumn returns a table's
// hash-partition key column, or ok=false when the table is replicated to
// every shard.
type PartitionView interface {
	PartitionColumn(table string) (string, bool)
}

// PinnedTable is one hash-partitioned table referenced by a statement and
// whether its partition key is fixed by an equality predicate.
type PinnedTable struct {
	Binding string
	Table   string
	Column  string      // partition-key column
	Key     value.Value // the pinned literal when Pinned
	Pinned  bool
}

// TableMove says how one table's rows reach the shard fragments that join
// against them: either broadcast (every fragment sees the full filtered
// row set) or shuffled by ShuffleCol (rows land on the shard whose anchor
// partition they can join). Preds are the table's own filter conjuncts,
// applied at the sending scan so only useful rows cross the exchange.
type TableMove struct {
	Binding    string
	Table      string
	Broadcast  bool
	ShuffleCol string // column of Binding routed on when !Broadcast
	Preds      []sqlparser.Expr
}

// DistDecision is the routing analysis of one SELECT: every partitioned
// table it touches (with pin status) and the exchange moves a scatter
// execution needs. The shard coordinator turns pinned keys into shard
// numbers — if every partitioned table pins to the same shard the whole
// statement routes there; otherwise it scatters.
type DistDecision struct {
	Partitioned []PinnedTable
	Moves       []TableMove
}

// AllPinned reports whether every partitioned table's key is fixed by an
// equality predicate (no partitioned tables counts: a replicated-only
// query runs anywhere).
func (d *DistDecision) AllPinned() bool {
	for _, t := range d.Partitioned {
		if !t.Pinned {
			return false
		}
	}
	return true
}

// AnalyzeDist classifies a SELECT against the partition layout. It binds
// (and thereby qualifies) the statement in place, so callers should pass
// a dedicated parse, not one shared with concurrent planning.
func AnalyzeDist(cat *catalog.Catalog, sel *sqlparser.Select, pv PartitionView) (*DistDecision, error) {
	a, err := bind(cat, sel)
	if err != nil {
		return nil, err
	}
	d := &DistDecision{}
	var parted []boundTable
	for _, t := range a.tables {
		pcol, ok := pv.PartitionColumn(t.meta.Name)
		if !ok {
			continue // replicated everywhere — never moves, never pins
		}
		parted = append(parted, t)
		pt := PinnedTable{Binding: t.binding, Table: t.meta.Name, Column: pcol}
		if key, ok := PinnedEq(a.tablePreds[t.binding], pcol); ok {
			pt.Key, pt.Pinned = key, true
		}
		d.Partitioned = append(d.Partitioned, pt)
	}
	d.Moves = resolveMoves(a, parted, pv)
	return d, nil
}

// PinnedEq finds a `col = literal` conjunct among the predicates and
// returns the literal — the pin the shard router hashes to a shard. The
// shard coordinator also uses it on DML WHERE clauses.
func PinnedEq(preds []sqlparser.Expr, pcol string) (value.Value, bool) {
	for _, p := range preds {
		be, ok := p.(*sqlparser.BinaryExpr)
		if !ok || be.Op != sqlparser.OpEq {
			continue
		}
		col, lit := be.Left, be.Right
		if isLiteral(col) {
			col, lit = lit, col
		}
		ref, ok := col.(*sqlparser.ColumnRef)
		if !ok || !strings.EqualFold(ref.Column, pcol) || !isLiteral(lit) {
			continue
		}
		if v := litValue(lit); v.K != value.KindNull {
			return v, true
		}
	}
	return value.Null, false
}

// resolveMoves decides, greedily and largest-first, which partitioned
// tables stay local to their own shard (the anchor set) and which must
// move. The largest table anchors; another table stays local when an
// equi-join links both partition keys (co-partitioned), shuffles by its
// join column when it joins an anchored table's partition key (rows
// re-align to the owning shard), and broadcasts otherwise. Broadcasting
// against disjoint anchor partitions produces no duplicates: each row
// joins only the anchor rows its shard owns.
func resolveMoves(a *analysis, parted []boundTable, pv PartitionView) []TableMove {
	if len(parted) <= 1 {
		return nil
	}
	sort.SliceStable(parted, func(i, j int) bool {
		if parted[i].meta.Rows != parted[j].meta.Rows {
			return parted[i].meta.Rows > parted[j].meta.Rows
		}
		return parted[i].binding < parted[j].binding
	})
	pcolOf := func(t boundTable) string {
		c, _ := pv.PartitionColumn(t.meta.Name)
		return c
	}
	anchored := map[string]string{strings.ToLower(parted[0].binding): pcolOf(parted[0])}
	var moves []TableMove
	for _, t := range parted[1:] {
		bind := strings.ToLower(t.binding)
		tp := pcolOf(t)
		local := false
		shuffleCol := ""
		for _, jp := range a.joinPreds {
			tCol, aCol, aBind, ok := joinSides(jp, bind)
			if !ok {
				continue
			}
			apcol, isAnchor := anchored[aBind]
			if !isAnchor || !strings.EqualFold(aCol, apcol) {
				continue // only joins against an anchor's partition key align shards
			}
			if strings.EqualFold(tCol, tp) {
				local = true
				break
			}
			if shuffleCol == "" {
				shuffleCol = tCol
			}
		}
		switch {
		case local:
			anchored[bind] = tp
		case shuffleCol != "":
			moves = append(moves, TableMove{Binding: t.binding, Table: t.meta.Name,
				ShuffleCol: shuffleCol, Preds: a.tablePreds[t.binding]})
		default:
			moves = append(moves, TableMove{Binding: t.binding, Table: t.meta.Name,
				Broadcast: true, Preds: a.tablePreds[t.binding]})
		}
	}
	return moves
}

// joinSides orients an equi-join conjunct around binding: it returns
// binding's column, the other side's column and (lowercased) binding.
func joinSides(jp joinPred, binding string) (tCol, oCol, oBind string, ok bool) {
	switch {
	case strings.EqualFold(jp.aBind, binding):
		return jp.aCol, jp.bCol, strings.ToLower(jp.bBind), true
	case strings.EqualFold(jp.bBind, binding):
		return jp.bCol, jp.aCol, strings.ToLower(jp.aBind), true
	}
	return "", "", "", false
}

// MoveScanSelect synthesizes the sending-side scan for a table move:
// SELECT * FROM table AS binding WHERE <the table's own conjuncts>. Each
// shard plans it against local storage; the union of all shards' outputs
// is the full filtered row set. The Select shares Preds AST nodes with
// the routed statement, so per-shard planning of moves must be sequential
// (bind qualifies expressions in place).
func MoveScanSelect(m TableMove) *sqlparser.Select {
	return &sqlparser.Select{
		Items: []sqlparser.SelectItem{{Star: true}},
		From:  []sqlparser.TableRef{{Name: m.Table, Alias: m.Binding}},
		Where: sqlparser.AndAll(m.Preds),
		Limit: -1,
	}
}

// FragmentPlan is one shard's half of a scatter query plus the recipe for
// the coordinator's final stage. Frag runs on the shard (partial
// aggregate, or Top-N/limit pre-reduction) and its rows cross the gather
// exchange with schema FragSchema; MakeFinal wraps the gather source with
// the merge aggregate / ordering / limit / projection tail. MakeFinal is
// identical across shards — the coordinator calls it once, on any
// fragment's plan.
type FragmentPlan struct {
	Frag       *PhysPlan
	FragSchema exec.Schema
	MakeFinal  func(src exec.BatchOperator) (exec.BatchOperator, error)
}

// PlanFragment plans the shard-local fragment of a scatter SELECT.
// overrides maps (lowercased) bindings of moved tables to their
// exchange-delivered rows. Like every planner entry point it binds the
// statement in place, so each shard plans from its own parse.
func (p *Planner) PlanFragment(sel *sqlparser.Select, overrides map[string][]value.Row) (*FragmentPlan, error) {
	a, err := bind(p.Cat, sel)
	if err != nil {
		return nil, err
	}
	a.overrides = overrides
	shape := apShape()
	b, err := p.apJoinTree(a)
	if err != nil {
		return nil, err
	}
	if len(a.otherPreds) > 0 {
		pred, err := exec.Compile(sqlparser.AndAll(a.otherPreds), b.op.Schema())
		if err != nil {
			return nil, err
		}
		b = built{
			op: &exec.FilterOp{Child: b.op, Pred: pred},
			node: &plan.Node{Op: plan.OpFilter, Engine: plan.AP,
				Cost: b.node.Cost + b.rows*apFilterPerRow, Rows: mathMax1(b.rows * 0.5),
				Condition: condString(a.otherPreds), Children: []*plan.Node{b.node}},
			rows:      mathMax1(b.rows * 0.5),
			parChunks: b.parChunks,
			parRoot:   b.parRoot,
		}
	}
	if sel.HasAggregate() || len(sel.GroupBy) > 0 {
		return fragmentAgg(a, shape, b)
	}
	return fragmentPlain(a, shape, b)
}

// fragmentAgg splits an aggregation: the shard half is the planner's own
// HashAggregate flipped into Partial mode (so encoded pushdown and
// morsel parallelism keep working), the final half a Merge-mode aggregate
// over the gathered partial states followed by the usual tail.
func fragmentAgg(a *analysis, shape engineShape, b built) (*FragmentPlan, error) {
	ab, err := buildAggregate(a, shape, b)
	if err != nil {
		return nil, err
	}
	ha, ok := ab.op.(*exec.HashAggregate)
	if !ok {
		return nil, fmt.Errorf("optimizer: aggregate fragment root is %T, want *exec.HashAggregate", ab.op)
	}
	finalOut := ha.Out
	nGroups := len(finalOut) - len(ha.Aggs)
	partial := make(exec.Schema, 0, nGroups+2*len(ha.Aggs))
	partial = append(partial, finalOut[:nGroups]...)
	for i := range ha.Aggs {
		// state columns are typed loosely: the values carry their own kind
		// (a MIN over strings ships string states) and nothing recompiles
		// expressions against a partial schema
		partial = append(partial,
			exec.Col{Name: fmt.Sprintf("__p%d_state", i), Type: catalog.TypeFloat},
			exec.Col{Name: fmt.Sprintf("__p%d_count", i), Type: catalog.TypeInt})
	}
	ha.Partial = true
	ha.Out = partial

	aggs := ha.Aggs
	rows := ab.rows
	makeFinal := func(src exec.BatchOperator) (exec.BatchOperator, error) {
		groups := make([]exec.Evaluator, nGroups)
		for i := range groups {
			i := i
			groups[i] = func(r value.Row) (value.Value, error) { return r[i], nil }
		}
		fb := built{
			op: &exec.HashAggregate{Child: src, Groups: groups, Aggs: aggs,
				Out: finalOut, Merge: true},
			node: &plan.Node{Op: plan.OpHashAggregate, Engine: plan.AP,
				Cost: shape.costAgg(rows), Rows: rows},
			rows: rows,
		}
		return finalTail(a, shape, fb, true)
	}
	return &FragmentPlan{Frag: fragPhys(ab), FragSchema: partial, MakeFinal: makeFinal}, nil
}

// fragmentPlain handles scatter selects with no aggregation: the fragment
// ships join-tree rows (pre-reduced to the first Limit+Offset rows in the
// final order when a bound exists) and the final stage re-orders, limits
// and projects.
func fragmentPlain(a *analysis, shape engineShape, b built) (*FragmentPlan, error) {
	sel := a.sel
	fb := b
	if sel.Limit >= 0 {
		n := sel.Limit + sel.Offset
		if len(sel.OrderBy) > 0 {
			keys, err := orderKeys(a, b.op.Schema(), false)
			if err != nil {
				return nil, err
			}
			fb = built{
				op: &exec.TopNOp{Child: b.op, Keys: keys, N: n},
				node: &plan.Node{Op: plan.OpTopN, Engine: plan.AP,
					Cost: b.node.Cost + shape.costTopN(b.rows, n),
					Rows: mathMax1(float64(n)), Children: []*plan.Node{b.node}},
				rows: mathMax1(float64(n)), parChunks: b.parChunks,
			}
		} else {
			fb = built{
				op: &exec.LimitOp{Child: b.op, N: n},
				node: &plan.Node{Op: plan.OpLimit, Engine: plan.AP,
					Cost: b.node.Cost, Rows: mathMax1(float64(n)),
					Children: []*plan.Node{b.node}},
				rows: mathMax1(float64(n)), parChunks: b.parChunks,
			}
		}
	}
	rows := fb.rows
	makeFinal := func(src exec.BatchOperator) (exec.BatchOperator, error) {
		gb := built{op: src, rows: rows,
			node: &plan.Node{Op: plan.OpTableScan, Engine: plan.AP, Rows: rows,
				Relation: "gather"}}
		return finalTail(a, shape, gb, false)
	}
	return &FragmentPlan{Frag: fragPhys(fb), FragSchema: fb.op.Schema(), MakeFinal: makeFinal}, nil
}

// finalTail applies the coordinator-side ordering/limit/projection, the
// same sequence finish uses after aggregation.
func finalTail(a *analysis, shape engineShape, fb built, agged bool) (exec.BatchOperator, error) {
	sel := a.sel
	var err error
	if len(sel.OrderBy) > 0 {
		fb, err = buildOrdering(a, shape, fb, agged)
		if err != nil {
			return nil, err
		}
	} else if sel.Limit >= 0 {
		fb = buildLimit(sel, shape, fb)
	}
	if agged {
		fb, err = projectAggOutput(a, fb)
	} else {
		fb, err = projectPlain(a, fb)
	}
	if err != nil {
		return nil, err
	}
	return fb.op, nil
}

// fragPhys wraps a fragment's built tree into a PhysPlan with the usual
// DOP choice — each shard picks parallelism from its own chunk supply.
func fragPhys(b built) *PhysPlan {
	dop := chooseDOP(b.parChunks)
	if dop > 1 && !exec.CanParallelize(b.op) {
		dop = 1
	}
	return &PhysPlan{Engine: plan.AP, Root: b.op, Explain: b.node, DOP: dop}
}

func mathMax1(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}
