package optimizer

import (
	"htapxplain/internal/catalog"
	"htapxplain/internal/sqlparser"
)

// TableFacts summarizes the optimizer-visible situation of one table in a
// query: how selective its predicates are and whether any index can serve
// them. The expert oracle and the DBG-PT baseline consume these.
type TableFacts struct {
	Binding string
	Table   string
	Rows    int64
	// FilterSel is the combined selectivity of the table's predicates.
	FilterSel float64
	// HasPredicate reports whether any single-table predicate exists.
	HasPredicate bool
	// SargableIndexColumn is the indexed column an index scan can use
	// ("" when none qualifies).
	SargableIndexColumn string
	// FuncWrappedIndexedColumn is an indexed column that appears only
	// inside a function call in predicates — the index exists but cannot
	// be used (the paper's SUBSTRING(c_phone,...) case). "" when absent.
	FuncWrappedIndexedColumn string
	// Predicates are the display strings of the table's predicates.
	Predicates []string
}

// QueryFacts is the bound, optimizer-visible description of a query.
type QueryFacts struct {
	SQL          string
	Tables       []TableFacts
	NumJoins     int
	HasAggregate bool
	HasGroupBy   bool
	HasOrderBy   bool
	// OrderByIndexedColumn is set when the query is single-table and
	// orders by one indexed column (TP can serve it in index order).
	OrderByIndexedColumn string
	Limit, Offset        int64
	// EstScannedRows is the total modeled-scale filtered cardinality.
	EstScannedRows float64
}

// Facts analyzes a query against the catalog without planning it.
func Facts(cat *catalog.Catalog, sql string) (*QueryFacts, error) {
	sel, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	a, err := bind(cat, sel)
	if err != nil {
		return nil, err
	}
	f := &QueryFacts{
		SQL:          sql,
		NumJoins:     len(a.joinPreds),
		HasAggregate: sel.HasAggregate(),
		HasGroupBy:   len(sel.GroupBy) > 0,
		HasOrderBy:   len(sel.OrderBy) > 0,
		Limit:        sel.Limit,
		Offset:       sel.Offset,
	}
	for _, t := range a.tables {
		tf := TableFacts{
			Binding:      t.binding,
			Table:        t.meta.Name,
			Rows:         t.meta.Rows,
			FilterSel:    tableSelectivity(a, t.binding),
			HasPredicate: len(a.tablePreds[t.binding]) > 0,
		}
		for _, p := range a.tablePreds[t.binding] {
			tf.Predicates = append(tf.Predicates, p.String())
		}
		if s := extractSargable(a, t); s != nil {
			tf.SargableIndexColumn = s.column
		}
		if col, ok := hasFunctionWrappedIndexedColumn(a, t); ok {
			tf.FuncWrappedIndexedColumn = col
		}
		f.EstScannedRows += estRows(a, t)
		f.Tables = append(f.Tables, tf)
	}
	if len(a.tables) == 1 && len(sel.OrderBy) == 1 && sel.Limit >= 0 {
		if ref, ok := sel.OrderBy[0].Expr.(*sqlparser.ColumnRef); ok {
			if _, ok := a.tables[0].meta.IndexOn(ref.Column); ok {
				f.OrderByIndexedColumn = ref.Column
			}
		}
	}
	return f, nil
}
