package optimizer

import (
	"runtime"
)

// Degree-of-parallelism selection for morsel-driven execution. The choice
// is made from physical cardinality facts — the zone-mapped chunk count of
// the largest columnar scan in the plan — not from modeled-scale
// statistics: morsels are physical chunks, so the physical count is what
// bounds how far the scan can usefully be split.

// minChunksPerWorker is the smallest morsel share that pays for a worker:
// below it, goroutine startup and the gather barrier dominate the chunk
// work.
const minChunksPerWorker = 2

// maxPlannedDOP caps the planner's ask regardless of plan size, so one
// huge scan cannot monopolize the gateway's worker pool.
const maxPlannedDOP = 8

// chooseDOP picks the degree of parallelism for a plan whose largest
// columnar scan spans the given number of base chunks. Row-store plans
// (chunks == 0) and small scans stay serial.
func chooseDOP(chunks int) int {
	dop := chunks / minChunksPerWorker
	if hw := runtime.GOMAXPROCS(0); dop > hw {
		dop = hw
	}
	if dop > maxPlannedDOP {
		dop = maxPlannedDOP
	}
	if dop < 1 {
		dop = 1
	}
	return dop
}
