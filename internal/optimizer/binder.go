// Package optimizer implements the two distinct HTAP query optimizers:
// the TP planner (index-aware, nested-loop-centric, row cost model) and
// the AP planner (hash-join-centric, columnar cost model). Mirroring
// ByteHTAP, the two cost models use deliberately non-comparable units —
// which is exactly why the paper forbids the LLM from comparing plan
// costs across engines.
package optimizer

import (
	"fmt"
	"math"
	"strings"

	"htapxplain/internal/catalog"
	"htapxplain/internal/sqlparser"
	"htapxplain/internal/value"
)

// boundTable is one FROM entry resolved against the catalog.
type boundTable struct {
	binding string
	meta    *catalog.Table
}

// joinPred is an equi-join conjunct a.col = b.col.
type joinPred struct {
	aBind, aCol string
	bBind, bCol string
	expr        sqlparser.Expr
}

// analysis is the bound, classified form of a SELECT.
type analysis struct {
	sel        *sqlparser.Select
	cat        *catalog.Catalog
	tables     []boundTable
	tablePreds map[string][]sqlparser.Expr // binding → single-table conjuncts
	joinPreds  []joinPred
	otherPreds []sqlparser.Expr // multi-table non-equi conjuncts

	// overrides substitutes materialized rows for a binding's base-table
	// scan — the hook distributed fragments use to read shuffled/broadcast
	// exchange output instead of local storage. Override rows carry the
	// full table schema and are already filtered at their source.
	overrides map[string][]value.Row
}

func (a *analysis) table(binding string) (boundTable, bool) {
	for _, t := range a.tables {
		if strings.EqualFold(t.binding, binding) {
			return t, true
		}
	}
	return boundTable{}, false
}

// bind resolves the FROM list, qualifies every column reference in place,
// and classifies WHERE conjuncts.
func bind(cat *catalog.Catalog, sel *sqlparser.Select) (*analysis, error) {
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("optimizer: query has no FROM clause")
	}
	a := &analysis{sel: sel, cat: cat, tablePreds: make(map[string][]sqlparser.Expr)}
	seen := map[string]bool{}
	for _, tr := range sel.From {
		meta, ok := cat.Table(tr.Name)
		if !ok {
			return nil, fmt.Errorf("optimizer: unknown table %q", tr.Name)
		}
		b := strings.ToLower(tr.Binding())
		if seen[b] {
			return nil, fmt.Errorf("optimizer: duplicate table binding %q", b)
		}
		seen[b] = true
		a.tables = append(a.tables, boundTable{binding: b, meta: meta})
	}

	// qualify every column reference in the statement
	qualify := func(refs []*sqlparser.ColumnRef) error {
		for _, ref := range refs {
			if ref.Table != "" {
				bt, ok := a.table(ref.Table)
				if !ok {
					return fmt.Errorf("optimizer: unknown table qualifier %q", ref.Table)
				}
				if _, ok := bt.meta.Column(ref.Column); !ok {
					return fmt.Errorf("optimizer: no column %q in table %q", ref.Column, ref.Table)
				}
				ref.Table = strings.ToLower(ref.Table)
				ref.Column = strings.ToLower(ref.Column)
				continue
			}
			var owner string
			for _, t := range a.tables {
				if _, ok := t.meta.Column(ref.Column); ok {
					if owner != "" {
						return fmt.Errorf("optimizer: ambiguous column %q", ref.Column)
					}
					owner = t.binding
				}
			}
			if owner == "" {
				return fmt.Errorf("optimizer: unknown column %q", ref.Column)
			}
			ref.Table = owner
			ref.Column = strings.ToLower(ref.Column)
		}
		return nil
	}
	for _, it := range sel.Items {
		if it.Star {
			continue
		}
		if err := qualify(sqlparser.ColumnsIn(it.Expr)); err != nil {
			return nil, err
		}
	}
	if err := qualify(sqlparser.ColumnsIn(sel.Where)); err != nil {
		return nil, err
	}
	for _, g := range sel.GroupBy {
		if err := qualify(sqlparser.ColumnsIn(g)); err != nil {
			return nil, err
		}
	}
	for _, o := range sel.OrderBy {
		if err := qualify(sqlparser.ColumnsIn(o.Expr)); err != nil {
			return nil, err
		}
	}

	// classify conjuncts
	for _, c := range sqlparser.Conjuncts(sel.Where) {
		binds := bindingsOf(c)
		switch {
		case len(binds) == 1:
			b := binds[0]
			a.tablePreds[b] = append(a.tablePreds[b], c)
		case len(binds) == 2:
			if jp, ok := asEquiJoin(c); ok {
				a.joinPreds = append(a.joinPreds, jp)
			} else {
				a.otherPreds = append(a.otherPreds, c)
			}
		default:
			a.otherPreds = append(a.otherPreds, c)
		}
	}
	return a, nil
}

// bindingsOf returns the distinct bindings referenced by an expression
// (sorted for determinism).
func bindingsOf(e sqlparser.Expr) []string {
	set := map[string]bool{}
	for _, ref := range sqlparser.ColumnsIn(e) {
		set[ref.Table] = true
	}
	out := make([]string, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	// insertion order of maps is random; sort small slice
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// asEquiJoin recognizes `a.x = b.y` between two different bindings.
func asEquiJoin(e sqlparser.Expr) (joinPred, bool) {
	be, ok := e.(*sqlparser.BinaryExpr)
	if !ok || be.Op != sqlparser.OpEq {
		return joinPred{}, false
	}
	l, lok := be.Left.(*sqlparser.ColumnRef)
	r, rok := be.Right.(*sqlparser.ColumnRef)
	if !lok || !rok || l.Table == r.Table {
		return joinPred{}, false
	}
	return joinPred{aBind: l.Table, aCol: l.Column, bBind: r.Table, bCol: r.Column, expr: e}, true
}

// --------------------------------------------------------- selectivity

// ndvOf returns the NDV of a column (falling back to table cardinality).
func ndvOf(meta *catalog.Table, col string) float64 {
	c, ok := meta.Column(col)
	if !ok || c.NDV <= 0 {
		return float64(meta.Rows)
	}
	return float64(c.NDV)
}

// selectivity estimates the fraction of rows of the predicate's (single)
// table that satisfy e. Function-wrapped columns get heuristic defaults
// (their distributions are opaque to the optimizer — the reason such
// predicates also cannot use indexes).
func selectivity(a *analysis, e sqlparser.Expr) float64 {
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case sqlparser.OpAnd:
			return clampSel(selectivity(a, x.Left) * selectivity(a, x.Right))
		case sqlparser.OpOr:
			l, r := selectivity(a, x.Left), selectivity(a, x.Right)
			return clampSel(l + r - l*r)
		case sqlparser.OpEq:
			if ref, ok := x.Left.(*sqlparser.ColumnRef); ok {
				if bt, found := a.table(ref.Table); found {
					return clampSel(1.0 / ndvOf(bt.meta, ref.Column))
				}
			}
			if _, ok := x.Left.(*sqlparser.FuncExpr); ok {
				return 0.04 // e.g. SUBSTRING(...) = '20': one of ~25 codes
			}
			return 0.05
		case sqlparser.OpNe:
			return 0.9
		case sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
			return 0.3
		default:
			return 0.5
		}
	case *sqlparser.NotExpr:
		return clampSel(1 - selectivity(a, x.Inner))
	case *sqlparser.InExpr:
		k := float64(len(x.List))
		var domain float64 = 25 // function-wrapped default (phone country codes)
		if ref, ok := x.Expr.(*sqlparser.ColumnRef); ok {
			if bt, found := a.table(ref.Table); found {
				domain = ndvOf(bt.meta, ref.Column)
			}
		}
		s := k / domain
		if x.Not {
			s = 1 - s
		}
		return clampSel(s)
	case *sqlparser.BetweenExpr:
		return 0.25
	case *sqlparser.LikeExpr:
		if !strings.HasPrefix(x.Pattern, "%") {
			return 0.05
		}
		return 0.1
	default:
		return 0.5
	}
}

func clampSel(s float64) float64 {
	if s < 1e-9 {
		return 1e-9
	}
	if s > 1 {
		return 1
	}
	return s
}

// tableSelectivity is the product of all single-table predicates on a
// binding.
func tableSelectivity(a *analysis, binding string) float64 {
	s := 1.0
	for _, p := range a.tablePreds[binding] {
		s *= selectivity(a, p)
	}
	return clampSel(s)
}

// estRows is the estimated post-filter cardinality of a binding at the
// modeled scale.
func estRows(a *analysis, t boundTable) float64 {
	return math.Max(1, float64(t.meta.Rows)*tableSelectivity(a, t.binding))
}

// joinSelectivity estimates 1/max(ndv_a, ndv_b) for an equi-join.
func joinSelectivity(a *analysis, jp joinPred) float64 {
	at, aok := a.table(jp.aBind)
	bt, bok := a.table(jp.bBind)
	if !aok || !bok {
		return 0.1
	}
	na, nb := ndvOf(at.meta, jp.aCol), ndvOf(bt.meta, jp.bCol)
	return clampSel(1.0 / math.Max(na, nb))
}

// --------------------------------------------------------- sargability

// sargable describes an index-usable single-table predicate.
type sargable struct {
	column string
	keys   []sqlparser.Expr // equality / IN keys (literals)
	lo, hi sqlparser.Expr   // range bounds (literals); nil = open
	// loStrict/hiStrict mark exclusive bounds (> / <). Index range scans
	// and zone-map pruning ignore them (conservative); the AP zone pruner
	// propagates them so its chunk-level RangeSel can stand in for the
	// compiled predicate exactly.
	loStrict, hiStrict bool
	sel                float64
	pred               sqlparser.Expr
}

// extractSargable finds the best index-usable predicate on the binding:
// a bare (not function-wrapped) column compared to literals, where the
// column has an index. This is where SUBSTRING(c_phone,1,2) IN (...)
// fails to qualify — the paper's central example of index-unusable
// predicates.
func extractSargable(a *analysis, t boundTable) *sargable {
	var best *sargable
	consider := func(s *sargable) {
		if _, ok := t.meta.IndexOn(s.column); !ok {
			return
		}
		if best == nil || s.sel < best.sel {
			best = s
		}
	}
	for _, p := range a.tablePreds[t.binding] {
		switch x := p.(type) {
		case *sqlparser.BinaryExpr:
			ref, lok := x.Left.(*sqlparser.ColumnRef)
			if !lok || !isLiteral(x.Right) {
				continue
			}
			switch x.Op {
			case sqlparser.OpEq:
				consider(&sargable{column: ref.Column, keys: []sqlparser.Expr{x.Right},
					sel: selectivity(a, p), pred: p})
			case sqlparser.OpGt, sqlparser.OpGe:
				consider(&sargable{column: ref.Column, lo: x.Right, sel: selectivity(a, p), pred: p})
			case sqlparser.OpLt, sqlparser.OpLe:
				consider(&sargable{column: ref.Column, hi: x.Right, sel: selectivity(a, p), pred: p})
			}
		case *sqlparser.InExpr:
			ref, ok := x.Expr.(*sqlparser.ColumnRef)
			if !ok || x.Not {
				continue
			}
			allLit := true
			for _, it := range x.List {
				if !isLiteral(it) {
					allLit = false
					break
				}
			}
			if !allLit {
				continue
			}
			consider(&sargable{column: ref.Column, keys: x.List, sel: selectivity(a, p), pred: p})
		case *sqlparser.BetweenExpr:
			ref, ok := x.Expr.(*sqlparser.ColumnRef)
			if !ok || !isLiteral(x.Lo) || !isLiteral(x.Hi) {
				continue
			}
			consider(&sargable{column: ref.Column, lo: x.Lo, hi: x.Hi, sel: selectivity(a, p), pred: p})
		}
	}
	return best
}

func isLiteral(e sqlparser.Expr) bool {
	switch e.(type) {
	case *sqlparser.IntLit, *sqlparser.FloatLit, *sqlparser.StringLit:
		return true
	default:
		return false
	}
}

// hasFunctionWrappedIndexedColumn reports whether any predicate on the
// binding applies a function to a column that has an index — the
// "index exists but cannot be used" situation the paper's follow-up
// question discusses (§VI-B).
func hasFunctionWrappedIndexedColumn(a *analysis, t boundTable) (string, bool) {
	for _, p := range a.tablePreds[t.binding] {
		var fn *sqlparser.FuncExpr
		switch x := p.(type) {
		case *sqlparser.InExpr:
			if f, ok := x.Expr.(*sqlparser.FuncExpr); ok {
				fn = f
			}
		case *sqlparser.BinaryExpr:
			if f, ok := x.Left.(*sqlparser.FuncExpr); ok {
				fn = f
			}
		case *sqlparser.LikeExpr:
			if f, ok := x.Expr.(*sqlparser.FuncExpr); ok {
				fn = f
			}
		}
		if fn == nil {
			continue
		}
		for _, ref := range sqlparser.ColumnsIn(fn) {
			if ref.Table != t.binding {
				continue
			}
			if _, ok := t.meta.IndexOn(ref.Column); ok {
				return ref.Column, true
			}
		}
	}
	return "", false
}
