package optimizer

import (
	"strings"
	"testing"

	"htapxplain/internal/catalog"
	"htapxplain/internal/colstore"
	"htapxplain/internal/exec"
	"htapxplain/internal/plan"
	"htapxplain/internal/rowstore"
	"htapxplain/internal/sqlparser"
	"htapxplain/internal/tpch"
)

// testPlanner builds a planner over a small physical TPC-H dataset.
func testPlanner(t testing.TB) *Planner {
	t.Helper()
	cat := catalog.TPCH(100)
	cfg := tpch.DefaultConfig()
	cfg.PhysScale = 0.001
	data, err := tpch.Generate(cat, cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	row, err := rowstore.NewStore(cat, data.Tables)
	if err != nil {
		t.Fatal(err)
	}
	col, err := colstore.NewStore(cat, data.Tables)
	if err != nil {
		t.Fatal(err)
	}
	return NewPlanner(cat, row, col)
}

func parse(t testing.TB, sql string) *sqlparser.Select {
	t.Helper()
	sel, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return sel
}

func TestTPPlanNeverUsesHashJoin(t *testing.T) {
	p := testPlanner(t)
	queries := []string{
		"SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey",
		"SELECT COUNT(*) FROM customer, nation, orders WHERE c_nationkey = n_nationkey AND o_custkey = c_custkey",
	}
	for _, sql := range queries {
		pp, err := p.PlanTP(parse(t, sql))
		if err != nil {
			t.Fatalf("PlanTP(%q): %v", sql, err)
		}
		s := plan.Summarize(pp.Explain)
		if s.HashJoins != 0 {
			t.Errorf("TP plan for %q contains hash joins:\n%s", sql, pp.Explain)
		}
		if s.Joins() == 0 {
			t.Errorf("TP plan for %q has no joins:\n%s", sql, pp.Explain)
		}
	}
}

func TestAPPlanNeverUsesNestedLoop(t *testing.T) {
	p := testPlanner(t)
	pp, err := p.PlanAP(parse(t, "SELECT COUNT(*) FROM customer, nation, orders WHERE c_nationkey = n_nationkey AND o_custkey = c_custkey"))
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Summarize(pp.Explain)
	if s.NestedLoopJoins != 0 {
		t.Errorf("AP plan uses nested loops:\n%s", pp.Explain)
	}
	if s.HashJoins != 2 {
		t.Errorf("AP plan should have 2 hash joins, got %d:\n%s", s.HashJoins, pp.Explain)
	}
}

func TestSubstringPredicateIsNotSargable(t *testing.T) {
	p := testPlanner(t)
	// even with an index on c_phone, the SUBSTRING wrap must prevent use
	if err := p.Cat.AddIndex("customer", "c_phone", "idx_phone"); err != nil {
		t.Fatal(err)
	}
	if err := p.Row.BuildIndex("customer", "c_phone"); err != nil {
		t.Fatal(err)
	}
	pp, err := p.PlanTP(parse(t, "SELECT COUNT(*) FROM customer WHERE SUBSTRING(c_phone, 1, 2) IN ('20')"))
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Summarize(pp.Explain)
	if s.IndexScans != 0 {
		t.Errorf("SUBSTRING predicate must not use an index:\n%s", pp.Explain)
	}
	// while a bare equality on the same column can
	pp2, err := p.PlanTP(parse(t, "SELECT COUNT(*) FROM customer WHERE c_phone = '20-100-100-1000'"))
	if err != nil {
		t.Fatal(err)
	}
	if s2 := plan.Summarize(pp2.Explain); s2.IndexScans != 1 {
		t.Errorf("bare equality should use the index:\n%s", pp2.Explain)
	}
}

func TestTPPointLookupUsesPrimaryIndex(t *testing.T) {
	p := testPlanner(t)
	pp, err := p.PlanTP(parse(t, "SELECT o_totalprice FROM orders WHERE o_orderkey = 5"))
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Summarize(pp.Explain)
	if s.IndexScans != 1 || s.TableScans != 0 {
		t.Errorf("point lookup plan:\n%s", pp.Explain)
	}
}

func TestTPIndexOrderTopN(t *testing.T) {
	p := testPlanner(t)
	pp, err := p.PlanTP(parse(t, "SELECT c_custkey FROM customer ORDER BY c_custkey LIMIT 5"))
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Summarize(pp.Explain)
	if !s.UsesIndex || s.TopNs != 1 || s.Sorts != 0 {
		t.Errorf("index-order Top-N plan:\n%s", pp.Explain)
	}
	// ... but ordering by an unindexed column must sort
	pp2, err := p.PlanTP(parse(t, "SELECT c_custkey FROM customer ORDER BY c_acctbal LIMIT 5"))
	if err != nil {
		t.Fatal(err)
	}
	if s2 := plan.Summarize(pp2.Explain); s2.UsesIndex && s2.TopNs > 0 {
		t.Errorf("unindexed order should not be index-served:\n%s", pp2.Explain)
	}
}

func TestCostUnitsNonComparable(t *testing.T) {
	p := testPlanner(t)
	sel1 := parse(t, "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey")
	sel2 := parse(t, "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey")
	tpPlan, err := p.PlanTP(sel1)
	if err != nil {
		t.Fatal(err)
	}
	apPlan, err := p.PlanAP(sel2)
	if err != nil {
		t.Fatal(err)
	}
	// units differ by orders of magnitude (the gap widens further on
	// filtered queries — the htap Example 1 test asserts >100×)
	if apPlan.Explain.Cost < 10*tpPlan.Explain.Cost {
		t.Errorf("AP cost %.0f vs TP cost %.0f — units should differ wildly",
			apPlan.Explain.Cost, tpPlan.Explain.Cost)
	}
}

func TestBinderErrors(t *testing.T) {
	p := testPlanner(t)
	bad := []string{
		"SELECT x FROM nosuchtable",
		"SELECT nosuchcol FROM customer",
		"SELECT c_custkey FROM customer, orders WHERE c_comment = o_comment AND nope = 1",
		"SELECT o_orderkey FROM orders, orders WHERE o_orderkey = 1",          // duplicate binding
		"SELECT c_custkey, o_custkey FROM customer c, orders o WHERE x.y = 1", // unknown qualifier
	}
	for _, sql := range bad {
		sel, err := sqlparser.Parse(sql)
		if err != nil {
			continue
		}
		if _, err := p.PlanTP(sel); err == nil {
			t.Errorf("PlanTP(%q) should fail", sql)
		}
	}
}

func TestAmbiguousColumnRejected(t *testing.T) {
	p := testPlanner(t)
	// c_comment/o_comment both named "o_comment"? use a genuinely shared
	// name: both orders and lineitem have no shared name, but customer and
	// supplier share none either. nation/region share "comment"? columns
	// are n_comment/r_comment. Construct ambiguity via aliases of the
	// same table instead — rejected as duplicate binding, so craft two
	// tables that both expose the referenced column name.
	sel := parse(t, "SELECT c_custkey FROM customer c1, customer c2 WHERE c_custkey = 1")
	if _, err := p.PlanTP(sel); err == nil {
		t.Error("ambiguous unqualified column across two bindings should fail")
	}
}

func TestFactsExtraction(t *testing.T) {
	p := testPlanner(t)
	f, err := Facts(p.Cat, `SELECT COUNT(*) FROM customer, nation, orders
		WHERE SUBSTRING(c_phone, 1, 2) IN ('20', '21') AND c_mktsegment = 'machinery'
		AND n_name = 'egypt' AND o_orderstatus = 'p'
		AND o_custkey = c_custkey AND n_nationkey = c_nationkey`)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumJoins != 2 || !f.HasAggregate || f.HasGroupBy || f.HasOrderBy {
		t.Errorf("facts shape: %+v", f)
	}
	var cust *TableFacts
	for i := range f.Tables {
		if f.Tables[i].Table == "customer" {
			cust = &f.Tables[i]
		}
	}
	if cust == nil {
		t.Fatal("customer facts missing")
	}
	if !cust.HasPredicate || cust.SargableIndexColumn != "" {
		t.Errorf("customer predicates should be non-sargable: %+v", cust)
	}
	if cust.FilterSel >= 0.5 {
		t.Errorf("customer selectivity %.3f should be < 0.5", cust.FilterSel)
	}
}

func TestFactsFunctionWrappedIndexedColumn(t *testing.T) {
	p := testPlanner(t)
	if err := p.Cat.AddIndex("customer", "c_phone", "idx_phone"); err != nil {
		t.Fatal(err)
	}
	f, err := Facts(p.Cat, "SELECT COUNT(*) FROM customer WHERE SUBSTRING(c_phone, 1, 2) IN ('20')")
	if err != nil {
		t.Fatal(err)
	}
	if f.Tables[0].FuncWrappedIndexedColumn != "c_phone" {
		t.Errorf("func-wrapped indexed column not detected: %+v", f.Tables[0])
	}
}

func TestFactsOrderByIndexed(t *testing.T) {
	p := testPlanner(t)
	f, err := Facts(p.Cat, "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if f.OrderByIndexedColumn != "o_orderkey" || f.Limit != 10 {
		t.Errorf("facts: %+v", f)
	}
	f2, err := Facts(p.Cat, "SELECT o_orderkey FROM orders ORDER BY o_totalprice LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if f2.OrderByIndexedColumn != "" {
		t.Errorf("o_totalprice is not indexed: %+v", f2)
	}
}

func TestSelectivityBounds(t *testing.T) {
	p := testPlanner(t)
	sqls := []string{
		"SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery'",
		"SELECT COUNT(*) FROM customer WHERE c_acctbal > 100",
		"SELECT COUNT(*) FROM customer WHERE c_acctbal BETWEEN 1 AND 2",
		"SELECT COUNT(*) FROM customer WHERE c_name LIKE 'cust%'",
		"SELECT COUNT(*) FROM customer WHERE NOT c_mktsegment = 'machinery'",
		"SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'a' OR c_mktsegment = 'b'",
	}
	for _, sql := range sqls {
		f, err := Facts(p.Cat, sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		sel := f.Tables[0].FilterSel
		if sel <= 0 || sel > 1 {
			t.Errorf("%q selectivity %v out of (0,1]", sql, sel)
		}
	}
}

func TestPlansExecuteAfterBuild(t *testing.T) {
	// integration sanity: every planned query also runs
	p := testPlanner(t)
	sqls := []string{
		"SELECT COUNT(*) FROM nation",
		"SELECT n_name, COUNT(*) FROM nation, customer WHERE n_nationkey = c_nationkey GROUP BY n_name ORDER BY n_name LIMIT 3",
		"SELECT c_name FROM customer WHERE c_custkey = 1",
		"SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'building' OR c_mktsegment = 'machinery'",
	}
	for _, sql := range sqls {
		for _, planFn := range []func(*sqlparser.Select) (*PhysPlan, error){p.PlanTP, p.PlanAP} {
			pp, err := planFn(parse(t, sql))
			if err != nil {
				t.Fatalf("plan %q: %v", sql, err)
			}
			if _, err := exec.Drain(pp.Root, exec.NewContext()); err != nil {
				t.Fatalf("run %q: %v", sql, err)
			}
		}
	}
}

func TestExplainConditionStringsPresent(t *testing.T) {
	p := testPlanner(t)
	pp, err := p.PlanTP(parse(t, "SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery'"))
	if err != nil {
		t.Fatal(err)
	}
	js := pp.Explain.ExplainJSON()
	if !strings.Contains(js, "machinery") {
		t.Errorf("filter condition missing from explain: %s", js)
	}
}
