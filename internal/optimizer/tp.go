package optimizer

import (
	"fmt"
	"math"

	"htapxplain/internal/exec"
	"htapxplain/internal/plan"
	"htapxplain/internal/rowstore"
	"htapxplain/internal/sqlparser"
	"htapxplain/internal/value"
)

// TP cost model. Units are the row engine's internal "points" — small
// numbers, deliberately incomparable with the AP engine's units (the
// paper's instruction "you are not allowed to compare the cost estimates"
// exists precisely because of this).
const (
	tpScanPerRow   = 0.02   // heap row visited during a scan
	tpFilterPerRow = 0.004  // predicate evaluation
	tpProbeCost    = 0.25   // one index descent
	tpFetchPerRow  = 0.012  // row fetched through an index
	tpCmpPerPair   = 0.0004 // nested-loop comparison
	tpAggPerRow    = 0.006
	tpSortLogScale = 0.01
)

func tpShape() engineShape {
	return engineShape{
		engine: plan.TP,
		aggOp:  plan.OpGroupAggregate,
		costAgg: func(in float64) float64 {
			return in * tpAggPerRow
		},
		costSort: func(in float64) float64 {
			return in * tpSortLogScale * math.Max(1, math.Log2(math.Max(2, in)))
		},
		costTopN: func(in float64, k int64) float64 {
			return in * tpSortLogScale * math.Max(1, math.Log2(float64(k+2)))
		},
	}
}

// PlanTP plans the query for the row-oriented TP engine: index-aware
// access paths and nested-loop joins (index nested-loop when the inner
// join column is indexed). The TP engine has no hash join — the paper's
// Example 1 hinges on exactly that.
func (p *Planner) PlanTP(sel *sqlparser.Select) (*PhysPlan, error) {
	a, err := bind(p.Cat, sel)
	if err != nil {
		return nil, err
	}
	shape := tpShape()

	// special case: single-table Top-N served directly from index order
	if b, ok, err := p.tryIndexOrderTopN(a, shape); err != nil {
		return nil, err
	} else if ok {
		return finishTopNIndex(a, shape, b)
	}

	// access path + greedy nested-loop join order
	b, err := p.tpJoinTree(a)
	if err != nil {
		return nil, err
	}
	if len(a.otherPreds) > 0 {
		pred, err := exec.Compile(sqlparser.AndAll(a.otherPreds), b.op.Schema())
		if err != nil {
			return nil, err
		}
		sel := 0.5
		b = built{
			op: &exec.FilterOp{Child: b.op, Pred: pred},
			node: &plan.Node{Op: plan.OpFilter, Engine: plan.TP,
				Cost: b.node.Cost + b.rows*tpFilterPerRow, Rows: math.Max(1, b.rows*sel),
				Condition: condString(a.otherPreds), Children: []*plan.Node{b.node}},
			rows: math.Max(1, b.rows*sel),
		}
	}
	return finish(a, shape, b)
}

// tpAccess plans the TP access path for one table: an index scan when a
// sargable indexed predicate exists, otherwise a full scan; remaining
// predicates become a Filter above.
func (p *Planner) tpAccess(a *analysis, t boundTable) (built, error) {
	rt, ok := p.Row.Table(t.meta.Name)
	if !ok {
		return built{}, fmt.Errorf("optimizer: row store missing table %q", t.meta.Name)
	}
	preds := a.tablePreds[t.binding]
	fullRows := float64(t.meta.Rows)
	filtered := estRows(a, t)

	sarg := extractSargable(a, t)
	var scan built
	if sarg != nil {
		ix, _ := rt.IndexOn(sarg.column)
		ixMeta, _ := t.meta.IndexOn(sarg.column)
		var keys []value.Value
		var lo, hi *value.Value
		if len(sarg.keys) > 0 {
			for _, k := range sarg.keys {
				keys = append(keys, litValue(k))
			}
		} else {
			if sarg.lo != nil {
				v := litValue(sarg.lo)
				lo = &v
			}
			if sarg.hi != nil {
				v := litValue(sarg.hi)
				hi = &v
			}
		}
		op := exec.NewRowIndexScan(rt, ix, t.binding, keys, lo, hi)
		matched := math.Max(1, fullRows*sarg.sel)
		cost := tpProbeCost*math.Max(1, float64(len(keys))) + matched*tpFetchPerRow
		scan = built{
			op: op,
			node: &plan.Node{Op: plan.OpIndexScan, Engine: plan.TP, Cost: cost,
				Rows: matched, Relation: t.meta.Name, Index: ixMeta.Name,
				Condition: sarg.pred.String(), UsesIndex: true},
			rows: matched,
		}
		// residual = all table preds except the sargable one
		var residual []sqlparser.Expr
		for _, pr := range preds {
			if pr != sarg.pred {
				residual = append(residual, pr)
			}
		}
		preds = residual
	} else {
		op := exec.NewRowTableScan(rt, t.binding)
		scan = built{
			op: op,
			node: &plan.Node{Op: plan.OpTableScan, Engine: plan.TP,
				Cost: fullRows * tpScanPerRow, Rows: fullRows, Relation: t.meta.Name},
			rows: fullRows,
		}
	}
	if len(preds) > 0 {
		pred, err := exec.Compile(sqlparser.AndAll(preds), scan.op.Schema())
		if err != nil {
			return built{}, err
		}
		scan = built{
			op: &exec.FilterOp{Child: scan.op, Pred: pred},
			node: &plan.Node{Op: plan.OpFilter, Engine: plan.TP,
				Cost: scan.node.Cost + scan.rows*tpFilterPerRow, Rows: math.Max(1, filtered),
				Condition: condString(preds), Children: []*plan.Node{scan.node}},
			rows: math.Max(1, filtered),
		}
	}
	return scan, nil
}

// tpJoinTree builds a left-deep nested-loop join tree greedily: start from
// the smallest filtered table, repeatedly attach the cheapest connected
// table, preferring index nested-loop when the inner join column is
// indexed.
func (p *Planner) tpJoinTree(a *analysis) (built, error) {
	type cand struct {
		t    boundTable
		rows float64
	}
	remaining := map[string]boundTable{}
	var start cand
	first := true
	for _, t := range a.tables {
		remaining[t.binding] = t
		r := estRows(a, t)
		if first || r < start.rows {
			start = cand{t: t, rows: r}
			first = false
		}
	}
	cur, err := p.tpAccess(a, start.t)
	if err != nil {
		return built{}, err
	}
	delete(remaining, start.t.binding)
	joined := map[string]bool{start.t.binding: true}
	usedJoin := map[int]bool{}

	for len(remaining) > 0 {
		// find connected candidates via unused join predicates
		bestBind := ""
		bestJPs := []int(nil)
		for i, jp := range a.joinPreds {
			if usedJoin[i] {
				continue
			}
			var inner string
			switch {
			case joined[jp.aBind] && !joined[jp.bBind]:
				inner = jp.bBind
			case joined[jp.bBind] && !joined[jp.aBind]:
				inner = jp.aBind
			default:
				continue
			}
			if bestBind == "" || inner < bestBind { // deterministic tie-break
				bestBind = inner
			}
		}
		if bestBind == "" {
			// cross join with the smallest remaining table (deterministic)
			for b := range remaining {
				if bestBind == "" || b < bestBind {
					bestBind = b
				}
			}
		}
		inner := remaining[bestBind]
		// collect every join predicate connecting inner to the joined set
		var jps []joinPred
		for i, jp := range a.joinPreds {
			if usedJoin[i] {
				continue
			}
			if (joined[jp.aBind] && jp.bBind == inner.binding) || (joined[jp.bBind] && jp.aBind == inner.binding) {
				jps = append(jps, jp)
				bestJPs = append(bestJPs, i)
			}
		}
		nxt, err := p.tpJoinStep(a, cur, inner, jps)
		if err != nil {
			return built{}, err
		}
		cur = nxt
		for _, i := range bestJPs {
			usedJoin[i] = true
		}
		joined[inner.binding] = true
		delete(remaining, inner.binding)
	}
	return cur, nil
}

// tpJoinStep joins cur with table inner using the given join predicates.
// It chooses index nested-loop when the inner side of the first join
// predicate has an index on its join column and that is cheaper.
func (p *Planner) tpJoinStep(a *analysis, cur built, inner boundTable, jps []joinPred) (built, error) {
	rt, ok := p.Row.Table(inner.meta.Name)
	if !ok {
		return built{}, fmt.Errorf("optimizer: row store missing table %q", inner.meta.Name)
	}
	innerFiltered := estRows(a, inner)
	joinSel := 1.0
	for _, jp := range jps {
		joinSel *= joinSelectivity(a, jp)
	}
	outRows := math.Max(1, cur.rows*innerFiltered*joinSel)

	// Option 1: index nested-loop join
	var bestIdx *struct {
		jp      joinPred
		ix      *rowstore.Index
		ixName  string
		perCost float64
	}
	for _, jp := range jps {
		innerCol := jp.bCol
		if jp.bBind != inner.binding {
			innerCol = jp.aCol
		}
		ix, ok := rt.IndexOn(innerCol)
		if !ok {
			continue
		}
		ixMeta, _ := inner.meta.IndexOn(innerCol)
		matchPerProbe := float64(inner.meta.Rows) / ndvOf(inner.meta, innerCol)
		per := tpProbeCost + matchPerProbe*tpFetchPerRow
		if bestIdx == nil || per < bestIdx.perCost {
			bestIdx = &struct {
				jp      joinPred
				ix      *rowstore.Index
				ixName  string
				perCost float64
			}{jp: jp, ix: ix, ixName: ixMeta.Name, perCost: per}
		}
	}

	// Option 2: plain nested-loop over inner's access path
	innerAccess, err := p.tpAccess(a, inner)
	if err != nil {
		return built{}, err
	}
	nljCost := cur.node.Cost + innerAccess.node.Cost + cur.rows*innerAccess.rows*tpCmpPerPair

	if bestIdx != nil {
		idxCost := cur.node.Cost + cur.rows*bestIdx.perCost
		if idxCost <= nljCost {
			// inner single-table predicates and the remaining join
			// predicates become the residual over the concat schema
			outerKeyCol, err := cur.op.Schema().Resolve(outerRefOf(bestIdx.jp, inner.binding))
			if err != nil {
				return built{}, err
			}
			var residualPreds []sqlparser.Expr
			residualPreds = append(residualPreds, a.tablePreds[inner.binding]...)
			for _, jp := range jps {
				if jp != bestIdx.jp {
					residualPreds = append(residualPreds, jp.expr)
				}
			}
			var residual exec.Evaluator
			concat := cur.op.Schema().Concat(exec.TableSchema(inner.meta, inner.binding))
			if len(residualPreds) > 0 {
				residual, err = exec.Compile(sqlparser.AndAll(residualPreds), concat)
				if err != nil {
					return built{}, err
				}
			}
			op := exec.NewIndexNLJoin(cur.op, outerKeyCol, rt, bestIdx.ix, inner.binding, residual)
			lookup := &plan.Node{Op: plan.OpIndexLookup, Engine: plan.TP,
				Cost: bestIdx.perCost, Rows: float64(inner.meta.Rows) / ndvOf(inner.meta, innerColOf(bestIdx.jp, inner.binding)),
				Relation: inner.meta.Name, Index: bestIdx.ixName,
				Condition: bestIdx.jp.expr.String(), UsesIndex: true}
			node := &plan.Node{Op: plan.OpNestedLoopJoin, Engine: plan.TP,
				Cost: idxCost, Rows: outRows, UsesIndex: true,
				Condition: bestIdx.jp.expr.String(),
				Children:  []*plan.Node{cur.node, lookup}}
			return built{op: op, node: node, rows: outRows}, nil
		}
	}

	// plain nested loop with all join predicates as the join condition
	concat := cur.op.Schema().Concat(innerAccess.op.Schema())
	var pred exec.Evaluator
	var condExprs []sqlparser.Expr
	for _, jp := range jps {
		condExprs = append(condExprs, jp.expr)
	}
	if len(condExprs) > 0 {
		pred, err = exec.Compile(sqlparser.AndAll(condExprs), concat)
		if err != nil {
			return built{}, err
		}
	}
	op := exec.NewNestedLoopJoin(cur.op, innerAccess.op, pred)
	node := &plan.Node{Op: plan.OpNestedLoopJoin, Engine: plan.TP,
		Cost: nljCost, Rows: outRows, Condition: condString(condExprs),
		Children: []*plan.Node{cur.node, innerAccess.node}}
	return built{op: op, node: node, rows: outRows}, nil
}

// outerRefOf returns the join-pred column reference on the outer side.
func outerRefOf(jp joinPred, innerBind string) *sqlparser.ColumnRef {
	if jp.aBind == innerBind {
		return &sqlparser.ColumnRef{Table: jp.bBind, Column: jp.bCol}
	}
	return &sqlparser.ColumnRef{Table: jp.aBind, Column: jp.aCol}
}

// innerColOf returns the join-pred column name on the inner side.
func innerColOf(jp joinPred, innerBind string) string {
	if jp.aBind == innerBind {
		return jp.aCol
	}
	return jp.bCol
}

// litValue converts a literal AST node to a runtime value.
func litValue(e sqlparser.Expr) value.Value {
	switch l := e.(type) {
	case *sqlparser.IntLit:
		return value.NewInt(l.V)
	case *sqlparser.FloatLit:
		return value.NewFloat(l.V)
	case *sqlparser.StringLit:
		return value.NewString(l.V)
	default:
		return value.Null
	}
}

// tryIndexOrderTopN recognizes single-table ORDER BY <indexed col> LIMIT n
// queries, which TP can serve in index order without sorting — its
// signature Top-N advantage over AP.
func (p *Planner) tryIndexOrderTopN(a *analysis, shape engineShape) (built, bool, error) {
	sel := a.sel
	if len(a.tables) != 1 || sel.HasAggregate() || len(sel.GroupBy) > 0 ||
		len(sel.OrderBy) != 1 || sel.Limit < 0 {
		return built{}, false, nil
	}
	ref, ok := sel.OrderBy[0].Expr.(*sqlparser.ColumnRef)
	if !ok {
		return built{}, false, nil
	}
	t := a.tables[0]
	ixMeta, ok := t.meta.IndexOn(ref.Column)
	if !ok {
		return built{}, false, nil
	}
	rt, ok := p.Row.Table(t.meta.Name)
	if !ok {
		return built{}, false, fmt.Errorf("optimizer: row store missing table %q", t.meta.Name)
	}
	ix, ok := rt.IndexOn(ref.Column)
	if !ok {
		return built{}, false, nil
	}
	var pred exec.Evaluator
	preds := a.tablePreds[t.binding]
	schema := exec.TableSchema(t.meta, t.binding)
	if len(preds) > 0 {
		ev, err := exec.Compile(sqlparser.AndAll(preds), schema)
		if err != nil {
			return built{}, false, err
		}
		pred = ev
	}
	limitHint := int(sel.Limit + sel.Offset)
	op := exec.NewRowIndexOrderScan(rt, ix, t.binding, sel.OrderBy[0].Desc, limitHint, pred)
	// expected rows visited before the limit fills: k / selectivity
	tsel := tableSelectivity(a, t.binding)
	visited := math.Min(float64(t.meta.Rows), float64(limitHint)/tsel)
	cost := tpProbeCost + visited*(tpFetchPerRow+tpFilterPerRow)
	scanNode := &plan.Node{Op: plan.OpIndexScan, Engine: plan.TP, Cost: cost,
		Rows: visited, Relation: t.meta.Name, Index: ixMeta.Name,
		Condition: condString(preds), UsesIndex: true}
	node := &plan.Node{Op: plan.OpTopN, Engine: plan.TP,
		Cost: cost + float64(limitHint)*tpFilterPerRow,
		Rows: math.Min(float64(sel.Limit), visited), UsesIndex: true,
		Condition: fmt.Sprintf("order by %s limit %d offset %d (index order)", ref, sel.Limit, sel.Offset),
		Children:  []*plan.Node{scanNode}}
	return built{op: op, node: node, rows: node.Rows}, true, nil
}

// finishTopNIndex applies OFFSET slicing and projection on top of an
// index-order Top-N scan.
func finishTopNIndex(a *analysis, shape engineShape, b built) (*PhysPlan, error) {
	sel := a.sel
	if sel.Offset > 0 || sel.Limit >= 0 {
		b = built{
			op:   &exec.LimitOp{Child: b.op, N: sel.Limit, Offset: sel.Offset},
			node: b.node, rows: b.rows,
		}
	}
	pb, err := projectPlain(a, b)
	if err != nil {
		return nil, err
	}
	return &PhysPlan{Engine: shape.engine, Root: pb.op, Explain: pb.node}, nil
}
