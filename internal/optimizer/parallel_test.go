package optimizer

import (
	"runtime"
	"testing"

	"htapxplain/internal/sqlparser"
)

func TestChooseDOP(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	cases := []struct {
		chunks, want int
	}{
		{0, 1},  // row-store plan
		{1, 1},  // single chunk
		{2, 1},  // one worker's worth
		{8, 4},  // four workers' worth
		{16, 8}, // eight
		{64, 8}, // capped at maxPlannedDOP
	}
	for _, tc := range cases {
		if got := chooseDOP(tc.chunks); got != tc.want {
			t.Errorf("chooseDOP(%d) = %d, want %d", tc.chunks, got, tc.want)
		}
	}
	// hardware cap below the plan's ask
	runtime.GOMAXPROCS(2)
	if got := chooseDOP(64); got != 2 {
		t.Errorf("chooseDOP(64) under GOMAXPROCS(2) = %d, want 2", got)
	}
}

// TestPlannedDOPFromCardinality: AP plans over the big fact table ask for
// parallelism proportional to its physical chunk count, tiny-dimension
// plans and TP plans stay serial.
func TestPlannedDOPFromCardinality(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	p := testPlanner(t)

	planAP := func(sql string) *PhysPlan {
		t.Helper()
		sel, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		phys, err := p.PlanAP(sel)
		if err != nil {
			t.Fatal(err)
		}
		return phys
	}

	big := planAP(`SELECT COUNT(*) FROM lineitem WHERE l_quantity > 10`)
	ct, _ := p.Col.Table("lineitem")
	want := chooseDOP(ct.NumChunks())
	if big.DOP != want || big.DOP < 2 {
		t.Errorf("lineitem scan DOP = %d, want %d (> 1) from %d chunks",
			big.DOP, want, ct.NumChunks())
	}

	small := planAP(`SELECT COUNT(*) FROM nation`)
	if small.DOP != 1 {
		t.Errorf("nation scan DOP = %d, want 1", small.DOP)
	}

	// a Top-N pulls its scan serially — no fork point, so the plan must
	// not reserve workers it can never use
	topn := planAP(`SELECT l_orderkey, l_extendedprice FROM lineitem ORDER BY l_extendedprice DESC LIMIT 10`)
	if topn.DOP != 1 {
		t.Errorf("Top-N plan DOP = %d, want 1 (no fork point)", topn.DOP)
	}

	// a probe-heavy join over a tiny build side: the probe (lineitem) is
	// pulled serially and only the single-chunk nation build can fork, so
	// the plan must not size its DOP from the probe's chunk count
	join := planAP(`SELECT COUNT(*) FROM lineitem, orders, nation` +
		` WHERE l_orderkey = o_orderkey AND o_custkey = n_nationkey AND n_name = 'egypt'`)
	nt, _ := p.Col.Table("nation")
	ot, _ := p.Col.Table("orders")
	maxBuild := nt.NumChunks()
	if c := ot.NumChunks(); c > maxBuild {
		maxBuild = c
	}
	if want := chooseDOP(maxBuild); join.DOP != want {
		t.Errorf("probe-heavy join DOP = %d, want %d (sized from build sides, not the %d-chunk probe)",
			join.DOP, want, ct.NumChunks())
	}

	sel, err := sqlparser.Parse(`SELECT COUNT(*) FROM lineitem WHERE l_quantity > 10`)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := p.PlanTP(sel)
	if err != nil {
		t.Fatal(err)
	}
	if tp.DOP != 1 {
		t.Errorf("TP plan DOP = %d, want 1 (row-store scans are not morsel-driven)", tp.DOP)
	}
}
