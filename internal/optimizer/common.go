package optimizer

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"htapxplain/internal/catalog"
	"htapxplain/internal/colstore"
	"htapxplain/internal/exec"
	"htapxplain/internal/plan"
	"htapxplain/internal/rowstore"
	"htapxplain/internal/sqlparser"
	"htapxplain/internal/value"
)

// PhysPlan couples an executable operator tree with its EXPLAIN tree.
type PhysPlan struct {
	Engine  plan.Engine
	Root    exec.Operator
	Explain *plan.Node
	// DOP is the planner-chosen degree of parallelism: the number of
	// morsel workers the plan's scan pipelines are worth spreading across,
	// derived from the physical chunk counts of the scanned tables (see
	// chooseDOP). 1 means serial. The gateway admits DOP workers against
	// its pool and passes the granted count through exec.Context.DOP;
	// executing with a smaller grant (or serially) is always safe — the
	// operators fork at Open from whatever the context carries.
	DOP int

	runnerOnce sync.Once
	runner     *exec.Runner
}

// Execute runs the plan through the vectorized batch pipeline and
// materializes the result rows. Repeated executions (e.g. of a cached
// plan) share a pool of cloned operator trees, so they are concurrency-
// safe and reuse execution buffers.
func (p *PhysPlan) Execute(ctx *exec.Context) ([]value.Row, error) {
	p.runnerOnce.Do(func() { p.runner = exec.NewRunner(p.Root) })
	return p.runner.Drain(ctx)
}

// ExecuteAnalyzed runs the plan once with per-operator instrumentation —
// the EXPLAIN ANALYZE path. A private clone of the operator tree is
// wrapped in measuring operators (transparent to morsel-parallel forking,
// so a DOP>1 plan forks exactly as in Execute) and drained; the measured
// per-operator profile is returned alongside the rows. The profile is
// also populated on error, so a failed run still shows where time went.
func (p *PhysPlan) ExecuteAnalyzed(ctx *exec.Context) ([]value.Row, *exec.OpStats, error) {
	root, prof := exec.Instrument(p.Root.Clone())
	rows, err := exec.Drain(root, ctx)
	return rows, prof.Snapshot(), err
}

// Planner plans queries for both engines over shared storage.
type Planner struct {
	Cat *catalog.Catalog
	Row *rowstore.Store
	Col *colstore.Store
}

// NewPlanner constructs a planner.
func NewPlanner(cat *catalog.Catalog, row *rowstore.Store, col *colstore.Store) *Planner {
	return &Planner{Cat: cat, Row: row, Col: col}
}

// engineShape parameterizes the engine-specific parts of the shared
// post-join planning (aggregation, ordering, limit, projection).
type engineShape struct {
	engine   plan.Engine
	aggOp    plan.Op
	costAgg  func(inRows float64) float64
	costSort func(inRows float64) float64
	costTopN func(inRows float64, k int64) float64
}

// built tracks an operator subtree with its explain node and modeled-scale
// cardinality estimate.
type built struct {
	op   exec.Operator
	node *plan.Node
	rows float64
	// parChunks is the physical base-chunk count of the largest columnar
	// scan a fork point can actually reach in this subtree — the
	// cardinality fact the degree-of-parallelism choice is made from
	// (0 for row-store trees). parRoot marks a subtree that is itself a
	// forkable per-morsel chain (scan + filters): its whole parChunks is
	// usable by whatever forks it (a root drain, an aggregate, a join
	// build), but the moment it becomes a hash join's probe side that
	// root forkability is lost — the probe is pulled serially — and only
	// interior fork points keep contributing.
	parChunks int
	parRoot   bool
}

// finish applies aggregation / ordering / limit / projection on top of the
// join tree, shared by both planners.
func finish(a *analysis, shape engineShape, b built) (*PhysPlan, error) {
	sel := a.sel
	var err error
	if sel.HasAggregate() || len(sel.GroupBy) > 0 {
		b, err = buildAggregate(a, shape, b)
		if err != nil {
			return nil, err
		}
		if len(sel.OrderBy) > 0 {
			b, err = buildOrdering(a, shape, b, true)
			if err != nil {
				return nil, err
			}
		} else if sel.Limit >= 0 {
			b = buildLimit(sel, shape, b)
		}
		b, err = projectAggOutput(a, b)
		if err != nil {
			return nil, err
		}
	} else {
		if len(sel.OrderBy) > 0 {
			b, err = buildOrdering(a, shape, b, false)
			if err != nil {
				return nil, err
			}
		} else if sel.Limit >= 0 {
			b = buildLimit(sel, shape, b)
		}
		b, err = projectPlain(a, b)
		if err != nil {
			return nil, err
		}
	}
	dop := chooseDOP(b.parChunks)
	if dop > 1 && !exec.CanParallelize(b.op) {
		// the final shape has no fork point (e.g. Top-N pulls its scan
		// serially) — asking the gateway for workers would reserve pool
		// slots the execution can never use
		dop = 1
	}
	return &PhysPlan{Engine: shape.engine, Root: b.op, Explain: b.node, DOP: dop}, nil
}

// buildAggregate plans GROUP BY + aggregates. Output schema: group columns
// (in GROUP BY order) followed by aggregate columns (in select-list order).
func buildAggregate(a *analysis, shape engineShape, child built) (built, error) {
	inSchema := child.op.Schema()
	var groups []exec.Evaluator
	var outSchema exec.Schema
	groupNames := make([]string, len(a.sel.GroupBy))
	// structural shape for the encoded aggregation pushdown: bare-column
	// groups and aggregate arguments resolve to child-schema positions;
	// any expression group/argument clears it and forces the evaluator path
	groupCols := make([]int, 0, len(a.sel.GroupBy))
	structural := true
	for i, g := range a.sel.GroupBy {
		ev, err := exec.Compile(g, inSchema)
		if err != nil {
			return built{}, err
		}
		groups = append(groups, ev)
		name := strings.ToLower(g.String())
		typ := catalog.TypeString
		if ref, ok := g.(*sqlparser.ColumnRef); ok {
			name = ref.Column
			if idx, err := inSchema.Resolve(ref); err == nil {
				typ = inSchema[idx].Type
				groupCols = append(groupCols, idx)
			} else {
				structural = false
			}
			outSchema = append(outSchema, exec.Col{Binding: ref.Table, Name: name, Type: typ})
		} else {
			structural = false
			outSchema = append(outSchema, exec.Col{Name: name, Type: typ})
		}
		groupNames[i] = name
	}
	var aggs []exec.AggSpec
	for _, it := range a.sel.Items {
		ax, ok := it.Expr.(*sqlparser.AggExpr)
		if !ok {
			continue
		}
		var arg exec.Evaluator
		argCol := -1
		if ax.Arg != nil {
			ev, err := exec.Compile(ax.Arg, inSchema)
			if err != nil {
				return built{}, err
			}
			arg = ev
			if ref, ok := ax.Arg.(*sqlparser.ColumnRef); ok {
				if idx, rerr := inSchema.Resolve(ref); rerr == nil {
					argCol = idx
				} else {
					structural = false
				}
			} else {
				structural = false
			}
		}
		aggs = append(aggs, exec.AggSpec{Func: ax.Func, Arg: arg, ArgCol: argCol})
		name := it.Alias
		if name == "" {
			name = strings.ToLower(ax.String())
		}
		typ := catalog.TypeFloat
		if ax.Func == sqlparser.AggCount {
			typ = catalog.TypeInt
		}
		outSchema = append(outSchema, exec.Col{Name: name, Type: typ})
	}
	op := &exec.HashAggregate{Child: child.op, Groups: groups, Aggs: aggs, Out: outSchema}
	if structural {
		op.GroupCols = groupCols
	}
	outRows := 1.0
	if len(groups) > 0 {
		outRows = math.Min(child.rows, math.Max(1, child.rows/10))
	}
	node := &plan.Node{
		Op: shape.aggOp, Engine: shape.engine,
		Cost: child.node.Cost + shape.costAgg(child.rows),
		Rows: outRows, Children: []*plan.Node{child.node},
	}
	return built{op: op, node: node, rows: outRows, parChunks: child.parChunks}, nil
}

// orderKeys compiles ORDER BY terms against the current schema. In
// aggregated context, AggExpr terms resolve to matching output columns.
func orderKeys(a *analysis, s exec.Schema, agged bool) ([]exec.SortKey, error) {
	var keys []exec.SortKey
	for _, o := range a.sel.OrderBy {
		var ev exec.Evaluator
		if agged {
			if ax, ok := o.Expr.(*sqlparser.AggExpr); ok {
				name := strings.ToLower(ax.String())
				idx := -1
				for i, c := range s {
					if c.Name == name {
						idx = i
						break
					}
				}
				if idx < 0 {
					return nil, fmt.Errorf("optimizer: ORDER BY aggregate %s not in select list", ax)
				}
				j := idx
				ev = func(row value.Row) (value.Value, error) { return row[j], nil }
				keys = append(keys, exec.SortKey{Eval: ev, Desc: o.Desc})
				continue
			}
			if ref, ok := o.Expr.(*sqlparser.ColumnRef); ok {
				// resolve by bare name or alias against aggregate output
				idx := -1
				for i, c := range s {
					if strings.EqualFold(c.Name, ref.Column) {
						idx = i
						break
					}
				}
				if idx >= 0 {
					j := idx
					keys = append(keys, exec.SortKey{
						Eval: func(row value.Row) (value.Value, error) { return row[j], nil },
						Desc: o.Desc,
					})
					continue
				}
			}
		}
		cev, err := exec.Compile(o.Expr, s)
		if err != nil {
			return nil, err
		}
		ev = cev
		keys = append(keys, exec.SortKey{Eval: ev, Desc: o.Desc})
	}
	return keys, nil
}

// buildOrdering plans ORDER BY (+ LIMIT as Top-N when present).
func buildOrdering(a *analysis, shape engineShape, child built, agged bool) (built, error) {
	keys, err := orderKeys(a, child.op.Schema(), agged)
	if err != nil {
		return built{}, err
	}
	sel := a.sel
	if sel.Limit >= 0 {
		op := &exec.TopNOp{Child: child.op, Keys: keys, N: sel.Limit, Offset: sel.Offset}
		outRows := math.Min(child.rows, float64(sel.Limit))
		node := &plan.Node{
			Op: plan.OpTopN, Engine: shape.engine,
			Cost:      child.node.Cost + shape.costTopN(child.rows, sel.Limit+sel.Offset),
			Rows:      outRows,
			Condition: fmt.Sprintf("limit %d offset %d", sel.Limit, sel.Offset),
			Children:  []*plan.Node{child.node},
		}
		return built{op: op, node: node, rows: outRows, parChunks: child.parChunks}, nil
	}
	op := &exec.SortOp{Child: child.op, Keys: keys}
	node := &plan.Node{
		Op: plan.OpSort, Engine: shape.engine,
		Cost: child.node.Cost + shape.costSort(child.rows),
		Rows: child.rows, Children: []*plan.Node{child.node},
	}
	return built{op: op, node: node, rows: child.rows, parChunks: child.parChunks}, nil
}

// buildLimit plans LIMIT/OFFSET without ordering.
func buildLimit(sel *sqlparser.Select, shape engineShape, child built) built {
	op := &exec.LimitOp{Child: child.op, N: sel.Limit, Offset: sel.Offset}
	outRows := math.Min(child.rows, float64(sel.Limit))
	node := &plan.Node{
		Op: plan.OpLimit, Engine: shape.engine,
		Cost:      child.node.Cost,
		Rows:      outRows,
		Condition: fmt.Sprintf("limit %d offset %d", sel.Limit, sel.Offset),
		Children:  []*plan.Node{child.node},
	}
	return built{op: op, node: node, rows: outRows, parChunks: child.parChunks}
}

// projectAggOutput reorders the aggregate output into select-list order.
func projectAggOutput(a *analysis, child built) (built, error) {
	s := child.op.Schema()
	var evals []exec.Evaluator
	var out exec.Schema
	for _, it := range a.sel.Items {
		var name string
		if ax, ok := it.Expr.(*sqlparser.AggExpr); ok {
			name = it.Alias
			if name == "" {
				name = strings.ToLower(ax.String())
			}
		} else if ref, ok := it.Expr.(*sqlparser.ColumnRef); ok {
			name = ref.Column
		} else {
			name = strings.ToLower(it.Expr.String())
		}
		idx := -1
		for i, c := range s {
			if strings.EqualFold(c.Name, name) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return built{}, fmt.Errorf("optimizer: select item %q is neither aggregated nor grouped", it)
		}
		j := idx
		evals = append(evals, func(row value.Row) (value.Value, error) { return row[j], nil })
		out = append(out, exec.Col{Name: name, Type: s[j].Type, Binding: s[j].Binding})
	}
	// identity projection: skip the operator if order already matches
	if len(evals) == len(s) {
		same := true
		for i := range out {
			if out[i].Name != s[i].Name {
				same = false
				break
			}
		}
		if same {
			return child, nil
		}
	}
	op := &exec.ProjectOp{Child: child.op, Evals: evals, Out: out}
	return built{op: op, node: child.node, rows: child.rows, parChunks: child.parChunks}, nil
}

// projectPlain plans the select list of a non-aggregated query.
func projectPlain(a *analysis, child built) (built, error) {
	if len(a.sel.Items) == 1 && a.sel.Items[0].Star {
		return child, nil
	}
	s := child.op.Schema()
	var evals []exec.Evaluator
	var out exec.Schema
	for _, it := range a.sel.Items {
		if it.Star {
			for i, c := range s {
				j := i
				evals = append(evals, func(row value.Row) (value.Value, error) { return row[j], nil })
				out = append(out, c)
			}
			continue
		}
		ev, err := exec.Compile(it.Expr, s)
		if err != nil {
			return built{}, err
		}
		evals = append(evals, ev)
		name := it.Alias
		binding := ""
		typ := catalog.TypeString
		if ref, ok := it.Expr.(*sqlparser.ColumnRef); ok {
			if name == "" {
				name = ref.Column
			}
			binding = ref.Table
			if idx, err := s.Resolve(ref); err == nil {
				typ = s[idx].Type
			}
		} else if name == "" {
			name = strings.ToLower(it.Expr.String())
		}
		out = append(out, exec.Col{Binding: binding, Name: name, Type: typ})
	}
	op := &exec.ProjectOp{Child: child.op, Evals: evals, Out: out}
	return built{op: op, node: child.node, rows: child.rows, parChunks: child.parChunks}, nil
}

// condString renders a conjunction for EXPLAIN display.
func condString(preds []sqlparser.Expr) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}

// neededColumns returns the table column positions of binding b referenced
// anywhere in the query (projection pushdown for the column store).
// Star selects force all columns.
func neededColumns(a *analysis, t boundTable) []int {
	all := false
	for _, it := range a.sel.Items {
		if it.Star {
			all = true
		}
	}
	if all {
		out := make([]int, len(t.meta.Columns))
		for i := range out {
			out[i] = i
		}
		return out
	}
	set := map[int]bool{}
	addRefs := func(e sqlparser.Expr) {
		for _, ref := range sqlparser.ColumnsIn(e) {
			if ref.Table != t.binding {
				continue
			}
			if i := t.meta.ColumnIndex(ref.Column); i >= 0 {
				set[i] = true
			}
		}
	}
	for _, it := range a.sel.Items {
		addRefs(it.Expr)
	}
	addRefs(a.sel.Where)
	for _, g := range a.sel.GroupBy {
		addRefs(g)
	}
	for _, o := range a.sel.OrderBy {
		addRefs(o.Expr)
	}
	if len(set) == 0 {
		set[0] = true // COUNT(*)-only queries still need one column to scan
	}
	out := make([]int, 0, len(set))
	for i := 0; i < len(t.meta.Columns); i++ {
		if set[i] {
			out = append(out, i)
		}
	}
	return out
}

// zonePruner derives a zone-map pruner from the binding's sargable
// predicate when its column is among the scanned columns. Works without
// any index — zone maps are a column-store feature.
func zonePruner(a *analysis, t boundTable, cols []int) *colstore.RangePruner {
	s := extractSargable2(a, t)
	if s == nil {
		return nil
	}
	colPos := t.meta.ColumnIndex(s.column)
	if colPos < 0 {
		return nil
	}
	toValue := func(e sqlparser.Expr) (value.Value, bool) {
		switch l := e.(type) {
		case *sqlparser.IntLit:
			return value.NewInt(l.V), true
		case *sqlparser.FloatLit:
			return value.NewFloat(l.V), true
		case *sqlparser.StringLit:
			return value.NewString(l.V), true
		default:
			return value.Value{}, false
		}
	}
	pr := &colstore.RangePruner{Col: colPos, LoStrict: s.loStrict, HiStrict: s.hiStrict}
	switch {
	case len(s.keys) == 1:
		v, ok := toValue(s.keys[0])
		if !ok {
			return nil
		}
		pr.Lo, pr.Hi = &v, &v
	case s.lo != nil || s.hi != nil:
		if s.lo != nil {
			v, ok := toValue(s.lo)
			if !ok {
				return nil
			}
			pr.Lo = &v
		}
		if s.hi != nil {
			v, ok := toValue(s.hi)
			if !ok {
				return nil
			}
			pr.Hi = &v
		}
	default:
		return nil
	}
	// the pruner is an exact predicate stand-in when the sargable conjunct
	// is the table's whole predicate: chunk-level RangeSel then decides
	// row membership and the compiled predicate never runs on base chunks
	pr.Exact = len(a.tablePreds[t.binding]) == 1
	return pr
}

// extractSargable2 is extractSargable without the index requirement
// (zone-map pruning applies to unindexed columns too).
func extractSargable2(a *analysis, t boundTable) *sargable {
	var best *sargable
	consider := func(s *sargable) {
		if best == nil || s.sel < best.sel {
			best = s
		}
	}
	for _, p := range a.tablePreds[t.binding] {
		switch x := p.(type) {
		case *sqlparser.BinaryExpr:
			ref, lok := x.Left.(*sqlparser.ColumnRef)
			if !lok || !isLiteral(x.Right) {
				continue
			}
			switch x.Op {
			case sqlparser.OpEq:
				consider(&sargable{column: ref.Column, keys: []sqlparser.Expr{x.Right}, sel: selectivity(a, p), pred: p})
			case sqlparser.OpGt, sqlparser.OpGe:
				consider(&sargable{column: ref.Column, lo: x.Right, loStrict: x.Op == sqlparser.OpGt,
					sel: selectivity(a, p), pred: p})
			case sqlparser.OpLt, sqlparser.OpLe:
				consider(&sargable{column: ref.Column, hi: x.Right, hiStrict: x.Op == sqlparser.OpLt,
					sel: selectivity(a, p), pred: p})
			}
		case *sqlparser.BetweenExpr:
			ref, ok := x.Expr.(*sqlparser.ColumnRef)
			if !ok || !isLiteral(x.Lo) || !isLiteral(x.Hi) {
				continue
			}
			consider(&sargable{column: ref.Column, lo: x.Lo, hi: x.Hi, sel: selectivity(a, p), pred: p})
		}
	}
	return best
}
