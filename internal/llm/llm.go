// Package llm defines the language-model interface the explainer steers,
// plus offline *simulated* pre-trained models ("doubao-sim",
// "chatgpt4-sim") standing in for the paper's proprietary LLM APIs
// (DESIGN.md documents the substitution). The simulated models consume the
// rendered prompt text exactly as a real LLM would: they ground their
// answer in the retrieved KNOWLEDGE sections when present (RAG mode) and
// fall back to surface-feature priors with the paper's documented
// un-grounded failure modes (cost comparison, index misattribution,
// column-storage overemphasis) when knowledge is absent. Accuracy is
// therefore *emergent from retrieval quality*, which is exactly the
// property the paper's experiments measure.
package llm

import (
	"hash/fnv"
	"time"
)

// Response is one model generation.
type Response struct {
	Text string
	// None reports the model declined ("If the KNOWLEDGE does not
	// contain the facts ... return None").
	None bool
	// ThinkTime and GenTime model the paper's reported latency envelope
	// (§VI-B: thinking ≤ 2 s, generation ≈ 10 s). They are modeled, not
	// slept, so experiments run fast.
	ThinkTime time.Duration
	GenTime   time.Duration
}

// Model is a pre-trained language model.
type Model interface {
	Name() string
	Generate(prompt string) (Response, error)
}

// hash01 maps a string deterministically into [0,1) — the simulated
// models' source of "sampling" randomness.
func hash01(seed int64, s string) float64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(s))
	return float64(h.Sum64()%1_000_000) / 1_000_000
}

// thinkLatency models prompt-processing time: longer prompts (more
// retrieved knowledge) take longer, capped at the paper's ≈2 s.
func thinkLatency(promptLen int) time.Duration {
	t := 300*time.Millisecond + time.Duration(promptLen/16)*time.Microsecond*8
	if t > 2*time.Second {
		t = 2 * time.Second
	}
	return t
}

// genLatency models token generation: ≈10 s for a typical explanation.
func genLatency(textLen int) time.Duration {
	t := 5*time.Second + time.Duration(textLen)*12*time.Millisecond
	if t > 16*time.Second {
		t = 16 * time.Second
	}
	return t
}
