package llm

import (
	"strings"
	"testing"
	"time"

	"htapxplain/internal/expert"
	"htapxplain/internal/knowledge"
	"htapxplain/internal/plan"
	"htapxplain/internal/prompt"
)

func question(winner plan.Engine, sql, tpPlan, apPlan string) prompt.Question {
	return prompt.Question{SQL: sql, TPPlanJSON: tpPlan, APPlanJSON: apPlan,
		Winner: winner, Speedup: 10}
}

func hit(winner plan.Engine, explanation string, dist float64) knowledge.Hit {
	return knowledge.Hit{Entry: &knowledge.Entry{
		SQL: "historical query", TPPlanJSON: "{}", APPlanJSON: "{}",
		Winner: winner, Speedup: 5, Explanation: explanation,
	}, Distance: dist}
}

// joinQuestion is an Example-1-shaped question: AP wins, TP nested loops,
// AP hash joins, function-wrapped predicate.
func joinQuestion() prompt.Question {
	return question(plan.AP,
		"SELECT COUNT(*) FROM customer, orders WHERE SUBSTRING(c_phone, 1, 2) IN ('20') AND o_custkey = c_custkey",
		`{"Node Type":"Nested loop inner join"}`,
		`{"Node Type":"Inner hash join"}`)
}

func TestParsePromptRoundTrip(t *testing.T) {
	b := prompt.NewBuilder("schema")
	b.UserContext = "an index has been created on c_phone"
	hits := []knowledge.Hit{
		hit(plan.AP, "hash join beats nested loop; no index available", 0.01),
		hit(plan.TP, "index order wins", 0.3),
	}
	text := b.Build(hits, joinQuestion())
	p := parsePrompt(text)
	if !p.guardrail {
		t.Error("guardrail not detected")
	}
	if !strings.Contains(p.userCtx, "c_phone") {
		t.Errorf("user context = %q", p.userCtx)
	}
	if len(p.knowledge) != 2 {
		t.Fatalf("knowledge sections = %d", len(p.knowledge))
	}
	if p.knowledge[0].winner != plan.AP || !p.knowledge[0].hasWinner {
		t.Errorf("knowledge[0] winner = %+v", p.knowledge[0])
	}
	if p.knowledge[0].distance != 0.01 {
		t.Errorf("knowledge[0] distance = %v", p.knowledge[0].distance)
	}
	if !strings.Contains(p.knowledge[0].explanation, "hash join") {
		t.Errorf("knowledge[0] explanation = %q", p.knowledge[0].explanation)
	}
	if p.question.winner != plan.AP || !p.question.hasWinner {
		t.Errorf("question winner = %+v", p.question)
	}
	if p.question.speedup != 10 {
		t.Errorf("question speedup = %v", p.question.speedup)
	}
}

func TestGroundedGenerationUsesRetrievedFactors(t *testing.T) {
	b := prompt.NewBuilder("s")
	hits := []knowledge.Hit{hit(plan.AP, "TP has to use nested loop joins while AP uses hash join.", 0.001)}
	text := b.Build(hits, joinQuestion())
	resp, err := Doubao().Generate(text)
	if err != nil {
		t.Fatal(err)
	}
	if resp.None {
		t.Fatalf("grounded generation returned None: %q", resp.Text)
	}
	lower := strings.ToLower(resp.Text)
	if !strings.Contains(lower, "hash join") || !strings.Contains(lower, "nested loop") {
		t.Errorf("output missing retrieved factors: %q", resp.Text)
	}
	if !strings.Contains(lower, "ap is faster") {
		t.Errorf("output should name the winner: %q", resp.Text)
	}
}

func TestGroundedReturnsNoneWithoutApplicableKnowledge(t *testing.T) {
	b := prompt.NewBuilder("s")
	// retrieved knowledge asserts only TP-winner factors; the question's
	// winner is AP with no joins at all — nothing applies
	hits := []knowledge.Hit{hit(plan.TP, "TP reads rows in index order, already sorted.", 0.4)}
	q := question(plan.AP, "SELECT COUNT(*) FROM orders", `{"Node Type":"Table Scan"}`, `{"Node Type":"Table Scan"}`)
	resp, err := Doubao().Generate(b.Build(hits, q))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.None {
		t.Errorf("expected None, got %q", resp.Text)
	}
}

func TestGroundedRejectsInapplicableFactors(t *testing.T) {
	b := prompt.NewBuilder("s")
	// knowledge asserts hash-join advantage but the question has no joins
	hits := []knowledge.Hit{
		hit(plan.AP, "TP has to use nested loop joins while AP uses hash join.", 0.001),
		hit(plan.AP, "AP's column-oriented storage scans only the referenced columns.", 0.001),
	}
	q := question(plan.AP, "SELECT COUNT(*) FROM orders", `{"Node Type":"Table Scan"}`, `{"Node Type":"Aggregate"}`)
	resp, err := Doubao().Generate(b.Build(hits, q))
	if err != nil {
		t.Fatal(err)
	}
	if resp.None {
		t.Fatalf("columnar factor applies; should not be None")
	}
	if strings.Contains(strings.ToLower(resp.Text), "hash join") {
		t.Errorf("inapplicable hash-join factor asserted: %q", resp.Text)
	}
}

func TestUngroundedFailureModes(t *testing.T) {
	// no knowledge sections → un-grounded path with documented failures
	b := prompt.NewBuilder("s")
	b.IncludeGuardrail = false
	b.IncludeRAG = false
	costComparisons := 0
	for i := 0; i < 40; i++ {
		q := question(plan.AP,
			"SELECT COUNT(*) FROM orders WHERE o_x = "+strings.Repeat("x", i),
			`{"Node Type":"Table Scan"}`, `{"Node Type":"Aggregate"}`)
		resp, err := ChatGPT4().Generate(b.Build(nil, q))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(strings.ToLower(resp.Text), "comparing the costs") {
			costComparisons++
		}
	}
	// without the guardrail the model compares costs most of the time
	if costComparisons < 15 {
		t.Errorf("cost comparisons without guardrail = %d/40, expected frequent", costComparisons)
	}
}

func TestGuardrailReducesCostComparisons(t *testing.T) {
	count := func(guard bool) int {
		b := prompt.NewBuilder("s")
		b.IncludeGuardrail = guard
		b.IncludeRAG = false
		n := 0
		for i := 0; i < 60; i++ {
			q := question(plan.AP,
				"SELECT COUNT(*) FROM orders WHERE k = "+strings.Repeat("y", i),
				`{"Node Type":"Table Scan"}`, `{"Node Type":"Aggregate"}`)
			resp, err := Doubao().Generate(b.Build(nil, q))
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(strings.ToLower(resp.Text), "comparing the costs") {
				n++
			}
		}
		return n
	}
	with, without := count(true), count(false)
	if with >= without {
		t.Errorf("guardrail should reduce cost comparisons: with=%d without=%d", with, without)
	}
	if with == 0 {
		t.Error("the paper observed residual cost comparisons despite the instruction")
	}
}

func TestIndexMisattributionOnFunctionWrappedPredicates(t *testing.T) {
	b := prompt.NewBuilder("s")
	b.IncludeRAG = false
	b.UserContext = "an additional index has been created on the c_phone column"
	misattributions := 0
	for i := 0; i < 40; i++ {
		q := question(plan.AP,
			"SELECT COUNT(*) FROM customer WHERE SUBSTRING(c_phone, 1, 2) IN ('20') AND pad = "+strings.Repeat("z", i),
			`{"Node Type":"Table Scan"}`, `{"Node Type":"Aggregate"}`)
		resp, err := Doubao().Generate(b.Build(nil, q))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(strings.ToLower(resp.Text), "benefit from the index") {
			misattributions++
		}
	}
	if misattributions == 0 {
		t.Error("un-grounded model should sometimes misattribute the unusable index (paper §VI-D)")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	b := prompt.NewBuilder("s")
	text := b.Build([]knowledge.Hit{hit(plan.AP, "hash join beats nested loop", 0.01)}, joinQuestion())
	m := Doubao()
	r1, err := m.Generate(text)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.Generate(text)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Text != r2.Text {
		t.Error("generation must be deterministic for identical prompts")
	}
}

func TestLatencyEnvelope(t *testing.T) {
	b := prompt.NewBuilder("s")
	b.IncludeRAG = false
	resp, err := Doubao().Generate(b.Build(nil, joinQuestion()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.ThinkTime <= 0 || resp.ThinkTime > 2*time.Second {
		t.Errorf("think time %v outside (0, 2s]", resp.ThinkTime)
	}
	if resp.GenTime <= 0 || resp.GenTime > 16*time.Second {
		t.Errorf("gen time %v outside (0, 16s]", resp.GenTime)
	}
}

func TestModelNames(t *testing.T) {
	if Doubao().Name() != "doubao-sim" || ChatGPT4().Name() != "chatgpt4-sim" {
		t.Error("model names wrong")
	}
}

func TestAggregationBonusInsight(t *testing.T) {
	// the paper notes the LLM volunteered aggregation efficiency beyond
	// the expert's text — reproduce: group-by question + agg-mentioning
	// knowledge must surface the aggregation remark
	b := prompt.NewBuilder("s")
	hits := []knowledge.Hit{hit(plan.AP,
		"TP has to use nested loop joins while AP uses hash join. AP's hash aggregates digest the large intermediate result efficiently.", 0.001)}
	q := question(plan.AP,
		"SELECT c_mktsegment, COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey GROUP BY c_mktsegment",
		`{"Node Type":"Nested loop inner join"}`,
		`{"Node Type":"Aggregate","Plans":[{"Node Type":"Inner hash join"}]}`)
	resp, err := Doubao().Generate(b.Build(hits, q))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(resp.Text), "aggregat") {
		t.Errorf("aggregation insight missing: %q", resp.Text)
	}
	_ = expert.FactorAggregationPushdown
}
