package llm

import (
	"strconv"
	"strings"

	"htapxplain/internal/plan"
	"htapxplain/internal/prompt"
)

// parsedKnowledge is one KNOWLEDGE section as the model reads it.
type parsedKnowledge struct {
	sql         string
	winner      plan.Engine
	hasWinner   bool
	distance    float64
	explanation string
}

// parsedQuestion is the QUESTION section.
type parsedQuestion struct {
	sql       string
	tpPlan    string
	apPlan    string
	winner    plan.Engine
	hasWinner bool
	speedup   float64
}

// parsedPrompt is the model's structured reading of the prompt text.
type parsedPrompt struct {
	guardrail bool
	userCtx   string
	knowledge []parsedKnowledge
	question  parsedQuestion
}

// parsePrompt splits the rendered prompt back into its sections.
func parsePrompt(text string) parsedPrompt {
	var p parsedPrompt
	p.guardrail = strings.Contains(text, "not allowed to compare")

	if i := strings.Index(text, prompt.MarkerUserCtx); i >= 0 {
		rest := text[i+len(prompt.MarkerUserCtx):]
		if j := strings.Index(rest, "==="); j >= 0 {
			p.userCtx = strings.TrimSpace(rest[:j])
		} else {
			p.userCtx = strings.TrimSpace(rest)
		}
	}

	// knowledge sections
	rest := text
	for {
		i := strings.Index(rest, prompt.MarkerKnowledge)
		if i < 0 {
			break
		}
		rest = rest[i+len(prompt.MarkerKnowledge):]
		end := strings.Index(rest, "=== ")
		section := rest
		if end >= 0 {
			section = rest[:end]
		}
		k := parsedKnowledge{
			sql:         fieldValue(section, "query:"),
			explanation: fieldValue(section, "explanation:"),
		}
		if w, ok := parseResult(fieldValue(section, "result:")); ok {
			k.winner, k.hasWinner = w, true
		}
		if d, err := strconv.ParseFloat(fieldValue(section, "similarity_distance:"), 64); err == nil {
			k.distance = d
		}
		p.knowledge = append(p.knowledge, k)
		if end < 0 {
			break
		}
		rest = rest[end:]
	}

	if i := strings.Index(text, prompt.MarkerQuestion); i >= 0 {
		section := text[i+len(prompt.MarkerQuestion):]
		p.question = parsedQuestion{
			sql:    fieldValue(section, "query:"),
			tpPlan: fieldValue(section, "tp_plan:"),
			apPlan: fieldValue(section, "ap_plan:"),
		}
		if w, ok := parseResult(fieldValue(section, "result:")); ok {
			p.question.winner, p.question.hasWinner = w, true
		}
		if sp := fieldValue(section, "result:"); sp != "" {
			if j := strings.Index(sp, "("); j >= 0 {
				if k := strings.Index(sp[j:], "x)"); k >= 0 {
					if v, err := strconv.ParseFloat(sp[j+1:j+k], 64); err == nil {
						p.question.speedup = v
					}
				}
			}
		}
	}
	return p
}

// fieldValue extracts "<key> value" up to end of line within a section.
func fieldValue(section, key string) string {
	i := strings.Index(section, key)
	if i < 0 {
		return ""
	}
	rest := section[i+len(key):]
	if j := strings.IndexByte(rest, '\n'); j >= 0 {
		rest = rest[:j]
	}
	return strings.TrimSpace(rest)
}

// parseResult reads "AP faster (12.3x)" / "TP faster ...".
func parseResult(s string) (plan.Engine, bool) {
	ls := strings.ToLower(s)
	switch {
	case strings.HasPrefix(ls, "ap"):
		return plan.AP, true
	case strings.HasPrefix(ls, "tp"):
		return plan.TP, true
	default:
		return plan.TP, false
	}
}
