package llm

import (
	"strings"

	"htapxplain/internal/plan"
	"htapxplain/internal/prompt"
)

// followUpQuestion extracts the last follow-up question from a
// conversational prompt, or "" when the prompt is not conversational.
func followUpQuestion(text string) string {
	i := strings.LastIndex(text, prompt.MarkerFollowUp)
	if i < 0 {
		return ""
	}
	rest := text[i+len(prompt.MarkerFollowUp):]
	if j := strings.Index(rest, "==="); j >= 0 {
		rest = rest[:j]
	}
	return strings.TrimSpace(rest)
}

// answerFollowUp produces the in-depth conversational answer (§VI-B). It
// is grounded in the question's own surface features, reproducing the
// paper's example: asked why the predicate on customer does not benefit
// from the index on c_phone, the LLM explains that functions applied to
// indexed columns disable index usage.
func (m *Sim) answerFollowUp(p parsedPrompt, question string) string {
	q := strings.ToLower(question)
	sql := strings.ToLower(p.question.sql)
	switch {
	case strings.Contains(q, "index") && (hasFunctionWrappedPredicate(sql) ||
		strings.Contains(q, "substring") || strings.Contains(q, "function")):
		return "Many database systems cannot utilize indexes on columns when functions " +
			"like SUBSTRING are applied directly to the indexed column: the index orders " +
			"the original column values, not the function's output, so the engine cannot " +
			"navigate the index to the qualifying rows and falls back to scanning. " +
			"Rewriting the predicate as a range over the raw column (for example, " +
			"c_phone >= '20' AND c_phone < '21' for each code) would restore index eligibility."
	case strings.Contains(q, "index"):
		return "An index helps only when the predicate compares the indexed column " +
			"directly with values, and when the expected match count is small enough " +
			"that random row fetches beat a sequential scan. Otherwise the optimizer " +
			"correctly prefers scanning."
	case strings.Contains(q, "offset") || strings.Contains(q, "limit"):
		return "LIMIT bounds the rows returned, but OFFSET rows must still be produced " +
			"and discarded first. A small OFFSET is nearly free; a large one erodes the " +
			"Top-N shortcut because the engine does OFFSET+LIMIT worth of work before " +
			"returning anything — whether that matters depends on its magnitude relative " +
			"to the qualifying set."
	case strings.Contains(q, "cost"):
		return "The cost numbers in the two plans are computed by different optimizers " +
			"with different units and calibration, so they are not comparable across " +
			"engines; only within one engine's plan do relative costs mean anything."
	case strings.Contains(q, "hash join") || strings.Contains(q, "nested loop") || strings.Contains(q, "join"):
		return "A nested loop join re-visits the inner side once per outer row — ideal " +
			"when an index makes each visit a cheap point lookup, but quadratic without " +
			"one. A hash join builds a hash table on the smaller side once and probes it " +
			"per row of the larger side, which scales far better for large qualifying sets."
	case strings.Contains(q, "column") || strings.Contains(q, "storage"):
		return "Row-oriented storage lays each tuple out contiguously, making single-row " +
			"retrieval cheap; column-oriented storage lays each column out contiguously, " +
			"so analytical scans read only the referenced columns and vectorize well."
	default:
		w := "AP"
		if p.question.hasWinner && p.question.winner == plan.TP {
			w = "TP"
		}
		return "Based on the plans discussed above, the decisive characteristics are the " +
			"join methods, index usability and storage formats already covered; they are " +
			"why the " + w + " engine wins this query. Could you point at the specific " +
			"operator you would like unpacked further?"
	}
}
