package llm

import (
	"fmt"
	"math"
	"strings"

	"htapxplain/internal/expert"
	"htapxplain/internal/plan"
)

// SimConfig parameterizes a simulated pre-trained model. The failure
// rates calibrate the *un-grounded* behaviour (no KNOWLEDGE in the
// prompt); with RAG grounding the model composes from retrieved expert
// explanations and the rates are irrelevant.
type SimConfig struct {
	ModelName string
	Seed      int64
	// CostComparisonRate is the probability of comparing cost estimates
	// despite the guardrail instruction (the paper observed DBG-PT
	// "still seems to rely on cost differences sometimes").
	CostComparisonRate float64
	// CostComparisonRateNoGuardrail applies when the prompt lacks the
	// prohibition (the paper observed pre-trained LLMs "often default to
	// directly comparing the plan costs").
	CostComparisonRateNoGuardrail float64
	// IndexMisattributionRate is the probability of crediting an index
	// that cannot actually be used (function-wrapped column).
	IndexMisattributionRate float64
	// MinGroundingWeight is the evidence threshold below which the model
	// returns None in RAG mode.
	MinGroundingWeight float64
}

// Doubao returns the simulated Doubao model with the paper-calibrated
// un-grounded failure rates.
func Doubao() *Sim {
	return NewSim(SimConfig{
		ModelName:                     "doubao-sim",
		Seed:                          11,
		CostComparisonRate:            0.15,
		CostComparisonRateNoGuardrail: 0.70,
		IndexMisattributionRate:       0.45,
		MinGroundingWeight:            0.35,
	})
}

// ChatGPT4 returns the simulated ChatGPT-4.0 model; slightly different
// style and rates (the paper observed "minimal differences in accuracy"
// between the two).
func ChatGPT4() *Sim {
	return NewSim(SimConfig{
		ModelName:                     "chatgpt4-sim",
		Seed:                          23,
		CostComparisonRate:            0.12,
		CostComparisonRateNoGuardrail: 0.65,
		IndexMisattributionRate:       0.40,
		MinGroundingWeight:            0.35,
	})
}

// Sim is a simulated pre-trained LLM.
type Sim struct {
	cfg SimConfig
}

// NewSim constructs a simulated model.
func NewSim(cfg SimConfig) *Sim { return &Sim{cfg: cfg} }

// Name returns the model name.
func (m *Sim) Name() string { return m.cfg.ModelName }

// Generate produces an explanation from the prompt. With KNOWLEDGE
// sections present it runs grounded (RAG) generation; otherwise it falls
// back to un-grounded priors with the documented failure modes.
func (m *Sim) Generate(text string) (Response, error) {
	p := parsePrompt(text)
	var out string
	var none bool
	switch {
	case followUpQuestion(text) != "":
		out = m.answerFollowUp(p, followUpQuestion(text))
	case len(p.knowledge) > 0:
		out, none = m.grounded(p)
	case strings.Contains(text, "return None"):
		// a RAG prompt whose retrieval produced nothing: the instruction
		// itself demands None
		out, none = "None", true
	default:
		out = m.ungrounded(p)
	}
	return Response{
		Text:      out,
		None:      none,
		ThinkTime: thinkLatency(len(text)),
		GenTime:   genLatency(len(out)),
	}, nil
}

// ---------------------------------------------------------------- grounded

// allFactors is the factor vocabulary the model can express.
var allFactors = []expert.Factor{
	expert.FactorHashJoinAdvantage, expert.FactorNoUsableIndex,
	expert.FactorIndexPointLookup, expert.FactorIndexOrderTopN,
	expert.FactorColumnarScan, expert.FactorLargeScanVolume,
	expert.FactorStartupOverhead, expert.FactorSortVsIndexOrder,
	expert.FactorDeepOffset, expert.FactorAggregationPushdown,
}

// grounded composes an explanation from the retrieved expert knowledge:
// extract factors asserted by similar historical explanations, keep those
// applicable to the question's plans, and verbalize. Returns None when the
// applicable evidence is too weak — the paper's §III-B footnote semantics.
func (m *Sim) grounded(p parsedPrompt) (string, bool) {
	if !p.question.hasWinner {
		return "None", true
	}
	scores := map[expert.Factor]float64{}
	for rank, k := range p.knowledge {
		w := 1.0 / float64(rank+1)
		// sharply discount dissimilar knowledge — the encoding is not
		// perfect (§VI-B), and the model should not trust far neighbours.
		// The exponential kernel rescales the compressed cosine-distance
		// range of the router's tanh embeddings.
		w *= math.Exp(-k.distance / 0.08)
		if k.hasWinner && k.winner != p.question.winner {
			w *= 0.2
		}
		lowerExpl := strings.ToLower(k.explanation)
		for _, f := range allFactors {
			if containsFactor(lowerExpl, f) {
				scores[f] += w
			}
		}
	}
	// filter by applicability to the question's own plans
	type scored struct {
		f expert.Factor
		s float64
	}
	var applicable []scored
	for _, f := range allFactors { // deterministic order
		s, ok := scores[f]
		if !ok || s < 0.15 { // too weakly evidenced to assert
			continue
		}
		if factorApplies(f, p.question, p.userCtx) {
			applicable = append(applicable, scored{f, s})
		}
	}
	if len(applicable) == 0 {
		return "None", true
	}
	// sort by score descending (stable: insertion order is deterministic)
	for i := 0; i < len(applicable); i++ {
		for j := i + 1; j < len(applicable); j++ {
			if applicable[j].s > applicable[i].s {
				applicable[i], applicable[j] = applicable[j], applicable[i]
			}
		}
	}
	// gate on the strongest single factor's evidence: one weakly-similar
	// neighbour asserting many factors is not corroboration
	if applicable[0].s < m.cfg.MinGroundingWeight {
		return "None", true
	}
	primary := applicable[0].f
	var secondary []expert.Factor
	for _, a := range applicable[1:] {
		if len(secondary) == 3 {
			break
		}
		secondary = append(secondary, a.f)
	}
	// the paper notes the LLM volunteered aggregation insights the
	// experts omitted — add that bonus observation when the plan shows a
	// grouped aggregation the retrieved knowledge also touched on
	if p.question.winner == plan.AP &&
		strings.Contains(strings.ToLower(p.question.sql), "group by") &&
		scores[expert.FactorAggregationPushdown] > 0 &&
		primary != expert.FactorAggregationPushdown &&
		!hasFactor(secondary, expert.FactorAggregationPushdown) && len(secondary) < 3 {
		secondary = append(secondary, expert.FactorAggregationPushdown)
	}
	return m.compose(p.question, primary, secondary), false
}

func hasFactor(fs []expert.Factor, f expert.Factor) bool {
	for _, x := range fs {
		if x == f {
			return true
		}
	}
	return false
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// containsFactor checks whether the explanation text asserts the factor
// (marker-phrase vocabulary shared with the expert package).
func containsFactor(lowerText string, f expert.Factor) bool {
	for _, phrase := range expert.MarkerPhrases(f) {
		if strings.Contains(lowerText, phrase) {
			return true
		}
	}
	return false
}

// factorApplies checks the factor against the question's own surface
// features — the model will not assert a hash-join advantage for a plan
// pair with no joins, etc.
func factorApplies(f expert.Factor, q parsedQuestion, userCtx string) bool {
	tp := strings.ToLower(q.tpPlan)
	ap := strings.ToLower(q.apPlan)
	sql := strings.ToLower(q.sql)
	switch f {
	case expert.FactorHashJoinAdvantage:
		return q.winner == plan.AP && strings.Contains(tp, "nested loop") && strings.Contains(ap, "hash join")
	case expert.FactorNoUsableIndex:
		return q.winner == plan.AP && (hasFunctionWrappedPredicate(sql) || !strings.Contains(tp, "index"))
	case expert.FactorIndexPointLookup:
		return q.winner == plan.TP && strings.Contains(tp, "index")
	case expert.FactorIndexOrderTopN:
		return q.winner == plan.TP && strings.Contains(tp, "index order")
	case expert.FactorColumnarScan:
		return q.winner == plan.AP
	case expert.FactorLargeScanVolume:
		return q.winner == plan.AP
	case expert.FactorStartupOverhead:
		return q.winner == plan.TP
	case expert.FactorSortVsIndexOrder:
		return strings.Contains(sql, "order by")
	case expert.FactorDeepOffset:
		return strings.Contains(sql, "offset")
	case expert.FactorAggregationPushdown:
		return q.winner == plan.AP && (strings.Contains(ap, "aggregate") || strings.Contains(sql, "group by"))
	default:
		return false
	}
}

// hasFunctionWrappedPredicate detects function-wrapped predicate columns
// in the SQL surface (SUBSTRING(...), UPPER(...), ... in WHERE).
func hasFunctionWrappedPredicate(lowerSQL string) bool {
	for _, fn := range []string{"substring(", "substr(", "upper(", "lower(", "length("} {
		if strings.Contains(lowerSQL, fn) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------- style

// compose renders the grounded explanation in the model's fluent register.
// Marker phrases from the factor vocabulary are embedded so the grader
// measures substance.
func (m *Sim) compose(q parsedQuestion, primary expert.Factor, secondary []expert.Factor) string {
	w, l := "AP", "TP"
	if q.winner == plan.TP {
		w, l = "TP", "AP"
	}
	var b strings.Builder
	style := hash01(m.cfg.Seed, q.sql)
	if style < 0.5 {
		fmt.Fprintf(&b, "%s is faster due to %s", w, fluent(primary, q))
	} else {
		fmt.Fprintf(&b, "%s is faster here primarily because %s", w, fluent(primary, q))
	}
	for i, f := range secondary {
		switch i {
		case 0:
			b.WriteString(" In addition, ")
		case 1:
			b.WriteString(" Moreover, ")
		default:
			b.WriteString(" Finally, ")
		}
		b.WriteString(fluent(f, q))
	}
	fmt.Fprintf(&b, " These factors combined give %s a significant advantage for this query, while %s's plan characteristics work against it at this data size.", w, l)
	return b.String()
}

// fluent renders one factor in LLM style (contains marker phrases).
func fluent(f expert.Factor, q parsedQuestion) string {
	switch f {
	case expert.FactorHashJoinAdvantage:
		return "its use of hash joins, which are highly efficient for handling large datasets, whereas TP's nested loop joins process the inner side once per outer row and scale poorly."
	case expert.FactorNoUsableIndex:
		if hasFunctionWrappedPredicate(strings.ToLower(q.sql)) {
			return "the selective predicate applies a function to the column, which disables index usage — there is no index the TP engine can use, forcing full scans."
		}
		return "there is no index available for the selective predicate, so the TP engine cannot use an index and must scan the table."
	case expert.FactorIndexPointLookup:
		return "TP directly locates the matching rows with a few index lookups (a point lookup on the key), touching almost no data."
	case expert.FactorIndexOrderTopN:
		return "TP reads rows in index order, so results arrive already sorted and only about LIMIT rows are ever fetched."
	case expert.FactorColumnarScan:
		return "its column-oriented storage scans only the referenced columns and applies filters before joining, which is particularly effective on wide tables."
	case expert.FactorLargeScanVolume:
		return "the qualifying data volume is large — millions of rows — which AP's parallel columnar scans digest far faster than row-at-a-time processing."
	case expert.FactorStartupOverhead:
		return "the query touches very little data, so AP's distributed startup overhead dominates its runtime while TP answers this small query immediately."
	case expert.FactorSortVsIndexOrder:
		return "AP must sort the entire qualifying set (a full sort) before the limit applies."
	case expert.FactorDeepOffset:
		return "the large OFFSET forces the engine to produce and discard many rows before returning anything."
	case expert.FactorAggregationPushdown:
		return "AP's hash aggregates digest large intermediate results efficiently, keeping aggregation close to the scan."
	default:
		return string(f) + "."
	}
}

// ---------------------------------------------------------------- ungrounded

// ungrounded is the no-RAG fallback: explain from surface features with
// the documented pre-trained-LLM failure modes. This is the model the
// §VI-D comparison (and the guardrail ablation) exercises.
func (m *Sim) ungrounded(p parsedPrompt) string {
	q := p.question
	sql := strings.ToLower(q.sql)
	tp := strings.ToLower(q.tpPlan)
	ap := strings.ToLower(q.apPlan)

	// winner: use the stated result if present, otherwise guess with a
	// columnar-storage bias (the overemphasis failure mode)
	winner := plan.AP
	if q.hasWinner {
		winner = q.winner
	} else {
		// heuristic guess with a columnar bias: aggregation-shaped queries
		// are presumed AP; index-bearing non-aggregates sometimes TP
		aggregate := strings.Contains(sql, "count(") || strings.Contains(sql, "sum(") ||
			strings.Contains(sql, "avg(") || strings.Contains(sql, "group by")
		if !aggregate && strings.Contains(tp, "index") && hash01(m.cfg.Seed+1, q.sql) < 0.6 {
			winner = plan.TP
		}
	}
	w, l := "AP", "TP"
	if winner == plan.TP {
		w, l = "TP", "AP"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "The %s engine is faster in this case because ", w)
	if winner == plan.AP {
		// overemphasis on column-oriented storage as THE reason
		b.WriteString("it utilizes column-oriented storage, which efficiently scans large tables by only reading the required columns. ")
		if strings.Contains(ap, "hash join") {
			b.WriteString("Additionally, the AP engine uses hash joins, which are well-suited for joining large datasets. ")
		}
	} else {
		b.WriteString("its row-oriented storage retrieves complete rows directly")
		if strings.Contains(tp, "index") {
			b.WriteString(" and it can use the index")
		}
		b.WriteString(". ")
	}
	// failure mode: index misattribution on function-wrapped predicates
	if hasFunctionWrappedPredicate(sql) && mentionsIndexContext(p) &&
		hash01(m.cfg.Seed+2, q.sql) < m.cfg.IndexMisattributionRate {
		b.WriteString("Both engines likely benefit from the index on the filtered column; ")
		fmt.Fprintf(&b, "the %s engine's storage allows it to access and filter that column with less overhead. ", w)
	}
	// failure mode: cost comparison (rate depends on guardrail presence)
	costRate := m.cfg.CostComparisonRateNoGuardrail
	if p.guardrail {
		costRate = m.cfg.CostComparisonRate
	}
	if hash01(m.cfg.Seed+3, q.sql) < costRate {
		fmt.Fprintf(&b, "Comparing the costs, the %s plan shows a lower total cost than the %s plan, supporting this conclusion. ", w, l)
	}
	// failure mode: no context for relative values (OFFSET/LIMIT)
	if strings.Contains(sql, "offset") {
		b.WriteString("The OFFSET clause may or may not be large enough to impact plan efficiency. ")
	}
	fmt.Fprintf(&b, "In contrast, the %s engine's plan characteristics make table access more costly, so the %s engine delivers better performance for this query.", l, w)
	return b.String()
}

// mentionsIndexContext reports whether the prompt suggests an index exists
// on a predicate column (user context like "an index has been created on
// c_phone", or index nodes in the TP plan).
func mentionsIndexContext(p parsedPrompt) bool {
	if strings.Contains(strings.ToLower(p.userCtx), "index") {
		return true
	}
	return strings.Contains(strings.ToLower(p.question.tpPlan), "index")
}
