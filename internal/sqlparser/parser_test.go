package sqlparser

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, sql string) *Select {
	t.Helper()
	sel, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return sel
}

func TestParseSimpleSelect(t *testing.T) {
	sel := mustParse(t, "SELECT a, b FROM t WHERE a = 1")
	if len(sel.Items) != 2 || len(sel.From) != 1 {
		t.Fatalf("unexpected shape: %+v", sel)
	}
	if sel.From[0].Name != "t" {
		t.Errorf("table = %q", sel.From[0].Name)
	}
	be, ok := sel.Where.(*BinaryExpr)
	if !ok || be.Op != OpEq {
		t.Fatalf("where = %v", sel.Where)
	}
}

func TestParseStar(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t")
	if !sel.Items[0].Star {
		t.Error("star not recognized")
	}
}

func TestParseCountStar(t *testing.T) {
	sel := mustParse(t, "SELECT COUNT(*) FROM t")
	agg, ok := sel.Items[0].Expr.(*AggExpr)
	if !ok || agg.Func != AggCount || agg.Arg != nil {
		t.Fatalf("COUNT(*) parsed as %v", sel.Items[0].Expr)
	}
	if !sel.HasAggregate() {
		t.Error("HasAggregate should be true")
	}
}

func TestParseAllAggregates(t *testing.T) {
	sel := mustParse(t, "SELECT COUNT(a), SUM(b), AVG(c), MIN(d), MAX(e) FROM t")
	want := []AggFunc{AggCount, AggSum, AggAvg, AggMin, AggMax}
	for i, it := range sel.Items {
		agg, ok := it.Expr.(*AggExpr)
		if !ok || agg.Func != want[i] {
			t.Errorf("item %d = %v, want %v", i, it.Expr, want[i])
		}
	}
}

func TestParseInList(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE x IN ('p', 'q', 'r')")
	in, ok := sel.Where.(*InExpr)
	if !ok || len(in.List) != 3 || in.Not {
		t.Fatalf("IN parsed as %v", sel.Where)
	}
}

func TestParseNotIn(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE x NOT IN (1, 2)")
	in, ok := sel.Where.(*InExpr)
	if !ok || !in.Not {
		t.Fatalf("NOT IN parsed as %v", sel.Where)
	}
}

func TestParseBetween(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE x BETWEEN 1 AND 10")
	bw, ok := sel.Where.(*BetweenExpr)
	if !ok {
		t.Fatalf("BETWEEN parsed as %v", sel.Where)
	}
	if bw.Lo.(*IntLit).V != 1 || bw.Hi.(*IntLit).V != 10 {
		t.Errorf("bounds: %v .. %v", bw.Lo, bw.Hi)
	}
}

func TestParseLike(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE name LIKE '%foo%'")
	lk, ok := sel.Where.(*LikeExpr)
	if !ok || lk.Pattern != "%foo%" {
		t.Fatalf("LIKE parsed as %v", sel.Where)
	}
}

func TestParseSubstringFunction(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE SUBSTRING(phone, 1, 2) IN ('20')")
	in := sel.Where.(*InExpr)
	fn, ok := in.Expr.(*FuncExpr)
	if !ok || fn.Name != "SUBSTRING" || len(fn.Args) != 3 {
		t.Fatalf("SUBSTRING parsed as %v", in.Expr)
	}
}

func TestParseQualifiedColumns(t *testing.T) {
	sel := mustParse(t, "SELECT t1.a FROM t1, t2 WHERE t1.id = t2.id")
	ref := sel.Items[0].Expr.(*ColumnRef)
	if ref.Table != "t1" || ref.Column != "a" {
		t.Errorf("qualified ref = %v", ref)
	}
}

func TestParseJoinOnFoldsIntoWhere(t *testing.T) {
	a := mustParse(t, "SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y = 1")
	conj := Conjuncts(a.Where)
	if len(conj) != 2 {
		t.Fatalf("conjuncts = %v", conj)
	}
	if len(a.From) != 2 {
		t.Fatalf("from = %v", a.From)
	}
	// INNER JOIN spelling and chained joins
	b := mustParse(t, "SELECT * FROM a INNER JOIN b ON a.x = b.x JOIN c ON b.y = c.y")
	if len(b.From) != 3 || len(Conjuncts(b.Where)) != 2 {
		t.Fatalf("chained join: from=%d where=%v", len(b.From), b.Where)
	}
}

func TestParseGroupOrderLimitOffset(t *testing.T) {
	sel := mustParse(t, `SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY COUNT(*) DESC, a LIMIT 10 OFFSET 5`)
	if len(sel.GroupBy) != 1 || len(sel.OrderBy) != 2 {
		t.Fatalf("group/order: %+v", sel)
	}
	if !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Error("DESC flags wrong")
	}
	if sel.Limit != 10 || sel.Offset != 5 {
		t.Errorf("limit/offset = %d/%d", sel.Limit, sel.Offset)
	}
}

func TestParseNoLimitDefaultsMinusOne(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t")
	if sel.Limit != -1 || sel.Offset != 0 {
		t.Errorf("limit/offset defaults = %d/%d", sel.Limit, sel.Offset)
	}
}

func TestParseAliases(t *testing.T) {
	sel := mustParse(t, "SELECT a AS x, b y FROM t1 AS u, t2 v")
	if sel.Items[0].Alias != "x" || sel.Items[1].Alias != "y" {
		t.Errorf("item aliases: %+v", sel.Items)
	}
	if sel.From[0].Binding() != "u" || sel.From[1].Binding() != "v" {
		t.Errorf("table aliases: %+v", sel.From)
	}
}

func TestParsePrecedenceAndOverOr(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE p = 1 OR q = 2 AND r = 3")
	or, ok := sel.Where.(*BinaryExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("root should be OR: %v", sel.Where)
	}
	and, ok := or.Right.(*BinaryExpr)
	if !ok || and.Op != OpAnd {
		t.Fatalf("right side should be AND: %v", or.Right)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	sel := mustParse(t, "SELECT a + b * c FROM t")
	add := sel.Items[0].Expr.(*BinaryExpr)
	if add.Op != OpAdd {
		t.Fatalf("root op = %v", add.Op)
	}
	if mul, ok := add.Right.(*BinaryExpr); !ok || mul.Op != OpMul {
		t.Fatalf("* should bind tighter: %v", add.Right)
	}
}

func TestParseParenthesesOverridePrecedence(t *testing.T) {
	sel := mustParse(t, "SELECT (a + b) * c FROM t")
	mul := sel.Items[0].Expr.(*BinaryExpr)
	if mul.Op != OpMul {
		t.Fatalf("root op = %v", mul.Op)
	}
}

func TestParseUnaryMinus(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE x > -5")
	be := sel.Where.(*BinaryExpr)
	if lit, ok := be.Right.(*IntLit); !ok || lit.V != -5 {
		t.Fatalf("unary minus: %v", be.Right)
	}
}

func TestParseFloatLiteral(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE x < 2.75")
	be := sel.Where.(*BinaryExpr)
	if lit, ok := be.Right.(*FloatLit); !ok || lit.V != 2.75 {
		t.Fatalf("float literal: %v", be.Right)
	}
}

func TestParseStringEscapedQuote(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE x = 'it''s'")
	be := sel.Where.(*BinaryExpr)
	if lit := be.Right.(*StringLit); lit.V != "it's" {
		t.Errorf("escaped quote: %q", lit.V)
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	mustParse(t, "SELECT a FROM t;")
}

func TestParseNotExpr(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE NOT x = 1")
	if _, ok := sel.Where.(*NotExpr); !ok {
		t.Fatalf("NOT parsed as %v", sel.Where)
	}
}

func TestParseComparisonOperators(t *testing.T) {
	ops := map[string]BinOp{
		"=": OpEq, "<>": OpNe, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	}
	for sym, want := range ops {
		sel := mustParse(t, "SELECT a FROM t WHERE x "+sym+" 1")
		be := sel.Where.(*BinaryExpr)
		if be.Op != want {
			t.Errorf("op %q parsed as %v", sym, be.Op)
		}
		if !be.Op.IsComparison() {
			t.Errorf("%v should be a comparison", be.Op)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t LIMIT -1",
		"SELECT a FROM t ORDER BY",
		"SELECT a FROM t WHERE x IN",
		"SELECT a FROM t WHERE x BETWEEN 1",
		"SELECT a FROM t WHERE x LIKE 5",
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t WHERE 'unterminated",
		"SELECT a FROM t WHERE x = 1 extra garbage",
		"SELECT a FROM t WHERE x @ 1",
		"SELECT a FROM t JOIN u",
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestStringRoundTripReparse(t *testing.T) {
	// String() output must itself parse to an identical String()
	cases := []string{
		"SELECT COUNT(*) FROM customer, nation WHERE n_nationkey = c_nationkey",
		"SELECT a, b FROM t WHERE x IN (1, 2) AND y BETWEEN 1 AND 2 ORDER BY a DESC LIMIT 3 OFFSET 1",
		"SELECT SUBSTRING(p, 1, 2), COUNT(*) FROM t GROUP BY SUBSTRING(p, 1, 2)",
		"SELECT a FROM t WHERE name LIKE 'ab%' OR NOT z = 3",
		"SELECT a + b * c FROM t",
	}
	for _, sql := range cases {
		first := mustParse(t, sql).String()
		second := mustParse(t, first).String()
		if first != second {
			t.Errorf("round trip diverged:\n 1: %s\n 2: %s", first, second)
		}
	}
}

func TestConjunctsAndAndAll(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE p = 1 AND q = 2 AND r = 3")
	conj := Conjuncts(sel.Where)
	if len(conj) != 3 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	re := AndAll(conj)
	if len(Conjuncts(re)) != 3 {
		t.Error("AndAll should rebuild the same conjunction")
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil) should be nil")
	}
}

func TestColumnsInWalksEverything(t *testing.T) {
	sel := mustParse(t, `SELECT SUM(a) FROM t WHERE SUBSTRING(b, 1, 2) IN ('x') AND c BETWEEN d AND e OR NOT f = 1`)
	cols := map[string]bool{}
	for _, ref := range ColumnsIn(sel.Where) {
		cols[ref.Column] = true
	}
	for _, want := range []string{"b", "c", "d", "e", "f"} {
		if !cols[want] {
			t.Errorf("ColumnsIn missed %q (got %v)", want, cols)
		}
	}
	if refs := ColumnsIn(sel.Items[0].Expr); len(refs) != 1 || refs[0].Column != "a" {
		t.Errorf("aggregate arg columns = %v", refs)
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	sel := mustParse(t, "select A from T where X = 1 order by A limit 2")
	if len(sel.Items) != 1 || sel.Limit != 2 {
		t.Fatalf("lowercase keywords failed: %+v", sel)
	}
	// identifiers are lower-cased
	if sel.Items[0].Expr.(*ColumnRef).Column != "a" {
		t.Error("identifiers should normalize to lower case")
	}
}

func TestSelectStringRendering(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE x = 1 GROUP BY a ORDER BY a LIMIT 1 OFFSET 2")
	s := sel.String()
	for _, want := range []string{"SELECT", "FROM", "WHERE", "GROUP BY", "ORDER BY", "LIMIT 1", "OFFSET 2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}
