package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkKeyword
	tkInt
	tkFloat
	tkString
	tkSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents lower-cased; symbols literal
	pos  int    // byte offset in input
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "OFFSET": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "BETWEEN": true, "LIKE": true, "AS": true,
	"ASC": true, "DESC": true, "JOIN": true, "INNER": true, "ON": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"DISTINCT": true,
	// DML
	"INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	// transaction blocks
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true,
}

// lex tokenizes the input. It returns a descriptive error with byte offset
// on any unrecognized character or unterminated string.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= n {
					return nil, fmt.Errorf("sql: unterminated string literal at offset %d", i)
				}
				if input[j] == '\'' {
					// '' escapes a quote
					if j+1 < n && input[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, token{kind: tkString, text: sb.String(), pos: i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			isFloat := false
			for j < n && (input[j] >= '0' && input[j] <= '9') {
				j++
			}
			if j < n && input[j] == '.' && j+1 < n && input[j+1] >= '0' && input[j+1] <= '9' {
				isFloat = true
				j++
				for j < n && input[j] >= '0' && input[j] <= '9' {
					j++
				}
			}
			kind := tkInt
			if isFloat {
				kind = tkFloat
			}
			toks = append(toks, token{kind: kind, text: input[i:j], pos: i})
			i = j
		case c >= utf8.RuneSelf || isIdentStart(rune(c)):
			// decode full runes: a byte-wise rune(c) misclassifies non-ASCII
			// input (e.g. the lone byte 0xde) and breaks re-lexing of
			// lower-cased multi-byte identifiers
			r, _ := utf8.DecodeRuneInString(input[i:])
			if !isIdentStart(r) {
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", r, i)
			}
			j := i
			for j < n {
				r, size := utf8.DecodeRuneInString(input[j:])
				if !isIdentPart(r) {
					break
				}
				j += size
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tkKeyword, text: up, pos: i})
			} else {
				toks = append(toks, token{kind: tkIdent, text: strings.ToLower(word), pos: i})
			}
			i = j
		default:
			// multi-char operators first
			if i+1 < n {
				two := input[i : i+2]
				switch two {
				case "<=", ">=", "<>", "!=":
					toks = append(toks, token{kind: tkSymbol, text: two, pos: i})
					i += 2
					continue
				}
			}
			switch c {
			case ',', '(', ')', '=', '<', '>', '+', '-', '*', '/', '.', ';':
				toks = append(toks, token{kind: tkSymbol, text: string(c), pos: i})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{kind: tkEOF, pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
