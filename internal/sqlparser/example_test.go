package sqlparser_test

import (
	"fmt"

	"htapxplain/internal/sqlparser"
)

func ExampleParse() {
	sel, err := sqlparser.Parse(`SELECT c_name, COUNT(*) FROM customer, orders
		WHERE o_custkey = c_custkey AND c_mktsegment = 'machinery'
		GROUP BY c_name ORDER BY COUNT(*) DESC LIMIT 3`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(sel)
	// Output:
	// SELECT c_name, COUNT(*) FROM customer, orders WHERE ((o_custkey = c_custkey) AND (c_mktsegment = 'machinery')) GROUP BY c_name ORDER BY COUNT(*) DESC LIMIT 3
}

func ExampleConjuncts() {
	sel, _ := sqlparser.Parse("SELECT a FROM t WHERE x = 1 AND y = 2 AND z = 3")
	for _, c := range sqlparser.Conjuncts(sel.Where) {
		fmt.Println(c)
	}
	// Output:
	// (x = 1)
	// (y = 2)
	// (z = 3)
}
