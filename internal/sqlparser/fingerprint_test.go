package sqlparser

import (
	"strings"
	"testing"
)

func TestFingerprintStripsLiterals(t *testing.T) {
	fp, params, err := Fingerprint(`SELECT o_orderkey FROM orders WHERE o_totalprice > 1500.5 AND o_orderstatus = 'p' LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(fp, "0123456789'") {
		t.Errorf("fingerprint retains literal text: %q", fp)
	}
	want := []string{"1500.5", "'p'", "10"}
	if len(params) != len(want) {
		t.Fatalf("params = %v, want %v", params, want)
	}
	for i := range want {
		if params[i] != want[i] {
			t.Errorf("params[%d] = %q, want %q", i, params[i], want[i])
		}
	}
}

func TestFingerprintSameTemplateSharesKey(t *testing.T) {
	a, pa, err := Fingerprint(`SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey AND c_mktsegment = 'building'`)
	if err != nil {
		t.Fatal(err)
	}
	b, pb, err := Fingerprint("select count(*)  from customer,orders\nwhere o_custkey=c_custkey and c_mktsegment='machinery'")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same template yields different fingerprints:\n%q\n%q", a, b)
	}
	if ParamKey(pa) == ParamKey(pb) {
		t.Errorf("different literals share a param key: %q", ParamKey(pa))
	}
}

func TestFingerprintCollapsesInList(t *testing.T) {
	a, pa, err := Fingerprint(`SELECT COUNT(*) FROM customer WHERE SUBSTRING(c_phone, 1, 2) IN ('20', '40', '22')`)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Fingerprint(`SELECT COUNT(*) FROM customer WHERE SUBSTRING(c_phone, 1, 2) IN ('30')`)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("IN-lists of different arity yield different fingerprints:\n%q\n%q", a, b)
	}
	// SUBSTRING args, then the list arity marker, then the elements.
	want := []string{"1", "2", "#3", "'20'", "'40'", "'22'"}
	if len(pa) != len(want) {
		t.Fatalf("params = %v, want %v", pa, want)
	}
	for i := range want {
		if pa[i] != want[i] {
			t.Errorf("params[%d] = %q, want %q", i, pa[i], want[i])
		}
	}
}

func TestFingerprintAdjacentInListsDoNotCollide(t *testing.T) {
	// Same total literal multiset split differently across two IN-lists:
	// fingerprints match (shared template) but the parameter vectors must
	// not — a collision here would make the plan cache serve one query
	// the other's bound plan.
	a, pa, err := Fingerprint(`SELECT COUNT(*) FROM orders WHERE o_orderkey IN (1, 2) AND o_custkey IN (3)`)
	if err != nil {
		t.Fatal(err)
	}
	b, pb, err := Fingerprint(`SELECT COUNT(*) FROM orders WHERE o_orderkey IN (1) AND o_custkey IN (2, 3)`)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("templates should match:\n%q\n%q", a, b)
	}
	if ParamKey(pa) == ParamKey(pb) {
		t.Errorf("param keys collide across different list splits: %q", ParamKey(pa))
	}
}

func TestFingerprintDistinguishesTemplates(t *testing.T) {
	a, _, err := Fingerprint(`SELECT c_custkey FROM customer ORDER BY c_acctbal DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Fingerprint(`SELECT c_custkey FROM customer ORDER BY c_acctbal LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Errorf("ASC and DESC templates collide: %q", a)
	}
}

func TestFingerprintColumnInListNotCollapsed(t *testing.T) {
	fp, _, err := Fingerprint(`SELECT COUNT(*) FROM orders WHERE o_orderkey IN (1, o_custkey)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fp, "o_custkey") {
		t.Errorf("expression IN-list lost its column ref: %q", fp)
	}
}

func TestFingerprintLexError(t *testing.T) {
	if _, _, err := Fingerprint(`SELECT 'unterminated`); err == nil {
		t.Fatal("want lex error, got nil")
	}
}
