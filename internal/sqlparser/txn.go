package sqlparser

// Transaction blocks: `BEGIN; <DML>; ...; COMMIT|ROLLBACK`. The block
// grammar is deliberately strict — structural mistakes (nested BEGIN, a
// terminator without a block, statements after the terminator) are parse
// errors rather than runtime surprises, so a malformed script is rejected
// before the gateway opens a transaction for it. Only DML may appear
// inside a block: reads run at their own snapshot through the query path,
// so a SELECT inside a block is rejected with a pointer there.

// Script is a parsed multi-statement submission: either a single
// statement (Explicit false) or the DML body of a BEGIN ... COMMIT /
// ROLLBACK transaction block. Stmts never contains block keywords — the
// terminator is captured in Commit.
type Script struct {
	// Stmts is the statement body in source order. A single-statement
	// script holds exactly that statement; a block holds its DML (possibly
	// none — `BEGIN; COMMIT` is a legal empty transaction).
	Stmts []Statement
	// Explicit is true when the input was a BEGIN block.
	Explicit bool
	// Commit reports how the block ended: true for COMMIT (and for
	// single-statement scripts, which autocommit), false for ROLLBACK.
	Commit bool
}

// ParseScript parses a submission that may be a transaction block. Input
// not starting with BEGIN is parsed as a single statement (a stray COMMIT
// or ROLLBACK gets a dedicated error); input starting with BEGIN must be
// a well-formed block whose statements are ';'-separated DML.
func ParseScript(sql string) (*Script, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: sql}
	if !p.atKeyword("BEGIN") {
		switch {
		case p.atKeyword("COMMIT"):
			return nil, p.errorf("COMMIT without BEGIN: no transaction block is open")
		case p.atKeyword("ROLLBACK"):
			return nil, p.errorf("ROLLBACK without BEGIN: no transaction block is open")
		}
		stmt, err := ParseStatement(sql)
		if err != nil {
			return nil, err
		}
		return &Script{Stmts: []Statement{stmt}, Commit: true}, nil
	}
	p.next() // BEGIN
	sc := &Script{Explicit: true}
	if err := p.expectSymbol(";"); err != nil {
		return nil, err
	}
	for {
		// stray semicolons between statements are harmless
		for p.acceptSymbol(";") {
		}
		switch {
		case p.peek().kind == tkEOF:
			return nil, p.errorf("transaction block is missing COMMIT or ROLLBACK")
		case p.atKeyword("BEGIN"):
			return nil, p.errorf("nested BEGIN: transaction blocks cannot be nested")
		case p.atKeyword("COMMIT"), p.atKeyword("ROLLBACK"):
			sc.Commit = p.atKeyword("COMMIT")
			word := p.next().text
			for p.acceptSymbol(";") {
			}
			if p.peek().kind != tkEOF {
				return nil, p.errorf("statement after %s: the transaction block already ended", word)
			}
			return sc, nil
		case p.atKeyword("SELECT"):
			return nil, p.errorf("SELECT inside a transaction block is not supported; reads run at their own snapshot through the query path")
		}
		var stmt Statement
		var err error
		switch {
		case p.atKeyword("INSERT"):
			stmt, err = p.parseInsert()
		case p.atKeyword("UPDATE"):
			stmt, err = p.parseUpdate()
		case p.atKeyword("DELETE"):
			stmt, err = p.parseDelete()
		default:
			return nil, p.errorf("expected INSERT, UPDATE, DELETE, COMMIT or ROLLBACK in transaction block, found %q", p.peek().text)
		}
		if err != nil {
			return nil, err
		}
		sc.Stmts = append(sc.Stmts, stmt)
		// statements are ';'-separated; the terminator may follow directly
		if !p.acceptSymbol(";") && !p.atKeyword("COMMIT") && !p.atKeyword("ROLLBACK") {
			if p.peek().kind == tkEOF {
				return nil, p.errorf("transaction block is missing COMMIT or ROLLBACK")
			}
			return nil, p.errorf("expected %q, COMMIT or ROLLBACK after statement, found %q", ";", p.peek().text)
		}
	}
}
