package sqlparser

import (
	"fmt"
	"strings"
)

// Statement is any parsed SQL statement: *Select, *Insert, *Update or
// *Delete.
type Statement interface {
	fmt.Stringer
	stmtNode()
}

func (s *Select) stmtNode() {}
func (s *Insert) stmtNode() {}
func (s *Update) stmtNode() {}
func (s *Delete) stmtNode() {}

// Insert is `INSERT INTO table [(col, ...)] VALUES (expr, ...), ...`.
// Value expressions must be constant (literals, possibly signed or
// arithmetic over literals); the executor rejects column references.
type Insert struct {
	Table string
	// Columns is the explicit column list, lower-cased; nil means the full
	// table schema in declaration order.
	Columns []string
	// Rows holds one expression list per VALUES tuple.
	Rows [][]Expr
}

func (s *Insert) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(s.Table)
	if len(s.Columns) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(s.Columns, ", "))
		b.WriteString(")")
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteByte(')')
	}
	return b.String()
}

// SetClause is one `column = expr` assignment of an UPDATE.
type SetClause struct {
	Column string
	Expr   Expr
}

// Update is `UPDATE table SET col = expr [, ...] [WHERE cond]`.
type Update struct {
	Table string
	Set   []SetClause
	Where Expr // nil updates every row
}

func (s *Update) String() string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(s.Table)
	b.WriteString(" SET ")
	for i, sc := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(sc.Column)
		b.WriteString(" = ")
		b.WriteString(sc.Expr.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	return b.String()
}

// Delete is `DELETE FROM table [WHERE cond]`.
type Delete struct {
	Table string
	Where Expr // nil deletes every row
}

func (s *Delete) String() string {
	out := "DELETE FROM " + s.Table
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

// StatementKind classifies a SQL string by its leading keyword without
// tokenizing the full input — the gateway's admission fast path uses it to
// route DML around the read-only plan cache. It returns "select",
// "insert", "update", "delete", "begin", "commit", "rollback", or "" when
// the input starts with none of them.
func StatementKind(sql string) string {
	i, n := 0, len(sql)
	for i < n {
		c := sql[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			i++
			continue
		}
		break
	}
	j := i
	for j < n && isIdentPart(rune(sql[j])) {
		j++
	}
	switch strings.ToUpper(sql[i:j]) {
	case "SELECT":
		return "select"
	case "INSERT":
		return "insert"
	case "UPDATE":
		return "update"
	case "DELETE":
		return "delete"
	case "BEGIN":
		return "begin"
	case "COMMIT":
		return "commit"
	case "ROLLBACK":
		return "rollback"
	default:
		return ""
	}
}

// ParseStatement parses a single SQL statement of any supported kind. A
// trailing semicolon is allowed.
func ParseStatement(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: sql}
	var stmt Statement
	switch {
	case p.atKeyword("SELECT"):
		stmt, err = p.parseSelect()
	case p.atKeyword("INSERT"):
		stmt, err = p.parseInsert()
	case p.atKeyword("UPDATE"):
		stmt, err = p.parseUpdate()
	case p.atKeyword("DELETE"):
		stmt, err = p.parseDelete()
	default:
		return nil, p.errorf("expected SELECT, INSERT, UPDATE or DELETE, found %q", p.peek().text)
	}
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tkSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tkEOF {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return stmt, nil
}

func (p *parser) parseInsert() (*Insert, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tkIdent {
		return nil, p.errorf("expected table name after INSERT INTO, found %q", t.text)
	}
	ins := &Insert{Table: t.text}
	if p.acceptSymbol("(") {
		for {
			c := p.next()
			if c.kind != tkIdent {
				return nil, p.errorf("expected column name in INSERT column list, found %q", c.text)
			}
			ins.Columns = append(ins.Columns, c.text)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if len(ins.Columns) > 0 && len(row) != len(ins.Columns) {
			return nil, p.errorf("INSERT tuple has %d values but %d columns were listed",
				len(row), len(ins.Columns))
		}
		if len(ins.Rows) > 0 && len(row) != len(ins.Rows[0]) {
			return nil, p.errorf("INSERT tuples differ in arity: %d values vs %d",
				len(row), len(ins.Rows[0]))
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (*Update, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tkIdent {
		return nil, p.errorf("expected table name after UPDATE, found %q", t.text)
	}
	upd := &Update{Table: t.text}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		c := p.next()
		if c.kind != tkIdent {
			return nil, p.errorf("expected column name in SET clause, found %q", c.text)
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, SetClause{Column: c.text, Expr: e})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Where = w
	}
	return upd, nil
}

func (p *parser) parseDelete() (*Delete, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tkIdent {
		return nil, p.errorf("expected table name after DELETE FROM, found %q", t.text)
	}
	del := &Delete{Table: t.text}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}
