package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// Fingerprint normalizes a query down to its parameterized template: every
// literal is replaced by '?', IN-lists collapse to a single placeholder,
// whitespace is canonicalized and words are lower-cased. Queries that
// differ only in literal values share a fingerprint, which is what a plan
// cache keys on (pg_stat_statements-style query normalization).
//
// This is the admission fast path of the serving gateway: it runs on every
// query before any cache lookup, so it is a single pass over the input
// bytes with one output buffer and no token materialization — several
// times cheaper than even one parse, let alone planning.
//
// The second return value is the stripped literals in source order (string
// literals still quoted), so callers can distinguish "same template, same
// parameters" (a cached plan is exactly reusable) from "same template,
// different parameters" (the plan shape is reusable but the plan is not).
func Fingerprint(sql string) (fp string, params []string, err error) {
	var b strings.Builder
	b.Grow(len(sql))
	i, n := 0, len(sql)
	lastWasIn := false // previous word was IN: a literal list may follow
	needSep := false   // emit a separator before the next word/number
	sep := func() {
		if needSep {
			b.WriteByte(' ')
		}
		needSep = true
	}
	for i < n {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j, err := scanString(sql, i)
			if err != nil {
				return "", nil, err
			}
			params = append(params, sql[i:j])
			sep()
			b.WriteByte('?')
			lastWasIn = false
			i = j
		case c >= '0' && c <= '9':
			j := scanNumber(sql, i)
			params = append(params, sql[i:j])
			sep()
			b.WriteByte('?')
			lastWasIn = false
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < n && isIdentPart(rune(sql[j])) {
				j++
			}
			sep()
			lower(&b, sql[i:j])
			lastWasIn = j-i == 2 && (sql[i] == 'i' || sql[i] == 'I') && (sql[i+1] == 'n' || sql[i+1] == 'N')
			i = j
		case c == '(' && lastWasIn:
			// IN ('20','40','22') and IN ('30') share a template:
			// collapse a literal-only list to one placeholder.
			if end, ok := scanLiteralList(sql, i, &params); ok {
				b.WriteString("(?)")
				needSep = true
				i = end
			} else {
				b.WriteByte('(')
				needSep = false
				i++
			}
			lastWasIn = false
		default:
			// Punctuation separates words on its own; literal glue like
			// "a,b" and "a , b" must normalize identically.
			b.WriteByte(c)
			needSep = false
			lastWasIn = false
			i++
		}
	}
	return b.String(), params, nil
}

// scanString returns the index just past a quoted string starting at
// sql[i] == '\” (” escapes a quote), or an error if unterminated.
func scanString(sql string, i int) (int, error) {
	j := i + 1
	n := len(sql)
	for j < n {
		if sql[j] == '\'' {
			if j+1 < n && sql[j+1] == '\'' {
				j += 2
				continue
			}
			return j + 1, nil
		}
		j++
	}
	return 0, fmt.Errorf("sql: unterminated string literal at offset %d", i)
}

// scanNumber returns the index just past an integer or decimal literal.
func scanNumber(sql string, i int) int {
	n := len(sql)
	j := i
	for j < n && sql[j] >= '0' && sql[j] <= '9' {
		j++
	}
	if j < n && sql[j] == '.' && j+1 < n && sql[j+1] >= '0' && sql[j+1] <= '9' {
		j++
		for j < n && sql[j] >= '0' && sql[j] <= '9' {
			j++
		}
	}
	return j
}

// scanLiteralList tries to consume a parenthesized, comma-separated,
// non-empty list of literals starting at sql[i] == '('. On success it
// appends an arity marker ("#<n>", a spelling no SQL literal can take)
// followed by each literal to params, and returns the index just past
// ')'. The marker keeps the flat ParamKey unambiguous across adjacent
// collapsed lists: without it, IN (1,2) … IN (3) and IN (1) … IN (2,3)
// would share both fingerprint and parameter vector, and the plan
// cache would serve one query the other's bound plan.
func scanLiteralList(sql string, i int, params *[]string) (int, bool) {
	j := i + 1
	n := len(sql)
	var found []string
	wantItem := true
	for j < n {
		c := sql[j]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			j++
		case c == ')':
			if wantItem || len(found) == 0 {
				return 0, false
			}
			*params = append(*params, "#"+strconv.Itoa(len(found)))
			*params = append(*params, found...)
			return j + 1, true
		case c == ',':
			if wantItem {
				return 0, false
			}
			wantItem = true
			j++
		case wantItem && c == '\'':
			end, err := scanString(sql, j)
			if err != nil {
				return 0, false
			}
			found = append(found, sql[j:end])
			wantItem = false
			j = end
		case wantItem && c >= '0' && c <= '9':
			end := scanNumber(sql, j)
			found = append(found, sql[j:end])
			wantItem = false
			j = end
		default:
			return 0, false
		}
	}
	return 0, false
}

// lower writes s lower-cased (ASCII) without allocating.
func lower(b *strings.Builder, s string) {
	for k := 0; k < len(s); k++ {
		c := s[k]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		b.WriteByte(c)
	}
}

// ParamKey joins stripped literals into a single comparable cache key.
func ParamKey(params []string) string {
	return strings.Join(params, "\x00")
}
