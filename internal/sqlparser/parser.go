package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SELECT statement. A trailing semicolon is allowed.
func Parse(sql string) (*Select, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: sql}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	// optional trailing semicolon
	if p.peek().kind == tkSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tkEOF {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return sel, nil
}

type parser struct {
	toks  []token
	pos   int
	input string
}

func (p *parser) peek() token { return p.toks[p.pos] }

// next consumes the current token; it never advances past EOF, so error
// paths can always peek safely.
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tkEOF {
		p.pos++
	}
	return t
}

func (p *parser) backup() { p.pos-- }
func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tkKeyword && t.text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	t := p.peek()
	if t.kind == tkSymbol && t.text == sym {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, found %q", sym, p.peek().text)
	}
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}

	// select list
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	var onConds []Expr
	for {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, tr)
		if p.acceptSymbol(",") {
			continue
		}
		// [INNER] JOIN t ON cond — folded into the WHERE conjunction,
		// since both HTAP optimizers re-derive join order anyway.
		if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		tr2, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, tr2)
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		onConds = append(onConds, cond)
		// allow chained JOINs or a following comma
		if p.acceptSymbol(",") {
			continue
		}
		for p.atKeyword("JOIN") || p.atKeyword("INNER") {
			if p.acceptKeyword("INNER") {
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
			} else {
				p.next() // JOIN
			}
			trn, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, trn)
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			c, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			onConds = append(onConds, c)
		}
		break
	}

	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if len(onConds) > 0 {
		all := append(onConds, Conjuncts(sel.Where)...)
		sel.Where = AndAll(all)
	}

	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.kind != tkInt {
			return nil, p.errorf("LIMIT requires an integer, found %q", t.text)
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.text)
		}
		sel.Limit = n
		if p.acceptKeyword("OFFSET") {
			t := p.next()
			if t.kind != tkInt {
				return nil, p.errorf("OFFSET requires an integer, found %q", t.text)
			}
			off, err := strconv.ParseInt(t.text, 10, 64)
			if err != nil || off < 0 {
				return nil, p.errorf("invalid OFFSET %q", t.text)
			}
			sel.Offset = off
		}
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseAdditive()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.next()
		if t.kind != tkIdent {
			return SelectItem{}, p.errorf("expected alias after AS, found %q", t.text)
		}
		item.Alias = t.text
	} else if p.peek().kind == tkIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.next()
	if t.kind != tkIdent {
		return TableRef{}, p.errorf("expected table name, found %q", t.text)
	}
	tr := TableRef{Name: t.text}
	if p.acceptKeyword("AS") {
		a := p.next()
		if a.kind != tkIdent {
			return TableRef{}, p.errorf("expected alias after AS, found %q", a.text)
		}
		tr.Alias = a.text
	} else if p.peek().kind == tkIdent {
		tr.Alias = p.next().text
	}
	return tr, nil
}

// Expression grammar (precedence low → high):
//   expr     := orExpr
//   orExpr   := andExpr (OR andExpr)*
//   andExpr  := notExpr (AND notExpr)*
//   notExpr  := [NOT] predicate
//   predicate:= additive [cmp additive | [NOT] IN (...) | BETWEEN a AND b | LIKE 's']
//   additive := multiplicative (('+'|'-') multiplicative)*
//   multiplicative := primary (('*'|'/') primary)*
//   primary  := literal | funcCall | aggCall | columnRef | '(' expr ')'

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// comparison
	t := p.peek()
	if t.kind == tkSymbol {
		var op BinOp
		ok := true
		switch t.text {
		case "=":
			op = OpEq
		case "<>", "!=":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		default:
			ok = false
		}
		if ok {
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	notIn := false
	if p.atKeyword("NOT") {
		// lookahead for NOT IN
		p.next()
		if p.atKeyword("IN") {
			notIn = true
		} else {
			p.backup()
			return left, nil
		}
	}
	if p.acceptKeyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{Expr: left, List: list, Not: notIn}, nil
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Expr: left, Lo: lo, Hi: hi}, nil
	}
	if p.acceptKeyword("LIKE") {
		t := p.next()
		if t.kind != tkString {
			return nil, p.errorf("LIKE requires a string pattern, found %q", t.text)
		}
		return &LikeExpr{Expr: left, Pattern: t.text}, nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tkSymbol && (t.text == "+" || t.text == "-") {
			p.next()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			op := OpAdd
			if t.text == "-" {
				op = OpSub
			}
			left = &BinaryExpr{Op: op, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tkSymbol && (t.text == "*" || t.text == "/") {
			p.next()
			right, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			op := OpMul
			if t.text == "/" {
				op = OpDiv
			}
			left = &BinaryExpr{Op: op, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

var aggNames = map[string]AggFunc{
	"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tkInt:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid integer %q", t.text)
		}
		return &IntLit{V: v}, nil
	case tkFloat:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("invalid float %q", t.text)
		}
		return &FloatLit{V: v}, nil
	case tkString:
		return &StringLit{V: t.text}, nil
	case tkKeyword:
		if agg, ok := aggNames[t.text]; ok {
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			if p.acceptSymbol("*") {
				if agg != AggCount {
					return nil, p.errorf("%s(*) is not valid", t.text)
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &AggExpr{Func: AggCount}, nil
			}
			p.acceptKeyword("DISTINCT") // accepted and treated as plain agg
			arg, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &AggExpr{Func: agg, Arg: arg}, nil
		}
		return nil, p.errorf("unexpected keyword %q", t.text)
	case tkSymbol:
		if t.text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "-" { // unary minus on numeric literal
			inner, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			switch lit := inner.(type) {
			case *IntLit:
				return &IntLit{V: -lit.V}, nil
			case *FloatLit:
				return &FloatLit{V: -lit.V}, nil
			default:
				return &BinaryExpr{Op: OpSub, Left: &IntLit{V: 0}, Right: inner}, nil
			}
		}
		return nil, p.errorf("unexpected symbol %q", t.text)
	case tkIdent:
		// function call?
		if p.acceptSymbol("(") {
			name := strings.ToUpper(t.text)
			var args []Expr
			if !p.acceptSymbol(")") {
				for {
					a, err := p.parseAdditive()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.acceptSymbol(",") {
						break
					}
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
			}
			return &FuncExpr{Name: name, Args: args}, nil
		}
		// qualified column?
		if p.acceptSymbol(".") {
			c := p.next()
			if c.kind != tkIdent {
				return nil, p.errorf("expected column after %q., found %q", t.text, c.text)
			}
			return &ColumnRef{Table: t.text, Column: c.text}, nil
		}
		return &ColumnRef{Column: t.text}, nil
	default:
		return nil, p.errorf("unexpected end of input")
	}
}
