package sqlparser

import "strings"

// StripExplain detects and removes a leading `EXPLAIN [ANALYZE]` prefix.
// It returns the remaining statement text and which prefix was present.
// The prefix is recognized case-insensitively ahead of any statement kind;
// whether the wrapped statement is explainable is the caller's concern.
func StripExplain(sql string) (rest string, explain, analyze bool) {
	s := strings.TrimLeft(sql, " \t\n\r")
	word, tail := leadingWord(s)
	if !strings.EqualFold(word, "EXPLAIN") {
		return sql, false, false
	}
	s = strings.TrimLeft(tail, " \t\n\r")
	word, tail = leadingWord(s)
	if strings.EqualFold(word, "ANALYZE") {
		return strings.TrimLeft(tail, " \t\n\r"), true, true
	}
	return s, true, false
}

// leadingWord splits off the leading identifier-shaped word.
func leadingWord(s string) (word, tail string) {
	i := 0
	for i < len(s) && isIdentPart(rune(s[i])) {
		i++
	}
	return s[:i], s[i:]
}
