package sqlparser

import (
	"strings"
	"testing"
)

func TestParseScriptSingleStatement(t *testing.T) {
	sc, err := ParseScript("INSERT INTO customer (c_custkey) VALUES (1)")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Explicit || !sc.Commit || len(sc.Stmts) != 1 {
		t.Fatalf("unexpected script: %+v", sc)
	}
	if _, ok := sc.Stmts[0].(*Insert); !ok {
		t.Fatalf("expected *Insert, got %T", sc.Stmts[0])
	}
}

func TestParseScriptBlock(t *testing.T) {
	sc, err := ParseScript(`BEGIN;
		INSERT INTO customer (c_custkey) VALUES (1), (2);
		UPDATE customer SET c_acctbal = c_acctbal + 10 WHERE c_custkey = 1;
		DELETE FROM customer WHERE c_custkey = 2;
	COMMIT;`)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Explicit || !sc.Commit {
		t.Fatalf("expected explicit committed block, got %+v", sc)
	}
	if len(sc.Stmts) != 3 {
		t.Fatalf("expected 3 statements, got %d", len(sc.Stmts))
	}
	if _, ok := sc.Stmts[0].(*Insert); !ok {
		t.Fatalf("stmt 0: expected *Insert, got %T", sc.Stmts[0])
	}
	if _, ok := sc.Stmts[1].(*Update); !ok {
		t.Fatalf("stmt 1: expected *Update, got %T", sc.Stmts[1])
	}
	if _, ok := sc.Stmts[2].(*Delete); !ok {
		t.Fatalf("stmt 2: expected *Delete, got %T", sc.Stmts[2])
	}
}

func TestParseScriptRollbackAndEmptyBlocks(t *testing.T) {
	sc, err := ParseScript("BEGIN; DELETE FROM customer WHERE c_custkey = 9; ROLLBACK")
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Explicit || sc.Commit {
		t.Fatalf("expected rolled-back block, got %+v", sc)
	}
	// an empty transaction is legal (commits nothing)
	for _, sql := range []string{"BEGIN; COMMIT", "BEGIN; ROLLBACK;", "BEGIN;; COMMIT ;"} {
		if _, err := ParseScript(sql); err != nil {
			t.Fatalf("ParseScript(%q): %v", sql, err)
		}
	}
}

// TestParseScriptMalformedBlocks covers the structural error paths: every
// malformed block must be rejected at parse time with a message naming
// the mistake, so no transaction is ever opened for it.
func TestParseScriptMalformedBlocks(t *testing.T) {
	cases := []struct {
		sql     string
		wantErr string
	}{
		{"BEGIN; BEGIN; COMMIT", "nested BEGIN"},
		{"BEGIN; INSERT INTO t VALUES (1); BEGIN; COMMIT", "nested BEGIN"},
		{"COMMIT", "COMMIT without BEGIN"},
		{"ROLLBACK;", "ROLLBACK without BEGIN"},
		{"BEGIN; INSERT INTO t VALUES (1); ROLLBACK; DELETE FROM t", "statement after ROLLBACK"},
		{"BEGIN; COMMIT; INSERT INTO t VALUES (1)", "statement after COMMIT"},
		{"BEGIN; INSERT INTO t VALUES (1)", "missing COMMIT or ROLLBACK"},
		{"BEGIN; INSERT INTO t VALUES (1);", "missing COMMIT or ROLLBACK"},
		{"BEGIN; SELECT c FROM t; COMMIT", "SELECT inside a transaction block"},
		{"BEGIN INSERT INTO t VALUES (1); COMMIT", `expected ";"`},
		{"BEGIN; INSERT INTO t VALUES (1) DELETE FROM t; COMMIT", "after statement"},
		{"BEGIN; EXPLAIN SELECT c FROM t; COMMIT", "expected INSERT, UPDATE, DELETE"},
	}
	for _, tc := range cases {
		_, err := ParseScript(tc.sql)
		if err == nil {
			t.Errorf("ParseScript(%q): expected error containing %q, got nil", tc.sql, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseScript(%q): error %q does not contain %q", tc.sql, err, tc.wantErr)
		}
	}
}

func TestStatementKindTxnKeywords(t *testing.T) {
	cases := map[string]string{
		"BEGIN; INSERT INTO t VALUES (1); COMMIT": "begin",
		"  begin;":        "begin",
		"COMMIT":          "commit",
		"rollback":        "rollback",
		"SELECT 1 FROM t": "select",
	}
	for sql, want := range cases {
		if got := StatementKind(sql); got != want {
			t.Errorf("StatementKind(%q) = %q, want %q", sql, got, want)
		}
	}
}

// FuzzParseScript attacks the block grammar: whatever the input, the
// parser must not panic, and an accepted script must be internally
// consistent (only DML statement nodes, a terminator implied by Commit).
func FuzzParseScript(f *testing.F) {
	f.Add("BEGIN; INSERT INTO t VALUES (1); COMMIT")
	f.Add("BEGIN; UPDATE t SET a = 1 WHERE b = 2; DELETE FROM t; ROLLBACK;")
	f.Add("BEGIN; COMMIT")
	f.Add("INSERT INTO t VALUES (1)")
	f.Add("COMMIT")
	f.Add("BEGIN; BEGIN; COMMIT")
	f.Add("BEGIN; SELECT a FROM t; COMMIT")
	f.Add(";;;BEGIN;;COMMIT;;")
	f.Fuzz(func(t *testing.T, sql string) {
		sc, err := ParseScript(sql)
		if err != nil {
			return
		}
		for i, stmt := range sc.Stmts {
			switch stmt.(type) {
			case *Insert, *Update, *Delete:
			case *Select:
				if sc.Explicit {
					t.Fatalf("accepted SELECT inside block at %d", i)
				}
			default:
				t.Fatalf("accepted unexpected statement %T at %d", stmt, i)
			}
		}
		if !sc.Explicit && !sc.Commit {
			t.Fatal("single-statement script must autocommit")
		}
	})
}
