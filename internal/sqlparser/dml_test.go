package sqlparser

import (
	"strings"
	"testing"
)

func TestParseInsert(t *testing.T) {
	stmt, err := ParseStatement(
		`INSERT INTO customer (c_custkey, c_name, c_acctbal) VALUES (42, 'alice', 10.5), (43, 'bob', -1)`)
	if err != nil {
		t.Fatalf("ParseStatement: %v", err)
	}
	ins, ok := stmt.(*Insert)
	if !ok {
		t.Fatalf("got %T, want *Insert", stmt)
	}
	if ins.Table != "customer" {
		t.Errorf("table = %q, want customer", ins.Table)
	}
	if len(ins.Columns) != 3 || ins.Columns[2] != "c_acctbal" {
		t.Errorf("columns = %v", ins.Columns)
	}
	if len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("rows = %d x %d", len(ins.Rows), len(ins.Rows[0]))
	}
	if lit, ok := ins.Rows[1][2].(*IntLit); !ok || lit.V != -1 {
		t.Errorf("rows[1][2] = %v, want -1", ins.Rows[1][2])
	}
	want := `INSERT INTO customer (c_custkey, c_name, c_acctbal) VALUES (42, 'alice', 10.5), (43, 'bob', -1)`
	if got := ins.String(); got != want {
		t.Errorf("String() = %q\nwant      %q", got, want)
	}
}

func TestParseInsertNoColumnList(t *testing.T) {
	stmt, err := ParseStatement(`INSERT INTO nation VALUES (99, 'atlantis', 0, 'none')`)
	if err != nil {
		t.Fatalf("ParseStatement: %v", err)
	}
	ins := stmt.(*Insert)
	if ins.Columns != nil {
		t.Errorf("columns = %v, want nil", ins.Columns)
	}
	if len(ins.Rows) != 1 || len(ins.Rows[0]) != 4 {
		t.Fatalf("rows = %v", ins.Rows)
	}
}

func TestParseUpdate(t *testing.T) {
	stmt, err := ParseStatement(
		`UPDATE customer SET c_acctbal = c_acctbal + 10, c_mktsegment = 'building' WHERE c_custkey = 7`)
	if err != nil {
		t.Fatalf("ParseStatement: %v", err)
	}
	upd, ok := stmt.(*Update)
	if !ok {
		t.Fatalf("got %T, want *Update", stmt)
	}
	if upd.Table != "customer" || len(upd.Set) != 2 {
		t.Fatalf("table=%q set=%v", upd.Table, upd.Set)
	}
	if upd.Set[0].Column != "c_acctbal" {
		t.Errorf("set[0].Column = %q", upd.Set[0].Column)
	}
	if _, ok := upd.Set[0].Expr.(*BinaryExpr); !ok {
		t.Errorf("set[0].Expr = %T, want *BinaryExpr", upd.Set[0].Expr)
	}
	if upd.Where == nil {
		t.Error("WHERE clause dropped")
	}
}

func TestParseDelete(t *testing.T) {
	stmt, err := ParseStatement(`DELETE FROM orders WHERE o_orderkey BETWEEN 10 AND 20;`)
	if err != nil {
		t.Fatalf("ParseStatement: %v", err)
	}
	del, ok := stmt.(*Delete)
	if !ok {
		t.Fatalf("got %T, want *Delete", stmt)
	}
	if del.Table != "orders" || del.Where == nil {
		t.Errorf("table=%q where=%v", del.Table, del.Where)
	}
	// WHERE-less delete is legal
	if _, err := ParseStatement(`DELETE FROM orders`); err != nil {
		t.Errorf("bare DELETE FROM: %v", err)
	}
}

func TestParseStatementSelectPassthrough(t *testing.T) {
	stmt, err := ParseStatement(`SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'p'`)
	if err != nil {
		t.Fatalf("ParseStatement: %v", err)
	}
	if _, ok := stmt.(*Select); !ok {
		t.Fatalf("got %T, want *Select", stmt)
	}
}

// TestParseDMLErrors asserts the rejected statements fail with readable,
// actionable messages (not just "unexpected token").
func TestParseDMLErrors(t *testing.T) {
	cases := []struct {
		sql     string
		wantErr string
	}{
		{`INSERT customer VALUES (1)`, "expected INTO"},
		{`INSERT INTO VALUES (1)`, "expected table name after INSERT INTO"},
		{`INSERT INTO customer (1) VALUES (2)`, "expected column name in INSERT column list"},
		{`INSERT INTO customer (c_custkey) SELECT 1`, "expected VALUES"},
		{`INSERT INTO customer (c_custkey, c_name) VALUES (1)`, "INSERT tuple has 1 values but 2 columns were listed"},
		{`INSERT INTO customer VALUES (1, 2), (3)`, "INSERT tuples differ in arity: 1 values vs 2"},
		{`INSERT INTO customer VALUES (1,`, "unexpected end of input"},
		{`UPDATE SET c_acctbal = 1`, "expected table name after UPDATE"},
		{`UPDATE customer c_acctbal = 1`, "expected SET"},
		{`UPDATE customer SET = 1`, "expected column name in SET clause"},
		{`UPDATE customer SET c_acctbal 1`, `expected "="`},
		{`DELETE orders`, "expected FROM"},
		{`DELETE FROM WHERE o_orderkey = 1`, "expected table name after DELETE FROM"},
		{`DROP TABLE customer`, "expected SELECT, INSERT, UPDATE or DELETE"},
		{`INSERT INTO customer VALUES (1) garbage`, "unexpected trailing input"},
	}
	for _, c := range cases {
		_, err := ParseStatement(c.sql)
		if err == nil {
			t.Errorf("ParseStatement(%q) succeeded, want error containing %q", c.sql, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ParseStatement(%q) error = %q, want it to contain %q", c.sql, err, c.wantErr)
		}
	}
}

// TestParseRejectsDML: the SELECT-only entry point must keep rejecting DML
// (legacy callers pre-date the write path).
func TestParseRejectsDML(t *testing.T) {
	if _, err := Parse(`INSERT INTO customer VALUES (1)`); err == nil {
		t.Error("Parse accepted INSERT, want error")
	}
}

func TestStatementKind(t *testing.T) {
	cases := []struct{ sql, want string }{
		{"SELECT * FROM t", "select"},
		{"  \n\tinsert into t values (1)", "insert"},
		{"Update t SET a = 1", "update"},
		{"DELETE FROM t", "delete"},
		{"DROP TABLE t", ""},
		{"", ""},
		{"updatex t", ""},
	}
	for _, c := range cases {
		if got := StatementKind(c.sql); got != c.want {
			t.Errorf("StatementKind(%q) = %q, want %q", c.sql, got, c.want)
		}
	}
}

// FuzzParseStatement checks the statement parser never panics and that
// whatever parses round-trips through String back into something
// parseable of the same kind.
func FuzzParseStatement(f *testing.F) {
	seeds := []string{
		`INSERT INTO customer (c_custkey) VALUES (1)`,
		`INSERT INTO t VALUES (1, 'x', 2.5), (2, 'y', -1)`,
		`UPDATE t SET a = a + 1 WHERE b = 'z'`,
		`DELETE FROM t WHERE a IN (1, 2, 3)`,
		`SELECT COUNT(*) FROM t WHERE a BETWEEN 1 AND 2`,
		`INSERT INTO`,
		`UPDATE t SET`,
		`DELETE FROM t WHERE`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := ParseStatement(sql)
		if err != nil {
			return
		}
		rendered := stmt.String()
		stmt2, err := ParseStatement(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", rendered, sql, err)
		}
		if got, want := kindOf(stmt2), kindOf(stmt); got != want {
			t.Fatalf("round-trip changed statement kind: %q → %q (%s vs %s)", sql, rendered, want, got)
		}
	})
}

func kindOf(s Statement) string {
	switch s.(type) {
	case *Select:
		return "select"
	case *Insert:
		return "insert"
	case *Update:
		return "update"
	case *Delete:
		return "delete"
	default:
		return "?"
	}
}
