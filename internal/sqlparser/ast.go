// Package sqlparser implements a lexer, AST, and recursive-descent parser
// for the SQL subset the paper's workloads use: single-block SELECT queries
// with inner joins (comma-style or JOIN ... ON), conjunctive/disjunctive
// predicates, IN lists, BETWEEN, LIKE, SUBSTRING and arithmetic, aggregate
// functions, GROUP BY, ORDER BY, LIMIT and OFFSET — plus the DML subset of
// the TP write path: multi-row INSERT ... VALUES, UPDATE ... SET ... WHERE
// and DELETE FROM ... WHERE (see ParseStatement).
package sqlparser

import (
	"fmt"
	"strings"
)

// Expr is any SQL expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColumnRef references a column, optionally qualified by table name.
type ColumnRef struct {
	Table  string // may be empty
	Column string
}

func (c *ColumnRef) exprNode() {}
func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// IntLit is an integer literal.
type IntLit struct{ V int64 }

func (l *IntLit) exprNode()      {}
func (l *IntLit) String() string { return fmt.Sprintf("%d", l.V) }

// FloatLit is a floating-point literal.
type FloatLit struct{ V float64 }

func (l *FloatLit) exprNode()      {}
func (l *FloatLit) String() string { return fmt.Sprintf("%g", l.V) }

// StringLit is a single-quoted string literal.
type StringLit struct{ V string }

func (l *StringLit) exprNode() {}

// String renders the literal back to valid SQL: embedded quotes come out
// doubled, the same escape the lexer folds on the way in.
func (l *StringLit) String() string { return "'" + strings.ReplaceAll(l.V, "'", "''") + "'" }

// BinOp enumerates binary operators.
type BinOp int

const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
)

func (op BinOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return "?"
	}
}

// IsComparison reports whether op is a comparison operator.
func (op BinOp) IsComparison() bool { return op >= OpEq && op <= OpGe }

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op          BinOp
	Left, Right Expr
}

func (b *BinaryExpr) exprNode() {}
func (b *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.Left, b.Op, b.Right)
}

// NotExpr negates a boolean expression.
type NotExpr struct{ Inner Expr }

func (n *NotExpr) exprNode()      {}
func (n *NotExpr) String() string { return "NOT " + n.Inner.String() }

// InExpr is `expr [NOT] IN (list...)`.
type InExpr struct {
	Expr Expr
	List []Expr
	Not  bool
}

func (e *InExpr) exprNode() {}
func (e *InExpr) String() string {
	items := make([]string, len(e.List))
	for i, it := range e.List {
		items[i] = it.String()
	}
	not := ""
	if e.Not {
		not = " NOT"
	}
	return fmt.Sprintf("%s%s IN (%s)", e.Expr, not, strings.Join(items, ", "))
}

// BetweenExpr is `expr BETWEEN lo AND hi`.
type BetweenExpr struct {
	Expr, Lo, Hi Expr
}

func (e *BetweenExpr) exprNode() {}
func (e *BetweenExpr) String() string {
	return fmt.Sprintf("%s BETWEEN %s AND %s", e.Expr, e.Lo, e.Hi)
}

// LikeExpr is `expr LIKE 'pattern'` (% and _ wildcards).
type LikeExpr struct {
	Expr    Expr
	Pattern string
}

func (e *LikeExpr) exprNode()      {}
func (e *LikeExpr) String() string { return fmt.Sprintf("%s LIKE '%s'", e.Expr, e.Pattern) }

// FuncExpr is a scalar function call, e.g. SUBSTRING(c_phone, 1, 2).
type FuncExpr struct {
	Name string // upper-cased
	Args []Expr
}

func (e *FuncExpr) exprNode() {}
func (e *FuncExpr) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
}

// AggFunc enumerates aggregate functions.
type AggFunc int

const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (a AggFunc) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return "?"
	}
}

// AggExpr is an aggregate call in the select list. Arg == nil means
// COUNT(*).
type AggExpr struct {
	Func AggFunc
	Arg  Expr // nil for COUNT(*)
}

func (e *AggExpr) exprNode() {}
func (e *AggExpr) String() string {
	if e.Arg == nil {
		return e.Func.String() + "(*)"
	}
	return fmt.Sprintf("%s(%s)", e.Func, e.Arg)
}

// SelectItem is one projected item with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool // SELECT *
}

func (s SelectItem) String() string {
	if s.Star {
		return "*"
	}
	out := s.Expr.String()
	if s.Alias != "" {
		out += " AS " + s.Alias
	}
	return out
}

// TableRef names one table in the FROM list (optional alias).
type TableRef struct {
	Name  string
	Alias string
}

func (t TableRef) String() string {
	if t.Alias != "" {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// Binding returns the name the table is referred to by in expressions.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (o OrderItem) String() string {
	s := o.Expr.String()
	if o.Desc {
		s += " DESC"
	}
	return s
}

// Select is a parsed single-block SELECT statement.
type Select struct {
	Items   []SelectItem
	From    []TableRef
	Where   Expr // nil if absent; JOIN ... ON conditions are folded in
	GroupBy []Expr
	OrderBy []OrderItem
	Limit   int64 // -1 if absent
	Offset  int64 // 0 if absent
}

// HasAggregate reports whether any select item is an aggregate.
func (s *Select) HasAggregate() bool {
	for _, it := range s.Items {
		if _, ok := it.Expr.(*AggExpr); ok {
			return true
		}
	}
	return false
}

// String reconstructs SQL text (normalized) for logging and prompts.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.String())
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
		if s.Offset > 0 {
			fmt.Fprintf(&b, " OFFSET %d", s.Offset)
		}
	}
	return b.String()
}

// Conjuncts splits an expression on top-level ANDs.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == OpAnd {
		return append(Conjuncts(b.Left), Conjuncts(b.Right)...)
	}
	return []Expr{e}
}

// AndAll joins expressions with AND (nil for empty input).
func AndAll(exprs []Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if out == nil {
			out = e
		} else {
			out = &BinaryExpr{Op: OpAnd, Left: out, Right: e}
		}
	}
	return out
}

// ColumnsIn collects every column reference in an expression tree.
func ColumnsIn(e Expr) []*ColumnRef {
	var out []*ColumnRef
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case nil:
		case *ColumnRef:
			out = append(out, x)
		case *BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *NotExpr:
			walk(x.Inner)
		case *InExpr:
			walk(x.Expr)
			for _, it := range x.List {
				walk(it)
			}
		case *BetweenExpr:
			walk(x.Expr)
			walk(x.Lo)
			walk(x.Hi)
		case *LikeExpr:
			walk(x.Expr)
		case *FuncExpr:
			for _, a := range x.Args {
				walk(a)
			}
		case *AggExpr:
			if x.Arg != nil {
				walk(x.Arg)
			}
		}
	}
	walk(e)
	return out
}
