// Package repl defines the TP→AP replication log shared by the storage
// engines. The row store (the write primary) emits one Mutation per
// committed DML statement, stamped with a monotonic commit LSN; the column
// store consumes mutations strictly in LSN order, folding them into its
// in-memory delta layer and advancing its replication watermark — the
// bounded-staleness design of ByteHTAP/TiFlash-style HTAP systems.
//
// Row versions are identified by a RID (row identifier) assigned by the
// primary: the heap position of the version, which is stable because the
// row heap is append-only and never compacts. An UPDATE is replicated as a
// delete of the old RID plus an insert of the new one, so the log has only
// two physical operations and replay order alone reconstructs the table.
package repl

import "htapxplain/internal/value"

// RowVersion is one inserted row version: its primary-assigned RID and the
// full row image.
type RowVersion struct {
	RID int64
	Row value.Row
}

// Mutation is one committed DML statement as seen by the replication log.
// Deletes are applied before Inserts, which makes an UPDATE (delete old
// version, insert new) replay correctly from a single mutation.
type Mutation struct {
	// LSN is the commit sequence number assigned by the primary. LSN 0 is
	// the bulk-loaded base; the first mutation commits at LSN 1.
	LSN   uint64
	Table string
	// Deletes lists RIDs of row versions deleted by this mutation.
	Deletes []int64
	// Inserts lists row versions created by this mutation, in insert order.
	Inserts []RowVersion
}

// NumRowsAffected reports the logical row count the mutation touched:
// pure deletes plus pure inserts, with delete+insert pairs (updates)
// counted once.
func (m *Mutation) NumRowsAffected() int {
	n := len(m.Deletes)
	if len(m.Inserts) > n {
		n = len(m.Inserts)
	}
	return n
}
