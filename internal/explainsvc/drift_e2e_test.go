package explainsvc

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"htapxplain/internal/gateway"
	"htapxplain/internal/plan"
	"htapxplain/internal/workload"
)

// TestDriftTriggersRetrainEndToEnd is the maintenance loop's acceptance
// test: an injected workload shift (the calibrator learns TP is suddenly
// ~120x slower than modeled, e.g. the row store lost its cache) must be
// detected by the background drift check, trigger an online retrain that
// swaps the router, refresh the knowledge base — and serving must stay
// available throughout, with router accuracy restored above threshold
// afterwards.
func TestDriftTriggersRetrainEndToEnd(t *testing.T) {
	sys, r, kb := testEnv(t)
	g := newGateway(t, sys, 4)
	// the race detector slows the tree-CNN's float-heavy training epochs
	// by an order of magnitude; fewer epochs keep the maintenance cycle
	// inside the test's deadlines (the near-single-class post-drift window
	// still fits easily)
	epochs := 30
	if raceEnabled {
		epochs = 6
	}
	svc := newService(t, sys, g, r, kb, Config{
		Seed: 5, Window: 64, MinSamples: 24, DriftThreshold: 0.8,
		RetrainEpochs: epochs, CheckInterval: 20 * time.Millisecond,
	})

	pool := workload.NewGenerator(23).Batch(24)
	serveAll := func() {
		t.Helper()
		for _, q := range pool {
			if _, err := svc.Explain(q.SQL); err != nil {
				t.Fatalf("Explain %q: %v", q.SQL, err)
			}
		}
	}

	// Phase 1: steady state. The router was trained on these modeled
	// costs, so the window shows no drift and no retrain fires.
	serveAll()
	time.Sleep(60 * time.Millisecond) // a few check intervals
	st := svc.Stats()
	if st.Retrains != 0 {
		t.Fatalf("steady state retrained %d times; accuracy %.2f", st.Retrains, st.RouterAccuracy)
	}
	if st.RouterAccuracy < 0.8 {
		t.Fatalf("steady-state router accuracy %.2f, want >= 0.8", st.RouterAccuracy)
	}

	// Phase 2: inject drift while serving stays concurrent. Make the
	// engine that currently wins most of the pool 120x slower than
	// modeled (e.g. the column store lost its cache): the calibrated
	// winner flips for the bulk of the window and accuracy collapses.
	// The first calibrator sample seeds the scale directly, so one
	// observation is enough.
	tpWins := 0
	for _, q := range pool {
		res, err := sys.Run(q.SQL)
		if err != nil {
			t.Fatal(err)
		}
		if res.Winner == plan.TP {
			tpWins++
		}
	}
	slowEngine := plan.AP
	if tpWins > len(pool)/2 {
		slowEngine = plan.TP
	}
	cal := g.Calibrator()
	modeled := int64(10 * time.Millisecond)
	cal.Observe(slowEngine, modeled*120, modeled)

	stopServing := make(chan struct{})
	var serveErrs atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopServing:
				return
			default:
			}
			if _, err := svc.Explain(pool[i%len(pool)].SQL); err != nil &&
				!errors.Is(err, gateway.ErrOverloaded) {
				serveErrs.Add(1)
			}
			// leave the maintenance goroutine CPU headroom
			time.Sleep(time.Millisecond)
		}
	}()

	// The retrains counter increments when a cycle STARTS; KBExpired is
	// stamped near its end. Wait for both so phase 3 measures the
	// post-swap, post-refresh state.
	deadline := time.After(30 * time.Second)
	for st := svc.Stats(); st.Retrains == 0 || st.KBExpired == 0; st = svc.Stats() {
		select {
		case <-deadline:
			close(stopServing)
			wg.Wait()
			t.Fatalf("drift did not complete a retrain cycle; stats %+v", svc.Stats())
		case <-time.After(10 * time.Millisecond):
		}
	}
	close(stopServing)
	wg.Wait()
	if n := serveErrs.Load(); n > 0 {
		t.Errorf("%d explain errors while retraining — serving must stay available", n)
	}

	// Phase 3: recovery. The swapped router was trained against the new
	// calibration; once the (reset) window refills, accuracy is back
	// above threshold and no further drift fires.
	recovered := false
	recoveryDeadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(recoveryDeadline) {
		serveAll()
		st = svc.Stats()
		if int(st.WindowSamples) >= 24 && st.RouterAccuracy >= 0.8 {
			recovered = true
			break
		}
	}
	st = svc.Stats()
	if !recovered {
		t.Fatalf("router accuracy %.2f over %d samples after retrain, want >= 0.8",
			st.RouterAccuracy, st.WindowSamples)
	}
	if st.KBExpired == 0 {
		t.Error("KB refresh expired nothing")
	}
	if st.KBEntries == 0 {
		t.Error("KB empty after refresh")
	}
	m := g.Metrics()
	if m.RouterRetrains == 0 || m.KBExpired == 0 {
		t.Errorf("gateway metrics missed the maintenance cycle: %+v", m)
	}
	t.Logf("retrains=%d accuracy=%.2f kb_entries=%d kb_expired=%d",
		st.Retrains, st.RouterAccuracy, st.KBEntries, st.KBExpired)
}
