package explainsvc

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"htapxplain/internal/gateway"
)

// Register mounts the service's HTTP endpoints on the mux, alongside the
// gateway's /query and /metrics:
//
//	POST /explain  {"sql": "..."}  → ExplainResponse
//	POST /whyslow  {"sql": "..."}  → WhySlowResponse
//
// Overload sheds with 503 (same contract as /query); malformed requests
// and non-SELECT statements get 400.
func Register(mux *http.ServeMux, svc *Service) {
	mux.HandleFunc("/explain", func(w http.ResponseWriter, r *http.Request) {
		sql, ok := readSQL(w, r)
		if !ok {
			return
		}
		ex, err := svc.Explain(sql)
		if err != nil {
			writeError(w, err)
			return
		}
		retrieved := make([]RetrievedEntry, 0, len(ex.Retrieved))
		for _, h := range ex.Retrieved {
			retrieved = append(retrieved, RetrievedEntry{
				ID:        h.Entry.ID,
				SQL:       h.Entry.SQL,
				Winner:    h.Entry.Winner.String(),
				Distance:  h.Distance,
				Corrected: h.Entry.Corrected,
			})
		}
		writeJSON(w, ExplainResponse{
			SQL:         ex.SQL,
			Winner:      ex.Result.Winner.String(),
			Speedup:     ex.Result.Speedup(),
			ModeledMS:   float64(ex.TotalModeledLatency()) / float64(time.Millisecond),
			PlanCached:  ex.PlanCached,
			RouterPick:  ex.RouterPick.String(),
			Explanation: ex.Text(),
			None:        ex.Response.None,
			Retrieved:   retrieved,
			EncodeUS:    ex.EncodeTime.Microseconds(),
			SearchUS:    ex.SearchTime.Microseconds(),
			ServeUS:     ex.ServeTime.Microseconds(),
		})
	})
	mux.HandleFunc("/whyslow", func(w http.ResponseWriter, r *http.Request) {
		sql, ok := readSQL(w, r)
		if !ok {
			return
		}
		rep, err := svc.WhySlow(sql)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, WhySlowResponse{
			SQL:         rep.SQL,
			Engine:      rep.Engine.String(),
			Faster:      rep.Faster.String(),
			Speedup:     rep.Speedup,
			Bottlenecks: rep.Bottlenecks,
			Advice:      rep.Advice,
			Text:        rep.Text,
		})
	})
}

// ExplainResponse is the /explain wire format.
type ExplainResponse struct {
	SQL         string           `json:"sql"`
	Winner      string           `json:"winner"`
	Speedup     float64          `json:"speedup"`
	ModeledMS   float64          `json:"modeled_latency_ms"`
	PlanCached  bool             `json:"plan_cached"`
	RouterPick  string           `json:"router_pick"`
	Explanation string           `json:"explanation"`
	None        bool             `json:"none"`
	Retrieved   []RetrievedEntry `json:"retrieved"`
	EncodeUS    int64            `json:"encode_us"`
	SearchUS    int64            `json:"search_us"`
	ServeUS     int64            `json:"serve_us"`
}

// RetrievedEntry is one cited knowledge-base entry.
type RetrievedEntry struct {
	ID        int     `json:"id"`
	SQL       string  `json:"sql"`
	Winner    string  `json:"winner"`
	Distance  float64 `json:"distance"`
	Corrected bool    `json:"corrected"`
}

// WhySlowResponse is the /whyslow wire format.
type WhySlowResponse struct {
	SQL         string   `json:"sql"`
	Engine      string   `json:"engine"`
	Faster      string   `json:"faster"`
	Speedup     float64  `json:"speedup"`
	Bottlenecks []string `json:"bottlenecks"`
	Advice      []string `json:"advice"`
	Text        string   `json:"text"`
}

func readSQL(w http.ResponseWriter, r *http.Request) (string, bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return "", false
	}
	var req struct {
		SQL string `json:"sql"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.SQL == "" {
		http.Error(w, `body must be {"sql": "..."}`, http.StatusBadRequest)
		return "", false
	}
	return req.SQL, true
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	if errors.Is(err, gateway.ErrOverloaded) || errors.Is(err, gateway.ErrStopped) {
		code = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), code)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
