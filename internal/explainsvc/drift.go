package explainsvc

import (
	"sync"
	"time"

	"htapxplain/internal/htap"
	"htapxplain/internal/latency"
	"htapxplain/internal/plan"
	"htapxplain/internal/treecnn"
)

// sample is one served explanation in the drift window. Raw modeled
// latencies are stored — not a precomputed label — so labels are derived
// at check time with the calibrator's CURRENT scales. A calibration
// shift therefore retroactively relabels the window: accuracy over old
// samples drops the moment the model learns reality moved, which is
// exactly the drift signal the maintenance loop watches.
type sample struct {
	sql  string
	fp   string
	pair *plan.Pair
	tpNS int64
	apNS int64
	pick plan.Engine // the live router's prediction at serve time
}

// window is a fixed-capacity ring buffer of recent samples.
type window struct {
	mu   sync.Mutex
	buf  []sample
	next int
	n    int
}

func newWindow(capacity int) *window {
	return &window{buf: make([]sample, capacity)}
}

func (w *window) add(s sample) {
	w.mu.Lock()
	w.buf[w.next] = s
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.mu.Unlock()
}

func (w *window) snapshot() []sample {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]sample, 0, w.n)
	start := w.next - w.n
	for i := 0; i < w.n; i++ {
		out = append(out, w.buf[(start+i+len(w.buf))%len(w.buf)])
	}
	return out
}

func (w *window) reset() {
	w.mu.Lock()
	w.n, w.next = 0, 0
	w.mu.Unlock()
}

// modeledWinner labels a sample with today's calibration.
func modeledWinner(cal *latency.Calibrator, tpNS, apNS int64) plan.Engine {
	if cal.CalibratedNS(plan.TP, tpNS) <= cal.CalibratedNS(plan.AP, apNS) {
		return plan.TP
	}
	return plan.AP
}

// windowAccuracy scores the recorded router picks against the calibrated
// modeled winners. Returns (accuracy, samples); accuracy is 1 on an
// empty window (no evidence of drift).
func windowAccuracy(samples []sample, cal *latency.Calibrator) (float64, int) {
	if len(samples) == 0 {
		return 1, 0
	}
	agree := 0
	for _, sm := range samples {
		if sm.pick == modeledWinner(cal, sm.tpNS, sm.apNS) {
			agree++
		}
	}
	return float64(agree) / float64(len(samples)), len(samples)
}

// loop is the background maintenance job.
func (s *Service) loop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.CheckInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.CheckNow()
		}
	}
}

// CheckNow runs one drift check, retraining if the window shows the live
// router disagreeing with the calibrated model beyond threshold. Returns
// whether a retrain fired. Safe to call concurrently with serving and
// with the background loop.
func (s *Service) CheckNow() bool {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	samples := s.win.snapshot()
	if len(samples) < s.cfg.MinSamples {
		return false
	}
	acc, _ := windowAccuracy(samples, s.gw.Calibrator())
	if acc >= s.cfg.DriftThreshold {
		return false
	}
	s.retrain(samples)
	return true
}

// Retrain forces a retrain-and-refresh cycle over the current window
// regardless of measured drift — the operational "I changed the
// hardware" hook. No-op on an empty window; returns whether it ran.
func (s *Service) Retrain() bool {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	samples := s.win.snapshot()
	if len(samples) == 0 {
		return false
	}
	s.retrain(samples)
	return true
}

// retrain (caller holds maintMu) trains a fresh router on the window
// labeled by current calibration, atomically swaps it live, re-curates
// the knowledge base under the new router's encodings, and expires the
// pre-refresh entries. Re-curation happens BEFORE expiry so concurrent
// readers always retrieve from a populated KB — a torn state where the
// base is empty is never published.
func (s *Service) retrain(samples []sample) {
	cal := s.gw.Calibrator()
	tcs := make([]treecnn.Sample, 0, len(samples))
	for i := range samples {
		sm := &samples[i]
		tcs = append(tcs, treecnn.Sample{Pair: sm.pair, Label: modeledWinner(cal, sm.tpNS, sm.apNS)})
	}
	gen := s.retrains.Add(1)
	r := treecnn.New(s.cfg.Seed + gen)
	r.Train(tcs, s.cfg.RetrainEpochs, s.cfg.Seed+gen+1)
	s.swapRouter(r)
	// The old router's routing decisions in the plan cache are stale now.
	s.gw.InvalidatePlans()

	// KB refresh: everything currently present is older than floor.
	floor := s.kb.CurSeq()
	added, seen := 0, make(map[string]bool, len(samples))
	for i := len(samples) - 1; i >= 0 && added < s.cfg.RecurateMax; i-- {
		sm := &samples[i] // newest first
		if seen[sm.fp] {
			continue
		}
		seen[sm.fp] = true
		winner := modeledWinner(cal, sm.tpNS, sm.apNS)
		res := &htap.Result{
			SQL: sm.sql, Pair: *sm.pair,
			TPTime: time.Duration(cal.CalibratedNS(plan.TP, sm.tpNS)),
			APTime: time.Duration(cal.CalibratedNS(plan.AP, sm.apNS)),
			Winner: winner,
		}
		truth, err := s.oracle.Judge(res)
		if err != nil {
			continue
		}
		if _, err := s.kb.Correct(r.EmbedPair(sm.pair), sm.sql,
			sm.pair.TP.ExplainJSON(), sm.pair.AP.ExplainJSON(),
			winner, res.Speedup(), s.oracle.Explain(truth), truth.AllFactors()); err != nil {
			continue
		}
		added++
	}
	// Only expire once replacements exist: a failed re-curation must not
	// leave readers with an empty base.
	if added > 0 {
		expired := s.kb.ExpireOlderThan(floor)
		s.kbExpired.Add(int64(expired))
		s.kb.RebuildIndex()
	}
	s.win.reset()
	if s.cfg.Dir != "" {
		// Persist best-effort; serving continues regardless.
		_ = saveState(s.cfg.Dir, r, s.kb)
	}
}
