package explainsvc

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"htapxplain/internal/expert"
	"htapxplain/internal/explain"
	"htapxplain/internal/htap"
	"htapxplain/internal/knowledge"
	"htapxplain/internal/treecnn"
	"htapxplain/internal/workload"
)

const (
	routerFile = "router.gob"
	kbFile     = "kb.gob"
)

// writeAtomic writes via a temp file and rename so a crash mid-write
// never corrupts the previous good state.
func writeAtomic(path string, write func(w io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// saveState persists the router and knowledge base under dir.
func saveState(dir string, r *treecnn.Router, kb *knowledge.Base) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("explainsvc: state dir: %w", err)
	}
	if err := writeAtomic(filepath.Join(dir, routerFile), r.Save); err != nil {
		return fmt.Errorf("explainsvc: saving router: %w", err)
	}
	if err := writeAtomic(filepath.Join(dir, kbFile), kb.Save); err != nil {
		return fmt.Errorf("explainsvc: saving kb: %w", err)
	}
	return nil
}

// loadState restores a previously saved router and knowledge base.
func loadState(dir string) (*treecnn.Router, *knowledge.Base, error) {
	rf, err := os.Open(filepath.Join(dir, routerFile))
	if err != nil {
		return nil, nil, err
	}
	defer rf.Close()
	r := treecnn.New(0)
	if err := r.Load(rf); err != nil {
		return nil, nil, err
	}
	kf, err := os.Open(filepath.Join(dir, kbFile))
	if err != nil {
		return nil, nil, err
	}
	defer kf.Close()
	kb, err := knowledge.Load(kf)
	if err != nil {
		return nil, nil, err
	}
	return r, kb, nil
}

// BootstrapConfig drives Bootstrap. Zero values select the defaults.
type BootstrapConfig struct {
	// TrainQueries is how many generated queries are executed and labeled
	// to train the initial router (default 80).
	TrainQueries int
	// Epochs bounds initial training (default 40).
	Epochs int
	// KBSize is the curated knowledge base's target size (default 20,
	// the paper's configuration).
	KBSize int
	// Seed drives generation and training.
	Seed int64
	// Dir, when non-empty, is checked for previously persisted state
	// first; fresh state is saved there after building.
	Dir string
}

// Bootstrap produces the router and knowledge base a Service needs: it
// restores persisted state from cfg.Dir when present (restored == true),
// otherwise trains a router on a labeled workload batch and curates the
// KB from judged executions, persisting both if a directory is given.
func Bootstrap(sys *htap.System, cfg BootstrapConfig) (r *treecnn.Router, kb *knowledge.Base, restored bool, err error) {
	if cfg.TrainQueries <= 0 {
		cfg.TrainQueries = 80
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 40
	}
	if cfg.KBSize <= 0 {
		cfg.KBSize = 20
	}
	if cfg.Dir != "" {
		if r, kb, lerr := loadState(cfg.Dir); lerr == nil {
			return r, kb, true, nil
		}
	}
	queries := workload.NewGenerator(cfg.Seed).Batch(cfg.TrainQueries)
	var samples []treecnn.Sample
	for _, q := range queries {
		res, rerr := sys.Run(q.SQL)
		if rerr != nil {
			return nil, nil, false, fmt.Errorf("explainsvc: bootstrap run: %w", rerr)
		}
		samples = append(samples, treecnn.Sample{Pair: &res.Pair, Label: res.Winner})
	}
	r = treecnn.New(cfg.Seed)
	r.Train(samples, cfg.Epochs, cfg.Seed+1)
	kb, err = explain.CurateKB(sys, r, expert.NewOracle(sys), queries, cfg.KBSize)
	if err != nil {
		return nil, nil, false, fmt.Errorf("explainsvc: bootstrap kb: %w", err)
	}
	if cfg.Dir != "" {
		if err := saveState(cfg.Dir, r, kb); err != nil {
			return nil, nil, false, err
		}
	}
	return r, kb, false, nil
}
