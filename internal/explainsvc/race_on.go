//go:build race

package explainsvc

// raceEnabled reports whether the race detector is compiled in; tests
// use it to scale down training work (the detector slows the tree-CNN's
// float-heavy epochs by an order of magnitude) and stretch deadlines.
const raceEnabled = true
