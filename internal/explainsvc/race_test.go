package explainsvc

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"htapxplain/internal/gateway"
	"htapxplain/internal/plan"
	"htapxplain/internal/treecnn"
	"htapxplain/internal/workload"
)

// TestExplainRacesMaintenance is the -race gauntlet for the serving
// path: concurrent /explain requests race expert Correct write-backs,
// KB expiry, and full retrain-and-swap cycles. Every successful
// explanation must be fully formed and cite live, fully-formed KB
// entries — the copy-on-write snapshot must never expose a torn state,
// and the KB must never be observably empty.
func TestExplainRacesMaintenance(t *testing.T) {
	sys, r, kb := testEnv(t)
	g := newGateway(t, sys, 4)
	svc := newService(t, sys, g, r, kb, Config{
		Seed: 3, RetrainEpochs: 10, RecurateMax: 16,
	})

	pool := workload.NewGenerator(17).Batch(16)
	// seed the drift window so concurrent retrains have substance
	for _, q := range pool[:8] {
		if _, err := svc.Explain(q.SQL); err != nil {
			t.Fatalf("seeding explain: %v", err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				ex, err := svc.Explain(pool[(c*7+i)%len(pool)].SQL)
				if errors.Is(err, gateway.ErrOverloaded) {
					continue // shed under concurrent load is legitimate
				}
				if err != nil {
					errCh <- fmt.Errorf("explain: %w", err)
					return
				}
				if ex.Text() == "" && !ex.Response.None {
					errCh <- fmt.Errorf("empty explanation for %q", ex.SQL)
					return
				}
				if len(ex.Retrieved) == 0 {
					errCh <- fmt.Errorf("explanation cites no KB entries for %q", ex.SQL)
					return
				}
				for _, h := range ex.Retrieved {
					if h.Entry == nil || h.Entry.Explanation == "" ||
						len(h.Entry.Encoding) != treecnn.PairDim {
						errCh <- fmt.Errorf("torn KB entry retrieved: %+v", h.Entry)
						return
					}
				}
			}
		}(c)
	}
	// expert feedback loop: corrections plus bounded expiry
	wg.Add(1)
	go func() {
		defer wg.Done()
		enc := make([]float64, treecnn.PairDim)
		for i := 0; i < 60; i++ {
			for j := range enc {
				enc[j] = float64((i+j)%7) / 7
			}
			if _, err := kb.Correct(enc, "corrected query", "{}", "{}",
				plan.TP, 2.0, "expert-corrected explanation", nil); err != nil {
				errCh <- fmt.Errorf("correct: %w", err)
				return
			}
			if i%15 == 14 {
				kb.ExpireOlderThan(kb.CurSeq() - 30)
			}
		}
	}()
	// maintenance loop: forced retrain-and-swap cycles
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			svc.Retrain()
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if kb.Len() == 0 {
		t.Error("KB empty after the gauntlet")
	}
	if svc.Router() == nil {
		t.Error("nil live router after the gauntlet")
	}
}
