package explainsvc

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"htapxplain/internal/gateway"
	"htapxplain/internal/htap"
	"htapxplain/internal/knowledge"
	"htapxplain/internal/treecnn"
	"htapxplain/internal/workload"
)

var (
	envOnce   sync.Once
	envSys    *htap.System
	envRouter *treecnn.Router
	envKB     []byte // gob snapshot for cheap per-test KB clones
	envErr    error
)

// testEnv builds the expensive shared fixtures once: the HTAP system, a
// trained router, and a gob snapshot of a curated KB each test restores
// its own mutable copy from.
func testEnv(t testing.TB) (*htap.System, *treecnn.Router, *knowledge.Base) {
	t.Helper()
	envOnce.Do(func() {
		envSys, envErr = htap.New(htap.DefaultConfig())
		if envErr != nil {
			return
		}
		var kb *knowledge.Base
		envRouter, kb, _, envErr = Bootstrap(envSys, BootstrapConfig{
			TrainQueries: 48, Epochs: 25, KBSize: 16, Seed: 7,
		})
		if envErr != nil {
			return
		}
		var buf bytes.Buffer
		if envErr = kb.Save(&buf); envErr == nil {
			envKB = buf.Bytes()
		}
	})
	if envErr != nil {
		t.Fatalf("test env: %v", envErr)
	}
	kb, err := knowledge.Load(bytes.NewReader(envKB))
	if err != nil {
		t.Fatalf("restoring kb: %v", err)
	}
	return envSys, envRouter, kb
}

func newGateway(t testing.TB, sys *htap.System, workers int) *gateway.Gateway {
	t.Helper()
	g := gateway.New(sys, gateway.Config{Workers: workers, CacheCapacity: 128})
	t.Cleanup(g.Stop)
	return g
}

func newService(t testing.TB, sys *htap.System, g *gateway.Gateway, r *treecnn.Router,
	kb *knowledge.Base, cfg Config) *Service {
	t.Helper()
	svc, err := New(sys, g, r, kb, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

func TestExplainServesGroundedAnswer(t *testing.T) {
	sys, r, kb := testEnv(t)
	g := newGateway(t, sys, 2)
	svc := newService(t, sys, g, r, kb, Config{Seed: 1})

	sql := workload.NewGenerator(3).Batch(1)[0].SQL
	ex, err := svc.Explain(sql)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if ex.Text() == "" {
		t.Error("explanation text is empty")
	}
	if len(ex.Retrieved) == 0 {
		t.Error("explanation cites no KB entries")
	}
	if ex.PlanCached {
		t.Error("first explain of a query should plan cold")
	}
	ex2, err := svc.Explain(sql)
	if err != nil {
		t.Fatalf("second Explain: %v", err)
	}
	if !ex2.PlanCached {
		t.Error("second explain should hit the plan cache")
	}

	if _, err := svc.Explain("INSERT INTO region (r_regionkey, r_name, r_comment) VALUES (9, 'x', 'y')"); err == nil {
		t.Error("explaining DML should fail")
	}

	m := g.Metrics()
	if m.ExplainServed != 2 {
		t.Errorf("ExplainServed = %d, want 2", m.ExplainServed)
	}
	if m.ExplainKBHits != 2 {
		t.Errorf("ExplainKBHits = %d, want 2", m.ExplainKBHits)
	}
	if m.KBEntries == 0 {
		t.Error("KBEntries = 0, want live entries")
	}
	if m.RouterWindowSamples != 2 {
		t.Errorf("RouterWindowSamples = %d, want 2", m.RouterWindowSamples)
	}
	prom := g.PromText()
	for _, want := range []string{"htap_explain_served_total 2", "htap_kb_entries", "router_accuracy"} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

func TestWhySlowFromCachedPlans(t *testing.T) {
	sys, r, kb := testEnv(t)
	g := newGateway(t, sys, 2)
	svc := newService(t, sys, g, r, kb, Config{Seed: 1})

	rep, err := svc.WhySlow(`SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority`)
	if err != nil {
		t.Fatalf("WhySlow: %v", err)
	}
	if rep.Text == "" || len(rep.Bottlenecks) == 0 {
		t.Errorf("empty diagnosis: %+v", rep)
	}
	if rep.Engine == rep.Faster {
		t.Errorf("diagnosed engine %v equals the faster engine", rep.Engine)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	sys, r, kb := testEnv(t)
	g := newGateway(t, sys, 2)
	svc := newService(t, sys, g, r, kb, Config{Seed: 1})

	mux := gateway.NewServeMux(g)
	Register(mux, svc)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	post := func(path, sql string) *http.Response {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"sql": sql})
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		return resp
	}

	resp := post("/explain", `SELECT COUNT(*) FROM region`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/explain status = %d", resp.StatusCode)
	}
	var er ExplainResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("decoding /explain: %v", err)
	}
	if er.Explanation == "" && !er.None {
		t.Error("no explanation and not None")
	}
	if len(er.Retrieved) == 0 {
		t.Error("/explain cites no entries")
	}

	wresp := post("/whyslow", `SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority`)
	defer wresp.Body.Close()
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf("/whyslow status = %d", wresp.StatusCode)
	}
	var wr WhySlowResponse
	if err := json.NewDecoder(wresp.Body).Decode(&wr); err != nil {
		t.Fatalf("decoding /whyslow: %v", err)
	}
	if wr.Text == "" {
		t.Error("/whyslow returned empty text")
	}

	// error contract
	bad := post("/explain", `INSERT INTO region (r_regionkey, r_name, r_comment) VALUES (8, 'a', 'b')`)
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("DML /explain status = %d, want 400", bad.StatusCode)
	}
	gr, err := http.Get(srv.URL + "/explain")
	if err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if gr.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /explain status = %d, want 405", gr.StatusCode)
	}
}

func TestLoadGeneratorExplainMix(t *testing.T) {
	sys, r, kb := testEnv(t)
	g := newGateway(t, sys, 4)
	svc := newService(t, sys, g, r, kb, Config{Seed: 1})

	rep := gateway.RunLoad(g, gateway.LoadConfig{
		Clients: 4, Queries: 60, Distinct: 12, Seed: 5,
		ExplainFraction: 0.25,
		Explain: func(sql string) error {
			_, err := svc.Explain(sql)
			return err
		},
	})
	if rep.Explains == 0 {
		t.Fatalf("load run served no explains: %+v", rep)
	}
	if rl, ok := rep.PerRoute["explain"]; !ok || rl.Count != rep.Explains {
		t.Errorf("explain route latency %+v, want count %d", rl, rep.Explains)
	}
	if rep.Failed > 0 {
		t.Errorf("%d failed submissions", rep.Failed)
	}
	if !strings.Contains(rep.String(), "explain") {
		t.Error("report string omits the explain route")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	sys, r, kb := testEnv(t)
	dir := t.TempDir()
	g := newGateway(t, sys, 2)
	svc := newService(t, sys, g, r, kb, Config{Seed: 1, Dir: dir})

	for _, q := range workload.NewGenerator(9).Batch(8) {
		if _, err := svc.Explain(q.SQL); err != nil {
			t.Fatalf("Explain: %v", err)
		}
	}
	if !svc.Retrain() {
		t.Fatal("forced retrain did not run")
	}
	liveRouter := svc.Router()
	liveKBLen := kb.Len()
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r2, kb2, restored, err := Bootstrap(sys, BootstrapConfig{Dir: dir})
	if err != nil {
		t.Fatalf("Bootstrap restore: %v", err)
	}
	if !restored {
		t.Fatal("Bootstrap did not restore persisted state")
	}
	if kb2.Len() != liveKBLen {
		t.Errorf("restored KB has %d entries, want %d", kb2.Len(), liveKBLen)
	}
	// the restored router must reproduce the live router's decisions
	probes := workload.NewGenerator(11).Batch(12)
	for _, q := range probes {
		res, err := sys.Run(q.SQL)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := liveRouter.Predict(&res.Pair)
		got, _ := r2.Predict(&res.Pair)
		if got != want {
			t.Errorf("restored router picks %v, live picked %v for %q", got, want, q.SQL)
		}
	}
}

func TestRetrainSwapsRouterAndRefreshesKB(t *testing.T) {
	sys, r, kb := testEnv(t)
	g := newGateway(t, sys, 2)
	var swapped []*treecnn.Router
	var mu sync.Mutex
	svc := newService(t, sys, g, r, kb, Config{
		Seed: 1,
		OnSwap: func(nr *treecnn.Router) {
			mu.Lock()
			swapped = append(swapped, nr)
			mu.Unlock()
		},
	})

	floor := kb.CurSeq()
	for _, q := range workload.NewGenerator(13).Batch(10) {
		if _, err := svc.Explain(q.SQL); err != nil {
			t.Fatalf("Explain: %v", err)
		}
	}
	if !svc.Retrain() {
		t.Fatal("forced retrain did not run")
	}
	if svc.Router() == r {
		t.Error("retrain did not swap the router")
	}
	mu.Lock()
	nswaps := len(swapped)
	mu.Unlock()
	if nswaps < 2 { // initial publish + retrain swap
		t.Errorf("OnSwap called %d times, want >= 2", nswaps)
	}
	if kb.Len() == 0 {
		t.Fatal("KB empty after refresh")
	}
	for _, e := range kb.Entries() {
		if e.Seq <= floor {
			t.Errorf("stale entry %d (seq %d <= floor %d) survived refresh", e.ID, e.Seq, floor)
		}
	}
	if got := g.Metrics(); got.RouterRetrains != 1 || got.KBExpired == 0 {
		t.Errorf("metrics after retrain: retrains=%d kbExpired=%d", got.RouterRetrains, got.KBExpired)
	}
	// serving still works against the refreshed state
	if _, err := svc.Explain(`SELECT COUNT(*) FROM region`); err != nil {
		t.Fatalf("Explain after retrain: %v", err)
	}
}
