//go:build !race

package explainsvc

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
