// Package explainsvc wires the paper's explanation pipeline into the
// serving path as an online service. Three loops run against one shared
// state:
//
//   - Serving: /explain and /whyslow answer from the gateway's cached
//     plan pairs and the latency model's calibrated estimates — no query
//     execution — with RAG retrieval going through the knowledge base's
//     lock-free copy-on-write HNSW snapshot. Requests are admitted
//     through the gateway's worker pool like any other route.
//   - Feedback: every explanation records the live router's pick and the
//     modeled latencies into a sliding window; the gateway's calibrator
//     feeds observed serve latencies back so modeled costs track reality.
//   - Maintenance: a background job replays the window against the
//     current calibration; when the router's agreement with the
//     calibrated winner drops below threshold it retrains the tree-CNN
//     on a snapshot of the window, atomically swaps the live router,
//     re-curates the knowledge base under the new router's encodings and
//     expires the stale entries. Router and KB persist under a state
//     directory and survive restarts.
package explainsvc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"htapxplain/internal/expert"
	"htapxplain/internal/explain"
	"htapxplain/internal/gateway"
	"htapxplain/internal/htap"
	"htapxplain/internal/knowledge"
	"htapxplain/internal/llm"
	"htapxplain/internal/plan"
	"htapxplain/internal/sqlparser"
	"htapxplain/internal/treecnn"
)

// Config tunes the service. Zero values select the documented defaults.
type Config struct {
	// K is the number of retrieved similar plan pairs per explanation
	// (paper default 2).
	K int
	// Model generates explanation text (default llm.Doubao()).
	Model llm.Model
	// UserContext is the optional third prompt part.
	UserContext string

	// LinearScan disables the HNSW index: retrieval falls back to the
	// exact mutex-guarded linear scan. The slow baseline, kept for
	// benchmarking the snapshot path against.
	LinearScan bool
	// HNSWM / HNSWEf are the index's degree and construction beam
	// (defaults 8 / 32).
	HNSWM, HNSWEf int
	// Seed drives index construction and retraining.
	Seed int64

	// Window is the sliding drift window's capacity in served
	// explanations (default 128); MinSamples gates drift checks until
	// the window has substance (default 32).
	Window, MinSamples int
	// DriftThreshold is the router-vs-calibrated-winner agreement below
	// which a retrain fires (default 0.85).
	DriftThreshold float64
	// RetrainEpochs bounds online retraining (default 40); RecurateMax
	// bounds how many window queries are re-judged into the KB per
	// retrain (default 32).
	RetrainEpochs, RecurateMax int
	// CheckInterval is the maintenance-loop period; 0 disables the
	// background loop (drift checks then run only via CheckNow/Retrain).
	CheckInterval time.Duration

	// Dir, when non-empty, persists router and KB state (gob) so a
	// restarted server resumes with its learned state.
	Dir string
	// OnSwap, when non-nil, observes every router swap — the hook a
	// DynamicLearnedPolicy source is kept current through.
	OnSwap func(*treecnn.Router)
}

func (c *Config) defaults() {
	if c.K <= 0 {
		c.K = 2
	}
	if c.Model == nil {
		c.Model = llm.Doubao()
	}
	if c.HNSWM <= 0 {
		c.HNSWM = 8
	}
	if c.HNSWEf <= 0 {
		c.HNSWEf = 32
	}
	if c.Window <= 0 {
		c.Window = 128
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.85
	}
	if c.RetrainEpochs <= 0 {
		c.RetrainEpochs = 40
	}
	if c.RecurateMax <= 0 {
		c.RecurateMax = 32
	}
}

// Service is the online explanation service. All methods are safe for
// concurrent use.
type Service struct {
	sys    *htap.System
	gw     *gateway.Gateway
	kb     *knowledge.Base
	oracle *expert.Oracle
	cfg    Config

	router atomic.Pointer[treecnn.Router]
	win    *window

	served, kbHits, retrains, kbExpired atomic.Int64

	// maintMu serializes maintenance (drift check / retrain / persist) so
	// overlapping triggers cannot double-retrain on the same window.
	maintMu  sync.Mutex
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New assembles the service over an already-built system, gateway,
// router and knowledge base (see Bootstrap for building the latter two).
// Unless cfg.LinearScan is set, the KB's HNSW index is built here — bulk
// entries should already be loaded. If cfg.CheckInterval > 0 the
// maintenance loop starts immediately; Close stops it.
func New(sys *htap.System, gw *gateway.Gateway, router *treecnn.Router, kb *knowledge.Base, cfg Config) (*Service, error) {
	if sys == nil || gw == nil || router == nil || kb == nil {
		return nil, errors.New("explainsvc: sys, gateway, router and kb are all required")
	}
	cfg.defaults()
	s := &Service{
		sys:    sys,
		gw:     gw,
		kb:     kb,
		oracle: expert.NewOracle(sys),
		cfg:    cfg,
		win:    newWindow(cfg.Window),
		stop:   make(chan struct{}),
	}
	s.router.Store(router)
	if cfg.OnSwap != nil {
		cfg.OnSwap(router)
	}
	if !cfg.LinearScan {
		kb.EnableHNSW(cfg.HNSWM, cfg.HNSWEf, cfg.Seed)
	}
	gw.SetExplainStats(s.Stats)
	if cfg.CheckInterval > 0 {
		s.wg.Add(1)
		go s.loop()
	}
	return s, nil
}

// Router returns the live router (atomically swapped by retrains).
func (s *Service) Router() *treecnn.Router { return s.router.Load() }

func (s *Service) swapRouter(r *treecnn.Router) {
	s.router.Store(r)
	if s.cfg.OnSwap != nil {
		s.cfg.OnSwap(r)
	}
}

// Explanation is one served /explain answer.
type Explanation struct {
	*explain.Explanation
	// PlanCached reports whether the plan pair came from the gateway's
	// plan cache (warm) or was planned on demand (cold).
	PlanCached bool
	// RouterPick is the live router's engine prediction for the pair,
	// recorded into the drift window.
	RouterPick plan.Engine
	// ServeTime is the wall time inside the admitted task.
	ServeTime time.Duration
}

// Explain answers "why did this query run the way it did" for a SELECT,
// grounded in retrieved knowledge-base entries. The work runs admission-
// controlled on a gateway worker slot; under overload it sheds with
// gateway.ErrOverloaded like any other route.
func (s *Service) Explain(sql string) (*Explanation, error) {
	var (
		out *Explanation
		err error
	)
	if serr := s.gw.SubmitTask(func() { out, err = s.explainServe(sql) }); serr != nil {
		return nil, serr
	}
	return out, err
}

// explainServe is the admitted body of Explain.
func (s *Service) explainServe(sql string) (*Explanation, error) {
	start := time.Now()
	res, entry, cached, err := s.modeledResult(sql)
	if err != nil {
		return nil, err
	}
	rt := s.Router()
	ex := explain.New(s.sys, rt, s.kb, s.cfg.Model, explain.Options{
		K: s.cfg.K, UseRAG: true, IncludeGuardrail: true, UserContext: s.cfg.UserContext,
	})
	inner, err := ex.ExplainResult(res)
	if err != nil {
		return nil, err
	}
	pick, _ := rt.Predict(&entry.Pair)
	s.win.add(sample{
		sql: sql, fp: entry.Fingerprint, pair: &entry.Pair,
		tpNS: entry.TPTime.Nanoseconds(), apNS: entry.APTime.Nanoseconds(),
		pick: pick,
	})
	s.served.Add(1)
	if len(inner.Retrieved) > 0 {
		s.kbHits.Add(1)
	}
	d := time.Since(start)
	s.gw.ObserveExplainLatency(d)
	return &Explanation{Explanation: inner, PlanCached: cached, RouterPick: pick, ServeTime: d}, nil
}

// WhySlow diagnoses the slower engine's bottlenecks for a SELECT, from
// cached plans and modeled latencies — the query is not executed.
func (s *Service) WhySlow(sql string) (*explain.SlowReport, error) {
	var (
		out *explain.SlowReport
		err error
	)
	if serr := s.gw.SubmitTask(func() { out, err = s.whySlowServe(sql) }); serr != nil {
		return nil, serr
	}
	return out, err
}

func (s *Service) whySlowServe(sql string) (*explain.SlowReport, error) {
	start := time.Now()
	res, _, _, err := s.modeledResult(sql)
	if err != nil {
		return nil, err
	}
	truth, err := s.oracle.Judge(res)
	if err != nil {
		return nil, err
	}
	s.served.Add(1)
	s.gw.ObserveExplainLatency(time.Since(start))
	return explain.SlowReportFor(res, truth), nil
}

// modeledResult builds the htap.Result an explanation is grounded in —
// plan pair from the gateway's cache (planning on miss), latencies from
// the calibrated model — without executing the query.
func (s *Service) modeledResult(sql string) (*htap.Result, *gateway.CachedPlan, bool, error) {
	if kind := sqlparser.StatementKind(sql); kind != "select" {
		return nil, nil, false, fmt.Errorf("explainsvc: only SELECT statements can be explained, got %s", kind)
	}
	entry, cached, err := s.gw.PlanPair(sql)
	if err != nil {
		return nil, nil, false, err
	}
	cal := s.gw.Calibrator()
	calTP := cal.CalibratedDuration(plan.TP, entry.TPTime)
	calAP := cal.CalibratedDuration(plan.AP, entry.APTime)
	winner := plan.AP
	if calTP <= calAP {
		winner = plan.TP
	}
	res := &htap.Result{SQL: sql, Pair: entry.Pair, TPTime: calTP, APTime: calAP, Winner: winner}
	return res, entry, cached, nil
}

// Stats snapshots the service gauges for the gateway's /metrics.
func (s *Service) Stats() gateway.ExplainStats {
	acc, n := windowAccuracy(s.win.snapshot(), s.gw.Calibrator())
	return gateway.ExplainStats{
		Served:         s.served.Load(),
		KBHits:         s.kbHits.Load(),
		Retrains:       s.retrains.Load(),
		KBEntries:      int64(s.kb.Len()),
		KBExpired:      s.kbExpired.Load(),
		WindowSamples:  int64(n),
		RouterAccuracy: acc,
	}
}

// Close stops the maintenance loop and, when a state directory is
// configured, persists the live router and knowledge base.
func (s *Service) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	if s.cfg.Dir == "" {
		return nil
	}
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	return saveState(s.cfg.Dir, s.Router(), s.kb)
}
