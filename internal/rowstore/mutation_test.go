package rowstore

import (
	"testing"

	"htapxplain/internal/catalog"
	"htapxplain/internal/value"
)

func mutCatalog() *catalog.Catalog {
	cat := catalog.New(1)
	_ = cat.AddTable(&catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "k", Type: catalog.TypeInt, NDV: 100},
			{Name: "s", Type: catalog.TypeString, NDV: 100},
		},
		Indexes: []catalog.Index{
			{Name: "pk_t", Table: "t", Column: "k", Kind: catalog.PrimaryIndex, Unique: true},
		},
		Rows: 4, AvgRowBytes: 16,
	})
	return cat
}

func mutStore(t *testing.T) *Store {
	t.Helper()
	data := map[string][]value.Row{
		"t": {
			{value.NewInt(10), value.NewString("a")},
			{value.NewInt(20), value.NewString("b")},
			{value.NewInt(30), value.NewString("c")},
			{value.NewInt(40), value.NewString("d")},
		},
	}
	s, err := NewStore(mutCatalog(), data)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return s
}

func TestInsertAssignsLSNAndRIDs(t *testing.T) {
	s := mutStore(t)
	mut, err := s.Insert("t", []value.Row{
		{value.NewInt(50), value.NewString("e")},
		{value.NewInt(60), value.NewString("f")},
	})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if mut.LSN != 1 || s.CommitLSN() != 1 {
		t.Errorf("LSN = %d (store %d), want 1", mut.LSN, s.CommitLSN())
	}
	if len(mut.Inserts) != 2 || mut.Inserts[0].RID != 4 || mut.Inserts[1].RID != 5 {
		t.Errorf("inserts = %+v, want RIDs 4,5", mut.Inserts)
	}
	tb, _ := s.Table("t")
	if tb.NumLive() != 6 || tb.NumRows() != 6 {
		t.Errorf("live=%d physical=%d, want 6/6", tb.NumLive(), tb.NumRows())
	}
	ix, _ := tb.IndexOn("k")
	if ids := ix.Lookup(value.NewInt(60)); len(ids) != 1 || ids[0] != 5 {
		t.Errorf("index lookup of inserted key = %v, want [5]", ids)
	}
}

func TestDeleteTombstonesAndUnindexes(t *testing.T) {
	s := mutStore(t)
	mut, err := s.Delete("t", []int64{1})
	if err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if len(mut.Deletes) != 1 || mut.Deletes[0] != 1 {
		t.Errorf("deletes = %v", mut.Deletes)
	}
	tb, _ := s.Table("t")
	if tb.NumLive() != 3 || tb.NumRows() != 4 {
		t.Errorf("live=%d physical=%d, want 3/4 (tombstone, no compaction)", tb.NumLive(), tb.NumRows())
	}
	ix, _ := tb.IndexOn("k")
	if ids := ix.Lookup(value.NewInt(20)); len(ids) != 0 {
		t.Errorf("deleted key still indexed: %v", ids)
	}
	if rows := tb.Scan(); len(rows) != 3 {
		t.Errorf("Scan returned %d rows, want 3", len(rows))
	}
	// deleting a dead RID is rejected and consumes no LSN
	if _, err := s.Delete("t", []int64{1}); err == nil {
		t.Error("double delete succeeded")
	}
	if s.CommitLSN() != 1 {
		t.Errorf("failed delete advanced LSN to %d", s.CommitLSN())
	}
}

func TestUpdateIsDeletePlusInsert(t *testing.T) {
	s := mutStore(t)
	tb0, _ := s.Table("t")
	oldRow := tb0.Row(2)
	mut, err := s.Update("t", []int64{2}, []value.Row{{value.NewInt(35), value.NewString("c2")}})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if len(mut.Deletes) != 1 || mut.Deletes[0] != 2 {
		t.Errorf("deletes = %v, want [2]", mut.Deletes)
	}
	if len(mut.Inserts) != 1 || mut.Inserts[0].RID != 4 {
		t.Errorf("inserts = %+v, want new version at RID 4", mut.Inserts)
	}
	if mut.NumRowsAffected() != 1 {
		t.Errorf("NumRowsAffected = %d, want 1", mut.NumRowsAffected())
	}
	tb, _ := s.Table("t")
	// the old heap slot is untouched (aliased batches stay valid)
	if got := tb.Heap()[2]; got[0] != oldRow[0] || got[1] != oldRow[1] {
		t.Errorf("update rewrote heap slot in place: %v", got)
	}
	ix, _ := tb.IndexOn("k")
	if ids := ix.Lookup(value.NewInt(30)); len(ids) != 0 {
		t.Errorf("old key still indexed: %v", ids)
	}
	if ids := ix.Lookup(value.NewInt(35)); len(ids) != 1 || ids[0] != 4 {
		t.Errorf("new key lookup = %v, want [4]", ids)
	}
	if tb.NumLive() != 4 {
		t.Errorf("live = %d, want 4", tb.NumLive())
	}
}

func TestScanLiveParallelSlices(t *testing.T) {
	s := mutStore(t)
	if _, err := s.Delete("t", []int64{0, 3}); err != nil {
		t.Fatal(err)
	}
	tb, _ := s.Table("t")
	rids, rows := tb.ScanLive()
	if len(rids) != 2 || len(rows) != 2 {
		t.Fatalf("ScanLive = %v / %d rows, want 2/2", rids, len(rows))
	}
	if rids[0] != 1 || rids[1] != 2 {
		t.Errorf("rids = %v, want [1 2]", rids)
	}
	if rows[0][0].I != 20 || rows[1][0].I != 30 {
		t.Errorf("rows = %v", rows)
	}
}

func TestIndexRangeAfterMutations(t *testing.T) {
	s := mutStore(t)
	if _, err := s.Insert("t", []value.Row{{value.NewInt(25), value.NewString("x")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("t", []int64{0}); err != nil { // k=10
		t.Fatal(err)
	}
	tb, _ := s.Table("t")
	ix, _ := tb.IndexOn("k")
	lo, hi := value.NewInt(0), value.NewInt(30)
	ids := ix.Range(&lo, &hi)
	// live keys in range: 20 (rid 1), 25 (rid 4), 30 (rid 2), in key order
	want := []int32{1, 4, 2}
	if len(ids) != len(want) {
		t.Fatalf("Range = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Range = %v, want %v", ids, want)
		}
	}
}
