// Package rowstore implements the TP engine's row-oriented storage: heap
// tables of complete rows plus ordered secondary structures (sorted-key
// indexes with binary search, the in-memory equivalent of B+trees) that
// support point lookups and range scans. The TP optimizer prefers plans
// that exploit these indexes; when no index applies it is forced into full
// scans and nested-loop joins — the situation the paper's Example 1 hinges
// on.
//
// The row store is also the system's write primary. The heap is
// append-only and versioned: every INSERT appends a new row version, an
// UPDATE appends the new version and tombstones the old one, and a DELETE
// only tombstones — stored rows are never mutated in place, which is what
// lets execution batches alias heap rows without copying. Each committed
// mutation is stamped with a monotonic commit LSN and returned as a
// repl.Mutation for the column store's delta layer to replay. A row
// version's RID is its heap position (stable forever, since the heap never
// compacts). Secondary indexes are maintained synchronously under the
// table lock, so index lookups only ever see live versions.
package rowstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"htapxplain/internal/catalog"
	"htapxplain/internal/repl"
	"htapxplain/internal/value"
)

// version carries the visibility metadata of one heap slot.
type version struct {
	insertLSN uint64
	deleteLSN uint64 // 0 = live
}

// Table is one row-oriented table: the versioned heap plus its indexes.
// All access goes through the table's RWMutex: readers take snapshots
// under RLock; the (single) writer mutates under Lock.
type Table struct {
	Meta *catalog.Table

	mu       sync.RWMutex
	rows     []value.Row // append-only version heap; RID == position
	versions []version   // parallel to rows
	live     int         // number of undeleted versions
	// indexes maps lower-cased column name → ordered index.
	indexes map[string]*Index
}

// Index is an ordered single-column index: keys sorted ascending, each with
// the heap positions of matching live rows. It shares its owning table's
// lock.
type Index struct {
	Column string
	Col    int // column position in the table
	mu     *sync.RWMutex
	keys   []value.Value
	rowIDs [][]int32
}

// Len returns the number of distinct keys.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.keys)
}

// Store is the row engine's storage manager and the write primary: it owns
// the commit LSN.
type Store struct {
	tables    map[string]*Table
	commitLSN atomic.Uint64
}

// NewStore builds a row store over the given physical data, creating every
// index the catalog declares. Bulk-loaded rows carry insert LSN 0.
func NewStore(cat *catalog.Catalog, data map[string][]value.Row) (*Store, error) {
	s := &Store{tables: make(map[string]*Table, len(data))}
	for _, meta := range cat.Tables() {
		rows, ok := data[strings.ToLower(meta.Name)]
		if !ok {
			return nil, fmt.Errorf("rowstore: no data for table %q", meta.Name)
		}
		t := &Table{
			Meta:     meta,
			rows:     rows,
			versions: make([]version, len(rows)),
			live:     len(rows),
			indexes:  make(map[string]*Index),
		}
		for _, ixMeta := range meta.Indexes {
			ix, err := buildIndex(t, ixMeta.Column)
			if err != nil {
				return nil, err
			}
			t.indexes[strings.ToLower(ixMeta.Column)] = ix
		}
		s.tables[strings.ToLower(meta.Name)] = t
	}
	return s, nil
}

// Table returns the named table.
func (s *Store) Table(name string) (*Table, bool) {
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// CommitLSN returns the LSN of the last committed mutation (0 if the store
// has only its bulk-loaded base).
func (s *Store) CommitLSN() uint64 { return s.commitLSN.Load() }

// BuildIndex creates (or replaces) an index on the column at runtime —
// used when the paper's "additional user context" adds an index.
func (s *Store) BuildIndex(table, column string) error {
	t, ok := s.Table(table)
	if !ok {
		return fmt.Errorf("rowstore: no such table %q", table)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ix, err := buildIndex(t, column)
	if err != nil {
		return err
	}
	t.indexes[strings.ToLower(column)] = ix
	return nil
}

// DropIndex removes a runtime index.
func (s *Store) DropIndex(table, column string) error {
	t, ok := s.Table(table)
	if !ok {
		return fmt.Errorf("rowstore: no such table %q", table)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := strings.ToLower(column)
	if _, ok := t.indexes[key]; !ok {
		return fmt.Errorf("rowstore: no index on %s.%s", table, column)
	}
	delete(t.indexes, key)
	return nil
}

// buildIndex indexes the live versions of t. Callers hold t.mu (or own t
// exclusively during construction).
func buildIndex(t *Table, column string) (*Index, error) {
	col := t.Meta.ColumnIndex(column)
	if col < 0 {
		return nil, fmt.Errorf("rowstore: no column %q in %q", column, t.Meta.Name)
	}
	type kv struct {
		key value.Value
		id  int32
	}
	pairs := make([]kv, 0, t.live)
	for i, r := range t.rows {
		if t.versions[i].deleteLSN != 0 {
			continue
		}
		pairs = append(pairs, kv{key: r[col], id: int32(i)})
	}
	sort.SliceStable(pairs, func(a, b int) bool {
		return pairs[a].key.Compare(pairs[b].key) < 0
	})
	ix := &Index{Column: strings.ToLower(column), Col: col, mu: &t.mu}
	for _, p := range pairs {
		n := len(ix.keys)
		if n > 0 && ix.keys[n-1].Compare(p.key) == 0 {
			ix.rowIDs[n-1] = append(ix.rowIDs[n-1], p.id)
		} else {
			ix.keys = append(ix.keys, p.key)
			ix.rowIDs = append(ix.rowIDs, []int32{p.id})
		}
	}
	return ix, nil
}

// ---------------------------------------------------------------- writes

// Insert appends the rows as new live versions, maintains every index, and
// commits at a fresh LSN. The returned mutation is the replication-log
// record for the column store.
func (s *Store) Insert(table string, rows []value.Row) (*repl.Mutation, error) {
	t, ok := s.Table(table)
	if !ok {
		return nil, fmt.Errorf("rowstore: no such table %q", table)
	}
	for _, r := range rows {
		if len(r) != len(t.Meta.Columns) {
			return nil, fmt.Errorf("rowstore: %s expects %d columns, got %d",
				t.Meta.Name, len(t.Meta.Columns), len(r))
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	lsn := s.commitLSN.Add(1)
	mut := &repl.Mutation{LSN: lsn, Table: strings.ToLower(t.Meta.Name)}
	for _, r := range rows {
		rid := t.appendVersion(r, lsn)
		mut.Inserts = append(mut.Inserts, repl.RowVersion{RID: rid, Row: r})
	}
	return mut, nil
}

// Delete tombstones the given live row versions (RIDs) and unlinks them
// from every index. Already-dead or out-of-range RIDs are rejected.
func (s *Store) Delete(table string, rids []int64) (*repl.Mutation, error) {
	t, ok := s.Table(table)
	if !ok {
		return nil, fmt.Errorf("rowstore: no such table %q", table)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkLive(rids); err != nil {
		return nil, err
	}
	lsn := s.commitLSN.Add(1)
	mut := &repl.Mutation{LSN: lsn, Table: strings.ToLower(t.Meta.Name)}
	for _, rid := range rids {
		t.tombstone(rid, lsn)
		mut.Deletes = append(mut.Deletes, rid)
	}
	return mut, nil
}

// Update replaces the given live versions with newRows (parallel slices):
// the old version is tombstoned and the new image appended as a fresh
// version, so heap slots are never rewritten and aliased batches stay
// valid. Replicated as delete-old + insert-new in one mutation.
func (s *Store) Update(table string, rids []int64, newRows []value.Row) (*repl.Mutation, error) {
	t, ok := s.Table(table)
	if !ok {
		return nil, fmt.Errorf("rowstore: no such table %q", table)
	}
	if len(rids) != len(newRows) {
		return nil, fmt.Errorf("rowstore: update arity mismatch: %d rids, %d rows", len(rids), len(newRows))
	}
	for _, r := range newRows {
		if len(r) != len(t.Meta.Columns) {
			return nil, fmt.Errorf("rowstore: %s expects %d columns, got %d",
				t.Meta.Name, len(t.Meta.Columns), len(r))
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkLive(rids); err != nil {
		return nil, err
	}
	lsn := s.commitLSN.Add(1)
	mut := &repl.Mutation{LSN: lsn, Table: strings.ToLower(t.Meta.Name)}
	for i, rid := range rids {
		t.tombstone(rid, lsn)
		mut.Deletes = append(mut.Deletes, rid)
		newRID := t.appendVersion(newRows[i], lsn)
		mut.Inserts = append(mut.Inserts, repl.RowVersion{RID: newRID, Row: newRows[i]})
	}
	return mut, nil
}

// appendVersion appends one live version and indexes it. Caller holds
// t.mu.
func (t *Table) appendVersion(r value.Row, lsn uint64) int64 {
	rid := int64(len(t.rows))
	t.rows = append(t.rows, r)
	t.versions = append(t.versions, version{insertLSN: lsn})
	t.live++
	for _, ix := range t.indexes {
		ix.insertLocked(r[ix.Col], int32(rid))
	}
	return rid
}

// tombstone marks one live version deleted and unindexes it. Caller holds
// t.mu and has validated rid via checkLive.
func (t *Table) tombstone(rid int64, lsn uint64) {
	t.versions[rid].deleteLSN = lsn
	t.live--
	r := t.rows[rid]
	for _, ix := range t.indexes {
		ix.removeLocked(r[ix.Col], int32(rid))
	}
}

// checkLive validates that every rid names a live version. Caller holds
// t.mu.
func (t *Table) checkLive(rids []int64) error {
	for _, rid := range rids {
		if rid < 0 || rid >= int64(len(t.rows)) {
			return fmt.Errorf("rowstore: %s has no row %d", t.Meta.Name, rid)
		}
		if t.versions[rid].deleteLSN != 0 {
			return fmt.Errorf("rowstore: %s row %d is already deleted", t.Meta.Name, rid)
		}
	}
	return nil
}

// insertLocked adds (key, id) to the index. Caller holds the table lock.
func (ix *Index) insertLocked(key value.Value, id int32) {
	i := sort.Search(len(ix.keys), func(i int) bool {
		return ix.keys[i].Compare(key) >= 0
	})
	if i < len(ix.keys) && ix.keys[i].Compare(key) == 0 {
		ix.rowIDs[i] = append(ix.rowIDs[i], id)
		return
	}
	ix.keys = append(ix.keys, value.Value{})
	copy(ix.keys[i+1:], ix.keys[i:])
	ix.keys[i] = key
	ix.rowIDs = append(ix.rowIDs, nil)
	copy(ix.rowIDs[i+1:], ix.rowIDs[i:])
	ix.rowIDs[i] = []int32{id}
}

// removeLocked drops (key, id) from the index, keeping postings in heap
// order so index-ordered scans stay deterministic. Caller holds the table
// lock.
func (ix *Index) removeLocked(key value.Value, id int32) {
	i := sort.Search(len(ix.keys), func(i int) bool {
		return ix.keys[i].Compare(key) >= 0
	})
	if i >= len(ix.keys) || ix.keys[i].Compare(key) != 0 {
		return
	}
	ids := ix.rowIDs[i]
	for j, v := range ids {
		if v == id {
			copy(ids[j:], ids[j+1:])
			ix.rowIDs[i] = ids[:len(ids)-1]
			break
		}
	}
	if len(ix.rowIDs[i]) == 0 {
		copy(ix.keys[i:], ix.keys[i+1:])
		ix.keys = ix.keys[:len(ix.keys)-1]
		copy(ix.rowIDs[i:], ix.rowIDs[i+1:])
		ix.rowIDs = ix.rowIDs[:len(ix.rowIDs)-1]
	}
}

// ---------------------------------------------------------------- reads

// NumRows returns the physical heap size (live + tombstoned versions).
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// NumLive returns the live row count.
func (t *Table) NumLive() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// Row returns the heap row at position id. Heap slots are immutable once
// written, so the returned row is safe to read without further locking.
func (t *Table) Row(id int32) value.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[id]
}

// Heap returns a stable snapshot of the full version heap (including
// tombstoned slots), indexable by RID. The slice header is a snapshot;
// the rows it references are immutable.
func (t *Table) Heap() []value.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[:len(t.rows):len(t.rows)]
}

// Scan returns a snapshot of all live rows (a full table scan). The
// returned rows alias storage and must not be mutated. When the table has
// never seen a delete the snapshot aliases the heap itself with no
// copying; otherwise a fresh slice of live row references is built.
func (t *Table) Scan() []value.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.live == len(t.rows) {
		return t.rows[:len(t.rows):len(t.rows)]
	}
	out := make([]value.Row, 0, t.live)
	for i, r := range t.rows {
		if t.versions[i].deleteLSN == 0 {
			out = append(out, r)
		}
	}
	return out
}

// ScanLive returns parallel snapshots of the live RIDs and their rows —
// the access path DML statements use to evaluate their WHERE clause before
// mutating.
func (t *Table) ScanLive() (rids []int64, rows []value.Row) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rids = make([]int64, 0, t.live)
	rows = make([]value.Row, 0, t.live)
	for i, r := range t.rows {
		if t.versions[i].deleteLSN == 0 {
			rids = append(rids, int64(i))
			rows = append(rows, r)
		}
	}
	return rids, rows
}

// IndexOn returns the index on the column, if one exists.
func (t *Table) IndexOn(column string) (*Index, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix, ok := t.indexes[strings.ToLower(column)]
	return ix, ok
}

// Lookup returns the heap positions of live rows whose indexed column
// equals key. The result is freshly allocated (never aliases index
// internals), so it stays valid after concurrent index maintenance.
func (ix *Index) Lookup(key value.Value) []int32 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	i := sort.Search(len(ix.keys), func(i int) bool {
		return ix.keys[i].Compare(key) >= 0
	})
	if i < len(ix.keys) && ix.keys[i].Compare(key) == 0 {
		out := make([]int32, len(ix.rowIDs[i]))
		copy(out, ix.rowIDs[i])
		return out
	}
	return nil
}

// LookupAppend appends the matching heap positions to dst and returns it —
// the allocation-free variant of Lookup for per-row probe loops
// (index nested-loop joins) that reuse one buffer across probes.
func (ix *Index) LookupAppend(key value.Value, dst []int32) []int32 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	i := sort.Search(len(ix.keys), func(i int) bool {
		return ix.keys[i].Compare(key) >= 0
	})
	if i < len(ix.keys) && ix.keys[i].Compare(key) == 0 {
		dst = append(dst, ix.rowIDs[i]...)
	}
	return dst
}

// Range returns heap positions of rows with lo <= key <= hi. Nil bounds
// are open. The scan visits keys in ascending order.
func (ix *Index) Range(lo, hi *value.Value) []int32 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	start := 0
	if lo != nil {
		start = sort.Search(len(ix.keys), func(i int) bool {
			return ix.keys[i].Compare(*lo) >= 0
		})
	}
	var out []int32
	for i := start; i < len(ix.keys); i++ {
		if hi != nil && ix.keys[i].Compare(*hi) > 0 {
			break
		}
		out = append(out, ix.rowIDs[i]...)
	}
	return out
}

// Ascending returns row ids in index-key order — the access path behind
// index-ordered Top-N plans (ORDER BY indexed_col LIMIT n).
func (ix *Index) Ascending() []int32 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []int32
	for _, ids := range ix.rowIDs {
		out = append(out, ids...)
	}
	return out
}

// Descending returns row ids in reverse key order.
func (ix *Index) Descending() []int32 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []int32
	for i := len(ix.rowIDs) - 1; i >= 0; i-- {
		out = append(out, ix.rowIDs[i]...)
	}
	return out
}
