// Package rowstore implements the TP engine's row-oriented storage: heap
// tables of complete rows plus ordered secondary structures (sorted-key
// indexes with binary search, the in-memory equivalent of B+trees) that
// support point lookups and range scans. The TP optimizer prefers plans
// that exploit these indexes; when no index applies it is forced into full
// scans and nested-loop joins — the situation the paper's Example 1 hinges
// on.
package rowstore

import (
	"fmt"
	"sort"
	"strings"

	"htapxplain/internal/catalog"
	"htapxplain/internal/value"
)

// Table is one row-oriented table: the heap plus its indexes.
type Table struct {
	Meta *catalog.Table
	rows []value.Row
	// indexes maps lower-cased column name → ordered index.
	indexes map[string]*Index
}

// Index is an ordered single-column index: keys sorted ascending, each with
// the heap positions of matching rows.
type Index struct {
	Column string
	Col    int // column position in the table
	keys   []value.Value
	rowIDs [][]int32
}

// Len returns the number of distinct keys.
func (ix *Index) Len() int { return len(ix.keys) }

// Store is the row engine's storage manager.
type Store struct {
	tables map[string]*Table
}

// NewStore builds a row store over the given physical data, creating every
// index the catalog declares.
func NewStore(cat *catalog.Catalog, data map[string][]value.Row) (*Store, error) {
	s := &Store{tables: make(map[string]*Table, len(data))}
	for _, meta := range cat.Tables() {
		rows, ok := data[strings.ToLower(meta.Name)]
		if !ok {
			return nil, fmt.Errorf("rowstore: no data for table %q", meta.Name)
		}
		t := &Table{Meta: meta, rows: rows, indexes: make(map[string]*Index)}
		for _, ixMeta := range meta.Indexes {
			ix, err := buildIndex(meta, rows, ixMeta.Column)
			if err != nil {
				return nil, err
			}
			t.indexes[strings.ToLower(ixMeta.Column)] = ix
		}
		s.tables[strings.ToLower(meta.Name)] = t
	}
	return s, nil
}

// Table returns the named table.
func (s *Store) Table(name string) (*Table, bool) {
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// BuildIndex creates (or replaces) an index on the column at runtime —
// used when the paper's "additional user context" adds an index.
func (s *Store) BuildIndex(table, column string) error {
	t, ok := s.Table(table)
	if !ok {
		return fmt.Errorf("rowstore: no such table %q", table)
	}
	ix, err := buildIndex(t.Meta, t.rows, column)
	if err != nil {
		return err
	}
	t.indexes[strings.ToLower(column)] = ix
	return nil
}

// DropIndex removes a runtime index.
func (s *Store) DropIndex(table, column string) error {
	t, ok := s.Table(table)
	if !ok {
		return fmt.Errorf("rowstore: no such table %q", table)
	}
	key := strings.ToLower(column)
	if _, ok := t.indexes[key]; !ok {
		return fmt.Errorf("rowstore: no index on %s.%s", table, column)
	}
	delete(t.indexes, key)
	return nil
}

func buildIndex(meta *catalog.Table, rows []value.Row, column string) (*Index, error) {
	col := meta.ColumnIndex(column)
	if col < 0 {
		return nil, fmt.Errorf("rowstore: no column %q in %q", column, meta.Name)
	}
	type kv struct {
		key value.Value
		id  int32
	}
	pairs := make([]kv, len(rows))
	for i, r := range rows {
		pairs[i] = kv{key: r[col], id: int32(i)}
	}
	sort.SliceStable(pairs, func(a, b int) bool {
		return pairs[a].key.Compare(pairs[b].key) < 0
	})
	ix := &Index{Column: strings.ToLower(column), Col: col}
	for _, p := range pairs {
		n := len(ix.keys)
		if n > 0 && ix.keys[n-1].Compare(p.key) == 0 {
			ix.rowIDs[n-1] = append(ix.rowIDs[n-1], p.id)
		} else {
			ix.keys = append(ix.keys, p.key)
			ix.rowIDs = append(ix.rowIDs, []int32{p.id})
		}
	}
	return ix, nil
}

// NumRows returns the physical row count.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns the heap row at position id.
func (t *Table) Row(id int32) value.Row { return t.rows[id] }

// Scan returns all rows (a full table scan). The returned slice aliases
// storage; callers must not mutate rows.
func (t *Table) Scan() []value.Row { return t.rows }

// IndexOn returns the index on the column, if one exists.
func (t *Table) IndexOn(column string) (*Index, bool) {
	ix, ok := t.indexes[strings.ToLower(column)]
	return ix, ok
}

// Lookup returns the heap positions of rows whose indexed column equals
// key.
func (ix *Index) Lookup(key value.Value) []int32 {
	i := sort.Search(len(ix.keys), func(i int) bool {
		return ix.keys[i].Compare(key) >= 0
	})
	if i < len(ix.keys) && ix.keys[i].Compare(key) == 0 {
		return ix.rowIDs[i]
	}
	return nil
}

// Range returns heap positions of rows with lo <= key <= hi. Nil bounds
// are open. The scan visits keys in ascending order.
func (ix *Index) Range(lo, hi *value.Value) []int32 {
	start := 0
	if lo != nil {
		start = sort.Search(len(ix.keys), func(i int) bool {
			return ix.keys[i].Compare(*lo) >= 0
		})
	}
	var out []int32
	for i := start; i < len(ix.keys); i++ {
		if hi != nil && ix.keys[i].Compare(*hi) > 0 {
			break
		}
		out = append(out, ix.rowIDs[i]...)
	}
	return out
}

// Ascending returns row ids in index-key order — the access path behind
// index-ordered Top-N plans (ORDER BY indexed_col LIMIT n).
func (ix *Index) Ascending() []int32 {
	var out []int32
	for _, ids := range ix.rowIDs {
		out = append(out, ids...)
	}
	return out
}

// Descending returns row ids in reverse key order.
func (ix *Index) Descending() []int32 {
	var out []int32
	for i := len(ix.rowIDs) - 1; i >= 0; i-- {
		out = append(out, ix.rowIDs[i]...)
	}
	return out
}
