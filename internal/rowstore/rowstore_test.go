package rowstore

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"htapxplain/internal/catalog"
	"htapxplain/internal/value"
)

// tinyCatalog builds a one-table catalog with an indexed int column and
// an unindexed string column.
func tinyCatalog() *catalog.Catalog {
	c := catalog.New(1)
	_ = c.AddTable(&catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "k", Type: catalog.TypeInt, NDV: 100},
			{Name: "s", Type: catalog.TypeString, NDV: 100},
		},
		Indexes:     []catalog.Index{{Name: "pk_t", Table: "t", Column: "k", Kind: catalog.PrimaryIndex}},
		Rows:        100,
		AvgRowBytes: 32,
	})
	return c
}

func tinyStore(t *testing.T, keys []int64) (*Store, *Table) {
	t.Helper()
	rows := make([]value.Row, len(keys))
	for i, k := range keys {
		rows[i] = value.Row{value.NewInt(k), value.NewString("v")}
	}
	s, err := NewStore(tinyCatalog(), map[string][]value.Row{"t": rows})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	tb, _ := s.Table("t")
	return s, tb
}

func TestLookupFindsAllDuplicates(t *testing.T) {
	_, tb := tinyStore(t, []int64{5, 3, 5, 1, 5, 2})
	ix, ok := tb.IndexOn("k")
	if !ok {
		t.Fatal("missing index")
	}
	ids := ix.Lookup(value.NewInt(5))
	if len(ids) != 3 {
		t.Fatalf("Lookup(5) = %v, want 3 hits", ids)
	}
	for _, id := range ids {
		if tb.Row(id)[0].I != 5 {
			t.Fatalf("row %d has key %v", id, tb.Row(id)[0])
		}
	}
	if got := ix.Lookup(value.NewInt(99)); got != nil {
		t.Errorf("Lookup(99) = %v, want nil", got)
	}
}

func TestRangeSemantics(t *testing.T) {
	_, tb := tinyStore(t, []int64{10, 20, 30, 40, 50})
	ix, _ := tb.IndexOn("k")
	lo, hi := value.NewInt(20), value.NewInt(40)
	ids := ix.Range(&lo, &hi)
	var got []int64
	for _, id := range ids {
		got = append(got, tb.Row(id)[0].I)
	}
	if len(got) != 3 || got[0] != 20 || got[2] != 40 {
		t.Fatalf("Range[20,40] = %v", got)
	}
	// open bounds
	if n := len(ix.Range(nil, nil)); n != 5 {
		t.Errorf("open range = %d rows", n)
	}
	onlyLo := value.NewInt(35)
	if n := len(ix.Range(&onlyLo, nil)); n != 2 {
		t.Errorf("range [35,∞) = %d rows", n)
	}
	onlyHi := value.NewInt(15)
	if n := len(ix.Range(nil, &onlyHi)); n != 1 {
		t.Errorf("range (-∞,15] = %d rows", n)
	}
}

func TestAscendingDescendingOrder(t *testing.T) {
	_, tb := tinyStore(t, []int64{4, 1, 3, 2})
	ix, _ := tb.IndexOn("k")
	asc := ix.Ascending()
	for i := 1; i < len(asc); i++ {
		if tb.Row(asc[i-1])[0].I > tb.Row(asc[i])[0].I {
			t.Fatal("Ascending not in key order")
		}
	}
	desc := ix.Descending()
	for i := 1; i < len(desc); i++ {
		if tb.Row(desc[i-1])[0].I < tb.Row(desc[i])[0].I {
			t.Fatal("Descending not in reverse key order")
		}
	}
}

// TestIndexMatchesNaiveScanProperty: for random datasets and probes, the
// index must return exactly the rows a naive scan finds.
func TestIndexMatchesNaiveScanProperty(t *testing.T) {
	prop := func(seed int64, probe uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(rng.Intn(20))
		}
		rows := make([]value.Row, n)
		for i, k := range keys {
			rows[i] = value.Row{value.NewInt(k), value.NewString("v")}
		}
		s, err := NewStore(tinyCatalog(), map[string][]value.Row{"t": rows})
		if err != nil {
			return false
		}
		tb, _ := s.Table("t")
		ix, _ := tb.IndexOn("k")
		key := int64(probe % 20)
		var want []int32
		for i, k := range keys {
			if k == key {
				want = append(want, int32(i))
			}
		}
		got := ix.Lookup(value.NewInt(key))
		if len(got) != len(want) {
			return false
		}
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRangeMatchesNaiveScanProperty(t *testing.T) {
	prop := func(seed int64, a, b uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		rows := make([]value.Row, n)
		keys := make([]int64, n)
		for i := range rows {
			keys[i] = int64(rng.Intn(30))
			rows[i] = value.Row{value.NewInt(keys[i]), value.NewString("v")}
		}
		s, err := NewStore(tinyCatalog(), map[string][]value.Row{"t": rows})
		if err != nil {
			return false
		}
		tb, _ := s.Table("t")
		ix, _ := tb.IndexOn("k")
		lo, hi := int64(a%30), int64(b%30)
		if lo > hi {
			lo, hi = hi, lo
		}
		lov, hiv := value.NewInt(lo), value.NewInt(hi)
		got := ix.Range(&lov, &hiv)
		want := 0
		for _, k := range keys {
			if k >= lo && k <= hi {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBuildAndDropRuntimeIndex(t *testing.T) {
	s, tb := tinyStore(t, []int64{1, 2, 3})
	if _, ok := tb.IndexOn("s"); ok {
		t.Fatal("s should start unindexed")
	}
	if err := s.BuildIndex("t", "s"); err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	ix, ok := tb.IndexOn("s")
	if !ok {
		t.Fatal("index missing after BuildIndex")
	}
	if got := ix.Lookup(value.NewString("v")); len(got) != 3 {
		t.Errorf("lookup on new index = %v", got)
	}
	if err := s.DropIndex("t", "s"); err != nil {
		t.Fatalf("DropIndex: %v", err)
	}
	if err := s.DropIndex("t", "s"); err == nil {
		t.Error("double drop should fail")
	}
	if err := s.BuildIndex("t", "nope"); err == nil {
		t.Error("unknown column should fail")
	}
	if err := s.BuildIndex("nope", "s"); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestNewStoreRequiresAllTables(t *testing.T) {
	if _, err := NewStore(tinyCatalog(), map[string][]value.Row{}); err == nil {
		t.Error("missing table data should error")
	}
}

func TestScanReturnsEverything(t *testing.T) {
	_, tb := tinyStore(t, []int64{1, 2, 3, 4})
	if got := len(tb.Scan()); got != 4 || tb.NumRows() != 4 {
		t.Errorf("Scan/NumRows = %d/%d", got, tb.NumRows())
	}
}

func TestIndexLenCountsDistinctKeys(t *testing.T) {
	_, tb := tinyStore(t, []int64{7, 7, 7, 8})
	ix, _ := tb.IndexOn("k")
	if ix.Len() != 2 {
		t.Errorf("Len = %d, want 2 distinct keys", ix.Len())
	}
}
