package rowstore

import (
	"fmt"
	"strings"

	"htapxplain/internal/catalog"
	"htapxplain/internal/repl"
	"htapxplain/internal/value"
)

// This file is the row store's durability surface: heap snapshots feed the
// recovery subsystem's checkpoints, NewStoreFromSnapshot restores a store
// from one, and Replay re-applies WAL mutations — with their original LSNs
// and RIDs — on top of the restored heap. Because the heap is append-only
// and RIDs are heap positions, replaying the exact committed prefix is
// deterministic: an insert's recorded RID must equal the heap position the
// replay assigns, and any divergence is reported as corruption instead of
// being papered over.

// VersionMeta is the visibility metadata of one heap slot, exported for
// checkpoints.
type VersionMeta struct {
	InsertLSN uint64
	DeleteLSN uint64 // 0 = live
}

// HeapSnapshot is a point-in-time copy of one table's version heap:
// parallel rows and version metadata, indexable by RID. Rows alias the
// immutable heap slots and must not be mutated.
type HeapSnapshot struct {
	Rows     []value.Row
	Versions []VersionMeta
}

// SnapshotHeap copies the table's full version heap (live and tombstoned
// slots) under the read lock. The slice headers are private copies; the
// rows they reference are immutable.
func (t *Table) SnapshotHeap() HeapSnapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	snap := HeapSnapshot{
		Rows:     make([]value.Row, len(t.rows)),
		Versions: make([]VersionMeta, len(t.versions)),
	}
	copy(snap.Rows, t.rows)
	for i, v := range t.versions {
		snap.Versions[i] = VersionMeta{InsertLSN: v.insertLSN, DeleteLSN: v.deleteLSN}
	}
	return snap
}

// NewStoreFromSnapshot rebuilds a store from checkpointed heaps: every
// table's version heap is restored verbatim (RID = heap position, exactly
// as the primary assigned them) and every catalog-declared index is rebuilt
// over the live versions. commitLSN seats the store at the checkpoint's
// commit point; WAL replay continues from commitLSN+1.
func NewStoreFromSnapshot(cat *catalog.Catalog, heaps map[string]HeapSnapshot, commitLSN uint64) (*Store, error) {
	s := &Store{tables: make(map[string]*Table, len(heaps))}
	for _, meta := range cat.Tables() {
		snap, ok := heaps[strings.ToLower(meta.Name)]
		if !ok {
			return nil, fmt.Errorf("rowstore: checkpoint has no table %q", meta.Name)
		}
		if len(snap.Rows) != len(snap.Versions) {
			return nil, fmt.Errorf("rowstore: checkpoint table %q has %d rows but %d versions",
				meta.Name, len(snap.Rows), len(snap.Versions))
		}
		t := &Table{
			Meta:     meta,
			rows:     snap.Rows,
			versions: make([]version, len(snap.Versions)),
			indexes:  make(map[string]*Index),
		}
		for i, vm := range snap.Versions {
			if vm.DeleteLSN > commitLSN || vm.InsertLSN > commitLSN {
				return nil, fmt.Errorf("rowstore: checkpoint table %q row %d carries LSN beyond checkpoint %d",
					meta.Name, i, commitLSN)
			}
			t.versions[i] = version{insertLSN: vm.InsertLSN, deleteLSN: vm.DeleteLSN}
			if vm.DeleteLSN == 0 {
				t.live++
			}
		}
		for ri, r := range snap.Rows {
			if len(r) != len(meta.Columns) {
				return nil, fmt.Errorf("rowstore: checkpoint table %q row %d has %d columns, want %d",
					meta.Name, ri, len(r), len(meta.Columns))
			}
		}
		for _, ixMeta := range meta.Indexes {
			ix, err := buildIndex(t, ixMeta.Column)
			if err != nil {
				return nil, err
			}
			t.indexes[strings.ToLower(ixMeta.Column)] = ix
		}
		s.tables[strings.ToLower(meta.Name)] = t
	}
	s.commitLSN.Store(commitLSN)
	return s, nil
}

// Replay re-applies one logged mutation during recovery, preserving its
// original commit LSN and RIDs. Deletes are applied before inserts (the
// mutation's replay order). Unlike the live write path, Replay does not
// allocate LSNs: it asserts the log's, and fails loudly on any divergence
// between the log and the heap it is rebuilding.
func (s *Store) Replay(mut *repl.Mutation) error {
	t, ok := s.Table(mut.Table)
	if !ok {
		return fmt.Errorf("rowstore: replay references unknown table %q", mut.Table)
	}
	if prev := s.commitLSN.Load(); mut.LSN <= prev {
		return fmt.Errorf("rowstore: replay LSN %d not beyond recovered LSN %d", mut.LSN, prev)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkLive(mut.Deletes); err != nil {
		return fmt.Errorf("rowstore: replay LSN %d: %w", mut.LSN, err)
	}
	for _, ins := range mut.Inserts {
		if len(ins.Row) != len(t.Meta.Columns) {
			return fmt.Errorf("rowstore: replay LSN %d: %s expects %d columns, got %d",
				mut.LSN, t.Meta.Name, len(t.Meta.Columns), len(ins.Row))
		}
	}
	// the heap is rebuilt position-for-position, so each logged RID must be
	// exactly the next heap slot
	nextRID := int64(len(t.rows))
	for i, ins := range mut.Inserts {
		if ins.RID != nextRID+int64(i) {
			return fmt.Errorf("rowstore: replay LSN %d: logged RID %d but heap position is %d (log/checkpoint divergence)",
				mut.LSN, ins.RID, nextRID+int64(i))
		}
	}
	for _, rid := range mut.Deletes {
		t.tombstone(rid, mut.LSN)
	}
	for _, ins := range mut.Inserts {
		t.appendVersion(ins.Row, mut.LSN)
	}
	s.commitLSN.Store(mut.LSN)
	return nil
}
