package rowstore

import (
	"testing"

	"htapxplain/internal/catalog"
	"htapxplain/internal/value"
)

// twoColStore builds a tiny store with one two-column table and the given
// bulk rows.
func twoColStore(t *testing.T, rows []value.Row) *Store {
	t.Helper()
	cat := catalog.New(1)
	if err := cat.AddTable(&catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "k", Type: catalog.TypeInt},
			{Name: "v", Type: catalog.TypeInt},
		},
	}); err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(cat, map[string][]value.Row{"t": rows})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func row2(k, v int64) value.Row { return value.Row{value.NewInt(k), value.NewInt(v)} }

func TestScanLiveAtSnapshotVisibility(t *testing.T) {
	s := twoColStore(t, []value.Row{row2(1, 10)})

	// commit 1: insert k=2 (via the transactional path)
	if _, err := s.ApplyAt("t", nil, []value.Row{row2(2, 20)}, 1); err != nil {
		t.Fatal(err)
	}
	s.PublishCommit(1)
	// commit 2: delete the bulk row (RID 0)
	if _, err := s.ApplyAt("t", []int64{0}, nil, 2); err != nil {
		t.Fatal(err)
	}
	s.PublishCommit(2)

	tbl, _ := s.Table("t")
	want := map[uint64][]int64{
		0: {0},    // snapshot before any commit: only the bulk row
		1: {0, 1}, // after commit 1: both
		2: {1},    // after commit 2: bulk row deleted
		9: {1},    // future snapshots see the latest state
	}
	for snap, wantRIDs := range want {
		rids, rows := tbl.ScanLiveAt(snap)
		if len(rids) != len(wantRIDs) {
			t.Fatalf("snap %d: got RIDs %v, want %v", snap, rids, wantRIDs)
		}
		for i := range rids {
			if rids[i] != wantRIDs[i] {
				t.Fatalf("snap %d: got RIDs %v, want %v", snap, rids, wantRIDs)
			}
		}
		if len(rows) != len(rids) {
			t.Fatalf("snap %d: %d rows for %d RIDs", snap, len(rows), len(rids))
		}
	}
}

func TestApplyAtDoesNotPublish(t *testing.T) {
	s := twoColStore(t, []value.Row{row2(1, 10)})
	if _, err := s.ApplyAt("t", nil, []value.Row{row2(2, 20)}, 1); err != nil {
		t.Fatal(err)
	}
	// applied but unpublished: the commit LSN still reads 0, and a snapshot
	// pinned at it does not see the new version
	if got := s.CommitLSN(); got != 0 {
		t.Fatalf("CommitLSN = %d before PublishCommit, want 0", got)
	}
	tbl, _ := s.Table("t")
	if rids, _ := tbl.ScanLiveAt(s.CommitLSN()); len(rids) != 1 {
		t.Fatalf("unpublished insert visible: RIDs %v", rids)
	}
	s.PublishCommit(1)
	if rids, _ := tbl.ScanLiveAt(s.CommitLSN()); len(rids) != 2 {
		t.Fatalf("published insert not visible: RIDs %v", rids)
	}
}

func TestFirstConflict(t *testing.T) {
	s := twoColStore(t, []value.Row{row2(1, 10), row2(2, 20)})

	if rid, conflict, err := s.FirstConflict("t", []int64{0, 1}); err != nil || conflict {
		t.Fatalf("all-live delete set reported conflict: rid=%d conflict=%v err=%v", rid, conflict, err)
	}
	// a concurrent commit tombstones RID 1
	if _, err := s.ApplyAt("t", []int64{1}, []value.Row{row2(2, 21)}, 1); err != nil {
		t.Fatal(err)
	}
	s.PublishCommit(1)
	rid, conflict, err := s.FirstConflict("t", []int64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !conflict || rid != 1 {
		t.Fatalf("expected conflict on RID 1, got rid=%d conflict=%v", rid, conflict)
	}
	// out-of-range RIDs are internal errors, not conflicts
	if _, _, err := s.FirstConflict("t", []int64{99}); err == nil {
		t.Fatal("out-of-range RID did not error")
	}
	if _, _, err := s.FirstConflict("nope", nil); err == nil {
		t.Fatal("unknown table did not error")
	}
}

func TestApplyAtMaintainsIndexesAndArity(t *testing.T) {
	cat := catalog.New(1)
	if err := cat.AddTable(&catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "k", Type: catalog.TypeInt},
			{Name: "v", Type: catalog.TypeInt},
		},
		Indexes: []catalog.Index{{Name: "t_k", Table: "t", Column: "k"}},
	}); err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(cat, map[string][]value.Row{"t": {row2(1, 10)}})
	if err != nil {
		t.Fatal(err)
	}
	// delete-and-insert in one commit, like an UPDATE
	mut, err := s.ApplyAt("t", []int64{0}, []value.Row{row2(1, 11), row2(2, 22)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.PublishCommit(1)
	if len(mut.Deletes) != 1 || len(mut.Inserts) != 2 || mut.LSN != 1 {
		t.Fatalf("unexpected mutation: %+v", mut)
	}
	tbl, _ := s.Table("t")
	ix, ok := tbl.IndexOn("k")
	if !ok {
		t.Fatal("index missing")
	}
	if ids := ix.Lookup(value.NewInt(1)); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("index lookup k=1: %v, want [1]", ids)
	}
	if ids := ix.Lookup(value.NewInt(2)); len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("index lookup k=2: %v, want [2]", ids)
	}
	// arity violations are rejected before any mutation
	if _, err := s.ApplyAt("t", nil, []value.Row{{value.NewInt(1)}}, 2); err == nil {
		t.Fatal("short row accepted")
	}
	// deleting a dead RID is an invariant violation
	if _, err := s.ApplyAt("t", []int64{0}, nil, 2); err == nil {
		t.Fatal("double delete accepted")
	}
}
