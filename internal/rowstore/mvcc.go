package rowstore

import (
	"fmt"
	"strings"

	"htapxplain/internal/repl"
	"htapxplain/internal/value"
)

// Snapshot reads and transactional commit application. The version heap
// already carries begin/end LSNs per slot (insertLSN/deleteLSN); this
// file adds the MVCC access paths over them:
//
//   - a reader pins a snapshot LSN S and sees exactly the versions with
//     insertLSN <= S and (deleteLSN == 0 or deleteLSN > S);
//   - a transaction buffers its writes and applies them at commit via
//     ApplyAt, which stamps every new version with the commit LSN but
//     does NOT advance the store's published commit LSN — the committer
//     publishes once, after every table of the transaction has applied,
//     so a concurrent snapshot either sees all of a commit or none of it;
//   - first-writer-wins conflict detection is a liveness check over the
//     transaction's delete set (FirstConflict): a base RID that was live
//     at the snapshot but is tombstoned now was written by a concurrent
//     committer, and the later transaction must abort.

// visibleAt reports whether the version is visible to a snapshot at LSN
// snap. Bulk-loaded rows carry insertLSN 0 and are visible to every
// snapshot.
func (v version) visibleAt(snap uint64) bool {
	return v.insertLSN <= snap && (v.deleteLSN == 0 || v.deleteLSN > snap)
}

// ScanLiveAt returns parallel snapshots of the RIDs and rows visible at
// the given snapshot LSN — the access path transactional DML uses to
// evaluate WHERE clauses. Unlike ScanLive it ignores versions committed
// after the snapshot, so repeated statements of one transaction read a
// stable state no matter what commits concurrently.
func (t *Table) ScanLiveAt(snap uint64) (rids []int64, rows []value.Row) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rids = make([]int64, 0, t.live)
	rows = make([]value.Row, 0, t.live)
	for i, r := range t.rows {
		if t.versions[i].visibleAt(snap) {
			rids = append(rids, int64(i))
			rows = append(rows, r)
		}
	}
	return rids, rows
}

// FirstConflict reports the first RID in rids whose version is no longer
// live — i.e. a concurrent transaction deleted or updated it since the
// caller's snapshot (the caller only ever selects RIDs that were live at
// its snapshot, so any tombstone means a later writer got there first).
// The error return is reserved for internal inconsistencies (unknown
// table, out-of-range RID). Callers hold the system's commit critical
// section, so the answer cannot go stale before ApplyAt runs.
func (s *Store) FirstConflict(table string, rids []int64) (int64, bool, error) {
	t, ok := s.Table(table)
	if !ok {
		return 0, false, fmt.Errorf("rowstore: no such table %q", table)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, rid := range rids {
		if rid < 0 || rid >= int64(len(t.rows)) {
			return rid, false, fmt.Errorf("rowstore: %s has no row %d", t.Meta.Name, rid)
		}
		if t.versions[rid].deleteLSN != 0 {
			return rid, true, nil
		}
	}
	return 0, false, nil
}

// ApplyAt applies one transaction's buffered write set for one table at
// the given commit LSN: every delete is tombstoned, then every insert
// appended as a new live version — the same delete-then-insert shape
// Update produces, so replication and WAL replay treat transactional
// commits identically to legacy single-statement ones. The store's
// published commit LSN is NOT advanced; the caller calls PublishCommit
// once after the transaction's last table, keeping multi-table commits
// atomic for snapshot readers. Callers hold the commit critical section
// and have validated deletes via FirstConflict, so a checkLive failure
// here is an invariant violation, not a user error.
func (s *Store) ApplyAt(table string, deletes []int64, inserts []value.Row, lsn uint64) (*repl.Mutation, error) {
	t, ok := s.Table(table)
	if !ok {
		return nil, fmt.Errorf("rowstore: no such table %q", table)
	}
	for _, r := range inserts {
		if len(r) != len(t.Meta.Columns) {
			return nil, fmt.Errorf("rowstore: %s expects %d columns, got %d",
				t.Meta.Name, len(t.Meta.Columns), len(r))
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkLive(deletes); err != nil {
		return nil, err
	}
	mut := &repl.Mutation{LSN: lsn, Table: strings.ToLower(t.Meta.Name)}
	for _, rid := range deletes {
		t.tombstone(rid, lsn)
		mut.Deletes = append(mut.Deletes, rid)
	}
	for _, r := range inserts {
		rid := t.appendVersion(r, lsn)
		mut.Inserts = append(mut.Inserts, repl.RowVersion{RID: rid, Row: r})
	}
	return mut, nil
}

// PublishCommit advances the store's commit LSN to lsn, making every
// version applied at or below it visible to snapshots pinned from now
// on. Callers hold the commit critical section (which is what makes the
// published LSN monotonic).
func (s *Store) PublishCommit(lsn uint64) { s.commitLSN.Store(lsn) }
