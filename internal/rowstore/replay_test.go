package rowstore

import (
	"strings"
	"testing"

	"htapxplain/internal/catalog"
	"htapxplain/internal/repl"
	"htapxplain/internal/value"
)

func replayFixture(t *testing.T) (*catalog.Catalog, *Store) {
	t.Helper()
	cat := catalog.New(1)
	if err := cat.AddTable(&catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "k", Type: catalog.TypeInt},
			{Name: "s", Type: catalog.TypeString},
		},
		Indexes: []catalog.Index{{Name: "pk_t", Table: "t", Column: "k", Kind: catalog.PrimaryIndex}},
		Rows:    2,
	}); err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(cat, map[string][]value.Row{"t": {
		{value.NewInt(1), value.NewString("a")},
		{value.NewInt(2), value.NewString("b")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return cat, s
}

func TestReplayMatchesLiveWritePath(t *testing.T) {
	// the invariant recovery rests on: replaying the mutations the live
	// path emitted reproduces the same heap, LSNs, indexes and live set
	_, live := replayFixture(t)
	m1, err := live.Insert("t", []value.Row{{value.NewInt(3), value.NewString("c")}})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := live.Update("t", []int64{0}, []value.Row{{value.NewInt(1), value.NewString("a2")}})
	if err != nil {
		t.Fatal(err)
	}
	m3, err := live.Delete("t", []int64{1})
	if err != nil {
		t.Fatal(err)
	}

	_, rec := replayFixture(t)
	for _, m := range []*repl.Mutation{m1, m2, m3} {
		if err := rec.Replay(m); err != nil {
			t.Fatalf("Replay(LSN %d): %v", m.LSN, err)
		}
	}
	if rec.CommitLSN() != live.CommitLSN() {
		t.Fatalf("commit LSN %d != live %d", rec.CommitLSN(), live.CommitLSN())
	}
	lt, _ := live.Table("t")
	rt, _ := rec.Table("t")
	ls, rs := lt.SnapshotHeap(), rt.SnapshotHeap()
	if len(ls.Rows) != len(rs.Rows) {
		t.Fatalf("heap sizes diverge: %d vs %d", len(ls.Rows), len(rs.Rows))
	}
	for i := range ls.Rows {
		if ls.Rows[i].String() != rs.Rows[i].String() || ls.Versions[i] != rs.Versions[i] {
			t.Fatalf("slot %d diverges: %v/%v vs %v/%v",
				i, ls.Rows[i], ls.Versions[i], rs.Rows[i], rs.Versions[i])
		}
	}
	ix, _ := rt.IndexOn("k")
	if ids := ix.Lookup(value.NewInt(2)); len(ids) != 0 {
		t.Fatalf("deleted key still indexed after replay: %v", ids)
	}
	if ids := ix.Lookup(value.NewInt(3)); len(ids) != 1 {
		t.Fatalf("replayed insert not indexed: %v", ids)
	}
}

func TestReplayRejectsDivergence(t *testing.T) {
	cases := []struct {
		name string
		mut  *repl.Mutation
		want string
	}{
		{"unknown table", &repl.Mutation{LSN: 1, Table: "ghost"}, "unknown table"},
		{"stale LSN", &repl.Mutation{LSN: 0, Table: "t"}, "not beyond"},
		{"rid gap", &repl.Mutation{LSN: 1, Table: "t",
			Inserts: []repl.RowVersion{{RID: 99, Row: value.Row{value.NewInt(9), value.NewString("x")}}}},
			"divergence"},
		{"dead delete", &repl.Mutation{LSN: 1, Table: "t", Deletes: []int64{7}}, "no row"},
		{"width mismatch", &repl.Mutation{LSN: 1, Table: "t",
			Inserts: []repl.RowVersion{{RID: 2, Row: value.Row{value.NewInt(9)}}}},
			"columns"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, s := replayFixture(t)
			err := s.Replay(tc.mut)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Replay = %v, want error containing %q", err, tc.want)
			}
			// a rejected replay must not have consumed the LSN
			if s.CommitLSN() != 0 {
				t.Fatalf("failed replay advanced commit LSN to %d", s.CommitLSN())
			}
		})
	}
}
