package plan

import (
	"encoding/json"
	"strings"
	"testing"
)

// examplePlan builds a small TP-style tree: agg → nlj → (filter→scan, lookup).
func examplePlan() *Node {
	scan := &Node{Op: OpTableScan, Engine: TP, Cost: 2.75, Rows: 25, Relation: "nation"}
	filter := &Node{Op: OpFilter, Engine: TP, Cost: 3.0, Rows: 2,
		Condition: "n_name = 'egypt'", Children: []*Node{scan}}
	lookup := &Node{Op: OpIndexLookup, Engine: TP, Cost: 0.4, Rows: 10,
		Relation: "orders", Index: "fk_orders_customer", UsesIndex: true}
	join := &Node{Op: OpNestedLoopJoin, Engine: TP, Cost: 100, Rows: 20,
		Children: []*Node{filter, lookup}}
	return &Node{Op: OpGroupAggregate, Engine: TP, Cost: 120, Rows: 1,
		Children: []*Node{join}}
}

func TestOpStringsMatchPaperVocabulary(t *testing.T) {
	// Table II uses these exact display names
	want := map[Op]string{
		OpTableScan:      "Table Scan",
		OpFilter:         "Filter",
		OpNestedLoopJoin: "Nested loop inner join",
		OpHashJoin:       "Inner hash join",
		OpHashBuild:      "Hash",
		OpGroupAggregate: "Group aggregate",
		OpHashAggregate:  "Aggregate",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
}

func TestExplainJSONSchemaMatchesPaper(t *testing.T) {
	js := examplePlan().ExplainJSON()
	var decoded map[string]any
	if err := json.Unmarshal([]byte(js), &decoded); err != nil {
		t.Fatalf("ExplainJSON not valid JSON: %v", err)
	}
	// the paper's field names
	for _, field := range []string{"Node Type", "Total Cost", "Plan Rows", "Plans"} {
		if _, ok := decoded[field]; !ok {
			t.Errorf("ExplainJSON missing field %q", field)
		}
	}
	if decoded["Node Type"] != "Group aggregate" {
		t.Errorf("root Node Type = %v", decoded["Node Type"])
	}
	if !strings.Contains(js, `"Relation Name":"nation"`) {
		t.Errorf("relation name not rendered: %s", js)
	}
}

func TestExplainIndentJSONParses(t *testing.T) {
	js := examplePlan().ExplainIndentJSON()
	var decoded map[string]any
	if err := json.Unmarshal([]byte(js), &decoded); err != nil {
		t.Fatalf("indent JSON invalid: %v", err)
	}
	if !strings.Contains(js, "\n") {
		t.Error("indented output should be multi-line")
	}
}

func TestCountAndDepth(t *testing.T) {
	p := examplePlan()
	if got := p.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	if got := p.Depth(); got != 4 {
		t.Errorf("Depth = %d, want 4", got)
	}
	var nilNode *Node
	if nilNode.Count() != 0 || nilNode.Depth() != 0 {
		t.Error("nil node should count/depth to 0")
	}
}

func TestVisitPreOrder(t *testing.T) {
	var ops []Op
	examplePlan().Visit(func(n *Node) { ops = append(ops, n.Op) })
	want := []Op{OpGroupAggregate, OpNestedLoopJoin, OpFilter, OpTableScan, OpIndexLookup}
	if len(ops) != len(want) {
		t.Fatalf("visited %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("visit order %v, want %v", ops, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(examplePlan())
	if s.NestedLoopJoins != 1 || s.HashJoins != 0 {
		t.Errorf("joins: %+v", s)
	}
	if s.TableScans != 1 || s.IndexLookups != 1 || s.Filters != 1 {
		t.Errorf("scans/filters: %+v", s)
	}
	if s.GroupAggregates != 1 {
		t.Errorf("aggregates: %+v", s)
	}
	if !s.UsesIndex {
		t.Error("UsesIndex should propagate from the lookup node")
	}
	if s.Joins() != 1 {
		t.Errorf("Joins() = %d", s.Joins())
	}
	if len(s.Relations) != 2 {
		t.Errorf("relations: %v", s.Relations)
	}
	if s.RootCost != 120 {
		t.Errorf("root cost = %v", s.RootCost)
	}
}

func TestEngineString(t *testing.T) {
	if TP.String() != "TP" || AP.String() != "AP" {
		t.Error("engine names wrong")
	}
}

func TestNodeStringRendering(t *testing.T) {
	s := examplePlan().String()
	for _, want := range []string{"Group aggregate", "nation", "fk_orders_customer", "cost="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	// indentation encodes depth
	if !strings.Contains(s, "\n  Nested loop") {
		t.Errorf("child not indented:\n%s", s)
	}
}

func TestScannedRowsCountsLeavesOnce(t *testing.T) {
	// two scan nodes over the same relation must not double-count
	scan1 := &Node{Op: OpTableScan, Engine: AP, Rows: 100, Relation: "t"}
	scan2 := &Node{Op: OpTableScan, Engine: AP, Rows: 100, Relation: "t"}
	join := &Node{Op: OpHashJoin, Engine: AP, Rows: 10, Children: []*Node{scan1, scan2}}
	s := Summarize(join)
	if s.ScannedRows != 100 {
		t.Errorf("ScannedRows = %v, want 100 (relation counted once)", s.ScannedRows)
	}
}
