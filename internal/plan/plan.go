// Package plan defines the engine-neutral execution-plan tree produced by
// both the TP and AP optimizers, its JSON EXPLAIN rendering (matching the
// paper's Table II format: 'Node Type', 'Total Cost', 'Plan Rows',
// 'Relation Name', 'Plans'), and structural feature extraction used by the
// tree-CNN smart router and the expert oracle.
package plan

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// Engine identifies which HTAP engine a plan belongs to.
type Engine int

const (
	TP Engine = iota // row-oriented OLTP engine
	AP               // column-oriented OLAP engine
)

func (e Engine) String() string {
	if e == TP {
		return "TP"
	}
	return "AP"
}

// Op enumerates plan operator types. The display names match the paper's
// Table II EXPLAIN output.
type Op int

const (
	OpTableScan   Op = iota
	OpIndexScan      // ordered range/point access through an index
	OpIndexLookup    // per-row index probe (inner side of an index NLJ)
	OpFilter
	OpNestedLoopJoin
	OpHashJoin
	OpHashBuild // the 'Hash' build side below a hash join
	OpGroupAggregate
	OpHashAggregate // AP-style 'Aggregate'
	OpSort
	OpTopN
	OpLimit
	OpProject
)

// NumOps is the number of distinct operator types (tree-CNN one-hot width).
const NumOps = int(OpProject) + 1

func (o Op) String() string {
	switch o {
	case OpTableScan:
		return "Table Scan"
	case OpIndexScan:
		return "Index Scan"
	case OpIndexLookup:
		return "Index Lookup"
	case OpFilter:
		return "Filter"
	case OpNestedLoopJoin:
		return "Nested loop inner join"
	case OpHashJoin:
		return "Inner hash join"
	case OpHashBuild:
		return "Hash"
	case OpGroupAggregate:
		return "Group aggregate"
	case OpHashAggregate:
		return "Aggregate"
	case OpSort:
		return "Sort"
	case OpTopN:
		return "Top N"
	case OpLimit:
		return "Limit"
	case OpProject:
		return "Projection"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Node is one operator in a plan tree.
type Node struct {
	Op       Op
	Engine   Engine
	Cost     float64 // cumulative cost in the owning engine's (non-comparable) units
	Rows     float64 // estimated output cardinality
	Relation string  // base table name for scans
	Index    string  // index name for index scans/lookups
	// Condition is a human-readable predicate / join condition.
	Condition string
	// UsesIndex reports whether this operator exploits an ordered index
	// (index scans, index lookups, and index-order Top-N).
	UsesIndex bool
	Children  []*Node
}

// Visit walks the tree pre-order.
func (n *Node) Visit(f func(*Node)) {
	if n == nil {
		return
	}
	f(n)
	for _, c := range n.Children {
		c.Visit(f)
	}
}

// Count returns the number of nodes in the tree.
func (n *Node) Count() int {
	if n == nil {
		return 0
	}
	total := 0
	n.Visit(func(*Node) { total++ })
	return total
}

// Depth returns the height of the tree (1 for a leaf).
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// explainNode mirrors the paper's EXPLAIN JSON schema.
type explainNode struct {
	NodeType     string        `json:"Node Type"`
	TotalCost    float64       `json:"Total Cost"`
	PlanRows     float64       `json:"Plan Rows"`
	RelationName string        `json:"Relation Name,omitempty"`
	IndexName    string        `json:"Index Name,omitempty"`
	Condition    string        `json:"Condition,omitempty"`
	Plans        []explainNode `json:"Plans,omitempty"`
}

func (n *Node) toExplain() explainNode {
	e := explainNode{
		NodeType:     n.Op.String(),
		TotalCost:    round2(n.Cost),
		PlanRows:     round2(n.Rows),
		RelationName: n.Relation,
		IndexName:    n.Index,
		Condition:    n.Condition,
	}
	for _, c := range n.Children {
		e.Plans = append(e.Plans, c.toExplain())
	}
	return e
}

func round2(v float64) float64 {
	if v < 0 {
		return v
	}
	// keep small numbers precise, big numbers short — matches the paper's
	// Table II mix of 2.75 and 16500000.0
	return float64(int64(v*100+0.5)) / 100
}

// ExplainJSON renders the plan in the paper's Table II JSON format.
func (n *Node) ExplainJSON() string {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(n.toExplain()); err != nil {
		return fmt.Sprintf("explain error: %v", err)
	}
	return strings.TrimSpace(buf.String())
}

// ExplainIndentJSON renders the plan as indented JSON ("presented in JSON
// format for better readability", §VI-C).
func (n *Node) ExplainIndentJSON() string {
	b, err := json.MarshalIndent(n.toExplain(), "", "  ")
	if err != nil {
		return fmt.Sprintf("explain error: %v", err)
	}
	return string(b)
}

// String renders a compact indented text tree for logs and tests.
func (n *Node) String() string {
	var b strings.Builder
	var rec func(*Node, int)
	rec = func(x *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(x.Op.String())
		if x.Relation != "" {
			fmt.Fprintf(&b, " on %s", x.Relation)
		}
		if x.Index != "" {
			fmt.Fprintf(&b, " via %s", x.Index)
		}
		fmt.Fprintf(&b, " (cost=%.2f rows=%.0f)", x.Cost, x.Rows)
		if x.Condition != "" {
			fmt.Fprintf(&b, " [%s]", x.Condition)
		}
		b.WriteByte('\n')
		for _, c := range x.Children {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return strings.TrimRight(b.String(), "\n")
}

// Pair is the plan pair (one per engine) for a single query — the unit the
// knowledge base keys on.
type Pair struct {
	SQL string
	TP  *Node
	AP  *Node
}

// Summary aggregates structural facts about one plan, consumed by the
// expert oracle, the DBG-PT baseline and prompt construction.
type Summary struct {
	Engine          Engine
	NestedLoopJoins int
	HashJoins       int
	IndexScans      int
	IndexLookups    int
	TableScans      int
	Filters         int
	Sorts           int
	TopNs           int
	Limits          int
	HashAggregates  int
	GroupAggregates int
	UsesIndex       bool
	ScannedRows     float64 // sum of leaf-scan estimated rows
	MaxRows         float64 // largest intermediate cardinality
	RootCost        float64
	Relations       []string
}

// Summarize extracts a Summary from a plan tree.
func Summarize(n *Node) Summary {
	s := Summary{Engine: n.Engine, RootCost: n.Cost}
	seen := map[string]bool{}
	n.Visit(func(x *Node) {
		switch x.Op {
		case OpNestedLoopJoin:
			s.NestedLoopJoins++
		case OpHashJoin:
			s.HashJoins++
		case OpIndexScan:
			s.IndexScans++
		case OpIndexLookup:
			s.IndexLookups++
		case OpTableScan:
			s.TableScans++
		case OpFilter:
			s.Filters++
		case OpSort:
			s.Sorts++
		case OpTopN:
			s.TopNs++
		case OpLimit:
			s.Limits++
		case OpHashAggregate:
			s.HashAggregates++
		case OpGroupAggregate:
			s.GroupAggregates++
		}
		if x.UsesIndex {
			s.UsesIndex = true
		}
		if x.Relation != "" && !seen[x.Relation] {
			seen[x.Relation] = true
			s.Relations = append(s.Relations, x.Relation)
			if len(x.Children) == 0 {
				s.ScannedRows += x.Rows
			}
		}
		if x.Rows > s.MaxRows {
			s.MaxRows = x.Rows
		}
	})
	return s
}

// Joins returns the total number of join operators in the summary.
func (s Summary) Joins() int { return s.NestedLoopJoins + s.HashJoins }
