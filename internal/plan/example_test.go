package plan_test

import (
	"fmt"

	"htapxplain/internal/plan"
)

func ExampleNode_ExplainJSON() {
	scan := &plan.Node{Op: plan.OpTableScan, Engine: plan.AP, Cost: 0.5,
		Rows: 150000000, Relation: "orders"}
	filter := &plan.Node{Op: plan.OpFilter, Engine: plan.AP, Cost: 13500000,
		Rows: 13500000, Children: []*plan.Node{scan}}
	fmt.Println(filter.ExplainJSON())
	// Output:
	// {"Node Type":"Filter","Total Cost":13500000,"Plan Rows":13500000,"Plans":[{"Node Type":"Table Scan","Total Cost":0.5,"Plan Rows":150000000,"Relation Name":"orders"}]}
}

func ExampleSummarize() {
	nlj := &plan.Node{Op: plan.OpNestedLoopJoin, Engine: plan.TP, Rows: 100,
		Children: []*plan.Node{
			{Op: plan.OpTableScan, Engine: plan.TP, Rows: 25, Relation: "nation"},
			{Op: plan.OpIndexLookup, Engine: plan.TP, Rows: 10, Relation: "customer",
				Index: "fk_customer_nation", UsesIndex: true},
		}}
	s := plan.Summarize(nlj)
	fmt.Printf("joins=%d indexed=%v relations=%v\n", s.Joins(), s.UsesIndex, s.Relations)
	// Output:
	// joins=1 indexed=true relations=[nation customer]
}
