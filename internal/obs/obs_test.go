package obs

import (
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 1},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 9}, // 1000 μs → [512, 1024)
		{time.Second, 19},     // 1e6 μs → [2^19, 2^20)
		{time.Hour, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 90 fast observations, 10 slow ones: p50 must land in the fast bucket,
	// p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond) // bucket [64,128) μs
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond) // bucket [8192,16384) μs
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if p50 := h.Quantile(0.5); p50 != 128*time.Microsecond {
		t.Errorf("p50 = %v, want 128µs", p50)
	}
	if p99 := h.Quantile(0.99); p99 != 16384*time.Microsecond {
		t.Errorf("p99 = %v, want 16.384ms", p99)
	}
	wantMean := (90*100*time.Microsecond + 10*10*time.Millisecond) / 100
	if h.Mean() != wantMean {
		t.Errorf("mean = %v, want %v", h.Mean(), wantMean)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.99); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *QueryTrace
	sp := tr.Begin("anything")
	sp.End()
	tr.AddSpan("x", time.Now(), time.Second)
	tr.Annotate("ap", "hit")
	tr.AttachStats(struct{}{})
	if s := tr.String(); s != "<no trace>" {
		t.Errorf("nil trace String = %q", s)
	}
	var tc *Tracer
	if tc.Start("sql", "select") != nil {
		t.Error("nil tracer Start returned non-nil trace")
	}
	tc.Finish(nil, nil)
	if tc.Traces() != nil {
		t.Error("nil tracer Traces returned non-nil")
	}
}

func TestTraceSpanNesting(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1})
	trace := tr.Start("SELECT 1", "select")
	if trace == nil {
		t.Fatal("sample rate 1 did not sample")
	}
	outer := trace.Begin("serve")
	inner := trace.Begin("plan")
	leaf := trace.Begin("cache_lookup")
	leaf.End()
	inner.End()
	sibling := trace.Begin("execute")
	sibling.End()
	outer.End()
	tr.Finish(trace, nil)

	if len(trace.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(trace.Spans))
	}
	wantParents := map[string]int{"serve": -1, "plan": 0, "cache_lookup": 1, "execute": 0}
	for i, sp := range trace.Spans {
		if want, ok := wantParents[sp.Name]; !ok || sp.Parent != want {
			t.Errorf("span %d %q parent = %d, want %d", i, sp.Name, sp.Parent, want)
		}
		if sp.DurUS < 0 || sp.StartUS < 0 {
			t.Errorf("span %q has negative timing: start=%d dur=%d", sp.Name, sp.StartUS, sp.DurUS)
		}
	}
	if trace.TotalUS < trace.Spans[0].DurUS {
		t.Errorf("total %dµs < root span %dµs", trace.TotalUS, trace.Spans[0].DurUS)
	}
}

func TestFinishClosesOpenSpansAndRecordsError(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1})
	trace := tr.Start("SELECT broken", "select")
	trace.Begin("serve")
	trace.Begin("execute") // never ended: error unwind
	tr.Finish(trace, errors.New("boom"))
	for _, sp := range trace.Spans {
		if sp.DurUS < 0 {
			t.Errorf("span %q left open with dur %d", sp.Name, sp.DurUS)
		}
		if sp.DurUS > trace.TotalUS {
			t.Errorf("span %q dur %d exceeds total %d", sp.Name, sp.DurUS, trace.TotalUS)
		}
	}
	if trace.Error != "boom" {
		t.Errorf("error = %q, want boom", trace.Error)
	}
}

func TestTracerSamplingDeterministic(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 0.1})
	sampled := 0
	for i := 0; i < 1000; i++ {
		if trace := tr.Start("q", "select"); trace != nil {
			sampled++
			tr.Finish(trace, nil)
		}
	}
	if sampled != 100 {
		t.Errorf("sampled %d of 1000 at rate 0.1, want exactly 100", sampled)
	}
	if tr.Sampled() != 100 {
		t.Errorf("Sampled() = %d, want 100", tr.Sampled())
	}

	off := NewTracer(TracerConfig{SampleRate: 0})
	if off.Enabled() {
		t.Error("rate-0 tracer reports enabled")
	}
	if off.Start("q", "select") != nil {
		t.Error("rate-0 tracer sampled a query")
	}
}

func TestSlowQueryForcesSamplingAndLogs(t *testing.T) {
	var lines []string
	tr := NewTracer(TracerConfig{
		SlowQuery: time.Nanosecond, // everything is slow
		SlowLogf:  func(f string, a ...any) { lines = append(lines, fmt.Sprintf(f, a...)) },
	})
	if !tr.Enabled() {
		t.Fatal("slow-query log did not force sampling on")
	}
	trace := tr.Start("SELECT slow", "select")
	if trace == nil {
		t.Fatal("slow-query tracer sampled out a query")
	}
	sp := trace.Begin("serve")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Finish(trace, nil)
	if len(lines) != 1 {
		t.Fatalf("got %d slow-query log lines, want 1", len(lines))
	}
	if !strings.Contains(lines[0], "serve") || !strings.Contains(lines[0], "SELECT slow") {
		t.Errorf("slow log line missing span tree: %q", lines[0])
	}
}

func TestTracerRingNewestFirstAndWrap(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1, RingSize: 4})
	for i := 0; i < 10; i++ {
		trace := tr.Start(fmt.Sprintf("q%d", i), "select")
		tr.Finish(trace, nil)
	}
	got := tr.Traces()
	if len(got) != 4 {
		t.Fatalf("ring returned %d traces, want 4", len(got))
	}
	for i, want := range []string{"q9", "q8", "q7", "q6"} {
		if got[i].SQL != want {
			t.Errorf("trace[%d].SQL = %q, want %q", i, got[i].SQL, want)
		}
	}
}

var (
	promMetricRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// checkPromBody validates an exposition body: every sample line has a
// valid metric name, valid label names, a parseable value, and histogram
// bucket counts are monotonically non-decreasing in le order.
func checkPromBody(t *testing.T, body string) {
	t.Helper()
	type bucketKey struct{ series string }
	lastBucket := map[bucketKey]int64{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Error("blank line in exposition body")
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("bad comment line: %q", line)
			}
			continue
		}
		name := line
		rest := ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if !promMetricRe.MatchString(name) {
			t.Errorf("invalid metric name %q in line %q", name, line)
		}
		var leVal string
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				t.Errorf("unterminated label set: %q", line)
				continue
			}
			for _, pair := range strings.Split(rest[1:end], ",") {
				eq := strings.Index(pair, "=")
				if eq < 0 {
					t.Errorf("bad label pair %q in %q", pair, line)
					continue
				}
				lname, lval := pair[:eq], pair[eq+1:]
				if !promLabelRe.MatchString(lname) {
					t.Errorf("invalid label name %q in %q", lname, line)
				}
				if len(lval) < 2 || lval[0] != '"' || lval[len(lval)-1] != '"' {
					t.Errorf("unquoted label value %q in %q", lval, line)
				}
				if lname == "le" {
					leVal = strings.Trim(lval, `"`)
				}
			}
			rest = rest[end+1:]
		}
		valStr := strings.TrimSpace(rest)
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" && valStr != "-Inf" && valStr != "NaN" {
			t.Errorf("unparseable sample value %q in %q", valStr, line)
		}
		if strings.HasSuffix(name, "_bucket") && leVal != "" {
			// strip the le pair so all buckets of one series share a key
			series := name + strings.ReplaceAll(line, `le="`+leVal+`",`, "")
			k := bucketKey{series}
			if prev, ok := lastBucket[k]; ok && int64(val) < prev {
				t.Errorf("bucket counts not monotonic at le=%s: %d < %d (%q)", leVal, int64(val), prev, line)
			}
			lastBucket[k] = int64(val)
		}
	}
}

func TestPromWriterFormat(t *testing.T) {
	var h Histogram
	for i := 0; i < 50; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond)
	}
	w := NewPromWriter()
	w.Counter("htap_queries_total", "Total queries served.", nil, 1234)
	w.Counter("htap_routed_total", "Queries routed per engine.", map[string]string{"engine": "tp"}, 900)
	w.Counter("htap_routed_total", "Queries routed per engine.", map[string]string{"engine": "ap"}, 334)
	w.Gauge("htap_router_observed_accuracy", "Observed routing accuracy.", nil, 0.93)
	w.Histogram("htap_query_latency_seconds", "Serve latency.", map[string]string{"route": "ap"}, h.Snapshot())
	body := w.String()

	checkPromBody(t, body)

	if c := strings.Count(body, "# TYPE htap_routed_total counter"); c != 1 {
		t.Errorf("family header emitted %d times, want 1", c)
	}
	if !strings.Contains(body, `htap_query_latency_seconds_bucket{le="+Inf",route="ap"} 50`) {
		t.Errorf("missing +Inf bucket with full count:\n%s", body)
	}
	if !strings.Contains(body, "htap_query_latency_seconds_count{route=\"ap\"} 50") {
		t.Errorf("missing _count sample:\n%s", body)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}

func BenchmarkTracerSampledOut(b *testing.B) {
	tr := NewTracer(TracerConfig{SampleRate: 0})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := tr.Start("SELECT 1", "select")
		sp := t.Begin("serve")
		sp.End()
		tr.Finish(t, nil)
	}
}
