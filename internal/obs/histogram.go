// Package obs is the engine's low-overhead observability layer: per-query
// traces with nested timed spans collected into a lock-free ring buffer,
// log-bucket latency histograms with derived quantiles, and a Prometheus
// text-exposition writer. The package is a leaf — it depends on nothing
// inside the repo — so every layer (gateway, htap, wal, exec callers) can
// record into it without import cycles.
//
// The design constraint throughout is that observability must cost nothing
// when it is switched off: every trace entry point is nil-safe (a sampled-
// out query carries a nil *QueryTrace and every span call on it is a
// single predictable branch), and histograms are fixed-size atomic arrays
// with no locks on the observe path.
package obs

import (
	"sync/atomic"
	"time"
)

// HistBuckets is the number of power-of-two latency buckets. Bucket i
// counts observations in [2^i, 2^(i+1)) microseconds; the last bucket is
// an overflow (≥ ~33.6 s).
const HistBuckets = 26

// Histogram is a lock-free log-bucket latency histogram: observations land
// in power-of-two microsecond buckets with a single atomic add, and
// quantiles are derived from the bucket counts on read. One histogram is
// ~220 bytes, so per-route and per-stage families are cheap.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// bucketOf returns the bucket index for a duration.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < HistBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// BucketUpperUS returns the exclusive upper bound, in microseconds, of
// bucket i. The last bucket is unbounded (+Inf in exposition).
func BucketUpperUS(i int) int64 { return int64(1) << uint(i+1) }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sumNS.Add(int64(d))
	h.buckets[bucketOf(d)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Mean returns the mean observed duration (0 with no observations).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load() / n)
}

// Quantile returns the upper bound of the bucket containing the q-th
// sample — the standard bucketed-quantile estimate, so the reported value
// is within 2x of the true quantile.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.Snapshot().Quantile(q)
}

// HistSnapshot is a point-in-time copy of a histogram, consistent enough
// for monitoring (buckets are read individually, not stop-the-world).
type HistSnapshot struct {
	Count   int64
	SumNS   int64
	Buckets [HistBuckets]int64
}

// Snapshot copies the live counters.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.SumNS = h.sumNS.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile derives the q-th quantile from the snapshot's buckets.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if target >= s.Count {
		target = s.Count - 1
	}
	var seen int64
	for i, c := range s.Buckets {
		seen += c
		if seen > target {
			return time.Duration(BucketUpperUS(i)) * time.Microsecond
		}
	}
	return time.Duration(BucketUpperUS(HistBuckets-1)) * time.Microsecond
}
