package obs

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Span is one timed region of a query's serving path. Spans form a tree
// through Parent indexes into the trace's span slice (-1 = top level);
// they are recorded by the single goroutine serving the query, so no
// locking is needed inside a trace.
type Span struct {
	Name    string `json:"name"`
	Parent  int    `json:"parent"`
	StartUS int64  `json:"start_us"` // offset from the trace start
	DurUS   int64  `json:"dur_us"`
}

// QueryTrace is the annotated span tree of one served query. A trace is
// only allocated when the tracer's sampling decision selects the query;
// every method is safe on a nil receiver, which is what keeps the
// sampled-out hot path allocation-free.
type QueryTrace struct {
	ID      uint64    `json:"id"`
	Start   time.Time `json:"start"`
	SQL     string    `json:"sql"`
	Kind    string    `json:"kind"`
	Engine  string    `json:"engine,omitempty"`
	Cache   string    `json:"cache,omitempty"`
	TotalUS int64     `json:"total_us"`
	Error   string    `json:"error,omitempty"`
	Spans   []Span    `json:"spans"`
	// Stats carries the query's execution work counters (exec.Stats for
	// reads); typed as any so this leaf package stays dependency-free.
	Stats any `json:"stats,omitempty"`

	start time.Time
	open  []int // stack of currently-open span indexes
}

// SpanEnd closes one span; returned by Begin so call sites read
//
//	sp := tr.Begin("plan"); ... ; sp.End()
type SpanEnd struct {
	t   *QueryTrace
	idx int32
}

// Begin opens a span nested under the innermost open span. On a nil trace
// it returns a no-op handle.
func (t *QueryTrace) Begin(name string) SpanEnd {
	if t == nil {
		return SpanEnd{}
	}
	parent := -1
	if n := len(t.open); n > 0 {
		parent = t.open[n-1]
	}
	idx := len(t.Spans)
	t.Spans = append(t.Spans, Span{
		Name:    name,
		Parent:  parent,
		StartUS: time.Since(t.start).Microseconds(),
	})
	t.open = append(t.open, idx)
	return SpanEnd{t: t, idx: int32(idx)}
}

// End closes the span. Closing out of order also closes every span opened
// inside it (the serving path is strictly nested, so this only matters on
// error unwinds).
func (e SpanEnd) End() {
	t := e.t
	if t == nil {
		return
	}
	sp := &t.Spans[e.idx]
	sp.DurUS = time.Since(t.start).Microseconds() - sp.StartUS
	for n := len(t.open); n > 0; n-- {
		open := t.open[n-1]
		t.open = t.open[:n-1]
		if open == int(e.idx) {
			break
		}
	}
}

// AddSpan records an already-measured region (e.g. the admission-queue
// wait, whose start predates the trace). Nil-safe.
func (t *QueryTrace) AddSpan(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.Spans = append(t.Spans, Span{
		Name:    name,
		Parent:  -1,
		StartUS: start.Sub(t.start).Microseconds(),
		DurUS:   d.Microseconds(),
	})
}

// SetKind sets the statement kind once classification has happened.
// Nil-safe.
func (t *QueryTrace) SetKind(kind string) {
	if t == nil {
		return
	}
	t.Kind = kind
}

// Annotate attaches routing metadata once it is known. Nil-safe.
func (t *QueryTrace) Annotate(engine, cache string) {
	if t == nil {
		return
	}
	t.Engine, t.Cache = engine, cache
}

// AttachStats attaches the execution work counters. Nil-safe.
func (t *QueryTrace) AttachStats(stats any) {
	if t == nil {
		return
	}
	t.Stats = stats
}

// String renders the annotated span tree, one span per line, indented by
// nesting depth — the slow-query log format.
func (t *QueryTrace) String() string {
	if t == nil {
		return "<no trace>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace #%d kind=%s", t.ID, t.Kind)
	if t.Engine != "" {
		fmt.Fprintf(&b, " engine=%s", t.Engine)
	}
	if t.Cache != "" {
		fmt.Fprintf(&b, " cache=%s", t.Cache)
	}
	fmt.Fprintf(&b, " total=%v sql=%q", time.Duration(t.TotalUS)*time.Microsecond, t.SQL)
	if t.Error != "" {
		fmt.Fprintf(&b, " err=%q", t.Error)
	}
	var render func(parent, depth int)
	render = func(parent, depth int) {
		for i := range t.Spans {
			sp := &t.Spans[i]
			if sp.Parent != parent {
				continue
			}
			fmt.Fprintf(&b, "\n%s%s %v (+%v)", strings.Repeat("  ", depth+1), sp.Name,
				time.Duration(sp.DurUS)*time.Microsecond, time.Duration(sp.StartUS)*time.Microsecond)
			render(i, depth+1)
		}
	}
	render(-1, 0)
	return b.String()
}

// TracerConfig controls sampling and retention.
type TracerConfig struct {
	// SampleRate is the fraction of queries that get a full span trace
	// (0 disables tracing, 1 traces everything). Sampling is deterministic
	// — every round(1/rate)-th query — so a steady workload yields a
	// steady trace stream.
	SampleRate float64
	// RingSize is the trace ring-buffer capacity (default 256).
	RingSize int
	// SlowQuery, when > 0, logs the annotated span tree of any traced
	// query at least this slow. Enabling it forces SampleRate to 1: a span
	// tree cannot be reconstructed after the fact for a query that was
	// sampled out.
	SlowQuery time.Duration
	// SlowLogf receives slow-query log lines (default: drop them).
	SlowLogf func(format string, args ...any)
}

// Tracer makes the per-query sampling decision and retains finished
// traces in a lock-free ring.
type Tracer struct {
	every   int64 // sample every Nth query; 0 = tracing off
	counter atomic.Int64
	nextID  atomic.Uint64
	slowNS  int64
	logf    func(format string, args ...any)
	ring    []atomic.Pointer[QueryTrace]
	ringPos atomic.Uint64
	sampled atomic.Int64
}

// NewTracer builds a tracer. A nil tracer is valid everywhere and traces
// nothing.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	every := int64(0)
	switch {
	case cfg.SlowQuery > 0 || cfg.SampleRate >= 1:
		every = 1
	case cfg.SampleRate > 0:
		every = int64(1/cfg.SampleRate + 0.5)
		if every < 1 {
			every = 1
		}
	}
	return &Tracer{
		every:  every,
		slowNS: int64(cfg.SlowQuery),
		logf:   cfg.SlowLogf,
		ring:   make([]atomic.Pointer[QueryTrace], cfg.RingSize),
	}
}

// Enabled reports whether any query can be sampled.
func (tr *Tracer) Enabled() bool { return tr != nil && tr.every > 0 }

// Start makes the sampling decision for one query: a non-nil trace means
// the query records spans; nil means every span call is a no-op branch.
// The sampled-out path is one atomic add — no allocation, no time call.
func (tr *Tracer) Start(sql, kind string) *QueryTrace {
	if tr == nil || tr.every == 0 {
		return nil
	}
	if tr.every > 1 && tr.counter.Add(1)%tr.every != 0 {
		return nil
	}
	tr.sampled.Add(1)
	now := time.Now()
	return &QueryTrace{
		ID:    tr.nextID.Add(1),
		Start: now,
		SQL:   sql,
		Kind:  kind,
		start: now,
	}
}

// Finish seals the trace (total time, error, any spans left open by an
// error unwind), publishes it to the ring, and emits the slow-query log
// line when the query crossed the threshold. Nil-safe on both receivers.
func (tr *Tracer) Finish(t *QueryTrace, err error) {
	if tr == nil || t == nil {
		return
	}
	total := time.Since(t.start)
	t.TotalUS = total.Microseconds()
	for _, idx := range t.open {
		sp := &t.Spans[idx]
		sp.DurUS = t.TotalUS - sp.StartUS
	}
	t.open = nil
	if err != nil {
		t.Error = err.Error()
	}
	pos := tr.ringPos.Add(1) - 1
	tr.ring[pos%uint64(len(tr.ring))].Store(t)
	if tr.slowNS > 0 && int64(total) >= tr.slowNS && tr.logf != nil {
		tr.logf("slow query (%v): %s", total, t.String())
	}
}

// Sampled returns how many queries have been traced.
func (tr *Tracer) Sampled() int64 {
	if tr == nil {
		return 0
	}
	return tr.sampled.Load()
}

// Traces returns the retained traces, newest first. Traces are immutable
// once published, so the returned pointers are safe to read concurrently
// with serving.
func (tr *Tracer) Traces() []*QueryTrace {
	if tr == nil {
		return nil
	}
	n := uint64(len(tr.ring))
	out := make([]*QueryTrace, 0, n)
	pos := tr.ringPos.Load()
	for i := uint64(0); i < n; i++ {
		// walk backwards from the most recently written slot
		t := tr.ring[(pos+n-1-i)%n].Load()
		if t == nil {
			break
		}
		out = append(out, t)
	}
	return out
}
