package obs

import (
	"fmt"
	"sort"
	"strings"
)

// PromContentType is the Prometheus text exposition format 0.0.4
// content type.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4). Families must be emitted contiguously; the writer
// tracks which families have had their HELP/TYPE header written so
// multi-label series of one family share a single header.
type PromWriter struct {
	b      strings.Builder
	headed map[string]bool
}

// NewPromWriter returns an empty writer.
func NewPromWriter() *PromWriter {
	return &PromWriter{headed: map[string]bool{}}
}

func (w *PromWriter) head(name, help, typ string) {
	if w.headed[name] {
		return
	}
	w.headed[name] = true
	fmt.Fprintf(&w.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// labelString renders a label map as {k="v",...} with keys sorted for
// deterministic output, or "" when empty.
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels returns base plus one extra pair (used for the histogram
// le label) without mutating base.
func mergeLabels(base map[string]string, k, v string) map[string]string {
	out := make(map[string]string, len(base)+1)
	for bk, bv := range base {
		out[bk] = bv
	}
	out[k] = v
	return out
}

// Counter emits one counter sample.
func (w *PromWriter) Counter(name, help string, labels map[string]string, v int64) {
	w.head(name, help, "counter")
	fmt.Fprintf(&w.b, "%s%s %d\n", name, labelString(labels), v)
}

// Gauge emits one gauge sample.
func (w *PromWriter) Gauge(name, help string, labels map[string]string, v float64) {
	w.head(name, help, "gauge")
	fmt.Fprintf(&w.b, "%s%s %v\n", name, labelString(labels), v)
}

// Histogram emits one histogram series (cumulative le buckets in seconds,
// _sum, _count) from a snapshot.
func (w *PromWriter) Histogram(name, help string, labels map[string]string, s HistSnapshot) {
	w.head(name, help, "histogram")
	var cum int64
	for i := 0; i < HistBuckets-1; i++ {
		cum += s.Buckets[i]
		le := float64(BucketUpperUS(i)) / 1e6 // bucket bounds are μs; expose seconds
		fmt.Fprintf(&w.b, "%s_bucket%s %d\n", name, labelString(mergeLabels(labels, "le", fmt.Sprintf("%g", le))), cum)
	}
	cum += s.Buckets[HistBuckets-1]
	fmt.Fprintf(&w.b, "%s_bucket%s %d\n", name, labelString(mergeLabels(labels, "le", "+Inf")), cum)
	fmt.Fprintf(&w.b, "%s_sum%s %g\n", name, labelString(labels), float64(s.SumNS)/1e9)
	fmt.Fprintf(&w.b, "%s_count%s %d\n", name, labelString(labels), s.Count)
}

// String returns the accumulated exposition body.
func (w *PromWriter) String() string { return w.b.String() }
