package explain

import (
	"fmt"
	"strings"

	"htapxplain/internal/expert"
	"htapxplain/internal/htap"
	"htapxplain/internal/plan"
)

// SlowReport answers the paper's motivating question — "Why does my query
// run so slowly?" (§I, and §VII's future-work goal) — for one engine's
// plan, independent of the cross-engine comparison: it names the losing
// engine's bottleneck operators and offers actionable advice. It builds on
// the same factor machinery as the comparative explainer, so the two
// answers stay consistent.
type SlowReport struct {
	SQL     string
	Engine  plan.Engine // the engine being diagnosed (the slower one)
	Faster  plan.Engine
	Speedup float64
	// Bottlenecks lists the diagnosed slow spots, most dominant first.
	Bottlenecks []string
	// Advice lists concrete remediations.
	Advice []string
	// Text is the assembled user-facing answer.
	Text string
}

// WhySlow diagnoses why the query is slow on its slower engine. It runs
// the query on both engines, judges ground-truth factors, and renders the
// losing side's bottleneck story.
func (e *Explainer) WhySlow(sql string) (*SlowReport, error) {
	res, err := e.Sys.Run(sql)
	if err != nil {
		return nil, fmt.Errorf("explain: whyslow: %w", err)
	}
	oracle := expert.NewOracle(e.Sys)
	truth, err := oracle.Judge(res)
	if err != nil {
		return nil, fmt.Errorf("explain: whyslow: %w", err)
	}
	return buildSlowReport(res, truth), nil
}

// SlowReportFor renders the bottleneck diagnosis from an already-judged
// result. It is the serving-path entry point: the online explanation
// service answers /whyslow from cached plan pairs and modeled latencies
// without executing the query, so it judges the pair itself and hands the
// truth here.
func SlowReportFor(res *htap.Result, truth expert.Truth) *SlowReport {
	return buildSlowReport(res, truth)
}

// buildSlowReport is the pure renderer (unit-testable without a system).
func buildSlowReport(res *htap.Result, truth expert.Truth) *SlowReport {
	slower := plan.TP
	slowerPlan := res.Pair.TP
	if truth.Winner == plan.TP {
		slower = plan.AP
		slowerPlan = res.Pair.AP
	}
	r := &SlowReport{
		SQL: res.SQL, Engine: slower, Faster: truth.Winner, Speedup: truth.Speedup,
	}
	sum := plan.Summarize(slowerPlan)
	seenB, seenA := map[string]bool{}, map[string]bool{}
	for _, f := range truth.AllFactors() {
		b, a := slowSide(f, slower, sum, truth)
		if b != "" && !seenB[b] {
			seenB[b] = true
			r.Bottlenecks = append(r.Bottlenecks, b)
		}
		if a != "" && !seenA[a] {
			seenA[a] = true
			r.Advice = append(r.Advice, a)
		}
	}
	if len(r.Bottlenecks) == 0 {
		r.Bottlenecks = append(r.Bottlenecks,
			fmt.Sprintf("the %s plan simply does more per-row work than the alternative at this data size", slower))
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Your query is %.1fx slower on the %s engine. ", truth.Speedup, slower)
	sb.WriteString("The dominant reasons: ")
	sb.WriteString(strings.Join(r.Bottlenecks, "; "))
	sb.WriteString(".")
	if len(r.Advice) > 0 {
		sb.WriteString(" What you can do: ")
		sb.WriteString(strings.Join(r.Advice, "; "))
		sb.WriteString(".")
	}
	fmt.Fprintf(&sb, " Routing this query to the %s engine avoids the problem entirely.", truth.Winner)
	r.Text = sb.String()
	return r
}

// slowSide renders one ground-truth factor from the slow engine's point
// of view, with remediation advice.
func slowSide(f expert.Factor, slower plan.Engine, sum plan.Summary, truth expert.Truth) (bottleneck, advice string) {
	switch f {
	case expert.FactorHashJoinAdvantage:
		return fmt.Sprintf("%d nested-loop join(s) re-visit the inner side once per outer row, which scales poorly on the large qualifying set", sum.NestedLoopJoins),
			"reduce the qualifying set before the join with a more selective indexed predicate"
	case expert.FactorNoUsableIndex:
		if truth.FuncWrappedColumn != "" {
			return fmt.Sprintf("the selective predicate wraps %s in a function, so its index cannot be used and the table is scanned", truth.FuncWrappedColumn),
				fmt.Sprintf("rewrite the predicate as direct comparisons on %s (no function), or add a derived column with an index", truth.FuncWrappedColumn)
		}
		return "the selective predicate has no index, forcing a full scan",
			"add a secondary index on the filtered column"
	case expert.FactorIndexPointLookup, expert.FactorStartupOverhead:
		if slower == plan.AP {
			return "the query touches almost no data, so the distributed engine's startup overhead dominates its runtime",
				"route small point queries to the row engine"
		}
		return "", ""
	case expert.FactorIndexOrderTopN, expert.FactorSortVsIndexOrder:
		if slower == plan.AP {
			return "the entire qualifying set is materialized and sorted before the LIMIT applies",
				"route index-ordered Top-N queries to the row engine, which reads pre-sorted rows"
		}
		return "an explicit sort of the qualifying set precedes the LIMIT", ""
	case expert.FactorColumnarScan:
		if slower == plan.TP {
			return "full rows are read even though only a few columns are referenced", ""
		}
		return "", ""
	case expert.FactorLargeScanVolume:
		if slower == plan.TP {
			return "millions of rows are processed one at a time on a single node", ""
		}
		return "", ""
	case expert.FactorDeepOffset:
		return "the large OFFSET forces the engine to produce and discard many rows first",
			"use keyset pagination (WHERE key > last_seen ORDER BY key LIMIT n) instead of OFFSET"
	case expert.FactorAggregationPushdown:
		if slower == plan.TP {
			return "the aggregation digests a large intermediate result row by row", ""
		}
		return "", ""
	default:
		return "", ""
	}
}
