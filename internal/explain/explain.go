// Package explain implements the paper's primary contribution: the
// retrieval-augmented explanation pipeline for HTAP query performance.
// For a query, the pipeline (1) obtains the TP/AP plan pair from the HTAP
// system, (2) encodes it with the smart router into the 16-dim plan-pair
// embedding, (3) retrieves the top-K most similar historical entries from
// the knowledge base, (4) assembles the three-part engineered prompt with
// the retrieved knowledge, (5) steers the pre-trained LLM to generate a
// natural-language explanation (or None when the knowledge is
// insufficient), and (6) accepts expert corrections back into the
// knowledge base (§III-B).
package explain

import (
	"fmt"
	"time"

	"htapxplain/internal/expert"
	"htapxplain/internal/htap"
	"htapxplain/internal/knowledge"
	"htapxplain/internal/llm"
	"htapxplain/internal/prompt"
	"htapxplain/internal/treecnn"
)

// Options configure the explainer.
type Options struct {
	// K is the number of retrieved similar plan pairs (paper default 2).
	K int
	// UseRAG toggles retrieval; false reproduces the RAG-free ablation
	// used for the fair DBG-PT comparison (§VI-D).
	UseRAG bool
	// UserContext is the optional third prompt part.
	UserContext string
	// IncludeGuardrail controls the cost-comparison prohibition.
	IncludeGuardrail bool
}

// DefaultOptions returns the paper's experimental configuration.
func DefaultOptions() Options {
	return Options{K: 2, UseRAG: true, IncludeGuardrail: true}
}

// Explainer is the assembled pipeline.
type Explainer struct {
	Sys    *htap.System
	Router *treecnn.Router
	KB     *knowledge.Base
	Model  llm.Model
	Opts   Options
}

// New wires the pipeline.
func New(sys *htap.System, router *treecnn.Router, kb *knowledge.Base, model llm.Model, opts Options) *Explainer {
	if opts.K <= 0 {
		opts.K = 2
	}
	return &Explainer{Sys: sys, Router: router, KB: kb, Model: model, Opts: opts}
}

// Explanation is the full output of one pipeline run, including the
// latency decomposition the paper reports (§VI-B).
type Explanation struct {
	SQL       string
	Result    *htap.Result
	Encoding  []float64
	Retrieved []knowledge.Hit
	Prompt    string
	Response  llm.Response
	// EncodeTime is the smart-router embedding time (paper: < 1 ms).
	EncodeTime time.Duration
	// SearchTime is the KB search time (paper: < 0.1 ms at 20 entries).
	SearchTime time.Duration
}

// Text returns the generated explanation text.
func (e *Explanation) Text() string { return e.Response.Text }

// TotalModeledLatency is the end-to-end response time with the modeled
// LLM think/generation components.
func (e *Explanation) TotalModeledLatency() time.Duration {
	return e.EncodeTime + e.SearchTime + e.Response.ThinkTime + e.Response.GenTime
}

// ExplainSQL runs the query on both engines and explains the performance
// difference.
func (e *Explainer) ExplainSQL(sql string) (*Explanation, error) {
	res, err := e.Sys.Run(sql)
	if err != nil {
		return nil, fmt.Errorf("explain: running query: %w", err)
	}
	return e.ExplainResult(res)
}

// ExplainResult explains an already-executed query.
func (e *Explainer) ExplainResult(res *htap.Result) (*Explanation, error) {
	out := &Explanation{SQL: res.SQL, Result: res}

	t0 := time.Now()
	out.Encoding = e.Router.EmbedPair(&res.Pair)
	out.EncodeTime = time.Since(t0)

	if e.Opts.UseRAG {
		t1 := time.Now()
		hits, err := e.KB.TopK(out.Encoding, e.Opts.K)
		if err != nil {
			return nil, fmt.Errorf("explain: retrieval: %w", err)
		}
		out.SearchTime = time.Since(t1)
		out.Retrieved = hits
	}

	b := prompt.NewBuilder(e.Sys.Cat.SchemaSummary())
	b.IncludeGuardrail = e.Opts.IncludeGuardrail
	b.IncludeRAG = e.Opts.UseRAG
	b.UserContext = e.Opts.UserContext
	out.Prompt = b.Build(out.Retrieved, prompt.Question{
		SQL:        res.SQL,
		TPPlanJSON: res.Pair.TP.ExplainJSON(),
		APPlanJSON: res.Pair.AP.ExplainJSON(),
		Winner:     res.Winner,
		Speedup:    res.Speedup(),
	})

	resp, err := e.Model.Generate(out.Prompt)
	if err != nil {
		return nil, fmt.Errorf("explain: generation: %w", err)
	}
	out.Response = resp
	return out, nil
}

// Feedback records an expert correction for a wrong or imprecise
// explanation: the corrected text is stored in the knowledge base under
// the query's encoding so future similar queries retrieve it (§III-B:
// "experts will correct it and add the revised version to the knowledge
// base").
func (e *Explainer) Feedback(ex *Explanation, corrected string, truth expert.Truth) error {
	_, err := e.KB.Correct(ex.Encoding, ex.SQL,
		ex.Result.Pair.TP.ExplainJSON(), ex.Result.Pair.AP.ExplainJSON(),
		ex.Result.Winner, ex.Result.Speedup(), corrected, truth.AllFactors())
	if err != nil {
		return fmt.Errorf("explain: feedback: %w", err)
	}
	return nil
}
