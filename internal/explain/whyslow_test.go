package explain

import (
	"strings"
	"testing"

	"htapxplain/internal/htap"
	"htapxplain/internal/llm"
	"htapxplain/internal/plan"
)

func TestWhySlowExample1DiagnosesTP(t *testing.T) {
	sys, router, _, kb := fixture(t)
	ex := New(sys, router, kb, llm.Doubao(), DefaultOptions())
	rep, err := ex.WhySlow(htap.Example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != plan.TP || rep.Faster != plan.AP {
		t.Fatalf("diagnosed %v slow / %v fast", rep.Engine, rep.Faster)
	}
	lower := strings.ToLower(rep.Text)
	if !strings.Contains(lower, "nested-loop") {
		t.Errorf("TP bottleneck should name nested loops: %q", rep.Text)
	}
	if !strings.Contains(lower, "no index") {
		t.Errorf("should mention the missing index: %q", rep.Text)
	}
	if len(rep.Advice) == 0 {
		t.Error("Example 1 should come with actionable advice")
	}
	if !strings.Contains(lower, "routing this query to the ap engine") {
		t.Errorf("should recommend routing: %q", rep.Text)
	}
}

func TestWhySlowTinyQueryDiagnosesAP(t *testing.T) {
	sys, router, _, kb := fixture(t)
	ex := New(sys, router, kb, llm.Doubao(), DefaultOptions())
	rep, err := ex.WhySlow("SELECT o_totalprice FROM orders WHERE o_orderkey = 3")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != plan.AP {
		t.Fatalf("diagnosed %v slow, want AP", rep.Engine)
	}
	if !strings.Contains(strings.ToLower(rep.Text), "startup overhead") {
		t.Errorf("AP's startup overhead should be the diagnosis: %q", rep.Text)
	}
}

func TestWhySlowTopNDiagnosesAPSort(t *testing.T) {
	sys, router, _, kb := fixture(t)
	ex := New(sys, router, kb, llm.Doubao(), DefaultOptions())
	rep, err := ex.WhySlow("SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != plan.AP {
		t.Fatalf("diagnosed %v slow, want AP", rep.Engine)
	}
	if !strings.Contains(strings.ToLower(rep.Text), "sorted") {
		t.Errorf("AP's sort should be the diagnosis: %q", rep.Text)
	}
}

func TestWhySlowAlwaysHasBottleneck(t *testing.T) {
	sys, router, _, kb := fixture(t)
	ex := New(sys, router, kb, llm.Doubao(), DefaultOptions())
	for _, sql := range []string{
		"SELECT COUNT(*) FROM nation",
		"SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag",
		"SELECT c_custkey, c_name, c_acctbal FROM customer ORDER BY c_acctbal DESC LIMIT 10 OFFSET 500",
	} {
		rep, err := ex.WhySlow(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		if len(rep.Bottlenecks) == 0 || rep.Text == "" {
			t.Errorf("%q produced an empty diagnosis", sql)
		}
		if rep.Speedup < 1 {
			t.Errorf("%q speedup = %v", sql, rep.Speedup)
		}
	}
}
