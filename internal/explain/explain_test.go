package explain

import (
	"strings"
	"sync"
	"testing"

	"htapxplain/internal/expert"
	"htapxplain/internal/htap"
	"htapxplain/internal/knowledge"
	"htapxplain/internal/llm"
	"htapxplain/internal/treecnn"
	"htapxplain/internal/workload"
)

// test fixture: system + trained router + curated KB, built once.
var (
	fixOnce   sync.Once
	fixSys    *htap.System
	fixRouter *treecnn.Router
	fixOracle *expert.Oracle
	fixKB     *knowledge.Base
	fixErr    error
)

func fixture(t *testing.T) (*htap.System, *treecnn.Router, *expert.Oracle, *knowledge.Base) {
	t.Helper()
	fixOnce.Do(func() {
		fixSys, fixErr = htap.New(htap.DefaultConfig())
		if fixErr != nil {
			return
		}
		fixOracle = expert.NewOracle(fixSys)
		queries := workload.NewGenerator(55).Batch(60)
		var samples []treecnn.Sample
		for _, q := range queries {
			res, err := fixSys.Run(q.SQL)
			if err != nil {
				fixErr = err
				return
			}
			samples = append(samples, treecnn.Sample{Pair: &res.Pair, Label: res.Winner})
		}
		fixRouter = treecnn.New(1)
		fixRouter.Train(samples, 40, 2)
		fixKB, fixErr = CurateKB(fixSys, fixRouter, fixOracle, queries[:40], 20)
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fixSys, fixRouter, fixOracle, fixKB
}

func TestCurateKBRespectsTargetAndCoverage(t *testing.T) {
	_, _, _, kb := fixture(t)
	if kb.Len() != 20 {
		t.Fatalf("KB size = %d, want 20", kb.Len())
	}
	cov := kb.FactorCoverage()
	if len(cov) < 3 {
		t.Errorf("KB covers only %d factors: %v", len(cov), cov)
	}
	// both winners represented
	winners := map[string]bool{}
	for _, e := range kb.Entries() {
		winners[e.Winner.String()] = true
		if e.Explanation == "" || len(e.Encoding) != treecnn.PairDim {
			t.Errorf("malformed entry: %+v", e)
		}
	}
	if !winners["TP"] || !winners["AP"] {
		t.Errorf("curated KB should cover both winners: %v", winners)
	}
}

func TestExplainSQLEndToEnd(t *testing.T) {
	sys, router, oracle, kb := fixture(t)
	ex := New(sys, router, kb, llm.Doubao(), DefaultOptions())
	out, err := ex.ExplainSQL(htap.Example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	if out.Response.None {
		t.Fatalf("Example 1 should be explainable: %q", out.Text())
	}
	if len(out.Retrieved) != 2 {
		t.Errorf("retrieved %d entries, want K=2", len(out.Retrieved))
	}
	truth, err := oracle.Judge(out.Result)
	if err != nil {
		t.Fatal(err)
	}
	if g := expert.GradeExplanation(out.Text(), truth); g.Verdict != expert.VerdictAccurate {
		t.Errorf("Example 1 graded %v: %q (false claims %v)", g.Verdict, out.Text(), g.FalseClaims)
	}
	if out.EncodeTime <= 0 || out.SearchTime <= 0 {
		t.Error("latency components not measured")
	}
	if out.TotalModeledLatency() <= out.Response.GenTime {
		t.Error("total latency must include all components")
	}
}

func TestKParameterHonored(t *testing.T) {
	sys, router, _, kb := fixture(t)
	for _, k := range []int{1, 3, 5} {
		ex := New(sys, router, kb, llm.Doubao(), Options{K: k, UseRAG: true, IncludeGuardrail: true})
		out, err := ex.ExplainSQL("SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'p'")
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Retrieved) != k {
			t.Errorf("K=%d retrieved %d", k, len(out.Retrieved))
		}
	}
}

func TestUseRAGFalseSkipsRetrieval(t *testing.T) {
	sys, router, _, kb := fixture(t)
	ex := New(sys, router, kb, llm.Doubao(), Options{K: 2, UseRAG: false, IncludeGuardrail: true})
	out, err := ex.ExplainSQL(htap.Example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Retrieved) != 0 {
		t.Errorf("RAG disabled but retrieved %d entries", len(out.Retrieved))
	}
	if strings.Contains(out.Prompt, "=== KNOWLEDGE") || strings.Contains(out.Prompt, "return None") {
		t.Error("RAG-free prompt should carry no retriever framing")
	}
}

func TestUserContextFlowsIntoPrompt(t *testing.T) {
	sys, router, _, kb := fixture(t)
	ex := New(sys, router, kb, llm.Doubao(), Options{
		K: 2, UseRAG: true, IncludeGuardrail: true,
		UserContext: "an additional index has been created on the c_phone column",
	})
	out, err := ex.ExplainSQL(htap.Example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Prompt, "c_phone column") {
		t.Error("user context missing from prompt")
	}
}

func TestFeedbackWritesCorrection(t *testing.T) {
	sys, router, oracle, _ := fixture(t)
	// private empty KB so feedback effects are observable
	kb := knowledge.New(treecnn.PairDim)
	ex := New(sys, router, kb, llm.Doubao(), DefaultOptions())
	out, err := ex.ExplainSQL("SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'p'")
	if err != nil {
		t.Fatal(err)
	}
	truth, err := oracle.Judge(out.Result)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Feedback(out, oracle.Explain(truth), truth); err != nil {
		t.Fatal(err)
	}
	if kb.Len() != 1 {
		t.Fatalf("KB size after feedback = %d", kb.Len())
	}
	e := kb.Entries()[0]
	if !e.Corrected {
		t.Error("feedback entry should be marked corrected")
	}
	// the correction is now retrievable and fixes the same query
	out2, err := ex.ExplainSQL("SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'p'")
	if err != nil {
		t.Fatal(err)
	}
	if out2.Response.None {
		t.Error("after feedback the same query should be explainable")
	}
	g := expert.GradeExplanation(out2.Text(), truth)
	if g.Verdict != expert.VerdictAccurate {
		t.Errorf("post-feedback explanation graded %v: %q", g.Verdict, out2.Text())
	}
}

func TestEmptyKBYieldsNone(t *testing.T) {
	sys, router, _, _ := fixture(t)
	kb := knowledge.New(treecnn.PairDim)
	ex := New(sys, router, kb, llm.Doubao(), DefaultOptions())
	out, err := ex.ExplainSQL(htap.Example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Response.None {
		t.Errorf("empty KB should produce None, got %q", out.Text())
	}
}

func TestAddExecutionInterface(t *testing.T) {
	sys, router, oracle, _ := fixture(t)
	kb := knowledge.New(treecnn.PairDim)
	res, err := sys.Run("SELECT COUNT(*) FROM nation")
	if err != nil {
		t.Fatal(err)
	}
	truth, err := oracle.Judge(res)
	if err != nil {
		t.Fatal(err)
	}
	id, err := AddExecution(kb, router, res, "expert words", truth.AllFactors())
	if err != nil {
		t.Fatal(err)
	}
	e, ok := kb.Get(id)
	if !ok || e.Explanation != "expert words" || e.SQL != res.SQL {
		t.Errorf("AddExecution entry: %+v", e)
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.K != 2 || !o.UseRAG || !o.IncludeGuardrail {
		t.Errorf("DefaultOptions = %+v", o)
	}
	// zero K falls back to 2
	sys, router, _, kb := fixture(t)
	ex := New(sys, router, kb, llm.Doubao(), Options{K: 0, UseRAG: true})
	if ex.Opts.K != 2 {
		t.Errorf("K=0 should default to 2, got %d", ex.Opts.K)
	}
}
