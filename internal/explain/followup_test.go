package explain

import (
	"strings"
	"testing"

	"htapxplain/internal/htap"
	"htapxplain/internal/llm"
)

func TestFollowUpIndexQuestion(t *testing.T) {
	// the paper's §VI-B example: the user asks why the predicate on the
	// customer table does not benefit from the index on c_phone
	sys, router, _, kb := fixture(t)
	ex := New(sys, router, kb, llm.Doubao(), Options{
		K: 2, UseRAG: true, IncludeGuardrail: true,
		UserContext: "an additional index has been created on the c_phone column",
	})
	root, err := ex.ExplainSQL(htap.Example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	conv := ex.Converse(root)
	resp, err := conv.Ask("Why does the predicate on the customer table not benefit from the index on c_phone?")
	if err != nil {
		t.Fatal(err)
	}
	lower := strings.ToLower(resp.Text)
	if !strings.Contains(lower, "function") || !strings.Contains(lower, "index") {
		t.Errorf("follow-up should explain function-disabled indexes: %q", resp.Text)
	}
	if len(conv.History()) != 1 {
		t.Errorf("history length = %d", len(conv.History()))
	}
}

func TestFollowUpTopics(t *testing.T) {
	sys, router, _, kb := fixture(t)
	ex := New(sys, router, kb, llm.Doubao(), DefaultOptions())
	root, err := ex.ExplainSQL(htap.Example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	conv := ex.Converse(root)
	cases := []struct {
		question string
		wants    []string
	}{
		{"Is a large OFFSET expensive?", []string{"offset", "discard"}},
		{"Why can't I compare the plan costs?", []string{"not comparable"}},
		{"When is a nested loop join better than a hash join?", []string{"point lookup", "hash table"}},
		{"What's the difference between the storage formats?", []string{"row-oriented", "column-oriented"}},
	}
	for _, c := range cases {
		resp, err := conv.Ask(c.question)
		if err != nil {
			t.Fatal(err)
		}
		lower := strings.ToLower(resp.Text)
		for _, w := range c.wants {
			if !strings.Contains(lower, w) {
				t.Errorf("follow-up %q missing %q: %q", c.question, w, resp.Text)
			}
		}
	}
	if len(conv.History()) != len(cases) {
		t.Errorf("history length = %d, want %d", len(conv.History()), len(cases))
	}
	if conv.Root() != root {
		t.Error("Root() should return the originating explanation")
	}
}

func TestFollowUpGenericFallback(t *testing.T) {
	sys, router, _, kb := fixture(t)
	ex := New(sys, router, kb, llm.Doubao(), DefaultOptions())
	root, err := ex.ExplainSQL(htap.Example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ex.Converse(root).Ask("tell me a story about penguins")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text == "" || resp.None {
		t.Error("generic fallback should still produce a grounded reply")
	}
	if !strings.Contains(strings.ToLower(resp.Text), "ap engine wins") {
		t.Errorf("fallback should reference the discussed query's outcome: %q", resp.Text)
	}
}
