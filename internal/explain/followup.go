package explain

import (
	"fmt"
	"strings"

	"htapxplain/internal/llm"
	"htapxplain/internal/prompt"
)

// Conversation is the paper's follow-up interface (§VI-B): "an additional
// advantage of using an LLM is its flexibility in offering a
// conversational interface that allows follow-up questions." A
// Conversation keeps the original explanation context and lets the user
// ask in-depth follow-ups (e.g. why the predicate on customer does not
// benefit from the index on c_phone).
type Conversation struct {
	ex      *Explainer
	root    *Explanation
	history []Turn
}

// Turn is one follow-up exchange.
type Turn struct {
	Question string
	Answer   llm.Response
}

// Converse starts a conversation from an explanation.
func (e *Explainer) Converse(root *Explanation) *Conversation {
	return &Conversation{ex: e, root: root}
}

// History returns the past turns.
func (c *Conversation) History() []Turn { return c.history }

// Root returns the originating explanation.
func (c *Conversation) Root() *Explanation { return c.root }

// Ask sends a follow-up question grounded in the original prompt, the
// generated explanation and the prior turns.
func (c *Conversation) Ask(question string) (llm.Response, error) {
	var sb strings.Builder
	sb.WriteString(c.root.Prompt)
	sb.WriteString("\n")
	sb.WriteString(prompt.MarkerPrevAnswer)
	sb.WriteString("\n")
	sb.WriteString(c.root.Response.Text)
	sb.WriteString("\n")
	for _, t := range c.history {
		sb.WriteString(prompt.MarkerFollowUp)
		sb.WriteString("\n")
		sb.WriteString(t.Question)
		sb.WriteString("\n")
		sb.WriteString(prompt.MarkerPrevAnswer)
		sb.WriteString("\n")
		sb.WriteString(t.Answer.Text)
		sb.WriteString("\n")
	}
	sb.WriteString(prompt.MarkerFollowUp)
	sb.WriteString("\n")
	sb.WriteString(question)
	sb.WriteString("\n")

	resp, err := c.ex.Model.Generate(sb.String())
	if err != nil {
		return llm.Response{}, fmt.Errorf("explain: follow-up: %w", err)
	}
	c.history = append(c.history, Turn{Question: question, Answer: resp})
	return resp, nil
}
