package explain

import (
	"fmt"

	"htapxplain/internal/expert"
	"htapxplain/internal/htap"
	"htapxplain/internal/knowledge"
	"htapxplain/internal/plan"
	"htapxplain/internal/treecnn"
	"htapxplain/internal/workload"
)

// CurateKB builds the paper's small curated knowledge base (§IV: "we
// selectively include only 20 representative queries"): it executes
// candidate queries, judges them with the expert oracle, and selects a
// target-sized subset that covers the (winner, primary factor) space as
// evenly as possible — the "representative queries" selection the paper
// performs manually.
func CurateKB(sys *htap.System, router *treecnn.Router, oracle *expert.Oracle,
	candidates []workload.Query, target int) (*knowledge.Base, error) {
	kb := knowledge.New(treecnn.PairDim)
	type judged struct {
		q     workload.Query
		res   *htap.Result
		truth expert.Truth
	}
	var pool []judged
	for _, q := range candidates {
		res, err := sys.Run(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("curate: running %q: %w", q.SQL, err)
		}
		truth, err := oracle.Judge(res)
		if err != nil {
			return nil, fmt.Errorf("curate: judging %q: %w", q.SQL, err)
		}
		pool = append(pool, judged{q: q, res: res, truth: truth})
	}
	// round-robin over (winner, primary) classes for coverage
	type class struct {
		winner  plan.Engine
		primary expert.Factor
	}
	byClass := map[class][]judged{}
	var order []class
	for _, j := range pool {
		c := class{j.truth.Winner, j.truth.Primary}
		if _, seen := byClass[c]; !seen {
			order = append(order, c)
		}
		byClass[c] = append(byClass[c], j)
	}
	added := 0
	for round := 0; added < target; round++ {
		progressed := false
		for _, c := range order {
			if added >= target {
				break
			}
			items := byClass[c]
			if round >= len(items) {
				continue
			}
			j := items[round]
			if err := addEntry(kb, router, oracle, j.res, j.truth, j.q.SQL); err != nil {
				return nil, err
			}
			added++
			progressed = true
		}
		if !progressed {
			break // pool exhausted
		}
	}
	return kb, nil
}

// addEntry encodes and stores one expert-explained execution.
func addEntry(kb *knowledge.Base, router *treecnn.Router, oracle *expert.Oracle,
	res *htap.Result, truth expert.Truth, sql string) error {
	enc := router.EmbedPair(&res.Pair)
	_, err := kb.Add(knowledge.Entry{
		SQL:         sql,
		Encoding:    enc,
		TPPlanJSON:  res.Pair.TP.ExplainJSON(),
		APPlanJSON:  res.Pair.AP.ExplainJSON(),
		Winner:      res.Winner,
		Speedup:     res.Speedup(),
		Explanation: oracle.Explain(truth),
		Factors:     truth.AllFactors(),
	})
	if err != nil {
		return fmt.Errorf("curate: adding entry: %w", err)
	}
	return nil
}

// AddExecution is the KB's public ingestion interface (§IV: "we also
// provide the interface for the knowledge base to accept new queries with
// experts explanations").
func AddExecution(kb *knowledge.Base, router *treecnn.Router, res *htap.Result,
	explanation string, factors []expert.Factor) (int, error) {
	return kb.Add(knowledge.Entry{
		SQL:         res.SQL,
		Encoding:    router.EmbedPair(&res.Pair),
		TPPlanJSON:  res.Pair.TP.ExplainJSON(),
		APPlanJSON:  res.Pair.AP.ExplainJSON(),
		Winner:      res.Winner,
		Speedup:     res.Speedup(),
		Explanation: explanation,
		Factors:     factors,
	})
}
