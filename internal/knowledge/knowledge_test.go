package knowledge

import (
	"bytes"
	"testing"

	"htapxplain/internal/expert"
	"htapxplain/internal/plan"
)

func entry(enc []float64, sql string, winner plan.Engine, factors ...expert.Factor) Entry {
	return Entry{
		SQL: sql, Encoding: enc, TPPlanJSON: "{}", APPlanJSON: "{}",
		Winner: winner, Speedup: 3, Explanation: "because reasons", Factors: factors,
	}
}

func TestAddGetTopK(t *testing.T) {
	b := New(2)
	id1, err := b.Add(entry([]float64{1, 0}, "q1", plan.AP, expert.FactorHashJoinAdvantage))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := b.Add(entry([]float64{0, 1}, "q2", plan.TP, expert.FactorIndexPointLookup))
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	if e, ok := b.Get(id1); !ok || e.SQL != "q1" {
		t.Errorf("Get(id1) = %+v %v", e, ok)
	}
	if _, ok := b.Get(999); ok {
		t.Error("Get(bogus) should fail")
	}
	hits, err := b.TopK([]float64{0.9, 0.1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Entry.ID != id1 {
		t.Errorf("TopK = %+v", hits)
	}
	hits, err = b.TopK([]float64{0.1, 0.9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hits[0].Entry.ID != id2 {
		t.Errorf("nearest should be q2: %+v", hits)
	}
	if hits[0].Distance > hits[1].Distance {
		t.Error("hits must be sorted by distance")
	}
}

func TestAddRejectsWrongDimension(t *testing.T) {
	b := New(4)
	if _, err := b.Add(entry([]float64{1}, "q", plan.TP)); err == nil {
		t.Error("wrong-dimension encoding should fail")
	}
}

func TestCorrectMarksEntries(t *testing.T) {
	b := New(2)
	id, err := b.Correct([]float64{1, 1}, "q", "{}", "{}", plan.AP, 5, "corrected text",
		[]expert.Factor{expert.FactorColumnarScan})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := b.Get(id)
	if !e.Corrected || e.Explanation != "corrected text" {
		t.Errorf("corrected entry: %+v", e)
	}
}

func TestExpireOlderThan(t *testing.T) {
	b := New(1)
	for i := 0; i < 5; i++ {
		if _, err := b.Add(entry([]float64{float64(i)}, "q", plan.TP)); err != nil {
			t.Fatal(err)
		}
	}
	// entries got Seq 1..5
	if n := b.ExpireOlderThan(3); n != 3 {
		t.Errorf("expired %d, want 3", n)
	}
	if b.Len() != 2 {
		t.Errorf("Len after expiry = %d", b.Len())
	}
	// expired entries no longer retrievable
	hits, err := b.TopK([]float64{0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.Entry.Seq <= 3 {
			t.Errorf("expired entry retrieved: %+v", h.Entry)
		}
	}
}

func TestFactorCoverage(t *testing.T) {
	b := New(1)
	_, _ = b.Add(entry([]float64{0}, "a", plan.AP, expert.FactorHashJoinAdvantage, expert.FactorColumnarScan))
	_, _ = b.Add(entry([]float64{1}, "b", plan.AP, expert.FactorHashJoinAdvantage))
	cov := b.FactorCoverage()
	if cov[expert.FactorHashJoinAdvantage] != 2 || cov[expert.FactorColumnarScan] != 1 {
		t.Errorf("coverage = %v", cov)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	b := New(2)
	_, _ = b.Add(entry([]float64{1, 2}, "q1", plan.AP, expert.FactorHashJoinAdvantage))
	_, _ = b.Add(entry([]float64{3, 4}, "q2", plan.TP, expert.FactorIndexOrderTopN))
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded Len = %d", loaded.Len())
	}
	origEntries, loadedEntries := b.Entries(), loaded.Entries()
	for i := range origEntries {
		if origEntries[i].SQL != loadedEntries[i].SQL ||
			origEntries[i].Winner != loadedEntries[i].Winner {
			t.Errorf("entry %d differs after round trip", i)
		}
	}
	// retrieval still works on the loaded base
	hits, err := loaded.TopK([]float64{1, 2}, 1)
	if err != nil || len(hits) != 1 || hits[0].Entry.SQL != "q1" {
		t.Errorf("loaded TopK = %+v, %v", hits, err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("Load should reject garbage")
	}
}

func TestEntriesDeterministicOrder(t *testing.T) {
	b := New(1)
	for i := 0; i < 10; i++ {
		_, _ = b.Add(entry([]float64{float64(i)}, "q", plan.TP))
	}
	es := b.Entries()
	for i := 1; i < len(es); i++ {
		if es[i-1].ID >= es[i].ID {
			t.Fatal("Entries() must be ordered by ID")
		}
	}
}

func TestHNSWModeRetrieves(t *testing.T) {
	b := New(2)
	for i := 0; i < 50; i++ {
		_, _ = b.Add(entry([]float64{float64(i), float64(i % 7)}, "q", plan.TP))
	}
	b.EnableHNSW(8, 32, 1)
	hits, err := b.TopK([]float64{25, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Fatalf("HNSW TopK = %d hits", len(hits))
	}
}
