// Package knowledge implements the RAG knowledge base (§IV): a vector
// store keyed by 16-dim plan-pair encodings whose values are
// <plan details, execution result, expert explanation> tuples. It
// supports expert-correction write-back (wrong LLM outputs corrected and
// stored for future retrieval), staleness expiry, and gob persistence —
// including the interface the paper describes for accepting new queries
// with expert explanations.
//
// Concurrency model: writers (Add/Correct/ExpireOlderThan) serialize on
// the base's mutex. Reads take a read lock — except TopK once EnableHNSW
// has been called: the base then maintains an atomically-published
// copy-on-write snapshot pairing the vector store's immutable view with
// a matching entry map, so retrieval under concurrent serving is a
// wait-free read through the HNSW index, never the mutex-guarded linear
// scan. Entries are immutable after publication; a snapshot's vector
// hits and entry lookups are mutually consistent by construction.
package knowledge

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"htapxplain/internal/expert"
	"htapxplain/internal/plan"
	"htapxplain/internal/vectordb"
)

// Entry is one knowledge-base record.
type Entry struct {
	ID       int
	SQL      string
	Encoding []float64 // 16-dim plan-pair encoding from the smart router
	// TPPlanJSON / APPlanJSON are the stored plan details (paper: "plan
	// details includes the actual execution plans for both engines").
	TPPlanJSON string
	APPlanJSON string
	// Winner is the execution result: which engine ran faster.
	Winner plan.Engine
	// Speedup is how many times faster the winner was.
	Speedup float64
	// Explanation is the expert-curated explanation text.
	Explanation string
	// Factors are the ground-truth factors behind the explanation,
	// kept so curation tooling can reason about KB coverage.
	Factors []expert.Factor
	// Seq is a logical insertion timestamp for staleness expiry.
	Seq int64
	// Corrected marks entries written back by expert correction.
	Corrected bool
}

// kbView is the published snapshot: the vector store's immutable view
// plus the entry map as of the same write. Published whole so TopK's
// vector hits always resolve against entries from the same moment.
type kbView struct {
	vec     *vectordb.View
	entries map[int]*Entry
}

// Base is the knowledge base. Safe for concurrent use.
type Base struct {
	mu      sync.RWMutex
	store   *vectordb.Store
	entries map[int]*Entry
	seq     int64

	view     atomic.Pointer[kbView] // nil until EnableHNSW
	indexed  bool                   // guarded by mu; true once EnableHNSW ran
	hnswM    int
	hnswEf   int
	hnswSeed int64
}

// New creates an empty knowledge base for encodings of the given
// dimension.
func New(dim int) *Base {
	return &Base{
		store:   vectordb.New(dim, vectordb.Cosine),
		entries: make(map[int]*Entry),
	}
}

// Len returns the number of live entries.
func (b *Base) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.entries)
}

// CurSeq returns the highest sequence number assigned so far; an entry
// added next gets a larger one. ExpireOlderThan(CurSeq()) therefore
// expires everything currently present — the maintenance loop's
// refresh-all floor.
func (b *Base) CurSeq() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.seq
}

// Add inserts an entry and returns its assigned ID.
func (b *Base) Add(e Entry) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	id, err := b.store.Add(e.Encoding)
	if err != nil {
		return 0, fmt.Errorf("knowledge: %w", err)
	}
	b.seq++
	e.ID = id
	e.Seq = b.seq
	b.entries[id] = &e
	b.publishLocked()
	return id, nil
}

// Get returns the entry by ID.
func (b *Base) Get(id int) (*Entry, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	e, ok := b.entries[id]
	return e, ok
}

// Hit pairs an entry with its retrieval distance.
type Hit struct {
	Entry    *Entry
	Distance float64
}

// TopK retrieves the k most similar entries to the query encoding. When
// the HNSW index is enabled (EnableHNSW), retrieval goes through the
// copy-on-write snapshot — a lock-free approximate search, the serving
// path. Otherwise search is the exact mutex-guarded linear scan —
// matching the paper's setup where the KB is small and search is
// near-instant.
func (b *Base) TopK(encoding []float64, k int) ([]Hit, error) {
	if v := b.view.Load(); v != nil {
		hits, err := v.vec.SearchHNSW(encoding, k)
		if err != nil {
			return nil, fmt.Errorf("knowledge: %w", err)
		}
		if len(hits) == 0 && v.vec.Len() > 0 {
			// the graph's whole beam was tombstoned (a mass expiry before
			// the next rebuild): fall back to an exact scan of the same
			// snapshot so a non-empty base always yields grounding
			if hits, err = v.vec.Search(encoding, k); err != nil {
				return nil, fmt.Errorf("knowledge: %w", err)
			}
		}
		out := make([]Hit, 0, len(hits))
		for _, h := range hits {
			if e, ok := v.entries[h.ID]; ok {
				out = append(out, Hit{Entry: e, Distance: h.Distance})
			}
		}
		return out, nil
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	hits, err := b.store.Search(encoding, k)
	if err != nil {
		return nil, fmt.Errorf("knowledge: %w", err)
	}
	out := make([]Hit, 0, len(hits))
	for _, h := range hits {
		if e, ok := b.entries[h.ID]; ok {
			out = append(out, Hit{Entry: e, Distance: h.Distance})
		}
	}
	return out, nil
}

// EnableHNSW builds the HNSW index and starts publishing copy-on-write
// snapshots: every subsequent TopK is lock-free. Bulk-load entries
// before enabling when possible — each post-enable Add clones the
// snapshot, which is O(entries).
func (b *Base) EnableHNSW(m, efConstruction int, seed int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.hnswM, b.hnswEf, b.hnswSeed = m, efConstruction, seed
	b.store.BuildHNSW(m, efConstruction, seed)
	b.indexed = true
	b.publishLocked()
}

// RebuildIndex reconstructs the HNSW graph from the current live state
// and publishes a fresh snapshot. The maintenance loop calls it after
// expiry churn so tombstoned vectors stop shaping the graph topology.
// No-op before EnableHNSW.
func (b *Base) RebuildIndex() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.indexed {
		return
	}
	b.store.BuildHNSW(b.hnswM, b.hnswEf, b.hnswSeed)
	b.publishLocked()
}

// publishLocked publishes the current state as an immutable snapshot.
// Caller holds b.mu; no-op until EnableHNSW has run.
func (b *Base) publishLocked() {
	if !b.indexed {
		return
	}
	ents := make(map[int]*Entry, len(b.entries))
	for id, e := range b.entries {
		ents[id] = e
	}
	b.view.Store(&kbView{vec: b.store.Snapshot(), entries: ents})
}

// Correct implements the expert feedback loop (§III-B): when a generated
// explanation is judged wrong, the expert's corrected explanation is
// stored as a new entry keyed by the same encoding, superseding retrieval
// results for similar future queries.
func (b *Base) Correct(encoding []float64, sql, tpPlan, apPlan string,
	winner plan.Engine, speedup float64, corrected string, factors []expert.Factor) (int, error) {
	return b.Add(Entry{
		SQL: sql, Encoding: encoding,
		TPPlanJSON: tpPlan, APPlanJSON: apPlan,
		Winner: winner, Speedup: speedup,
		Explanation: corrected, Factors: factors,
		Corrected: true,
	})
}

// ExpireOlderThan tombstones entries with Seq <= maxSeq, the
// "expiring stale queries" mechanism the paper lists as future work.
// It returns the number of expired entries.
func (b *Base) ExpireOlderThan(maxSeq int64) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for id, e := range b.entries {
		if e.Seq <= maxSeq {
			if err := b.store.Delete(id); err == nil {
				delete(b.entries, id)
				n++
			}
		}
	}
	if n > 0 {
		b.publishLocked()
	}
	return n
}

// Entries returns all live entries ordered by ID (deterministic).
func (b *Base) Entries() []*Entry {
	b.mu.RLock()
	defer b.mu.RUnlock()
	ids := make([]int, 0, len(b.entries))
	for id := range b.entries {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*Entry, len(ids))
	for i, id := range ids {
		out[i] = b.entries[id]
	}
	return out
}

// FactorCoverage reports how many live entries assert each factor —
// curation tooling uses it to keep the small KB representative.
func (b *Base) FactorCoverage() map[expert.Factor]int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := map[expert.Factor]int{}
	for _, e := range b.entries {
		for _, f := range e.Factors {
			out[f]++
		}
	}
	return out
}

// ---------------------------------------------------------- persistence

type snapshot struct {
	Dim     int
	Entries []Entry
}

// Save serializes the knowledge base.
func (b *Base) Save(w io.Writer) error {
	s := snapshot{Dim: b.store.Dim()}
	for _, e := range b.Entries() {
		s.Entries = append(s.Entries, *e)
	}
	return gob.NewEncoder(w).Encode(s)
}

// Load deserializes a knowledge base previously written by Save. The
// HNSW index is not part of the snapshot; call EnableHNSW afterwards to
// resume lock-free serving retrieval.
func Load(r io.Reader) (*Base, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("knowledge: decoding: %w", err)
	}
	b := New(s.Dim)
	for _, e := range s.Entries {
		if _, err := b.Add(e); err != nil {
			return nil, err
		}
	}
	return b, nil
}
