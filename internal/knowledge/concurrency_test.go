package knowledge

import (
	"fmt"
	"sync"
	"testing"

	"htapxplain/internal/plan"
)

// TestConcurrentAddAndSearch exercises the knowledge base's thread-safety
// claim under the race detector: writers add entries and expire old ones
// while readers search and enumerate concurrently.
func TestConcurrentAddAndSearch(t *testing.T) {
	b := New(4)
	// seed a few so searches are never empty
	for i := 0; i < 8; i++ {
		if _, err := b.Add(entry([]float64{float64(i), 0, 0, 0}, "seed", plan.AP)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := b.Add(entry([]float64{float64(w), float64(i), 0, 0}, "w", plan.TP)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := b.TopK([]float64{float64(r), float64(i), 0, 0}, 3); err != nil {
					errCh <- err
					return
				}
				_ = b.Len()
				_ = b.Entries()
				_ = b.FactorCoverage()
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			b.ExpireOlderThan(int64(i))
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("concurrent op failed: %v", err)
	}
	if b.Len() == 0 {
		t.Error("base should not be empty after the run")
	}
}

// TestConcurrentSearchWithHNSWSnapshot is the serving-path variant: with
// the HNSW index enabled, TopK goes through the copy-on-write snapshot
// with no lock, racing Correct write-backs, expiry and index rebuilds.
// Every hit must be a fully-formed live entry — no torn reads.
func TestConcurrentSearchWithHNSWSnapshot(t *testing.T) {
	b := New(4)
	for i := 0; i < 32; i++ {
		if _, err := b.Add(entry([]float64{float64(i), 1, 0, 0}, "seed", plan.AP)); err != nil {
			t.Fatal(err)
		}
	}
	b.EnableHNSW(8, 32, 1)

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				hits, err := b.TopK([]float64{float64(r), float64(i % 7), 0, 0}, 3)
				if err != nil {
					errCh <- err
					return
				}
				if len(hits) == 0 {
					errCh <- fmt.Errorf("TopK returned no hits at iteration %d", i)
					return
				}
				for _, h := range hits {
					if h.Entry == nil || len(h.Entry.Encoding) != 4 || h.Entry.Explanation == "" {
						errCh <- fmt.Errorf("torn or incomplete entry: %+v", h.Entry)
						return
					}
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := b.Correct([]float64{float64(i), 2, 0, 0}, "corrected",
				"{}", "{}", plan.TP, 2.0, "corrected explanation", nil); err != nil {
				errCh <- err
				return
			}
			// expire the oldest while keeping a healthy floor of entries
			if i%10 == 9 {
				b.ExpireOlderThan(b.CurSeq() - 40)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			b.RebuildIndex()
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("concurrent HNSW op failed: %v", err)
	}
	if b.Len() == 0 {
		t.Error("base should not be empty after the run")
	}
}
