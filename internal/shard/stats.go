package shard

// ShardStatus is one shard's gauges in a coordinator stats snapshot.
type ShardStatus struct {
	Queries   int64  `json:"queries"`
	CommitLSN uint64 `json:"commit_lsn"`
	Watermark uint64 `json:"watermark"`
	Staleness uint64 `json:"staleness"`
}

// Stats is a point-in-time snapshot of the coordinator's counters — the
// source for the gateway's per-shard /metrics gauges.
type Stats struct {
	Shards          []ShardStatus `json:"shards"`
	RoutedQueries   int64         `json:"routed_queries"`
	ScatterQueries  int64         `json:"scatter_queries"`
	ScatterFanout   int64         `json:"scatter_fanout"`
	ExchangeBatches int64         `json:"exchange_batches"`
	ExchangeRows    int64         `json:"exchange_rows"`
	CrossShardTxns  int64         `json:"cross_shard_txns"`
	CoordLSN        uint64        `json:"coord_lsn"`
}

// Stats snapshots the coordinator's counters and each shard's progress
// gauges.
func (c *Coordinator) Stats() Stats {
	st := Stats{
		Shards:          make([]ShardStatus, len(c.shards)),
		RoutedQueries:   c.met.routedQueries.Load(),
		ScatterQueries:  c.met.scatterQueries.Load(),
		ScatterFanout:   c.met.scatterFanout.Load(),
		ExchangeBatches: c.met.exchangeBatches.Load(),
		ExchangeRows:    c.met.exchangeRows.Load(),
		CrossShardTxns:  c.met.crossShardTxns.Load(),
		CoordLSN:        c.coordLSN.Load(),
	}
	for i, s := range c.shards {
		st.Shards[i] = ShardStatus{
			Queries:   c.met.shardQueries[i].Load(),
			CommitLSN: s.CommitLSN(),
			Watermark: s.Watermark(),
			Staleness: s.Staleness(),
		}
	}
	return st
}
