// Package shard scales the HTAP system out across N in-process shards:
// hash-partitioned htap.Systems coordinated by a router that sends point
// reads and writes to exactly one shard, scatters analytical queries as
// per-shard plan fragments joined by exchange operators, and orders
// cross-shard transactions with a two-phase publish under a coordinator
// commit sequence.
package shard

import (
	"hash/fnv"
	"math"
	"strconv"
	"strings"

	"htapxplain/internal/value"
)

// Scheme is the partitioning layout: which column hash-partitions each
// table. Tables absent from the map are replicated to every shard.
type Scheme map[string]string

// PartitionColumn implements optimizer.PartitionView.
func (s Scheme) PartitionColumn(table string) (string, bool) {
	c, ok := s[strings.ToLower(table)]
	return c, ok
}

// TPCHScheme is the layout used for the TPC-H tables: every large table
// partitions by its primary key, lineitem co-partitions with orders on
// the order key (so the biggest join in the schema is partition-wise),
// and the two tiny dimension tables replicate everywhere.
func TPCHScheme() Scheme {
	return Scheme{
		"customer": "c_custkey",
		"orders":   "o_orderkey",
		"lineitem": "l_orderkey", // co-partitioned with orders
		"part":     "p_partkey",
		"partsupp": "ps_partkey", // co-partitioned with part
		"supplier": "s_suppkey",
		// nation, region: replicated
	}
}

// KeyString renders a partition-key value into the canonical form that is
// hashed — the normalization that makes shard assignment stable across
// value encodings. It mirrors the engine's result-comparison rules:
// floats are rounded to 4 decimals with -0.0 collapsed into +0.0 (the PR 3
// normalization), and a float that holds an exact integer renders exactly
// like the equivalent int, so `o_custkey = 7` and `o_custkey = 7.0` pin
// the same shard.
func KeyString(v value.Value) string {
	switch v.K {
	case value.KindInt:
		return "i" + strconv.FormatInt(v.I, 10)
	case value.KindFloat:
		f := math.Round(v.F*1e4) / 1e4
		if f == 0 {
			f = 0 // collapse -0.0 into +0.0
		}
		if f == math.Trunc(f) && math.Abs(f) < 1<<53 {
			return "i" + strconv.FormatInt(int64(f), 10)
		}
		return "f" + strconv.FormatFloat(f, 'f', 4, 64)
	case value.KindString:
		return "s" + v.S
	case value.KindBool:
		if v.I != 0 {
			return "b1"
		}
		return "b0"
	default:
		return "n"
	}
}

// PartitionKey hashes a value's canonical form (FNV-1a 64).
func PartitionKey(v value.Value) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(KeyString(v)))
	return h.Sum64()
}

// ShardOf maps a partition-key value to its owning shard.
func ShardOf(v value.Value, n int) int {
	return int(PartitionKey(v) % uint64(n))
}
