package shard

import (
	"math"
	"testing"

	"htapxplain/internal/value"
)

func TestKeyStringNormalization(t *testing.T) {
	cases := []struct {
		a, b value.Value
	}{
		{value.NewInt(7), value.NewFloat(7.0)},
		{value.NewInt(-3), value.NewFloat(-3.0)},
		{value.NewFloat(0.0), value.NewFloat(math.Copysign(0, -1))},
		{value.NewInt(0), value.NewFloat(math.Copysign(0, -1))},
		{value.NewFloat(1.0), value.NewFloat(1.00001)},   // rounds to 1.0000
		{value.NewFloat(2.5), value.NewFloat(2.500004)},  // rounds to 2.5000
		{value.NewFloat(-0.00004), value.NewFloat(0.0)},  // rounds into -0.0, collapses
		{value.NewInt(1 << 40), value.NewFloat(1 << 40)}, // big but exact
	}
	for _, c := range cases {
		if KeyString(c.a) != KeyString(c.b) {
			t.Errorf("KeyString(%v)=%q != KeyString(%v)=%q", c.a, KeyString(c.a), c.b, KeyString(c.b))
		}
		if PartitionKey(c.a) != PartitionKey(c.b) {
			t.Errorf("PartitionKey diverges for %v vs %v", c.a, c.b)
		}
	}
	// distinct values must (here) keep distinct canonical forms
	distinct := []value.Value{
		value.NewInt(1), value.NewInt(2), value.NewFloat(1.5),
		value.NewString("1"), value.NewBool(true), value.Null,
	}
	seen := map[string]bool{}
	for _, v := range distinct {
		k := KeyString(v)
		if seen[k] {
			t.Errorf("canonical form %q collides", k)
		}
		seen[k] = true
	}
}

func TestShardOfRange(t *testing.T) {
	for n := 1; n <= 8; n++ {
		for i := int64(0); i < 1000; i++ {
			s := ShardOf(value.NewInt(i), n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", i, n, s)
			}
		}
	}
	// keys spread: with 1000 sequential keys over 4 shards no shard is empty
	counts := make([]int, 4)
	for i := int64(0); i < 1000; i++ {
		counts[ShardOf(value.NewInt(i), 4)]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no keys out of 1000", s)
		}
	}
}

// FuzzPartitionKey checks the stability property the router depends on:
// shard assignment is invariant across value encodings. An integer and
// the float that holds the same (rounded) number must land on the same
// shard, -0.0 must land with +0.0, and the assignment must always be in
// range.
func FuzzPartitionKey(f *testing.F) {
	f.Add(int64(7), 7.0, "x", uint8(4))
	f.Add(int64(0), math.Copysign(0, -1), "", uint8(1))
	f.Add(int64(-12345), 1.00001, "key", uint8(7))
	f.Add(int64(1<<52), 2.500004, "-0.0", uint8(3))
	f.Fuzz(func(t *testing.T, i int64, fl float64, s string, nn uint8) {
		n := int(nn%8) + 1

		// every kind stays in range
		for _, v := range []value.Value{
			value.NewInt(i), value.NewFloat(fl), value.NewString(s), value.Null,
		} {
			got := ShardOf(v, n)
			if got < 0 || got >= n {
				t.Fatalf("ShardOf(%v, %d) = %d out of range", v, n, got)
			}
		}

		// int/float encoding equivalence: a float holding exactly i
		// shards identically to the int i (when representable)
		if f64 := float64(i); int64(f64) == i && math.Abs(f64) < 1<<53 {
			if ShardOf(value.NewInt(i), n) != ShardOf(value.NewFloat(f64), n) {
				t.Fatalf("int %d and float %g land on different shards", i, f64)
			}
		}

		// rounding normalization: a float and its 4-decimal rounding are
		// the same partition key
		if !math.IsNaN(fl) && !math.IsInf(fl, 0) {
			r := math.Round(fl*1e4) / 1e4
			if ShardOf(value.NewFloat(fl), n) != ShardOf(value.NewFloat(r), n) {
				t.Fatalf("float %g and rounded %g land on different shards", fl, r)
			}
			// -0.0 collapses
			if r == 0 {
				if ShardOf(value.NewFloat(fl), n) != ShardOf(value.NewFloat(0), n) {
					t.Fatalf("float %g (rounds to zero) diverges from +0.0", fl)
				}
			}
		}
	})
}
