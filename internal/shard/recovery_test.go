package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"htapxplain/internal/htap"
	"htapxplain/internal/workload"
)

// copyTree freezes a disk image of src while the source systems keep
// running — the shard-level kill -9.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying %s: %v", src, err)
	}
}

// liveCustomerRows unions the live customer rows across every shard,
// rendered and sorted for byte-level comparison.
func liveCustomerRows(t *testing.T, c *Coordinator) []string {
	t.Helper()
	var out []string
	for i := 0; i < c.NumShards(); i++ {
		tbl, ok := c.Shard(i).Row.Table("customer")
		if !ok {
			t.Fatalf("shard %d: no customer table", i)
		}
		for _, r := range tbl.Scan() {
			out = append(out, r.String())
		}
	}
	sort.Strings(out)
	return out
}

func liveReferenceRows(t *testing.T, s *htap.System) []string {
	t.Helper()
	tbl, ok := s.Row.Table("customer")
	if !ok {
		t.Fatal("no customer table")
	}
	rows := tbl.Scan()
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

// TestShardCrashRecoveryDifferential hard-kills arbitrary subsets of a
// durable 4-shard fleet — crash images frozen mid-flight for the killed
// subset, clean shutdown directories for the survivors — reopens the
// mixed image, and requires the recovered fleet to be byte-identical to
// a volatile single-shard reference that executed the same committed
// history, with every shard's column store caught back up to its
// recovered watermark.
func TestShardCrashRecoveryDifferential(t *testing.T) {
	const n = 4
	dir := t.TempDir()
	cfg := htap.DefaultConfig()
	cfg.Durability.DisableCheckpointer = true

	c, err := New(n, cfg, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewDMLGenerator(321)
	var committed []string
	for _, q := range gen.Batch(40) {
		if _, err := c.ExecDML(q.SQL); err != nil {
			t.Fatalf("ExecDML(%q): %v", q.SQL, err)
		}
		committed = append(committed, q.SQL)
	}
	// one cross-shard transaction in the history: its two-phase publish
	// must also survive the kill on every participant
	tx := c.Begin()
	for k := int64(3_000_000_000); k < 3_000_000_004; k++ {
		sql := fmt.Sprintf("INSERT INTO customer (c_custkey, c_name, c_address, c_nationkey, c_phone, c_acctbal, c_mktsegment, c_comment) VALUES (%d, 'xs#%d', 'a', 2, '12-000', 5.0, 'building', 'xs')", k, k)
		if _, err := tx.Exec(sql); err != nil {
			t.Fatal(err)
		}
		committed = append(committed, sql)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// freeze the kill -9 image of every shard mid-flight, then shut the
	// fleet down cleanly so `dir` holds the clean-shutdown layout
	image := t.TempDir()
	copyTree(t, dir, image)
	c.Close()

	// the volatile reference replays the exact committed history on one
	// unsharded system
	ref, err := htap.New(htap.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, sql := range committed {
		if _, err := ref.Exec(sql); err != nil {
			t.Fatalf("reference Exec(%q): %v", sql, err)
		}
	}
	if err := ref.WaitFresh(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	wantRows := liveReferenceRows(t, ref)

	for _, killed := range [][]int{{2}, {0, 3}, {0, 1, 2, 3}} {
		name := fmt.Sprintf("kill=%v", killed)
		t.Run(name, func(t *testing.T) {
			isKilled := map[int]bool{}
			for _, i := range killed {
				isKilled[i] = true
			}
			trial := t.TempDir()
			for i := 0; i < n; i++ {
				src := dir // clean shutdown
				if isKilled[i] {
					src = image // kill -9
				}
				copyTree(t, filepath.Join(src, ShardDirName(i)), filepath.Join(trial, ShardDirName(i)))
			}
			rec, err := New(n, cfg, Options{Dir: trial})
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			for i := 0; i < n; i++ {
				info := rec.Shard(i).Recovery()
				if !info.Recovered {
					t.Fatalf("shard %d did not recover: %+v", i, info)
				}
				if info.CleanShutdown == isKilled[i] {
					t.Fatalf("shard %d CleanShutdown=%v, killed=%v", i, info.CleanShutdown, isKilled[i])
				}
			}
			if got := liveCustomerRows(t, rec); !equalStrings(got, wantRows) {
				t.Fatalf("recovered fleet diverges from reference: %d vs %d rows", len(got), len(wantRows))
			}
			if err := rec.WaitFresh(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			if s := rec.Staleness(); s != 0 {
				t.Fatalf("staleness %d after recovery", s)
			}
			// scatter results at the watermark must match the reference too
			for _, sql := range []string{
				"SELECT COUNT(*) FROM customer",
				"SELECT c_mktsegment, COUNT(*), SUM(c_acctbal) FROM customer GROUP BY c_mktsegment",
			} {
				got, err := rec.Query(sql)
				if err != nil {
					t.Fatal(err)
				}
				if !sameMultiset(got.Rows, referenceRows(t, ref, sql)) {
					t.Fatalf("recovered scatter diverges on %q", sql)
				}
			}
			// the recovered fleet keeps accepting writes
			if _, err := rec.ExecDML("DELETE FROM customer WHERE c_custkey = 3000000001"); err != nil {
				t.Fatalf("post-recovery write: %v", err)
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
