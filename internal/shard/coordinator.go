package shard

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"htapxplain/internal/catalog"
	"htapxplain/internal/exec"
	"htapxplain/internal/htap"
	"htapxplain/internal/optimizer"
	"htapxplain/internal/plan"
	"htapxplain/internal/sqlparser"
	"htapxplain/internal/tpch"
	"htapxplain/internal/value"
)

// Coordinator owns a set of hash-partitioned htap.Systems and routes all
// traffic across them. Point statements (and any SELECT whose partitioned
// tables are all pinned by equality predicates to one shard) run on
// exactly one shard; everything else scatters as per-shard plan fragments
// whose outputs meet at a Gather exchange. Cross-shard transactions
// commit through a two-phase publish ordered by the coordinator's commit
// sequence (see Txn.Commit).
type Coordinator struct {
	shards []*htap.System
	scheme Scheme
	cat    *catalog.Catalog

	// fragDOP, when >0, overrides every scatter fragment's planner-chosen
	// DOP — benchmarks use it to measure shard scaling at fixed per-shard
	// parallelism.
	fragDOP int

	// commitMu serializes cross-shard commits: prepare-all / publish-all
	// runs under it, so two distributed transactions can never deadlock on
	// each other's shard write locks (shards are also always prepared in
	// ascending order).
	commitMu sync.Mutex
	// coordLSN is the coordinator's commit sequence for cross-shard
	// transactions.
	coordLSN atomic.Uint64

	met metrics
}

type metrics struct {
	shardQueries    []atomic.Int64 // per shard: statements executed there
	routedQueries   atomic.Int64   // single-shard SELECT routes
	scatterQueries  atomic.Int64   // scatter-gather SELECT executions
	scatterFanout   atomic.Int64   // total shards touched by SELECTs
	exchangeBatches atomic.Int64
	exchangeRows    atomic.Int64
	crossShardTxns  atomic.Int64
}

// Options tunes coordinator construction beyond the per-shard htap
// config.
type Options struct {
	// Scheme is the partitioning layout; nil uses TPCHScheme.
	Scheme Scheme
	// FragDOP, when >0, fixes every scatter fragment's DOP instead of the
	// planner's per-shard choice.
	FragDOP int
	// Dir, when non-empty, makes every shard durable under
	// Dir/shard-<i>/ (each shard keeps its own WAL and checkpoints).
	Dir string
}

// New builds an n-shard coordinator. The full dataset is generated once
// and hash-partitioned: each shard's htap.System is preloaded with the
// rows whose partition key it owns (replicated tables load everywhere),
// so shard construction costs one generation regardless of n. n=1 is the
// degenerate case whose single shard holds exactly the data a plain
// htap.System would — the reference for differential tests.
func New(n int, cfg htap.Config, opt Options) (*Coordinator, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	if cfg.ModeledSF <= 0 {
		cfg.ModeledSF = htap.DefaultConfig().ModeledSF
	}
	if cfg.Data.PhysScale <= 0 {
		cfg.Data = tpch.DefaultConfig()
	}
	scheme := opt.Scheme
	if scheme == nil {
		scheme = TPCHScheme()
	}
	cat := catalog.TPCH(cfg.ModeledSF)
	full := cfg.Preloaded
	if full == nil {
		var err error
		full, err = tpch.Generate(cat, cfg.Data)
		if err != nil {
			return nil, err
		}
	}
	c := &Coordinator{
		shards:  make([]*htap.System, 0, n),
		scheme:  scheme,
		cat:     cat,
		fragDOP: opt.FragDOP,
	}
	c.met.shardQueries = make([]atomic.Int64, n)
	for i := 0; i < n; i++ {
		scfg := cfg
		part, err := partitionDataset(full, cat, scheme, i, n)
		if err != nil {
			c.Close()
			return nil, err
		}
		scfg.Preloaded = part
		if opt.Dir != "" {
			scfg.Durability.Dir = filepath.Join(opt.Dir, ShardDirName(i))
		}
		sys, err := htap.New(scfg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("shard: building shard %d: %w", i, err)
		}
		c.shards = append(c.shards, sys)
	}
	return c, nil
}

// ShardDirName is the on-disk directory for shard i under a durable
// coordinator's data directory.
func ShardDirName(i int) string { return fmt.Sprintf("shard-%d", i) }

// partitionDataset filters one shard's slice out of the full dataset:
// partitioned tables keep only the rows whose hashed key lands on shard
// i, replicated tables share the full row slice (safe because the MVCC
// heap never mutates loaded rows in place — updates are tombstone +
// fresh insert).
func partitionDataset(full *tpch.Dataset, cat *catalog.Catalog, scheme Scheme, i, n int) (*tpch.Dataset, error) {
	part := &tpch.Dataset{
		Cat:       full.Cat,
		Tables:    make(map[string][]value.Row, len(full.Tables)),
		Seed:      full.Seed,
		PhysScale: full.PhysScale,
	}
	for name, rows := range full.Tables {
		pcol, ok := scheme.PartitionColumn(name)
		if !ok || n == 1 {
			part.Tables[name] = rows
			continue
		}
		meta, ok := cat.Table(name)
		if !ok {
			return nil, fmt.Errorf("shard: partitioned table %q missing from catalog", name)
		}
		ci := meta.ColumnIndex(pcol)
		if ci < 0 {
			return nil, fmt.Errorf("shard: table %q has no partition column %q", name, pcol)
		}
		var mine []value.Row
		for _, r := range rows {
			if ShardOf(r[ci], n) == i {
				mine = append(mine, r)
			}
		}
		part.Tables[name] = mine
	}
	return part, nil
}

// NumShards returns the shard count.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// Shard exposes one shard's htap.System (shard 0 backs single-system
// paths like EXPLAIN and the gateway's calibrator).
func (c *Coordinator) Shard(i int) *htap.System { return c.shards[i] }

// Scheme returns the partitioning layout.
func (c *Coordinator) Scheme() Scheme { return c.scheme }

// Catalog returns the shared (per-shard identical) catalog.
func (c *Coordinator) Catalog() *catalog.Catalog { return c.cat }

// Close shuts every shard down (final checkpoints when durable).
func (c *Coordinator) Close() {
	for _, s := range c.shards {
		if s != nil {
			s.Close()
		}
	}
}

// CommitLSN sums the shards' commit LSNs — a monotonic progress gauge
// for the whole fleet (individual shards advance independently).
func (c *Coordinator) CommitLSN() uint64 {
	var sum uint64
	for _, s := range c.shards {
		sum += s.CommitLSN()
	}
	return sum
}

// Watermark sums the shards' replication watermarks.
func (c *Coordinator) Watermark() uint64 {
	var sum uint64
	for _, s := range c.shards {
		sum += s.Watermark()
	}
	return sum
}

// Staleness sums the shards' replication lags.
func (c *Coordinator) Staleness() uint64 {
	var sum uint64
	for _, s := range c.shards {
		sum += s.Staleness()
	}
	return sum
}

// WaitFresh blocks until every shard's column store has caught up to the
// commit LSN it had when the call started.
func (c *Coordinator) WaitFresh(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, s := range c.shards {
		if err := s.WaitFresh(time.Until(deadline)); err != nil {
			return err
		}
	}
	return nil
}

// TxnStats sums the shards' transaction outcome counters. A cross-shard
// transaction counts once per participating shard.
func (c *Coordinator) TxnStats() htap.TxnStats {
	var t htap.TxnStats
	for _, s := range c.shards {
		st := s.TxnStats()
		t.Begun += st.Begun
		t.Committed += st.Committed
		t.Aborted += st.Aborted
		t.Conflicted += st.Conflicted
	}
	return t
}

// ---------------------------------------------------------------------------
// Read path

// Route analyzes a SELECT and decides where it runs: a shard number when
// every partitioned table it touches pins (via an equality predicate on
// its partition key) to the same shard, or -1 when the statement must
// scatter. The DistDecision is returned so a scatter can reuse it.
func (c *Coordinator) Route(sql string) (int, *optimizer.DistDecision, error) {
	sel, err := sqlparser.Parse(sql)
	if err != nil {
		return 0, nil, err
	}
	dec, err := optimizer.AnalyzeDist(c.cat, sel, c.scheme)
	if err != nil {
		return 0, nil, err
	}
	if len(dec.Partitioned) == 0 {
		// replicated tables only: any shard has the full data
		return 0, dec, nil
	}
	if dec.AllPinned() {
		target := -1
		for _, pt := range dec.Partitioned {
			s := ShardOf(pt.Key, len(c.shards))
			if target == -1 {
				target = s
			} else if target != s {
				return -1, dec, nil
			}
		}
		return target, dec, nil
	}
	return -1, dec, nil
}

// RunOn executes a SELECT entirely on one shard through its dual-engine
// pipeline (both plans race and cross-check, exactly like a single-node
// run).
func (c *Coordinator) RunOn(i int, sql string) (*htap.Result, error) {
	res, err := c.shards[i].Run(sql)
	if err != nil {
		return nil, err
	}
	c.met.shardQueries[i].Add(1)
	c.met.routedQueries.Add(1)
	c.met.scatterFanout.Add(1) // routed queries touch exactly one shard
	return res, nil
}

// NoteRouted records the routing counters for a single-shard SELECT whose
// execution ran outside the coordinator (the gateway plans and executes
// routed queries itself so they flow through its engine picker and
// calibrator; only the bookkeeping lands here).
func (c *Coordinator) NoteRouted(i int) {
	c.met.shardQueries[i].Add(1)
	c.met.routedQueries.Add(1)
	c.met.scatterFanout.Add(1)
}

// QueryResult is the outcome of a coordinator-routed SELECT.
type QueryResult struct {
	Rows  []value.Row
	Stats exec.Stats
	// Shard is the executing shard for a routed query, -1 for a scatter.
	Shard int
	// Fanout is the number of shards the query touched.
	Fanout int
}

// Query routes and executes one SELECT: single-shard when the routing
// analysis pins it, scatter-gather otherwise.
func (c *Coordinator) Query(sql string) (*QueryResult, error) {
	target, dec, err := c.Route(sql)
	if err != nil {
		return nil, err
	}
	if target >= 0 {
		res, err := c.RunOn(target, sql)
		if err != nil {
			return nil, err
		}
		rows := res.TPRows
		if res.Winner == plan.AP {
			rows = res.APRows
		}
		return &QueryResult{Rows: rows, Shard: target, Fanout: 1}, nil
	}
	sc, err := c.PrepareScatter(sql, dec)
	if err != nil {
		return nil, err
	}
	rows, stats, err := sc.Run()
	if err != nil {
		return nil, err
	}
	return &QueryResult{Rows: rows, Stats: stats, Shard: -1, Fanout: len(c.shards)}, nil
}

// Scatter is one prepared scatter-gather execution: exchange moves have
// already run (their rows sit in per-shard overrides inside the
// fragments) and every shard's fragment is planned. The gateway admits
// Workers() against its pool, optionally LimitWorkers() down to the
// grant, then Run()s once.
type Scatter struct {
	c         *Coordinator
	frags     []*optimizer.FragmentPlan
	moveStats exec.Stats
}

// PrepareScatter resolves a SELECT's exchange moves and plans one
// fragment per shard. dec may be nil (it is re-derived) or the decision
// Route returned for the same sql.
func (c *Coordinator) PrepareScatter(sql string, dec *optimizer.DistDecision) (*Scatter, error) {
	if dec == nil {
		sel, err := sqlparser.Parse(sql)
		if err != nil {
			return nil, err
		}
		dec, err = optimizer.AnalyzeDist(c.cat, sel, c.scheme)
		if err != nil {
			return nil, err
		}
	}
	n := len(c.shards)
	overrides := make([]map[string][]value.Row, n)
	var moveStats exec.Stats

	// Resolve each move: scan the table on every shard (with its filter
	// conjuncts pushed into the scan) and shuffle/broadcast the rows into
	// per-destination buffers. Move scans across shards share predicate
	// AST nodes (binding mutates them), so they run sequentially.
	for _, m := range dec.Moves {
		meta, ok := c.cat.Table(m.Table)
		if !ok {
			return nil, fmt.Errorf("shard: no such table %q", m.Table)
		}
		bufs := make([]*exec.RowBuffer, n)
		sinks := make([]exec.RowSink, n)
		for i := range bufs {
			bufs[i] = &exec.RowBuffer{}
			sinks[i] = bufs[i]
		}
		var route func(value.Row) (int, error)
		if !m.Broadcast {
			ci := meta.ColumnIndex(m.ShuffleCol)
			if ci < 0 {
				return nil, fmt.Errorf("shard: table %q has no column %q to shuffle on", m.Table, m.ShuffleCol)
			}
			route = func(r value.Row) (int, error) { return ShardOf(r[ci], n), nil }
		}
		for s := 0; s < n; s++ {
			phys, err := c.shards[s].Planner.PlanAP(optimizer.MoveScanSelect(m))
			if err != nil {
				return nil, fmt.Errorf("shard: planning move scan of %s on shard %d: %w", m.Table, s, err)
			}
			ctx := exec.NewContext()
			if m.Broadcast {
				err = (&exec.Broadcast{Dests: sinks}).Run(ctx, phys.Root)
			} else {
				err = (&exec.Shuffle{Route: route, Dests: sinks}).Run(ctx, phys.Root)
			}
			if err != nil {
				return nil, fmt.Errorf("shard: moving %s from shard %d: %w", m.Table, s, err)
			}
			moveStats.Add(ctx.Stats)
		}
		key := strings.ToLower(m.Binding)
		for s := range bufs {
			if overrides[s] == nil {
				overrides[s] = make(map[string][]value.Row)
			}
			overrides[s][key] = bufs[s].Rows
		}
	}

	frags := make([]*optimizer.FragmentPlan, n)
	for s := 0; s < n; s++ {
		sel, err := sqlparser.Parse(sql)
		if err != nil {
			return nil, err
		}
		frags[s], err = c.shards[s].Planner.PlanFragment(sel, overrides[s])
		if err != nil {
			return nil, fmt.Errorf("shard: planning fragment on shard %d: %w", s, err)
		}
		if c.fragDOP > 0 {
			frags[s].Frag.DOP = c.fragDOP
		}
	}
	return &Scatter{c: c, frags: frags, moveStats: moveStats}, nil
}

// Workers is the total worker demand: the sum of every fragment's DOP.
// The gateway admits this against its worker pool.
func (sc *Scatter) Workers() int {
	total := 0
	for _, f := range sc.frags {
		d := f.Frag.DOP
		if d < 1 {
			d = 1
		}
		total += d
	}
	return total
}

// LimitWorkers scales fragment DOPs down so their sum fits the granted
// worker count (each fragment always keeps at least one).
func (sc *Scatter) LimitWorkers(granted int) {
	per := granted / len(sc.frags)
	if per < 1 {
		per = 1
	}
	for _, f := range sc.frags {
		if f.Frag.DOP > per {
			f.Frag.DOP = per
		}
	}
}

// Run executes the scatter: one goroutine per shard drains its fragment
// and feeds a Gather exchange; the coordinator drains the final stage
// (merge aggregate, global sort/limit, projection) on top of the gather.
func (sc *Scatter) Run() ([]value.Row, exec.Stats, error) {
	n := len(sc.frags)
	total := sc.moveStats

	g := exec.NewGather(sc.frags[0].FragSchema, n)
	prods := g.Producers()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := exec.NewContext()
			ctx.DOP = sc.frags[i].Frag.DOP
			rows, err := sc.frags[i].Frag.Execute(ctx)
			mu.Lock()
			total.Add(ctx.Stats)
			mu.Unlock()
			if err != nil {
				prods[i].Close(err)
				return
			}
			for len(rows) > 0 {
				nn := exec.BatchSize
				if nn > len(rows) {
					nn = len(rows)
				}
				if !prods[i].Send(rows[:nn]) {
					break
				}
				rows = rows[nn:]
			}
			prods[i].Close(nil)
		}(i)
	}

	final, err := sc.frags[0].MakeFinal(g)
	if err != nil {
		_ = g.Close() // unblocks any producers still sending
		wg.Wait()
		return nil, total, err
	}
	fctx := exec.NewContext()
	rows, err := exec.DrainOnce(final, fctx)
	wg.Wait()
	mu.Lock()
	total.Add(fctx.Stats)
	mu.Unlock()

	c := sc.c
	c.met.scatterQueries.Add(1)
	c.met.scatterFanout.Add(int64(n))
	for i := range c.met.shardQueries {
		c.met.shardQueries[i].Add(1)
	}
	c.met.exchangeBatches.Add(total.ExchangeBatches)
	c.met.exchangeRows.Add(total.ExchangeRows)
	if err != nil {
		return nil, total, err
	}
	return rows, total, nil
}
