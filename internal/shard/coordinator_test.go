package shard

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"htapxplain/internal/htap"
	"htapxplain/internal/value"
	"htapxplain/internal/workload"
)

func newCoordinator(t *testing.T, n int, opt Options) *Coordinator {
	t.Helper()
	c, err := New(n, htap.DefaultConfig(), opt)
	if err != nil {
		t.Fatalf("New(%d shards): %v", n, err)
	}
	t.Cleanup(c.Close)
	return c
}

func newReference(t *testing.T) *htap.System {
	t.Helper()
	ref, err := htap.New(htap.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ref.Close)
	return ref
}

// testRowKey renders a row with floats rounded to 4 decimals (and -0.0
// collapsed) — the engine's own result-comparison normalization, which
// absorbs accumulation-order differences between a scatter's partial
// aggregates and the reference's serial aggregation.
func testRowKey(r value.Row) string {
	var b strings.Builder
	for _, v := range r {
		switch v.K {
		case value.KindInt:
			fmt.Fprintf(&b, "i%d|", v.I)
		case value.KindFloat:
			f := math.Round(v.F*1e4) / 1e4
			if f == 0 {
				f = 0
			}
			fmt.Fprintf(&b, "f%.4f|", f)
		case value.KindString:
			b.WriteString("s" + v.S + "|")
		case value.KindBool:
			fmt.Fprintf(&b, "b%d|", v.I)
		default:
			b.WriteString("n|")
		}
	}
	return b.String()
}

func renderRows(rows []value.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = testRowKey(r)
	}
	return out
}

func sameMultiset(a, b []value.Row) bool {
	if len(a) != len(b) {
		return false
	}
	ka, kb := renderRows(a), renderRows(b)
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// referenceRows runs sql on the unsharded reference and returns the
// winning engine's rows.
func referenceRows(t *testing.T, ref *htap.System, sql string) []value.Row {
	t.Helper()
	res, err := ref.Run(sql)
	if err != nil {
		t.Fatalf("reference Run(%q): %v", sql, err)
	}
	if !res.ResultsAgree {
		t.Fatalf("reference engines disagree on %q", sql)
	}
	return res.APRows
}

// The differential suite: every query class the scatter planner splits —
// global aggregate, group-by with the full aggregate set, partition-wise
// join, broadcast join, plain scan with ORDER BY / LIMIT — plus a
// replicated-table route.
var diffQueries = []struct {
	sql     string
	ordered bool
}{
	{"SELECT COUNT(*) FROM customer", false},
	{"SELECT c_mktsegment, COUNT(*), SUM(c_acctbal), AVG(c_acctbal), MIN(c_acctbal), MAX(c_acctbal) FROM customer GROUP BY c_mktsegment", false},
	{"SELECT o_orderstatus, COUNT(*), SUM(o_totalprice) FROM orders WHERE o_totalprice > 1000 GROUP BY o_orderstatus", false},
	// orders ⋈ lineitem co-partition on the order key: partition-wise join
	{"SELECT o_orderstatus, COUNT(*), SUM(l_quantity) FROM orders, lineitem WHERE l_orderkey = o_orderkey GROUP BY o_orderstatus", false},
	// customer ⋈ orders joins off customer's partition key: broadcast move
	{"SELECT c_mktsegment, COUNT(*), SUM(o_totalprice) FROM customer, orders WHERE o_custkey = c_custkey GROUP BY c_mktsegment", false},
	{"SELECT c_custkey, c_name, c_acctbal FROM customer WHERE c_acctbal > 5000 ORDER BY c_custkey LIMIT 20", true},
	{"SELECT COUNT(*) FROM nation", false},
}

// TestShardDifferential is the acceptance harness: every query in the
// suite, at scatter DOP {1, 4} and shard counts {1, 4}, interleaved with
// barriered rounds of DML applied identically to the sharded coordinator
// and to a single unsharded reference system, must return the same
// multiset of rows (ordered queries: the same sequence).
func TestShardDifferential(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, dop := range []int{1, 4} {
			t.Run(fmt.Sprintf("shards=%d/dop=%d", shards, dop), func(t *testing.T) {
				c := newCoordinator(t, shards, Options{FragDOP: dop})
				ref := newReference(t)
				gen := workload.NewDMLGenerator(31)

				for round := 0; round < 3; round++ {
					if round > 0 {
						// a barriered round of identical DML on both systems
						for _, q := range gen.Batch(20) {
							if _, err := c.ExecDML(q.SQL); err != nil {
								t.Fatalf("round %d coordinator %q: %v", round, q.SQL, err)
							}
							if _, err := ref.Exec(q.SQL); err != nil {
								t.Fatalf("round %d reference %q: %v", round, q.SQL, err)
							}
						}
					}
					if err := c.WaitFresh(10 * time.Second); err != nil {
						t.Fatal(err)
					}
					if err := ref.WaitFresh(10 * time.Second); err != nil {
						t.Fatal(err)
					}
					for _, q := range diffQueries {
						got, err := c.Query(q.sql)
						if err != nil {
							t.Fatalf("round %d Query(%q): %v", round, q.sql, err)
						}
						want := referenceRows(t, ref, q.sql)
						if q.ordered {
							g, w := renderRows(got.Rows), renderRows(want)
							if len(g) != len(w) {
								t.Fatalf("round %d %q: %d rows, want %d", round, q.sql, len(g), len(w))
							}
							for i := range g {
								if g[i] != w[i] {
									t.Fatalf("round %d %q: row %d = %s, want %s", round, q.sql, i, g[i], w[i])
								}
							}
						} else if !sameMultiset(got.Rows, want) {
							t.Fatalf("round %d %q: sharded result diverges (%d vs %d rows)",
								round, q.sql, len(got.Rows), len(want))
						}
					}
				}
			})
		}
	}
}

// TestPointRoutingTouchesOneShard asserts the TP routing property: a
// point lookup pinned by its partition key executes on exactly one shard
// and the scatter fanout gauge advances by exactly 1 per routed query.
func TestPointRoutingTouchesOneShard(t *testing.T) {
	c := newCoordinator(t, 4, Options{})
	for key := int64(1); key <= 20; key++ {
		before := c.Stats()
		sql := fmt.Sprintf("SELECT c_custkey, c_name FROM customer WHERE c_custkey = %d", key)
		target, dec, err := c.Route(sql)
		if err != nil {
			t.Fatal(err)
		}
		if target < 0 {
			t.Fatalf("point lookup %q scattered: %+v", sql, dec)
		}
		if want := ShardOf(value.NewInt(key), 4); target != want {
			t.Fatalf("key %d routed to shard %d, want %d", key, target, want)
		}
		if _, err := c.Query(sql); err != nil {
			t.Fatal(err)
		}
		after := c.Stats()
		if got := after.ScatterFanout - before.ScatterFanout; got != 1 {
			t.Fatalf("key %d: fanout advanced by %d, want 1", key, got)
		}
		touched := 0
		for i := range after.Shards {
			d := after.Shards[i].Queries - before.Shards[i].Queries
			if d < 0 || d > 1 {
				t.Fatalf("key %d: shard %d query delta %d", key, i, d)
			}
			touched += int(d)
		}
		if touched != 1 {
			t.Fatalf("key %d touched %d shards, want exactly 1", key, touched)
		}
		if after.ScatterQueries != before.ScatterQueries {
			t.Fatalf("point lookup counted as scatter")
		}
	}

	// and the converse: an unpinned aggregate scatters to all shards
	before := c.Stats()
	if _, err := c.Query("SELECT COUNT(*) FROM customer"); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if got := after.ScatterFanout - before.ScatterFanout; got != 4 {
		t.Fatalf("scatter fanout advanced by %d, want 4", got)
	}
	if after.ScatterQueries-before.ScatterQueries != 1 {
		t.Fatalf("scatter not counted")
	}
	if after.ExchangeRows <= before.ExchangeRows {
		t.Fatalf("scatter moved no exchange rows")
	}
}

// TestDMLRouting: generated writes pin the customer partition key, so
// each must buffer on exactly one shard and total row counts must match
// what an unsharded system reports.
func TestDMLRouting(t *testing.T) {
	c := newCoordinator(t, 4, Options{})
	ref := newReference(t)
	gen := workload.NewDMLGenerator(57)
	for _, q := range gen.Batch(40) {
		got, err := c.ExecDML(q.SQL)
		if err != nil {
			t.Fatalf("ExecDML(%q): %v", q.SQL, err)
		}
		want, err := ref.Exec(q.SQL)
		if err != nil {
			t.Fatalf("reference Exec(%q): %v", q.SQL, err)
		}
		if got.RowsAffected != want.RowsAffected {
			t.Fatalf("%q: sharded affected %d rows, reference %d", q.SQL, got.RowsAffected, want.RowsAffected)
		}
	}
	st := c.Stats()
	if st.CrossShardTxns != 0 {
		t.Fatalf("single-key DML produced %d cross-shard commits", st.CrossShardTxns)
	}
	var sum uint64
	for _, sh := range st.Shards {
		sum += sh.CommitLSN
	}
	if sum == 0 {
		t.Fatal("no shard advanced its commit LSN")
	}
}

// TestCrossShardTxn drives the two-phase path: one transaction inserting
// keys that hash to different shards must commit atomically on all of
// them, count once in the cross-shard gauge, and be readable afterwards.
func TestCrossShardTxn(t *testing.T) {
	const n = 4
	c := newCoordinator(t, n, Options{})

	// pick one key per shard from a private range
	keys := make([]int64, 0, n)
	seen := map[int]int64{}
	for k := int64(2_000_000_000); len(seen) < n; k++ {
		s := ShardOf(value.NewInt(k), n)
		if _, ok := seen[s]; !ok {
			seen[s] = k
			keys = append(keys, k)
		}
	}

	tx := c.Begin()
	for _, k := range keys {
		sql := fmt.Sprintf("INSERT INTO customer (c_custkey, c_name, c_address, c_nationkey, c_phone, c_acctbal, c_mktsegment, c_comment) VALUES (%d, 'xshard', 'a', 1, '11-000', 10.0, 'building', 'cross')", k)
		if _, err := tx.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	res, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if !res.CrossShard || len(res.Shards) != n {
		t.Fatalf("commit = %+v, want cross-shard over %d shards", res, n)
	}
	if res.RowsAffected != n {
		t.Fatalf("RowsAffected = %d, want %d", res.RowsAffected, n)
	}
	if st := c.Stats(); st.CrossShardTxns != 1 {
		t.Fatalf("CrossShardTxns = %d, want 1", st.CrossShardTxns)
	}
	for _, k := range keys {
		q, err := c.Query(fmt.Sprintf("SELECT c_custkey FROM customer WHERE c_custkey = %d", k))
		if err != nil {
			t.Fatal(err)
		}
		if len(q.Rows) != 1 || q.Fanout != 1 {
			t.Fatalf("key %d: %d rows at fanout %d after cross-shard commit", k, len(q.Rows), q.Fanout)
		}
	}

	// conflicts abort the whole distributed transaction: two racing
	// cross-shard updates of the same keys — first to commit wins, the
	// loser reports a conflict and leaves no partial effects
	tx1, tx2 := c.Begin(), c.Begin()
	for _, k := range keys[:2] {
		u := fmt.Sprintf("UPDATE customer SET c_acctbal = c_acctbal + 1 WHERE c_custkey = %d", k)
		if _, err := tx1.Exec(u); err != nil {
			t.Fatal(err)
		}
		if _, err := tx2.Exec(u); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Commit(); !errors.Is(err, htap.ErrConflict) {
		t.Fatalf("second writer committed with err=%v, want conflict", err)
	}
}

// TestUpdateCannotMovePartitionKey: repartitioning via UPDATE is
// rejected, not silently misrouted.
func TestUpdateCannotMovePartitionKey(t *testing.T) {
	c := newCoordinator(t, 2, Options{})
	_, err := c.ExecDML("UPDATE customer SET c_custkey = 999 WHERE c_custkey = 1")
	if err == nil || !strings.Contains(err.Error(), "partition key") {
		t.Fatalf("err = %v, want partition-key rejection", err)
	}
}

// TestScatterGatherRace is the CI -race gauntlet: concurrent AP scatters
// race single-shard DML (and the background mergers) at N=4. The test
// asserts nothing about row counts — it exists so the race detector sees
// scatter fragments, exchange channels, per-shard commits and metrics
// all running at once.
func TestScatterGatherRace(t *testing.T) {
	c := newCoordinator(t, 4, Options{})
	const writers, readers, iters = 2, 2, 8
	var wg sync.WaitGroup
	errs := make(chan error, writers*iters+readers*iters)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := workload.NewDMLGenerator(int64(9000 + w*1000))
			for i := 0; i < iters; i++ {
				if _, err := c.ExecDML(gen.Next().SQL); err != nil && !errors.Is(err, htap.ErrConflict) {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			queries := []string{
				"SELECT c_mktsegment, COUNT(*), SUM(c_acctbal) FROM customer GROUP BY c_mktsegment",
				"SELECT COUNT(*) FROM customer WHERE c_acctbal > 0",
				"SELECT c_custkey, c_name FROM customer WHERE c_custkey = 17",
			}
			for i := 0; i < iters; i++ {
				if _, err := c.Query(queries[(r+i)%len(queries)]); err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.ScatterQueries == 0 || st.RoutedQueries == 0 {
		t.Fatalf("gauntlet exercised scatter=%d routed=%d, want both > 0", st.ScatterQueries, st.RoutedQueries)
	}
}
