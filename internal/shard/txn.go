package shard

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"htapxplain/internal/exec"
	"htapxplain/internal/htap"
	"htapxplain/internal/optimizer"
	"htapxplain/internal/sqlparser"
	"htapxplain/internal/value"
)

var errTxnDone = errors.New("shard: transaction already finished")

// Txn is one distributed transaction: a lazy set of per-shard htap.Txns,
// one per shard the statements actually touch. A transaction that stays
// on one shard commits through that shard's ordinary fast path; one that
// touches several commits through the coordinator's two-phase publish
// (see Commit).
type Txn struct {
	c    *Coordinator
	txs  map[int]*htap.Txn
	done bool
}

// Begin opens a distributed transaction. Shard-local transactions begin
// lazily at the first statement that touches each shard, so every
// participant pins its snapshot as late as possible.
func (c *Coordinator) Begin() *Txn {
	return &Txn{c: c, txs: make(map[int]*htap.Txn)}
}

func (tx *Txn) shardTxn(i int) *htap.Txn {
	t, ok := tx.txs[i]
	if !ok {
		t = tx.c.shards[i].Begin()
		tx.txs[i] = t
	}
	return t
}

// Exec parses and routes one DML statement.
func (tx *Txn) Exec(sql string) (*htap.DMLResult, error) {
	stmt, err := sqlparser.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	return tx.ExecStmt(stmt)
}

// ExecStmt routes an already-parsed DML statement to the shard(s) that
// own the touched rows: inserts split their VALUES tuples by hashed
// partition key, updates and deletes pin to one shard when the WHERE
// clause fixes the partition key by equality and fan out to all shards
// otherwise, and statements on replicated tables apply everywhere.
func (tx *Txn) ExecStmt(stmt sqlparser.Statement) (*htap.DMLResult, error) {
	if tx.done {
		return nil, errTxnDone
	}
	switch x := stmt.(type) {
	case *sqlparser.Insert:
		return tx.execInsert(x)
	case *sqlparser.Update:
		return tx.execUpdate(x)
	case *sqlparser.Delete:
		return tx.execDelete(x)
	default:
		return nil, fmt.Errorf("shard: unsupported statement %T in transaction", stmt)
	}
}

// constEval evaluates a constant expression (insert values are literal-
// only by the parser's contract).
func constEval(e sqlparser.Expr) (value.Value, error) {
	ev, err := exec.Compile(e, nil)
	if err != nil {
		return value.Null, err
	}
	return ev(nil)
}

func (tx *Txn) execInsert(ins *sqlparser.Insert) (*htap.DMLResult, error) {
	c := tx.c
	meta, ok := c.cat.Table(ins.Table)
	if !ok {
		return nil, fmt.Errorf("shard: no such table %q", ins.Table)
	}
	pcol, parted := c.scheme.PartitionColumn(meta.Name)
	out := &htap.DMLResult{Kind: "insert", Table: strings.ToLower(ins.Table)}
	if !parted {
		// replicated table: the same insert applies on every shard so the
		// replicas stay identical
		for i := range c.shards {
			r, err := tx.shardTxn(i).ExecStmt(ins)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				out.RowsAffected = r.RowsAffected
			}
		}
		return out, nil
	}
	// locate the partition key among the inserted columns
	ki := -1
	if len(ins.Columns) == 0 {
		ki = meta.ColumnIndex(pcol)
	} else {
		for j, cname := range ins.Columns {
			if strings.EqualFold(cname, pcol) {
				ki = j
				break
			}
		}
	}
	if ki < 0 {
		return nil, fmt.Errorf("shard: INSERT into %s must set partition key %s", meta.Name, pcol)
	}
	groups := make(map[int][][]sqlparser.Expr)
	for _, tuple := range ins.Rows {
		if ki >= len(tuple) {
			return nil, fmt.Errorf("shard: INSERT tuple has %d values but partition key %s is position %d", len(tuple), pcol, ki+1)
		}
		key, err := constEval(tuple[ki])
		if err != nil {
			return nil, err
		}
		s := ShardOf(key, len(c.shards))
		groups[s] = append(groups[s], tuple)
	}
	shardIDs := make([]int, 0, len(groups))
	for s := range groups {
		shardIDs = append(shardIDs, s)
	}
	sort.Ints(shardIDs)
	for _, s := range shardIDs {
		sub := &sqlparser.Insert{Table: ins.Table, Columns: ins.Columns, Rows: groups[s]}
		r, err := tx.shardTxn(s).ExecStmt(sub)
		if err != nil {
			return nil, err
		}
		out.RowsAffected += r.RowsAffected
	}
	return out, nil
}

func (tx *Txn) execUpdate(upd *sqlparser.Update) (*htap.DMLResult, error) {
	c := tx.c
	meta, ok := c.cat.Table(upd.Table)
	if !ok {
		return nil, fmt.Errorf("shard: no such table %q", upd.Table)
	}
	pcol, parted := c.scheme.PartitionColumn(meta.Name)
	if parted {
		for _, set := range upd.Set {
			if strings.EqualFold(set.Column, pcol) {
				return nil, fmt.Errorf("shard: UPDATE may not change partition key %s.%s", meta.Name, pcol)
			}
		}
	}
	out := &htap.DMLResult{Kind: "update", Table: strings.ToLower(upd.Table)}
	for _, s := range c.targetShards(pcol, parted, upd.Where) {
		r, err := tx.shardTxn(s).ExecStmt(upd)
		if err != nil {
			return nil, err
		}
		out.RowsAffected += r.RowsAffected
	}
	return out, nil
}

func (tx *Txn) execDelete(del *sqlparser.Delete) (*htap.DMLResult, error) {
	c := tx.c
	meta, ok := c.cat.Table(del.Table)
	if !ok {
		return nil, fmt.Errorf("shard: no such table %q", del.Table)
	}
	pcol, parted := c.scheme.PartitionColumn(meta.Name)
	out := &htap.DMLResult{Kind: "delete", Table: strings.ToLower(del.Table)}
	for _, s := range c.targetShards(pcol, parted, del.Where) {
		r, err := tx.shardTxn(s).ExecStmt(del)
		if err != nil {
			return nil, err
		}
		out.RowsAffected += r.RowsAffected
	}
	return out, nil
}

// targetShards picks the shards an UPDATE/DELETE runs on: exactly one
// when the WHERE clause pins the partition key by equality, all shards
// otherwise (a replicated table always applies everywhere to keep the
// copies identical).
func (c *Coordinator) targetShards(pcol string, parted bool, where sqlparser.Expr) []int {
	if parted {
		if key, ok := optimizer.PinnedEq(sqlparser.Conjuncts(where), pcol); ok {
			return []int{ShardOf(key, len(c.shards))}
		}
	}
	all := make([]int, len(c.shards))
	for i := range all {
		all[i] = i
	}
	return all
}

// TxnResult is the outcome of a distributed commit.
type TxnResult struct {
	// LSN is the participant's commit LSN for a single-shard commit, or
	// the coordinator's commit sequence number for a cross-shard one.
	LSN          uint64
	RowsAffected int
	// Shards lists the participating shards in commit (ascending) order.
	Shards []int
	// CrossShard is true when the commit went through the two-phase
	// publish path.
	CrossShard bool
}

// Rollback abandons every participant.
func (tx *Txn) Rollback() {
	if tx.done {
		return
	}
	tx.done = true
	for _, t := range tx.txs {
		t.Rollback()
	}
}

// Commit finishes the transaction. A single participant commits through
// its shard's ordinary pipeline — the PR 8 fast path, untouched by
// sharding. Multiple participants commit in two phases under the
// coordinator's commit lock: every shard Prepares (conflict check, shard
// write lock acquired) in ascending shard order, then — once all have
// prepared — a coordinator LSN is drawn and every shard Publishes
// (applies, logs, unlocks). A conflict on any shard during prepare aborts
// every participant before any effect becomes visible, so cross-shard
// atomicity holds with respect to conflicts; durability waits run after
// the lock is released, exactly like the single-shard group commit.
func (tx *Txn) Commit() (*TxnResult, error) {
	if tx.done {
		return nil, errTxnDone
	}
	tx.done = true
	c := tx.c
	parts := make([]int, 0, len(tx.txs))
	for i := range tx.txs {
		parts = append(parts, i)
	}
	sort.Ints(parts)
	switch len(parts) {
	case 0:
		return &TxnResult{}, nil
	case 1:
		s := parts[0]
		r, err := tx.txs[s].Commit()
		if err != nil {
			return nil, err
		}
		return &TxnResult{LSN: r.LSN, RowsAffected: r.RowsAffected, Shards: parts}, nil
	}

	c.commitMu.Lock()
	prepared := make([]*htap.Prepared, 0, len(parts))
	for _, s := range parts {
		p, err := tx.txs[s].Prepare(nil)
		if err != nil {
			for _, pp := range prepared {
				pp.Abort()
			}
			for _, rest := range parts[len(prepared)+1:] {
				tx.txs[rest].Rollback()
			}
			c.commitMu.Unlock()
			return nil, err // htap.ErrConflict flows through unwrapped
		}
		prepared = append(prepared, p)
	}
	lsn := c.coordLSN.Add(1)
	res := &TxnResult{LSN: lsn, Shards: parts, CrossShard: true}
	var waits []func() error
	var pubErr error
	for i, p := range prepared {
		r, wait, err := p.Publish()
		if err != nil {
			// The shard poisoned itself (storage apply failure) — abort
			// the not-yet-published participants. Cross-shard atomicity is
			// with respect to conflicts, which only surface in prepare;
			// a mid-publish storage failure leaves earlier participants
			// committed, mirroring the single-shard poison semantics.
			pubErr = fmt.Errorf("shard: cross-shard publish on shard %d: %w", parts[i], err)
			for _, pp := range prepared[i+1:] {
				pp.Abort()
			}
			break
		}
		res.RowsAffected += r.RowsAffected
		if wait != nil {
			waits = append(waits, wait)
		}
	}
	c.commitMu.Unlock()
	if pubErr != nil {
		return nil, pubErr
	}
	for _, w := range waits {
		if err := w(); err != nil {
			return nil, err
		}
	}
	c.met.crossShardTxns.Add(1)
	return res, nil
}

// ExecDML runs one DML statement as an autocommit distributed
// transaction and records per-shard query counters.
func (c *Coordinator) ExecDML(sql string) (*htap.DMLResult, error) {
	stmt, err := sqlparser.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	tx := c.Begin()
	res, err := tx.ExecStmt(stmt)
	if err != nil {
		tx.Rollback()
		return nil, err
	}
	txr, err := tx.Commit()
	if err != nil {
		return nil, err
	}
	res.LSN = txr.LSN
	for _, s := range txr.Shards {
		c.met.shardQueries[s].Add(1)
	}
	return res, nil
}
