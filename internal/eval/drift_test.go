package eval

import (
	"testing"

	"htapxplain/internal/expert"
	"htapxplain/internal/explain"
	"htapxplain/internal/llm"
	"htapxplain/internal/plan"
	"htapxplain/internal/treecnn"
	"htapxplain/internal/workload"
)

// TestWorkloadDriftRetrainAndCorrect exercises the paper's maintenance
// story end to end (§III-A "it can be quickly retrained to adjust to
// changes in ... underlying data" + §VII stale-knowledge management):
//
//  1. ORDER BY o_totalprice LIMIT k is AP's win (full sort beats TP's scan).
//  2. The DBA adds an index on o_totalprice → TP now serves it in index
//     order and wins; the plan pair changes shape.
//  3. The smart router is retrained on post-drift executions and routes
//     the new shape correctly.
//  4. The old KB entries for this shape are stale; the expert-correction
//     loop writes the new explanation, after which the pipeline grades
//     accurate again.
func TestWorkloadDriftRetrainAndCorrect(t *testing.T) {
	cfg := DefaultEnvConfig()
	cfg.RouterTrainQueries = 80
	cfg.RouterEpochs = 40
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	const q = "SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_totalprice DESC LIMIT 20"

	before, err := env.Sys.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if before.Winner != plan.AP {
		t.Fatalf("pre-drift winner = %v, want AP", before.Winner)
	}

	// --- the drift: a new index flips the winner
	if err := env.Sys.AddIndex("orders", "o_totalprice", "idx_totalprice"); err != nil {
		t.Fatal(err)
	}
	after, err := env.Sys.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Winner != plan.TP {
		t.Fatalf("post-drift winner = %v, want TP (index-order Top-N)", after.Winner)
	}
	if sum := plan.Summarize(after.Pair.TP); !sum.UsesIndex {
		t.Fatalf("post-drift TP plan should use the new index:\n%s", after.Pair.TP)
	}

	// --- retrain on post-drift executions (fresh labels)
	gen := workload.NewGenerator(env.Cfg.WorkloadSeed + 1)
	var samples []treecnn.Sample
	for _, wq := range gen.Batch(80) {
		res, err := env.Sys.Run(wq.SQL)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, treecnn.Sample{Pair: &res.Pair, Label: res.Winner})
	}
	retrained := treecnn.New(env.Cfg.RouterSeed)
	rep := retrained.Train(samples, env.Cfg.RouterEpochs, env.Cfg.RouterSeed+1)
	if rep.TrainAcc < 0.9 {
		t.Fatalf("retraining failed to fit: %.2f", rep.TrainAcc)
	}
	if got, _ := retrained.Predict(&after.Pair); got != plan.TP {
		t.Errorf("retrained router routes the drifted shape to %v, want TP", got)
	}

	// --- stale-knowledge correction loop
	ex := explain.New(env.Sys, retrained, env.KB, llm.Doubao(), explain.DefaultOptions())
	truth, err := env.Oracle.Judge(after)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ex.ExplainResult(after)
	if err != nil {
		t.Fatal(err)
	}
	g := expert.GradeExplanation(out.Text(), truth)
	if g.Verdict != expert.VerdictAccurate {
		// the paper's loop: experts correct it into the KB ...
		if err := ex.Feedback(out, env.Oracle.Explain(truth), truth); err != nil {
			t.Fatal(err)
		}
		// ... and the next occurrence retrieves the correction
		out2, err := ex.ExplainResult(after)
		if err != nil {
			t.Fatal(err)
		}
		if g2 := expert.GradeExplanation(out2.Text(), truth); g2.Verdict != expert.VerdictAccurate {
			t.Errorf("post-correction explanation still graded %v: %q", g2.Verdict, out2.Text())
		}
	}
}
